#include "samplers/mh.hpp"

#include <algorithm>
#include <cmath>

namespace bayes::samplers {

MhSampler::MhSampler(ppl::Evaluator& eval)
    : eval_(&eval),
      scale_(2.38 / std::sqrt(static_cast<double>(eval.dim())))
{
}

void
MhSampler::adaptScale(double acceptProb)
{
    ++adaptCount_;
    const double rate = 1.0 / std::sqrt(static_cast<double>(adaptCount_));
    scale_ *= std::exp(rate * (acceptProb - kTargetAccept));
    scale_ = std::clamp(scale_, 1e-6, 1e3);
}

MhTransition
MhSampler::transition(std::vector<double>& q, double& logProb, Rng& rng)
{
    MhTransition result;
    std::vector<double> proposal(q.size());
    for (std::size_t i = 0; i < q.size(); ++i)
        proposal[i] = q[i] + scale_ * rng.normal();

    const double proposalLogProb = eval_->logProb(proposal);
    const double logRatio = proposalLogProb - logProb;
    result.acceptProb = std::min(1.0, std::exp(std::min(logRatio, 0.0)));
    if (std::isfinite(proposalLogProb)
        && std::log(std::max(rng.uniform(), 1e-300)) < logRatio) {
        q = std::move(proposal);
        logProb = proposalLogProb;
        result.accepted = true;
    }
    return result;
}

} // namespace bayes::samplers
