#include "io/csv.hpp"

#include <fstream>
#include <sstream>

#include "support/error.hpp"

namespace bayes {

void
writeDrawsCsv(std::ostream& out, const samplers::RunResult& run,
              const ppl::ParamLayout& layout)
{
    out << "chain,draw";
    for (std::size_t i = 0; i < layout.dim(); ++i)
        out << ',' << layout.coordName(i);
    out << '\n';
    out.precision(17);
    for (std::size_t c = 0; c < run.chains.size(); ++c) {
        const auto& chain = run.chains[c];
        for (std::size_t t = 0; t < chain.draws.size(); ++t) {
            out << c << ',' << t;
            BAYES_CHECK(chain.draws[t].size() == layout.dim(),
                        "draw/layout dimension mismatch");
            for (double x : chain.draws[t])
                out << ',' << x;
            out << '\n';
        }
    }
}

void
writeDrawsCsv(const std::string& path, const samplers::RunResult& run,
              const ppl::ParamLayout& layout)
{
    std::ofstream out(path);
    BAYES_CHECK(out.good(), "cannot open '" << path << "' for writing");
    writeDrawsCsv(out, run, layout);
    BAYES_CHECK(out.good(), "write to '" << path << "' failed");
}

std::vector<std::vector<std::vector<double>>>
readDrawsCsv(std::istream& in)
{
    std::string line;
    BAYES_CHECK(static_cast<bool>(std::getline(in, line)),
                "empty draws CSV");
    // Count coordinate columns from the header.
    std::size_t columns = 1;
    for (char ch : line)
        columns += ch == ',';
    BAYES_CHECK(columns >= 3, "draws CSV needs chain,draw,coords...");
    const std::size_t dim = columns - 2;

    std::vector<std::vector<std::vector<double>>> chains;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        std::istringstream row(line);
        std::string cell;
        BAYES_CHECK(static_cast<bool>(std::getline(row, cell, ',')),
                    "missing chain column");
        const std::size_t chain = std::stoul(cell);
        BAYES_CHECK(static_cast<bool>(std::getline(row, cell, ',')),
                    "missing draw column");
        if (chain >= chains.size())
            chains.resize(chain + 1);
        std::vector<double> draw;
        draw.reserve(dim);
        while (std::getline(row, cell, ','))
            draw.push_back(std::stod(cell));
        BAYES_CHECK(draw.size() == dim,
                    "row has " << draw.size() << " coords, expected "
                    << dim);
        chains[chain].push_back(std::move(draw));
    }
    BAYES_CHECK(!chains.empty(), "draws CSV has no data rows");
    return chains;
}

} // namespace bayes
