/**
 * @file
 * Ablation — NUTS warmup adaptation. Compares the full adaptation
 * (dual-averaging step size + diagonal metric) against metric-free
 * adaptation: without the metric, poorly scaled posteriors force deeper
 * trees (more gradient evaluations per iteration) and slower simulated
 * execution — the design choice DESIGN.md calls out.
 */
#include "common.hpp"
#include "support/table.hpp"

#include <cstdio>

using namespace bayes;

int
main()
{
    const auto platform = archsim::Platform::skylake();
    Table table({"workload", "metric", "gradevals/iter", "divergences",
                 "time(s)"});
    for (const std::string name : {"12cities", "memory", "survival"}) {
        const auto wl = workloads::makeWorkload(name);
        const auto profile = archsim::profileWorkload(*wl, 4);
        for (const bool metric : {true, false}) {
            auto cfg = bench::userConfig(*wl);
            cfg.iterations = 400;
            cfg.adaptMetric = metric;
            const auto run = samplers::run(*wl, cfg);
            std::uint64_t divs = 0;
            for (const auto& chain : run.chains)
                divs += chain.divergences;
            const double evalsPerIter =
                static_cast<double>(run.totalGradEvals())
                / (400.0 * static_cast<double>(cfg.chains));
            const auto sim = archsim::simulateSystem(
                profile, archsim::extractRunWork(run), platform, 4);
            table.row()
                .cell(name)
                .cell(metric ? "on" : "off")
                .cell(evalsPerIter, 1)
                .cell(static_cast<long>(divs))
                .cell(sim.seconds, 2);
            std::fprintf(stderr, "[bench] %s metric=%d done\n",
                         name.c_str(), metric);
        }
    }
    printSection("Ablation — diagonal metric adaptation on/off "
                 "(400 iterations, 4 chains)",
                 table);
    return 0;
}
