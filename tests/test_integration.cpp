/**
 * @file
 * End-to-end integration: run reduced versions of the pipeline the
 * figure benches use — sample, profile, simulate both platforms,
 * classify with the static feature — and assert the paper's headline
 * shapes hold (LLC-bound set, platform winners, elision savings).
 */
#include <gtest/gtest.h>

#include "archsim/system.hpp"
#include "diagnostics/summary.hpp"
#include "elide/elision.hpp"
#include "samplers/runner.hpp"
#include "sched/scheduler.hpp"
#include "workloads/suite.hpp"

namespace bayes {
namespace {

struct MiniResult
{
    std::string name;
    double mpkiSky4;
    double secondsSky4;
    double secondsBdw4;
    double mpkiFusedSky4;
    std::size_t dataBytes;
};

/**
 * Reduced-iteration pipeline over a 3-workload slice of the suite.
 * The paper characterizes the conventional per-observation scalar
 * implementation, so the headline-shape numbers come from the scalar
 * profile; the fused profile rides along to prove the kernels change
 * the characterization.
 */
const std::vector<MiniResult>&
miniPipeline()
{
    static const std::vector<MiniResult> results = [] {
        std::vector<MiniResult> out;
        for (const std::string name :
             {"tickets", "votes", "butterfly"}) {
            const auto wl = workloads::makeWorkload(name, 1.0);
            samplers::Config cfg;
            cfg.chains = 4;
            cfg.iterations = 120;
            const auto run = samplers::run(*wl, cfg);
            const auto profile = archsim::profileWorkload(
                *wl, 4, 15, 20190331, /*scalarLikelihood=*/true);
            const auto fusedProfile = archsim::profileWorkload(*wl, 4, 15);
            const auto work = archsim::extractRunWork(run);
            const auto sky = archsim::simulateSystem(
                profile, work, archsim::Platform::skylake(), 4);
            const auto bdw = archsim::simulateSystem(
                profile, work, archsim::Platform::broadwell(), 4);
            const auto skyFused = archsim::simulateSystem(
                fusedProfile, work, archsim::Platform::skylake(), 4);
            out.push_back({name, sky.llcMpki, sky.seconds, bdw.seconds,
                           skyFused.llcMpki, wl->modeledDataBytes()});
        }
        return out;
    }();
    return results;
}

TEST(Integration, TicketsIsLlcBoundAndOthersAreNot)
{
    const auto& results = miniPipeline();
    EXPECT_GT(results[0].mpkiSky4, 1.0);  // tickets
    EXPECT_LT(results[1].mpkiSky4, 1.0);  // votes
    EXPECT_LT(results[2].mpkiSky4, 1.0);  // butterfly
}

TEST(Integration, FusedKernelsBreakTheLlcBound)
{
    // The same tickets run that is LLC-bound on the scalar path fits
    // after fusion: the wide-node tape no longer scales with rows.
    const auto& results = miniPipeline();
    EXPECT_LT(results[0].mpkiFusedSky4, 1.0);
    EXPECT_LT(results[0].mpkiFusedSky4, results[0].mpkiSky4);
}

TEST(Integration, PlatformWinnersMatchThePaper)
{
    const auto& results = miniPipeline();
    // Broadwell (big LLC) wins tickets; Skylake (frequency) wins the
    // compute-bound pair.
    EXPECT_LT(results[0].secondsBdw4, results[0].secondsSky4);
    EXPECT_LT(results[1].secondsSky4, results[1].secondsBdw4);
    EXPECT_LT(results[2].secondsSky4, results[2].secondsBdw4);
}

TEST(Integration, StaticFeatureSeparatesTheClasses)
{
    const auto& results = miniPipeline();
    // tickets' modeled data dwarfs the compute-bound workloads'.
    EXPECT_GT(results[0].dataBytes, 3 * results[1].dataBytes);
    EXPECT_GT(results[0].dataBytes, 3 * results[2].dataBytes);
}

TEST(Integration, SchedulerRoutesThePipelinesCorrectly)
{
    const auto sky = archsim::Platform::skylake();
    const auto bdw = archsim::Platform::broadwell();
    sched::PlatformScheduler scheduler(sky, bdw, 16000.0);
    EXPECT_EQ(scheduler.place(*workloads::makeWorkload("tickets"))
                  .platform->name,
              "Broadwell");
    EXPECT_EQ(
        scheduler.place(*workloads::makeWorkload("votes")).platform->name,
        "Skylake");
}

TEST(Integration, ElisionPlusSimulationGivesSpeedup)
{
    const auto wl = workloads::makeWorkload("12cities", 0.5);
    samplers::Config cfg;
    cfg.chains = 4;
    cfg.iterations = 1200;

    const auto full = samplers::run(*wl, cfg);
    const auto elided = elide::runWithElision(*wl, cfg);
    ASSERT_TRUE(elided.converged);

    const auto profile = archsim::profileWorkload(*wl, 4, 15);
    const auto platform = archsim::Platform::skylake();
    const auto tFull = archsim::simulateSystem(
        profile, archsim::extractRunWork(full), platform, 4);
    const auto tElided = archsim::simulateSystem(
        profile, archsim::extractRunWork(elided.run), platform, 4);
    EXPECT_LT(tElided.seconds, tFull.seconds);
    EXPECT_LT(tElided.energyJ, tFull.energyJ);

    // Quality: the elided posterior matches the full run.
    const auto sumFull = diagnostics::summarize(full, wl->layout());
    const auto sumElided =
        diagnostics::summarize(elided.run, wl->layout());
    for (std::size_t i = 0; i < sumFull.coords.size(); ++i) {
        EXPECT_NEAR(sumElided.coords[i].mean, sumFull.coords[i].mean,
                    4.0 * sumFull.coords[i].sd + 1e-6);
    }
}

} // namespace
} // namespace bayes
