/**
 * @file
 * The probabilistic-model interface. A Model declares its parameter
 * blocks (name, size, constraint) and evaluates the log joint density
 * of data and constrained parameters. Workloads implement the templated
 * body once and forward to the two virtual entry points (double for
 * value-only evaluation, ad::Var for gradient evaluation).
 */
#pragma once

#include <span>
#include <string>
#include <vector>

#include "ad/var.hpp"
#include "ppl/transforms.hpp"
#include "support/error.hpp"

namespace bayes::ppl {

/** One named block of parameters sharing a constraint. */
struct ParamBlock
{
    std::string name;
    std::size_t size = 1;
    TransformKind transform = TransformKind::Identity;
    double lowerBound = 0.0;
    double upperBound = 0.0;
};

/**
 * Resolved parameter layout: blocks plus their offsets into the flat
 * parameter vector (unconstrained and constrained spaces share the
 * layout since every supported transform is dimension-preserving).
 */
class ParamLayout
{
  public:
    ParamLayout() = default;

    /** Compute offsets for the given blocks. */
    explicit ParamLayout(std::vector<ParamBlock> blocks);

    /** Total number of scalar parameters. */
    std::size_t dim() const { return dim_; }

    /** Number of blocks. */
    std::size_t blockCount() const { return blocks_.size(); }

    /** Block metadata. */
    const ParamBlock& block(std::size_t b) const { return blocks_[b]; }

    /** Offset of block @p b in the flat vector. */
    std::size_t offset(std::size_t b) const { return offsets_[b]; }

    /** Index of the block with the given name. @throws Error if absent */
    std::size_t blockIndex(const std::string& name) const;

    /** Flat-vector name of coordinate i, e.g. "beta[2]". */
    std::string coordName(std::size_t i) const;

  private:
    std::vector<ParamBlock> blocks_;
    std::vector<std::size_t> offsets_;
    std::size_t dim_ = 0;
};

/**
 * Typed view over a flat constrained parameter vector, resolved against
 * a layout. Models read their parameters through this.
 */
template <typename T>
class ParamView
{
  public:
    ParamView(const ParamLayout& layout, const std::vector<T>& values)
        : layout_(&layout), values_(&values)
    {
        BAYES_ASSERT(values.size() == layout.dim());
    }

    /** Scalar value of a size-1 block. */
    const T&
    scalar(std::size_t block) const
    {
        BAYES_ASSERT(layout_->block(block).size == 1);
        return (*values_)[layout_->offset(block)];
    }

    /** Element @p i of block @p block. */
    const T&
    at(std::size_t block, std::size_t i) const
    {
        BAYES_ASSERT(i < layout_->block(block).size);
        return (*values_)[layout_->offset(block) + i];
    }

    /**
     * Whole block as a contiguous span (no copy) — the form the fused
     * math::*_vec kernels consume.
     */
    std::span<const T>
    block(std::size_t b) const
    {
        return {values_->data() + layout_->offset(b),
                layout_->block(b).size};
    }

    /** Copy of a whole block as a vector. */
    std::vector<T>
    vec(std::size_t block) const
    {
        const std::size_t off = layout_->offset(block);
        const std::size_t n = layout_->block(block).size;
        return std::vector<T>(values_->begin() + off,
                              values_->begin() + off + n);
    }

    /** Size of block @p block. */
    std::size_t blockSize(std::size_t block) const
    {
        return layout_->block(block).size;
    }

    /** Raw flat access. */
    const T& operator[](std::size_t i) const { return (*values_)[i]; }

    /** Underlying layout. */
    const ParamLayout& layout() const { return *layout_; }

  private:
    const ParamLayout* layout_;
    const std::vector<T>* values_;
};

/**
 * View over K constrained parameter points sharing one layout — the
 * form Model::logProbBatch consumes. Lane k's flat vector is owned by
 * the caller (the Evaluator's constrain scratch); the view adds
 * lane-indexed accessors plus gather helpers (`scalarLanes`,
 * `blockLanes`) that produce the lane-major spans the batched
 * math::*_batch kernels take.
 */
template <typename T>
class BatchParamView
{
  public:
    BatchParamView(const ParamLayout& layout,
                   const std::vector<std::vector<T>>& lanes)
        : layout_(&layout), lanes_(&lanes)
    {
        for (const auto& lane : lanes)
            BAYES_ASSERT(lane.size() == layout.dim());
    }

    /** Number of parameter points K in the batch. */
    std::size_t lanes() const { return lanes_->size(); }

    /** Lane @p k as a single-point view. */
    ParamView<T>
    lane(std::size_t k) const
    {
        return ParamView<T>(*layout_, (*lanes_)[k]);
    }

    /** Scalar value of size-1 block @p block in lane @p k. */
    const T&
    scalar(std::size_t block, std::size_t k) const
    {
        BAYES_ASSERT(layout_->block(block).size == 1);
        return (*lanes_)[k][layout_->offset(block)];
    }

    /** Element @p i of block @p block in lane @p k. */
    const T&
    at(std::size_t block, std::size_t i, std::size_t k) const
    {
        BAYES_ASSERT(i < layout_->block(block).size);
        return (*lanes_)[k][layout_->offset(block) + i];
    }

    /** Block @p b of lane @p k as a contiguous span (no copy). */
    std::span<const T>
    block(std::size_t b, std::size_t k) const
    {
        return {(*lanes_)[k].data() + layout_->offset(b),
                layout_->block(b).size};
    }

    /** Size-1 block @p block gathered across lanes: K values. */
    std::vector<T>
    scalarLanes(std::size_t block) const
    {
        BAYES_ASSERT(layout_->block(block).size == 1);
        const std::size_t off = layout_->offset(block);
        std::vector<T> out(lanes());
        for (std::size_t k = 0; k < lanes(); ++k)
            out[k] = (*lanes_)[k][off];
        return out;
    }

    /**
     * Block @p b gathered across lanes, lane-major: lane k's values at
     * [k*size, (k+1)*size) — the coefficient layout the batched GLM
     * kernels take.
     */
    std::vector<T>
    blockLanes(std::size_t b) const
    {
        const std::size_t off = layout_->offset(b);
        const std::size_t n = layout_->block(b).size;
        std::vector<T> out(lanes() * n);
        for (std::size_t k = 0; k < lanes(); ++k)
            for (std::size_t i = 0; i < n; ++i)
                out[k * n + i] = (*lanes_)[k][off + i];
        return out;
    }

    /** Underlying layout. */
    const ParamLayout& layout() const { return *layout_; }

  private:
    const ParamLayout* layout_;
    const std::vector<std::vector<T>>* lanes_;
};

/**
 * A Bayesian model: parameter layout + log joint density
 * log p(data, theta) evaluated at constrained theta.
 */
class Model
{
  public:
    virtual ~Model() = default;

    /** Short identifier, e.g. "12cities". */
    virtual const std::string& name() const = 0;

    /** Parameter layout (stable for the model's lifetime). */
    virtual const ParamLayout& layout() const = 0;

    /** Log joint density, value-only path. */
    virtual double logProb(const ParamView<double>& p) const = 0;

    /** Log joint density, gradient (taped) path. */
    virtual ad::Var logProb(const ParamView<ad::Var>& p) const = 0;

    /**
     * Scalar-loop (per-observation) log density. Workloads ported onto
     * the fused math::*_vec kernels keep their original scalar body
     * behind this entry point so tests and benchmarks can compare the
     * two tapes; the default forwards to logProb for workloads with a
     * single implementation.
     */
    virtual double
    logProbScalar(const ParamView<double>& p) const
    {
        return logProb(p);
    }

    /** Scalar-loop log density, gradient (taped) path. */
    virtual ad::Var
    logProbScalar(const ParamView<ad::Var>& p) const
    {
        return logProb(p);
    }

    /**
     * Log joint density of K parameter points in one call, value-only
     * path. The default loops the lanes over logProb, catching Error
     * per lane into -inf; workloads with batched fused kernels override
     * it to stream the observed data once for all K lanes. Overrides
     * must not throw — a lane that is numerically infeasible writes
     * -inf to its slot instead.
     * @param lp  one log density per lane, lp.size() == p.lanes()
     */
    virtual void logProbBatch(const BatchParamView<double>& p,
                              std::span<double> lp) const;

    /** Batched log joint density, gradient (taped) path. */
    virtual void logProbBatch(const BatchParamView<ad::Var>& p,
                              std::span<ad::Var> lp) const;

    /**
     * Bytes of observed data iterated per likelihood evaluation — the
     * paper's static "modeled data size" feature (§V-A).
     */
    virtual std::size_t modeledDataBytes() const = 0;

    /**
     * Sufficient statistics of the observed dataset — a short vector of
     * canonical summaries (counts, sums, sums of squares/cross terms)
     * that identifies the dataset for amortized-posterior caching: two
     * instances of the same model family with equal statistics have the
     * same likelihood up to reordering, so a posterior fitted for one
     * serves the other. The default (empty) marks the model as not
     * amortizable; workloads opt in by returning a non-empty vector.
     * Ordering must be deterministic across processes.
     */
    virtual std::vector<double> dataSufficientStats() const { return {}; }
};

} // namespace bayes::ppl
