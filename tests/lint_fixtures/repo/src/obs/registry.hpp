// Fixture: src/obs/ is the mechanism, not an emitter — R004 skips it.
#pragma once

namespace fixture {
struct Counter { void add(long) {} };
struct Gauge { void set(double) {} };
struct Histogram { void record(double) {} };
struct Registry {
    Counter& counter(const char*);
    Gauge& gauge(const char*);
    Histogram& histogram(const char*);
    void selfUse() { counter("obs.not_catalogued").add(1); }  // skipped
};
}  // namespace fixture
