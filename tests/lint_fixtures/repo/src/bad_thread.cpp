// Fixture: R001 violations, waivers, and the hardware_concurrency carve-out.
#include <thread>

namespace fixture {
void spawn()
{
    std::thread t([] {});  // EXPECT: R001
    t.join();
    std::thread waived([] {});  // bayes-lint: allow(R001): fixture shows a justified waiver
    waived.join();
    // bayes-lint: allow(R001): full-line waiver covers the next line
    std::thread alsoWaived([] {});
    alsoWaived.join();
    std::thread noReason([] {});  // bayes-lint: allow(R001) // EXPECT: R000 R001
    noReason.join();
    (void)std::thread::hardware_concurrency();  // query only: no finding
}
}  // namespace fixture
