/**
 * @file
 * `ad` — advertising attribution in the movie industry.
 *
 * Logistic regression after Lei, Sanders & Dawson (StanCon 2017):
 * survey respondents report demographics and which advertising
 * channels they saw; the outcome is whether they attended the movie.
 * The feature matrix is the modeled data, making this one of the
 * paper's three LLC-bound workloads.
 */
#pragma once

#include "workloads/workload.hpp"

namespace bayes::workloads {

/** Logistic-regression advertising attribution workload. */
class AdAttribution : public Workload
{
  public:
    explicit AdAttribution(double dataScale = 1.0);

    double logProb(const ppl::ParamView<double>& p) const override;
    ad::Var logProb(const ppl::ParamView<ad::Var>& p) const override;
    double logProbScalar(const ppl::ParamView<double>& p) const override;
    ad::Var logProbScalar(const ppl::ParamView<ad::Var>& p) const override;
    void logProbBatch(const ppl::BatchParamView<double>& p,
                      std::span<double> lp) const override;
    void logProbBatch(const ppl::BatchParamView<ad::Var>& p,
                      std::span<ad::Var> lp) const override;

    /** Number of survey respondents. */
    std::size_t numRespondents() const { return outcomes_.size(); }

    /** Number of predictors (channels + demographics). */
    std::size_t numFeatures() const { return numFeatures_; }

    std::vector<double> dataSufficientStats() const override;

    /** Parameter block indices. */
    enum Block : std::size_t
    {
        kIntercept,
        kBeta,
    };

  private:
    template <typename T>
    T priorLp(const ppl::ParamView<T>& p) const;
    template <typename T>
    T logDensity(const ppl::ParamView<T>& p) const;
    template <typename T>
    T logDensityScalar(const ppl::ParamView<T>& p) const;
    template <typename T>
    void logDensityBatch(const ppl::BatchParamView<T>& p,
                         std::span<T> lp) const;

    std::size_t numFeatures_;
    std::vector<int> outcomes_;
    std::vector<double> features_; ///< row-major [respondent][feature]
};

} // namespace bayes::workloads
