#include "common.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "obs/obs.hpp"
#include "support/timer.hpp"

namespace bayes::bench {

samplers::Config
userConfig(const workloads::Workload& workload,
           samplers::ExecutionPolicy execution)
{
    samplers::Config cfg;
    cfg.chains = workload.info().defaultChains;
    cfg.iterations = workload.info().defaultIterations;
    cfg.execution = execution;
    return cfg;
}

SuiteEntry
prepareWorkload(const std::string& name, double dataScale, int iterations,
                samplers::ExecutionPolicy execution)
{
    SuiteEntry entry;
    entry.workload = workloads::makeWorkload(name, dataScale);
    samplers::Config cfg = userConfig(*entry.workload, execution);
    if (iterations > 0)
        cfg.iterations = iterations;

    Timer timer;
    entry.run = samplers::run(*entry.workload, cfg);
    entry.profile = archsim::profileWorkload(*entry.workload, cfg.chains);
    entry.work = archsim::extractRunWork(entry.run);
    std::fprintf(stderr, "[bench] %-10s scale=%.2f iters=%d sampled in %.1fs\n",
                 name.c_str(), dataScale, cfg.iterations, timer.seconds());
    return entry;
}

std::vector<SuiteEntry>
prepareSuite(double dataScale, int iterations,
             samplers::ExecutionPolicy execution)
{
    std::vector<SuiteEntry> suite;
    for (const auto& name : workloads::suiteNames())
        suite.push_back(
            prepareWorkload(name, dataScale, iterations, execution));
    return suite;
}

void
writeRunReport(const std::string& benchName)
{
    const char* dir = std::getenv("BAYES_BENCH_METRICS_DIR");
    if (dir == nullptr || *dir == '\0')
        return;
    const std::string path = std::string(dir) + "/" + benchName + ".json";
    std::ofstream os(path);
    if (!os) {
        std::fprintf(stderr, "[bench] cannot write run report %s\n",
                     path.c_str());
        return;
    }
    obs::Registry::global().snapshot().writeJson(os);
    std::fprintf(stderr, "[bench] run report written to %s\n", path.c_str());
}

} // namespace bayes::bench
