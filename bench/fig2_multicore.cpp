/**
 * @file
 * Figure 2 — IPC, LLC MPKI, and speedup of each workload on 1, 2 and 4
 * Skylake cores. Rows are sorted by 4-core LLC MPKI as in the paper;
 * LLC-bound workloads (ad, survival, tickets) saturate below 2x.
 */
#include "common.hpp"
#include "support/table.hpp"

#include <algorithm>
#include <cstdio>

using namespace bayes;

namespace {

struct Row
{
    std::string name;
    double ipc[3];
    double mpki[3];
    double speedup[3];
};

} // namespace

int
main()
{
    const auto platform = archsim::Platform::skylake();
    const int coreCounts[3] = {1, 2, 4};

    std::vector<Row> rows;
    // Sampling itself runs chains on the shared pool; the multicore
    // numbers below come from the architecture model, not wall time.
    for (const auto& entry :
         bench::prepareSuite(1.0, bench::kShortIterations,
                             samplers::ExecutionPolicy::pool())) {
        Row row;
        row.name = entry.workload->name();
        double base = 0.0;
        for (int i = 0; i < 3; ++i) {
            const auto sim = archsim::simulateSystem(
                entry.profile, entry.work, platform, coreCounts[i]);
            row.ipc[i] = sim.ipc;
            row.mpki[i] = sim.llcMpki;
            if (i == 0)
                base = sim.seconds;
            row.speedup[i] = base / sim.seconds;
        }
        rows.push_back(std::move(row));
    }
    std::sort(rows.begin(), rows.end(),
              [](const Row& a, const Row& b) { return a.mpki[2] < b.mpki[2]; });

    Table table({"workload", "IPC@1", "IPC@2", "IPC@4", "MPKI@1", "MPKI@2",
                 "MPKI@4", "spd@2", "spd@4"});
    for (const auto& row : rows) {
        table.row()
            .cell(row.name)
            .cell(row.ipc[0], 2)
            .cell(row.ipc[1], 2)
            .cell(row.ipc[2], 2)
            .cell(row.mpki[0], 2)
            .cell(row.mpki[1], 2)
            .cell(row.mpki[2], 2)
            .cell(row.speedup[1], 2)
            .cell(row.speedup[2], 2);
    }
    printSection("Figure 2 — multicore scaling on Skylake "
                 "(sorted by 4-core LLC MPKI)",
                 table);
    return 0;
}
