/**
 * @file
 * Automatic Differentiation Variational Inference (ADVI) with a
 * mean-field Gaussian family — the paper's §II-B "other algorithms"
 * alternative: approximates the posterior by optimization instead of
 * sampling. Fast, but with no asymptotic-exactness guarantee; the
 * advi_vs_nuts bench quantifies that trade-off on BayesSuite.
 *
 * The variational family is q(theta) = N(mu, diag(exp(omega))^2) on the
 * unconstrained scale; gradients use the reparameterization trick
 * (theta = mu + exp(omega) * eps, eps ~ N(0, I)) through the same AD
 * tape the samplers use, and Adam performs the ascent.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "ppl/evaluator.hpp"
#include "ppl/model.hpp"
#include "support/rng.hpp"

namespace bayes::samplers {

/** ADVI configuration. */
struct AdviConfig
{
    /** Gradient-ascent iterations. */
    int maxIterations = 2000;
    /** Monte Carlo samples per ELBO gradient estimate. */
    int gradSamples = 4;
    /** Adam step size. */
    double learningRate = 0.1;
    /** Relative ELBO improvement below which the run stops. */
    double tolerance = 1e-4;
    /** Iterations between convergence checks (ELBO moving average). */
    int evalInterval = 50;
    /** Posterior draws to sample from the fitted q at the end. */
    int outputDraws = 1000;
    /**
     * Deterministic MAP ascent iterations before the stochastic phase
     * (warm start; random inits sit far from the typical set on GLMs
     * with exponential links).
     */
    int mapWarmStart = 300;
    std::uint64_t seed = 20190331;
};

/** Result of an ADVI fit. */
struct AdviResult
{
    /** Variational means on the unconstrained scale. */
    std::vector<double> mu;
    /** Variational log standard deviations. */
    std::vector<double> omega;
    /** Smoothed ELBO at every evalInterval. */
    std::vector<double> elboTrace;
    /** True when the tolerance criterion stopped the run. */
    bool converged = false;
    /** Gradient evaluations performed (work accounting). */
    std::uint64_t gradEvals = 0;
    /** Draws from the fitted q, mapped to the constrained scale. */
    std::vector<std::vector<double>> draws;
};

/** Fit @p model with mean-field ADVI. */
AdviResult fitAdvi(const ppl::Model& model,
                   const AdviConfig& config = AdviConfig{});

} // namespace bayes::samplers
