"""Rule registry and pass pipeline.

A rule is a function `check(files, findings, ctx)` registered under a
stable id with a one-line summary (shown by `--list-rules`). The engine
runs the requested rules over one shared `discover()` pass, sorts and
dedupes the findings, and hosts the fixture self-test harness.
"""

from __future__ import annotations

import os
import sys

from .source import EXPECT_RE, Finding, discover


class Rule:
    __slots__ = ("rule_id", "summary", "check", "needs_compiler")

    def __init__(self, rule_id, summary, check, needs_compiler):
        self.rule_id = rule_id
        self.summary = summary
        self.check = check
        self.needs_compiler = needs_compiler


_REGISTRY = {}


def rule(rule_id, summary, needs_compiler=False):
    """Decorator: register `check(files, findings, ctx)` under @p rule_id."""
    def wrap(fn):
        if rule_id in _REGISTRY:
            raise ValueError(f"duplicate rule id {rule_id}")
        _REGISTRY[rule_id] = Rule(rule_id, summary, fn, needs_compiler)
        return fn
    return wrap


def registry():
    """The id -> Rule map (importing the rules package populates it)."""
    from . import rules  # noqa: F401  (import for registration side effect)
    return _REGISTRY


def default_rules(with_compiler):
    return sorted(r.rule_id for r in registry().values()
                  if with_compiler or not r.needs_compiler)


def run_rules(root, rule_ids, compiler=None, std="c++20", obs_doc=None,
              arch_doc=None):
    files = discover(root)
    ctx = {
        "root": root,
        "compiler": compiler,
        "std": std,
        "obs_doc": obs_doc or os.path.join(root, "docs", "observability.md"),
        "arch_doc": arch_doc or os.path.join(root, "docs", "architecture.md"),
    }
    findings = []
    rules = registry()
    for rule_id in rule_ids:
        rules[rule_id].check(files, findings, ctx)
    findings.sort(key=Finding.key)
    deduped = []
    for f in findings:
        if not deduped or f.key() != deduped[-1].key():
            deduped.append(f)
    return files, deduped


def self_test(root, rule_ids):
    """Compare findings against EXPECT markers in the fixture tree.

    Exact-set semantics: every EXPECT must fire and nothing else may.
    This is how tests/lint_fixtures/ proves each rule fires exactly
    where intended.
    """
    files, findings = run_rules(root, rule_ids)
    expected = set()
    for sf in files:
        for lineno, rule_ids_at in sf.expects.items():
            for rule_id in rule_ids_at:
                expected.add((sf.relpath, lineno, rule_id))
    # Markdown fixtures (the R004 catalogue, the R010 layer manifest)
    # are not C++ files; scan them for EXPECT markers directly.
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = sorted(dirnames)
        for name in sorted(filenames):
            if not name.endswith(".md"):
                continue
            rel = os.path.relpath(os.path.join(dirpath, name), root)
            with open(os.path.join(dirpath, name), encoding="utf-8") as f:
                for lineno, line in enumerate(f, 1):
                    m = EXPECT_RE.search(line)
                    if m:
                        for rule_id in m.group(1).split():
                            expected.add(
                                (rel.replace(os.sep, "/"), lineno, rule_id))
    actual = {f.key() for f in findings}
    ok = True
    for key in sorted(expected - actual):
        ok = False
        print("%s:%d: self-test: expected %s did not fire" % key)
    for f in sorted(findings, key=Finding.key):
        if f.key() not in expected:
            ok = False
            print(f"{f} (self-test: unexpected finding)")
    for path, line, rule_id in sorted(expected & actual):
        print(f"ok: {path}:{line}: {rule_id}")
    n = len(expected & actual)
    print(f"bayes-lint self-test: {n}/{len(expected)} expected findings "
          f"fired, {len(actual - expected)} unexpected", file=sys.stderr)
    return 0 if ok else 1
