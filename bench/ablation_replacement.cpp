/**
 * @file
 * Ablation — LLC replacement policy. The paper (§V-A) lists the
 * replacement policy among the factors that dominate LLC behavior below
 * the 1-MPKI regime; this sweep also shows the classic above-capacity
 * effect: random replacement beats LRU on the tape's cyclic sweeps once
 * the working set exceeds the LLC (tickets), and is indistinguishable
 * when it fits (votes).
 */
#include "common.hpp"
#include "support/table.hpp"

#include <cstdio>

using namespace bayes;
using archsim::Replacement;

namespace {

const char*
policyName(Replacement policy)
{
    switch (policy) {
      case Replacement::Lru:
        return "LRU";
      case Replacement::Fifo:
        return "FIFO";
      case Replacement::Random:
        return "random";
    }
    return "?";
}

} // namespace

int
main()
{
    Table table({"workload", "policy", "LLCMPKI@4", "IPC@4", "time(s)"});
    for (const std::string name : {"votes", "ad", "tickets"}) {
        const auto entry =
            bench::prepareWorkload(name, 1.0, bench::kShortIterations);
        for (const auto policy :
             {Replacement::Lru, Replacement::Fifo, Replacement::Random}) {
            auto platform = archsim::Platform::skylake();
            platform.llc.replacement = policy;
            const auto sim = archsim::simulateSystem(
                entry.profile, entry.work, platform, 4);
            table.row()
                .cell(name)
                .cell(policyName(policy))
                .cell(sim.llcMpki, 2)
                .cell(sim.ipc, 2)
                .cell(sim.seconds, 2);
        }
    }
    printSection("Ablation — LLC replacement policy (Skylake, 4 cores)",
                 table);
    return 0;
}
