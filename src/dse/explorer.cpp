#include "dse/explorer.hpp"

#include <algorithm>
#include <cmath>

#include <functional>
#include <future>

#include "diagnostics/convergence.hpp"
#include "diagnostics/summary.hpp"
#include "obs/obs.hpp"
#include "samplers/runner.hpp"
#include "support/thread_pool.hpp"

namespace bayes::dse {
namespace {

/** Exploration telemetry (catalogued in docs/observability.md). */
struct DseMetrics
{
    obs::Counter& explorations =
        obs::Registry::global().counter("dse.explorations");
    obs::Counter& samplingRuns =
        obs::Registry::global().counter("dse.sampling_runs");
    obs::Counter& points = obs::Registry::global().counter("dse.points");
    obs::Counter& pointsQualityOk =
        obs::Registry::global().counter("dse.points_quality_ok");
    obs::Gauge& oracleEnergyJ =
        obs::Registry::global().gauge("dse.oracle_energy_j");
    obs::Gauge& elisionEnergySaving =
        obs::Registry::global().gauge("dse.elision_energy_saving");
    obs::Histogram& pointEnergyJ =
        obs::Registry::global().histogram("dse.point_energy_j");
    obs::Histogram& pointKl =
        obs::Registry::global().histogram("dse.point_kl");

    static DseMetrics& get()
    {
        static DseMetrics* m = new DseMetrics; // leaked, like Registry
        return *m;
    }
};

/** Pool draws per coordinate: [coordinate][sample]. */
std::vector<std::vector<double>>
pooledByCoordinate(const samplers::RunResult& run)
{
    BAYES_CHECK(!run.chains.empty() && !run.chains[0].draws.empty(),
                "empty run");
    const std::size_t dim = run.chains[0].draws[0].size();
    std::vector<std::vector<double>> out(dim);
    for (std::size_t i = 0; i < dim; ++i)
        out[i] = diagnostics::pooledCoordinate(run, i);
    return out;
}

} // namespace

double
DseResult::elisionEnergySaving() const
{
    return 1.0 - bestElision().energyJ / user.energyJ;
}

double
DseResult::oracleEnergySaving() const
{
    return 1.0 - oracle.energyJ / user.energyJ;
}

const DesignPoint&
DseResult::bestElision() const
{
    BAYES_CHECK(!elision.empty(), "no elision points");
    const DesignPoint* best = &elision.front();
    for (const auto& p : elision)
        if (p.energyJ < best->energyJ)
            best = &p;
    return *best;
}

DseResult
explore(const workloads::Workload& workload,
        const archsim::Platform& platform, const DseConfig& config)
{
    BAYES_CHECK(!config.coreCounts.empty() && !config.chainCounts.empty()
                    && !config.iterFractions.empty(),
                "empty exploration grid");
    obs::Span exploreSpan("dse.explore");
    DseMetrics& metrics = DseMetrics::get();
    metrics.explorations.add();
    DseResult result;
    result.workload = workload.name();
    result.platform = platform.name;

    const int userChains = workload.info().defaultChains;
    const int userIters = workload.info().defaultIterations;

    // Every sampling run (ground truth, user setting, grid candidates,
    // elided run) is seeded independently, so they are order-free: in a
    // parallel driver mode each one becomes a task on the shared pool
    // and the coordinating thread waits for the whole batch. Inner runs
    // stay Sequential — the parallelism is at run granularity.
    const bool pooledDriver =
        config.execution.mode != samplers::ExecutionMode::Sequential;
    std::vector<std::future<void>> pending;
    auto dispatch = [&](std::string label,
                        std::function<void()> samplingTask) {
        metrics.samplingRuns.add();
        auto traced = [label = std::move(label),
                       task = std::move(samplingTask)] {
            obs::Span span("dse.run:" + label);
            task();
        };
        if (pooledDriver)
            pending.push_back(support::sharedPool(config.execution.workers)
                                  .submit(std::move(traced)));
        else
            traced();
    };

    // Ground truth: the user configuration with twice the iterations.
    samplers::Config gtCfg;
    gtCfg.chains = userChains;
    gtCfg.iterations = userIters * 2;
    gtCfg.seed = config.seed ^ 0x5157u;
    samplers::RunResult gtRun;
    dispatch("ground-truth", [&gtRun, &workload, gtCfg] {
        gtRun = samplers::run(workload, gtCfg);
    });

    // The user setting itself.
    samplers::Config userCfg;
    userCfg.chains = userChains;
    userCfg.iterations = userIters;
    userCfg.seed = config.seed;
    samplers::RunResult userRun;
    dispatch("user", [&userRun, &workload, userCfg] {
        userRun = samplers::run(workload, userCfg);
    });

    // Grid candidates: one sampling run per (chains, iteration budget).
    struct Candidate
    {
        int chains;
        int iterations;
        double fraction;
        samplers::RunResult run;
    };
    std::vector<Candidate> candidates;
    candidates.reserve(config.chainCounts.size()
                       * config.iterFractions.size());
    for (int chains : config.chainCounts) {
        for (double frac : config.iterFractions) {
            const int iters = std::max(
                40, static_cast<int>(std::lround(frac * userIters)));
            candidates.push_back(Candidate{chains, iters, frac, {}});
        }
    }
    for (auto& cand : candidates) {
        samplers::Config cfg;
        cfg.chains = cand.chains;
        cfg.iterations = cand.iterations;
        cfg.seed = config.seed + cand.chains * 1000 + cand.iterations;
        dispatch(std::to_string(cand.chains) + "ch-"
                     + std::to_string(cand.iterations) + "it",
                 [&cand, &workload, cfg] {
                     cand.run = samplers::run(workload, cfg);
                 });
    }

    // Elision-achievable run: 4 chains + runtime detection.
    samplers::Config cdCfg;
    cdCfg.chains = userChains;
    cdCfg.iterations = userIters;
    cdCfg.seed = config.seed;
    elide::ElisionResult elided;
    dispatch("cd", [&elided, &workload, cdCfg] {
        elided = elide::runWithElision(workload, cdCfg);
    });

    support::waitAll(pending);

    const auto groundTruth = pooledByCoordinate(gtRun);

    // Profiles per chain count (memory behavior depends on residency).
    std::vector<archsim::WorkloadProfile> profiles(
        *std::max_element(config.chainCounts.begin(),
                          config.chainCounts.end())
        + 1);
    auto profileFor = [&](int chains) -> const archsim::WorkloadProfile& {
        auto& slot = profiles[chains];
        if (slot.chains.empty())
            slot = archsim::profileWorkload(workload, chains);
        return slot;
    };

    auto evaluate = [&](const samplers::RunResult& run, int chains,
                        int cores, int iterations, bool usedElision,
                        std::string label) {
        const auto work = archsim::extractRunWork(run);
        const auto sim = archsim::simulateSystem(profileFor(chains), work,
                                                 platform, cores);
        DesignPoint p;
        p.label = std::move(label);
        p.cores = cores;
        p.chains = chains;
        p.iterations = iterations;
        p.elided = usedElision;
        p.seconds = sim.seconds;
        p.energyJ = sim.energyJ;
        p.kl = diagnostics::gaussianKl(pooledByCoordinate(run), groundTruth);
        return p;
    };

    // The user setting itself, on all platform cores (up to 4).
    const int userCores =
        std::min(4, std::min(platform.cores, userChains));
    result.user =
        evaluate(userRun, userChains, userCores, userIters, false, "user");
    result.user.qualityOk = true;
    const double klGate =
        std::max(config.klFloor, config.klFactor * result.user.kl);

    // Grid: (chains, iteration fraction) sampling runs x core counts.
    for (const auto& cand : candidates) {
        for (int cores : config.coreCounts) {
            if (cores > platform.cores)
                continue;
            auto p = evaluate(
                cand.run, cand.chains, cores, cand.iterations, false,
                std::to_string(cand.chains) + "ch-"
                    + std::to_string(
                        static_cast<int>(std::lround(cand.fraction * 100)))
                    + "%-" + std::to_string(cores) + "c");
            p.qualityOk = p.kl <= klGate;
            result.grid.push_back(std::move(p));
        }
    }

    // Elision-achievable points: 4 chains + runtime detection.
    const int elidedIters = elided.executedIterations;
    for (int cores : config.coreCounts) {
        if (cores > platform.cores)
            continue;
        auto p = evaluate(elided.run, userChains, cores, elidedIters, true,
                          "cd-" + std::to_string(cores) + "c");
        p.qualityOk = p.kl <= klGate;
        result.elision.push_back(std::move(p));
    }

    // Energy oracle: cheapest quality-passing point anywhere.
    const DesignPoint* oracle = &result.user;
    auto consider = [&](const DesignPoint& p) {
        if (p.qualityOk && p.energyJ < oracle->energyJ)
            oracle = &p;
    };
    for (const auto& p : result.grid)
        consider(p);
    for (const auto& p : result.elision)
        consider(p);
    result.oracle = *oracle;

    // Per-grid-point rollups for the metrics exporter.
    auto rollup = [&](const DesignPoint& p) {
        metrics.points.add();
        if (p.qualityOk)
            metrics.pointsQualityOk.add();
        metrics.pointEnergyJ.observe(p.energyJ);
        metrics.pointKl.observe(p.kl);
    };
    rollup(result.user);
    for (const auto& p : result.grid)
        rollup(p);
    for (const auto& p : result.elision)
        rollup(p);
    metrics.oracleEnergyJ.set(result.oracle.energyJ);
    metrics.elisionEnergySaving.set(result.elisionEnergySaving());
    return result;
}

} // namespace bayes::dse
