// R008 fixture: per-chain Evaluator::logProbGrad loops outside
// src/samplers/ must be flagged — the batched surface
// (logProbGradBatch over a ppl::EvalBatch) streams the data once.

#include <vector>

struct Evaluator
{
    double logProbGrad(const std::vector<double>&, std::vector<double>&);
    double logProbGradBatch(const double*, double*, double*);
};

double
per_chain_loop(Evaluator& eval,
               const std::vector<std::vector<double>>& chains)
{
    double lp = 0.0;
    std::vector<double> grad;
    for (const auto& q : chains) {
        lp += eval.logProbGrad(q, grad); // EXPECT: R008
    }
    return lp;
}

double
braceless_pointer_call(Evaluator* eval,
                       const std::vector<std::vector<double>>& chains)
{
    double lp = 0.0;
    std::vector<double> grad;
    for (const auto& q : chains)
        lp += eval->logProbGrad(q, grad); // EXPECT: R008
    return lp;
}

double
single_call_is_fine(Evaluator& eval, const std::vector<double>& q)
{
    std::vector<double> grad;
    return eval.logProbGrad(q, grad);
}

double
batched_call_is_fine(Evaluator& eval, const double* batch, double* lp,
                     double* grads, int rounds)
{
    double total = 0.0;
    for (int r = 0; r < rounds; ++r)
        total += eval.logProbGradBatch(batch, lp, grads);
    return total;
}

double
waived_profiling_loop(Evaluator& eval,
                      const std::vector<std::vector<double>>& chains)
{
    double lp = 0.0;
    std::vector<double> grad;
    for (const auto& q : chains)
        // bayes-lint: allow(R008): independent per-chain traces wanted
        lp += eval.logProbGrad(q, grad);
    return lp;
}
