/**
 * @file
 * Fixed-size worker pool shared by the parallel-chain runner and the
 * design-space explorer. Workers are started once and reused across
 * runs — under heavy multi-run traffic a job costs one enqueue per
 * task instead of a thread spawn per chain per run.
 *
 * Usage rule: a task must never block on the future of another task
 * submitted to the *same* pool. With every worker busy, the waiting
 * task would starve the task it waits for. All waiting in this
 * codebase therefore happens on the coordinating (submitting) thread:
 * the phased runner and the DSE driver submit, then wait from outside
 * the pool.
 *
 * Pool activity is exported through the obs layer — `pool.*` counters
 * and histograms (queue depth at submit, per-task latency, worker idle
 * time) plus a `pool.task` trace span per executed task; the catalogue
 * lives in docs/observability.md.
 */
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <thread>
#include <vector>

#include "support/thread_safety.hpp"

namespace bayes::support {

/** Fixed set of worker threads draining a shared task queue. */
class ThreadPool
{
  public:
    /** Start @p workers threads. @pre workers >= 1 */
    explicit ThreadPool(int workers);

    /** Finishes every queued task, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /** Number of worker threads. */
    int workers() const { return static_cast<int>(workers_.size()); }

    /**
     * Enqueue @p task; the future resolves when it completes and
     * carries any exception it threw.
     */
    std::future<void> submit(std::function<void()> task);

    /** Tasks finished since construction (monitoring counter). */
    std::uint64_t tasksCompleted() const { return completed_.load(); }

    /**
     * Tasks currently waiting in the queue (none executing). This is
     * the backpressure signal admission-control layers (bayes::serve)
     * consult before accepting more work; the value is exact at the
     * instant of the lock but naturally stale by the time the caller
     * acts on it — treat it as a load estimate, not an invariant.
     */
    std::size_t queueDepth() const;

  private:
    void workerLoop();

    mutable Mutex mutex_;
    CondVar cv_;
    std::deque<std::function<void()>> queue_ BAYES_GUARDED_BY(mutex_);
    std::vector<std::thread> workers_;
    std::atomic<std::uint64_t> completed_{0};
    bool stopping_ BAYES_GUARDED_BY(mutex_) = false;
};

/**
 * Process-wide pools reused across runs, keyed by worker count.
 * @param workers  pool size; 0 = the hardware concurrency (min 1)
 */
ThreadPool& sharedPool(int workers = 0);

/**
 * get() every future, clearing the vector; if any task failed, the
 * first exception is rethrown after all of them finished (so no task
 * still references caller state when the stack unwinds).
 */
void waitAll(std::vector<std::future<void>>& futures);

} // namespace bayes::support
