/**
 * @file
 * Draws-CSV round-trip tests.
 */
#include <gtest/gtest.h>

#include <sstream>

#include "io/csv.hpp"
#include "support/error.hpp"

namespace bayes {
namespace {

samplers::RunResult
smallRun()
{
    samplers::RunResult run;
    run.chains.resize(2);
    run.chains[0].draws = {{1.0, 2.0}, {3.0, 4.0}};
    run.chains[1].draws = {{-1.5, 0.25}};
    return run;
}

ppl::ParamLayout
smallLayout()
{
    return ppl::ParamLayout({
        {"mu", 1, ppl::TransformKind::Identity, 0, 0},
        {"sigma", 1, ppl::TransformKind::Identity, 0, 0},
    });
}

TEST(Csv, HeaderUsesCoordinateNames)
{
    std::ostringstream out;
    writeDrawsCsv(out, smallRun(), smallLayout());
    EXPECT_EQ(out.str().substr(0, out.str().find('\n')),
              "chain,draw,mu,sigma");
}

TEST(Csv, RoundTripPreservesValues)
{
    std::ostringstream out;
    const auto run = smallRun();
    writeDrawsCsv(out, run, smallLayout());
    std::istringstream in(out.str());
    const auto chains = readDrawsCsv(in);
    ASSERT_EQ(chains.size(), 2u);
    ASSERT_EQ(chains[0].size(), 2u);
    ASSERT_EQ(chains[1].size(), 1u);
    EXPECT_EQ(chains[0][1], (std::vector<double>{3.0, 4.0}));
    EXPECT_EQ(chains[1][0], (std::vector<double>{-1.5, 0.25}));
}

TEST(Csv, RoundTripPreservesFullPrecision)
{
    samplers::RunResult run;
    run.chains.resize(1);
    run.chains[0].draws = {{1.0 / 3.0, 2.0e-17}};
    std::ostringstream out;
    writeDrawsCsv(out, run, smallLayout());
    std::istringstream in(out.str());
    const auto chains = readDrawsCsv(in);
    EXPECT_DOUBLE_EQ(chains[0][0][0], 1.0 / 3.0);
    EXPECT_DOUBLE_EQ(chains[0][0][1], 2.0e-17);
}

TEST(Csv, RejectsEmptyInput)
{
    std::istringstream empty("");
    EXPECT_THROW(readDrawsCsv(empty), Error);
    std::istringstream headerOnly("chain,draw,x\n");
    EXPECT_THROW(readDrawsCsv(headerOnly), Error);
}

TEST(Csv, RejectsRaggedRows)
{
    std::istringstream bad("chain,draw,a,b\n0,0,1.0\n");
    EXPECT_THROW(readDrawsCsv(bad), Error);
}

TEST(Csv, RejectsDimensionMismatchOnWrite)
{
    samplers::RunResult run;
    run.chains.resize(1);
    run.chains[0].draws = {{1.0}}; // layout wants 2 coords
    std::ostringstream out;
    EXPECT_THROW(writeDrawsCsv(out, run, smallLayout()), Error);
}

TEST(Csv, WriteToBadPathThrows)
{
    EXPECT_THROW(
        writeDrawsCsv("/nonexistent-dir/x.csv", smallRun(), smallLayout()),
        Error);
}

} // namespace
} // namespace bayes
