/**
 * @file
 * Clang Thread Safety Analysis annotations plus the annotated lock
 * primitives the rest of the tree is required to use (lint rule R011).
 *
 * The paper's determinism claims assume every piece of shared mutable
 * state has exactly one well-known guard: the pool queue, the obs
 * registry maps, the tracer event buffer, the serve queue and warm
 * cache. These macros turn that convention into a compiler-checked
 * contract — under clang, `-Wthread-safety` (an error in the clang CI
 * cells) rejects any access to a `BAYES_GUARDED_BY` member without its
 * mutex held; under other compilers every macro expands to nothing.
 *
 * libstdc++'s `std::mutex` carries no capability attributes, so locks
 * taken through `std::lock_guard` are invisible to the analysis. The
 * `Mutex` / `MutexLock` / `CondVar` wrappers below are the annotated
 * equivalents: same cost (they compile to the std primitives), but
 * every acquire/release is visible to the checker. New mutex-guarded
 * state must use them; R011 statically requires every mutex member in
 * src/ to be referenced by at least one BAYES_GUARDED_BY /
 * BAYES_REQUIRES annotation (or carry a justified waiver).
 *
 * This header is *freestanding* (see the layer manifest in
 * docs/architecture.md): it includes nothing from src/, so any layer —
 * including obs, which sits below support — may include it without
 * creating a layer edge.
 */
#pragma once

#include <condition_variable>
#include <mutex>

#if defined(__clang__) && !defined(SWIG)
#define BAYES_TS_ATTR(x) __attribute__((x))
#else
#define BAYES_TS_ATTR(x) // no-op outside clang
#endif

/** Marks a type as a lockable capability (clang TSA `capability`). */
#define BAYES_CAPABILITY(x) BAYES_TS_ATTR(capability(x))

/** Marks an RAII type that acquires in ctor / releases in dtor. */
#define BAYES_SCOPED_CAPABILITY BAYES_TS_ATTR(scoped_lockable)

/** Data member readable/writable only with @p x held. */
#define BAYES_GUARDED_BY(x) BAYES_TS_ATTR(guarded_by(x))

/** Pointer member whose *pointee* is protected by @p x. */
#define BAYES_PT_GUARDED_BY(x) BAYES_TS_ATTR(pt_guarded_by(x))

/** Function requires the listed capabilities held on entry and exit. */
#define BAYES_REQUIRES(...) BAYES_TS_ATTR(requires_capability(__VA_ARGS__))

/** Shared (reader) variant of BAYES_REQUIRES. */
#define BAYES_REQUIRES_SHARED(...) \
    BAYES_TS_ATTR(requires_shared_capability(__VA_ARGS__))

/** Function acquires the capability (held on exit, not on entry). */
#define BAYES_ACQUIRE(...) BAYES_TS_ATTR(acquire_capability(__VA_ARGS__))
#define BAYES_ACQUIRE_SHARED(...) \
    BAYES_TS_ATTR(acquire_shared_capability(__VA_ARGS__))

/** Function releases the capability (held on entry, not on exit). */
#define BAYES_RELEASE(...) BAYES_TS_ATTR(release_capability(__VA_ARGS__))
#define BAYES_RELEASE_SHARED(...) \
    BAYES_TS_ATTR(release_shared_capability(__VA_ARGS__))

/** Function acquires the capability when it returns @p first arg. */
#define BAYES_TRY_ACQUIRE(...) \
    BAYES_TS_ATTR(try_acquire_capability(__VA_ARGS__))

/** Function must NOT be called with the listed capabilities held. */
#define BAYES_EXCLUDES(...) BAYES_TS_ATTR(locks_excluded(__VA_ARGS__))

/** Function returns a reference to the named capability. */
#define BAYES_RETURN_CAPABILITY(x) BAYES_TS_ATTR(lock_returned(x))

/** Escape hatch; every use needs a comment explaining why. */
#define BAYES_NO_THREAD_SAFETY_ANALYSIS \
    BAYES_TS_ATTR(no_thread_safety_analysis)

namespace bayes::support {

/**
 * Annotated `std::mutex`. Identical cost and semantics; the attributes
 * make acquire/release visible to clang's thread safety analysis.
 */
class BAYES_CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex&) = delete;
    Mutex& operator=(const Mutex&) = delete;

    void lock() BAYES_ACQUIRE() { m_.lock(); }
    void unlock() BAYES_RELEASE() { m_.unlock(); }
    bool try_lock() BAYES_TRY_ACQUIRE(true) { return m_.try_lock(); }

    /**
     * Underlying std::mutex, for interop that needs it (CondVar). Locks
     * taken through the native handle bypass the analysis — keep such
     * uses inside annotated wrappers.
     */
    std::mutex& native() noexcept { return m_; }

  private:
    std::mutex m_; // bayes-lint: allow(R011): the annotated wrapper itself; guarded state references the enclosing Mutex
};

/** RAII lock for Mutex — the annotated `std::lock_guard`. */
class BAYES_SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex& mutex) BAYES_ACQUIRE(mutex) : mutex_(mutex)
    {
        mutex_.lock();
    }
    ~MutexLock() BAYES_RELEASE() { mutex_.unlock(); }

    MutexLock(const MutexLock&) = delete;
    MutexLock& operator=(const MutexLock&) = delete;

  private:
    Mutex& mutex_;
};

/**
 * Condition variable over Mutex. `wait` must be called with the mutex
 * held (BAYES_REQUIRES): it atomically releases while blocking and
 * reacquires before returning, so from the analysis' point of view the
 * capability is held across the call — which is exactly the guarantee
 * callers rely on when they re-examine guarded state after waking.
 */
class CondVar
{
  public:
    CondVar() = default;
    CondVar(const CondVar&) = delete;
    CondVar& operator=(const CondVar&) = delete;

    void wait(Mutex& mutex) BAYES_REQUIRES(mutex)
    {
        // Adopt the already-held native mutex for the wait protocol,
        // then release ownership back without unlocking: the caller's
        // MutexLock (or explicit lock) stays the owner of record.
        std::unique_lock<std::mutex> lock(mutex.native(), std::adopt_lock);
        cv_.wait(lock);
        lock.release();
    }

    void notify_one() noexcept { cv_.notify_one(); }
    void notify_all() noexcept { cv_.notify_all(); }

  private:
    std::condition_variable cv_;
};

} // namespace bayes::support
