/**
 * @file
 * Micro-bench — hot distribution kernels in both evaluation modes:
 * value-only (double) and taped (Var). The value/taped ratio is the
 * interpreter overhead the architecture model's per-node instruction
 * costs represent.
 */
#include <benchmark/benchmark.h>

#include "ad/tape.hpp"
#include "math/distributions.hpp"
#include "support/rng.hpp"

using namespace bayes;
using namespace bayes::math;

namespace {

std::vector<double>
observations(std::size_t n)
{
    Rng rng(42);
    std::vector<double> ys(n);
    for (auto& y : ys)
        y = rng.normal(0.5, 1.2);
    return ys;
}

void
BM_NormalLpdfDouble(benchmark::State& state)
{
    const auto ys = observations(1024);
    for (auto _ : state) {
        double lp = 0.0;
        for (double y : ys)
            lp += normal_lpdf(y, 0.3, 1.1);
        benchmark::DoNotOptimize(lp);
    }
    state.SetItemsProcessed(state.iterations() * 1024);
}

void
BM_NormalLpdfTaped(benchmark::State& state)
{
    const auto ys = observations(1024);
    ad::Tape tape;
    for (auto _ : state) {
        tape.clear();
        ad::Var mu = ad::leaf(tape, 0.3);
        ad::Var sigma = ad::leaf(tape, 1.1);
        ad::Var lp = 0.0;
        for (double y : ys)
            lp += normal_lpdf(y, mu, sigma);
        std::vector<double> adj;
        tape.gradient(lp.id(), adj);
        benchmark::DoNotOptimize(adj.data());
    }
    state.SetItemsProcessed(state.iterations() * 1024);
}

void
BM_BernoulliLogitTaped(benchmark::State& state)
{
    ad::Tape tape;
    for (auto _ : state) {
        tape.clear();
        ad::Var eta = ad::leaf(tape, 0.4);
        ad::Var lp = 0.0;
        for (int i = 0; i < 1024; ++i)
            lp += bernoulli_logit_lpmf(i & 1, eta);
        std::vector<double> adj;
        tape.gradient(lp.id(), adj);
        benchmark::DoNotOptimize(adj.data());
    }
    state.SetItemsProcessed(state.iterations() * 1024);
}

void
BM_PoissonLogTaped(benchmark::State& state)
{
    ad::Tape tape;
    for (auto _ : state) {
        tape.clear();
        ad::Var eta = ad::leaf(tape, 1.2);
        ad::Var lp = 0.0;
        for (long i = 0; i < 1024; ++i)
            lp += poisson_log_lpmf(i % 7, eta);
        std::vector<double> adj;
        tape.gradient(lp.id(), adj);
        benchmark::DoNotOptimize(adj.data());
    }
    state.SetItemsProcessed(state.iterations() * 1024);
}

} // namespace

BENCHMARK(BM_NormalLpdfDouble);
BENCHMARK(BM_NormalLpdfTaped);
BENCHMARK(BM_BernoulliLogitTaped);
BENCHMARK(BM_PoissonLogTaped);
