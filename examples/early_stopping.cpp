/**
 * @file
 * Computation elision in practice — run one BayesSuite workload with
 * and without runtime convergence detection, compare the iteration
 * counts, posterior quality, and the simulated latency/energy effect
 * on a Skylake server (the paper's §VI mechanism).
 */
#include <cstdio>
#include <fstream>

#include "archsim/system.hpp"
#include "diagnostics/convergence.hpp"
#include "diagnostics/summary.hpp"
#include "elide/elision.hpp"
#include "obs/obs.hpp"
#include "samplers/runner.hpp"
#include "support/table.hpp"
#include "support/timer.hpp"
#include "workloads/workload.hpp"

using namespace bayes;

int
main()
{
    const auto wl = workloads::makeWorkload("12cities");
    samplers::Config cfg;
    cfg.chains = wl->info().defaultChains;
    cfg.iterations = wl->info().defaultIterations;
    cfg.execution = samplers::ExecutionPolicy::pool();

    std::printf("Running %s at the user setting (%d x %d)...\n",
                wl->name().c_str(), cfg.chains, cfg.iterations);
    const auto full = samplers::run(*wl, cfg);

    std::printf("Running %s with runtime convergence detection "
                "(phased on the pool)...\n",
                wl->name().c_str());
    // The detector publishes its decisions through the obs layer: the
    // trace carries an `elide.rhat` counter track, the registry the
    // check/stop rollup. No ad-hoc logging needed here.
    obs::Tracer::global().start();
    Timer pooledTimer;
    const auto elided = elide::runWithElision(*wl, cfg);
    const double pooledSeconds = pooledTimer.seconds();

    // Elision composes with parallelism: the sequential schedule stops
    // at the very same draw, it just uses one core.
    auto seqCfg = cfg;
    seqCfg.execution = samplers::ExecutionPolicy::sequential();
    Timer seqTimer;
    const auto elidedSeq = elide::runWithElision(*wl, seqCfg);
    const double seqSeconds = seqTimer.seconds();
    std::printf("pooled stop draw %d == sequential stop draw %d; "
                "wall %.2fs vs %.2fs (%.2fx)\n",
                elided.stoppedAtDraw, elidedSeq.stoppedAtDraw,
                pooledSeconds, seqSeconds, seqSeconds / pooledSeconds);

    // Detector telemetry straight from the obs registry — this is the
    // same data `bayessuite_cli --metrics-out` exports.
    obs::Tracer::global().stop();
    const auto snap = obs::Registry::global().snapshot();
    const obs::HistogramStats* rhatStats = snap.histogram("elide.rhat");
    std::printf("\nDetector telemetry (obs registry):\n");
    std::printf("  R-hat checks:        %llu\n",
                static_cast<unsigned long long>(snap.counter(
                    "elide.checks")));
    if (rhatStats != nullptr)
        std::printf("  R-hat range checked: [%.4f, %.4f], last %.4f\n",
                    rhatStats->min, rhatStats->max, snap.gauge(
                        "elide.last_rhat"));
    std::printf("  stop draw:           %.0f\n", snap.gauge(
                    "elide.stop_draw"));
    {
        std::ofstream os("early_stopping.trace.json");
        obs::Tracer::global().writeJson(os);
        std::printf("  trace written to early_stopping.trace.json "
                    "(%zu events; the elide.rhat counter track in "
                    "ui.perfetto.dev is the R-hat trajectory)\n",
                    obs::Tracer::global().eventCount());
    }

    // Posterior quality: compare a few coordinates.
    const auto sumFull = diagnostics::summarize(full, wl->layout());
    const auto sumElided =
        diagnostics::summarize(elided.run, wl->layout());
    Table quality({"param", "full mean", "elided mean", "full sd"});
    for (std::size_t i = 0; i < 3; ++i) {
        quality.row()
            .cell(sumFull.coords[i].name)
            .cell(sumFull.coords[i].mean, 4)
            .cell(sumElided.coords[i].mean, 4)
            .cell(sumFull.coords[i].sd, 4);
    }
    std::printf("\n%s\n", quality.str().c_str());

    // Architecture effect.
    const auto profile = archsim::profileWorkload(*wl, cfg.chains);
    const auto platform = archsim::Platform::skylake();
    const auto tFull = archsim::simulateSystem(
        profile, archsim::extractRunWork(full), platform, 4);
    const auto tElided = archsim::simulateSystem(
        profile, archsim::extractRunWork(elided.run), platform, 4);

    std::printf("iterations executed: %d of %d (%.0f%% elided)\n",
                elided.executedIterations, elided.budgetIterations,
                100.0 * elided.elidedFraction());
    std::printf("simulated latency:  %.2fs -> %.2fs (%.1fx)\n",
                tFull.seconds, tElided.seconds,
                tFull.seconds / tElided.seconds);
    std::printf("simulated energy:   %.1fJ -> %.1fJ (%.0f%% saved)\n",
                tFull.energyJ, tElided.energyJ,
                100.0 * (1.0 - tElided.energyJ / tFull.energyJ));
    std::printf("detector overhead:  %.4fs wall clock\n",
                elided.detectorSeconds);
    return elided.converged ? 0 : 1;
}
