/**
 * @file
 * Fused vectorized likelihood kernels with analytic adjoints.
 *
 * Each kernel makes one pass over the observed data computing the log
 * density together with the analytic partial derivative for every
 * parameter, then records a single wide tape node (ad::Tape::pushWide)
 * carrying one edge per parameter. This is the optimization Stan's
 * `*_glm_lpdf` vectorized kernels popularized: the per-observation
 * scalar subgraph (~5-15 nodes each) collapses into one node, so the
 * tape working set the reverse sweep touches shrinks by an order of
 * magnitude while the data pass itself is unchanged.
 *
 * Every kernel is templated so each parameter can independently be a
 * plain double (fixed hyperparameter) or an ad::Var; the all-double
 * instantiation skips the adjoint bookkeeping entirely and returns the
 * plain value, keeping the value-only path (MH, slice, ADVI) fast.
 *
 * The GLM kernels accumulate the same per-observation expressions in
 * the same order as the scalar loops; the sufficient-statistic kernels
 * use algebraically equal closed forms. Either way fused and scalar
 * log densities agree to ~1e-13 relative (not bitwise), and gradients
 * likewise (the scalar tape accumulates adjoints in reverse-sweep
 * order, the kernels in forward data order).
 * tests/test_vec_kernels.cpp pins both properties.
 */
#pragma once

#include <cmath>
#include <cstddef>
#include <span>
#include <type_traits>
#include <vector>

#include "math/functions.hpp"

/**
 * Restrict qualifier for the batched kernels' hot pointers: promises
 * the SoA lane buffers do not alias the design matrix, which is what
 * lets the compiler vectorize the lane-inner loops.
 */
#if defined(__GNUC__) || defined(__clang__)
#define BAYES_RESTRICT __restrict__
#else
#define BAYES_RESTRICT
#endif

namespace bayes::math {

namespace detail {

/**
 * Collects {parent, weight} edges for one fused term and emits the wide
 * node. Parameters that are plain doubles or untracked constants
 * contribute no edge; if no parameter is tracked the result collapses
 * to a constant (no tape traffic at all).
 */
class WideTerm
{
  public:
    void reserve(std::size_t n)
    {
        parents_.reserve(n);
        weights_.reserve(n);
    }

    void
    edge(const ad::Var& v, double weight)
    {
        if (!v.tracked())
            return;
        tape_ = v.tape();
        parents_.push_back(v.id());
        weights_.push_back(weight);
    }

    void edge(double, double) {}

    ad::Var
    emit(double value, ad::OpClass cls = ad::OpClass::Special) const
    {
        if (!tape_)
            return ad::Var(value);
        return ad::Var(tape_, value,
                       tape_->pushWide(parents_, weights_, cls));
    }

  private:
    std::vector<ad::NodeId> parents_;
    std::vector<double> weights_;
    ad::Tape* tape_ = nullptr;
};

/** Values of a (double or Var) parameter span, for the fused data pass. */
template <typename T>
inline std::vector<double>
values(std::span<const T> xs)
{
    std::vector<double> out(xs.size());
    for (std::size_t i = 0; i < xs.size(); ++i)
        out[i] = valueOf(xs[i]);
    return out;
}

/**
 * Batched counterpart of WideTerm: collects the {parent, weight} edges
 * of K lanes' fused terms (lane-major, every lane contributing the same
 * parameters in the same order) and emits them as one
 * ad::Tape::pushWideBatch call — K consecutive nodes over one
 * contiguous edge block.
 */
class BatchWideTerm
{
  public:
    explicit BatchWideTerm(std::size_t lanes) : lanes_(lanes) {}

    void
    reserve(std::size_t perLane)
    {
        parents_.reserve(lanes_ * perLane);
        weights_.reserve(lanes_ * perLane);
    }

    void
    edge(const ad::Var& v, double weight)
    {
        if (!v.tracked())
            return;
        tape_ = v.tape();
        parents_.push_back(v.id());
        weights_.push_back(weight);
    }

    void edge(double, double) {}

    /** Emit the batch; lane k of @p out becomes the node id + k. */
    template <typename TOut>
    void
    emit(std::span<const double> values, std::span<TOut> out,
         ad::OpClass cls = ad::OpClass::Special) const
    {
        BAYES_ASSERT(values.size() == lanes_ && out.size() == lanes_);
        if constexpr (std::is_same_v<TOut, ad::Var>) {
            if (!tape_) {
                for (std::size_t k = 0; k < lanes_; ++k)
                    out[k] = ad::Var(values[k]);
                return;
            }
            // Untracked parameters are skipped per edge() call, so a
            // uniform parameter structure across lanes is required for
            // the lane-major block to line up.
            BAYES_CHECK(parents_.size() % lanes_ == 0,
                        "batched term has ragged lane edge counts");
            const ad::NodeId base = tape_->pushWideBatch(
                parents_, weights_, static_cast<std::uint32_t>(lanes_),
                cls);
            for (std::size_t k = 0; k < lanes_; ++k)
                out[k] = ad::Var(tape_, values[k],
                                 base + static_cast<ad::NodeId>(k));
        } else {
            for (std::size_t k = 0; k < lanes_; ++k)
                out[k] = values[k];
        }
    }

  private:
    std::size_t lanes_;
    std::vector<ad::NodeId> parents_;
    std::vector<double> weights_;
    ad::Tape* tape_ = nullptr;
};

} // namespace detail

// ---------------------------------------------------------------------
// Normal family
// ---------------------------------------------------------------------

/**
 * Sum of Normal(mu, sigma) log densities over a data vector, fused via
 * the (shifted) sufficient statistics n, Σ(y-μ), Σ(y-μ)².
 */
template <typename TMu, typename TSigma>
promote_t<TMu, TSigma>
normal_lpdf_vec(std::span<const double> ys, const TMu& mu,
                const TSigma& sigma)
{
    using R = promote_t<TMu, TSigma>;
    const double muV = valueOf(mu);
    const double inv = 1.0 / valueOf(sigma);
    const double n = static_cast<double>(ys.size());
    double s1 = 0.0, s2 = 0.0;
    for (double y : ys) {
        const double d = y - muV;
        s1 += d;
        s2 += d * d;
    }
    const double value = -0.5 * s2 * inv * inv
        - n * (std::log(valueOf(sigma)) + kLogSqrtTwoPi);
    if constexpr (std::is_same_v<R, ad::Var>) {
        detail::WideTerm t;
        t.reserve(2);
        t.edge(mu, s1 * inv * inv);
        t.edge(sigma, s2 * inv * inv * inv - n * inv);
        return t.emit(value);
    } else {
        return value;
    }
}

/**
 * Sum of Normal(mu, sigma) log densities over a *parameter* vector
 * (e.g. a hierarchical prior over group effects): one wide node with an
 * edge per element plus the location/scale edges.
 */
template <typename TMu, typename TSigma>
ad::Var
normal_lpdf_vec(std::span<const ad::Var> ys, const TMu& mu,
                const TSigma& sigma)
{
    const double muV = valueOf(mu);
    const double inv = 1.0 / valueOf(sigma);
    const double n = static_cast<double>(ys.size());
    detail::WideTerm t;
    t.reserve(ys.size() + 2);
    double s1 = 0.0, s2 = 0.0;
    for (const ad::Var& y : ys) {
        const double d = y.value() - muV;
        s1 += d;
        s2 += d * d;
        t.edge(y, -d * inv * inv);
    }
    const double value = -0.5 * s2 * inv * inv
        - n * (std::log(valueOf(sigma)) + kLogSqrtTwoPi);
    t.edge(mu, s1 * inv * inv);
    t.edge(sigma, s2 * inv * inv * inv - n * inv);
    return t.emit(value);
}

/**
 * Sum of Normal(mu_i, sigma) log densities with a per-observation
 * location parameter (e.g. data around a latent function), one shared
 * scale.
 */
template <typename TMu, typename TSigma>
promote_t<TMu, TSigma>
normal_lpdf_vec(std::span<const double> ys, std::span<const TMu> mus,
                const TSigma& sigma)
{
    using R = promote_t<TMu, TSigma>;
    BAYES_ASSERT(ys.size() == mus.size());
    const double inv = 1.0 / valueOf(sigma);
    const double n = static_cast<double>(ys.size());
    detail::WideTerm t;
    if constexpr (std::is_same_v<R, ad::Var>)
        t.reserve(mus.size() + 1);
    double ssz = 0.0;
    for (std::size_t i = 0; i < ys.size(); ++i) {
        const double z = (ys[i] - valueOf(mus[i])) * inv;
        ssz += z * z;
        if constexpr (std::is_same_v<R, ad::Var>)
            t.edge(mus[i], z * inv);
    }
    const double value =
        -0.5 * ssz - n * (std::log(valueOf(sigma)) + kLogSqrtTwoPi);
    if constexpr (std::is_same_v<R, ad::Var>) {
        t.edge(sigma, ssz * inv - n * inv);
        return t.emit(value);
    } else {
        return value;
    }
}

/** Sum of standard normal log densities over a parameter vector. */
inline ad::Var
std_normal_lpdf_vec(std::span<const ad::Var> zs)
{
    detail::WideTerm t;
    t.reserve(zs.size());
    double ss = 0.0;
    for (const ad::Var& z : zs) {
        ss += z.value() * z.value();
        t.edge(z, -z.value());
    }
    const double value =
        -0.5 * ss - static_cast<double>(zs.size()) * kLogSqrtTwoPi;
    return t.emit(value);
}

/** Value-only twin of std_normal_lpdf_vec for the double path. */
inline double
std_normal_lpdf_vec(std::span<const double> zs)
{
    double ss = 0.0;
    for (double z : zs)
        ss += z * z;
    return -0.5 * ss - static_cast<double>(zs.size()) * kLogSqrtTwoPi;
}

// ---------------------------------------------------------------------
// Exponential / Gamma / Negative binomial
// ---------------------------------------------------------------------

/** Sum of Exponential(rate) log densities over a parameter vector. */
template <typename TRate>
ad::Var
exponential_lpdf_vec(std::span<const ad::Var> ys, const TRate& rate)
{
    const double rateV = valueOf(rate);
    const double n = static_cast<double>(ys.size());
    detail::WideTerm t;
    t.reserve(ys.size() + 1);
    double sy = 0.0;
    for (const ad::Var& y : ys) {
        sy += y.value();
        t.edge(y, -rateV);
    }
    const double value = n * std::log(rateV) - rateV * sy;
    t.edge(rate, n / rateV - sy);
    return t.emit(value);
}

/** Sum of Exponential(rate) log densities over a data vector. */
template <typename TRate>
promote_t<TRate>
exponential_lpdf_vec(std::span<const double> ys, const TRate& rate)
{
    using R = promote_t<TRate>;
    const double rateV = valueOf(rate);
    const double n = static_cast<double>(ys.size());
    double sy = 0.0;
    for (double y : ys)
        sy += y;
    const double value = n * std::log(rateV) - rateV * sy;
    if constexpr (std::is_same_v<R, ad::Var>) {
        detail::WideTerm t;
        t.edge(rate, n / rateV - sy);
        return t.emit(value);
    } else {
        return value;
    }
}

/**
 * Sum of Gamma(shape, rate) log densities over a data vector, fused via
 * the sufficient statistics n, Σlog y, Σy.
 */
template <typename TShape, typename TRate>
promote_t<TShape, TRate>
gamma_lpdf_vec(std::span<const double> ys, const TShape& shape,
               const TRate& rate)
{
    using R = promote_t<TShape, TRate>;
    const double shapeV = valueOf(shape);
    const double rateV = valueOf(rate);
    const double n = static_cast<double>(ys.size());
    double slog = 0.0, sy = 0.0;
    for (double y : ys) {
        slog += std::log(y);
        sy += y;
    }
    const double value = n * (shapeV * std::log(rateV) - lgammaSafe(shapeV))
        + (shapeV - 1.0) * slog - rateV * sy;
    if constexpr (std::is_same_v<R, ad::Var>) {
        detail::WideTerm t;
        t.reserve(2);
        t.edge(shape, n * (std::log(rateV) - digamma(shapeV)) + slog);
        t.edge(rate, n * shapeV / rateV - sy);
        return t.emit(value);
    } else {
        return value;
    }
}

/**
 * Sum of neg_binomial_2(mu, phi) log masses over a count vector
 * (mean/overdispersion parameterization).
 */
template <typename TMu, typename TPhi>
promote_t<TMu, TPhi>
neg_binomial_2_lpmf_vec(std::span<const long> ys, const TMu& mu,
                        const TPhi& phi)
{
    using R = promote_t<TMu, TPhi>;
    const double muV = valueOf(mu);
    const double phiV = valueOf(phi);
    const double logMu = std::log(muV);
    const double logPhi = std::log(phiV);
    const double logMuPhi = std::log(muV + phiV);
    const double lgPhi = lgammaSafe(phiV);
    const double digPhi = digamma(phiV);
    double value = 0.0, dMu = 0.0, dPhi = 0.0;
    for (long y : ys) {
        const double ky = static_cast<double>(y);
        value += lgammaSafe(ky + phiV) - lgammaSafe(ky + 1.0) - lgPhi
            + phiV * (logPhi - logMuPhi) + ky * (logMu - logMuPhi);
        if constexpr (std::is_same_v<R, ad::Var>) {
            dMu += ky / muV - (ky + phiV) / (muV + phiV);
            dPhi += digamma(ky + phiV) - digPhi + logPhi - logMuPhi + 1.0
                - (ky + phiV) / (muV + phiV);
        }
    }
    if constexpr (std::is_same_v<R, ad::Var>) {
        detail::WideTerm t;
        t.reserve(2);
        t.edge(mu, dMu);
        t.edge(phi, dPhi);
        return t.emit(value);
    } else {
        return value;
    }
}

// ---------------------------------------------------------------------
// GLM kernels: value + all partials in one pass over the design matrix
// ---------------------------------------------------------------------

/**
 * Bernoulli-logit GLM: sum of bernoulli_logit_lpmf(y_i, alpha + x_i·β)
 * over rows of the row-major n×K design matrix @p x. Residuals
 * r_i = y_i - invLogit(eta_i) give ∂α = Σ r_i and ∂β_k = Σ r_i x_ik.
 */
template <typename TAlpha, typename TBeta>
promote_t<TAlpha, TBeta>
bernoulli_logit_glm_lpmf(std::span<const int> ys,
                         std::span<const double> x, const TAlpha& alpha,
                         std::span<const TBeta> betas)
{
    using R = promote_t<TAlpha, TBeta>;
    const std::size_t n = ys.size();
    const std::size_t numK = betas.size();
    BAYES_ASSERT(x.size() == n * numK);
    const double alphaV = valueOf(alpha);
    const std::vector<double> betaV = detail::values(betas);
    double value = 0.0;
    double dAlpha = 0.0;
    std::vector<double> dBeta;
    if constexpr (std::is_same_v<R, ad::Var>)
        dBeta.assign(numK, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
        const double* row = x.data() + i * numK;
        double eta = alphaV;
        for (std::size_t k = 0; k < numK; ++k)
            eta += betaV[k] * row[k];
        value += ys[i] ? -log1pExp(-eta) : -log1pExp(eta);
        if constexpr (std::is_same_v<R, ad::Var>) {
            const double r = static_cast<double>(ys[i]) - invLogit(eta);
            dAlpha += r;
            for (std::size_t k = 0; k < numK; ++k)
                dBeta[k] += r * row[k];
        }
    }
    if constexpr (std::is_same_v<R, ad::Var>) {
        detail::WideTerm t;
        t.reserve(numK + 1);
        t.edge(alpha, dAlpha);
        for (std::size_t k = 0; k < numK; ++k)
            t.edge(betas[k], dBeta[k]);
        return t.emit(value);
    } else {
        return value;
    }
}

/**
 * Poisson log-link GLM with optional varying intercepts and a data
 * offset: sum of poisson_log_lpmf(y_i, alpha_{g_i} + x_i·β + o_i).
 * @param group   per-row intercept index; empty means alphas[0] for all
 * @param offset  per-row additive data offset (e.g. log exposure); may
 *                be empty
 * Residuals r_i = y_i - exp(eta_i) give ∂α_g = Σ_{i: g_i=g} r_i and
 * ∂β_k = Σ r_i x_ik.
 */
template <typename TAlpha, typename TBeta>
promote_t<TAlpha, TBeta>
poisson_log_glm_lpmf(std::span<const long> ys, std::span<const double> x,
                     std::span<const int> group,
                     std::span<const double> offset,
                     std::span<const TAlpha> alphas,
                     std::span<const TBeta> betas)
{
    using R = promote_t<TAlpha, TBeta>;
    const std::size_t n = ys.size();
    const std::size_t numK = betas.size();
    BAYES_ASSERT(x.size() == n * numK);
    BAYES_ASSERT(group.empty() || group.size() >= n);
    BAYES_ASSERT(offset.empty() || offset.size() >= n);
    BAYES_ASSERT(!alphas.empty());
    const std::vector<double> alphaV = detail::values(alphas);
    const std::vector<double> betaV = detail::values(betas);
    double value = 0.0;
    std::vector<double> dAlpha, dBeta;
    if constexpr (std::is_same_v<R, ad::Var>) {
        dAlpha.assign(alphas.size(), 0.0);
        dBeta.assign(numK, 0.0);
    }
    for (std::size_t i = 0; i < n; ++i) {
        const std::size_t g =
            group.empty() ? 0 : static_cast<std::size_t>(group[i]);
        const double* row = x.data() + i * numK;
        double eta = alphaV[g];
        for (std::size_t k = 0; k < numK; ++k)
            eta += betaV[k] * row[k];
        if (!offset.empty())
            eta += offset[i];
        const double expEta = std::exp(eta);
        const double ky = static_cast<double>(ys[i]);
        value += ky * eta - expEta - lgammaSafe(ky + 1.0);
        if constexpr (std::is_same_v<R, ad::Var>) {
            const double r = ky - expEta;
            dAlpha[g] += r;
            for (std::size_t k = 0; k < numK; ++k)
                dBeta[k] += r * row[k];
        }
    }
    if constexpr (std::is_same_v<R, ad::Var>) {
        detail::WideTerm t;
        t.reserve(alphas.size() + numK);
        for (std::size_t g = 0; g < alphas.size(); ++g)
            t.edge(alphas[g], dAlpha[g]);
        for (std::size_t k = 0; k < numK; ++k)
            t.edge(betas[k], dBeta[k]);
        return t.emit(value);
    } else {
        return value;
    }
}

/**
 * Normal identity-link GLM: sum of normal_lpdf(y_i, alpha + x_i·β,
 * sigma). With z_i = (y_i - mu_i)/sigma: ∂α = Σ z_i/σ, ∂β_k = Σ z_i
 * x_ik/σ, ∂σ = Σ (z_i² - 1)/σ.
 */
template <typename TAlpha, typename TBeta, typename TSigma>
promote_t<TAlpha, TBeta, TSigma>
normal_id_glm_lpdf(std::span<const double> ys, std::span<const double> x,
                   const TAlpha& alpha, std::span<const TBeta> betas,
                   const TSigma& sigma)
{
    using R = promote_t<TAlpha, TBeta, TSigma>;
    const std::size_t n = ys.size();
    const std::size_t numK = betas.size();
    BAYES_ASSERT(x.size() == n * numK);
    const double alphaV = valueOf(alpha);
    const double inv = 1.0 / valueOf(sigma);
    const double logSigma = std::log(valueOf(sigma));
    const std::vector<double> betaV = detail::values(betas);
    double value = 0.0;
    double dAlpha = 0.0, dSigma = 0.0;
    std::vector<double> dBeta;
    if constexpr (std::is_same_v<R, ad::Var>)
        dBeta.assign(numK, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
        const double* row = x.data() + i * numK;
        double mu = alphaV;
        for (std::size_t k = 0; k < numK; ++k)
            mu += betaV[k] * row[k];
        const double z = (ys[i] - mu) * inv;
        value += -0.5 * z * z - logSigma - kLogSqrtTwoPi;
        if constexpr (std::is_same_v<R, ad::Var>) {
            const double rs = z * inv;
            dAlpha += rs;
            for (std::size_t k = 0; k < numK; ++k)
                dBeta[k] += rs * row[k];
            dSigma += (z * z - 1.0) * inv;
        }
    }
    if constexpr (std::is_same_v<R, ad::Var>) {
        detail::WideTerm t;
        t.reserve(numK + 2);
        t.edge(alpha, dAlpha);
        for (std::size_t k = 0; k < numK; ++k)
            t.edge(betas[k], dBeta[k]);
        t.edge(sigma, dSigma);
        return t.emit(value);
    } else {
        return value;
    }
}

/**
 * Bernoulli-logit GLM on an affinely rescaled score: sum of
 * bernoulli_logit_lpmf(y_i, scale * (x_i·w - shift)). With residuals
 * r_i as above: ∂w_k = Σ r_i·scale·x_ik, ∂scale = Σ r_i (x_i·w -
 * shift), ∂shift = -scale Σ r_i.
 */
template <typename TW, typename TScale, typename TShift>
promote_t<TW, TScale, TShift>
bernoulli_logit_scaled_glm_lpmf(std::span<const int> ys,
                                std::span<const double> x,
                                std::span<const TW> ws,
                                const TScale& scale, const TShift& shift)
{
    using R = promote_t<TW, TScale, TShift>;
    const std::size_t n = ys.size();
    const std::size_t numK = ws.size();
    BAYES_ASSERT(x.size() == n * numK);
    const double scaleV = valueOf(scale);
    const double shiftV = valueOf(shift);
    const std::vector<double> wV = detail::values(ws);
    double value = 0.0;
    double dScale = 0.0, dShift = 0.0;
    std::vector<double> dW;
    if constexpr (std::is_same_v<R, ad::Var>)
        dW.assign(numK, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
        const double* row = x.data() + i * numK;
        double score = 0.0;
        for (std::size_t k = 0; k < numK; ++k)
            score += wV[k] * row[k];
        const double eta = scaleV * (score - shiftV);
        value += ys[i] ? -log1pExp(-eta) : -log1pExp(eta);
        if constexpr (std::is_same_v<R, ad::Var>) {
            const double r = static_cast<double>(ys[i]) - invLogit(eta);
            for (std::size_t k = 0; k < numK; ++k)
                dW[k] += r * scaleV * row[k];
            dScale += r * (score - shiftV);
            dShift -= r * scaleV;
        }
    }
    if constexpr (std::is_same_v<R, ad::Var>) {
        detail::WideTerm t;
        t.reserve(numK + 2);
        for (std::size_t k = 0; k < numK; ++k)
            t.edge(ws[k], dW[k]);
        t.edge(scale, dScale);
        t.edge(shift, dShift);
        return t.emit(value);
    } else {
        return value;
    }
}

// ---------------------------------------------------------------------
// Weighted sums
// ---------------------------------------------------------------------

/**
 * Weighted sum Σ w_i v_i of tracked scalars with data weights as one
 * wide node (∂v_i = w_i). Collapses repeated likelihood contributions
 * (e.g. the capture-history terms of the survival model, where w_i
 * counts how many individuals share term v_i).
 */
inline ad::Var
dot_vec(std::span<const ad::Var> vs, std::span<const double> ws)
{
    BAYES_ASSERT(vs.size() == ws.size());
    detail::WideTerm t;
    t.reserve(vs.size());
    double value = 0.0;
    for (std::size_t i = 0; i < vs.size(); ++i) {
        value += ws[i] * vs[i].value();
        t.edge(vs[i], ws[i]);
    }
    return t.emit(value, ad::OpClass::Mul);
}

/** Value-only twin of dot_vec for the double path. */
inline double
dot_vec(std::span<const double> vs, std::span<const double> ws)
{
    BAYES_ASSERT(vs.size() == ws.size());
    double value = 0.0;
    for (std::size_t i = 0; i < vs.size(); ++i)
        value += ws[i] * vs[i];
    return value;
}

// ---------------------------------------------------------------------
// Batched SoA kernels: K parameter lanes, one pass over the shared data
//
// Each *_batch kernel evaluates K independent parameter points against
// the same observed data in a single pass. Parameter lanes arrive
// lane-major (lane k's coefficients contiguous at [k*numK, (k+1)*numK))
// and are transposed into coordinate-major SoA value buffers, so the
// hot loops run data-outer / lane-inner over restrict-qualified,
// branch-free strides and auto-vectorize across lanes.
//
// Per lane, every accumulator is updated by exactly the arithmetic of
// the single-point kernel above, in the same order — vectorizing across
// lanes never reorders a lane's own floating-point chain — so lane k's
// value and adjoint weights are bitwise identical to a single-point
// call at that lane's parameters. The adjoints of all K lanes are
// recorded as one ad::Tape::pushWideBatch block.
// ---------------------------------------------------------------------

/**
 * Batched normal_lpdf_vec over a data vector: lane k sums
 * normal_lpdf(y_i, mus[k], sigmas[k]) over all i in one pass over ys.
 */
template <typename TMu, typename TSigma>
void
normal_lpdf_vec_batch(std::span<const double> ys,
                      std::span<const TMu> mus,
                      std::span<const TSigma> sigmas,
                      std::span<promote_t<TMu, TSigma>> out)
{
    using R = promote_t<TMu, TSigma>;
    const std::size_t lanes = out.size();
    BAYES_ASSERT(mus.size() == lanes && sigmas.size() == lanes);
    const std::vector<double> muV = detail::values(mus);
    std::vector<double> inv(lanes);
    for (std::size_t k = 0; k < lanes; ++k)
        inv[k] = 1.0 / valueOf(sigmas[k]);
    const double n = static_cast<double>(ys.size());
    std::vector<double> s1(lanes, 0.0), s2(lanes, 0.0);
    {
        const double* BAYES_RESTRICT mv = muV.data();
        double* BAYES_RESTRICT a1 = s1.data();
        double* BAYES_RESTRICT a2 = s2.data();
        for (const double y : ys) {
            for (std::size_t k = 0; k < lanes; ++k) {
                const double d = y - mv[k];
                a1[k] += d;
                a2[k] += d * d;
            }
        }
    }
    std::vector<double> value(lanes);
    for (std::size_t k = 0; k < lanes; ++k)
        value[k] = -0.5 * s2[k] * inv[k] * inv[k]
            - n * (std::log(valueOf(sigmas[k])) + kLogSqrtTwoPi);
    if constexpr (std::is_same_v<R, ad::Var>) {
        detail::BatchWideTerm t(lanes);
        t.reserve(2);
        for (std::size_t k = 0; k < lanes; ++k) {
            t.edge(mus[k], s1[k] * inv[k] * inv[k]);
            t.edge(sigmas[k],
                   s2[k] * inv[k] * inv[k] * inv[k] - n * inv[k]);
        }
        t.emit(value, out);
    } else {
        for (std::size_t k = 0; k < lanes; ++k)
            out[k] = value[k];
    }
}

/**
 * Batched Bernoulli-logit GLM: lane k evaluates
 * bernoulli_logit_glm_lpmf(ys, x, alphas[k], betas lane k) — K
 * intercept/coefficient sets against one pass over the design matrix.
 * @param betas  lane-major coefficients, lane k at [k*numK, (k+1)*numK)
 */
template <typename TAlpha, typename TBeta>
void
bernoulli_logit_glm_lpmf_batch(std::span<const int> ys,
                               std::span<const double> x,
                               std::span<const TAlpha> alphas,
                               std::span<const TBeta> betas,
                               std::size_t numK,
                               std::span<promote_t<TAlpha, TBeta>> out)
{
    using R = promote_t<TAlpha, TBeta>;
    const std::size_t lanes = out.size();
    const std::size_t n = ys.size();
    BAYES_ASSERT(alphas.size() == lanes && betas.size() == lanes * numK);
    BAYES_ASSERT(x.size() == n * numK);
    const std::vector<double> alphaV = detail::values(alphas);
    std::vector<double> betaV(numK * lanes); // SoA: [coef][lane]
    for (std::size_t k = 0; k < lanes; ++k)
        for (std::size_t j = 0; j < numK; ++j)
            betaV[j * lanes + k] = valueOf(betas[k * numK + j]);
    std::vector<double> value(lanes, 0.0), eta(lanes), r;
    std::vector<double> dAlpha, dBeta;
    if constexpr (std::is_same_v<R, ad::Var>) {
        r.resize(lanes);
        dAlpha.assign(lanes, 0.0);
        dBeta.assign(numK * lanes, 0.0);
    }
    for (std::size_t i = 0; i < n; ++i) {
        const double* BAYES_RESTRICT row = x.data() + i * numK;
        double* BAYES_RESTRICT e = eta.data();
        for (std::size_t k = 0; k < lanes; ++k)
            e[k] = alphaV[k];
        for (std::size_t j = 0; j < numK; ++j) {
            const double xj = row[j];
            const double* BAYES_RESTRICT bj = betaV.data() + j * lanes;
            for (std::size_t k = 0; k < lanes; ++k)
                e[k] += bj[k] * xj;
        }
        const int y = ys[i];
        for (std::size_t k = 0; k < lanes; ++k)
            value[k] += y ? -log1pExp(-e[k]) : -log1pExp(e[k]);
        if constexpr (std::is_same_v<R, ad::Var>) {
            double* BAYES_RESTRICT rr = r.data();
            for (std::size_t k = 0; k < lanes; ++k)
                rr[k] = static_cast<double>(y) - invLogit(e[k]);
            double* BAYES_RESTRICT da = dAlpha.data();
            for (std::size_t k = 0; k < lanes; ++k)
                da[k] += rr[k];
            for (std::size_t j = 0; j < numK; ++j) {
                const double xj = row[j];
                double* BAYES_RESTRICT dbj = dBeta.data() + j * lanes;
                for (std::size_t k = 0; k < lanes; ++k)
                    dbj[k] += rr[k] * xj;
            }
        }
    }
    if constexpr (std::is_same_v<R, ad::Var>) {
        detail::BatchWideTerm t(lanes);
        t.reserve(1 + numK);
        for (std::size_t k = 0; k < lanes; ++k) {
            t.edge(alphas[k], dAlpha[k]);
            for (std::size_t j = 0; j < numK; ++j)
                t.edge(betas[k * numK + j], dBeta[j * lanes + k]);
        }
        t.emit(value, out);
    } else {
        for (std::size_t k = 0; k < lanes; ++k)
            out[k] = value[k];
    }
}

/**
 * Batched Poisson log-link GLM with varying intercepts and a data
 * offset — K lanes of poisson_log_glm_lpmf against one pass over the
 * design matrix.
 * @param alphas  lane-major intercepts, lane k at [k*numAlpha, ...)
 * @param betas   lane-major coefficients, lane k at [k*numK, ...)
 */
template <typename TAlpha, typename TBeta>
void
poisson_log_glm_lpmf_batch(std::span<const long> ys,
                           std::span<const double> x,
                           std::span<const int> group,
                           std::span<const double> offset,
                           std::span<const TAlpha> alphas,
                           std::size_t numAlpha,
                           std::span<const TBeta> betas, std::size_t numK,
                           std::span<promote_t<TAlpha, TBeta>> out)
{
    using R = promote_t<TAlpha, TBeta>;
    const std::size_t lanes = out.size();
    const std::size_t n = ys.size();
    BAYES_ASSERT(alphas.size() == lanes * numAlpha && numAlpha > 0);
    BAYES_ASSERT(betas.size() == lanes * numK);
    BAYES_ASSERT(x.size() == n * numK);
    BAYES_ASSERT(group.empty() || group.size() >= n);
    BAYES_ASSERT(offset.empty() || offset.size() >= n);
    std::vector<double> alphaV(numAlpha * lanes); // SoA: [intercept][lane]
    for (std::size_t k = 0; k < lanes; ++k)
        for (std::size_t a = 0; a < numAlpha; ++a)
            alphaV[a * lanes + k] = valueOf(alphas[k * numAlpha + a]);
    std::vector<double> betaV(numK * lanes); // SoA: [coef][lane]
    for (std::size_t k = 0; k < lanes; ++k)
        for (std::size_t j = 0; j < numK; ++j)
            betaV[j * lanes + k] = valueOf(betas[k * numK + j]);
    std::vector<double> value(lanes, 0.0), eta(lanes), r;
    std::vector<double> dAlpha, dBeta;
    if constexpr (std::is_same_v<R, ad::Var>) {
        r.resize(lanes);
        dAlpha.assign(numAlpha * lanes, 0.0);
        dBeta.assign(numK * lanes, 0.0);
    }
    for (std::size_t i = 0; i < n; ++i) {
        const std::size_t g =
            group.empty() ? 0 : static_cast<std::size_t>(group[i]);
        const double* BAYES_RESTRICT row = x.data() + i * numK;
        double* BAYES_RESTRICT e = eta.data();
        const double* BAYES_RESTRICT ag = alphaV.data() + g * lanes;
        for (std::size_t k = 0; k < lanes; ++k)
            e[k] = ag[k];
        for (std::size_t j = 0; j < numK; ++j) {
            const double xj = row[j];
            const double* BAYES_RESTRICT bj = betaV.data() + j * lanes;
            for (std::size_t k = 0; k < lanes; ++k)
                e[k] += bj[k] * xj;
        }
        if (!offset.empty()) {
            const double o = offset[i];
            for (std::size_t k = 0; k < lanes; ++k)
                e[k] += o;
        }
        const double ky = static_cast<double>(ys[i]);
        const double lg = lgammaSafe(ky + 1.0);
        for (std::size_t k = 0; k < lanes; ++k)
            value[k] += ky * e[k] - std::exp(e[k]) - lg;
        if constexpr (std::is_same_v<R, ad::Var>) {
            double* BAYES_RESTRICT rr = r.data();
            for (std::size_t k = 0; k < lanes; ++k)
                rr[k] = ky - std::exp(e[k]);
            double* BAYES_RESTRICT dag = dAlpha.data() + g * lanes;
            for (std::size_t k = 0; k < lanes; ++k)
                dag[k] += rr[k];
            for (std::size_t j = 0; j < numK; ++j) {
                const double xj = row[j];
                double* BAYES_RESTRICT dbj = dBeta.data() + j * lanes;
                for (std::size_t k = 0; k < lanes; ++k)
                    dbj[k] += rr[k] * xj;
            }
        }
    }
    if constexpr (std::is_same_v<R, ad::Var>) {
        detail::BatchWideTerm t(lanes);
        t.reserve(numAlpha + numK);
        for (std::size_t k = 0; k < lanes; ++k) {
            for (std::size_t a = 0; a < numAlpha; ++a)
                t.edge(alphas[k * numAlpha + a], dAlpha[a * lanes + k]);
            for (std::size_t j = 0; j < numK; ++j)
                t.edge(betas[k * numK + j], dBeta[j * lanes + k]);
        }
        t.emit(value, out);
    } else {
        for (std::size_t k = 0; k < lanes; ++k)
            out[k] = value[k];
    }
}

/**
 * Batched normal identity-link GLM: K lanes of normal_id_glm_lpdf
 * against one pass over the design matrix.
 * @param betas  lane-major coefficients, lane k at [k*numK, ...)
 */
template <typename TAlpha, typename TBeta, typename TSigma>
void
normal_id_glm_lpdf_batch(std::span<const double> ys,
                         std::span<const double> x,
                         std::span<const TAlpha> alphas,
                         std::span<const TBeta> betas, std::size_t numK,
                         std::span<const TSigma> sigmas,
                         std::span<promote_t<TAlpha, TBeta, TSigma>> out)
{
    using R = promote_t<TAlpha, TBeta, TSigma>;
    const std::size_t lanes = out.size();
    const std::size_t n = ys.size();
    BAYES_ASSERT(alphas.size() == lanes && sigmas.size() == lanes);
    BAYES_ASSERT(betas.size() == lanes * numK);
    BAYES_ASSERT(x.size() == n * numK);
    const std::vector<double> alphaV = detail::values(alphas);
    std::vector<double> inv(lanes), logSigma(lanes);
    for (std::size_t k = 0; k < lanes; ++k) {
        inv[k] = 1.0 / valueOf(sigmas[k]);
        logSigma[k] = std::log(valueOf(sigmas[k]));
    }
    std::vector<double> betaV(numK * lanes); // SoA: [coef][lane]
    for (std::size_t k = 0; k < lanes; ++k)
        for (std::size_t j = 0; j < numK; ++j)
            betaV[j * lanes + k] = valueOf(betas[k * numK + j]);
    std::vector<double> value(lanes, 0.0), mu(lanes);
    std::vector<double> dAlpha, dBeta, dSigma;
    if constexpr (std::is_same_v<R, ad::Var>) {
        dAlpha.assign(lanes, 0.0);
        dBeta.assign(numK * lanes, 0.0);
        dSigma.assign(lanes, 0.0);
    }
    for (std::size_t i = 0; i < n; ++i) {
        const double* BAYES_RESTRICT row = x.data() + i * numK;
        double* BAYES_RESTRICT m = mu.data();
        for (std::size_t k = 0; k < lanes; ++k)
            m[k] = alphaV[k];
        for (std::size_t j = 0; j < numK; ++j) {
            const double xj = row[j];
            const double* BAYES_RESTRICT bj = betaV.data() + j * lanes;
            for (std::size_t k = 0; k < lanes; ++k)
                m[k] += bj[k] * xj;
        }
        const double y = ys[i];
        // Reuse mu as the standardized residual z from here on.
        for (std::size_t k = 0; k < lanes; ++k)
            m[k] = (y - m[k]) * inv[k];
        for (std::size_t k = 0; k < lanes; ++k)
            value[k] += -0.5 * m[k] * m[k] - logSigma[k] - kLogSqrtTwoPi;
        if constexpr (std::is_same_v<R, ad::Var>) {
            double* BAYES_RESTRICT da = dAlpha.data();
            double* BAYES_RESTRICT ds = dSigma.data();
            for (std::size_t k = 0; k < lanes; ++k)
                da[k] += m[k] * inv[k];
            for (std::size_t j = 0; j < numK; ++j) {
                const double xj = row[j];
                double* BAYES_RESTRICT dbj = dBeta.data() + j * lanes;
                for (std::size_t k = 0; k < lanes; ++k)
                    dbj[k] += m[k] * inv[k] * xj;
            }
            for (std::size_t k = 0; k < lanes; ++k)
                ds[k] += (m[k] * m[k] - 1.0) * inv[k];
        }
    }
    if constexpr (std::is_same_v<R, ad::Var>) {
        detail::BatchWideTerm t(lanes);
        t.reserve(numK + 2);
        for (std::size_t k = 0; k < lanes; ++k) {
            t.edge(alphas[k], dAlpha[k]);
            for (std::size_t j = 0; j < numK; ++j)
                t.edge(betas[k * numK + j], dBeta[j * lanes + k]);
            t.edge(sigmas[k], dSigma[k]);
        }
        t.emit(value, out);
    } else {
        for (std::size_t k = 0; k < lanes; ++k)
            out[k] = value[k];
    }
}

/**
 * Batched rescaled Bernoulli-logit GLM: K lanes of
 * bernoulli_logit_scaled_glm_lpmf against one pass over the design
 * matrix.
 * @param ws  lane-major weights, lane k at [k*numK, ...)
 */
template <typename TW, typename TScale, typename TShift>
void
bernoulli_logit_scaled_glm_lpmf_batch(
    std::span<const int> ys, std::span<const double> x,
    std::span<const TW> ws, std::size_t numK,
    std::span<const TScale> scales, std::span<const TShift> shifts,
    std::span<promote_t<TW, TScale, TShift>> out)
{
    using R = promote_t<TW, TScale, TShift>;
    const std::size_t lanes = out.size();
    const std::size_t n = ys.size();
    BAYES_ASSERT(scales.size() == lanes && shifts.size() == lanes);
    BAYES_ASSERT(ws.size() == lanes * numK);
    BAYES_ASSERT(x.size() == n * numK);
    const std::vector<double> scaleV = detail::values(scales);
    const std::vector<double> shiftV = detail::values(shifts);
    std::vector<double> wV(numK * lanes); // SoA: [weight][lane]
    for (std::size_t k = 0; k < lanes; ++k)
        for (std::size_t j = 0; j < numK; ++j)
            wV[j * lanes + k] = valueOf(ws[k * numK + j]);
    std::vector<double> value(lanes, 0.0), score(lanes), r;
    std::vector<double> dW, dScale, dShift;
    if constexpr (std::is_same_v<R, ad::Var>) {
        r.resize(lanes);
        dW.assign(numK * lanes, 0.0);
        dScale.assign(lanes, 0.0);
        dShift.assign(lanes, 0.0);
    }
    for (std::size_t i = 0; i < n; ++i) {
        const double* BAYES_RESTRICT row = x.data() + i * numK;
        double* BAYES_RESTRICT sc = score.data();
        for (std::size_t k = 0; k < lanes; ++k)
            sc[k] = 0.0;
        for (std::size_t j = 0; j < numK; ++j) {
            const double xj = row[j];
            const double* BAYES_RESTRICT wj = wV.data() + j * lanes;
            for (std::size_t k = 0; k < lanes; ++k)
                sc[k] += wj[k] * xj;
        }
        const int y = ys[i];
        for (std::size_t k = 0; k < lanes; ++k) {
            const double etaK = scaleV[k] * (sc[k] - shiftV[k]);
            value[k] += y ? -log1pExp(-etaK) : -log1pExp(etaK);
        }
        if constexpr (std::is_same_v<R, ad::Var>) {
            double* BAYES_RESTRICT rr = r.data();
            for (std::size_t k = 0; k < lanes; ++k) {
                const double etaK = scaleV[k] * (sc[k] - shiftV[k]);
                rr[k] = static_cast<double>(y) - invLogit(etaK);
            }
            for (std::size_t j = 0; j < numK; ++j) {
                const double xj = row[j];
                double* BAYES_RESTRICT dwj = dW.data() + j * lanes;
                for (std::size_t k = 0; k < lanes; ++k)
                    dwj[k] += rr[k] * scaleV[k] * xj;
            }
            double* BAYES_RESTRICT dsc = dScale.data();
            double* BAYES_RESTRICT dsh = dShift.data();
            for (std::size_t k = 0; k < lanes; ++k) {
                dsc[k] += rr[k] * (sc[k] - shiftV[k]);
                dsh[k] -= rr[k] * scaleV[k];
            }
        }
    }
    if constexpr (std::is_same_v<R, ad::Var>) {
        detail::BatchWideTerm t(lanes);
        t.reserve(numK + 2);
        for (std::size_t k = 0; k < lanes; ++k) {
            for (std::size_t j = 0; j < numK; ++j)
                t.edge(ws[k * numK + j], dW[j * lanes + k]);
            t.edge(scales[k], dScale[k]);
            t.edge(shifts[k], dShift[k]);
        }
        t.emit(value, out);
    } else {
        for (std::size_t k = 0; k < lanes; ++k)
            out[k] = value[k];
    }
}

} // namespace bayes::math
