/**
 * @file
 * ThreadPool contract: tasks run to completion, futures carry
 * exceptions, the pool is reusable across batches (the "runs" of the
 * phased executor), genuine concurrency with >= 2 workers, and the
 * shared-pool registry semantics.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <latch>
#include <stdexcept>

#include "support/error.hpp"
#include "support/thread_pool.hpp"

namespace bayes::support {
namespace {

TEST(ThreadPool, ExecutesEveryTask)
{
    ThreadPool pool(2);
    std::atomic<int> sum{0};
    std::vector<std::future<void>> futures;
    for (int i = 1; i <= 100; ++i)
        futures.push_back(pool.submit([&sum, i] { sum += i; }));
    waitAll(futures);
    EXPECT_EQ(sum.load(), 5050);
    EXPECT_TRUE(futures.empty());
    EXPECT_EQ(pool.tasksCompleted(), 100u);
}

TEST(ThreadPool, ReusableAcrossBatches)
{
    ThreadPool pool(2);
    for (int batch = 0; batch < 3; ++batch) {
        std::atomic<int> count{0};
        std::vector<std::future<void>> futures;
        for (int i = 0; i < 10; ++i)
            futures.push_back(pool.submit([&count] { ++count; }));
        waitAll(futures);
        EXPECT_EQ(count.load(), 10);
    }
    EXPECT_EQ(pool.tasksCompleted(), 30u);
}

TEST(ThreadPool, FuturePropagatesTaskException)
{
    ThreadPool pool(1);
    auto future = pool.submit([] { throw std::runtime_error("boom"); });
    EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPool, WaitAllSurfacesFirstFailureAfterAllFinished)
{
    ThreadPool pool(2);
    std::atomic<int> finished{0};
    std::vector<std::future<void>> futures;
    futures.push_back(pool.submit([] { throw Error("first"); }));
    for (int i = 0; i < 8; ++i)
        futures.push_back(pool.submit([&finished] { ++finished; }));
    EXPECT_THROW(waitAll(futures), Error);
    // Every non-throwing task still ran before the rethrow.
    EXPECT_EQ(finished.load(), 8);
}

TEST(ThreadPool, TwoWorkersRunConcurrently)
{
    // Both tasks wait for each other at a latch; this only completes
    // when two workers execute simultaneously.
    ThreadPool pool(2);
    std::latch rendezvous(2);
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 2; ++i)
        futures.push_back(pool.submit([&rendezvous] {
            rendezvous.arrive_and_wait();
        }));
    waitAll(futures);
    EXPECT_EQ(pool.tasksCompleted(), 2u);
}

TEST(ThreadPool, RejectsNonPositiveWorkerCount)
{
    EXPECT_THROW(ThreadPool pool(0), Error);
    EXPECT_THROW(ThreadPool pool(-3), Error);
}

TEST(ThreadPool, WorkersAccessorReportsSize)
{
    ThreadPool pool(3);
    EXPECT_EQ(pool.workers(), 3);
}

TEST(SharedPool, SameSizeReturnsSameInstance)
{
    ThreadPool& a = sharedPool(2);
    ThreadPool& b = sharedPool(2);
    EXPECT_EQ(&a, &b);
    EXPECT_EQ(a.workers(), 2);
}

TEST(SharedPool, DistinctSizesAreDistinctPools)
{
    ThreadPool& a = sharedPool(2);
    ThreadPool& b = sharedPool(3);
    EXPECT_NE(&a, &b);
}

TEST(SharedPool, ZeroMeansHardwareConcurrency)
{
    ThreadPool& pool = sharedPool(0);
    EXPECT_GE(pool.workers(), 1);
    EXPECT_EQ(&pool, &sharedPool(0));
}

TEST(SharedPool, RejectsNegativeWorkerCount)
{
    EXPECT_THROW(sharedPool(-1), Error);
}

} // namespace
} // namespace bayes::support
