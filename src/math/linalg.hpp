/**
 * @file
 * Minimal dense linear algebra, templated over the scalar type so the
 * same routines serve value evaluation (double) and gradient evaluation
 * (ad::Var). Sized for the Gaussian-process and hierarchical workloads
 * (tens to a few hundred dimensions), not for BLAS-scale problems.
 */
#pragma once

#include <vector>

#include "math/functions.hpp"
#include "support/error.hpp"

namespace bayes::math {

/** Dense row-major matrix over scalar type T. */
template <typename T>
class Matrix
{
  public:
    Matrix() : rows_(0), cols_(0) {}

    /** Zero-initialized rows x cols matrix. */
    Matrix(std::size_t rows, std::size_t cols)
        : rows_(rows), cols_(cols), data_(rows * cols, T(0.0))
    {
    }

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }

    T& operator()(std::size_t r, std::size_t c)
    {
        BAYES_ASSERT(r < rows_ && c < cols_);
        return data_[r * cols_ + c];
    }

    const T& operator()(std::size_t r, std::size_t c) const
    {
        BAYES_ASSERT(r < rows_ && c < cols_);
        return data_[r * cols_ + c];
    }

    /** Contiguous storage (row-major). */
    const std::vector<T>& data() const { return data_; }
    std::vector<T>& data() { return data_; }

  private:
    std::size_t rows_;
    std::size_t cols_;
    std::vector<T> data_;
};

/** Dot product of equal-length vectors. */
template <typename TA, typename TB>
promote_t<TA, TB>
dot(const std::vector<TA>& a, const std::vector<TB>& b)
{
    BAYES_CHECK(a.size() == b.size(), "dot of mismatched lengths");
    promote_t<TA, TB> s = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i)
        s += a[i] * b[i];
    return s;
}

/** Matrix-vector product. */
template <typename T, typename TV>
std::vector<promote_t<T, TV>>
matVec(const Matrix<T>& m, const std::vector<TV>& v)
{
    BAYES_CHECK(m.cols() == v.size(), "matVec dimension mismatch");
    std::vector<promote_t<T, TV>> out(m.rows(), promote_t<T, TV>(0.0));
    for (std::size_t r = 0; r < m.rows(); ++r) {
        promote_t<T, TV> s = 0.0;
        for (std::size_t c = 0; c < m.cols(); ++c)
            s += m(r, c) * v[c];
        out[r] = s;
    }
    return out;
}

/**
 * Cholesky factorization A = L L^T (lower triangular L).
 * @pre A symmetric positive definite; throws bayes::Error otherwise.
 */
template <typename T>
Matrix<T>
cholesky(const Matrix<T>& a)
{
    using std::sqrt;
    using ad::sqrt;
    BAYES_CHECK(a.rows() == a.cols(), "cholesky of non-square matrix");
    const std::size_t n = a.rows();
    Matrix<T> l(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j <= i; ++j) {
            T s = a(i, j);
            for (std::size_t k = 0; k < j; ++k)
                s -= l(i, k) * l(j, k);
            if (i == j) {
                BAYES_CHECK(valueOf(s) > 0.0,
                            "matrix not positive definite at pivot " << i);
                l(i, j) = sqrt(s);
            } else {
                l(i, j) = s / l(j, j);
            }
        }
    }
    return l;
}

/** Solve L x = b with lower-triangular L (forward substitution). */
template <typename T, typename TB>
std::vector<promote_t<T, TB>>
solveLowerTriangular(const Matrix<T>& l, const std::vector<TB>& b)
{
    BAYES_CHECK(l.rows() == l.cols() && l.rows() == b.size(),
                "triangular solve dimension mismatch");
    const std::size_t n = b.size();
    std::vector<promote_t<T, TB>> x(n, promote_t<T, TB>(0.0));
    for (std::size_t i = 0; i < n; ++i) {
        promote_t<T, TB> s = b[i];
        for (std::size_t k = 0; k < i; ++k)
            s -= l(i, k) * x[k];
        x[i] = s / l(i, i);
    }
    return x;
}

/**
 * Multivariate normal log density given the Cholesky factor of the
 * covariance: y ~ N(mu, L L^T). Used by the `votes` Gaussian-process
 * workload.
 */
template <typename TY, typename TMu, typename TL>
promote_t<TY, TMu, TL>
multi_normal_cholesky_lpdf(const std::vector<TY>& y,
                           const std::vector<TMu>& mu, const Matrix<TL>& l)
{
    using T = promote_t<TY, TMu, TL>;
    using std::log;
    using ad::log;
    const std::size_t n = y.size();
    BAYES_CHECK(mu.size() == n && l.rows() == n, "MVN dimension mismatch");
    std::vector<T> diff(n);
    for (std::size_t i = 0; i < n; ++i)
        diff[i] = y[i] - mu[i];
    const auto z = solveLowerTriangular(l, diff);
    T quad = 0.0;
    for (const auto& zi : z)
        quad += zi * zi;
    T logDet = 0.0;
    for (std::size_t i = 0; i < n; ++i)
        logDet += log(T(l(i, i)));
    return T(-0.5) * quad - logDet
        - 0.5 * static_cast<double>(n) * kLogTwoPi;
}

/**
 * Squared-exponential (RBF) Gaussian-process covariance over scalar
 * inputs: K_ij = alpha^2 exp(-(x_i - x_j)^2 / (2 rho^2)) + jitter 1{i=j}.
 */
template <typename TAlpha, typename TRho>
Matrix<promote_t<TAlpha, TRho>>
gpCovSquaredExp(const std::vector<double>& xs, const TAlpha& alpha,
                const TRho& rho, double jitter = 1e-8)
{
    using T = promote_t<TAlpha, TRho>;
    using std::exp;
    using ad::exp;
    const std::size_t n = xs.size();
    Matrix<T> k(n, n);
    const T a2 = T(alpha) * T(alpha);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j <= i; ++j) {
            const double d = xs[i] - xs[j];
            T v = a2 * exp(T(-0.5 * d * d) / (T(rho) * T(rho)));
            if (i == j)
                v += jitter;
            k(i, j) = v;
            k(j, i) = v;
        }
    }
    return k;
}

} // namespace bayes::math
