/**
 * @file
 * Scheduling a fleet of inference jobs across heterogeneous servers —
 * the paper's §V mechanism as a user-facing workflow:
 *   1. extract each job's static modeled-data-size feature,
 *   2. classify LLC-bound vs compute-bound with the fitted threshold,
 *   3. place jobs on the big-LLC (Broadwell) or high-frequency
 *      (Skylake) platform and report the predicted win.
 */
#include <cstdio>

#include "archsim/system.hpp"
#include "samplers/runner.hpp"
#include "sched/scheduler.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"
#include "workloads/workload.hpp"

using namespace bayes;

int
main()
{
    const auto sky = archsim::Platform::skylake();
    const auto bdw = archsim::Platform::broadwell();
    const sched::PlatformScheduler scheduler(sky, bdw, 16.0 * 1024.0);

    std::printf("Scheduling the BayesSuite fleet across %s and %s...\n\n",
                sky.name.c_str(), bdw.name.c_str());

    Table table({"job", "modeled KB", "class", "placed on",
                 "sim time (s)", "vs all-Broadwell"});
    std::vector<double> speedups;
    for (const auto& wl : workloads::makeSuite()) {
        // Short run: placement uses only the static feature; the run
        // just provides work counters for the latency estimate.
        samplers::Config cfg;
        cfg.chains = 4;
        cfg.iterations = 200;
        cfg.execution = samplers::ExecutionPolicy::pool();
        const auto run = samplers::run(*wl, cfg);
        const auto profile = archsim::profileWorkload(*wl, 4);
        const auto work = archsim::extractRunWork(run);

        const auto placement = scheduler.place(*wl);
        const auto onTarget = archsim::simulateSystem(
            profile, work, *placement.platform, 4);
        const auto onBdw =
            archsim::simulateSystem(profile, work, bdw, 4);
        const double speedup = onBdw.seconds / onTarget.seconds;
        speedups.push_back(speedup);
        table.row()
            .cell(wl->name())
            .cell(static_cast<double>(wl->modeledDataBytes()) / 1024.0, 1)
            .cell(placement.llcBound ? "LLC-bound" : "compute-bound")
            .cell(placement.platform->name)
            .cell(onTarget.seconds, 2)
            .cell(speedup, 2);
        std::fprintf(stderr, "[fleet] %s placed\n", wl->name().c_str());
    }
    std::printf("%s\n", table.str().c_str());
    std::printf("geomean speedup over all-Broadwell: %.2fx "
                "(paper: 1.16x)\n",
                geometricMean(speedups));
    return 0;
}
