/**
 * @file
 * Cache model tests: hit/miss sequences, LRU replacement, writeback
 * accounting, geometry validation.
 */
#include <gtest/gtest.h>

#include "archsim/cache.hpp"
#include "support/error.hpp"

namespace bayes::archsim {
namespace {

TEST(Cache, ColdMissThenHit)
{
    CacheModel cache({1024, 64, 2});
    EXPECT_FALSE(cache.access(0x1000, false));
    EXPECT_TRUE(cache.access(0x1000, false));
    EXPECT_TRUE(cache.access(0x1020, false)); // same 64B line
    EXPECT_EQ(cache.stats().accesses, 3u);
    EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(Cache, GeometryDerivedCorrectly)
{
    CacheModel cache({4096, 64, 4});
    EXPECT_EQ(cache.numSets(), 16u);
}

TEST(Cache, LruEvictsLeastRecentlyUsed)
{
    // 2-way cache: set count = 1024/64/2 = 8 sets. Lines mapping to the
    // same set are 8 lines (= 512 B) apart.
    CacheModel cache({1024, 64, 2});
    const std::uint64_t a = 0x0000;
    const std::uint64_t b = a + 512;
    const std::uint64_t c = a + 1024;
    cache.access(a, false); // miss
    cache.access(b, false); // miss, set full
    cache.access(a, false); // hit, a is now MRU
    EXPECT_FALSE(cache.access(c, false)); // evicts b
    EXPECT_TRUE(cache.access(a, false));  // a survives
    EXPECT_FALSE(cache.access(b, false)); // b was evicted
}

TEST(Cache, WritebackOnlyForDirtyVictims)
{
    CacheModel cache({128, 64, 1}); // 2 sets, direct mapped
    cache.access(0, true);          // dirty line
    cache.access(128, false);       // evicts dirty 0 -> writeback
    EXPECT_EQ(cache.stats().writebacks, 1u);
    cache.access(256, false); // evicts clean 128 -> no writeback
    EXPECT_EQ(cache.stats().writebacks, 1u);
}

TEST(Cache, WriteHitMarksLineDirty)
{
    CacheModel cache({128, 64, 1});
    cache.access(0, false); // clean fill
    cache.access(0, true);  // dirtied by a hit
    cache.access(128, false);
    EXPECT_EQ(cache.stats().writebacks, 1u);
}

TEST(Cache, StreamLargerThanCapacityMissesEveryLine)
{
    CacheModel cache({1024, 64, 4});
    for (std::uint64_t addr = 0; addr < 4096; addr += 64)
        cache.access(addr, false);
    EXPECT_EQ(cache.stats().misses, 64u); // all cold
    // Second identical pass: cyclic pattern 4x the capacity still
    // misses everywhere under LRU.
    for (std::uint64_t addr = 0; addr < 4096; addr += 64)
        cache.access(addr, false);
    EXPECT_EQ(cache.stats().misses, 128u);
}

TEST(Cache, WorkingSetWithinCapacityHitsAfterWarmup)
{
    CacheModel cache({4096, 64, 4});
    for (int round = 0; round < 2; ++round)
        for (std::uint64_t addr = 0; addr < 2048; addr += 64)
            cache.access(addr, false);
    EXPECT_EQ(cache.stats().misses, 32u); // only the cold pass
}

TEST(Cache, ResetStatsKeepsContents)
{
    CacheModel cache({1024, 64, 2});
    cache.access(0, false);
    cache.resetStats();
    EXPECT_EQ(cache.stats().accesses, 0u);
    EXPECT_TRUE(cache.access(0, false)); // still warm
}

TEST(Cache, FlushInvalidatesContents)
{
    CacheModel cache({1024, 64, 2});
    cache.access(0, false);
    cache.flush();
    EXPECT_FALSE(cache.access(0, false));
}

TEST(Cache, MissRateComputation)
{
    CacheModel cache({1024, 64, 2});
    EXPECT_DOUBLE_EQ(cache.stats().missRate(), 0.0);
    cache.access(0, false);
    cache.access(0, false);
    EXPECT_DOUBLE_EQ(cache.stats().missRate(), 0.5);
}

TEST(Cache, ValidatesGeometry)
{
    EXPECT_THROW(CacheModel({100, 60, 2}), Error);  // line not 2^k
    EXPECT_THROW(CacheModel({64, 64, 2}), Error);   // smaller than a set
    EXPECT_THROW(CacheModel({1024, 64, 0}), Error); // zero ways
}

TEST(Cache, FifoEvictsOldestFillDespiteHits)
{
    CacheConfig cfg{1024, 64, 2, Replacement::Fifo};
    CacheModel cache(cfg);
    const std::uint64_t a = 0x0000, b = a + 512, c = a + 1024;
    cache.access(a, false); // filled first
    cache.access(b, false);
    cache.access(a, false); // hit: FIFO must NOT refresh a's age
    cache.access(c, false); // evicts a (oldest fill), not b
    EXPECT_TRUE(cache.access(b, false));
    EXPECT_FALSE(cache.access(a, false));
}

TEST(Cache, RandomReplacementIsDeterministicAndValid)
{
    CacheConfig cfg{1024, 64, 4, Replacement::Random};
    CacheModel x(cfg), y(cfg);
    // Identical access streams -> identical miss counts (LFSR is
    // deterministic), and the cache never exceeds its capacity.
    for (std::uint64_t addr = 0; addr < 64 * 1024; addr += 64) {
        x.access(addr % 8192, false);
        y.access(addr % 8192, false);
    }
    EXPECT_EQ(x.stats().misses, y.stats().misses);
    EXPECT_GT(x.stats().misses, 0u);
    EXPECT_LE(x.stats().misses, x.stats().accesses);
}

TEST(Cache, RandomBeatsLruOnCyclicThrash)
{
    // A cyclic loop slightly larger than the cache is LRU's worst
    // case (every access misses); random replacement keeps part of the
    // loop resident.
    CacheConfig lruCfg{4096, 64, 4, Replacement::Lru};
    CacheConfig rndCfg{4096, 64, 4, Replacement::Random};
    CacheModel lru(lruCfg), rnd(rndCfg);
    for (int round = 0; round < 20; ++round) {
        for (std::uint64_t addr = 0; addr < 5120; addr += 64) {
            lru.access(addr, false);
            rnd.access(addr, false);
        }
    }
    EXPECT_LT(rnd.stats().misses, lru.stats().misses);
}

TEST(Cache, FullyAssociativeBehaves)
{
    CacheModel cache({512, 64, 8}); // one set of 8 ways
    EXPECT_EQ(cache.numSets(), 1u);
    for (std::uint64_t i = 0; i < 8; ++i)
        cache.access(i * 64, false);
    for (std::uint64_t i = 0; i < 8; ++i)
        EXPECT_TRUE(cache.access(i * 64, false));
    cache.access(8 * 64, false); // evicts line 0 (LRU)
    EXPECT_FALSE(cache.access(0, false));
}

} // namespace
} // namespace bayes::archsim
