#include "ppl/model.hpp"

#include "ppl/transforms.hpp"

#include <cmath>

namespace bayes::ppl {

ParamLayout::ParamLayout(std::vector<ParamBlock> blocks)
    : blocks_(std::move(blocks))
{
    offsets_.reserve(blocks_.size());
    for (const auto& b : blocks_) {
        BAYES_CHECK(b.size >= 1, "parameter block '" << b.name
                    << "' must have size >= 1");
        if (b.transform == TransformKind::Bounded) {
            BAYES_CHECK(b.lowerBound < b.upperBound,
                        "bounded block '" << b.name << "' needs lb < ub");
        }
        offsets_.push_back(dim_);
        dim_ += b.size;
    }
}

std::size_t
ParamLayout::blockIndex(const std::string& name) const
{
    for (std::size_t b = 0; b < blocks_.size(); ++b) {
        if (blocks_[b].name == name)
            return b;
    }
    throw Error("unknown parameter block '" + name + "'");
}

std::string
ParamLayout::coordName(std::size_t i) const
{
    BAYES_CHECK(i < dim_, "coordinate index out of range");
    for (std::size_t b = 0; b < blocks_.size(); ++b) {
        const std::size_t off = offsets_[b];
        if (i >= off && i < off + blocks_[b].size) {
            if (blocks_[b].size == 1)
                return blocks_[b].name;
            return blocks_[b].name + "[" + std::to_string(i - off) + "]";
        }
    }
    BAYES_ASSERT(false);
    return {};
}

void
Model::logProbBatch(const BatchParamView<double>& p,
                    std::span<double> lp) const
{
    BAYES_CHECK(lp.size() == p.lanes(),
                "logProbBatch: output size != lane count");
    for (std::size_t k = 0; k < p.lanes(); ++k) {
        try {
            lp[k] = logProb(p.lane(k));
        } catch (const Error&) {
            lp[k] = -INFINITY; // infeasible lane: zero density
        }
    }
}

void
Model::logProbBatch(const BatchParamView<ad::Var>& p,
                    std::span<ad::Var> lp) const
{
    BAYES_CHECK(lp.size() == p.lanes(),
                "logProbBatch: output size != lane count");
    for (std::size_t k = 0; k < p.lanes(); ++k) {
        try {
            lp[k] = logProb(p.lane(k));
        } catch (const Error&) {
            lp[k] = ad::Var(-INFINITY);
        }
    }
}

double
unconstrainScalar(TransformKind kind, double x, double lb, double ub)
{
    switch (kind) {
      case TransformKind::Identity:
        return x;
      case TransformKind::LowerBound:
        BAYES_CHECK(x > lb, "value below lower bound");
        return std::log(x - lb);
      case TransformKind::UpperBound:
        BAYES_CHECK(x < ub, "value above upper bound");
        return std::log(ub - x);
      case TransformKind::Bounded:
        BAYES_CHECK(x > lb && x < ub, "value outside bounds");
        return math::logit((x - lb) / (ub - lb));
      case TransformKind::Ordered:
        break;
    }
    throw Error("unconstrainScalar does not handle Ordered blocks");
}

} // namespace bayes::ppl
