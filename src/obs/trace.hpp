/**
 * @file
 * Scoped-span tracer emitting Chrome `trace_event` JSON, loadable in
 * `chrome://tracing` and https://ui.perfetto.dev. The runtime drops
 * `Span` objects around its phases (run → warmup → round → monitor →
 * R-hat check, pool tasks, DSE grid points); while a collection is
 * active every span becomes a complete ("ph":"X") event on its thread's
 * track, and counter probes ("ph":"C", e.g. the R-hat trajectory)
 * become counter tracks.
 *
 * The null-sink rule: spans are recorded only between `Tracer::start()`
 * and `Tracer::stop()`. Outside a collection a span construction is a
 * single relaxed atomic load — the instrumentation can stay in the hot
 * path permanently. Compiling with `-DBAYES_OBS=OFF` removes even
 * that load.
 *
 * Collection is coordinator-driven: call `stop()` (or just quiesce the
 * workload) before `writeJson`. Recording is mutex-serialized at span
 * *end* only, so worker threads never contend on span entry.
 */
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/registry.hpp" // BAYES_OBS_ENABLED / kCompiledIn
// Freestanding support headers (no layer edge — docs/architecture.md):
// the annotated mutex and the swappable Clock seam (R012).
#include "support/thread_safety.hpp"
#include "support/timer.hpp"

namespace bayes::obs {

/** One trace_event record. */
struct TraceEvent
{
    std::string name;
    char phase = 'X'; ///< 'X' complete, 'C' counter, 'i' instant
    double tsUs = 0;  ///< microseconds since Tracer::start()
    double durUs = 0; ///< complete events only
    int tid = 0;
    double value = 0; ///< counter events only
};

/** Small dense per-thread track id for trace events (1-based). */
int traceTid() noexcept;

/** Process-wide trace collector. */
class Tracer
{
  public:
    /** The process-wide tracer (leaked singleton — safe at exit). */
    static Tracer& global() noexcept;

    /** Clear any previous events and begin collecting. */
    void start();

    /** Stop collecting (already-recorded events are kept). */
    void stop();

    /** True while a collection is active (one relaxed load). */
    bool
    active() const noexcept
    {
        if constexpr (kCompiledIn)
            return active_.load(std::memory_order_relaxed);
        else
            return false;
    }

    /** Microseconds since start() on the tracer's own clock. */
    double nowUs() const noexcept;

    /** Record a counter sample (no-op unless active). */
    void counter(const std::string& name, double value);

    /** Record an instant event (no-op unless active). */
    void instant(const std::string& name);

    /** Append a finished event (used by Span; callable directly). */
    void record(TraceEvent event);

    /** Events collected so far. */
    std::size_t eventCount() const;

    /**
     * Serialize as `{"traceEvents":[...]}` JSON. Call after stop() (or
     * with the workload quiesced); events recorded concurrently with
     * the write are serialized by the same mutex but may be split
     * across the output boundary.
     */
    void writeJson(std::ostream& os) const;
    std::string json() const;

    Tracer() = default;
    Tracer(const Tracer&) = delete;
    Tracer& operator=(const Tracer&) = delete;

  private:
    std::atomic<bool> active_{false};
    /** Clock::now() at start(); atomic so span entry needs no lock. */
    std::atomic<double> epochSeconds_{0.0};
    mutable support::Mutex mutex_;
    std::vector<TraceEvent> events_ BAYES_GUARDED_BY(mutex_);
};

/**
 * RAII span: records a complete trace event for its scope when a
 * collection is active at construction time. Construction cost when
 * idle: one relaxed atomic load.
 */
class Span
{
  public:
    /** @p name must outlive the span (string literals qualify). */
    explicit Span(const char* name) noexcept
    {
        if constexpr (kCompiledIn) {
            if (Tracer::global().active()) {
                name_ = name;
                startUs_ = Tracer::global().nowUs();
                live_ = true;
            }
        }
    }

    /** Dynamic-name span for cold call sites (e.g. DSE grid labels). */
    explicit Span(std::string name)
    {
        if constexpr (kCompiledIn) {
            if (Tracer::global().active()) {
                owned_ = std::move(name);
                name_ = owned_.c_str();
                startUs_ = Tracer::global().nowUs();
                live_ = true;
            }
        }
    }

    ~Span()
    {
        if constexpr (kCompiledIn) {
            if (live_)
                finish();
        }
    }

    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;

  private:
    void finish() noexcept;

    const char* name_ = nullptr;
    std::string owned_;
    double startUs_ = 0;
    bool live_ = false;
};

} // namespace bayes::obs
