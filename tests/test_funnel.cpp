/**
 * @file
 * Neal's funnel — the canonical hierarchical pathology. Verifies the
 * documented behavior of the toolchain on hard geometry: the centered
 * parameterization produces divergences and poor tail exploration,
 * while the non-centered reparameterization samples cleanly. This is
 * the same phenomenon the BayesSuite hierarchical workloads avoid via
 * their non-centered forms.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "diagnostics/summary.hpp"
#include "math/distributions.hpp"
#include "samplers/runner.hpp"

namespace bayes::samplers {
namespace {

/** Centered funnel: v ~ N(0,3), x_i ~ N(0, exp(v/2)). */
class CenteredFunnel : public ppl::Model
{
  public:
    CenteredFunnel()
        : layout_({{"v", 1, ppl::TransformKind::Identity, 0, 0},
                   {"x", 6, ppl::TransformKind::Identity, 0, 0}})
    {
    }
    const std::string& name() const override { return name_; }
    const ppl::ParamLayout& layout() const override { return layout_; }
    std::size_t modeledDataBytes() const override { return 0; }
    double logProb(const ppl::ParamView<double>& p) const override
    {
        return body(p);
    }
    ad::Var logProb(const ppl::ParamView<ad::Var>& p) const override
    {
        return body(p);
    }

  private:
    template <typename T>
    T
    body(const ppl::ParamView<T>& p) const
    {
        using namespace bayes::math;
        using std::exp;
        using ad::exp;
        const T& v = p.scalar(0);
        T lp = normal_lpdf(v, 0.0, 3.0);
        const T scale = exp(v * 0.5);
        for (std::size_t i = 0; i < 6; ++i)
            lp += normal_lpdf(p.at(1, i), 0.0, scale);
        return lp;
    }
    std::string name_ = "funnel-centered";
    ppl::ParamLayout layout_;
};

/** Non-centered funnel: x_i = exp(v/2) * z_i, z ~ N(0,1). */
class NonCenteredFunnel : public ppl::Model
{
  public:
    NonCenteredFunnel()
        : layout_({{"v", 1, ppl::TransformKind::Identity, 0, 0},
                   {"z", 6, ppl::TransformKind::Identity, 0, 0}})
    {
    }
    const std::string& name() const override { return name_; }
    const ppl::ParamLayout& layout() const override { return layout_; }
    std::size_t modeledDataBytes() const override { return 0; }
    double logProb(const ppl::ParamView<double>& p) const override
    {
        return body(p);
    }
    ad::Var logProb(const ppl::ParamView<ad::Var>& p) const override
    {
        return body(p);
    }

  private:
    template <typename T>
    T
    body(const ppl::ParamView<T>& p) const
    {
        using namespace bayes::math;
        T lp = normal_lpdf(p.scalar(0), 0.0, 3.0);
        for (std::size_t i = 0; i < 6; ++i)
            lp += std_normal_lpdf(p.at(1, i));
        return lp;
    }
    std::string name_ = "funnel-noncentered";
    ppl::ParamLayout layout_;
};

Config
funnelConfig()
{
    Config cfg;
    cfg.chains = 2;
    cfg.iterations = 2000;
    cfg.seed = 31337;
    return cfg;
}

TEST(Funnel, NonCenteredSamplesTheNeckCleanly)
{
    NonCenteredFunnel model;
    const auto result = run(model, funnelConfig());
    std::uint64_t divergences = 0;
    for (const auto& chain : result.chains)
        divergences += chain.divergences;
    EXPECT_LT(divergences, 10u);

    // v must reach deep into the neck (v < -4) and the mouth (v > 4).
    double vmin = 1e9, vmax = -1e9;
    for (const auto& chain : result.chains)
        for (const auto& d : chain.draws) {
            vmin = std::min(vmin, d[0]);
            vmax = std::max(vmax, d[0]);
        }
    EXPECT_LT(vmin, -4.0);
    EXPECT_GT(vmax, 4.0);
    // Marginal of v is exactly N(0, 3).
    const auto summary = diagnostics::summarize(result, model.layout());
    EXPECT_NEAR(summary.coords[0].mean, 0.0, 0.45);
    EXPECT_NEAR(summary.coords[0].sd, 3.0, 0.45);
}

TEST(Funnel, CenteredFormStrugglesInTheNeck)
{
    CenteredFunnel model;
    const auto result = run(model, funnelConfig());
    // The centered form either diverges or fails to reach the deep
    // neck — the pathology non-centering fixes. Either symptom must be
    // visible (both usually are).
    std::uint64_t divergences = 0;
    double vmin = 1e9;
    for (const auto& chain : result.chains) {
        divergences += chain.divergences;
        for (const auto& d : chain.draws)
            vmin = std::min(vmin, d[0]);
    }
    const bool struggled = divergences > 0 || vmin > -6.0;
    EXPECT_TRUE(struggled)
        << "divergences=" << divergences << " vmin=" << vmin;
}

} // namespace
} // namespace bayes::samplers
