// Fixture: R013 — Rng state copies outside the sanctioned fork points
// (fork/replicaFork/streamFork in src/support/rng.hpp).
#include "support/rng.hpp"

namespace fixture {
Rng& chainRng();

void speculativeStreams()
{
    Rng rng;
    Rng clone = rng;             // EXPECT: R013
    Rng clone2(rng);             // EXPECT: R013
    Rng clone3{rng};             // EXPECT: R013
    Rng fresh;                   // construction, not a copy: no finding
    Rng seeded(42);              // seeded construction: no finding
    Rng forked = rng.fork();     // sanctioned fork point: no finding
    Rng replica = rng.replicaFork();  // sanctioned: no finding
    Rng keyed = rng.streamFork(3);    // sanctioned: no finding
    Rng snapshot = rng;  // bayes-lint: allow(R013): fixture: checkpoint/restore snapshot
    (void)clone;
    (void)clone2;
    (void)clone3;
    (void)fresh;
    (void)seeded;
    (void)forked;
    (void)replica;
    (void)keyed;
    (void)snapshot;
}
}  // namespace fixture
