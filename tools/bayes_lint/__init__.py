"""bayes-lint: rule-based static invariant checker for the BayesSuite tree.

The sampler's reproducibility guarantees rest on a handful of repo-wide
conventions (single thread pool, re-entrant lgamma, seeded RNG streams, a
documented metric catalogue, an acyclic layered include graph, annotated
locks, one wall-clock seam). This package turns those conventions into
machine-checked rules; it runs as the `static`-labeled ctest and in CI.

Layout
  source.py   file discovery, comment stripping, waivers, EXPECT markers
  engine.py   rule registry, pass pipeline, self-test harness
  cli.py      argument parsing and the exit-status contract
  rules/      one module per rule family; importing the package
              registers every rule with the engine

Run `tools/bayes_lint.py --list-rules` for the rule catalogue, or see
docs/static-analysis.md for the full contract (waivers, fixtures, CI).

Stdlib only; no third-party imports.
"""

__all__ = ["source", "engine", "cli"]
