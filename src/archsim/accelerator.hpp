/**
 * @file
 * First-order accelerator models for the paper's §VII "implications for
 * future acceleration" analysis. The paper argues a programmable SIMD
 * architecture augmented with special-function units (SFUs) matches
 * Bayesian inference best: chains give coarse-grained parallelism, the
 * per-observation likelihood terms give fine-grained data parallelism,
 * and the dominant transcendental ops (erf for Gaussian, atan for
 * Cauchy CDFs) want dedicated units with scratchpad-resident tables.
 *
 * The model is deliberately analytic (no trace replay): given a
 * workload's op-mix profile, it estimates a lower-bound cycle count
 * from lane-limited throughput per op class, an Amdahl term for the
 * non-parallelizable sampler bookkeeping, and a DRAM-bandwidth bound
 * for the working set streamed per evaluation.
 */
#pragma once

#include <string>
#include <vector>

#include "archsim/core.hpp"
#include "archsim/profiler.hpp"

namespace bayes::archsim {

/** Parameters of a candidate accelerator. */
struct AcceleratorSpec
{
    std::string name;
    double clockGhz = 1.0;
    /** Parallel FP lanes (SIMD width x units). */
    int lanes = 64;
    /** Special-function units (erf/atan/exp lookup pipelines). */
    int sfus = 8;
    /** Cycles per special op on an SFU (pipelined initiation interval). */
    double sfuCyclesPerOp = 2.0;
    /** Cycles per divide on a lane. */
    double divCyclesPerOp = 4.0;
    /** Fraction of work that is inherently serial (tree bookkeeping,
     *  momentum updates, reverse-sweep dependency chains). */
    double serialFraction = 0.04;
    /** Scratchpad capacity; working sets beyond it stream from DRAM. */
    double scratchpadKb = 512.0;
    double dramBWGBps = 100.0;

    /** The paper's recommended SIMD + SFU design point. */
    static AcceleratorSpec simdSfu();

    /** SIMD without special-function units (transcendentals in lanes). */
    static AcceleratorSpec simdOnly();

    /** GPU-like: very wide, high bandwidth, higher serial overhead. */
    static AcceleratorSpec gpuLike();
};

/** Estimated accelerator performance on one workload profile. */
struct AcceleratorEstimate
{
    double cyclesPerEval = 0;
    double secondsPerEval = 0;
    /** Whether DRAM bandwidth (not compute) bounds the evaluation. */
    bool bandwidthBound = false;
    /** Speedup over a reference CPU per-evaluation time. */
    double speedupVsCpu = 0;
};

/**
 * Estimate @p spec's per-evaluation time on @p profile.
 * @param cpuSecondsPerEval  reference CPU time for the same evaluation
 *        (from the core model), used for the speedup ratio
 */
AcceleratorEstimate estimateAccelerator(const EvalProfile& profile,
                                        const AcceleratorSpec& spec,
                                        double cpuSecondsPerEval);

} // namespace bayes::archsim
