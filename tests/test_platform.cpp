/**
 * @file
 * Platform preset tests: Table II fidelity and the documented 1/8
 * capacity scaling.
 */
#include <gtest/gtest.h>

#include "archsim/platform.hpp"

namespace bayes::archsim {
namespace {

TEST(Platform, SkylakeMatchesTableII)
{
    const auto p = Platform::skylake();
    EXPECT_EQ(p.name, "Skylake");
    EXPECT_EQ(p.processor, "i7-6700K");
    EXPECT_DOUBLE_EQ(p.turboGhz, 4.2);
    EXPECT_EQ(p.cores, 4);
    EXPECT_DOUBLE_EQ(p.llcMb, 8.0);
    EXPECT_DOUBLE_EQ(p.memBandwidthGBps, 34.1);
    EXPECT_DOUBLE_EQ(p.tdpW, 91.0);
    EXPECT_EQ(p.techNm, 14);
}

TEST(Platform, BroadwellMatchesTableII)
{
    const auto p = Platform::broadwell();
    EXPECT_EQ(p.processor, "E5-2697A v4");
    EXPECT_DOUBLE_EQ(p.turboGhz, 3.6);
    EXPECT_EQ(p.cores, 16);
    EXPECT_DOUBLE_EQ(p.llcMb, 40.0);
    EXPECT_DOUBLE_EQ(p.memBandwidthGBps, 78.8);
    EXPECT_DOUBLE_EQ(p.tdpW, 145.0);
}

TEST(Platform, CapacitiesScaledByOneEighth)
{
    const auto sky = Platform::skylake();
    const auto bdw = Platform::broadwell();
    EXPECT_EQ(sky.llc.sizeBytes, 1024u * 1024u);       // 8 MB / 8
    EXPECT_EQ(bdw.llc.sizeBytes, 5u * 1024u * 1024u);  // 40 MB / 8
    EXPECT_EQ(sky.l1d.sizeBytes, 4096u);               // 32 KB / 8
    EXPECT_EQ(sky.l2.sizeBytes, 32u * 1024u);          // 256 KB / 8
    EXPECT_DOUBLE_EQ(kCapacityScale, 1.0 / 8.0);
}

TEST(Platform, LlcCapacityRatioPreserved)
{
    const auto sky = Platform::skylake();
    const auto bdw = Platform::broadwell();
    EXPECT_DOUBLE_EQ(
        static_cast<double>(bdw.llc.sizeBytes)
            / static_cast<double>(sky.llc.sizeBytes),
        5.0);
}

TEST(Platform, CacheGeometriesAreConstructible)
{
    for (const auto& p : {Platform::skylake(), Platform::broadwell()}) {
        EXPECT_NO_THROW(CacheModel{p.l1i});
        EXPECT_NO_THROW(CacheModel{p.l1d});
        EXPECT_NO_THROW(CacheModel{p.l2});
        EXPECT_NO_THROW(CacheModel{p.llc});
    }
}

TEST(Platform, MemLatencyCyclesScalesWithFrequency)
{
    const auto sky = Platform::skylake();
    EXPECT_NEAR(sky.memLatencyCycles(), 70.0 * 4.2, 1e-9);
}

TEST(Platform, FullLoadPowerApproachesTdp)
{
    for (const auto& p : {Platform::skylake(), Platform::broadwell()}) {
        const double full = p.idlePowerW + p.corePowerW * p.cores;
        EXPECT_GT(full, 0.6 * p.tdpW);
        EXPECT_LT(full, 1.05 * p.tdpW);
    }
}

} // namespace
} // namespace bayes::archsim
