/**
 * @file
 * The determinism sweep (ctest label: determinism): drives the shared
 * harness across workloads × algorithms × seeds × execution policies ×
 * batchEval × speculation depths and asserts every cell's draws are
 * byte-identical to the sequential unbatched reference. This is the
 * acceptance gate for speculative prefetching — at any depth the
 * executor must produce the same bits it would have produced with
 * speculation off, with mispredictions surfacing only as wasted lanes
 * (obs counters, covered in test_obs), never as different draws.
 */
#include <gtest/gtest.h>

#include "determinism_harness.hpp"
#include "samplers/runner.hpp"
#include "workloads/suite.hpp"

namespace bayes {
namespace {

samplers::Config
sweepConfig(samplers::Algorithm algo, std::uint64_t seed)
{
    samplers::Config cfg;
    cfg.algorithm = algo;
    cfg.chains = 3;
    cfg.iterations = 36;
    cfg.warmup = 18;
    cfg.hmcLeapfrogSteps = 8;
    cfg.seed = seed;
    return cfg;
}

TEST(Determinism, DrawsAreByteIdenticalAcrossPolicyAndDepthSweep)
{
    for (const char* name : {"ad", "12cities"}) {
        const auto wl = workloads::makeWorkload(name, 0.1);
        for (const auto algo :
             {samplers::Algorithm::Mh, samplers::Algorithm::Hmc}) {
            for (const std::uint64_t seed : {777ull, 20190331ull}) {
                SCOPED_TRACE(::testing::Message()
                             << name << " algo "
                             << samplers::algorithmName(algo) << " seed "
                             << seed);
                harness::expectPolicyInvariantDraws(
                    *wl, sweepConfig(algo, seed), {0, 1, 2, 3});
            }
        }
    }
}

TEST(Determinism, StopIterationIsDepthInvariant)
{
    // A monitor that stops mid-run must fire at the same round, with
    // the same delivered draws, whether or not speculative work was in
    // flight — aborted ledgers may never leak into chain state.
    const auto wl = workloads::makeWorkload("ad", 0.1);
    auto cfg = sweepConfig(samplers::Algorithm::Mh, 777);
    cfg.iterations = 60;
    cfg.warmup = 20;
    const samplers::IterationMonitor stopAt13 =
        [](const samplers::MonitorContext& ctx) {
            return ctx.round >= 13 ? samplers::MonitorAction::Stop
                                   : samplers::MonitorAction::Continue;
        };
    harness::expectPolicyInvariantDraws(*wl, cfg, {0, 1, 2, 3}, stopAt13);

    cfg.execution = samplers::ExecutionPolicy::pool(2);
    cfg.batchEval = true;
    cfg.speculationDepth = 3;
    const auto stopped = samplers::run(*wl, cfg, stopAt13);
    for (const auto& chain : stopped.chains)
        EXPECT_EQ(chain.draws.size(), 13u);
}

TEST(Determinism, NonSpeculatingAlgorithmsStayPolicyInvariant)
{
    // NUTS and slice take the unbatched phased path regardless of
    // batchEval/speculationDepth; the knobs must be inert for them.
    const auto wl = workloads::makeWorkload("ad", 0.1);
    for (const auto algo :
         {samplers::Algorithm::Nuts, samplers::Algorithm::Slice}) {
        SCOPED_TRACE(samplers::algorithmName(algo));
        harness::expectPolicyInvariantDraws(
            *wl, sweepConfig(algo, 777), {0, 2});
    }
}

TEST(Determinism, SpeculationDepthValidation)
{
    const auto wl = workloads::makeWorkload("ad", 0.1);
    auto cfg = sweepConfig(samplers::Algorithm::Mh, 777);
    cfg.speculationDepth = -1;
    EXPECT_THROW(samplers::run(*wl, cfg), Error);
    cfg.speculationDepth = 9;
    EXPECT_THROW(samplers::run(*wl, cfg), Error);
}

} // namespace
} // namespace bayes
