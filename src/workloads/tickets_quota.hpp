/**
 * @file
 * `tickets` — do NYPD officers alter ticket writing to match
 * departmental targets?
 *
 * Generative model after Auerbach (2017): each officer has a latent
 * base productivity; an end-of-month quota push shifts the rate; squad
 * and shift covariates modulate it. Ticket counts per
 * officer/month/half are Poisson. This is the suite's largest modeled
 * dataset and the paper's most LLC-bound workload.
 */
#pragma once

#include "workloads/workload.hpp"

namespace bayes::workloads {

/** Officer ticket-writing quota workload. */
class TicketsQuota : public Workload
{
  public:
    /**
     * @param dataScale  dataset shrink factor in (0, 1]
     * @param subsampleFraction  fraction of rows the likelihood visits
     *        per evaluation, each reweighted by its inverse — the
     *        paper's §VII-B mitigation ("subsample the data such that
     *        the working set fits the LLC"). 1.0 = full likelihood.
     */
    explicit TicketsQuota(double dataScale = 1.0,
                          double subsampleFraction = 1.0);

    /** Rows the likelihood actually visits per evaluation. */
    std::size_t activeRows() const { return activeRows_; }

    double logProb(const ppl::ParamView<double>& p) const override;
    ad::Var logProb(const ppl::ParamView<ad::Var>& p) const override;
    double logProbScalar(const ppl::ParamView<double>& p) const override;
    ad::Var logProbScalar(const ppl::ParamView<ad::Var>& p) const override;
    void logProbBatch(const ppl::BatchParamView<double>& p,
                      std::span<double> lp) const override;
    void logProbBatch(const ppl::BatchParamView<ad::Var>& p,
                      std::span<ad::Var> lp) const override;

    /** Number of officers. */
    std::size_t numOfficers() const { return numOfficers_; }

    /** Number of observation rows. */
    std::size_t numRows() const { return counts_.size(); }

    std::vector<double> dataSufficientStats() const override;

    /** End-of-month quota effect used to generate the data. */
    static constexpr double kTrueQuotaEffect = 0.35;

    /** Parameter block indices. */
    enum Block : std::size_t
    {
        kMuTheta,    ///< mean officer log-productivity
        kSigmaTheta, ///< officer heterogeneity, > 0
        kTheta,      ///< per-officer log-productivity
        kDelta,      ///< end-of-month quota effect
        kBeta,       ///< squad / shift covariate effects
    };

  private:
    template <typename T>
    T priorLp(const ppl::ParamView<T>& p) const;
    template <typename T>
    T logDensity(const ppl::ParamView<T>& p) const;
    template <typename T>
    T logDensityScalar(const ppl::ParamView<T>& p) const;
    template <typename T>
    void logDensityBatch(const ppl::BatchParamView<T>& p,
                         std::span<T> lp) const;

    std::size_t numOfficers_;
    std::size_t numCovariates_;
    std::size_t activeRows_;
    double likelihoodWeight_;
    std::vector<long> counts_;
    std::vector<int> officer_;
    std::vector<double> endOfMonth_;
    std::vector<double> covariates_; ///< row-major [row][covariate]
    std::vector<double> design_;     ///< row-major [row]{eom, covariates}
};

} // namespace bayes::workloads
