/**
 * @file
 * Tests for the table/CSV printer used by the benchmark harness.
 */
#include <gtest/gtest.h>

#include "support/table.hpp"
#include "support/error.hpp"

namespace bayes {
namespace {

TEST(Table, RendersAlignedColumns)
{
    Table t({"name", "value"});
    t.row().cell("alpha").cell(1.25, 2);
    t.row().cell("b").cell(10L);
    const std::string out = t.str();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("1.25"), std::string::npos);
    EXPECT_NE(out.find("10"), std::string::npos);
    // Header separator present.
    EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(Table, CsvRoundTrip)
{
    Table t({"a", "b"});
    t.row().cell("x").cell(2.5, 1);
    const std::string csv = t.csv();
    EXPECT_EQ(csv, "a,b\nx,2.5\n");
}

TEST(Table, CsvQuotesSpecialCharacters)
{
    Table t({"a"});
    t.row().cell("hello, world");
    EXPECT_EQ(t.csv(), "a\n\"hello, world\"\n");
    Table q({"a"});
    q.row().cell("say \"hi\"");
    EXPECT_EQ(q.csv(), "a\n\"say \"\"hi\"\"\"\n");
}

TEST(Table, RejectsTooManyCells)
{
    Table t({"only"});
    t.row().cell("ok");
    EXPECT_THROW(t.cell("overflow"), Error);
}

TEST(Table, RejectsCellBeforeRow)
{
    Table t({"c"});
    EXPECT_THROW(t.cell("no row yet"), Error);
}

TEST(Table, RejectsIncompletePreviousRow)
{
    Table t({"a", "b"});
    t.row().cell("only-one");
    EXPECT_THROW(t.row(), Error);
}

TEST(Table, RowsCountsDataRows)
{
    Table t({"a"});
    EXPECT_EQ(t.rows(), 0u);
    t.row().cell("1");
    t.row().cell("2");
    EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, FormatFixedPrecision)
{
    EXPECT_EQ(formatFixed(3.14159, 2), "3.14");
    EXPECT_EQ(formatFixed(-1.0, 0), "-1");
}

} // namespace
} // namespace bayes
