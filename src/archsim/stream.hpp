/**
 * @file
 * Stream-prefetch detector. Modern Intel cores hide sequential misses
 * behind hardware stream prefetchers; without modeling that, the tape's
 * forward/reverse sweeps (purely sequential) would register as massive
 * demand-miss storms that real machines never see. The detector tags
 * each access as stream-covered (±1..2 line stride within a 4 KB page
 * recently touched) or demand; the system model charges them
 * differently and accounts prefetch traffic toward bandwidth.
 */
#pragma once

#include <cstdint>
#include <vector>

namespace bayes::archsim {

/** Per-core table recognizing ascending/descending line streams. */
class StreamDetector
{
  public:
    /** @param entries  tracked concurrent streams (per-core table size) */
    explicit StreamDetector(std::size_t entries = 48) : entries_(entries)
    {
        table_.reserve(entries);
    }

    /**
     * Classify an access and update the stream table.
     * @param lineAddr  byte address (line-aligned internally)
     * @return true when the access continues a detected stream
     */
    bool
    isStream(std::uint64_t lineAddr)
    {
        const std::uint64_t line = lineAddr >> 6;
        const std::uint64_t page = lineAddr >> 12;
        ++clock_;
        for (auto& e : table_) {
            if (e.page == page) {
                const std::int64_t delta = static_cast<std::int64_t>(line)
                    - static_cast<std::int64_t>(e.lastLine);
                const bool seq = delta >= -2 && delta <= 2;
                e.lastLine = line;
                e.stamp = clock_;
                return seq;
            }
        }
        // New stream: evict the stalest entry if full.
        if (table_.size() < entries_) {
            table_.push_back({page, line, clock_});
        } else {
            Entry* victim = &table_[0];
            for (auto& e : table_)
                if (e.stamp < victim->stamp)
                    victim = &e;
            *victim = {page, line, clock_};
        }
        return false;
    }

    /** Forget all streams. */
    void
    reset()
    {
        table_.clear();
        clock_ = 0;
    }

  private:
    struct Entry
    {
        std::uint64_t page;
        std::uint64_t lastLine;
        std::uint64_t stamp;
    };

    std::size_t entries_;
    std::uint64_t clock_ = 0;
    std::vector<Entry> table_;
};

} // namespace bayes::archsim
