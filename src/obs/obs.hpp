/**
 * @file
 * Umbrella header for the observability layer: the metrics registry
 * (counters / gauges / histograms, aggregated into `obs::Snapshot`)
 * and the scoped-span tracer (Chrome trace_event JSON). See
 * `docs/observability.md` for the metric catalogue and the span
 * hierarchy, and `docs/architecture.md` for where the layer sits.
 *
 * Instrumentation idiom used across the runtime:
 *
 *     static obs::Counter& evals =
 *         obs::Registry::global().counter("sampler.grad_evals");
 *     evals.add(n);                        // relaxed sharded atomic
 *
 *     obs::Span span("sampler.round");     // one relaxed load when idle
 *
 * Compile-time kill switch: configure with `-DBAYES_OBS=OFF` and every
 * write path above compiles to an empty inline body.
 */
#pragma once

#include "obs/registry.hpp"
#include "obs/trace.hpp"
