/**
 * @file
 * Figure 7 — energy savings of the convergence-detection design points
 * relative to the original user settings, for every workload on both
 * platforms (paper: 70% average across 10 workloads x 2 platforms).
 *
 * For each workload we run the user configuration once and an elided
 * run once; each platform then evaluates the best core count for the
 * elided run against the 4-core user setting.
 */
#include "common.hpp"
#include "elide/elision.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

#include <cstdio>

using namespace bayes;

int
main()
{
    const auto platforms = {archsim::Platform::skylake(),
                            archsim::Platform::broadwell()};
    Table table({"workload", "platform", "user E(J)", "elided E(J)",
                 "best cores", "saving %"});
    std::vector<double> savings;

    for (const auto& name : workloads::suiteNames()) {
        const auto wl = workloads::makeWorkload(name);
        const auto cfg = bench::userConfig(*wl);
        std::fprintf(stderr, "[bench] %s: user + elided runs...\n",
                     name.c_str());
        const auto userRun = samplers::run(*wl, cfg);
        const auto elided = elide::runWithElision(*wl, cfg);
        const auto profile = archsim::profileWorkload(*wl, cfg.chains);
        const auto userWork = archsim::extractRunWork(userRun);
        const auto elidedWork = archsim::extractRunWork(elided.run);

        for (const auto& platform : platforms) {
            const auto user =
                archsim::simulateSystem(profile, userWork, platform, 4);
            double bestEnergy = 1e300;
            int bestCores = 0;
            for (int cores : {1, 2, 4}) {
                const auto sim = archsim::simulateSystem(
                    profile, elidedWork, platform, cores);
                if (sim.energyJ < bestEnergy) {
                    bestEnergy = sim.energyJ;
                    bestCores = cores;
                }
            }
            const double saving = 1.0 - bestEnergy / user.energyJ;
            savings.push_back(saving);
            table.row()
                .cell(name)
                .cell(platform.name)
                .cell(user.energyJ, 1)
                .cell(bestEnergy, 1)
                .cell(static_cast<long>(bestCores))
                .cell(100.0 * saving, 1);
        }
    }
    printSection("Figure 7 — energy savings of convergence-detection "
                 "design points vs user settings",
                 table);

    Table agg({"aggregate", "value"});
    agg.row().cell("mean energy saving (%) [paper: ~70%]").cell(
        100.0 * mean(savings), 1);
    printSection("Figure 7 — aggregate", agg);
    return 0;
}
