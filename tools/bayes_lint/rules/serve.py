"""R009: the serving layer must not own threads or pools."""

from __future__ import annotations

import re

from ..engine import rule
from ..source import grep_rule, in_dirs

R009_PAT = re.compile(
    r"\bnew\s+(?:\w+\s*::\s*)*ThreadPool\b"
    r"|\bmake_unique\s*<\s*(?:\w+\s*::\s*)*ThreadPool\b"
    r"|\bThreadPool\s+\w+\s*[({]"
    r"|\bthreadPerChain\s*\(\s*\)"
    r"|\bExecutionMode\s*::\s*ThreadPerChain\b")


@rule("R009", "src/serve/ uses the shared pool, never a private one")
def rule_r009(files, findings, _ctx):
    """The serving runtime's concurrency contract: submit/drain run on
    the coordinating thread and chains fan out through the process-shared
    support::sharedPool. A private pool (or thread-per-chain execution)
    inside src/serve/ would nest pools, break the no-nested-wait rule,
    and tear worker threads up and down per request."""
    for sf in files:
        if not in_dirs(sf.relpath, "src/serve"):
            continue
        grep_rule(sf, R009_PAT, "R009",
                  "serve code must not own threads: use the shared pool "
                  "via samplers::ExecutionPolicy::pool / "
                  "support::sharedPool, never a private ThreadPool or "
                  "thread-per-chain execution", findings)
