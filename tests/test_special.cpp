/**
 * @file
 * Tests for scalar special functions against reference values and
 * mathematical identities.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "math/special.hpp"
#include "support/error.hpp"

namespace bayes::math {
namespace {

TEST(Special, DigammaKnownValues)
{
    // digamma(1) = -Euler-Mascheroni
    EXPECT_NEAR(digamma(1.0), -0.57721566490153286, 1e-10);
    // digamma(0.5) = -gamma - 2 ln 2
    EXPECT_NEAR(digamma(0.5), -1.9635100260214235, 1e-10);
    // Recurrence digamma(x+1) = digamma(x) + 1/x
    for (double x : {0.3, 1.7, 4.2, 11.0})
        EXPECT_NEAR(digamma(x + 1.0), digamma(x) + 1.0 / x, 1e-10);
}

TEST(Special, DigammaIsDerivativeOfLgamma)
{
    for (double x : {0.7, 2.5, 9.0}) {
        const double h = 1e-6;
        // bayes-lint: allow(R002): single-threaded libm oracle cross-check
        const double span = std::lgamma(x + h) - std::lgamma(x - h);
        const double numeric = span / (2 * h);
        EXPECT_NEAR(digamma(x), numeric, 1e-6);
    }
}

TEST(Special, TrigammaKnownValuesAndRecurrence)
{
    EXPECT_NEAR(trigamma(1.0), M_PI * M_PI / 6.0, 1e-9);
    for (double x : {0.4, 2.2, 7.0})
        EXPECT_NEAR(trigamma(x + 1.0), trigamma(x) - 1.0 / (x * x), 1e-9);
}

TEST(Special, DigammaDomain)
{
    EXPECT_THROW(digamma(0.0), Error);
    EXPECT_THROW(trigamma(-1.0), Error);
}

TEST(Special, Log1pExpStableInBothTails)
{
    EXPECT_NEAR(log1pExp(0.0), std::log(2.0), 1e-12);
    EXPECT_NEAR(log1pExp(-40.0), std::exp(-40.0), 1e-12);
    EXPECT_NEAR(log1pExp(50.0), 50.0, 1e-12);
    EXPECT_NEAR(log1pExp(800.0), 800.0, 1e-9); // no overflow
}

TEST(Special, InvLogitAndLogitAreInverses)
{
    // |x| <= 12 keeps 1 - p exactly representable enough for a clean
    // round trip; beyond that double rounding near p = 1 dominates.
    for (double x : {-12.0, -2.0, 0.0, 1.5, 12.0})
        EXPECT_NEAR(logit(invLogit(x)), x, 1e-8);
    for (double p : {0.01, 0.3, 0.5, 0.99})
        EXPECT_NEAR(invLogit(logit(p)), p, 1e-12);
}

TEST(Special, LogSumExpPairwise)
{
    EXPECT_NEAR(logSumExp(0.0, 0.0), std::log(2.0), 1e-12);
    EXPECT_NEAR(logSumExp(1000.0, 1000.0), 1000.0 + std::log(2.0), 1e-9);
    EXPECT_NEAR(logSumExp(-INFINITY, 3.0), 3.0, 1e-12);
    EXPECT_EQ(logSumExp(-INFINITY, -INFINITY), -INFINITY);
}

TEST(Special, LogSumExpVector)
{
    EXPECT_NEAR(logSumExp({0.0, 0.0, 0.0, 0.0}), std::log(4.0), 1e-12);
    EXPECT_NEAR(logSumExp({-1e308, 5.0}), 5.0, 1e-12);
    EXPECT_THROW(logSumExp(std::vector<double>{}), Error);
}

TEST(Special, LogDiffExp)
{
    EXPECT_NEAR(logDiffExp(std::log(5.0), std::log(3.0)), std::log(2.0),
                1e-12);
    EXPECT_EQ(logDiffExp(2.0, 2.0), -INFINITY);
}

TEST(Special, StdNormalCdfKnownValues)
{
    EXPECT_NEAR(stdNormalCdf(0.0), 0.5, 1e-12);
    EXPECT_NEAR(stdNormalCdf(1.959963984540054), 0.975, 1e-9);
    EXPECT_NEAR(stdNormalCdf(-1.0) + stdNormalCdf(1.0), 1.0, 1e-12);
}

TEST(Special, StdNormalQuantileInvertsCdf)
{
    for (double p : {0.001, 0.025, 0.2, 0.5, 0.8, 0.975, 0.999})
        EXPECT_NEAR(stdNormalCdf(stdNormalQuantile(p)), p, 1e-8);
    EXPECT_THROW(stdNormalQuantile(0.0), Error);
    EXPECT_THROW(stdNormalQuantile(1.0), Error);
}

TEST(Special, LbetaMatchesGammaIdentity)
{
    EXPECT_NEAR(lbeta(1.0, 1.0), 0.0, 1e-12);          // B(1,1)=1
    EXPECT_NEAR(lbeta(2.0, 3.0), std::log(1.0 / 12.0), 1e-12);
}

TEST(Special, LchooseMatchesSmallCases)
{
    EXPECT_NEAR(lchoose(5, 2), std::log(10.0), 1e-12);
    EXPECT_NEAR(lchoose(10, 0), 0.0, 1e-12);
    EXPECT_NEAR(lchoose(52, 5), std::log(2598960.0), 1e-9);
}

// Edge cases the ubsan ctest label guards: the poles and out-of-support
// arguments must produce deterministic inf/-inf/NaN, never pole
// arithmetic (inf - inf) or a libm FP exception mid-sample.

TEST(Special, LgammaSafePolesAreDeterministicInf)
{
    EXPECT_TRUE(std::isinf(lgammaSafe(0.0)));
    EXPECT_GT(lgammaSafe(0.0), 0.0);
    EXPECT_TRUE(std::isinf(lgammaSafe(-0.0)));
    EXPECT_TRUE(std::isinf(lgammaSafe(-1.0)));
    EXPECT_TRUE(std::isinf(lgammaSafe(-42.0)));
    // Non-pole points stay finite, including between the poles.
    EXPECT_TRUE(std::isfinite(lgammaSafe(-0.5)));
    EXPECT_TRUE(std::isfinite(lgammaSafe(-41.5)));
    EXPECT_NEAR(lgammaSafe(0.5), 0.5 * std::log(M_PI), 1e-12);
    EXPECT_TRUE(std::isnan(lgammaSafe(NAN)));
}

TEST(Special, LchooseOutsideSupportIsMinusInf)
{
    EXPECT_EQ(lchoose(5.0, 6.0), -INFINITY);   // k > n
    EXPECT_EQ(lchoose(5.0, -1.0), -INFINITY);  // k < 0
    EXPECT_EQ(lchoose(0.0, 1.0), -INFINITY);
    EXPECT_NEAR(lchoose(0.0, 0.0), 0.0, 1e-12); // C(0,0) = 1
    EXPECT_TRUE(std::isnan(lchoose(NAN, 2.0)));
    EXPECT_TRUE(std::isnan(lchoose(5.0, NAN)));
}

TEST(Special, LbetaAtZeroArgumentsIsInf)
{
    EXPECT_TRUE(std::isinf(lbeta(0.0, 1.0)));
    EXPECT_TRUE(std::isinf(lbeta(1.0, 0.0)));
    EXPECT_TRUE(std::isfinite(lbeta(1e-8, 1e-8)));
}

} // namespace
} // namespace bayes::math
