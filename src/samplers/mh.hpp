/**
 * @file
 * Random-walk Metropolis-Hastings — the paper's Algorithm 1, kept as
 * the pedagogical baseline. The proposal is an isotropic Gaussian on
 * the unconstrained scale whose width is tuned during warmup toward
 * the classic 0.234 acceptance rate.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "ppl/evaluator.hpp"
#include "samplers/prefetch.hpp"
#include "support/rng.hpp"

namespace bayes::samplers {

/** Outcome of one Metropolis-Hastings transition. */
struct MhTransition
{
    bool accepted = false;
    double acceptProb = 0.0;
};

/** One-chain random-walk Metropolis kernel. */
class MhSampler
{
  public:
    explicit MhSampler(ppl::Evaluator& eval);

    /** Proposal standard deviation. */
    void setScale(double scale) { scale_ = scale; }
    double scale() const { return scale_; }

    /** Robbins-Monro scale adaptation step (call during warmup only). */
    void adaptScale(double acceptProb);

    /**
     * One transition from @p q with cached density @p logProb (both
     * updated in place on acceptance).
     */
    MhTransition transition(std::vector<double>& q, double& logProb,
                            Rng& rng);

    // -- Split transition for batched execution ----------------------
    // transition() == propose; evaluate; finish — byte-identical by
    // construction: the split consumes the chain's RNG in the same
    // order, including the accept draw's dependence on the proposal
    // density being finite.

    /** Draw the Gaussian proposal (consumes q.size() normal draws). */
    void
    propose(const std::vector<double>& q, Rng& rng,
            std::vector<double>& proposal) const
    {
        proposal.resize(q.size());
        for (std::size_t i = 0; i < q.size(); ++i)
            proposal[i] = q[i] + scale_ * rng.normal();
    }

    /**
     * Accept/reject @p proposal given its (batched) log density.
     * @p proposal is consumed (moved into @p q) on acceptance.
     */
    MhTransition finish(std::vector<double>& q, double& logProb,
                        std::vector<double>& proposal,
                        double proposalLogProb, Rng& rng);

    /**
     * Fork-point API for predictive prefetching: pre-generate the
     * depth-@p depth accept/reject proposal tree below @p pending
     * (the proposal just drawn from @p q) into @p ledger. @p replica
     * must be the chain RNG's replicaFork() taken after propose() —
     * the planner replays the chain's own future stream on it, so a
     * realized branch byte-matches the real future proposal.
     */
    void speculate(const std::vector<double>& q,
                   const std::vector<double>& pending, Rng replica,
                   int depth, prefetch::Ledger& ledger,
                   std::vector<prefetch::SpecLane>& lanes) const;

  private:
    ppl::Evaluator* eval_;
    double scale_;
    long adaptCount_ = 0;

    static constexpr double kTargetAccept = 0.234;
};

} // namespace bayes::samplers
