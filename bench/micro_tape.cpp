/**
 * @file
 * Micro-bench — gradient-evaluation throughput per workload: wall time
 * of one logProbGrad call and the implied tape-node rate. This is the
 * sampler's inner loop; the architecture model's instruction counts are
 * anchored to these node counts.
 */
#include <benchmark/benchmark.h>

#include "ppl/evaluator.hpp"
#include "samplers/runner.hpp"
#include "workloads/suite.hpp"

using namespace bayes;

namespace {

void
BM_LogProbGrad(benchmark::State& state, const std::string& name,
               bool scalarLikelihood = false)
{
    const auto wl = workloads::makeWorkload(name);
    ppl::Evaluator eval(*wl);
    eval.setScalarLikelihood(scalarLikelihood);
    Rng rng(7);
    const auto q = samplers::findInitialPoint(eval, rng);
    std::vector<double> grad;
    for (auto _ : state) {
        benchmark::DoNotOptimize(eval.logProbGrad(q, grad));
    }
    state.counters["tape_nodes"] =
        static_cast<double>(eval.lastTapeNodes());
    state.counters["tape_bytes"] = static_cast<double>(eval.tape().bytes());
    state.counters["nodes/s"] = benchmark::Counter(
        static_cast<double>(eval.lastTapeNodes()),
        benchmark::Counter::kIsIterationInvariantRate);
}

} // namespace

BENCHMARK_CAPTURE(BM_LogProbGrad, twelvecities, std::string("12cities"));
BENCHMARK_CAPTURE(BM_LogProbGrad, ad, std::string("ad"));
BENCHMARK_CAPTURE(BM_LogProbGrad, ode, std::string("ode"));
BENCHMARK_CAPTURE(BM_LogProbGrad, memory, std::string("memory"));
BENCHMARK_CAPTURE(BM_LogProbGrad, votes, std::string("votes"));
BENCHMARK_CAPTURE(BM_LogProbGrad, tickets, std::string("tickets"));
BENCHMARK_CAPTURE(BM_LogProbGrad, disease, std::string("disease"));
BENCHMARK_CAPTURE(BM_LogProbGrad, racial, std::string("racial"));
BENCHMARK_CAPTURE(BM_LogProbGrad, butterfly, std::string("butterfly"));
BENCHMARK_CAPTURE(BM_LogProbGrad, survival, std::string("survival"));

// Scalar reference path on the ported workloads: the tape_nodes /
// tape_bytes counters against the fused rows above are the working-set
// reduction this PR claims (compare e.g. `ad` to `ad_scalar`).
BENCHMARK_CAPTURE(BM_LogProbGrad, twelvecities_scalar,
                  std::string("12cities"), true);
BENCHMARK_CAPTURE(BM_LogProbGrad, ad_scalar, std::string("ad"), true);
BENCHMARK_CAPTURE(BM_LogProbGrad, votes_scalar, std::string("votes"), true);
BENCHMARK_CAPTURE(BM_LogProbGrad, tickets_scalar, std::string("tickets"),
                  true);
BENCHMARK_CAPTURE(BM_LogProbGrad, disease_scalar, std::string("disease"),
                  true);
BENCHMARK_CAPTURE(BM_LogProbGrad, survival_scalar, std::string("survival"),
                  true);
