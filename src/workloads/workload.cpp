#include "workloads/workload.hpp"

#include <algorithm>
#include <functional>

#include "workloads/suite.hpp"

namespace bayes::workloads {

Workload::Workload(WorkloadInfo info, double dataScale)
    : info_(std::move(info)), dataScale_(dataScale)
{
    BAYES_CHECK(dataScale_ > 0.0 && dataScale_ <= 1.0,
                "dataScale must be in (0, 1]");
}

Rng
Workload::dataRng() const
{
    // Stable per-workload stream: hash the name, not the address.
    const std::uint64_t h = std::hash<std::string>{}(info_.name);
    return Rng(0xba5e5c01dULL ^ h);
}

std::size_t
Workload::scaled(std::size_t n) const
{
    const auto m = static_cast<std::size_t>(
        static_cast<double>(n) * dataScale_ + 0.5);
    return std::max<std::size_t>(4, m);
}

const std::vector<std::string>&
suiteNames()
{
    static const std::vector<std::string> names = {
        "12cities", "ad",      "ode",    "memory",    "votes",
        "tickets",  "disease", "racial", "butterfly", "survival",
    };
    return names;
}

std::unique_ptr<Workload>
makeWorkload(const std::string& name, double dataScale)
{
    if (name == "12cities")
        return std::make_unique<TwelveCities>(dataScale);
    if (name == "ad")
        return std::make_unique<AdAttribution>(dataScale);
    if (name == "ode")
        return std::make_unique<PkpdOde>(dataScale);
    if (name == "memory")
        return std::make_unique<MemoryRetrieval>(dataScale);
    if (name == "votes")
        return std::make_unique<VotesForecast>(dataScale);
    if (name == "tickets")
        return std::make_unique<TicketsQuota>(dataScale);
    if (name == "disease")
        return std::make_unique<DiseaseProgression>(dataScale);
    if (name == "racial")
        return std::make_unique<RacialThreshold>(dataScale);
    if (name == "butterfly")
        return std::make_unique<ButterflyRichness>(dataScale);
    if (name == "survival")
        return std::make_unique<AnimalSurvival>(dataScale);
    throw Error("unknown BayesSuite workload '" + name + "'");
}

std::vector<std::unique_ptr<Workload>>
makeSuite(double dataScale)
{
    std::vector<std::unique_ptr<Workload>> suite;
    suite.reserve(suiteNames().size());
    for (const auto& name : suiteNames())
        suite.push_back(makeWorkload(name, dataScale));
    return suite;
}

} // namespace bayes::workloads
