#include "support/rng.hpp"

#include <cmath>

#include "support/error.hpp"

namespace bayes {
namespace {

/** SplitMix64 step used to expand a single seed into generator state. */
std::uint64_t
splitmix64(std::uint64_t& x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t x = seed;
    for (auto& s : s_)
        s = splitmix64(x);
    // All-zero state is invalid for xoshiro; splitmix cannot produce it
    // for all four words simultaneously, but guard anyway.
    if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0)
        s_[0] = 1;
}

std::uint64_t
Rng::nextU64()
{
    const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53 high bits -> double in [0, 1).
    return static_cast<double>(nextU64() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::uint64_t
Rng::uniformInt(std::uint64_t n)
{
    BAYES_CHECK(n > 0, "uniformInt requires n > 0");
    // Rejection to avoid modulo bias.
    const std::uint64_t limit = ~0ULL - (~0ULL % n);
    std::uint64_t r;
    do {
        r = nextU64();
    } while (r >= limit);
    return r % n;
}

double
Rng::normal()
{
    if (hasSpare_) {
        hasSpare_ = false;
        return spareNormal_;
    }
    double u1, u2;
    do {
        u1 = uniform();
    } while (u1 <= 0.0);
    u2 = uniform();
    const double mag = std::sqrt(-2.0 * std::log(u1));
    spareNormal_ = mag * std::sin(2.0 * M_PI * u2);
    hasSpare_ = true;
    return mag * std::cos(2.0 * M_PI * u2);
}

double
Rng::normal(double mean, double sd)
{
    return mean + sd * normal();
}

double
Rng::exponential(double rate)
{
    BAYES_CHECK(rate > 0, "exponential rate must be positive");
    double u;
    do {
        u = uniform();
    } while (u <= 0.0);
    return -std::log(u) / rate;
}

double
Rng::gamma(double shape, double rate)
{
    BAYES_CHECK(shape > 0 && rate > 0, "gamma shape/rate must be positive");
    // Marsaglia & Tsang (2000); boost for shape < 1 via the power trick.
    if (shape < 1.0) {
        const double u = std::max(uniform(), 1e-300);
        return gamma(shape + 1.0, rate) * std::pow(u, 1.0 / shape);
    }
    const double d = shape - 1.0 / 3.0;
    const double c = 1.0 / std::sqrt(9.0 * d);
    while (true) {
        double x, v;
        do {
            x = normal();
            v = 1.0 + c * x;
        } while (v <= 0.0);
        v = v * v * v;
        const double u = uniform();
        if (u < 1.0 - 0.0331 * x * x * x * x)
            return d * v / rate;
        if (u > 0 && std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v)))
            return d * v / rate;
    }
}

double
Rng::beta(double a, double b)
{
    BAYES_CHECK(a > 0 && b > 0, "beta parameters must be positive");
    const double x = gamma(a, 1.0);
    const double y = gamma(b, 1.0);
    return x / (x + y);
}

long
Rng::poisson(double mean)
{
    BAYES_CHECK(mean >= 0, "poisson mean must be nonnegative");
    if (mean == 0.0)
        return 0;
    if (mean < 30.0) {
        // Knuth inversion.
        const double l = std::exp(-mean);
        long k = 0;
        double p = 1.0;
        do {
            ++k;
            p *= uniform();
        } while (p > l);
        return k - 1;
    }
    // Normal approximation with continuity correction, clipped at zero;
    // adequate for synthetic data generation at large means.
    const double draw = normal(mean, std::sqrt(mean));
    return std::max(0L, std::lround(draw));
}

long
Rng::binomial(long n, double p)
{
    BAYES_CHECK(n >= 0 && p >= 0.0 && p <= 1.0, "binomial domain violated");
    if (n == 0 || p == 0.0)
        return 0;
    if (p == 1.0)
        return n;
    if (n < 64) {
        long k = 0;
        for (long i = 0; i < n; ++i)
            k += (uniform() < p) ? 1 : 0;
        return k;
    }
    const double mean = static_cast<double>(n) * p;
    const double sd = std::sqrt(mean * (1.0 - p));
    const long draw = std::lround(normal(mean, sd));
    return std::min(n, std::max(0L, draw));
}

int
Rng::bernoulli(double p)
{
    return uniform() < p ? 1 : 0;
}

double
Rng::studentT(double nu)
{
    BAYES_CHECK(nu > 0, "student-t dof must be positive");
    const double z = normal();
    const double g = gamma(nu / 2.0, nu / 2.0);
    return z / std::sqrt(g);
}

double
Rng::cauchy(double loc, double scale)
{
    BAYES_CHECK(scale > 0, "cauchy scale must be positive");
    return loc + scale * std::tan(M_PI * (uniform() - 0.5));
}

std::size_t
Rng::categorical(const std::vector<double>& weights)
{
    BAYES_CHECK(!weights.empty(), "categorical requires nonempty weights");
    double total = 0.0;
    for (double w : weights) {
        BAYES_CHECK(w >= 0.0, "categorical weights must be nonnegative");
        total += w;
    }
    BAYES_CHECK(total > 0.0, "categorical weights must not all be zero");
    double u = uniform() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        u -= weights[i];
        if (u <= 0.0)
            return i;
    }
    return weights.size() - 1;
}

Rng
Rng::fork()
{
    Rng child = *this;
    jump();
    // Children should not share the Box-Muller cache with the parent.
    child.hasSpare_ = false;
    return child;
}

Rng
Rng::replicaFork() const
{
    // The Box-Muller spare is part of the replayed stream: a replica
    // that dropped it would disagree with the parent on the very next
    // normal() whenever a spare is cached.
    return *this;
}

Rng
Rng::streamFork(std::uint64_t stream) const
{
    Rng child = *this;
    // Perturb every state word through SplitMix64 so even stream keys
    // 0 and 1 land in unrelated regions of the xoshiro orbit.
    std::uint64_t x = stream ^ 0x6a09e667f3bcc909ULL;
    for (auto& s : child.s_)
        s ^= splitmix64(x);
    if ((child.s_[0] | child.s_[1] | child.s_[2] | child.s_[3]) == 0)
        child.s_[0] = 1;
    child.hasSpare_ = false;
    return child;
}

void
Rng::jump()
{
    static const std::uint64_t kJump[] = {
        0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL,
        0xa9582618e03fc9aaULL, 0x39abdc4529b1661cULL};
    std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
    for (std::uint64_t jump : kJump) {
        for (int b = 0; b < 64; ++b) {
            if (jump & (1ULL << b)) {
                s0 ^= s_[0];
                s1 ^= s_[1];
                s2 ^= s_[2];
                s3 ^= s_[3];
            }
            nextU64();
        }
    }
    s_[0] = s0;
    s_[1] = s1;
    s_[2] = s2;
    s_[3] = s3;
    hasSpare_ = false;
}

} // namespace bayes
