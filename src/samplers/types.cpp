#include "samplers/types.hpp"

#include "support/error.hpp"

namespace bayes::samplers {

const char*
algorithmName(Algorithm algo)
{
    switch (algo) {
      case Algorithm::Nuts:
        return "NUTS";
      case Algorithm::Hmc:
        return "HMC";
      case Algorithm::Mh:
        return "MH";
      case Algorithm::Slice:
        return "slice";
    }
    return "?";
}

const char*
executionModeName(ExecutionMode mode)
{
    switch (mode) {
      case ExecutionMode::Sequential:
        return "sequential";
      case ExecutionMode::ThreadPerChain:
        return "thread-per-chain";
      case ExecutionMode::Pool:
        return "pool";
    }
    return "?";
}

std::uint64_t
ChainResult::postWarmupGradEvals() const
{
    const std::size_t warmupIters = iterStats.size() - draws.size();
    std::uint64_t total = 0;
    for (std::size_t i = warmupIters; i < iterStats.size(); ++i)
        total += iterStats[i].gradEvals;
    return total;
}

std::vector<std::vector<double>>
RunResult::coordinate(std::size_t i) const
{
    std::vector<std::vector<double>> out;
    out.reserve(chains.size());
    for (const auto& chain : chains) {
        std::vector<double> xs;
        xs.reserve(chain.draws.size());
        for (const auto& draw : chain.draws) {
            BAYES_CHECK(i < draw.size(), "coordinate out of range");
            xs.push_back(draw[i]);
        }
        out.push_back(std::move(xs));
    }
    return out;
}

std::uint64_t
RunResult::totalGradEvals() const
{
    std::uint64_t total = 0;
    for (const auto& chain : chains)
        total += chain.totalGradEvals;
    return total;
}

} // namespace bayes::samplers
