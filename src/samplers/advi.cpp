#include "samplers/advi.hpp"

#include <algorithm>
#include <cmath>

#include "samplers/runner.hpp"

namespace bayes::samplers {
namespace {

/** Adam state for one parameter vector. */
class Adam
{
  public:
    Adam(std::size_t n, double lr) : lr_(lr), m_(n, 0.0), v_(n, 0.0) {}

    void
    step(std::vector<double>& x, const std::vector<double>& grad)
    {
        ++t_;
        const double correct1 = 1.0 - std::pow(kBeta1, t_);
        const double correct2 = 1.0 - std::pow(kBeta2, t_);
        for (std::size_t i = 0; i < x.size(); ++i) {
            m_[i] = kBeta1 * m_[i] + (1.0 - kBeta1) * grad[i];
            v_[i] = kBeta2 * v_[i] + (1.0 - kBeta2) * grad[i] * grad[i];
            const double mHat = m_[i] / correct1;
            const double vHat = v_[i] / correct2;
            x[i] += lr_ * mHat / (std::sqrt(vHat) + kEps);
        }
    }

  private:
    static constexpr double kBeta1 = 0.9;
    static constexpr double kBeta2 = 0.999;
    static constexpr double kEps = 1e-8;

    double lr_;
    long t_ = 0;
    std::vector<double> m_;
    std::vector<double> v_;
};

} // namespace

AdviResult
fitAdvi(const ppl::Model& model, const AdviConfig& config)
{
    BAYES_CHECK(config.maxIterations > 0 && config.gradSamples > 0,
                "ADVI needs positive iteration/sample counts");
    ppl::Evaluator eval(model);
    const std::size_t n = eval.dim();
    Rng rng(config.seed);

    AdviResult result;
    // Initialize mu at a finite-density point, omega at modest scales.
    result.mu = findInitialPoint(eval, rng);
    result.omega.assign(n, -1.0);

    // MAP warm start: deterministic ascent to the typical set.
    if (config.mapWarmStart > 0) {
        Adam adamMap(n, 2.0 * config.learningRate);
        std::vector<double> mapGrad;
        for (int iter = 0; iter < config.mapWarmStart; ++iter) {
            const double lp = eval.logProbGrad(result.mu, mapGrad);
            ++result.gradEvals;
            if (!std::isfinite(lp))
                break;
            adamMap.step(result.mu, mapGrad);
        }
    }

    Adam adamMu(n, config.learningRate);
    Adam adamOmega(n, config.learningRate);

    const std::size_t samples = static_cast<std::size_t>(config.gradSamples);
    std::vector<double> theta(n), gradMu(n), gradOmega(n);
    std::vector<double> epsAll(samples * n); // [sample][coordinate]
    ppl::EvalBatch thetaBatch(n, samples);
    ppl::EvalBatch gradBatch;
    std::vector<double> lps(samples);
    double bestElbo = -1e300;
    double elboAccum = 0.0;
    int elboCount = 0;

    for (int iter = 0; iter < config.maxIterations; ++iter) {
        std::fill(gradMu.begin(), gradMu.end(), 0.0);
        std::fill(gradOmega.begin(), gradOmega.end(), 0.0);
        double elbo = 0.0;
        // All S Monte Carlo draws go into one EvalBatch: the gradient
        // evaluation streams the observed data once per iteration
        // instead of once per sample. The eps draws stay in the
        // per-sample order, so the RNG stream matches the sequential
        // loop this replaced.
        for (std::size_t s = 0; s < samples; ++s) {
            double* eps = epsAll.data() + s * n;
            for (std::size_t i = 0; i < n; ++i) {
                eps[i] = rng.normal();
                theta[i] = result.mu[i] + std::exp(result.omega[i]) * eps[i];
            }
            thetaBatch.setPoint(s, theta);
        }
        eval.logProbGradBatch(thetaBatch, lps, gradBatch);
        result.gradEvals += samples;
        for (std::size_t s = 0; s < samples; ++s) {
            if (!std::isfinite(lps[s]))
                continue; // skip divergent draws
            elbo += lps[s];
            const double* eps = epsAll.data() + s * n;
            for (std::size_t i = 0; i < n; ++i) {
                gradMu[i] += gradBatch.at(i, s);
                gradOmega[i] +=
                    gradBatch.at(i, s) * eps[i] * std::exp(result.omega[i]);
            }
        }
        const double scale = 1.0 / config.gradSamples;
        for (std::size_t i = 0; i < n; ++i) {
            gradMu[i] *= scale;
            // Entropy of q contributes +1 to every omega gradient.
            gradOmega[i] = gradOmega[i] * scale + 1.0;
        }
        adamMu.step(result.mu, gradMu);
        adamOmega.step(result.omega, gradOmega);
        for (double& w : result.omega)
            w = std::clamp(w, -12.0, 6.0);

        // ELBO = E[log p] + entropy (up to the Gaussian constant).
        double entropy = 0.0;
        for (double w : result.omega)
            entropy += w;
        elboAccum += elbo * scale + entropy;
        ++elboCount;

        if ((iter + 1) % config.evalInterval == 0) {
            const double smoothed = elboAccum / elboCount;
            elboAccum = 0.0;
            elboCount = 0;
            result.elboTrace.push_back(smoothed);
            const double rel = std::fabs(smoothed - bestElbo)
                / (std::fabs(bestElbo) + 1e-10);
            if (result.elboTrace.size() > 2 && rel < config.tolerance) {
                result.converged = true;
                break;
            }
            bestElbo = std::max(bestElbo, smoothed);
        }
    }

    // Sample the fitted q and map to the constrained scale.
    result.draws.reserve(config.outputDraws);
    for (int d = 0; d < config.outputDraws; ++d) {
        for (std::size_t i = 0; i < n; ++i)
            theta[i] = result.mu[i]
                + std::exp(result.omega[i]) * rng.normal();
        result.draws.push_back(eval.constrain(theta));
    }
    return result;
}

} // namespace bayes::samplers
