/**
 * @file
 * Reverse-mode autodiff tests: every operator's gradient is validated
 * against central finite differences, plus tape mechanics (arena reuse,
 * op-class accounting, memory probing, constant folding).
 */
#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <string>

#include "ad/tape.hpp"
#include "ad/var.hpp"
#include "math/functions.hpp"

namespace bayes::ad {
namespace {

/** d f / d x at x0 via the tape. */
double
tapeGradient(const std::function<Var(const Var&)>& f, double x0)
{
    Tape tape;
    Var x = leaf(tape, x0);
    Var y = f(x);
    std::vector<double> adj;
    tape.gradient(y.id(), adj);
    return adj[x.id()];
}

/** Central finite difference. */
double
numericGradient(const std::function<Var(const Var&)>& f, double x0,
                double h = 1e-6)
{
    return (f(Var(x0 + h)).value() - f(Var(x0 - h)).value()) / (2.0 * h);
}

struct UnaryCase
{
    std::string name;
    std::function<Var(const Var&)> f;
    double x0;
};

class UnaryGradientTest : public ::testing::TestWithParam<UnaryCase>
{
};

TEST_P(UnaryGradientTest, MatchesFiniteDifference)
{
    const auto& c = GetParam();
    const double analytic = tapeGradient(c.f, c.x0);
    const double numeric = numericGradient(c.f, c.x0);
    EXPECT_NEAR(analytic, numeric,
                1e-5 * std::max(1.0, std::fabs(numeric)))
        << c.name << " at x=" << c.x0;
}

INSTANTIATE_TEST_SUITE_P(
    Ops, UnaryGradientTest,
    ::testing::Values(
        UnaryCase{"exp", [](const Var& x) { return exp(x); }, 0.7},
        UnaryCase{"log", [](const Var& x) { return log(x); }, 2.3},
        UnaryCase{"log1p", [](const Var& x) { return log1p(x); }, 0.4},
        UnaryCase{"sqrt", [](const Var& x) { return sqrt(x); }, 3.1},
        UnaryCase{"square", [](const Var& x) { return square(x); }, -1.4},
        UnaryCase{"sin", [](const Var& x) { return sin(x); }, 1.1},
        UnaryCase{"cos", [](const Var& x) { return cos(x); }, 0.3},
        UnaryCase{"tanh", [](const Var& x) { return tanh(x); }, -0.8},
        UnaryCase{"atan", [](const Var& x) { return atan(x); }, 2.0},
        UnaryCase{"fabs", [](const Var& x) { return fabs(x); }, -2.5},
        UnaryCase{"neg", [](const Var& x) { return -x; }, 0.9},
        UnaryCase{"powc", [](const Var& x) { return pow(x, 2.5); }, 1.7},
        UnaryCase{"lgamma",
                  [](const Var& x) { return math::lgamma(x); }, 3.3},
        UnaryCase{"erf", [](const Var& x) { return math::erf(x); }, 0.5},
        UnaryCase{"erfc", [](const Var& x) { return math::erfc(x); }, -0.2},
        UnaryCase{"invlogit",
                  [](const Var& x) { return math::invLogit(x); }, 0.8},
        UnaryCase{"log1pexp",
                  [](const Var& x) { return math::log1pExp(x); }, -1.5},
        UnaryCase{"expm1",
                  [](const Var& x) { return math::expm1(x); }, 0.6},
        UnaryCase{"stdnormcdf",
                  [](const Var& x) { return math::stdNormalCdf(x); }, 0.4},
        UnaryCase{"composite",
                  [](const Var& x) {
                      return exp(x) * log(x + 3.0) - square(x) / (x + 5.0);
                  },
                  1.2}),
    [](const auto& paramInfo) { return paramInfo.param.name; });

TEST(Ad, BinaryOperatorGradients)
{
    Tape tape;
    Var x = leaf(tape, 2.0);
    Var y = leaf(tape, 3.0);
    Var f = x * y + x / y - y + pow(x, y);
    std::vector<double> adj;
    tape.gradient(f.id(), adj);
    // df/dx = y + 1/y + y x^{y-1} = 3 + 1/3 + 3*4 = 15.3333...
    EXPECT_NEAR(adj[x.id()], 3.0 + 1.0 / 3.0 + 12.0, 1e-10);
    // df/dy = x - x/y^2 - 1 + x^y ln x = 2 - 2/9 - 1 + 8 ln 2
    EXPECT_NEAR(adj[y.id()], 2.0 - 2.0 / 9.0 - 1.0 + 8.0 * std::log(2.0),
                1e-10);
}

TEST(Ad, SharedSubexpressionAccumulatesAdjoints)
{
    Tape tape;
    Var x = leaf(tape, 1.5);
    Var s = x * x; // used twice below
    Var f = s + s;
    std::vector<double> adj;
    tape.gradient(f.id(), adj);
    EXPECT_NEAR(adj[x.id()], 4.0 * 1.5, 1e-12); // d(2x^2)/dx = 4x
}

TEST(Ad, ConstantsDoNotTouchTheTape)
{
    Tape tape;
    Var a(2.0), b(3.0);
    Var c = a * b + exp(a);
    EXPECT_FALSE(c.tracked());
    EXPECT_NEAR(c.value(), 6.0 + std::exp(2.0), 1e-12);
    EXPECT_EQ(tape.size(), 0u);
}

TEST(Ad, MixedConstantVariable)
{
    Tape tape;
    Var x = leaf(tape, 4.0);
    Var f = 2.0 * x + 10.0;
    std::vector<double> adj;
    tape.gradient(f.id(), adj);
    EXPECT_NEAR(adj[x.id()], 2.0, 1e-12);
}

TEST(Ad, ClearReusesArena)
{
    Tape tape;
    for (int rep = 0; rep < 3; ++rep) {
        tape.clear();
        Var x = leaf(tape, 1.0 + rep);
        Var y = exp(x) + x;
        std::vector<double> adj;
        tape.gradient(y.id(), adj);
        EXPECT_NEAR(adj[x.id()], std::exp(1.0 + rep) + 1.0, 1e-10);
        EXPECT_EQ(tape.size(), 3u); // leaf, exp, add
    }
    EXPECT_EQ(tape.totalOps(), 9u); // totalOps accumulates across clears
}

TEST(Ad, OpClassAccounting)
{
    Tape tape;
    Var x = leaf(tape, 1.0);
    Var y = leaf(tape, 2.0);
    Var f = x + y;       // AddSub
    f = f * x;           // Mul
    f = f / y;           // Div
    f = exp(f);          // Special
    (void)f;
    const auto& counts = tape.opCounts();
    EXPECT_EQ(counts[static_cast<int>(OpClass::Leaf)], 2u);
    EXPECT_EQ(counts[static_cast<int>(OpClass::AddSub)], 1u);
    EXPECT_EQ(counts[static_cast<int>(OpClass::Mul)], 1u);
    EXPECT_EQ(counts[static_cast<int>(OpClass::Div)], 1u);
    EXPECT_EQ(counts[static_cast<int>(OpClass::Special)], 1u);
    tape.clear();
    for (auto c : tape.opCounts())
        EXPECT_EQ(c, 0u);
}

TEST(Ad, FminFmaxRouteToWinner)
{
    Tape tape;
    Var x = leaf(tape, 2.0);
    Var y = leaf(tape, 5.0);
    EXPECT_EQ(fmax(x, y).id(), y.id());
    EXPECT_EQ(fmin(x, y).id(), x.id());
}

TEST(Ad, GradientOfUnknownNodeThrows)
{
    Tape tape;
    std::vector<double> adj;
    EXPECT_THROW(tape.gradient(0, adj), Error);
}

/** Probe counting accesses for the trace-capture contract. */
class CountingProbe : public MemProbe
{
  public:
    void
    access(const void* addr, std::size_t bytes, bool write) override
    {
        ++count;
        lastAddr = addr;
        lastBytes = bytes;
        writes += write;
    }

    int count = 0;
    int writes = 0;
    const void* lastAddr = nullptr;
    std::size_t lastBytes = 0;
};

TEST(Ad, ProbeSeesNodePushesAndGradientSweep)
{
    Tape tape;
    CountingProbe probe;
    tape.setProbe(&probe);
    Var x = leaf(tape, 1.0);
    Var y = exp(x);
    const int pushes = probe.count;
    EXPECT_EQ(pushes, 2); // two node writes
    EXPECT_EQ(probe.writes, 2);
    std::vector<double> adj;
    tape.gradient(y.id(), adj);
    EXPECT_GT(probe.count, pushes); // sweep generates more traffic
    tape.setProbe(nullptr);
    const int after = probe.count;
    (void)leaf(tape, 2.0);
    EXPECT_EQ(probe.count, after); // detached probe sees nothing
}

TEST(Ad, BytesReflectsNodeStorage)
{
    Tape tape;
    (void)leaf(tape, 1.0);
    EXPECT_GE(tape.bytes(), sizeof(Node));
}

TEST(Ad, MultivariateGradientMatchesFiniteDifference)
{
    // f(a, b, c) = a*exp(b) + log(c)*a^2 at (1.2, 0.4, 2.0)
    auto f = [](double a, double b, double c) {
        return a * std::exp(b) + std::log(c) * a * a;
    };
    Tape tape;
    Var a = leaf(tape, 1.2);
    Var b = leaf(tape, 0.4);
    Var c = leaf(tape, 2.0);
    Var y = a * exp(b) + log(c) * square(a);
    std::vector<double> adj;
    tape.gradient(y.id(), adj);

    const double h = 1e-6;
    EXPECT_NEAR(adj[a.id()],
                (f(1.2 + h, 0.4, 2.0) - f(1.2 - h, 0.4, 2.0)) / (2 * h),
                1e-5);
    EXPECT_NEAR(adj[b.id()],
                (f(1.2, 0.4 + h, 2.0) - f(1.2, 0.4 - h, 2.0)) / (2 * h),
                1e-5);
    EXPECT_NEAR(adj[c.id()],
                (f(1.2, 0.4, 2.0 + h) - f(1.2, 0.4, 2.0 - h)) / (2 * h),
                1e-5);
}

} // namespace
} // namespace bayes::ad
