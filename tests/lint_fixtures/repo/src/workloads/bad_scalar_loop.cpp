// R007 fixture: per-observation scalar density calls inside loops in
// src/workloads/ must be flagged unless waived as a reference path.

double normal_lpdf(double, double, double);
double poisson_log_lpmf(long, double);
double normal_lpdf_vec(const double*, double, double);
double bernoulli_logit_glm_lpmf(const int*, const double*, double);

double
braced_loop(const double* y, int n)
{
    double lp = 0.0;
    for (int i = 0; i < n; ++i) {
        lp += normal_lpdf(y[i], 0.0, 1.0); // EXPECT: R007
    }
    return lp;
}

double
braceless_loop(const long* counts, int n)
{
    double lp = 0.0;
    for (int i = 0; i < n; ++i)
        lp += poisson_log_lpmf(counts[i], 0.5); // EXPECT: R007
    return lp;
}

double
while_loop(const double* y, int n)
{
    double lp = 0.0;
    int i = 0;
    while (i < n) {
        lp += normal_lpdf(y[i], 0.0, 1.0); // EXPECT: R007
        ++i;
    }
    return lp;
}

double
fused_calls_are_fine(const double* y, const int* d, int n)
{
    // Fused kernels may appear anywhere, including loops.
    double lp = bernoulli_logit_glm_lpmf(d, y, 0.1);
    for (int rep = 0; rep < 2; ++rep)
        lp += normal_lpdf_vec(y, 0.0, 1.0);
    (void)n;
    return lp;
}

double
outside_a_loop_is_fine(double y)
{
    return normal_lpdf(y, 0.0, 1.0);
}

double
waived_reference_path(const double* y, int n)
{
    double lp = 0.0;
    for (int i = 0; i < n; ++i)
        // bayes-lint: allow(R007): reference scalar path kept for tests
        lp += normal_lpdf(y[i], 0.0, 1.0);
    return lp;
}
