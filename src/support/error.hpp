/**
 * @file
 * Error-handling primitives shared across the BayesSuite libraries.
 *
 * Two tiers, mirroring gem5's fatal()/panic() distinction:
 *  - BAYES_CHECK: user-facing precondition (bad configuration, invalid
 *    argument). Throws bayes::Error so callers can recover or report.
 *  - BAYES_ASSERT: internal invariant that should never fail regardless
 *    of user input. Aborts (kept in release builds because samplers
 *    silently producing garbage is worse than a crash).
 */
#pragma once

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>

namespace bayes {

/** Exception thrown for user-recoverable errors (bad config, bad data). */
class Error : public std::runtime_error
{
  public:
    explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

[[noreturn]] inline void
throwCheckFailure(const char* expr, const char* file, int line,
                  const std::string& msg)
{
    std::ostringstream os;
    os << "BAYES_CHECK failed: (" << expr << ") at " << file << ":" << line;
    if (!msg.empty())
        os << " -- " << msg;
    throw Error(os.str());
}

[[noreturn]] inline void
assertFailure(const char* expr, const char* file, int line)
{
    std::fprintf(stderr, "BAYES_ASSERT failed: (%s) at %s:%d\n",
                 expr, file, line);
    std::abort();
}

} // namespace detail
} // namespace bayes

/** Validate a user-facing precondition; throws bayes::Error on failure. */
#define BAYES_CHECK(expr, msg)                                               \
    do {                                                                     \
        if (!(expr)) {                                                       \
            ::std::ostringstream bayes_check_os_;                            \
            bayes_check_os_ << msg;                                          \
            ::bayes::detail::throwCheckFailure(#expr, __FILE__, __LINE__,    \
                                               bayes_check_os_.str());       \
        }                                                                    \
    } while (0)

/** Internal invariant; aborts on failure (active in all build types). */
#define BAYES_ASSERT(expr)                                                   \
    do {                                                                     \
        if (!(expr)) {                                                       \
            ::bayes::detail::assertFailure(#expr, __FILE__, __LINE__);       \
        }                                                                    \
    } while (0)
