#include "workloads/disease_progression.hpp"

#include <algorithm>
#include <cmath>
#include <span>

#include "math/distributions.hpp"
#include "math/vec_kernels.hpp"

namespace bayes::workloads {

DiseaseProgression::DiseaseProgression(double dataScale)
    : Workload(
          WorkloadInfo{
              "disease", "Logistic Regression",
              "Measuring the continually worsening progression of "
              "Alzheimer's disease",
              "Pourzanjani et al. 2018 [21]",
              "ADNI-style biomarker + diagnosis visits",
              /*defaultIterations=*/1500},
          dataScale)
{
    Rng rng = dataRng();
    numBasis_ = 5;
    const std::size_t patients = scaled(64);
    const std::size_t visits = 4;

    // Ground truth: monotone progression curve from positive weights.
    std::vector<double> wTrue(numBasis_);
    for (auto& w : wTrue)
        w = rng.gamma(2.0, 2.0);
    const double offsetTrue = 1.0;
    const double sigmaTrue = 0.25;
    const double diagScaleTrue = 2.2;
    const double diagShiftTrue = 2.0;

    for (std::size_t pIdx = 0; pIdx < patients; ++pIdx) {
        const double onset = rng.uniform(0.0, 0.5);
        for (std::size_t v = 0; v < visits; ++v) {
            const double t = std::min(
                1.0, onset + 0.5 * static_cast<double>(v) / visits
                    + rng.uniform(0.0, 0.05));
            double score = 0.0;
            for (std::size_t k = 0; k < numBasis_; ++k) {
                const double b = isplineBasis(k, numBasis_, t);
                basis_.push_back(b);
                score += wTrue[k] * b;
            }
            biomarker_.push_back(offsetTrue + score
                                 + rng.normal(0.0, sigmaTrue));
            const double etaDiag = diagScaleTrue * (score - diagShiftTrue);
            diagnosis_.push_back(rng.bernoulli(math::invLogit(etaDiag)));
        }
    }

    setModeledDataBytes((basis_.size() + biomarker_.size()) * sizeof(double)
                        + diagnosis_.size() * sizeof(int));

    setLayout({
        {"w", numBasis_, ppl::TransformKind::LowerBound, 0.0, 0},
        {"offset", 1, ppl::TransformKind::Identity, 0, 0},
        {"sigma", 1, ppl::TransformKind::LowerBound, 0.0, 0},
        {"diag_scale", 1, ppl::TransformKind::Identity, 0, 0},
        {"diag_shift", 1, ppl::TransformKind::Identity, 0, 0},
    });
}

double
DiseaseProgression::isplineBasis(std::size_t k, std::size_t nBasis,
                                 double t)
{
    // Smooth monotone ramp basis: each member saturates later in
    // standardized time, yielding an I-spline-like family on [0, 1].
    const double center =
        (static_cast<double>(k) + 0.5) / static_cast<double>(nBasis);
    const double width = 0.35 / static_cast<double>(nBasis);
    const double z = (t - center) / width;
    return math::invLogit(z);
}

template <typename T>
T
DiseaseProgression::priorLp(const ppl::ParamView<T>& p) const
{
    using namespace bayes::math;
    const T& offset = p.scalar(kOffset);
    const T& sigma = p.scalar(kSigma);
    const T& diagScale = p.scalar(kDiagScale);
    const T& diagShift = p.scalar(kDiagShift);

    // Prior terms shared verbatim by the single and batched fused paths.
    T lp = normal_lpdf(offset, 0.0, 2.0) + normal_lpdf(sigma, 0.0, 1.0)
        + normal_lpdf(diagScale, 0.0, 2.0)
        + normal_lpdf(diagShift, 0.0, 2.0);
    lp += exponential_lpdf_vec(p.block(kWeights), 0.25);
    return lp;
}

template <typename T>
T
DiseaseProgression::logDensity(const ppl::ParamView<T>& p) const
{
    using namespace bayes::math;
    const T& offset = p.scalar(kOffset);
    const T& sigma = p.scalar(kSigma);
    const T& diagScale = p.scalar(kDiagScale);
    const T& diagShift = p.scalar(kDiagShift);

    T lp = priorLp(p);

    const std::span<const double> basis(basis_);
    lp += normal_id_glm_lpdf(std::span<const double>(biomarker_), basis,
                             offset, p.block(kWeights), sigma);
    lp += bernoulli_logit_scaled_glm_lpmf(std::span<const int>(diagnosis_),
                                          basis, p.block(kWeights),
                                          diagScale, diagShift);
    return lp;
}

template <typename T>
T
DiseaseProgression::logDensityScalar(const ppl::ParamView<T>& p) const
{
    using namespace bayes::math;
    const T& offset = p.scalar(kOffset);
    const T& sigma = p.scalar(kSigma);
    const T& diagScale = p.scalar(kDiagScale);
    const T& diagShift = p.scalar(kDiagShift);

    T lp = normal_lpdf(offset, 0.0, 2.0) + normal_lpdf(sigma, 0.0, 1.0)
        + normal_lpdf(diagScale, 0.0, 2.0)
        + normal_lpdf(diagShift, 0.0, 2.0);
    for (std::size_t k = 0; k < numBasis_; ++k)
        // bayes-lint: allow(R007): reference scalar path; fused twin above
        lp += exponential_lpdf(p.at(kWeights, k), 0.25);

    for (std::size_t i = 0; i < biomarker_.size(); ++i) {
        const double* row = &basis_[i * numBasis_];
        T score = 0.0;
        for (std::size_t k = 0; k < numBasis_; ++k)
            score += p.at(kWeights, k) * row[k];
        // bayes-lint: allow(R007): reference scalar path; fused twin above
        lp += normal_lpdf(biomarker_[i], offset + score, sigma);
        // bayes-lint: allow(R007): reference scalar path; fused twin above
        lp += bernoulli_logit_lpmf(diagnosis_[i],
                                   diagScale * (score - diagShift));
    }
    return lp;
}

template <typename T>
void
DiseaseProgression::logDensityBatch(const ppl::BatchParamView<T>& p,
                                    std::span<T> lp) const
{
    using namespace bayes::math;
    const std::size_t lanes = p.lanes();
    // Per lane, the same prior terms in the same order as logDensity.
    for (std::size_t k = 0; k < lanes; ++k)
        lp[k] = priorLp(p.lane(k));
    // Two batched passes over the shared basis matrix — one per
    // likelihood layer, in the same order as logDensity.
    const std::span<const double> basis(basis_);
    const std::vector<T> ws = p.blockLanes(kWeights);
    const std::vector<T> offsets = p.scalarLanes(kOffset);
    const std::vector<T> sigmas = p.scalarLanes(kSigma);
    const std::vector<T> diagScales = p.scalarLanes(kDiagScale);
    const std::vector<T> diagShifts = p.scalarLanes(kDiagShift);
    std::vector<T> like(lanes);
    normal_id_glm_lpdf_batch(std::span<const double>(biomarker_), basis,
                             std::span<const T>(offsets),
                             std::span<const T>(ws), numBasis_,
                             std::span<const T>(sigmas), std::span<T>(like));
    for (std::size_t k = 0; k < lanes; ++k)
        lp[k] += like[k];
    bernoulli_logit_scaled_glm_lpmf_batch(
        std::span<const int>(diagnosis_), basis, std::span<const T>(ws),
        numBasis_, std::span<const T>(diagScales),
        std::span<const T>(diagShifts), std::span<T>(like));
    for (std::size_t k = 0; k < lanes; ++k)
        lp[k] += like[k];
}

void
DiseaseProgression::logProbBatch(const ppl::BatchParamView<double>& p,
                                 std::span<double> lp) const
{
    logDensityBatch(p, lp);
}

void
DiseaseProgression::logProbBatch(const ppl::BatchParamView<ad::Var>& p,
                                 std::span<ad::Var> lp) const
{
    logDensityBatch(p, lp);
}

double
DiseaseProgression::logProb(const ppl::ParamView<double>& p) const
{
    return logDensity(p);
}

ad::Var
DiseaseProgression::logProb(const ppl::ParamView<ad::Var>& p) const
{
    return logDensity(p);
}

double
DiseaseProgression::logProbScalar(const ppl::ParamView<double>& p) const
{
    return logDensityScalar(p);
}

ad::Var
DiseaseProgression::logProbScalar(const ppl::ParamView<ad::Var>& p) const
{
    return logDensityScalar(p);
}

std::vector<double>
DiseaseProgression::dataSufficientStats() const
{
    double sumBio = 0.0;
    double sumBioSq = 0.0;
    for (double b : biomarker_) {
        sumBio += b;
        sumBioSq += b * b;
    }
    double sumDiag = 0.0;
    for (int d : diagnosis_)
        sumDiag += d;
    double sumBasis = 0.0;
    double sumBasisSq = 0.0;
    for (double b : basis_) {
        sumBasis += b;
        sumBasisSq += b * b;
    }
    return {static_cast<double>(biomarker_.size()),
            static_cast<double>(numBasis_),
            sumBio,
            sumBioSq,
            sumDiag,
            sumBasis,
            sumBasisSq};
}

} // namespace bayes::workloads
