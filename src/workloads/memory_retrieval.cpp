#include "workloads/memory_retrieval.hpp"

#include <cmath>

#include "math/distributions.hpp"

namespace bayes::workloads {

MemoryRetrieval::MemoryRetrieval(double dataScale)
    : Workload(
          WorkloadInfo{
              "memory", "Hierarchical Bayesian",
              "Modeling memory retrieval in sentence comprehension",
              "Nicenboim & Vasishth 2016 [18]",
              "recall accuracy and latency under memory load",
              /*defaultIterations=*/1200},
          dataScale)
{
    Rng rng = dataRng();
    numSubjects_ = 20;
    const std::size_t trialsPer = scaled(18);

    const double alphaTrue = 1.2;
    const double betaLoadTrue = 0.45;
    const double sigmaUTrue = 0.6;
    const double muRtTrue = 6.4; // log milliseconds
    const double gammaLoadTrue = 0.12;
    const double deltaAccTrue = -0.15;
    const double sigmaVTrue = 0.25;
    const double sigmaRtTrue = 0.3;

    for (std::size_t s = 0; s < numSubjects_; ++s) {
        const double u = rng.normal(0.0, sigmaUTrue);
        const double v = rng.normal(0.0, sigmaVTrue);
        for (std::size_t t = 0; t < trialsPer; ++t) {
            const double load = static_cast<double>(rng.uniformInt(4)) + 1.0;
            const double etaAcc = alphaTrue + u - betaLoadTrue * (load - 2.5);
            const int acc = rng.bernoulli(math::invLogit(etaAcc));
            const double muLat = muRtTrue + v + gammaLoadTrue * (load - 2.5)
                + deltaAccTrue * acc;
            subject_.push_back(static_cast<int>(s));
            load_.push_back(load - 2.5);
            accuracy_.push_back(acc);
            rt_.push_back(std::exp(rng.normal(muLat, sigmaRtTrue)));
        }
    }

    setModeledDataBytes(subject_.size() * sizeof(int)
                        + accuracy_.size() * sizeof(int)
                        + (load_.size() + rt_.size()) * sizeof(double));

    setLayout({
        {"alpha", 1, ppl::TransformKind::Identity, 0, 0},
        {"beta_load", 1, ppl::TransformKind::Identity, 0, 0},
        {"sigma_u", 1, ppl::TransformKind::LowerBound, 0.0, 0},
        {"u", numSubjects_, ppl::TransformKind::Identity, 0, 0},
        {"mu_rt", 1, ppl::TransformKind::Identity, 0, 0},
        {"gamma_load", 1, ppl::TransformKind::Identity, 0, 0},
        {"delta_acc", 1, ppl::TransformKind::Identity, 0, 0},
        {"sigma_v", 1, ppl::TransformKind::LowerBound, 0.0, 0},
        {"v", numSubjects_, ppl::TransformKind::Identity, 0, 0},
        {"sigma_rt", 1, ppl::TransformKind::LowerBound, 0.0, 0},
    });
}

template <typename T>
T
MemoryRetrieval::logDensity(const ppl::ParamView<T>& p) const
{
    using namespace bayes::math;
    const T& alpha = p.scalar(kAlpha);
    const T& betaLoad = p.scalar(kBetaLoad);
    const T& sigmaU = p.scalar(kSigmaU);
    const T& muRt = p.scalar(kMuRt);
    const T& gammaLoad = p.scalar(kGammaLoad);
    const T& deltaAcc = p.scalar(kDeltaAcc);
    const T& sigmaV = p.scalar(kSigmaV);
    const T& sigmaRt = p.scalar(kSigmaRt);

    T lp = normal_lpdf(alpha, 0.0, 2.0) + normal_lpdf(betaLoad, 0.0, 1.0)
        + normal_lpdf(sigmaU, 0.0, 1.0) + normal_lpdf(muRt, 6.0, 1.0)
        + normal_lpdf(gammaLoad, 0.0, 0.5)
        + normal_lpdf(deltaAcc, 0.0, 0.5) + normal_lpdf(sigmaV, 0.0, 1.0)
        + normal_lpdf(sigmaRt, 0.0, 1.0);

    // Non-centered random effects: u = sigma_u * u_raw, v = sigma_v *
    // v_raw, with standard-normal raws — the parameterization the Stan
    // originals use to avoid funnel geometry.
    std::vector<T> u(numSubjects_), v(numSubjects_);
    for (std::size_t s = 0; s < numSubjects_; ++s) {
        // bayes-lint: allow(R007): loop also builds u/v; fusion is future work
        lp += std_normal_lpdf(p.at(kU, s));
        // bayes-lint: allow(R007): loop also builds u/v; fusion is future work
        lp += std_normal_lpdf(p.at(kV, s));
        u[s] = sigmaU * p.at(kU, s);
        v[s] = sigmaV * p.at(kV, s);
    }

    for (std::size_t i = 0; i < accuracy_.size(); ++i) {
        const auto s = static_cast<std::size_t>(subject_[i]);
        const T etaAcc = alpha + u[s] - betaLoad * load_[i];
        // bayes-lint: allow(R007): random-effect gather per row; fusion is future work
        lp += bernoulli_logit_lpmf(accuracy_[i], etaAcc);
        const T muLat = muRt + v[s] + gammaLoad * load_[i]
            + deltaAcc * static_cast<double>(accuracy_[i]);
        // bayes-lint: allow(R007): random-effect gather per row; fusion is future work
        lp += lognormal_lpdf(rt_[i], muLat, sigmaRt);
    }
    return lp;
}

double
MemoryRetrieval::logProb(const ppl::ParamView<double>& p) const
{
    return logDensity(p);
}

ad::Var
MemoryRetrieval::logProb(const ppl::ParamView<ad::Var>& p) const
{
    return logDensity(p);
}

} // namespace bayes::workloads
