/**
 * @file
 * Stream-prefetch detector tests.
 */
#include <gtest/gtest.h>

#include "archsim/stream.hpp"
#include "support/rng.hpp"

namespace bayes::archsim {
namespace {

TEST(Stream, AscendingSequenceIsDetectedAfterFirstTouch)
{
    StreamDetector det;
    EXPECT_FALSE(det.isStream(0x10000)); // new page
    EXPECT_TRUE(det.isStream(0x10040)); // +1 line
    EXPECT_TRUE(det.isStream(0x10080));
    EXPECT_TRUE(det.isStream(0x100c0));
}

TEST(Stream, DescendingSequenceIsDetected)
{
    StreamDetector det;
    det.isStream(0x20f00);
    EXPECT_TRUE(det.isStream(0x20ec0)); // -1 line
    EXPECT_TRUE(det.isStream(0x20e80));
}

TEST(Stream, RepeatedLineCountsAsStream)
{
    StreamDetector det;
    det.isStream(0x30000);
    EXPECT_TRUE(det.isStream(0x30000)); // delta 0
}

TEST(Stream, LargeJumpWithinPageIsNotStream)
{
    StreamDetector det;
    det.isStream(0x40000);
    EXPECT_FALSE(det.isStream(0x40000 + 10 * 64));
}

TEST(Stream, RandomAccessesAreMostlyNotStreams)
{
    StreamDetector det;
    Rng rng(5);
    int streams = 0;
    for (int i = 0; i < 1000; ++i)
        streams += det.isStream(rng.nextU64() & 0xffffffc0ull);
    EXPECT_LT(streams, 100);
}

TEST(Stream, InterleavedStreamsAreBothTracked)
{
    StreamDetector det;
    det.isStream(0x50000);
    det.isStream(0x90000);
    for (int i = 1; i < 10; ++i) {
        EXPECT_TRUE(det.isStream(0x50000 + i * 64ull));
        EXPECT_TRUE(det.isStream(0x90000 + i * 64ull));
    }
}

TEST(Stream, TableEvictionForgetsStaleStreams)
{
    StreamDetector det(4);
    det.isStream(0x100000);
    // Five newer pages evict the first entry.
    for (int p = 1; p <= 5; ++p)
        det.isStream(0x100000 + p * 0x1000ull);
    // Returning to the first page restarts the stream.
    EXPECT_FALSE(det.isStream(0x100040));
}

TEST(Stream, ResetForgetsEverything)
{
    StreamDetector det;
    det.isStream(0x60000);
    det.reset();
    EXPECT_FALSE(det.isStream(0x60040));
}

} // namespace
} // namespace bayes::archsim
