/**
 * @file
 * Batched evaluation surface tests: EvalBatch layout, the multi-output
 * tape sweep behind it, lane-for-lane equality between
 * Evaluator::logProb{,Grad}Batch and the K=1 singles they generalize
 * (all six fused workloads plus their scalar-likelihood twins, ragged
 * final batches included), the data-pass accounting the batching
 * exists to improve, and byte-identical pooled-batched sampler draws.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "ad/tape.hpp"
#include "determinism_harness.hpp"
#include "ppl/evaluator.hpp"
#include "samplers/runner.hpp"
#include "support/rng.hpp"
#include "workloads/suite.hpp"

namespace bayes {
namespace {

// The suite members with fused vectorized likelihoods (the rest take
// Model's default per-lane batch path, which the "votes"/"survival"
// rows below would cover identically).
const char* const kFusedWorkloads[] = {"ad",      "tickets", "12cities",
                                       "disease", "votes",   "survival"};

/** Draw @p k unconstrained points for @p eval from a fixed stream. */
std::vector<std::vector<double>>
randomPoints(const ppl::Evaluator& eval, std::size_t k, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::vector<double>> pts(k);
    for (auto& q : pts) {
        q.resize(eval.dim());
        for (auto& qi : q)
            qi = rng.normal(0.0, 0.3);
    }
    return pts;
}

/** |a-b| within 1e-15 relative to the larger magnitude (and 1e-15 abs). */
void
expectLaneEqual(double a, double b, const char* what, std::size_t lane)
{
    const double tol =
        1e-15 * std::max(1.0, std::max(std::fabs(a), std::fabs(b)));
    EXPECT_NEAR(a, b, tol) << what << " lane " << lane;
}

/**
 * Evaluate @p pts through width-@p width batches and through the K=1
 * singles surface on a twin evaluator; every lane's value and gradient
 * must match to 1e-15 relative.
 */
void
expectBatchMatchesSingles(const ppl::Model& model,
                          const std::vector<std::vector<double>>& pts,
                          std::size_t width, bool scalarLikelihood)
{
    ppl::Evaluator batched(model);
    ppl::Evaluator single(model);
    batched.setScalarLikelihood(scalarLikelihood);
    single.setScalarLikelihood(scalarLikelihood);

    const std::size_t dim = single.dim();
    std::vector<double> refGrad, laneGrad;
    for (std::size_t start = 0; start < pts.size(); start += width) {
        const std::size_t lanes = std::min(width, pts.size() - start);
        ppl::EvalBatch batch(dim, lanes);
        for (std::size_t k = 0; k < lanes; ++k)
            batch.setPoint(k, pts[start + k]);

        // Value path.
        std::vector<double> lp(lanes);
        batched.logProbBatch(batch, lp);
        for (std::size_t k = 0; k < lanes; ++k)
            expectLaneEqual(lp[k], single.logProb(pts[start + k]),
                            "logProb", start + k);

        // Gradient path.
        ppl::EvalBatch grads;
        batched.logProbGradBatch(batch, lp, grads);
        ASSERT_EQ(grads.dim(), dim);
        ASSERT_EQ(grads.lanes(), lanes);
        for (std::size_t k = 0; k < lanes; ++k) {
            const double ref =
                single.logProbGrad(pts[start + k], refGrad);
            expectLaneEqual(lp[k], ref, "logProbGrad", start + k);
            grads.getPoint(k, laneGrad);
            ASSERT_EQ(laneGrad.size(), refGrad.size());
            for (std::size_t d = 0; d < dim; ++d) {
                const double tol = 1e-15
                    * std::max(1.0, std::max(std::fabs(laneGrad[d]),
                                             std::fabs(refGrad[d])));
                EXPECT_NEAR(laneGrad[d], refGrad[d], tol)
                    << "grad coord " << d << " lane " << start + k;
            }
        }
    }
}

TEST(EvalBatch, LayoutRoundTrip)
{
    ppl::EvalBatch b(3, 2);
    EXPECT_EQ(b.dim(), 3u);
    EXPECT_EQ(b.lanes(), 2u);
    b.setPoint(0, std::vector<double>{1.0, 2.0, 3.0});
    b.setPoint(1, std::vector<double>{4.0, 5.0, 6.0});
    // Coordinate-major: lanes of one coordinate are adjacent.
    EXPECT_EQ(b.coord(1)[0], 2.0);
    EXPECT_EQ(b.coord(1)[1], 5.0);
    EXPECT_EQ(b.at(2, 1), 6.0);
    std::vector<double> q;
    b.getPoint(1, q);
    EXPECT_EQ(q, (std::vector<double>{4.0, 5.0, 6.0}));
    b.resize(2, 4);
    EXPECT_EQ(b.data().size(), 8u);
    EXPECT_EQ(b.at(1, 3), 0.0);
}

TEST(EvalBatch, TapeWideBatchMatchesPerLaneWides)
{
    // Two lanes of y = 2*a + 3*b via one pushWideBatch must carry the
    // same adjoints as two separate pushWide nodes.
    ad::Tape tape;
    const ad::NodeId a0 = tape.newLeaf(), b0 = tape.newLeaf();
    const ad::NodeId a1 = tape.newLeaf(), b1 = tape.newLeaf();
    const ad::NodeId parents[] = {a0, b0, a1, b1};
    const double weights[] = {2.0, 3.0, 2.0, 3.0};
    const ad::NodeId first = tape.pushWideBatch(parents, weights, 2);
    EXPECT_EQ(tape.wideLanes(first), 2u);

    std::vector<double> adj;
    const ad::NodeId outs[] = {first, static_cast<ad::NodeId>(first + 1)};
    tape.gradient(outs, adj);
    EXPECT_EQ(adj[a0], 2.0);
    EXPECT_EQ(adj[b0], 3.0);
    EXPECT_EQ(adj[a1], 2.0);
    EXPECT_EQ(adj[b1], 3.0);
}

TEST(EvalBatch, MultiOutputSweepMatchesSeparateSweeps)
{
    // Disjoint subgraphs: one sweep over both outputs must reproduce
    // what two single-output sweeps find (exactly — they add the same
    // products in the same order).
    ad::Tape tape;
    const ad::NodeId x = tape.newLeaf();
    const ad::NodeId y = tape.newLeaf();
    const ad::NodeId fxParents[] = {x, x};
    const double fxWeights[] = {1.5, 0.25};
    const ad::NodeId fx = tape.pushWide(fxParents, fxWeights);
    const ad::NodeId fyParents[] = {y};
    const double fyWeights[] = {-2.0};
    const ad::NodeId fy = tape.pushWide(fyParents, fyWeights);

    std::vector<double> both, sx, sy;
    const ad::NodeId outs[] = {fx, fy};
    tape.gradient(outs, both);
    tape.gradient(fx, sx);
    tape.gradient(fy, sy);
    EXPECT_EQ(both[x], sx[x]);
    EXPECT_EQ(both[y], sy[y]);
    EXPECT_EQ(both[x], 1.75);
    EXPECT_EQ(both[y], -2.0);
}

TEST(EvalBatch, FusedWorkloadsMatchSinglesAcrossWidths)
{
    for (const char* name : kFusedWorkloads) {
        SCOPED_TRACE(name);
        const auto wl = workloads::makeWorkload(name, 0.25);
        ppl::Evaluator probe(*wl);
        for (const std::size_t k : {1u, 2u, 4u, 8u}) {
            const auto pts = randomPoints(probe, k, 7000 + k);
            expectBatchMatchesSingles(*wl, pts, k,
                                      /*scalarLikelihood=*/false);
        }
    }
}

TEST(EvalBatch, ScalarTwinsMatchSingles)
{
    for (const char* name : kFusedWorkloads) {
        SCOPED_TRACE(name);
        const auto wl = workloads::makeWorkload(name, 0.25);
        ppl::Evaluator probe(*wl);
        const auto pts = randomPoints(probe, 4, 99);
        expectBatchMatchesSingles(*wl, pts, 4, /*scalarLikelihood=*/true);
    }
}

TEST(EvalBatch, RaggedFinalBatch)
{
    // 33 points through width-8 batches: four full blocks plus a
    // 1-lane remainder must agree with singles lane for lane.
    const auto wl = workloads::makeWorkload("ad", 0.25);
    ppl::Evaluator probe(*wl);
    const auto pts = randomPoints(probe, 33, 333);
    expectBatchMatchesSingles(*wl, pts, 8, /*scalarLikelihood=*/false);
}

TEST(EvalBatch, OneDataPassServesAllLanes)
{
    const auto wl = workloads::makeWorkload("ad", 0.25);
    ppl::Evaluator batched(*wl);
    ppl::Evaluator single(*wl);
    const auto pts = randomPoints(batched, 8, 42);

    ppl::EvalBatch batch(batched.dim(), 8);
    for (std::size_t k = 0; k < 8; ++k)
        batch.setPoint(k, pts[k]);
    std::vector<double> lp(8);
    ppl::EvalBatch grads;
    batched.logProbGradBatch(batch, lp, grads);
    EXPECT_EQ(batched.numDataPasses(), 1u);
    EXPECT_EQ(batched.numGradEvals(), 8u);

    std::vector<double> g;
    for (const auto& q : pts)
        single.logProbGrad(q, g);
    EXPECT_EQ(single.numDataPasses(), 8u);
    EXPECT_EQ(single.numGradEvals(), 8u);
}

TEST(EvalBatch, EmptyAndAllRejectedBatches)
{
    const auto wl = workloads::makeWorkload("ad", 0.25);
    ppl::Evaluator eval(*wl);

    ppl::EvalBatch empty(eval.dim(), 0);
    std::vector<double> lp;
    ppl::EvalBatch grads;
    eval.logProbBatch(empty, lp);
    eval.logProbGradBatch(empty, lp, grads);
    EXPECT_EQ(eval.numEvals(), 0u);
    EXPECT_EQ(eval.numGradEvals(), 0u);

    // Every lane infeasible: finite gradients (zero), -inf values.
    ppl::EvalBatch bad(eval.dim(), 2);
    std::vector<double> nan(eval.dim(),
                            std::numeric_limits<double>::quiet_NaN());
    bad.setPoint(0, nan);
    bad.setPoint(1, nan);
    std::vector<double> lp2(2);
    eval.logProbGradBatch(bad, lp2, grads);
    for (std::size_t k = 0; k < 2; ++k) {
        EXPECT_FALSE(std::isfinite(lp2[k])) << "lane " << k;
        for (std::size_t d = 0; d < eval.dim(); ++d)
            EXPECT_EQ(grads.at(d, k), 0.0);
    }
}

TEST(EvalBatch, ReserveHintSurvivesScalarToggle)
{
    // The per-lane reserve hint is learned per likelihood path; after
    // toggling, both paths must still evaluate correctly.
    const auto wl = workloads::makeWorkload("tickets", 0.25);
    ppl::Evaluator eval(*wl);
    const auto pts = randomPoints(eval, 2, 5);

    std::vector<double> g1, g2;
    const double fusedLp = eval.logProbGrad(pts[0], g1);
    eval.setScalarLikelihood(true);
    const double scalarLp = eval.logProbGrad(pts[0], g2);
    const double tol = 1e-9 * std::max(1.0, std::fabs(fusedLp));
    EXPECT_NEAR(fusedLp, scalarLp, tol);
    eval.setScalarLikelihood(false);
    EXPECT_NEAR(eval.logProbGrad(pts[0], g1), fusedLp, 1e-15);
}

TEST(EvalBatch, PooledBatchedDrawsMatchSequential)
{
    // The acceptance gate: pooled batched rounds replay the exact
    // per-chain RNG and evaluation schedule, so HMC and MH draws are
    // byte-identical to the sequential executor's, the pooled executor
    // with batching off, and every speculative-prefetch depth (cached
    // lanes commit the same bits a mandatory evaluation would have).
    const auto wl = workloads::makeWorkload("ad", 0.1);
    for (const auto algo : {samplers::Algorithm::Hmc,
                            samplers::Algorithm::Mh}) {
        SCOPED_TRACE(static_cast<int>(algo));
        samplers::Config cfg;
        cfg.algorithm = algo;
        cfg.chains = 3;
        cfg.iterations = 40;
        cfg.warmup = 20;
        cfg.hmcLeapfrogSteps = 8;
        cfg.seed = 777;
        harness::expectPolicyInvariantDraws(*wl, cfg, {0, 1, 2, 3});
    }
}

} // namespace
} // namespace bayes
