/**
 * @file
 * Scalar special functions used by the distribution library and by the
 * Var overloads in math/functions.hpp. Everything here operates on
 * plain doubles; differentiable versions wrap these with the analytic
 * derivative.
 */
#pragma once

#include <cmath>
#include <vector>

namespace bayes::math {

/** log(2*pi), the ubiquitous Gaussian normalizing constant. */
inline constexpr double kLogTwoPi = 1.8378770664093453;

/** log(pi). */
inline constexpr double kLogPi = 1.1447298858494002;

/** log(sqrt(2*pi)). */
inline constexpr double kLogSqrtTwoPi = 0.9189385332046727;

/** Digamma (psi) function: d/dx log Gamma(x). Accurate to ~1e-12. */
double digamma(double x);

/** Trigamma function: d^2/dx^2 log Gamma(x). */
double trigamma(double x);

/** log(1 + exp(x)) without overflow (a.k.a. softplus). */
inline double
log1pExp(double x)
{
    if (x > 0.0)
        return x + std::log1p(std::exp(-x));
    return std::log1p(std::exp(x));
}

/** Logistic sigmoid 1 / (1 + exp(-x)). */
inline double
invLogit(double x)
{
    if (x >= 0.0) {
        const double z = std::exp(-x);
        return 1.0 / (1.0 + z);
    }
    const double z = std::exp(x);
    return z / (1.0 + z);
}

/** Log-odds transform log(p / (1 - p)). @pre 0 < p < 1 */
inline double
logit(double p)
{
    return std::log(p) - std::log1p(-p);
}

/** log(exp(a) + exp(b)) without overflow. */
inline double
logSumExp(double a, double b)
{
    const double m = a > b ? a : b;
    if (m == -INFINITY)
        return -INFINITY;
    return m + std::log(std::exp(a - m) + std::exp(b - m));
}

/** log sum_i exp(xs[i]) without overflow. @pre xs nonempty */
double logSumExp(const std::vector<double>& xs);

/** log(exp(a) - exp(b)). @pre a >= b */
inline double
logDiffExp(double a, double b)
{
    if (a == b)
        return -INFINITY;
    return a + std::log1p(-std::exp(b - a));
}

/** Standard normal CDF. */
inline double
stdNormalCdf(double x)
{
    return 0.5 * std::erfc(-x * M_SQRT1_2);
}

/** Standard normal log-PDF. */
inline double
stdNormalLpdf(double x)
{
    return -0.5 * x * x - kLogSqrtTwoPi;
}

/** Inverse of the standard normal CDF (Acklam's algorithm, ~1e-9). */
double stdNormalQuantile(double p);

/**
 * Thread-safe log Gamma. glibc's lgamma writes the global `signgam`,
 * a data race once parallel chains evaluate densities concurrently;
 * the re-entrant lgamma_r keeps the sign in a local instead.
 *
 * Gamma has poles at 0, -1, -2, ...; |Gamma| -> inf there, so log|Gamma|
 * is +inf. We answer the poles directly instead of evaluating libm at
 * them, which keeps the result deterministic across libms and avoids
 * raising FE_DIVBYZERO mid-sample. NaN propagates.
 */
inline double
lgammaSafe(double x)
{
    if (x <= 0.0 && x == std::floor(x))
        return INFINITY; // pole (covers -0.0 as well)
#if defined(__GLIBC__)
    int sign = 0;
    return ::lgamma_r(x, &sign);
#else
    return std::lgamma(x);
#endif
}

/** log Beta(a, b) = lgamma(a) + lgamma(b) - lgamma(a + b). */
inline double
lbeta(double a, double b)
{
    return lgammaSafe(a) + lgammaSafe(b) - lgammaSafe(a + b);
}

/**
 * log of the binomial coefficient C(n, k).
 *
 * Outside the support (k < 0 or k > n) the coefficient is 0, so the log
 * is -inf — returned explicitly rather than left to pole arithmetic,
 * where lgamma(n - k + 1) at a nonpositive integer would otherwise
 * produce inf - inf = NaN. NaN arguments propagate.
 */
inline double
lchoose(double n, double k)
{
    if (std::isnan(n) || std::isnan(k))
        return NAN;
    if (k < 0.0 || k > n)
        return -INFINITY;
    return lgammaSafe(n + 1.0) - lgammaSafe(k + 1.0)
        - lgammaSafe(n - k + 1.0);
}

} // namespace bayes::math
