// Fixture: the one place R002 permits the raw lgamma family.
#pragma once
#include <cmath>

namespace fixture {
inline double lgammaSafe(double x)
{
    int sign = 0;
    return ::lgamma_r(x, &sign);  // allowed: this wrapper IS the rule's point
}
inline double alsoAllowed(double x) { return std::lgamma(x); }
}  // namespace fixture
