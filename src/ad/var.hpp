/**
 * @file
 * Differentiable scalar type (Var) and its core arithmetic operators.
 *
 * A Var is a (tape pointer, value, node id) triple. Constants carry no
 * node (id == kNoParent) and may have a null tape; mixing a constant
 * with a taped Var adopts the taped operand's tape. Statistical
 * functions (lgamma, erf, lpdfs, ...) live in the math library; this
 * header only provides the arithmetic core so the layering stays
 * ad <- math <- ppl.
 */
#pragma once

#include <cmath>

#include "ad/tape.hpp"

namespace bayes::ad {

/** A scalar tracked (or not) on an AD tape. */
class Var
{
  public:
    /** Constant zero, not on any tape. */
    Var() : tape_(nullptr), value_(0.0), id_(kNoParent) {}

    /** Implicit constant; participates in arithmetic without a tape. */
    Var(double value) : tape_(nullptr), value_(value), id_(kNoParent) {}

    /** Wrap an existing tape node. */
    Var(Tape* tape, double value, NodeId id)
        : tape_(tape), value_(value), id_(id)
    {
    }

    /** Numeric value of this expression. */
    double value() const { return value_; }

    /** Tape node id, or kNoParent for constants. */
    NodeId id() const { return id_; }

    /** Owning tape, or nullptr for constants. */
    Tape* tape() const { return tape_; }

    /** True when this Var is recorded on a tape (not a constant). */
    bool tracked() const { return id_ != kNoParent; }

    Var& operator+=(const Var& other);
    Var& operator-=(const Var& other);
    Var& operator*=(const Var& other);
    Var& operator/=(const Var& other);

  private:
    Tape* tape_;
    double value_;
    NodeId id_;
};

/** Create a differentiable leaf with the given value on @p tape. */
inline Var
leaf(Tape& tape, double value)
{
    return Var(&tape, value, tape.newLeaf());
}

namespace detail {

/** Tape shared by the operands (nullptr if both are constants). */
inline Tape*
commonTape(const Var& a, const Var& b)
{
    if (a.tracked() && b.tracked()) {
        BAYES_ASSERT(a.tape() == b.tape());
        return a.tape();
    }
    return a.tracked() ? a.tape() : (b.tracked() ? b.tape() : nullptr);
}

/** Push a binary result; collapses to a constant when untracked. */
inline Var
binaryResult(const Var& a, const Var& b, double value, double da, double db,
             OpClass cls)
{
    Tape* tape = commonTape(a, b);
    if (!tape)
        return Var(value);
    NodeId id;
    if (a.tracked() && b.tracked())
        id = tape->pushBinary(a.id(), da, b.id(), db, cls);
    else if (a.tracked())
        id = tape->pushUnary(a.id(), da, cls);
    else
        id = tape->pushUnary(b.id(), db, cls);
    return Var(tape, value, id);
}

/** Push a unary result; collapses to a constant when untracked. */
inline Var
unaryResult(const Var& a, double value, double da,
            OpClass cls)
{
    if (!a.tracked())
        return Var(value);
    return Var(a.tape(), value, a.tape()->pushUnary(a.id(), da, cls));
}

} // namespace detail

inline Var
operator+(const Var& a, const Var& b)
{
    return detail::binaryResult(a, b, a.value() + b.value(), 1.0, 1.0,
                                OpClass::AddSub);
}

inline Var
operator-(const Var& a, const Var& b)
{
    return detail::binaryResult(a, b, a.value() - b.value(), 1.0, -1.0,
                                OpClass::AddSub);
}

inline Var
operator*(const Var& a, const Var& b)
{
    return detail::binaryResult(a, b, a.value() * b.value(),
                                b.value(), a.value(), OpClass::Mul);
}

inline Var
operator/(const Var& a, const Var& b)
{
    const double inv = 1.0 / b.value();
    return detail::binaryResult(a, b, a.value() * inv, inv,
                                -a.value() * inv * inv, OpClass::Div);
}

inline Var
operator-(const Var& a)
{
    return detail::unaryResult(a, -a.value(), -1.0, OpClass::AddSub);
}

inline Var
operator+(const Var& a)
{
    return a;
}

inline Var&
Var::operator+=(const Var& other)
{
    *this = *this + other;
    return *this;
}

inline Var&
Var::operator-=(const Var& other)
{
    *this = *this - other;
    return *this;
}

inline Var&
Var::operator*=(const Var& other)
{
    *this = *this * other;
    return *this;
}

inline Var&
Var::operator/=(const Var& other)
{
    *this = *this / other;
    return *this;
}

inline bool operator<(const Var& a, const Var& b)
{
    return a.value() < b.value();
}
inline bool operator>(const Var& a, const Var& b)
{
    return a.value() > b.value();
}
inline bool operator<=(const Var& a, const Var& b)
{
    return a.value() <= b.value();
}
inline bool operator>=(const Var& a, const Var& b)
{
    return a.value() >= b.value();
}

inline Var
exp(const Var& a)
{
    const double v = std::exp(a.value());
    return detail::unaryResult(a, v, v, OpClass::Special);
}

inline Var
log(const Var& a)
{
    return detail::unaryResult(a, std::log(a.value()), 1.0 / a.value(),
                               OpClass::Special);
}

inline Var
log1p(const Var& a)
{
    return detail::unaryResult(a, std::log1p(a.value()),
                               1.0 / (1.0 + a.value()), OpClass::Special);
}

inline Var
sqrt(const Var& a)
{
    const double v = std::sqrt(a.value());
    return detail::unaryResult(a, v, 0.5 / v, OpClass::Div);
}

/** x*x with a single tape node. */
inline Var
square(const Var& a)
{
    return detail::unaryResult(a, a.value() * a.value(), 2.0 * a.value(),
                               OpClass::Mul);
}

inline Var
sin(const Var& a)
{
    return detail::unaryResult(a, std::sin(a.value()), std::cos(a.value()),
                               OpClass::Special);
}

inline Var
cos(const Var& a)
{
    return detail::unaryResult(a, std::cos(a.value()), -std::sin(a.value()),
                               OpClass::Special);
}

inline Var
tanh(const Var& a)
{
    const double v = std::tanh(a.value());
    return detail::unaryResult(a, v, 1.0 - v * v, OpClass::Special);
}

inline Var
atan(const Var& a)
{
    return detail::unaryResult(a, std::atan(a.value()),
                               1.0 / (1.0 + a.value() * a.value()),
                               OpClass::Special);
}

inline Var
fabs(const Var& a)
{
    // Subgradient 0 at the kink, matching Stan's convention.
    const double d = a.value() > 0 ? 1.0 : (a.value() < 0 ? -1.0 : 0.0);
    return detail::unaryResult(a, std::fabs(a.value()), d, OpClass::AddSub);
}

inline Var
pow(const Var& a, double p)
{
    const double v = std::pow(a.value(), p);
    return detail::unaryResult(a, v, p * std::pow(a.value(), p - 1.0),
                               OpClass::Special);
}

inline Var
pow(const Var& a, const Var& b)
{
    const double v = std::pow(a.value(), b.value());
    const double da = b.value() * std::pow(a.value(), b.value() - 1.0);
    const double db = a.value() > 0 ? v * std::log(a.value()) : 0.0;
    return detail::binaryResult(a, b, v, da, db, OpClass::Special);
}

/** Value-based max with subgradient routed to the winner. */
inline Var
fmax(const Var& a, const Var& b)
{
    return a.value() >= b.value() ? a : b;
}

/** Value-based min with subgradient routed to the winner. */
inline Var
fmin(const Var& a, const Var& b)
{
    return a.value() <= b.value() ? a : b;
}

/** Plain-double value extraction; overloads with Var::value for templates. */
inline double
value(const Var& a)
{
    return a.value();
}

inline double
value(double a)
{
    return a;
}

} // namespace bayes::ad
