#include "obs/registry.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <ostream>
#include <sstream>

namespace bayes::obs {
namespace {

/** Relaxed CAS-min on an atomic double. */
void
atomicMin(std::atomic<double>& a, double v) noexcept
{
    double cur = a.load(std::memory_order_relaxed);
    while (v < cur
           && !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
}

/** Relaxed CAS-max on an atomic double. */
void
atomicMax(std::atomic<double>& a, double v) noexcept
{
    double cur = a.load(std::memory_order_relaxed);
    while (v > cur
           && !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
}

void
jsonEscape(std::ostream& os, const std::string& s)
{
    for (char c : s) {
        switch (c) {
          case '"': os << "\\\""; break;
          case '\\': os << "\\\\"; break;
          case '\n': os << "\\n"; break;
          case '\t': os << "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                os << "\\u00" << "0123456789abcdef"[(c >> 4) & 0xf]
                   << "0123456789abcdef"[c & 0xf];
            else
                os << c;
        }
    }
}

/** JSON-safe double: finite values as-is, non-finite as null. */
void
jsonNumber(std::ostream& os, double v)
{
    if (std::isfinite(v))
        os << v;
    else
        os << "null";
}

} // namespace

std::size_t
threadSlot() noexcept
{
    static std::atomic<std::size_t> next{0};
    thread_local const std::size_t slot =
        next.fetch_add(1, std::memory_order_relaxed);
    return slot;
}

std::uint64_t
Counter::value() const noexcept
{
    std::uint64_t total = 0;
    for (const auto& shard : shards_)
        total += shard.value.load(std::memory_order_relaxed);
    return total;
}

void
Counter::reset() noexcept
{
    for (auto& shard : shards_)
        shard.value.store(0, std::memory_order_relaxed);
}

int
Histogram::bucketFor(double v) noexcept
{
    if (!(v > 0.0) || !std::isfinite(v))
        return 0; // underflow bin also absorbs NaN and negatives
    const double octave = std::log2(v);
    const int idx = static_cast<int>(
                        std::floor((octave - kMinExp) * kPerOctave))
        + 1;
    return std::clamp(idx, 0, kBuckets - 1);
}

double
Histogram::bucketUpper(int bucket) noexcept
{
    if (bucket <= 0)
        return std::exp2(static_cast<double>(kMinExp));
    if (bucket >= kBuckets - 1)
        return std::numeric_limits<double>::infinity();
    return std::exp2(static_cast<double>(bucket) / kPerOctave + kMinExp);
}

void
Histogram::observeImpl(double v) noexcept
{
    buckets_[static_cast<std::size_t>(bucketFor(v))].fetch_add(
        1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    atomicMin(min_, v);
    atomicMax(max_, v);
}

double
Histogram::quantile(double q) const noexcept
{
    const std::uint64_t n = count_.load(std::memory_order_relaxed);
    if (n == 0)
        return 0.0;
    const auto target = static_cast<std::uint64_t>(
        std::ceil(std::clamp(q, 0.0, 1.0) * static_cast<double>(n)));
    std::uint64_t seen = 0;
    for (int b = 0; b < kBuckets; ++b) {
        seen += buckets_[static_cast<std::size_t>(b)].load(
            std::memory_order_relaxed);
        if (seen >= target && seen > 0) {
            // Clamp the bucket estimate into the observed range so
            // degenerate histograms (all-equal values) stay exact.
            const double upper = bucketUpper(b);
            const double lo = min_.load(std::memory_order_relaxed);
            const double hi = max_.load(std::memory_order_relaxed);
            return std::clamp(upper, lo, hi);
        }
    }
    return max_.load(std::memory_order_relaxed);
}

HistogramStats
Histogram::stats() const noexcept
{
    HistogramStats out;
    out.count = count_.load(std::memory_order_relaxed);
    if (out.count == 0)
        return out;
    out.sum = sum_.load(std::memory_order_relaxed);
    out.min = min_.load(std::memory_order_relaxed);
    out.max = max_.load(std::memory_order_relaxed);
    out.p50 = quantile(0.50);
    out.p90 = quantile(0.90);
    out.p99 = quantile(0.99);
    return out;
}

void
Histogram::reset() noexcept
{
    for (auto& b : buckets_)
        b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0.0, std::memory_order_relaxed);
    min_.store(std::numeric_limits<double>::infinity(),
               std::memory_order_relaxed);
    max_.store(-std::numeric_limits<double>::infinity(),
               std::memory_order_relaxed);
}

std::uint64_t
Snapshot::counter(const std::string& name) const noexcept
{
    for (const auto& c : counters)
        if (c.name == name)
            return c.value;
    return 0;
}

double
Snapshot::gauge(const std::string& name) const noexcept
{
    for (const auto& g : gauges)
        if (g.name == name)
            return g.value;
    return 0.0;
}

const HistogramStats*
Snapshot::histogram(const std::string& name) const noexcept
{
    for (const auto& h : histograms)
        if (h.name == name)
            return &h.stats;
    return nullptr;
}

void
Snapshot::writeJson(std::ostream& os) const
{
    os << "{\n  \"counters\": {";
    for (std::size_t i = 0; i < counters.size(); ++i) {
        os << (i ? ",\n    \"" : "\n    \"");
        jsonEscape(os, counters[i].name);
        os << "\": " << counters[i].value;
    }
    os << (counters.empty() ? "}" : "\n  }") << ",\n  \"gauges\": {";
    for (std::size_t i = 0; i < gauges.size(); ++i) {
        os << (i ? ",\n    \"" : "\n    \"");
        jsonEscape(os, gauges[i].name);
        os << "\": ";
        jsonNumber(os, gauges[i].value);
    }
    os << (gauges.empty() ? "}" : "\n  }") << ",\n  \"histograms\": {";
    for (std::size_t i = 0; i < histograms.size(); ++i) {
        const auto& h = histograms[i];
        os << (i ? ",\n    \"" : "\n    \"");
        jsonEscape(os, h.name);
        os << "\": {\"count\": " << h.stats.count << ", \"sum\": ";
        jsonNumber(os, h.stats.sum);
        os << ", \"min\": ";
        jsonNumber(os, h.stats.min);
        os << ", \"max\": ";
        jsonNumber(os, h.stats.max);
        os << ", \"p50\": ";
        jsonNumber(os, h.stats.p50);
        os << ", \"p90\": ";
        jsonNumber(os, h.stats.p90);
        os << ", \"p99\": ";
        jsonNumber(os, h.stats.p99);
        os << "}";
    }
    os << (histograms.empty() ? "}" : "\n  }") << "\n}\n";
}

std::string
Snapshot::json() const
{
    std::ostringstream os;
    writeJson(os);
    return os.str();
}

Registry&
Registry::global() noexcept
{
    // Leaked on purpose: pool workers and other static-lifetime threads
    // may record metrics during their own teardown, after ordinary
    // static destructors have started running.
    static Registry* instance = new Registry;
    return *instance;
}

Counter&
Registry::counter(const std::string& name)
{
    support::MutexLock lock(mutex_);
    auto& slot = counters_[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

Gauge&
Registry::gauge(const std::string& name)
{
    support::MutexLock lock(mutex_);
    auto& slot = gauges_[name];
    if (!slot)
        slot = std::make_unique<Gauge>();
    return *slot;
}

Histogram&
Registry::histogram(const std::string& name)
{
    support::MutexLock lock(mutex_);
    auto& slot = histograms_[name];
    if (!slot)
        slot = std::make_unique<Histogram>();
    return *slot;
}

Snapshot
Registry::snapshot() const
{
    support::MutexLock lock(mutex_);
    Snapshot snap;
    snap.counters.reserve(counters_.size());
    for (const auto& [name, c] : counters_)
        snap.counters.push_back({name, c->value()});
    snap.gauges.reserve(gauges_.size());
    for (const auto& [name, g] : gauges_)
        snap.gauges.push_back({name, g->value()});
    snap.histograms.reserve(histograms_.size());
    for (const auto& [name, h] : histograms_)
        snap.histograms.push_back({name, h->stats()});
    return snap;
}

void
Registry::reset() noexcept
{
    support::MutexLock lock(mutex_);
    for (auto& [name, c] : counters_)
        c->reset();
    for (auto& [name, g] : gauges_)
        g->reset();
    for (auto& [name, h] : histograms_)
        h->reset();
}

} // namespace bayes::obs
