/**
 * @file
 * Shared plumbing for the figure/table benches: run a workload at its
 * Table-I user configuration (or a reduced iteration count for the
 * iteration-invariant memory metrics), capture its architecture
 * profile, and memoize everything within the process so multi-platform
 * benches sample each workload once.
 */
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "archsim/system.hpp"
#include "samplers/runner.hpp"
#include "workloads/workload.hpp"

namespace bayes::bench {

/** Everything a bench needs to know about one sampled workload. */
struct SuiteEntry
{
    std::unique_ptr<workloads::Workload> workload;
    samplers::RunResult run;
    archsim::WorkloadProfile profile;
    archsim::RunWork work;
};

/**
 * The user (Table-I) sampler configuration of a workload. Benches
 * default to pooled chain execution — results are draw-for-draw
 * identical to sequential, only the wall time changes.
 */
samplers::Config
userConfig(const workloads::Workload& workload,
           samplers::ExecutionPolicy execution =
               samplers::ExecutionPolicy::pool());

/**
 * Sample + profile one workload.
 * @param name        suite workload name
 * @param dataScale   dataset shrink factor
 * @param iterations  0 = the workload's own user setting; otherwise a
 *                    reduced count (valid when only iteration-invariant
 *                    metrics such as IPC/MPKI are consumed)
 * @param execution   chain execution policy for the sampling run
 */
SuiteEntry prepareWorkload(const std::string& name, double dataScale = 1.0,
                           int iterations = 0,
                           samplers::ExecutionPolicy execution =
                               samplers::ExecutionPolicy::pool());

/** prepareWorkload over the full Table-I suite, with progress logging. */
std::vector<SuiteEntry> prepareSuite(double dataScale = 1.0,
                                     int iterations = 0,
                                     samplers::ExecutionPolicy execution =
                                         samplers::ExecutionPolicy::pool());

/** Reduced iteration count used by iteration-invariant benches. */
inline constexpr int kShortIterations = 240;

/**
 * Emit the bench's machine-readable run report: the obs metrics
 * snapshot as JSON, written to `$BAYES_BENCH_METRICS_DIR/<name>.json`.
 * No-op unless the environment variable is set, so interactive bench
 * runs stay file-free. Call once at the end of main().
 */
void writeRunReport(const std::string& benchName);

} // namespace bayes::bench
