/**
 * @file
 * Constraining-transform tests: round trips, Jacobian corrections
 * against numerical derivatives, and the ordered block transform.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "ad/var.hpp"
#include "ppl/transforms.hpp"
#include "ppl/model.hpp"

namespace bayes::ppl {
namespace {

class ScalarTransformTest
    : public ::testing::TestWithParam<std::tuple<TransformKind, double,
                                                 double>>
{
};

TEST_P(ScalarTransformTest, RoundTripsThroughUnconstrain)
{
    const auto [kind, lb, ub] = GetParam();
    for (double u : {-3.0, -0.5, 0.0, 1.2, 4.0}) {
        const double x = constrainScalar(kind, u, lb, ub);
        EXPECT_NEAR(unconstrainScalar(kind, x, lb, ub), u, 1e-8);
    }
}

TEST_P(ScalarTransformTest, OutputRespectsSupport)
{
    const auto [kind, lb, ub] = GetParam();
    for (double u : {-10.0, 0.0, 10.0}) {
        const double x = constrainScalar(kind, u, lb, ub);
        switch (kind) {
          case TransformKind::LowerBound:
            EXPECT_GT(x, lb);
            break;
          case TransformKind::UpperBound:
            EXPECT_LT(x, ub);
            break;
          case TransformKind::Bounded:
            EXPECT_GT(x, lb);
            EXPECT_LT(x, ub);
            break;
          default:
            break;
        }
    }
}

TEST_P(ScalarTransformTest, JacobianMatchesNumericalDerivative)
{
    const auto [kind, lb, ub] = GetParam();
    for (double u : {-2.0, 0.3, 1.7}) {
        const double h = 1e-6;
        const double dxdu = (constrainScalar(kind, u + h, lb, ub)
                             - constrainScalar(kind, u - h, lb, ub))
            / (2 * h);
        const double logJ = logJacobianScalar(kind, u, lb, ub);
        EXPECT_NEAR(logJ, std::log(std::fabs(dxdu)), 1e-6);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, ScalarTransformTest,
    ::testing::Values(
        std::make_tuple(TransformKind::LowerBound, 2.0, 0.0),
        std::make_tuple(TransformKind::LowerBound, 0.0, 0.0),
        std::make_tuple(TransformKind::UpperBound, 0.0, 5.0),
        std::make_tuple(TransformKind::Bounded, -1.0, 3.0),
        std::make_tuple(TransformKind::Bounded, 0.001, 0.1)));

TEST(Transforms, IdentityIsNoOpWithZeroJacobian)
{
    EXPECT_DOUBLE_EQ(
        constrainScalar(TransformKind::Identity, 1.7, 0.0, 0.0), 1.7);
    EXPECT_DOUBLE_EQ(
        logJacobianScalar(TransformKind::Identity, 1.7, 0.0, 0.0), 0.0);
}

TEST(Transforms, OrderedProducesStrictlyIncreasing)
{
    const double u[4] = {0.5, -1.0, 0.0, 2.0};
    double x[4];
    const double logJ = constrainOrdered(u, x, 4);
    EXPECT_DOUBLE_EQ(x[0], 0.5);
    for (int i = 1; i < 4; ++i)
        EXPECT_GT(x[i], x[i - 1]);
    // Jacobian is sum of u[1:].
    EXPECT_NEAR(logJ, -1.0 + 0.0 + 2.0, 1e-12);
}

TEST(Transforms, OrderedWorksOnVars)
{
    ad::Tape tape;
    ad::Var u[3] = {ad::leaf(tape, 0.0), ad::leaf(tape, 1.0),
                    ad::leaf(tape, -0.5)};
    ad::Var x[3];
    const ad::Var logJ = constrainOrdered(u, x, 3);
    EXPECT_NEAR(x[2].value(), 0.0 + std::exp(1.0) + std::exp(-0.5), 1e-12);
    EXPECT_NEAR(logJ.value(), 0.5, 1e-12);
}

TEST(Transforms, UnconstrainValidatesDomain)
{
    EXPECT_THROW(
        unconstrainScalar(TransformKind::LowerBound, -1.0, 0.0, 0.0),
        Error);
    EXPECT_THROW(
        unconstrainScalar(TransformKind::Bounded, 5.0, 0.0, 1.0), Error);
    EXPECT_THROW(
        unconstrainScalar(TransformKind::Ordered, 0.0, 0.0, 0.0), Error);
}

TEST(Transforms, BoundedJacobianStableInTails)
{
    // Far tails must stay finite (log scale), never NaN.
    const double j =
        logJacobianScalar(TransformKind::Bounded, 40.0, 0.0, 1.0);
    EXPECT_TRUE(std::isfinite(j));
    EXPECT_LT(j, -30.0);
}

} // namespace
} // namespace bayes::ppl
