#include "workloads/pkpd_ode.hpp"

#include <cmath>

#include "math/distributions.hpp"
#include "math/ode.hpp"

namespace bayes::workloads {
namespace {

/** Friberg-Karlsson ground-truth parameters for data generation. */
constexpr double kMttTrue = 5.0;
constexpr double kCirc0True = 5.0;
constexpr double kGammaTrue = 0.17;
constexpr double kSlopeTrue = 0.012;
constexpr double kSigmaTrue = 0.08;

} // namespace

PkpdOde::PkpdOde(double dataScale)
    : Workload(
          WorkloadInfo{
              "ode", "Friberg-Karlsson Semi-Mechanistic",
              "Solving ordinary differential equations of non-linear "
              "systems",
              "Margossian & Gillespie 2016 [16]",
              "neutrophil counts after a chemotherapy dose",
              /*defaultIterations=*/2000},
          dataScale)
{
    Rng rng = dataRng();
    const std::size_t nObs = scaled(14);
    times_.resize(nObs);
    for (std::size_t i = 0; i < nObs; ++i)
        times_[i] = 1.5 * static_cast<double>(i + 1);

    // Physically sensible bounded supports keep the fixed-step RK4
    // integration stable (h * ktr < 1.4) everywhere the sampler can go.
    setLayout({
        {"mtt", 1, ppl::TransformKind::Bounded, 2.0, 12.0},
        {"circ0", 1, ppl::TransformKind::Bounded, 1.0, 20.0},
        {"gamma", 1, ppl::TransformKind::Bounded, 0.05, 0.6},
        {"slope", 1, ppl::TransformKind::Bounded, 0.0005, 0.08},
        {"sigma", 1, ppl::TransformKind::Bounded, 0.01, 1.0},
    });

    // Generate observations from the true trajectory + lognormal noise.
    const std::vector<double> circ =
        solveCirc<double>(kMttTrue, kCirc0True, kGammaTrue, kSlopeTrue);
    observed_.resize(nObs);
    for (std::size_t i = 0; i < nObs; ++i)
        observed_[i] = circ[i] * std::exp(rng.normal(0.0, kSigmaTrue));

    setModeledDataBytes((times_.size() + observed_.size()) * sizeof(double));
}

template <typename T>
std::vector<T>
PkpdOde::solveCirc(const T& mtt, const T& circ0, const T& gamma,
                   const T& slope) const
{
    using std::exp;
    using std::fmax;
    using std::pow;
    using ad::exp;
    using ad::fmax;
    using ad::pow;

    const T ktr = 4.0 / mtt;
    auto rhs = [&](double t, const std::vector<T>& y, std::vector<T>& dy) {
        const double conc = dose_ * std::exp(-ke_ * t);
        const T edrug = slope * conc;
        // Guard the feedback term against non-positive circ values that
        // a coarse trial step could produce.
        const T circ = fmax(y[3], T(1e-6));
        const T feedback = pow(circ0 / circ, gamma);
        dy[0] = ktr * y[0] * ((1.0 - edrug) * feedback - 1.0);
        dy[1] = ktr * (y[0] - y[1]);
        dy[2] = ktr * (y[1] - y[2]);
        dy[3] = ktr * (y[2] - y[3]);
    };

    std::vector<T> y0 = {circ0, circ0, circ0, circ0};
    const auto states = math::integrateRk4<T>(rhs, std::move(y0), 0.0,
                                              times_, /*stepsPerUnit=*/2.0);
    std::vector<T> circ;
    circ.reserve(states.size());
    for (const auto& s : states)
        circ.push_back(s[3]);
    return circ;
}

template <typename T>
T
PkpdOde::logDensity(const ppl::ParamView<T>& p) const
{
    using namespace bayes::math;
    const T& mtt = p.scalar(kMtt);
    const T& circ0 = p.scalar(kCirc0);
    const T& gamma = p.scalar(kGamma);
    const T& slope = p.scalar(kSlope);
    const T& sigma = p.scalar(kSigma);

    T lp = lognormal_lpdf(mtt, std::log(5.0), 0.4)
        + lognormal_lpdf(circ0, std::log(5.0), 0.4)
        + lognormal_lpdf(gamma, std::log(0.17), 0.4)
        + lognormal_lpdf(slope, std::log(0.01), 0.6)
        + lognormal_lpdf(sigma, std::log(0.1), 0.6);

    const std::vector<T> circ = solveCirc(mtt, circ0, gamma, slope);
    using std::fmax;
    using std::log;
    using ad::fmax;
    using ad::log;
    for (std::size_t i = 0; i < observed_.size(); ++i) {
        const T mu = fmax(circ[i], T(1e-8));
        // bayes-lint: allow(R007): ODE solve dominates; mu is per-row latent
        lp += lognormal_lpdf(observed_[i], log(mu), sigma);
    }
    return lp;
}

double
PkpdOde::logProb(const ppl::ParamView<double>& p) const
{
    return logDensity(p);
}

ad::Var
PkpdOde::logProb(const ppl::ParamView<ad::Var>& p) const
{
    return logDensity(p);
}

} // namespace bayes::workloads
