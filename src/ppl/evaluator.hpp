/**
 * @file
 * Bridges the sampler's unconstrained space to a Model: applies the
 * constraining transforms, accumulates log-Jacobians, and evaluates the
 * log density with or without gradients. Owns the AD tape, which it
 * reuses across evaluations (arena-style) exactly like Stan's autodiff
 * stack.
 *
 * For architecture tracing, the evaluator also owns a "data shadow"
 * buffer of modeledDataBytes() and, when a memory probe is attached to
 * the tape, streams sequential reads over it on every gradient
 * evaluation — modeling the likelihood's pass over the observed data.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "ad/tape.hpp"
#include "ppl/model.hpp"

namespace bayes::ppl {

/** Unconstrained-space evaluator of a model's log density. */
class Evaluator
{
  public:
    /** Bind to a model; the model must outlive the evaluator. */
    explicit Evaluator(const Model& model);

    /** Number of unconstrained dimensions. */
    std::size_t dim() const { return layout_->dim(); }

    /** Model being evaluated. */
    const Model& model() const { return *model_; }

    /**
     * Log density (including Jacobian) at unconstrained point @p q,
     * value-only path (no tape traffic).
     */
    double logProb(const std::vector<double>& q);

    /**
     * Log density and its gradient at unconstrained @p q.
     * @param grad  resized to dim()
     * @return the log density
     */
    double logProbGrad(const std::vector<double>& q,
                       std::vector<double>& grad);

    /** Map an unconstrained point to constrained parameter values. */
    std::vector<double> constrain(const std::vector<double>& q) const;

    /**
     * Route evaluations through the model's scalar-loop path
     * (Model::logProbScalar) instead of the fused-kernel path. Used by
     * tests and benchmarks to compare the two tapes; defaults to off.
     */
    void setScalarLikelihood(bool on) { scalarLikelihood_ = on; }

    /** True when evaluations use the scalar-loop path. */
    bool scalarLikelihood() const { return scalarLikelihood_; }

    /** AD tape (attach probes or inspect size here). */
    ad::Tape& tape() { return tape_; }

    /** Number of value-only evaluations performed. */
    std::uint64_t numEvals() const { return numEvals_; }

    /** Number of gradient evaluations performed. */
    std::uint64_t numGradEvals() const { return numGradEvals_; }

    /** Tape nodes used by the most recent gradient evaluation. */
    std::size_t lastTapeNodes() const { return lastTapeNodes_; }

    /** Wide-node edges used by the most recent gradient evaluation. */
    std::size_t lastTapeEdges() const { return lastTapeEdges_; }

    /** Tape bytes (nodes + edges + adjoints) of the last gradient eval. */
    std::size_t lastTapeBytes() const { return lastTapeBytes_; }

  private:
    void streamDataShadow();

    const Model* model_;
    const ParamLayout* layout_;
    ad::Tape tape_;
    std::vector<double> adjoints_;
    std::vector<std::uint8_t> dataShadow_;
    std::uint64_t numEvals_ = 0;
    std::uint64_t numGradEvals_ = 0;
    std::size_t lastTapeNodes_ = 0;
    std::size_t lastTapeEdges_ = 0;
    std::size_t lastTapeBytes_ = 0;
    bool scalarLikelihood_ = false;
};

} // namespace bayes::ppl
