#include "sched/scheduler.hpp"

#include <cmath>

#include "support/error.hpp"

namespace bayes::sched {

void
LlcMissPredictor::fit(const std::vector<MissObservation>& observations,
                      double fitFloor)
{
    std::vector<double> logBytes;
    std::vector<double> logMpki;
    for (const auto& obs : observations) {
        if (obs.llcMpki4Core < fitFloor)
            continue;
        BAYES_CHECK(obs.modeledDataBytes > 0, "data size must be positive");
        logBytes.push_back(std::log(obs.modeledDataBytes));
        logMpki.push_back(std::log(obs.llcMpki4Core));
    }
    BAYES_CHECK(logBytes.size() >= 2,
                "need at least two above-floor observations to fit "
                "(have " << logBytes.size() << ")");
    fit_ = fitLeastSquares(logBytes, logMpki);
    fitted_ = true;
}

double
LlcMissPredictor::predictMpki(double modeledDataBytes) const
{
    BAYES_CHECK(fitted_, "predictor not fitted");
    BAYES_CHECK(modeledDataBytes > 0, "data size must be positive");
    return std::exp(fit_.predict(std::log(modeledDataBytes)));
}

double
LlcMissPredictor::dataSizeThreshold(double mpkiThreshold) const
{
    BAYES_CHECK(fitted_, "predictor not fitted");
    BAYES_CHECK(mpkiThreshold > 0 && fit_.slope > 0,
                "threshold inversion needs positive slope and target");
    // Invert log(mpki) = a + b log(bytes) at the target MPKI.
    return std::exp((std::log(mpkiThreshold) - fit_.intercept)
                    / fit_.slope);
}

PlatformScheduler::PlatformScheduler(const archsim::Platform& highFreq,
                                     const archsim::Platform& bigLlc,
                                     double dataSizeThresholdBytes)
    : highFreq_(&highFreq), bigLlc_(&bigLlc),
      thresholdBytes_(dataSizeThresholdBytes)
{
    BAYES_CHECK(dataSizeThresholdBytes > 0, "threshold must be positive");
}

bool
PlatformScheduler::isLlcBound(const ppl::Model& model) const
{
    return static_cast<double>(model.modeledDataBytes()) >= thresholdBytes_;
}

Placement
PlatformScheduler::place(const ppl::Model& model) const
{
    const bool bound = isLlcBound(model);
    return Placement{model.name(), bound, bound ? bigLlc_ : highFreq_};
}

} // namespace bayes::sched
