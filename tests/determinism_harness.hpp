/**
 * @file
 * Shared determinism harness: byte-level run-equality checks and the
 * policy × batchEval × speculation-depth sweep used by the sampler,
 * batched-evaluation, elision and determinism suites.
 *
 * The executor's core guarantee — every ExecutionPolicy, with or
 * without batched evaluation and at every speculation depth, yields
 * draws byte-identical to the sequential unbatched schedule — used to
 * be asserted by three near-identical helpers in three test files.
 * This header is the single implementation: comparisons are *bitwise*
 * (memcmp on the double representations, so -0.0 vs 0.0 and NaN
 * payload differences are divergences), and a failure reports the
 * first diverging chain/draw/coordinate with both operands' bit
 * patterns, which is what you need to debug an RNG-replay or
 * reduction-order slip.
 */
#pragma once

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "samplers/runner.hpp"

namespace bayes::harness {

/** Hex bit pattern of a double (for first-divergence diagnostics). */
inline std::string
doubleBits(double v)
{
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof bits);
    std::ostringstream os;
    os << v << " (0x" << std::hex << bits << ")";
    return os.str();
}

/** True iff two doubles have the same byte representation. */
inline bool
sameBits(double a, double b)
{
    return std::memcmp(&a, &b, sizeof a) == 0;
}

namespace detail {

/** Bitwise-compare two draw sequences; empty string means identical. */
inline std::string
compareDraws(std::size_t c, const std::vector<std::vector<double>>& a,
             const std::vector<std::vector<double>>& b, std::size_t count)
{
    std::ostringstream os;
    for (std::size_t t = 0; t < count; ++t) {
        if (a[t].size() != b[t].size()) {
            os << "chain " << c << " draw " << t << ": dimension "
               << a[t].size() << " vs " << b[t].size();
            return os.str();
        }
        for (std::size_t d = 0; d < a[t].size(); ++d) {
            if (!sameBits(a[t][d], b[t][d])) {
                os << "first divergence at chain " << c << " draw " << t
                   << " coordinate " << d << ": " << doubleBits(a[t][d])
                   << " vs " << doubleBits(b[t][d]);
                return os.str();
            }
        }
    }
    return {};
}

} // namespace detail

/**
 * Assert two runs are byte-identical: same chain count, same draw
 * count, bitwise-equal draws and log densities, equal gradient-eval
 * totals. Use as EXPECT_TRUE(identicalRuns(a, b)).
 */
inline ::testing::AssertionResult
identicalRuns(const samplers::RunResult& a, const samplers::RunResult& b)
{
    if (a.chains.size() != b.chains.size())
        return ::testing::AssertionFailure()
            << "chain count " << a.chains.size() << " vs "
            << b.chains.size();
    for (std::size_t c = 0; c < a.chains.size(); ++c) {
        const auto& ca = a.chains[c];
        const auto& cb = b.chains[c];
        if (ca.draws.size() != cb.draws.size())
            return ::testing::AssertionFailure()
                << "chain " << c << ": " << ca.draws.size() << " vs "
                << cb.draws.size() << " draws";
        const auto diverged =
            detail::compareDraws(c, ca.draws, cb.draws, ca.draws.size());
        if (!diverged.empty())
            return ::testing::AssertionFailure() << diverged;
        for (std::size_t t = 0; t < ca.logProbs.size(); ++t)
            if (!sameBits(ca.logProbs[t], cb.logProbs[t]))
                return ::testing::AssertionFailure()
                    << "chain " << c << " logProb " << t << ": "
                    << doubleBits(ca.logProbs[t]) << " vs "
                    << doubleBits(cb.logProbs[t]);
        if (ca.totalGradEvals != cb.totalGradEvals)
            return ::testing::AssertionFailure()
                << "chain " << c << " totalGradEvals "
                << ca.totalGradEvals << " vs " << cb.totalGradEvals;
    }
    return ::testing::AssertionSuccess();
}

/**
 * Assert @p prefix is an exact (bitwise) prefix of @p full: every
 * chain's draws and log densities match @p full's leading entries.
 * This is the deadline contract — stopping early never changes any
 * delivered draw.
 */
inline ::testing::AssertionResult
identicalPrefix(const samplers::RunResult& prefix,
                const samplers::RunResult& full)
{
    if (prefix.chains.size() != full.chains.size())
        return ::testing::AssertionFailure()
            << "chain count " << prefix.chains.size() << " vs "
            << full.chains.size();
    for (std::size_t c = 0; c < prefix.chains.size(); ++c) {
        const auto& cp = prefix.chains[c];
        const auto& cf = full.chains[c];
        if (cp.draws.size() > cf.draws.size())
            return ::testing::AssertionFailure()
                << "chain " << c << ": prefix has " << cp.draws.size()
                << " draws, full run only " << cf.draws.size();
        const auto diverged =
            detail::compareDraws(c, cp.draws, cf.draws, cp.draws.size());
        if (!diverged.empty())
            return ::testing::AssertionFailure() << diverged;
        for (std::size_t t = 0; t < cp.logProbs.size(); ++t)
            if (!sameBits(cp.logProbs[t], cf.logProbs[t]))
                return ::testing::AssertionFailure()
                    << "chain " << c << " logProb " << t << ": "
                    << doubleBits(cp.logProbs[t]) << " vs "
                    << doubleBits(cf.logProbs[t]);
    }
    return ::testing::AssertionSuccess();
}

/** One cell of the execution-policy sweep. */
struct PolicyCase
{
    std::string label;
    samplers::ExecutionPolicy execution;
    bool batchEval = false;
    int speculationDepth = 0;
};

/**
 * The standard sweep: thread-per-chain, pool unbatched, and pool
 * batched at each requested speculation depth. The reference cell
 * (sequential, unbatched, depth 0) is *not* in the grid — callers run
 * it once and compare every grid cell against it.
 */
inline std::vector<PolicyCase>
policyGrid(const std::vector<int>& depths = {0})
{
    std::vector<PolicyCase> grid;
    grid.push_back(
        {"thread-per-chain", samplers::ExecutionPolicy::threadPerChain(),
         false, 0});
    grid.push_back(
        {"pool(2) unbatched", samplers::ExecutionPolicy::pool(2), false,
         0});
    for (const int depth : depths) {
        std::ostringstream label;
        label << "pool(2) batched depth " << depth;
        grid.push_back({label.str(), samplers::ExecutionPolicy::pool(2),
                        true, depth});
    }
    return grid;
}

/**
 * Run @p model under the sequential unbatched reference schedule, then
 * under every policyGrid(depths) cell, asserting byte-identical runs
 * throughout. @p cfg's execution/batchEval/speculationDepth fields are
 * overwritten per cell; everything else (algorithm, chains, seed, ...)
 * is the caller's workload definition.
 */
inline void
expectPolicyInvariantDraws(const ppl::Model& model, samplers::Config cfg,
                           const std::vector<int>& depths = {0},
                           const samplers::IterationMonitor& monitor =
                               nullptr)
{
    cfg.execution = samplers::ExecutionPolicy::sequential();
    cfg.batchEval = false;
    cfg.speculationDepth = 0;
    const auto reference = samplers::run(model, cfg, monitor);

    for (const auto& cell : policyGrid(depths)) {
        SCOPED_TRACE(cell.label);
        cfg.execution = cell.execution;
        cfg.batchEval = cell.batchEval;
        cfg.speculationDepth = cell.speculationDepth;
        EXPECT_TRUE(identicalRuns(samplers::run(model, cfg, monitor),
                                  reference));
    }
}

} // namespace bayes::harness
