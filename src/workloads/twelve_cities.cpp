#include "workloads/twelve_cities.hpp"

#include <array>
#include <cmath>
#include <span>

#include "math/distributions.hpp"
#include "math/vec_kernels.hpp"

namespace bayes::workloads {

TwelveCities::TwelveCities(double dataScale)
    : Workload(
          WorkloadInfo{
              "12cities", "Poisson Regression",
              "Does lowering speed limits save pedestrian lives?",
              "Auerbach et al. 2017 [13]",
              "FARS-style city/year pedestrian fatality panel",
              /*defaultIterations=*/2000},
          dataScale)
{
    Rng rng = dataRng();
    numCities_ = 12;
    const std::size_t years = scaled(16);

    // Ground-truth generative process.
    const double muAlphaTrue = 2.1;
    const double sigmaAlphaTrue = 0.35;
    const double trendTrue = -0.015;
    std::vector<double> alphaTrue(numCities_);
    std::vector<double> popExposure(numCities_);
    std::vector<std::size_t> loweredAt(numCities_);
    for (std::size_t c = 0; c < numCities_; ++c) {
        alphaTrue[c] = rng.normal(muAlphaTrue, sigmaAlphaTrue);
        popExposure[c] = rng.uniform(0.4, 4.0); // millions of residents
        // A third of the cities never lower the limit.
        loweredAt[c] = rng.uniform() < 0.33
            ? years + 1
            : static_cast<std::size_t>(rng.uniformInt(years / 2)) + years / 4;
    }

    for (std::size_t c = 0; c < numCities_; ++c) {
        for (std::size_t y = 0; y < years; ++y) {
            const double yearC =
                (static_cast<double>(y) - static_cast<double>(years) / 2.0);
            const double lowered = y >= loweredAt[c] ? 1.0 : 0.0;
            const double logMu = alphaTrue[c] + kTrueLimitEffect * lowered
                + trendTrue * yearC + std::log(popExposure[c]);
            deaths_.push_back(rng.poisson(std::exp(logMu)));
            city_.push_back(static_cast<int>(c));
            limitLowered_.push_back(lowered);
            yearCentered_.push_back(yearC);
            logExposure_.push_back(std::log(popExposure[c]));
        }
    }

    // Row-major design matrix for the fused GLM kernel: the same two
    // covariates the scalar path reads column-wise.
    design_.reserve(deaths_.size() * 2);
    for (std::size_t i = 0; i < deaths_.size(); ++i) {
        design_.push_back(limitLowered_[i]);
        design_.push_back(yearCentered_[i]);
    }

    setModeledDataBytes(deaths_.size() * sizeof(long)
                        + city_.size() * sizeof(int)
                        + (limitLowered_.size() + yearCentered_.size()
                           + logExposure_.size())
                            * sizeof(double));

    setLayout({
        {"mu_alpha", 1, ppl::TransformKind::Identity, 0, 0},
        {"sigma_alpha", 1, ppl::TransformKind::LowerBound, 0.0, 0},
        {"alpha", numCities_, ppl::TransformKind::Identity, 0, 0},
        {"beta_limit", 1, ppl::TransformKind::Identity, 0, 0},
        {"beta_trend", 1, ppl::TransformKind::Identity, 0, 0},
    });
}

/** Prior terms shared verbatim by the single and batched fused paths. */
template <typename T>
T
TwelveCities::priorLp(const ppl::ParamView<T>& p) const
{
    using namespace bayes::math;
    const T& muAlpha = p.scalar(kMuAlpha);
    const T& sigmaAlpha = p.scalar(kSigmaAlpha);

    T lp = normal_lpdf(muAlpha, 0.0, 5.0)
        + normal_lpdf(p.scalar(kSigmaAlpha), 0.0, 2.0) // half-normal
        + normal_lpdf(p.scalar(kBetaLimit), 0.0, 1.0)
        + normal_lpdf(p.scalar(kBetaTrend), 0.0, 1.0);

    lp += normal_lpdf_vec(p.block(kAlpha), muAlpha, sigmaAlpha);
    return lp;
}

template <typename T>
T
TwelveCities::logDensity(const ppl::ParamView<T>& p) const
{
    using namespace bayes::math;
    T lp = priorLp(p);

    const std::array<T, 2> coef{p.scalar(kBetaLimit),
                                p.scalar(kBetaTrend)};
    lp += poisson_log_glm_lpmf(std::span<const long>(deaths_),
                               std::span<const double>(design_),
                               std::span<const int>(city_),
                               std::span<const double>(logExposure_),
                               p.block(kAlpha),
                               std::span<const T>(coef));
    return lp;
}

template <typename T>
T
TwelveCities::logDensityScalar(const ppl::ParamView<T>& p) const
{
    using namespace bayes::math;
    const T& muAlpha = p.scalar(kMuAlpha);
    const T& sigmaAlpha = p.scalar(kSigmaAlpha);
    const T& betaLimit = p.scalar(kBetaLimit);
    const T& betaTrend = p.scalar(kBetaTrend);

    T lp = normal_lpdf(muAlpha, 0.0, 5.0)
        + normal_lpdf(sigmaAlpha, 0.0, 2.0) // half-normal via LowerBound
        + normal_lpdf(betaLimit, 0.0, 1.0)
        + normal_lpdf(betaTrend, 0.0, 1.0);

    for (std::size_t c = 0; c < numCities_; ++c)
        // bayes-lint: allow(R007): reference scalar path; fused twin above
        lp += normal_lpdf(p.at(kAlpha, c), muAlpha, sigmaAlpha);

    for (std::size_t i = 0; i < deaths_.size(); ++i) {
        const T eta = p.at(kAlpha, static_cast<std::size_t>(city_[i]))
            + betaLimit * limitLowered_[i] + betaTrend * yearCentered_[i]
            + logExposure_[i];
        // bayes-lint: allow(R007): reference scalar path; fused twin above
        lp += poisson_log_lpmf(deaths_[i], eta);
    }
    return lp;
}

template <typename T>
void
TwelveCities::logDensityBatch(const ppl::BatchParamView<T>& p,
                              std::span<T> lp) const
{
    using namespace bayes::math;
    const std::size_t lanes = p.lanes();
    // Per lane, the same prior terms in the same order as logDensity.
    for (std::size_t k = 0; k < lanes; ++k)
        lp[k] = priorLp(p.lane(k));
    // One pass over the panel for all K lanes.
    const std::vector<T> alphas = p.blockLanes(kAlpha);
    std::vector<T> coef(lanes * 2);
    for (std::size_t k = 0; k < lanes; ++k) {
        coef[k * 2] = p.scalar(kBetaLimit, k);
        coef[k * 2 + 1] = p.scalar(kBetaTrend, k);
    }
    std::vector<T> like(lanes);
    poisson_log_glm_lpmf_batch(std::span<const long>(deaths_),
                               std::span<const double>(design_),
                               std::span<const int>(city_),
                               std::span<const double>(logExposure_),
                               std::span<const T>(alphas), numCities_,
                               std::span<const T>(coef), 2,
                               std::span<T>(like));
    for (std::size_t k = 0; k < lanes; ++k)
        lp[k] += like[k];
}

void
TwelveCities::logProbBatch(const ppl::BatchParamView<double>& p,
                           std::span<double> lp) const
{
    logDensityBatch(p, lp);
}

void
TwelveCities::logProbBatch(const ppl::BatchParamView<ad::Var>& p,
                           std::span<ad::Var> lp) const
{
    logDensityBatch(p, lp);
}

double
TwelveCities::logProb(const ppl::ParamView<double>& p) const
{
    return logDensity(p);
}

ad::Var
TwelveCities::logProb(const ppl::ParamView<ad::Var>& p) const
{
    return logDensity(p);
}

double
TwelveCities::logProbScalar(const ppl::ParamView<double>& p) const
{
    return logDensityScalar(p);
}

ad::Var
TwelveCities::logProbScalar(const ppl::ParamView<ad::Var>& p) const
{
    return logDensityScalar(p);
}

std::vector<double>
TwelveCities::dataSufficientStats() const
{
    // Poisson panel regression: counts, count moments, covariate sums,
    // exposure total, and the city index checksum pin down the panel.
    double sumDeaths = 0.0;
    double sumDeathsSq = 0.0;
    for (long d : deaths_) {
        const double dd = static_cast<double>(d);
        sumDeaths += dd;
        sumDeathsSq += dd * dd;
    }
    double sumLowered = 0.0;
    double sumYearSq = 0.0;
    double sumExposure = 0.0;
    double cityChecksum = 0.0;
    for (std::size_t i = 0; i < deaths_.size(); ++i) {
        sumLowered += limitLowered_[i];
        sumYearSq += yearCentered_[i] * yearCentered_[i];
        sumExposure += logExposure_[i];
        cityChecksum += static_cast<double>(city_[i]) *
                        static_cast<double>(i + 1);
    }
    return {static_cast<double>(deaths_.size()),
            static_cast<double>(numCities_),
            sumDeaths,
            sumDeathsSq,
            sumLowered,
            sumYearSq,
            sumExposure,
            cityChecksum};
}

} // namespace bayes::workloads
