#include "archsim/platform.hpp"

namespace bayes::archsim {
namespace {

/**
 * Scale a capacity and snap it to ways * 64B * 2^k so the set count
 * stays a power of two.
 */
std::uint64_t
scaleCapacity(std::uint64_t bytes, std::uint32_t ways)
{
    const auto scaled =
        static_cast<std::uint64_t>(static_cast<double>(bytes)
                                   * kCapacityScale);
    const std::uint64_t setBytes = static_cast<std::uint64_t>(ways) * 64;
    std::uint64_t sets = 1;
    while (sets * 2 * setBytes <= scaled)
        sets *= 2;
    return sets * setBytes;
}

} // namespace

Platform
Platform::skylake()
{
    Platform p;
    p.name = "Skylake";
    p.processor = "i7-6700K";
    p.microarch = "Skylake";
    p.techNm = 14;
    p.turboGhz = 4.2;
    p.cores = 4;
    p.llcMb = 8.0;
    p.memBandwidthGBps = 34.1;
    p.tdpW = 91.0;
    p.l1i = {scaleCapacity(32ull * 1024, 4), 64, 4};
    p.l1d = {scaleCapacity(32ull * 1024, 4), 64, 4};
    p.l2 = {scaleCapacity(256ull * 1024, 4), 64, 4};
    p.llc = {scaleCapacity(8ull * 1024 * 1024, 16), 64, 16};
    p.memLatencyNs = 70.0;
    p.idlePowerW = 18.0;
    p.corePowerW = 16.5; // ~= (TDP - idle) / cores at full load
    return p;
}

Platform
Platform::broadwell()
{
    Platform p;
    p.name = "Broadwell";
    p.processor = "E5-2697A v4";
    p.microarch = "Broadwell"; // Table II lists the Haswell-derived core
    p.techNm = 14;
    p.turboGhz = 3.6;
    p.cores = 16;
    p.llcMb = 40.0;
    p.memBandwidthGBps = 78.8;
    p.tdpW = 145.0;
    p.l1i = {scaleCapacity(32ull * 1024, 4), 64, 4};
    p.l1d = {scaleCapacity(32ull * 1024, 4), 64, 4};
    p.l2 = {scaleCapacity(256ull * 1024, 4), 64, 4};
    p.llc = {scaleCapacity(40ull * 1024 * 1024, 20), 64, 20};
    p.memLatencyNs = 80.0; // server uncore adds latency
    p.idlePowerW = 42.0;
    p.corePowerW = 6.4; // ~= (TDP - idle) / 16 at full load
    return p;
}

} // namespace bayes::archsim
