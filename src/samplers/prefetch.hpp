/**
 * @file
 * Speculative MCMC support: parallel predictive prefetching for the
 * pooled batched executor (Angelino et al., "Accelerating MCMC via
 * Parallel Predictive Prefetching").
 *
 * MCMC is serially dependent — iteration t+1's proposal depends on
 * whether iteration t accepted — but with a deterministic RNG the
 * *candidate* future points are computable ahead of time: a replica of
 * the chain's stream (Rng::replicaFork) pre-generates the proposal
 * increments, and the accept/reject tree enumerates every state those
 * increments can apply to. The executor packs those candidate points
 * as extra lanes of the round's EvalBatch (one shared-data pass serves
 * them all) and records the results here.
 *
 * Correctness does not rest on predicting the accept/reject outcomes:
 * commitment is keyed on the *bit pattern* of the realized point. When
 * the chain's next pending point byte-matches a cached entry, the
 * cached (value, gradient) is committed through the exact same apply
 * path a fresh evaluation would take — and batched lanes are bit-equal
 * to single evaluations regardless of batch width (see
 * test_eval_batch), so draws are byte-identical to sequential
 * unbatched execution by construction. A mispredicted branch (or a
 * mispredicted feasibility short-circuit in the RNG replay) simply
 * never matches and is discarded as waste.
 *
 * Accounting invariant: every issued entry is eventually either
 * committed (`spec.hits`) or discarded (`spec.wasted`), so
 * `spec.hits + spec.wasted == spec.issued` at the end of any run
 * (tested in test_obs; catalogued in docs/observability.md).
 */
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "support/rng.hpp"

namespace bayes::samplers::prefetch {

/** One speculatively evaluated point and its cached results. */
struct CachedEval
{
    /** The candidate unconstrained point (the bit-exact cache key). */
    std::vector<double> point;
    /** Log density delivered by the batched evaluation. */
    double logProb = 0.0;
    /** Gradient at point (filled for HMC lanes, empty for MH). */
    std::vector<double> grad;
    /** Committed to a chain (hit)? Unconsumed entries count as waste. */
    bool consumed = false;
};

/** Byte-level point equality — the speculation commit test. Bitwise
    comparison is deliberately stricter than operator== (it separates
    -0.0 from 0.0 and never equates NaNs): a point that is not the
    bit-for-bit result of the chain's own arithmetic must miss. */
bool bitsEqual(std::span<const double> a, std::span<const double> b);

/**
 * Per-chain speculation ledger: candidate points issued into a batched
 * round, awaiting commit (the chain realizes the point) or abort (the
 * chain went elsewhere / the run ended). Owned by the batched phased
 * executor; maintains the spec.issued/hits/wasted counters.
 */
class Ledger
{
  public:
    /** Record a candidate point; returns its stable entry index. */
    std::size_t issue(std::vector<double> point);

    /**
     * Look up @p point among unconsumed entries. On a byte-exact match
     * the entry is marked consumed (a hit) and returned; otherwise
     * nullptr — the caller evaluates the point normally and replans.
     */
    const CachedEval* commit(std::span<const double> point);

    /** Entry access for the executor's result scatter. */
    CachedEval& entry(std::size_t index) { return entries_[index]; }

    /** Discard all entries; unconsumed ones are counted as wasted. */
    void abort();

    bool empty() const { return entries_.empty(); }
    std::size_t size() const { return entries_.size(); }

  private:
    std::vector<CachedEval> entries_;
};

/** One speculative lane of a batched round: where to deliver results. */
struct SpecLane
{
    Ledger* ledger = nullptr;
    std::size_t entry = 0;
};

/**
 * Pre-generate the depth-@p depth Metropolis accept/reject tree below
 * the pending proposal of a chain at state @p q.
 *
 * @p replica must be a replicaFork() of the chain's RNG taken *after*
 * the pending proposal's increments were drawn; the planner replays
 * the chain's future consumption (accept uniform, then dim proposal
 * normals, per level) on it. All 2^(j-1) tree nodes of level j share
 * the level's increment vector — they differ only in the state it is
 * added to — so the full tree collapses to a doubling state set and
 * issues 2^(depth+1) - 2 candidate points into @p ledger (appended to
 * @p lanes for the evaluation scatter).
 *
 * Feasibility short-circuits are predicted optimistically: the replay
 * assumes every speculated density is finite (the accept uniform is
 * consumed). If the chain hits an infeasible point, the replayed
 * stream diverges, subsequent lookups miss, and the tree is replanned
 * from the real stream — waste, never wrong draws.
 */
void planMhTree(const std::vector<double>& q,
                const std::vector<double>& pending, double scale,
                Rng replica, int depth, Ledger& ledger,
                std::vector<SpecLane>& lanes);

} // namespace bayes::samplers::prefetch
