/**
 * @file
 * Fixed-step fourth-order Runge-Kutta integrator, templated over the
 * scalar type so gradients of ODE solutions with respect to parameters
 * flow through the tape (discretize-then-differentiate). Serves the
 * `ode` (Friberg-Karlsson PK/PD) workload.
 */
#pragma once

#include <functional>
#include <vector>

#include "math/functions.hpp"
#include "support/error.hpp"

namespace bayes::math {

/**
 * Integrate dy/dt = f(t, y) from t0 with fixed steps.
 *
 * @tparam T       scalar (double or ad::Var)
 * @param f        right-hand side: f(t, y, dydt)
 * @param y0       initial state at t0
 * @param t0       initial time
 * @param ts       strictly increasing output times, all > t0
 * @param stepsPerUnit  RK4 steps per unit of time (resolution knob)
 * @return one state vector per output time
 */
template <typename T>
std::vector<std::vector<T>>
integrateRk4(
    const std::function<void(double, const std::vector<T>&,
                             std::vector<T>&)>& f,
    std::vector<T> y0, double t0, const std::vector<double>& ts,
    double stepsPerUnit = 20.0)
{
    BAYES_CHECK(!ts.empty(), "integrateRk4 requires output times");
    BAYES_CHECK(stepsPerUnit > 0, "stepsPerUnit must be positive");
    const std::size_t n = y0.size();
    std::vector<std::vector<T>> out;
    out.reserve(ts.size());

    std::vector<T> k1(n), k2(n), k3(n), k4(n), tmp(n);
    std::vector<T> y = std::move(y0);
    double t = t0;
    for (double target : ts) {
        BAYES_CHECK(target > t - 1e-12, "output times must be increasing");
        const double span = target - t;
        const int steps =
            std::max(1, static_cast<int>(std::ceil(span * stepsPerUnit)));
        const double h = span / steps;
        for (int s = 0; s < steps; ++s) {
            f(t, y, k1);
            for (std::size_t i = 0; i < n; ++i)
                tmp[i] = y[i] + T(0.5 * h) * k1[i];
            f(t + 0.5 * h, tmp, k2);
            for (std::size_t i = 0; i < n; ++i)
                tmp[i] = y[i] + T(0.5 * h) * k2[i];
            f(t + 0.5 * h, tmp, k3);
            for (std::size_t i = 0; i < n; ++i)
                tmp[i] = y[i] + T(h) * k3[i];
            f(t + h, tmp, k4);
            for (std::size_t i = 0; i < n; ++i) {
                y[i] = y[i]
                    + T(h / 6.0)
                        * (k1[i] + T(2.0) * k2[i] + T(2.0) * k3[i] + k4[i]);
            }
            t += h;
        }
        t = target;
        out.push_back(y);
    }
    return out;
}

} // namespace bayes::math
