/**
 * @file
 * Executor micro-bench — wall-clock time of `runWithElision` under the
 * three execution policies on `12cities` and `votes` (4 chains). The
 * phased barrier executor must produce the identical stop draw under
 * every policy; the interesting number is the wall-time ratio, which
 * approaches the chain count on a machine with that many idle cores.
 */
#include "common.hpp"
#include "elide/elision.hpp"
#include "support/table.hpp"
#include "support/thread_pool.hpp"
#include "support/timer.hpp"

#include <cstdio>
#include <thread>

using namespace bayes;

namespace {

struct Measurement
{
    double seconds;
    elide::ElisionResult result;
};

Measurement
timedElision(const workloads::Workload& wl, samplers::Config cfg,
             samplers::ExecutionPolicy policy)
{
    cfg.execution = policy;
    Timer timer;
    Measurement m{0.0, elide::runWithElision(wl, cfg)};
    m.seconds = timer.seconds();
    return m;
}

} // namespace

int
main()
{
    std::printf("hardware concurrency: %u\n",
                std::thread::hardware_concurrency());

    Table table({"workload", "policy", "wall(s)", "speedup", "stop draw",
                 "converged"});
    for (const std::string name : {"12cities", "votes"}) {
        const auto wl = workloads::makeWorkload(name);
        auto cfg = bench::userConfig(
            *wl, samplers::ExecutionPolicy::sequential());
        cfg.chains = 4;
        std::fprintf(stderr, "[bench] %s: elided runs x3 policies...\n",
                     name.c_str());

        const auto seq = timedElision(
            *wl, cfg, samplers::ExecutionPolicy::sequential());
        const auto tpc = timedElision(
            *wl, cfg, samplers::ExecutionPolicy::threadPerChain());
        const auto pool =
            timedElision(*wl, cfg, samplers::ExecutionPolicy::pool());

        auto emit = [&](const char* policy, const Measurement& m) {
            table.row()
                .cell(name)
                .cell(policy)
                .cell(m.seconds, 2)
                .cell(seq.seconds / m.seconds, 2)
                .cell(static_cast<long>(m.result.stoppedAtDraw))
                .cell(m.result.converged ? "yes" : "no");
        };
        emit("sequential", seq);
        emit("thread-per-chain", tpc);
        emit("pool", pool);

        // The whole point of the phased executor: identical decisions.
        if (tpc.result.stoppedAtDraw != seq.result.stoppedAtDraw
            || pool.result.stoppedAtDraw != seq.result.stoppedAtDraw) {
            std::fprintf(stderr,
                         "ERROR: stop draw differs across policies\n");
            return 1;
        }
    }
    printSection("Executor micro-bench — runWithElision wall time by "
                 "execution policy (4 chains)",
                 table);
    return 0;
}
