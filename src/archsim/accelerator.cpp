#include "archsim/accelerator.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace bayes::archsim {

AcceleratorSpec
AcceleratorSpec::simdSfu()
{
    AcceleratorSpec spec;
    spec.name = "SIMD+SFU";
    spec.clockGhz = 1.2;
    spec.lanes = 64;
    spec.sfus = 16;
    spec.sfuCyclesPerOp = 2.0;
    spec.divCyclesPerOp = 4.0;
    spec.serialFraction = 0.04;
    spec.scratchpadKb = 1024.0;
    spec.dramBWGBps = 120.0;
    return spec;
}

AcceleratorSpec
AcceleratorSpec::simdOnly()
{
    AcceleratorSpec spec = simdSfu();
    spec.name = "SIMD-only";
    spec.sfus = 0; // transcendentals expand to ~20 lane ops
    return spec;
}

AcceleratorSpec
AcceleratorSpec::gpuLike()
{
    AcceleratorSpec spec;
    spec.name = "GPU-like";
    spec.clockGhz = 1.4;
    spec.lanes = 1024;
    spec.sfus = 128;
    spec.sfuCyclesPerOp = 1.0;
    spec.divCyclesPerOp = 2.0;
    // Kernel-launch / divergence overheads on short NUTS evaluations.
    spec.serialFraction = 0.15;
    spec.scratchpadKb = 4096.0;
    spec.dramBWGBps = 600.0;
    return spec;
}

AcceleratorEstimate
estimateAccelerator(const EvalProfile& profile,
                    const AcceleratorSpec& spec, double cpuSecondsPerEval)
{
    BAYES_CHECK(spec.lanes >= 1, "accelerator needs at least one lane");
    BAYES_CHECK(cpuSecondsPerEval > 0, "reference CPU time must be > 0");
    const auto& ops = profile.opCounts;
    const double addMul =
        static_cast<double>(ops[static_cast<int>(ad::OpClass::AddSub)]
                            + ops[static_cast<int>(ad::OpClass::Mul)]);
    const double div =
        static_cast<double>(ops[static_cast<int>(ad::OpClass::Div)]);
    const double special =
        static_cast<double>(ops[static_cast<int>(ad::OpClass::Special)]);
    const double total = std::max(1.0, addMul + div + special);

    // Forward + reverse: both sweeps stream over the same ops. Lane
    // throughput bounds arithmetic; SFUs (if present) bound
    // transcendentals, otherwise they expand to ~20 lane ops each.
    const double lanes = static_cast<double>(spec.lanes);
    double computeCycles =
        2.0 * addMul / lanes + 2.0 * div * spec.divCyclesPerOp / lanes;
    if (spec.sfus > 0) {
        computeCycles += 2.0 * special * spec.sfuCyclesPerOp
            / static_cast<double>(spec.sfus);
    } else {
        computeCycles += 2.0 * special * 20.0 / lanes;
    }

    // Amdahl: sampler bookkeeping and the reverse sweep's dependency
    // spine do not vectorize.
    const double serialCycles = spec.serialFraction * 2.0 * total;
    double cycles = computeCycles + serialCycles;

    // Bandwidth bound when the working set cannot live in scratchpad.
    const double workingSetBytes =
        static_cast<double>(profile.tapeNodes) * 32.0
        + static_cast<double>(profile.dataBytes);
    AcceleratorEstimate est;
    if (workingSetBytes > spec.scratchpadKb * 1024.0) {
        const double bytesStreamed = 2.0 * workingSetBytes; // fwd + rev
        const double bwSeconds = bytesStreamed / (spec.dramBWGBps * 1e9);
        const double bwCycles = bwSeconds * spec.clockGhz * 1e9;
        if (bwCycles > cycles) {
            cycles = bwCycles;
            est.bandwidthBound = true;
        }
    }

    est.cyclesPerEval = cycles;
    est.secondsPerEval = cycles / (spec.clockGhz * 1e9);
    est.speedupVsCpu = cpuSecondsPerEval / est.secondsPerEval;
    return est;
}

} // namespace bayes::archsim
