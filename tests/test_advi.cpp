/**
 * @file
 * ADVI tests: posterior recovery on a known Gaussian target, ELBO
 * ascent, constrained-scale output, determinism, and behavior on a real
 * workload.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "math/distributions.hpp"
#include "samplers/advi.hpp"
#include "support/stats.hpp"
#include "workloads/suite.hpp"

namespace bayes::samplers {
namespace {

/** Independent 2-D Gaussian — mean-field ADVI's exact regime. */
class DiagGaussian : public ppl::Model
{
  public:
    DiagGaussian()
        : layout_({{"x", 1, ppl::TransformKind::Identity, 0, 0},
                   {"y", 1, ppl::TransformKind::Identity, 0, 0}})
    {
    }

    const std::string& name() const override { return name_; }
    const ppl::ParamLayout& layout() const override { return layout_; }
    std::size_t modeledDataBytes() const override { return 0; }

    double logProb(const ppl::ParamView<double>& p) const override
    {
        return body(p);
    }
    ad::Var logProb(const ppl::ParamView<ad::Var>& p) const override
    {
        return body(p);
    }

  private:
    template <typename T>
    T
    body(const ppl::ParamView<T>& p) const
    {
        using namespace bayes::math;
        return normal_lpdf(p.scalar(0), 2.0, 0.5)
            + normal_lpdf(p.scalar(1), -1.0, 2.0);
    }

    std::string name_ = "diag-gaussian";
    ppl::ParamLayout layout_;
};

TEST(Advi, RecoversDiagonalGaussianExactly)
{
    DiagGaussian model;
    AdviConfig cfg;
    cfg.maxIterations = 3000;
    const auto fit = fitAdvi(model, cfg);
    EXPECT_NEAR(fit.mu[0], 2.0, 0.1);
    EXPECT_NEAR(fit.mu[1], -1.0, 0.25);
    EXPECT_NEAR(std::exp(fit.omega[0]), 0.5, 0.12);
    EXPECT_NEAR(std::exp(fit.omega[1]), 2.0, 0.45);
}

TEST(Advi, ElboTraceImproves)
{
    DiagGaussian model;
    AdviConfig cfg;
    cfg.maxIterations = 1500;
    const auto fit = fitAdvi(model, cfg);
    ASSERT_GE(fit.elboTrace.size(), 2u);
    EXPECT_GT(fit.elboTrace.back(), fit.elboTrace.front());
}

TEST(Advi, DrawsMatchFittedMoments)
{
    DiagGaussian model;
    AdviConfig cfg;
    cfg.maxIterations = 3000;
    cfg.outputDraws = 4000;
    const auto fit = fitAdvi(model, cfg);
    ASSERT_EQ(fit.draws.size(), 4000u);
    std::vector<double> xs;
    for (const auto& d : fit.draws)
        xs.push_back(d[0]);
    EXPECT_NEAR(mean(xs), fit.mu[0], 0.05);
    EXPECT_NEAR(stddev(xs), std::exp(fit.omega[0]), 0.05);
}

TEST(Advi, DeterministicForFixedSeed)
{
    DiagGaussian model;
    AdviConfig cfg;
    cfg.maxIterations = 200;
    const auto a = fitAdvi(model, cfg);
    const auto b = fitAdvi(model, cfg);
    EXPECT_EQ(a.mu, b.mu);
    EXPECT_EQ(a.gradEvals, b.gradEvals);
}

TEST(Advi, OutputIsOnTheConstrainedScale)
{
    // ode has bounded parameters; every ADVI draw must respect them.
    const auto wl = workloads::makeWorkload("ode");
    AdviConfig cfg;
    cfg.maxIterations = 300;
    cfg.outputDraws = 200;
    const auto fit = fitAdvi(*wl, cfg);
    for (const auto& d : fit.draws) {
        EXPECT_GT(d[0], 2.0);  // mtt in (2, 12)
        EXPECT_LT(d[0], 12.0);
        EXPECT_GT(d[4], 0.01); // sigma in (0.01, 1)
        EXPECT_LT(d[4], 1.0);
    }
}

TEST(Advi, ApproximatesWorkloadPosteriorMean)
{
    const auto wl = workloads::makeWorkload("12cities", 0.5);
    AdviConfig cfg;
    cfg.maxIterations = 2500;
    const auto fit = fitAdvi(*wl, cfg);
    // beta_limit is negative in truth and posterior; the variational
    // mean must land clearly on the correct side.
    const auto& layout = wl->layout();
    const std::size_t idx = layout.offset(layout.blockIndex("beta_limit"));
    double m = 0;
    for (const auto& d : fit.draws)
        m += d[idx];
    m /= static_cast<double>(fit.draws.size());
    EXPECT_LT(m, 0.0);
    EXPECT_GT(m, -0.8);
}

TEST(Advi, ValidatesConfig)
{
    DiagGaussian model;
    AdviConfig bad;
    bad.maxIterations = 0;
    EXPECT_THROW(fitAdvi(model, bad), Error);
}

} // namespace
} // namespace bayes::samplers
