/**
 * @file
 * Aligned console tables and CSV emission for the benchmark harness.
 * Every figure/table bench prints (a) a human-readable aligned table and
 * (b) a machine-readable CSV block, so results can be re-plotted.
 */
#pragma once

#include <string>
#include <vector>

namespace bayes {

/**
 * A simple column-aligned text table. Cells are strings; numeric
 * convenience overloads format with a fixed precision.
 */
class Table
{
  public:
    /** Create a table with the given column headers. */
    explicit Table(std::vector<std::string> headers);

    /** Begin a new row; subsequent cell() calls fill it left to right. */
    Table& row();

    /** Append a string cell to the current row. */
    Table& cell(const std::string& value);

    /** Append a numeric cell formatted to @p precision decimals. */
    Table& cell(double value, int precision = 3);

    /** Append an integer cell. */
    Table& cell(long value);

    /** Render as an aligned text table. */
    std::string str() const;

    /** Render as CSV (headers + rows, comma-separated, quoted minimally). */
    std::string csv() const;

    /** Number of completed or in-progress data rows. */
    std::size_t rows() const { return rows_.size(); }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double with fixed precision (helper shared with benches). */
std::string formatFixed(double value, int precision);

/**
 * Print a section banner followed by the table and its CSV twin to
 * stdout; used uniformly by the figure benches.
 */
void printSection(const std::string& title, const Table& table);

} // namespace bayes
