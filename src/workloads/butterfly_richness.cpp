#include "workloads/butterfly_richness.hpp"

#include <cmath>

#include "math/distributions.hpp"

namespace bayes::workloads {

ButterflyRichness::ButterflyRichness(double dataScale)
    : Workload(
          WorkloadInfo{
              "butterfly", "Hierarchical Bayesian",
              "Estimating butterfly species richness and accumulation",
              "Dorazio et al. 2006 [26]",
              "detection counts, grassland fragments in Sweden",
              /*defaultIterations=*/1400},
          dataScale)
{
    Rng rng = dataRng();
    numSpecies_ = scaled(28);
    numSites_ = 8;
    visits_ = 3;

    const double muOccTrue = 0.2;
    const double sigmaOccTrue = 1.0;
    const double muDetTrue = -0.6;
    const double sigmaDetTrue = 0.7;

    for (std::size_t s = 0; s < numSpecies_; ++s) {
        const double occEff = rng.normal(muOccTrue, sigmaOccTrue);
        const double detEff = rng.normal(muDetTrue, sigmaDetTrue);
        for (std::size_t j = 0; j < numSites_; ++j) {
            long count = 0;
            if (rng.bernoulli(math::invLogit(occEff))) {
                count = rng.binomial(visits_, math::invLogit(detEff));
            }
            detections_.push_back(count);
        }
    }

    setModeledDataBytes(detections_.size() * sizeof(long));

    setLayout({
        {"mu_occ", 1, ppl::TransformKind::Identity, 0, 0},
        {"sigma_occ", 1, ppl::TransformKind::LowerBound, 0.0, 0},
        {"mu_det", 1, ppl::TransformKind::Identity, 0, 0},
        {"sigma_det", 1, ppl::TransformKind::LowerBound, 0.0, 0},
        {"occ", numSpecies_, ppl::TransformKind::Identity, 0, 0},
        {"det", numSpecies_, ppl::TransformKind::Identity, 0, 0},
    });
}

template <typename T>
T
ButterflyRichness::logDensity(const ppl::ParamView<T>& p) const
{
    using namespace bayes::math;
    const T& muOcc = p.scalar(kMuOcc);
    const T& sigmaOcc = p.scalar(kSigmaOcc);
    const T& muDet = p.scalar(kMuDet);
    const T& sigmaDet = p.scalar(kSigmaDet);

    T lp = normal_lpdf(muOcc, 0.0, 1.5) + normal_lpdf(sigmaOcc, 0.0, 1.0)
        + normal_lpdf(muDet, 0.0, 1.5) + normal_lpdf(sigmaDet, 0.0, 1.0);

    for (std::size_t s = 0; s < numSpecies_; ++s) {
        // bayes-lint: allow(R007): small species count; occupancy terms dominate
        lp += normal_lpdf(p.at(kOcc, s), muOcc, sigmaOcc);
        // bayes-lint: allow(R007): small species count; occupancy terms dominate
        lp += normal_lpdf(p.at(kDet, s), muDet, sigmaDet);
    }

    for (std::size_t s = 0; s < numSpecies_; ++s) {
        const T& occEff = p.at(kOcc, s);
        const T& detEff = p.at(kDet, s);
        // log P(occupied) = -log1pExp(-occ); log P(empty) = -log1pExp(occ)
        const T logPsi = -log1pExp(-occEff);
        const T logOneMinusPsi = -log1pExp(occEff);
        for (std::size_t j = 0; j < numSites_; ++j) {
            const long x = detections_[s * numSites_ + j];
            // bayes-lint: allow(R007): per-site logSumExp mixture cannot fuse
            const T detLp = binomial_logit_lpmf(x, visits_, detEff);
            if (x > 0) {
                // A detection implies occupancy.
                lp += logPsi + detLp;
            } else {
                // No detection: occupied-but-missed or truly absent.
                lp += logSumExp(logPsi + detLp, logOneMinusPsi);
            }
        }
    }
    return lp;
}

double
ButterflyRichness::logProb(const ppl::ParamView<double>& p) const
{
    return logDensity(p);
}

ad::Var
ButterflyRichness::logProb(const ppl::ParamView<ad::Var>& p) const
{
    return logDensity(p);
}

} // namespace bayes::workloads
