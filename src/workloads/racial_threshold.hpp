/**
 * @file
 * `racial` — testing for racial bias in vehicle searches by police.
 *
 * Hierarchical threshold-test model after Simoiu, Corbett-Davies &
 * Goel (2017): per department and race group, the search decision and
 * its hit rate share latent structure; race-level search thresholds
 * below the white baseline indicate discriminatory standards of
 * evidence. Data are aggregated stop/search/hit counts in the shape of
 * the North Carolina dataset.
 */
#pragma once

#include "workloads/workload.hpp"

namespace bayes::workloads {

/** Hierarchical threshold-test workload. */
class RacialThreshold : public Workload
{
  public:
    explicit RacialThreshold(double dataScale = 1.0);

    double logProb(const ppl::ParamView<double>& p) const override;
    ad::Var logProb(const ppl::ParamView<ad::Var>& p) const override;

    /** Number of police departments. */
    std::size_t numDepartments() const { return numDepartments_; }

    /** Number of race groups. */
    std::size_t numRaces() const { return numRaces_; }

    /** Parameter block indices. */
    enum Block : std::size_t
    {
        kMuSearch,    ///< per-race search propensity (logit)
        kMuHit,       ///< per-race hit rate (logit)
        kSigmaDept,   ///< department heterogeneity, > 0
        kDeptSearch,  ///< per-department search effect
        kDeptHit,     ///< per-department hit effect
    };

  private:
    template <typename T>
    T logDensity(const ppl::ParamView<T>& p) const;

    std::size_t numDepartments_;
    std::size_t numRaces_;
    std::vector<long> stops_;    ///< [dept * races + race]
    std::vector<long> searches_;
    std::vector<long> hits_;
};

} // namespace bayes::workloads
