/**
 * @file
 * Hamiltonian-dynamics tests: leapfrog reversibility, symplectic
 * energy behavior, metric handling, and the reasonable-step-size
 * search.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "math/distributions.hpp"
#include "samplers/hamiltonian.hpp"
#include "support/stats.hpp"

namespace bayes::samplers {
namespace {

/** Standard 2-D Gaussian: H is exactly integrable, handy for physics. */
class StdGaussian : public ppl::Model
{
  public:
    StdGaussian()
        : layout_({{"x", 2, ppl::TransformKind::Identity, 0, 0}})
    {
    }
    const std::string& name() const override { return name_; }
    const ppl::ParamLayout& layout() const override { return layout_; }
    std::size_t modeledDataBytes() const override { return 0; }
    double logProb(const ppl::ParamView<double>& p) const override
    {
        return body(p);
    }
    ad::Var logProb(const ppl::ParamView<ad::Var>& p) const override
    {
        return body(p);
    }

  private:
    template <typename T>
    T
    body(const ppl::ParamView<T>& p) const
    {
        using namespace bayes::math;
        return std_normal_lpdf(p.at(0, 0)) + std_normal_lpdf(p.at(0, 1));
    }
    std::string name_ = "std-gaussian";
    ppl::ParamLayout layout_;
};

class HamiltonianTest : public ::testing::Test
{
  protected:
    HamiltonianTest() : eval_(model_), ham_(eval_) {}

    PhasePoint
    startPoint()
    {
        PhasePoint z;
        z.q = {0.7, -0.3};
        ham_.refresh(z);
        z.p = {0.4, 1.1};
        return z;
    }

    StdGaussian model_;
    ppl::Evaluator eval_;
    Hamiltonian ham_;
};

TEST_F(HamiltonianTest, LeapfrogIsTimeReversible)
{
    PhasePoint z = startPoint();
    const auto q0 = z.q;
    const auto p0 = z.p;
    for (int i = 0; i < 25; ++i)
        ham_.leapfrog(z, 0.1);
    // Negate momentum, integrate back, negate again.
    for (auto& p : z.p)
        p = -p;
    for (int i = 0; i < 25; ++i)
        ham_.leapfrog(z, 0.1);
    for (std::size_t i = 0; i < 2; ++i) {
        EXPECT_NEAR(z.q[i], q0[i], 1e-9);
        EXPECT_NEAR(-z.p[i], p0[i], 1e-9);
    }
}

TEST_F(HamiltonianTest, EnergyNearlyConservedAtSmallSteps)
{
    PhasePoint z = startPoint();
    const double h0 = ham_.joint(z);
    for (int i = 0; i < 200; ++i)
        ham_.leapfrog(z, 0.05);
    // Symplectic integrator: bounded energy error, no drift.
    EXPECT_NEAR(ham_.joint(z), h0, 0.01);
}

TEST_F(HamiltonianTest, EnergyErrorGrowsWithStepSize)
{
    PhasePoint a = startPoint();
    PhasePoint b = startPoint();
    const double h0 = ham_.joint(a);
    for (int i = 0; i < 16; ++i)
        ham_.leapfrog(a, 0.05);
    for (int i = 0; i < 4; ++i)
        ham_.leapfrog(b, 0.6);
    EXPECT_LT(std::fabs(ham_.joint(a) - h0),
              std::fabs(ham_.joint(b) - h0));
}

TEST_F(HamiltonianTest, KineticUsesInvMetric)
{
    PhasePoint z = startPoint();
    z.p = {2.0, 0.0};
    EXPECT_NEAR(ham_.kinetic(z), 2.0, 1e-12); // identity metric: p^2/2
    ham_.setInvMetric({0.25, 1.0});
    EXPECT_NEAR(ham_.kinetic(z), 0.5, 1e-12);
}

TEST_F(HamiltonianTest, MomentumSamplesFollowTheMetric)
{
    // invMetric = posterior variance estimate; p ~ N(0, 1/invMetric).
    ham_.setInvMetric({4.0, 0.25});
    Rng rng(11);
    RunningStats s0, s1;
    PhasePoint z = startPoint();
    for (int i = 0; i < 20000; ++i) {
        ham_.sampleMomentum(rng, z);
        s0.add(z.p[0]);
        s1.add(z.p[1]);
    }
    EXPECT_NEAR(s0.stddev(), 0.5, 0.02); // 1/sqrt(4)
    EXPECT_NEAR(s1.stddev(), 2.0, 0.05); // 1/sqrt(0.25)
}

TEST_F(HamiltonianTest, MetricValidation)
{
    EXPECT_THROW(ham_.setInvMetric({1.0}), Error); // wrong dim
    // Tiny entries are floored, not rejected.
    ham_.setInvMetric({0.0, 1.0});
    EXPECT_GT(ham_.invMetric()[0], 0.0);
}

TEST_F(HamiltonianTest, ReasonableStepSizeIsUsable)
{
    Rng rng(3);
    PhasePoint z = startPoint();
    const double eps = ham_.findReasonableStepSize(z, rng);
    EXPECT_GT(eps, 0.01);
    EXPECT_LT(eps, 10.0);
    // One step at that size should keep the energy error moderate.
    PhasePoint trial = startPoint();
    ham_.sampleMomentum(rng, trial);
    const double h0 = ham_.joint(trial);
    ham_.leapfrog(trial, eps);
    EXPECT_LT(std::fabs(ham_.joint(trial) - h0), 2.0);
}

TEST_F(HamiltonianTest, LeapfrogMatchesAnalyticOscillator)
{
    // For a standard Gaussian, Hamilton's equations are the harmonic
    // oscillator: q(t) = q0 cos t + p0 sin t (identity metric).
    PhasePoint z;
    z.q = {1.0, 0.0};
    ham_.refresh(z);
    z.p = {0.0, 0.0};
    const double t = 1.0;
    const int steps = 1000;
    for (int i = 0; i < steps; ++i)
        ham_.leapfrog(z, t / steps);
    EXPECT_NEAR(z.q[0], std::cos(t), 1e-4);
    EXPECT_NEAR(z.p[0], -std::sin(t), 1e-4);
}

} // namespace
} // namespace bayes::samplers
