/**
 * @file
 * Deterministic pseudo-random number generation for samplers and
 * synthetic data generators.
 *
 * We ship our own generator (xoshiro256++) instead of std::mt19937 so
 * that every stream is reproducible across standard libraries, cheap to
 * fork (one stream per Markov chain), and fast enough to sit inside the
 * sampling inner loop.
 */
#pragma once

#include <cstdint>
#include <vector>

namespace bayes {

/**
 * xoshiro256++ PRNG with SplitMix64 seeding and a jump() routine used
 * to derive statistically independent per-chain streams.
 */
class Rng
{
  public:
    /** Seed deterministically; identical seeds produce identical streams. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Raw 64 random bits. */
    std::uint64_t nextU64();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n). @pre n > 0 */
    std::uint64_t uniformInt(std::uint64_t n);

    /** Standard normal via Box-Muller (cached spare deviate). */
    double normal();

    /** Normal with given mean and standard deviation. */
    double normal(double mean, double sd);

    /** Exponential with given rate. @pre rate > 0 */
    double exponential(double rate);

    /** Gamma(shape, rate) via Marsaglia-Tsang. @pre shape, rate > 0 */
    double gamma(double shape, double rate);

    /** Beta(a, b) via two gamma draws. @pre a, b > 0 */
    double beta(double a, double b);

    /** Poisson(mean) via inversion / PTRS for large means. @pre mean >= 0 */
    long poisson(double mean);

    /** Binomial(n, p) by summed Bernoulli / normal approx for large n. */
    long binomial(long n, double p);

    /** Bernoulli(p) in {0, 1}. */
    int bernoulli(double p);

    /** Student-t with nu degrees of freedom. @pre nu > 0 */
    double studentT(double nu);

    /** Cauchy(loc, scale). @pre scale > 0 */
    double cauchy(double loc, double scale);

    /** Sample an index from unnormalized weights. @pre weights nonempty */
    std::size_t categorical(const std::vector<double>& weights);

    // -- Fork points --------------------------------------------------
    // The ONLY sanctioned ways to duplicate generator state. An ad-hoc
    // copy silently clones a random stream — two consumers replay the
    // same draws, which breaks the one-stream-per-chain determinism
    // contract — so bayes-lint rule R013 flags any other Rng copy
    // under src/. Each fork below states its aliasing intent.

    /**
     * Return a generator 2^128 steps ahead; calling fork() repeatedly
     * yields independent streams (one per Markov chain).
     */
    Rng fork();

    /**
     * Exact replica of this stream for speculative execution: the
     * replica predicts this generator's own future draws without
     * advancing it (samplers::prefetch pre-generates proposals from
     * one). The deliberate aliasing is the point — commit protocols
     * must still consume the real stream in canonical order, and the
     * replica must be discarded at the end of the speculation window.
     */
    Rng replicaFork() const;

    /**
     * Counter-based fork: a statistically independent stream keyed by
     * @p stream, derived without advancing this generator. Unlike
     * fork(), the parent is untouched, so speculative subsystems can
     * mint any number of scratch streams (keyed by lane, round, or
     * tree path) from a const context and reproduce them on replay.
     */
    Rng streamFork(std::uint64_t stream) const;

  private:
    void jump();

    std::uint64_t s_[4];
    double spareNormal_ = 0.0;
    bool hasSpare_ = false;
};

} // namespace bayes
