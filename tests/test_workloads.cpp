/**
 * @file
 * Property tests applied uniformly to all ten BayesSuite workloads:
 * deterministic data generation, layout/metadata sanity, finite log
 * densities and gradients, finite-difference gradient checks, and
 * dataScale behavior.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "ppl/evaluator.hpp"
#include "samplers/runner.hpp"
#include "workloads/suite.hpp"

namespace bayes::workloads {
namespace {

class WorkloadTest : public ::testing::TestWithParam<std::string>
{
  protected:
    std::unique_ptr<Workload> make(double scale = 1.0) const
    {
        return makeWorkload(GetParam(), scale);
    }
};

TEST_P(WorkloadTest, MetadataIsComplete)
{
    const auto wl = make();
    EXPECT_EQ(wl->name(), GetParam());
    EXPECT_FALSE(wl->info().modelFamily.empty());
    EXPECT_FALSE(wl->info().application.empty());
    EXPECT_FALSE(wl->info().source.empty());
    EXPECT_FALSE(wl->info().dataDescription.empty());
    EXPECT_GE(wl->info().defaultIterations, 100);
    EXPECT_EQ(wl->info().defaultChains, 4);
}

TEST_P(WorkloadTest, LayoutIsNonTrivial)
{
    const auto wl = make();
    EXPECT_GE(wl->layout().dim(), 5u);
    EXPECT_GE(wl->layout().blockCount(), 2u);
    EXPECT_GT(wl->modeledDataBytes(), 0u);
}

TEST_P(WorkloadTest, DataGenerationIsDeterministic)
{
    const auto a = make();
    const auto b = make();
    EXPECT_EQ(a->modeledDataBytes(), b->modeledDataBytes());
    // Identical models must produce identical densities at a point.
    ppl::Evaluator ea(*a), eb(*b);
    Rng rng(123);
    const auto q = samplers::findInitialPoint(ea, rng);
    EXPECT_DOUBLE_EQ(ea.logProb(q), eb.logProb(q));
}

TEST_P(WorkloadTest, FiniteDensityAndGradientAtInit)
{
    const auto wl = make();
    ppl::Evaluator eval(*wl);
    Rng rng(7);
    const auto q = samplers::findInitialPoint(eval, rng);
    std::vector<double> grad;
    const double lp = eval.logProbGrad(q, grad);
    EXPECT_TRUE(std::isfinite(lp));
    for (double g : grad)
        EXPECT_TRUE(std::isfinite(g));
}

TEST_P(WorkloadTest, GradientMatchesFiniteDifference)
{
    const auto wl = make(0.5); // half data keeps this test fast
    ppl::Evaluator eval(*wl);
    Rng rng(11);
    const auto q = samplers::findInitialPoint(eval, rng);
    std::vector<double> grad;
    eval.logProbGrad(q, grad);
    // Spot-check a spread of coordinates (all would be O(dim) evals).
    const double h = 1e-6;
    for (std::size_t i = 0; i < eval.dim();
         i += std::max<std::size_t>(1, eval.dim() / 7)) {
        auto qp = q, qm = q;
        qp[i] += h;
        qm[i] -= h;
        const double numeric =
            (eval.logProb(qp) - eval.logProb(qm)) / (2 * h);
        EXPECT_NEAR(grad[i], numeric,
                    2e-4 * std::max(1.0, std::fabs(numeric)))
            << wl->name() << " coord " << i;
    }
}

TEST_P(WorkloadTest, ValuePathAgreesWithGradientPath)
{
    const auto wl = make(0.5);
    ppl::Evaluator eval(*wl);
    Rng rng(13);
    const auto q = samplers::findInitialPoint(eval, rng);
    std::vector<double> grad;
    EXPECT_NEAR(eval.logProb(q), eval.logProbGrad(q, grad),
                1e-9 * std::fabs(eval.logProb(q)) + 1e-9);
}

TEST_P(WorkloadTest, DataScaleShrinksModeledData)
{
    const auto full = make(1.0);
    const auto half = make(0.5);
    const auto quarter = make(0.25);
    EXPECT_GT(full->modeledDataBytes(), half->modeledDataBytes());
    EXPECT_GT(half->modeledDataBytes(), quarter->modeledDataBytes());
    EXPECT_DOUBLE_EQ(half->dataScale(), 0.5);
}

TEST_P(WorkloadTest, RejectsInvalidDataScale)
{
    EXPECT_THROW(makeWorkload(GetParam(), 0.0), Error);
    EXPECT_THROW(makeWorkload(GetParam(), 1.5), Error);
}

TEST_P(WorkloadTest, ShortChainRunsWithoutDivergenceStorm)
{
    const auto wl = make(0.25);
    samplers::Config cfg;
    cfg.chains = 1;
    cfg.iterations = 80;
    cfg.seed = 99;
    const auto result = samplers::run(*wl, cfg);
    EXPECT_EQ(result.chains.size(), 1u);
    EXPECT_EQ(result.chains[0].draws.size(), 40u);
    // Quarter-scale data is easier: expect mostly clean transitions.
    EXPECT_LT(result.chains[0].divergences, 20u);
    for (double lp : result.chains[0].logProbs)
        EXPECT_TRUE(std::isfinite(lp));
}

INSTANTIATE_TEST_SUITE_P(Suite, WorkloadTest,
                         ::testing::ValuesIn(suiteNames()),
                         [](const auto& paramInfo) {
                             std::string n = paramInfo.param;
                             if (n == "12cities")
                                 n = "twelvecities";
                             return n;
                         });

TEST(WorkloadRegistry, SuiteHasTenWorkloadsInTableOrder)
{
    const auto& names = suiteNames();
    ASSERT_EQ(names.size(), 10u);
    EXPECT_EQ(names.front(), "12cities");
    EXPECT_EQ(names.back(), "survival");
    const auto suite = makeSuite();
    ASSERT_EQ(suite.size(), 10u);
    for (std::size_t i = 0; i < suite.size(); ++i)
        EXPECT_EQ(suite[i]->name(), names[i]);
}

TEST(WorkloadRegistry, UnknownNameThrows)
{
    EXPECT_THROW(makeWorkload("nonesuch"), Error);
}

TEST(WorkloadRegistry, ModeledDataOrderingMatchesPaper)
{
    // The three LLC-bound workloads must carry the largest modeled
    // datasets, with tickets on top (paper Fig. 3).
    const auto suite = makeSuite();
    std::size_t tickets = 0, survival = 0, ad = 0, maxOther = 0;
    for (const auto& wl : suite) {
        if (wl->name() == "tickets")
            tickets = wl->modeledDataBytes();
        else if (wl->name() == "survival")
            survival = wl->modeledDataBytes();
        else if (wl->name() == "ad")
            ad = wl->modeledDataBytes();
        else
            maxOther = std::max(maxOther, wl->modeledDataBytes());
    }
    EXPECT_GT(tickets, survival);
    EXPECT_GT(tickets, ad);
    EXPECT_GT(std::min(ad, survival), maxOther);
}

} // namespace
} // namespace bayes::workloads
