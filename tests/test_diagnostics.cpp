/**
 * @file
 * Diagnostic tests: Gelman-Rubin split R-hat on synthetic chains,
 * effective sample size on iid vs autocorrelated draws, Gaussian KL,
 * and posterior summaries.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "support/error.hpp"
#include "diagnostics/convergence.hpp"
#include "diagnostics/importance.hpp"
#include "diagnostics/summary.hpp"
#include "support/rng.hpp"

namespace bayes::diagnostics {
namespace {

std::vector<double>
iidNormal(Rng& rng, std::size_t n, double mean = 0.0, double sd = 1.0)
{
    std::vector<double> xs(n);
    for (auto& x : xs)
        x = rng.normal(mean, sd);
    return xs;
}

TEST(Rhat, NearOneForIdenticallyDistributedChains)
{
    Rng rng(1);
    std::vector<std::vector<double>> chains;
    for (int c = 0; c < 4; ++c)
        chains.push_back(iidNormal(rng, 500));
    EXPECT_LT(splitRhat(chains), 1.02);
}

TEST(Rhat, LargeForShiftedChains)
{
    Rng rng(2);
    std::vector<std::vector<double>> chains;
    for (int c = 0; c < 4; ++c)
        chains.push_back(iidNormal(rng, 500, c * 3.0));
    EXPECT_GT(splitRhat(chains), 2.0);
}

TEST(Rhat, SplitDetectsWithinChainDrift)
{
    // One chain whose mean drifts: non-split R-hat would miss this with
    // a single chain; split form must flag it.
    Rng rng(3);
    std::vector<double> drift;
    for (int t = 0; t < 1000; ++t)
        drift.push_back(rng.normal(t < 500 ? 0.0 : 4.0, 1.0));
    EXPECT_GT(splitRhat({drift}), 1.5);
}

TEST(Rhat, ConstantChainsAreConverged)
{
    std::vector<std::vector<double>> chains(3,
                                            std::vector<double>(100, 2.5));
    EXPECT_DOUBLE_EQ(splitRhat(chains), 1.0);
}

TEST(Rhat, ConstantButDifferentChainsAreNotConverged)
{
    std::vector<std::vector<double>> chains = {
        std::vector<double>(100, 0.0), std::vector<double>(100, 1.0)};
    EXPECT_TRUE(std::isinf(splitRhat(chains)));
}

TEST(Rhat, ValidatesInput)
{
    EXPECT_THROW(splitRhat({}), Error);
    EXPECT_THROW(splitRhat({{1.0, 2.0}}), Error);
    EXPECT_THROW(splitRhat({{1, 2, 3, 4}, {1, 2, 3}}), Error);
}

TEST(Rhat, MaxOverCoordinates)
{
    Rng rng(4);
    std::vector<std::vector<std::vector<double>>> coords;
    coords.push_back({iidNormal(rng, 200), iidNormal(rng, 200)});
    coords.push_back(
        {iidNormal(rng, 200, 0.0), iidNormal(rng, 200, 5.0)});
    EXPECT_GT(maxSplitRhat(coords), 2.0);
}

TEST(Ess, IidDrawsHaveNearNominalEss)
{
    Rng rng(5);
    std::vector<std::vector<double>> chains;
    for (int c = 0; c < 4; ++c)
        chains.push_back(iidNormal(rng, 500));
    const double ess = effectiveSampleSize(chains);
    EXPECT_GT(ess, 1200.0);
    EXPECT_LE(ess, 2000.0);
}

TEST(Ess, Ar1DrawsHaveReducedEss)
{
    // AR(1) with phi = 0.9: ESS/N ~ (1-phi)/(1+phi) ~ 0.053.
    Rng rng(6);
    std::vector<std::vector<double>> chains;
    for (int c = 0; c < 2; ++c) {
        std::vector<double> xs(2000);
        double x = 0.0;
        for (auto& v : xs) {
            x = 0.9 * x + rng.normal() * std::sqrt(1 - 0.81);
            v = x;
        }
        chains.push_back(std::move(xs));
    }
    const double ess = effectiveSampleSize(chains);
    EXPECT_LT(ess, 600.0);
    EXPECT_GT(ess, 80.0);
}

TEST(Ess, ConstantChainsReturnNominal)
{
    std::vector<std::vector<double>> chains(2,
                                            std::vector<double>(50, 1.0));
    EXPECT_DOUBLE_EQ(effectiveSampleSize(chains), 100.0);
}

TEST(Kl, ZeroForIdenticalGaussians)
{
    EXPECT_NEAR(gaussianKl1d(1.0, 2.0, 1.0, 2.0), 0.0, 1e-12);
}

TEST(Kl, KnownValueForShiftedGaussians)
{
    // KL(N(1,1) || N(0,1)) = 0.5
    EXPECT_NEAR(gaussianKl1d(1.0, 1.0, 0.0, 1.0), 0.5, 1e-12);
    // KL(N(0,2) || N(0,1)) = ln(1/2) + (4+0)/2 - 1/2 = 1.5 - ln 2
    EXPECT_NEAR(gaussianKl1d(0.0, 2.0, 0.0, 1.0), 1.5 - std::log(2.0),
                1e-12);
}

TEST(Kl, IsAsymmetric)
{
    EXPECT_NE(gaussianKl1d(0.0, 1.0, 0.0, 3.0),
              gaussianKl1d(0.0, 3.0, 0.0, 1.0));
}

TEST(Kl, SampleBasedMatchesMoments)
{
    Rng rng(7);
    std::vector<std::vector<double>> p = {iidNormal(rng, 50000, 1.0, 1.0)};
    std::vector<std::vector<double>> q = {iidNormal(rng, 50000, 0.0, 1.0)};
    EXPECT_NEAR(gaussianKl(p, q), 0.5, 0.05);
    EXPECT_NEAR(gaussianKl(p, p), 0.0, 1e-9);
}

TEST(Kl, ValidatesShapes)
{
    EXPECT_THROW(gaussianKl({}, {}), Error);
    EXPECT_THROW(gaussianKl({{1, 2, 3}}, {}), Error);
    EXPECT_THROW(gaussianKl1d(0, 0, 0, 1), Error);
}

TEST(Summary, ComputesPerCoordinateStatistics)
{
    Rng rng(8);
    samplers::RunResult run;
    run.chains.resize(2);
    for (auto& chain : run.chains) {
        for (int t = 0; t < 300; ++t) {
            chain.draws.push_back({rng.normal(2.0, 1.0),
                                   rng.normal(-1.0, 0.5)});
            chain.logProbs.push_back(0.0);
        }
        chain.iterStats.resize(300);
    }

    ppl::ParamLayout layout({
        {"a", 1, ppl::TransformKind::Identity, 0, 0},
        {"b", 1, ppl::TransformKind::Identity, 0, 0},
    });
    const auto summary = summarize(run, layout);
    ASSERT_EQ(summary.coords.size(), 2u);
    EXPECT_EQ(summary.coords[0].name, "a");
    EXPECT_NEAR(summary.coords[0].mean, 2.0, 0.1);
    EXPECT_NEAR(summary.coords[1].sd, 0.5, 0.05);
    EXPECT_LT(summary.maxRhat(), 1.05);
    EXPECT_GT(summary.minEss(), 300.0);
    EXPECT_LT(summary.coords[0].q05, summary.coords[0].median);
    EXPECT_LT(summary.coords[0].median, summary.coords[0].q95);
    EXPECT_EQ(summary.table().rows(), 2u);
}

TEST(Summary, RecentWindowKeepsTail)
{
    samplers::RunResult run;
    run.chains.resize(1);
    for (int t = 0; t < 100; ++t)
        run.chains[0].draws.push_back({static_cast<double>(t)});
    const auto window = recentWindow(run, 0, 0.5);
    ASSERT_EQ(window.size(), 1u);
    EXPECT_EQ(window[0].size(), 50u);
    EXPECT_DOUBLE_EQ(window[0].front(), 50.0);
    EXPECT_DOUBLE_EQ(window[0].back(), 99.0);
}

TEST(Summary, PooledCoordinateConcatenatesChains)
{
    samplers::RunResult run;
    run.chains.resize(2);
    run.chains[0].draws = {{1.0}, {2.0}};
    run.chains[1].draws = {{3.0}};
    const auto pooled = pooledCoordinate(run, 0);
    EXPECT_EQ(pooled, (std::vector<double>{1.0, 2.0, 3.0}));
}

TEST(GaussianKl, EdgeCases)
{
    // Zero and negative scales are rejected, not silently flushed.
    EXPECT_THROW(gaussianKl1d(0.0, 0.0, 0.0, 1.0), Error);
    EXPECT_THROW(gaussianKl1d(0.0, 1.0, 0.0, 0.0), Error);
    EXPECT_THROW(gaussianKl1d(0.0, -1.0, 0.0, 1.0), Error);
    // Near-zero (but positive) sd stays finite and well-defined.
    EXPECT_TRUE(std::isfinite(gaussianKl1d(0.0, 1e-300, 0.0, 1.0)));
    EXPECT_GT(gaussianKl1d(0.0, 1e-300, 1.0, 1.0), 0.0);

    // Mismatched coordinate counts and empty per-coordinate samples.
    EXPECT_THROW(gaussianKl({{1, 2, 3}}, {{1, 2}, {3, 4}}), Error);
    EXPECT_THROW(gaussianKl({{}}, {{1.0, 2.0}}), Error);
    EXPECT_THROW(gaussianKl({{1.0, 2.0}}, {{}}), Error);

    // Point-mass coordinates hit the 1e-12 scale floor and stay finite.
    const std::vector<std::vector<double>> pointMass{{2.0, 2.0, 2.0}};
    const std::vector<std::vector<double>> spread{{1.0, 2.0, 3.0}};
    EXPECT_TRUE(std::isfinite(gaussianKl(pointMass, spread)));
    EXPECT_NEAR(gaussianKl(pointMass, pointMass), 0.0, 1e-9);
}

/**
 * Deterministic Pareto(alpha) tail fixture: quantile-grid weights
 * w_i = (1 - u_i)^(-1/alpha) with u_i = (i+0.5)/n, whose importance
 * log-ratios have true tail index 1/alpha.
 */
std::vector<double>
paretoLogRatios(double alpha, std::size_t n)
{
    std::vector<double> lr(n);
    for (std::size_t i = 0; i < n; ++i) {
        const double u = (static_cast<double>(i) + 0.5)
            / static_cast<double>(n);
        lr[i] = (-1.0 / alpha) * std::log(1.0 - u);
    }
    return lr;
}

TEST(ParetoKhat, RecoversTheTailIndexOfParetoFixtures)
{
    // k-hat ~= 1/alpha, with tolerance for the quantile-grid truncation
    // of the extreme tail (which biases heavy fixtures slightly low).
    EXPECT_NEAR(paretoKhat(paretoLogRatios(1.0, 4000)), 1.0, 0.25);
    EXPECT_NEAR(paretoKhat(paretoLogRatios(2.0, 4000)), 0.5, 0.1);
    EXPECT_NEAR(paretoKhat(paretoLogRatios(10.0, 4000)), 0.1, 0.1);
    // Heavy (infinite-variance) vs light fixtures land on the right
    // side of the 0.7 reliability cutoff.
    EXPECT_GT(paretoKhat(paretoLogRatios(1.0, 4000)), 0.7);
    EXPECT_LT(paretoKhat(paretoLogRatios(10.0, 4000)), 0.7);
}

TEST(ParetoKhat, LightTailedRatiosScoreWellBelowTheCutoff)
{
    Rng rng(31);
    std::vector<double> lr(4000);
    for (double& l : lr)
        l = rng.normal(0.0, 0.3); // near-perfect proposal
    EXPECT_LT(paretoKhat(lr), 0.5);
}

TEST(ParetoKhat, IsDeterministic)
{
    const auto lr = paretoLogRatios(2.0, 1000);
    EXPECT_EQ(paretoKhat(lr), paretoKhat(lr));
}

TEST(ParetoKhat, EdgeCases)
{
    EXPECT_THROW(paretoKhat({}), Error);
    // Fewer than 5 finite ratios: no tail to fit.
    EXPECT_TRUE(std::isnan(paretoKhat({0.1, 0.2, 0.3, 0.4})));
    // Identical weights: degenerate tail reports -inf (bounded).
    EXPECT_EQ(paretoKhat(std::vector<double>(100, 0.7)),
              -std::numeric_limits<double>::infinity());
    // +inf or NaN ratios poison the estimate to +inf (escalate).
    auto poisoned = paretoLogRatios(2.0, 100);
    poisoned[3] = std::numeric_limits<double>::infinity();
    EXPECT_EQ(paretoKhat(poisoned),
              std::numeric_limits<double>::infinity());
    poisoned[3] = std::numeric_limits<double>::quiet_NaN();
    EXPECT_EQ(paretoKhat(poisoned),
              std::numeric_limits<double>::infinity());
    // -inf ratios are zero weights: dropped, not fatal.
    auto zeros = paretoLogRatios(2.0, 1000);
    zeros[0] = -std::numeric_limits<double>::infinity();
    EXPECT_TRUE(std::isfinite(paretoKhat(zeros)));
}

TEST(ImportanceDiagnostics, UniformWeightsAreIdeal)
{
    const std::vector<double> lr(256, 1.7); // constant log ratio
    const ImportanceDiagnostics d = importanceDiagnostics(lr);
    EXPECT_NEAR(d.essRatio, 1.0, 1e-12);
    EXPECT_NEAR(d.maxWeightFraction, 1.0 / 256.0, 1e-12);
}

TEST(ImportanceDiagnostics, OneDominantWeightCollapsesTheEss)
{
    std::vector<double> lr(256, 0.0);
    lr[17] = 40.0; // e^40 dwarfs everything else
    const ImportanceDiagnostics d = importanceDiagnostics(lr);
    EXPECT_LT(d.essRatio, 0.01);
    EXPECT_GT(d.maxWeightFraction, 0.99);
}

} // namespace
} // namespace bayes::diagnostics
