#include "math/special.hpp"

#include "support/error.hpp"

namespace bayes::math {

double
digamma(double x)
{
    BAYES_CHECK(x > 0.0, "digamma implemented for x > 0 only");
    double result = 0.0;
    // Recurrence to push the argument above 10 where the asymptotic
    // series is accurate to ~1e-13.
    while (x < 10.0) {
        result -= 1.0 / x;
        x += 1.0;
    }
    const double inv = 1.0 / x;
    const double inv2 = inv * inv;
    result += std::log(x) - 0.5 * inv
        - inv2 * (1.0 / 12.0
                  - inv2 * (1.0 / 120.0
                            - inv2 * (1.0 / 252.0 - inv2 / 240.0)));
    return result;
}

double
trigamma(double x)
{
    BAYES_CHECK(x > 0.0, "trigamma implemented for x > 0 only");
    double result = 0.0;
    while (x < 10.0) {
        result += 1.0 / (x * x);
        x += 1.0;
    }
    const double inv = 1.0 / x;
    const double inv2 = inv * inv;
    result += inv * (1.0 + 0.5 * inv
                     + inv2 * (1.0 / 6.0
                               - inv2 * (1.0 / 30.0
                                         - inv2 * (1.0 / 42.0
                                                   - inv2 / 30.0))));
    return result;
}

double
logSumExp(const std::vector<double>& xs)
{
    BAYES_CHECK(!xs.empty(), "logSumExp of empty vector");
    double m = xs[0];
    for (double x : xs)
        m = x > m ? x : m;
    if (m == -INFINITY)
        return -INFINITY;
    double s = 0.0;
    for (double x : xs)
        s += std::exp(x - m);
    return m + std::log(s);
}

double
stdNormalQuantile(double p)
{
    BAYES_CHECK(p > 0.0 && p < 1.0, "quantile domain is (0,1)");
    // Peter Acklam's rational approximation with one Halley refinement.
    static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                               -2.759285104469687e+02, 1.383577518672690e+02,
                               -3.066479806614716e+01, 2.506628277459239e+00};
    static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                               -1.556989798598866e+02, 6.680131188771972e+01,
                               -1.328068155288572e+01};
    static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                               -2.400758277161838e+00, -2.549732539343734e+00,
                               4.374664141464968e+00,  2.938163982698783e+00};
    static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                               2.445134137142996e+00, 3.754408661907416e+00};
    const double plow = 0.02425;
    double x;
    if (p < plow) {
        const double q = std::sqrt(-2.0 * std::log(p));
        x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q
             + c[5])
            / ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
    } else if (p <= 1.0 - plow) {
        const double q = p - 0.5;
        const double r = q * q;
        x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r
             + a[5])
            * q
            / (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r
               + 1.0);
    } else {
        const double q = std::sqrt(-2.0 * std::log1p(-p));
        x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q
              + c[5])
            / ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
    }
    // One Halley step against the exact CDF.
    const double e = stdNormalCdf(x) - p;
    const double u = e * std::sqrt(2.0 * M_PI) * std::exp(0.5 * x * x);
    x -= u / (1.0 + 0.5 * x * u);
    return x;
}

} // namespace bayes::math
