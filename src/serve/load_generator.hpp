/**
 * @file
 * Open-loop load generation for the serving runtime. A LoadGenerator
 * turns a tenant mix (who submits what, how often, under which SLO)
 * into a deterministic arrival schedule: inter-arrival gaps are
 * exponential (Poisson process) at a configured aggregate rate, tenants
 * are picked by weight, and everything derives from one seed — the same
 * seed always produces the same trace, which is what makes serve
 * experiments repeatable.
 *
 * The schedule is *open loop*: arrival times never depend on how fast
 * the server drains, so overload actually builds queues instead of the
 * generator politely backing off (the classic closed-loop measurement
 * mistake).
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "serve/server.hpp"

namespace bayes::serve {

/** One tenant in the mix: what it asks for and how often. */
struct TenantSpec
{
    std::string tenant;
    /** Suite workload name (see workloads::suiteNames()). */
    std::string workload;
    /** Dataset shrink factor in (0, 1]. */
    double dataScale = 1.0;
    /** Relative arrival weight within the mix (need not normalize). */
    double weight = 1.0;
    SloClass slo = SloClass::Standard;
    /** Deadline override; negative = the class default. */
    double deadlineSeconds = -1.0;
    /** Sampler configuration this tenant always submits. */
    samplers::Config config;
    QueryKind query = QueryKind::Summary;
};

/** Aggregate load shape. */
struct LoadConfig
{
    /** Poisson arrival rate across all tenants (requests/second). */
    double arrivalRatePerSecond = 20.0;
    /** Total requests to generate. */
    std::size_t requests = 1000;
    /** Trace seed: same seed, same mix -> identical schedule. */
    std::uint64_t seed = 20190331;
};

/** Deterministic open-loop Poisson arrival generator over a tenant mix. */
class LoadGenerator
{
  public:
    /**
     * @param config  aggregate rate / count / seed
     * @param mix     nonempty tenant mix; weights must be positive
     */
    LoadGenerator(LoadConfig config, std::vector<TenantSpec> mix);

    /**
     * Generate the full arrival trace, sorted by arrivalSeconds, ready
     * for Server::runSchedule(). Each call regenerates the identical
     * trace (the generator holds no consumed state).
     */
    std::vector<Request> schedule() const;

    const LoadConfig& config() const { return config_; }
    const std::vector<TenantSpec>& mix() const { return mix_; }

  private:
    LoadConfig config_;
    std::vector<TenantSpec> mix_;
};

/**
 * The stock six-tenant mix over the fused-kernel workloads (ad,
 * tickets, 12cities, disease, votes, survival) used by bench/serve_load
 * and the docs: two interactive tenants on the small logistic models,
 * three standard, one batch tenant pushing the heavier hierarchical
 * model. Sampler configs are deliberately small (MH/HMC, few hundred
 * iterations) so thousands of requests finish in bench time.
 */
std::vector<TenantSpec> defaultTenantMix();

} // namespace bayes::serve
