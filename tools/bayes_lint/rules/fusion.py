"""Kernel-fusion discipline: R007 (scalar lpdf loops), R008 (per-chain
gradient loops). Both reason about loop bodies via source.loop_regions.
"""

from __future__ import annotations

import re

from ..engine import rule
from ..source import Finding, in_dirs, loop_regions

R007_CALL = re.compile(r"\b([A-Za-z_]\w*)\s*\(")


@rule("R007", "no scalar *_lpdf/*_lpmf loops in src/workloads/")
def rule_r007(files, findings, _ctx):
    for sf in files:
        if not in_dirs(sf.relpath, "src/workloads"):
            continue
        text = "\n".join(sf.lines)
        regions = loop_regions(text)
        if not regions:
            continue
        for m in R007_CALL.finditer(text):
            name = m.group(1)
            if not name.endswith(("_lpdf", "_lpmf")):
                continue
            if "_glm_" in name:
                continue  # fused GLM kernels are the fix, not a finding
            if not any(s <= m.start() < e for s, e in regions):
                continue
            lineno = text.count("\n", 0, m.start()) + 1
            if not sf.waived(lineno, "R007"):
                findings.append(Finding(
                    sf.relpath, lineno, "R007",
                    f"scalar {name} in a loop builds one tape node per "
                    "observation; use a fused kernel from "
                    "src/math/vec_kernels.hpp (or waive a reference "
                    "scalar path with justification)"))


R008_CALL = re.compile(r"(?:\.|->)\s*logProbGrad\s*\(")


@rule("R008", "no per-chain logProbGrad loops outside src/samplers/")
def rule_r008(files, findings, _ctx):
    """Calling the K=1 gradient wrapper in a loop re-streams the observed
    data once per iteration — exactly the pattern the batched surface
    (Evaluator::logProbGradBatch) replaces. The sampler layer is exempt:
    its per-iteration loops are the Markov chains themselves and the
    batching there happens in the pooled executor."""
    for sf in files:
        if not in_dirs(sf.relpath, "src"):
            continue
        if in_dirs(sf.relpath, "src/samplers"):
            continue
        text = "\n".join(sf.lines)
        regions = loop_regions(text)
        if not regions:
            continue
        for m in R008_CALL.finditer(text):
            if not any(s <= m.start() < e for s, e in regions):
                continue
            lineno = text.count("\n", 0, m.start()) + 1
            if not sf.waived(lineno, "R008"):
                findings.append(Finding(
                    sf.relpath, lineno, "R008",
                    "logProbGrad in a loop streams the observed data once "
                    "per call; gather the points into a ppl::EvalBatch and "
                    "use Evaluator::logProbGradBatch (or waive with "
                    "justification)"))
