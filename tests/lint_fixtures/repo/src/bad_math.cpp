// Fixture: R002 — raw gamma-family calls outside src/math/special.hpp.
#include <cmath>

namespace fixture {
double a(double x) { return std::lgamma(x); }   // EXPECT: R002
double b(double x) { return tgamma(x); }        // EXPECT: R002
double c(double x)
{
    int sign = 0;
    return lgamma_r(x, &sign);                  // EXPECT: R002
}
double d(double x) { return lgammaf((float)x); }  // EXPECT: R002
// std::lgamma in a comment is not a finding.
const char* e() { return "std::lgamma( in a string is not a finding"; }
}  // namespace fixture
