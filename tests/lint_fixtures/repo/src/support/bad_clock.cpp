// Fixture: R012 — stray std::chrono clock reads outside the Clock
// seam (src/support/timer.hpp is the only file allowed to touch the
// std clocks directly; the fixture's own timer.hpp proves the
// allowlist).
#include <chrono>

namespace fixture {

double wallSeconds()
{
    const auto t = std::chrono::steady_clock::now();  // EXPECT: R012
    return std::chrono::duration<double>(t.time_since_epoch()).count();
}

double waivedWallSeconds()
{
    // bayes-lint: allow(R012): fixture: comparing raw clocks is this code's whole point
    const auto t = std::chrono::system_clock::now();
    return std::chrono::duration<double>(t.time_since_epoch()).count();
}

}  // namespace fixture
