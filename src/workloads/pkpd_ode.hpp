/**
 * @file
 * `ode` — Friberg-Karlsson semi-mechanistic myelosuppression model.
 *
 * After Margossian & Gillespie (2016): a proliferating-cell compartment
 * feeds a chain of transit compartments into circulating neutrophils;
 * drug concentration (a decaying exponential after a bolus dose)
 * suppresses proliferation. Parameters are inferred from noisy
 * neutrophil counts by integrating the nonlinear ODE system inside the
 * likelihood — gradients flow through the RK4 discretization.
 */
#pragma once

#include "workloads/workload.hpp"

namespace bayes::workloads {

/** PK/PD ordinary-differential-equation workload. */
class PkpdOde : public Workload
{
  public:
    explicit PkpdOde(double dataScale = 1.0);

    double logProb(const ppl::ParamView<double>& p) const override;
    ad::Var logProb(const ppl::ParamView<ad::Var>& p) const override;

    /** Observation times (days after dose). */
    const std::vector<double>& times() const { return times_; }

    /** Observed circulating neutrophil counts. */
    const std::vector<double>& observed() const { return observed_; }

    /** Parameter block indices. */
    enum Block : std::size_t
    {
        kMtt,    ///< mean transit time (days), > 0
        kCirc0,  ///< baseline circulating count, > 0
        kGamma,  ///< feedback exponent, > 0
        kSlope,  ///< linear drug effect, > 0
        kSigma,  ///< lognormal observation noise, > 0
    };

  private:
    template <typename T>
    T logDensity(const ppl::ParamView<T>& p) const;

    /** Solve the Friberg-Karlsson system at the observation times. */
    template <typename T>
    std::vector<T> solveCirc(const T& mtt, const T& circ0, const T& gamma,
                             const T& slope) const;

    std::vector<double> times_;
    std::vector<double> observed_;
    double dose_ = 80.0;  ///< bolus dose driving the PK input
    double ke_ = 0.50;    ///< drug elimination rate (1/day), known
};

} // namespace bayes::workloads
