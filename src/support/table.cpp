#include "support/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "support/error.hpp"

namespace bayes {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers))
{
    BAYES_CHECK(!headers_.empty(), "table requires at least one column");
}

Table&
Table::row()
{
    if (!rows_.empty()) {
        BAYES_CHECK(rows_.back().size() == headers_.size(),
                    "previous row has " << rows_.back().size()
                    << " cells, expected " << headers_.size());
    }
    rows_.emplace_back();
    return *this;
}

Table&
Table::cell(const std::string& value)
{
    BAYES_CHECK(!rows_.empty(), "call row() before cell()");
    BAYES_CHECK(rows_.back().size() < headers_.size(),
                "row already has " << headers_.size() << " cells");
    rows_.back().push_back(value);
    return *this;
}

Table&
Table::cell(double value, int precision)
{
    return cell(formatFixed(value, precision));
}

Table&
Table::cell(long value)
{
    return cell(std::to_string(value));
}

std::string
Table::str() const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto& row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    std::ostringstream os;
    auto emit = [&](const std::vector<std::string>& cells) {
        for (std::size_t c = 0; c < headers_.size(); ++c) {
            const std::string& text = c < cells.size() ? cells[c] : "";
            os << "  " << text
               << std::string(widths[c] - text.size(), ' ');
        }
        os << '\n';
    };
    emit(headers_);
    std::size_t total = 2;
    for (std::size_t w : widths)
        total += w + 2;
    os << std::string(total, '-') << '\n';
    for (const auto& row : rows_)
        emit(row);
    return os.str();
}

std::string
Table::csv() const
{
    auto quoteIfNeeded = [](const std::string& s) {
        if (s.find_first_of(",\"\n") == std::string::npos)
            return s;
        std::string out = "\"";
        for (char ch : s) {
            if (ch == '"')
                out += '"';
            out += ch;
        }
        out += '"';
        return out;
    };
    std::ostringstream os;
    for (std::size_t c = 0; c < headers_.size(); ++c)
        os << (c ? "," : "") << quoteIfNeeded(headers_[c]);
    os << '\n';
    for (const auto& row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c)
            os << (c ? "," : "") << quoteIfNeeded(row[c]);
        os << '\n';
    }
    return os.str();
}

std::string
formatFixed(double value, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
    return buf;
}

void
printSection(const std::string& title, const Table& table)
{
    std::printf("\n== %s ==\n%s\n[csv]\n%s[/csv]\n",
                title.c_str(), table.str().c_str(), table.csv().c_str());
}

} // namespace bayes
