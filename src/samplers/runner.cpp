#include "samplers/runner.hpp"

#include <cmath>
#include <future>
#include <memory>
#include <sstream>
#include <utility>

#include "obs/obs.hpp"
#include "samplers/dual_averaging.hpp"
#include "samplers/hmc.hpp"
#include "samplers/mh.hpp"
#include "samplers/prefetch.hpp"
#include "samplers/nuts.hpp"
#include "samplers/slice.hpp"
#include "support/stats.hpp"
#include "support/thread_pool.hpp"
#include "support/timer.hpp"

namespace bayes::samplers {
namespace {

/** Run-level telemetry (catalogued in docs/observability.md). */
struct RunnerMetrics
{
    obs::Counter& runs = obs::Registry::global().counter("sampler.runs");
    obs::Counter& chains = obs::Registry::global().counter("sampler.chains");
    obs::Counter& iterations =
        obs::Registry::global().counter("sampler.iterations");
    obs::Counter& gradEvals =
        obs::Registry::global().counter("sampler.grad_evals");
    obs::Counter& divergences =
        obs::Registry::global().counter("sampler.divergences");
    obs::Histogram& roundSeconds =
        obs::Registry::global().histogram("sampler.round_seconds");

    static RunnerMetrics& get()
    {
        static RunnerMetrics* m = new RunnerMetrics; // leaked, like Registry
        return *m;
    }
};

/** Everything one chain needs to advance independently. */
class ChainState
{
  public:
    ChainState(const ppl::Model& model, const Config& config, Rng rng)
        : config_(config), eval_(model), ham_(eval_), rng_(rng),
          nuts_(ham_, config.maxTreeDepth),
          hmc_(ham_, config.hmcLeapfrogSteps), mh_(eval_), slice_(eval_)
    {
        z_.q = findInitialPoint(eval_, rng_, config.seed);
        ham_.refresh(z_);
        if (config_.algorithm == Algorithm::Nuts
            || config_.algorithm == Algorithm::Hmc) {
            const double eps = ham_.findReasonableStepSize(z_, rng_);
            da_ = std::make_unique<DualAveraging>(eps, config.targetAccept);
            setStepSize(eps);
        }
        welford_.assign(eval_.dim(), RunningStats{});
    }

    /** Run one warmup iteration with adaptation. */
    void
    warmupIteration(int t)
    {
        const int warmup = config_.resolvedWarmup();
        const int phase1End = std::max(1, warmup * 15 / 100);
        const int phase2End = std::max(phase1End + 1, warmup * 90 / 100);

        const double acceptStat = advance();

        if (config_.algorithm == Algorithm::Mh) {
            mh_.adaptScale(acceptStat);
            return;
        }
        if (config_.algorithm == Algorithm::Slice) {
            // The stepping-out procedure self-scales to the slice, so
            // the default unit width needs no warmup adaptation; use
            // SliceSampler::tuneWidths directly for custom schedules.
            return;
        }

        da_->update(acceptStat);
        setStepSize(da_->stepSize());

        if (t >= phase1End && t < phase2End) {
            for (std::size_t i = 0; i < z_.q.size(); ++i)
                welford_[i].add(z_.q[i]);
        }
        if (config_.adaptMetric && t + 1 == phase2End
            && welford_[0].count() >= 10) {
            std::vector<double> invMetric(z_.q.size());
            // Regularized variance estimate (Stan's shrinkage prior).
            const double n = static_cast<double>(welford_[0].count());
            for (std::size_t i = 0; i < invMetric.size(); ++i) {
                invMetric[i] = (n / (n + 5.0)) * welford_[i].variance()
                    + 1e-3 * (5.0 / (n + 5.0));
            }
            ham_.setInvMetric(std::move(invMetric));
            ham_.refresh(z_);
            const double eps = ham_.findReasonableStepSize(z_, rng_);
            da_->restart(eps);
            setStepSize(eps);
        }
        if (t + 1 == warmup) {
            setStepSize(da_->adaptedStepSize());
            result.stepSize = da_->adaptedStepSize();
        }
    }

    /** Run one post-warmup iteration and record the draw. */
    void
    sampleIteration()
    {
        const double acceptStat = advance();
        finishIteration(IterationStat{}, acceptStat, /*record=*/false);
    }

    // -- Batched round protocol (HMC/MH under the phased executor) ----
    // Each round the executor opens every chain's transition, gathers
    // the pending points into one EvalBatch, and delivers the shared
    // evaluation back — the chain's RNG stream and floating-point
    // sequence are exactly those of sampleIteration().

    /** Open one MH iteration: draw the proposal to be evaluated. */
    void mhBegin() { mh_.propose(z_.q, rng_, proposal_); }

    /** Proposal point awaiting its (batched) density. */
    const std::vector<double>& pendingProposal() const { return proposal_; }

    /** Close the MH iteration with the batched density and record. */
    void
    mhFinish(double proposalLogProb)
    {
        const MhTransition t =
            mh_.finish(z_.q, z_.logProb, proposal_, proposalLogProb, rng_);
        finishIteration(IterationStat{0, 0, false}, t.acceptProb);
    }

    /** Open one HMC iteration: refresh momentum, start the trajectory. */
    void hmcBegin() { hmc_.begin(z_, rng_, phase_); }

    /**
     * Advance to the trajectory's next pending position. Returns false
     * when the trajectory needs no more gradient evaluations.
     */
    bool hmcPrepare() { return hmc_.prepareStep(phase_); }

    /** Trajectory position awaiting its (batched) gradient. */
    const std::vector<double>& pendingPosition() const
    {
        return phase_.trial.q;
    }

    /** Deliver the batched evaluation at the pending position. */
    void
    hmcApplyEval(double logProb, std::span<const double> grad)
    {
        hmc_.applyEval(phase_, logProb, grad);
        ++extGradEvals_;
    }

    // -- Speculation fork points (samplers::prefetch) -----------------
    // Called by the batched executor after mhBegin()/hmcBegin(): both
    // hand a replicaFork() of the chain's stream — taken past the
    // pending proposal's draws — to the kernel's speculation hook, so
    // the candidate points are the bit-exact futures of this chain.

    /** Issue the depth-d MH accept/reject tree below the pending
        proposal into @p ledger. */
    void
    mhSpeculate(int depth, prefetch::Ledger& ledger,
                std::vector<prefetch::SpecLane>& lanes)
    {
        mh_.speculate(z_.q, proposal_, rng_.replicaFork(), depth, ledger,
                      lanes);
    }

    /** Issue the predicted reject-branch first position of the next
        HMC iteration into @p ledger. */
    void
    hmcSpeculate(prefetch::Ledger& ledger,
                 std::vector<prefetch::SpecLane>& lanes)
    {
        std::vector<double> point;
        hmc_.speculateRejectBranch(z_, rng_.replicaFork(), point);
        lanes.push_back(
            prefetch::SpecLane{&ledger, ledger.issue(std::move(point))});
    }

    /** Close the HMC iteration (accept/reject) and record the draw. */
    void
    hmcFinish()
    {
        const HmcTransition t = hmc_.finish(z_, phase_, rng_);
        finishIteration(
            IterationStat{
                t.gradEvals,
                static_cast<std::uint16_t>(config_.hmcLeapfrogSteps),
                t.divergent},
            t.acceptStat);
    }

    /** Gradient evaluations consumed so far (work counter). */
    std::uint64_t
    gradEvals() const
    {
        return eval_.numGradEvals() + extGradEvals_;
    }

    /** Finalize summary statistics. */
    void
    finish()
    {
        result.acceptRate = acceptAccum_.mean();
        result.totalGradEvals = eval_.numGradEvals() + extGradEvals_;
        result.tapeNodesPerEval = eval_.lastTapeNodes();
    }

    ChainResult result;

  private:
    /**
     * Record one post-warmup iteration: the iteration stat and
     * divergence count (when @p record — advance() already recorded
     * them for the unbatched path), the acceptance statistic, and the
     * constrained draw with its log density.
     */
    void
    finishIteration(IterationStat stat, double acceptStat,
                    bool record = true)
    {
        if (record) {
            if (stat.divergent && !result.draws.empty())
                ++result.divergences;
            result.iterStats.push_back(stat);
        }
        acceptAccum_.add(acceptStat);
        result.draws.push_back(eval_.constrain(z_.q));
        result.logProbs.push_back(z_.logProb);
    }

    /** One transition of the configured kernel; returns accept stat. */
    double
    advance()
    {
        IterationStat stat{0, 0, false};
        double acceptStat = 0.0;
        switch (config_.algorithm) {
          case Algorithm::Nuts: {
              const NutsTransition t = nuts_.transition(z_, rng_);
              stat.gradEvals = t.gradEvals;
              stat.treeDepth = t.depth;
              stat.divergent = t.divergent;
              acceptStat = t.acceptStat;
              break;
          }
          case Algorithm::Hmc: {
              const HmcTransition t = hmc_.transition(z_, rng_);
              stat.gradEvals = t.gradEvals;
              stat.treeDepth =
                  static_cast<std::uint16_t>(config_.hmcLeapfrogSteps);
              stat.divergent = t.divergent;
              acceptStat = t.acceptStat;
              break;
          }
          case Algorithm::Mh: {
              const MhTransition t = mh_.transition(z_.q, z_.logProb, rng_);
              acceptStat = t.acceptProb;
              break;
          }
          case Algorithm::Slice: {
              const SliceTransition t = slice_.sweep(z_.q, z_.logProb, rng_);
              // Density evaluations are the slice sampler's work unit.
              stat.gradEvals = t.evals;
              // Report evals per coordinate (used for width tuning).
              acceptStat = static_cast<double>(t.evals)
                  / static_cast<double>(z_.q.size());
              break;
          }
        }
        if (stat.divergent && !result.draws.empty())
            ++result.divergences;
        result.iterStats.push_back(stat);
        return acceptStat;
    }

    void
    setStepSize(double eps)
    {
        nuts_.setStepSize(eps);
        hmc_.setStepSize(eps);
    }

    const Config& config_;
    ppl::Evaluator eval_;
    Hamiltonian ham_;
    Rng rng_;
    NutsSampler nuts_;
    HmcSampler hmc_;
    MhSampler mh_;
    SliceSampler slice_;
    PhasePoint z_;
    std::unique_ptr<DualAveraging> da_;
    std::vector<RunningStats> welford_;
    RunningStats acceptAccum_;
    HmcPhase phase_;               ///< in-flight batched HMC transition
    std::vector<double> proposal_; ///< in-flight batched MH proposal
    std::uint64_t extGradEvals_ = 0; ///< evals served by a shared batch
};

using States = std::vector<std::unique_ptr<ChainState>>;

/** Finalize every chain, roll its work into the metrics, hand over. */
RunResult
collect(States& states)
{
    RunnerMetrics& metrics = RunnerMetrics::get();
    RunResult out;
    out.chains.resize(states.size());
    for (std::size_t c = 0; c < states.size(); ++c) {
        states[c]->finish();
        out.chains[c] = std::move(states[c]->result);
        metrics.chains.add();
        metrics.iterations.add(out.chains[c].iterStats.size());
        metrics.gradEvals.add(out.chains[c].totalGradEvals);
        metrics.divergences.add(out.chains[c].divergences);
    }
    return out;
}

/**
 * Expose the synchronized state to the monitor. Every chain is parked
 * (sequential round done, or all workers at the barrier), so the draw
 * storage can be moved into the context view and back without copying.
 */
MonitorAction
askMonitor(const IterationMonitor& monitor, int round, States& states,
           std::vector<ChainResult>& view,
           std::vector<std::uint64_t>& gradEvals, const Timer& wall)
{
    obs::Span span("sampler.monitor");
    for (std::size_t c = 0; c < states.size(); ++c) {
        view[c] = std::move(states[c]->result);
        gradEvals[c] = states[c]->gradEvals();
    }
    const MonitorContext context{round, view, wall.seconds(), gradEvals};
    const MonitorAction action = monitor(context);
    for (std::size_t c = 0; c < states.size(); ++c)
        states[c]->result = std::move(view[c]);
    return action;
}

/** Lockstep schedule on the calling thread. */
RunResult
runSequential(States& states, int warmup, int sampling,
              const IterationMonitor& monitor, const Timer& wall)
{
    {
        obs::Span span("sampler.warmup");
        for (int t = 0; t < warmup; ++t)
            for (auto& chain : states)
                chain->warmupIteration(t);
    }

    std::vector<ChainResult> view(states.size());
    std::vector<std::uint64_t> gradEvals(states.size());
    for (int t = 0; t < sampling; ++t) {
        Timer round;
        {
            obs::Span span("sampler.round");
            for (auto& chain : states)
                chain->sampleIteration();
        }
        if (!monitor)
            continue;
        RunnerMetrics::get().roundSeconds.observe(round.seconds());
        if (askMonitor(monitor, t + 1, states, view, gradEvals, wall)
            == MonitorAction::Stop)
            break;
    }
    return collect(states);
}

/** No monitor: every chain free-runs its whole schedule as one task. */
RunResult
runFreeRunning(support::ThreadPool& pool, States& states, int warmup,
               int sampling)
{
    std::vector<std::future<void>> futures;
    futures.reserve(states.size());
    for (auto& chain : states) {
        futures.push_back(pool.submit([&chain, warmup, sampling] {
            {
                obs::Span span("chain.warmup");
                for (int t = 0; t < warmup; ++t)
                    chain->warmupIteration(t);
            }
            obs::Span span("chain.sample");
            for (int t = 0; t < sampling; ++t)
                chain->sampleIteration();
        }));
    }
    support::waitAll(futures);
    return collect(states);
}

/**
 * Phased barrier schedule: chains advance one round in parallel, the
 * round's futures act as the barrier, the monitor decides on the
 * calling thread, and the decision is broadcast by either submitting
 * the next round or collecting. Warmup free-runs (no monitor fires
 * before the first post-warmup round).
 */
RunResult
runPhased(support::ThreadPool& pool, States& states, int warmup,
          int sampling, const IterationMonitor& monitor, const Timer& wall)
{
    std::vector<std::future<void>> futures;
    futures.reserve(states.size());
    {
        obs::Span span("sampler.warmup");
        for (auto& chain : states) {
            futures.push_back(pool.submit([&chain, warmup] {
                obs::Span chainSpan("chain.warmup");
                for (int t = 0; t < warmup; ++t)
                    chain->warmupIteration(t);
            }));
        }
        support::waitAll(futures);
    }

    std::vector<ChainResult> view(states.size());
    std::vector<std::uint64_t> gradEvals(states.size());
    for (int t = 0; t < sampling; ++t) {
        Timer round;
        {
            obs::Span span("sampler.round");
            for (auto& chain : states)
                futures.push_back(pool.submit([&chain] {
                    obs::Span chainSpan("chain.round");
                    chain->sampleIteration();
                }));
            support::waitAll(futures); // the barrier
        }
        RunnerMetrics::get().roundSeconds.observe(round.seconds());
        if (askMonitor(monitor, t + 1, states, view, gradEvals, wall)
            == MonitorAction::Stop)
            break;
    }
    return collect(states);
}

/** Batched-round telemetry (catalogued in docs/observability.md). */
struct BatchMetrics
{
    obs::Gauge& dataPassesPerRound =
        obs::Registry::global().gauge("eval.data_passes_per_round");

    static BatchMetrics& get()
    {
        static BatchMetrics* m = new BatchMetrics; // leaked, like Registry
        return *m;
    }
};

/**
 * Phased barrier schedule with batched evaluation: warmup free-runs on
 * the pool, then each sampling round gathers every chain's pending
 * point into one EvalBatch and evaluates them against the shared data
 * in a single pass (HMC gathers once per leapfrog step, shrinking as
 * trajectories finish early). Per-chain RNG streams are consumed in
 * exactly the unbatched order, so draws are byte-identical to the
 * sequential schedule — the executor only changes who performs the
 * evaluation, not what is evaluated.
 *
 * With Config::speculationDepth > 0 the rounds also carry speculative
 * lanes (samplers::prefetch): each chain's predicted future points
 * ride the same shared-data pass, and a chain whose next pending point
 * byte-matches a cached entry commits the cached results through the
 * identical apply path instead of occupying a mandatory lane. For MH
 * the full depth-d accept/reject tree is planned on every miss, so in
 * steady state one evaluation pass serves d+1 rounds (the d successor
 * rounds resolve entirely from cache and skip their pass); for HMC the
 * predictable branch is the next iteration's reject-side first
 * leapfrog position, which fills otherwise-idle lanes of the round's
 * first pass. Monitor cadence is untouched — every chain still
 * advances exactly one iteration per round — so stop decisions stay
 * byte-identical too.
 */
RunResult
runBatchedPhased(support::ThreadPool& pool, const ppl::Model& model,
                 States& states, int warmup, int sampling,
                 const IterationMonitor& monitor, const Timer& wall,
                 const Config& config)
{
    {
        obs::Span span("sampler.warmup");
        std::vector<std::future<void>> futures;
        futures.reserve(states.size());
        for (auto& chain : states) {
            futures.push_back(pool.submit([&chain, warmup] {
                obs::Span chainSpan("chain.warmup");
                for (int t = 0; t < warmup; ++t)
                    chain->warmupIteration(t);
            }));
        }
        support::waitAll(futures);
    }

    ppl::Evaluator sharedEval(model);
    const std::size_t dim = sharedEval.dim();
    const int depth = config.speculationDepth;
    ppl::EvalBatch batch;
    ppl::EvalBatch grads;
    std::vector<double> lp;
    std::vector<double> laneGrad;
    std::vector<ChainState*> pending;
    pending.reserve(states.size());
    std::vector<prefetch::Ledger> ledgers(depth > 0 ? states.size() : 0);
    std::vector<prefetch::SpecLane> specLanes;
    std::vector<const std::vector<double>*> lanePoints;
    std::vector<std::size_t> mandatory;
    std::vector<double> mhPendingLp(states.size());

    std::vector<ChainResult> view(states.size());
    std::vector<std::uint64_t> gradEvals(states.size());
    for (int t = 0; t < sampling; ++t) {
        Timer round;
        std::uint64_t passes = 0;
        {
            obs::Span span("sampler.round");
            if (config.algorithm == Algorithm::Mh) {
                // Open every chain and try to serve its pending
                // proposal from the speculation ledger; misses become
                // mandatory lanes and trigger a fresh depth-d plan.
                mandatory.clear();
                specLanes.clear();
                for (std::size_t c = 0; c < states.size(); ++c) {
                    states[c]->mhBegin();
                    const prefetch::CachedEval* hit = depth > 0
                        ? ledgers[c].commit(states[c]->pendingProposal())
                        : nullptr;
                    if (hit)
                        mhPendingLp[c] = hit->logProb;
                    else
                        mandatory.push_back(c);
                }
                for (const std::size_t c : mandatory) {
                    if (depth <= 0)
                        continue;
                    ledgers[c].abort();
                    states[c]->mhSpeculate(depth, ledgers[c], specLanes);
                }
                lanePoints.clear();
                for (const std::size_t c : mandatory)
                    lanePoints.push_back(&states[c]->pendingProposal());
                for (const auto& s : specLanes)
                    lanePoints.push_back(&s.ledger->entry(s.entry).point);
                if (!lanePoints.empty()) {
                    batch.assignPoints(dim, lanePoints);
                    lp.resize(lanePoints.size());
                    sharedEval.logProbBatch(batch, lp);
                    ++passes;
                    std::size_t l = 0;
                    for (const std::size_t c : mandatory)
                        mhPendingLp[c] = lp[l++];
                    for (const auto& s : specLanes)
                        s.ledger->entry(s.entry).logProb = lp[l++];
                }
                for (std::size_t c = 0; c < states.size(); ++c)
                    states[c]->mhFinish(mhPendingLp[c]);
            } else {
                for (auto& chain : states)
                    chain->hmcBegin();
                bool firstPass = true;
                for (;;) {
                    pending.clear();
                    specLanes.clear();
                    for (std::size_t c = 0; c < states.size(); ++c) {
                        // A cache hit advances the step in place and
                        // the chain immediately prepares its next one,
                        // all within the same gather.
                        while (states[c]->hmcPrepare()) {
                            const prefetch::CachedEval* hit = depth > 0
                                ? ledgers[c].commit(
                                      states[c]->pendingPosition())
                                : nullptr;
                            if (!hit) {
                                pending.push_back(states[c].get());
                                break;
                            }
                            states[c]->hmcApplyEval(hit->logProb,
                                                    hit->grad);
                        }
                    }
                    if (depth > 0 && firstPass) {
                        // Stale predictions (the chain accepted) are
                        // waste; reissue next-iteration predictions
                        // into this round's first pass.
                        for (std::size_t c = 0; c < states.size(); ++c) {
                            ledgers[c].abort();
                            states[c]->hmcSpeculate(ledgers[c], specLanes);
                        }
                    }
                    firstPass = false;
                    if (pending.empty() && specLanes.empty())
                        break;
                    lanePoints.clear();
                    for (const ChainState* chain : pending)
                        lanePoints.push_back(&chain->pendingPosition());
                    for (const auto& s : specLanes)
                        lanePoints.push_back(
                            &s.ledger->entry(s.entry).point);
                    batch.assignPoints(dim, lanePoints);
                    lp.resize(lanePoints.size());
                    sharedEval.logProbGradBatch(batch, lp, grads);
                    ++passes;
                    for (std::size_t l = 0; l < pending.size(); ++l) {
                        grads.getPoint(l, laneGrad);
                        pending[l]->hmcApplyEval(lp[l], laneGrad);
                    }
                    for (std::size_t i = 0; i < specLanes.size(); ++i) {
                        prefetch::CachedEval& e =
                            specLanes[i].ledger->entry(specLanes[i].entry);
                        const std::size_t l = pending.size() + i;
                        e.logProb = lp[l];
                        grads.getPoint(l, e.grad);
                    }
                }
                for (auto& chain : states)
                    chain->hmcFinish();
            }
        }
        BatchMetrics::get().dataPassesPerRound.set(
            static_cast<double>(passes));
        RunnerMetrics::get().roundSeconds.observe(round.seconds());
        if (monitor
            && askMonitor(monitor, t + 1, states, view, gradEvals, wall)
                == MonitorAction::Stop)
            break;
    }
    // Entries still in flight when the run ends (or stops early) were
    // never realized: account them as waste so hits + wasted == issued
    // holds over any run.
    for (auto& ledger : ledgers)
        ledger.abort();
    return collect(states);
}

} // namespace

std::vector<double>
findInitialPoint(ppl::Evaluator& eval, Rng& rng, std::uint64_t seed)
{
    double lastBadLogProb = -INFINITY;
    for (int attempt = 0; attempt < 100; ++attempt) {
        std::vector<double> q(eval.dim());
        for (double& qi : q)
            qi = rng.uniform(-2.0, 2.0);
        std::vector<double> grad;
        const double lp = eval.logProbGrad(q, grad);
        bool gradFinite = std::isfinite(lp);
        for (double g : grad)
            gradFinite = gradFinite && std::isfinite(g);
        if (gradFinite)
            return q;
        if (!std::isfinite(lp))
            lastBadLogProb = lp;
    }
    std::ostringstream os;
    os << "model '" << eval.model().name()
       << "': no finite-density initial point in 100 attempts (seed " << seed
       << ", last non-finite log-density " << lastBadLogProb << ")";
    throw Error(os.str());
}

RunResult
run(const ppl::Model& model, const Config& config,
    const IterationMonitor& monitor)
{
    BAYES_CHECK(config.chains >= 1, "need at least one chain");
    BAYES_CHECK(config.iterations > config.resolvedWarmup(),
                "iterations must exceed warmup");
    BAYES_CHECK(config.execution.workers >= 0,
                "pool worker count must be >= 0, got "
                    << config.execution.workers);
    // The MH speculation tree issues 2^(d+1)-2 lanes per chain; cap the
    // depth where the tree would dwarf any realistic batch width.
    BAYES_CHECK(config.speculationDepth >= 0 && config.speculationDepth <= 8,
                "speculation depth must be in [0, 8], got "
                    << config.speculationDepth);

    obs::Span runSpan("sampler.run");
    RunnerMetrics::get().runs.add();
    const Timer wall;
    Rng master(config.seed);
    States states;
    states.reserve(config.chains);
    for (int c = 0; c < config.chains; ++c)
        states.push_back(
            std::make_unique<ChainState>(model, config, master.fork()));

    const int warmup = config.resolvedWarmup();
    const int sampling = config.iterations - warmup;

    switch (config.execution.mode) {
      case ExecutionMode::Sequential:
        return runSequential(states, warmup, sampling, monitor, wall);
      case ExecutionMode::ThreadPerChain: {
          support::ThreadPool perRun(config.chains);
          return monitor
              ? runPhased(perRun, states, warmup, sampling, monitor, wall)
              : runFreeRunning(perRun, states, warmup, sampling);
      }
      case ExecutionMode::Pool: {
          auto& pool = support::sharedPool(config.execution.workers);
          // Pool mode is where chains share data and a schedule, so it
          // is where batched evaluation pays: HMC/MH rounds gather all
          // chains' pending points into one EvalBatch. NUTS/Slice keep
          // per-chain evaluation (their evaluation schedule is
          // data-dependent per chain).
          if (config.batchEval && config.chains > 1
              && (config.algorithm == Algorithm::Hmc
                  || config.algorithm == Algorithm::Mh)) {
              return runBatchedPhased(pool, model, states, warmup,
                                      sampling, monitor, wall, config);
          }
          return monitor
              ? runPhased(pool, states, warmup, sampling, monitor, wall)
              : runFreeRunning(pool, states, warmup, sampling);
      }
    }
    BAYES_ASSERT(!"unreachable execution mode");
    return {};
}

DeadlineRunResult
runWithDeadline(const ppl::Model& model, const Config& config,
                double deadlineSeconds, const IterationMonitor& monitor)
{
    DeadlineRunResult out;
    const Timer wall;
    if (std::isinf(deadlineSeconds) && deadlineSeconds > 0.0) {
        out.run = run(model, config, monitor);
        out.elapsedSeconds = wall.seconds();
        return out;
    }
    bool expired = false;
    const IterationMonitor deadlineMonitor =
        [&](const MonitorContext& ctx) -> MonitorAction {
        if (ctx.elapsedSeconds >= deadlineSeconds) {
            // Only a premature stop counts as expiry: the final round
            // of a run that just fits its budget is not a miss.
            expired = ctx.round < config.postWarmup();
            return MonitorAction::Stop;
        }
        return monitor ? monitor(ctx) : MonitorAction::Continue;
    };
    out.run = run(model, config, deadlineMonitor);
    out.expired = expired;
    out.elapsedSeconds = wall.seconds();
    return out;
}

} // namespace bayes::samplers
