"""R011: every mutex member in src/ is referenced by a thread-safety
annotation.

The repo compiles with clang's `-Wthread-safety` as an error, but the
analysis is opt-in per declaration: an unannotated mutex silently gets
zero checking. This rule closes that hole statically — every
`std::mutex` family or `support::Mutex` member must appear in at least
one `BAYES_*` annotation argument in the same file (usually
`BAYES_GUARDED_BY(<member>)` on the state it guards), or carry a
justified waiver. See src/support/thread_safety.hpp.
"""

from __future__ import annotations

import re

from ..engine import rule
from ..source import Finding, in_dirs

# Member/variable declarations of lockable types. Deliberately narrow:
# qualified std mutexes, or the annotated support::Mutex wrapper (bare or
# qualified). `MutexLock`, references, and template arguments do not
# match (no `<type> <name> ;/={` shape).
MUTEX_DECL = re.compile(
    r"\b(?:std\s*::\s*"
    r"(?:recursive_|shared_|timed_|recursive_timed_|shared_timed_)?mutex"
    r"|(?:(?:bayes\s*::\s*)?support\s*::\s*)?Mutex)"
    r"\s+(\w+)\s*[;={]")

BAYES_ANNOT = re.compile(
    r"\bBAYES_(?:GUARDED_BY|PT_GUARDED_BY|REQUIRES|REQUIRES_SHARED"
    r"|ACQUIRE|ACQUIRE_SHARED|RELEASE|RELEASE_SHARED|TRY_ACQUIRE"
    r"|EXCLUDES|RETURN_CAPABILITY)\s*\(([^)]*)\)")


@rule("R011", "every mutex member in src/ is covered by a BAYES_* "
              "annotation")
def rule_r011(files, findings, _ctx):
    for sf in files:
        if not in_dirs(sf.relpath, "src"):
            continue
        text = "\n".join(sf.lines)
        declared = [(m.group(1), text.count("\n", 0, m.start()) + 1)
                    for m in MUTEX_DECL.finditer(text)]
        if not declared:
            continue
        referenced = set()
        for m in BAYES_ANNOT.finditer(text):
            referenced.update(re.findall(r"\w+", m.group(1)))
        for name, lineno in declared:
            if name in referenced:
                continue
            if not sf.waived(lineno, "R011"):
                findings.append(Finding(
                    sf.relpath, lineno, "R011",
                    f"mutex '{name}' is referenced by no thread-safety "
                    "annotation; clang's analysis checks nothing for it. "
                    f"Mark the guarded state BAYES_GUARDED_BY({name}) "
                    "(src/support/thread_safety.hpp) or waive with "
                    "justification"))
