"""R010: the src/ include graph is acyclic and matches the layer manifest.

The manifest lives in docs/architecture.md, next to the human-readable
layer diagram, inside a fenced block:

    ```bayes-layers
    freestanding: support/thread_safety.hpp support/timer.hpp
    obs:
    support: obs
    ppl: ad math obs support
    ```

One line per layer (`layer: allowed-dependency layers...`), plus a
`freestanding:` line naming leaf headers (src-relative) that any layer
may include without creating a layer edge. `#`-comment lines and
`<!-- ... -->` HTML comments are stripped before parsing.

Drift is checked both ways, like R004: a src/ include edge not allowed by
the manifest is a finding at the include site, and a manifest edge (or
layer) with no counterpart in src/ is a finding at the manifest line.
Cycle detection over the file-level include graph runs even without a
manifest. Manifest-line findings are waivable with an HTML-comment
waiver on (or directly above) the line; a waiver without justification
does not suppress.
"""

from __future__ import annotations

import os
import re

from ..engine import rule
from ..source import Finding, in_dirs, parse_waiver_line

INCLUDE_PROBE = re.compile(r'^\s*#\s*include\s*"')
INCLUDE_RE = re.compile(r'^\s*#\s*include\s*"([^"]+)"')
FENCE_OPEN = re.compile(r"^```bayes-layers\s*$")
FENCE_CLOSE = re.compile(r"^```\s*$")
HTML_COMMENT = re.compile(r"<!--.*?-->")


class Manifest:
    __slots__ = ("layers", "freestanding", "waivers", "found")

    def __init__(self):
        self.layers = {}        # layer -> (deps set, doc lineno)
        self.freestanding = {}  # src-relative header path -> doc lineno
        self.waivers = {}       # doc lineno -> (rule ids, justification)
        self.found = False

    def waived(self, lineno, rule_id):
        for wline in (lineno, lineno - 1):
            w = self.waivers.get(wline)
            if w and rule_id in w[0] and w[1]:
                return True
        return False


def parse_manifest(doc_path, findings, doc_rel):
    manifest = Manifest()
    try:
        with open(doc_path, encoding="utf-8") as f:
            doc_lines = f.read().splitlines()
    except OSError:
        return manifest
    in_block = False
    for lineno, raw in enumerate(doc_lines, 1):
        w = parse_waiver_line(raw)
        if w:
            manifest.waivers[lineno] = w
        if not in_block:
            if FENCE_OPEN.match(raw):
                in_block = True
                manifest.found = True
            continue
        if FENCE_CLOSE.match(raw):
            in_block = False
            continue
        line = HTML_COMMENT.sub("", raw).strip()
        if not line or line.startswith("#"):
            continue
        if ":" not in line:
            findings.append(Finding(
                doc_rel, lineno, "R010",
                f"malformed manifest line '{line}'; expected "
                "'layer: dep dep...' or 'freestanding: path...'"))
            continue
        head, _, tail = line.partition(":")
        head = head.strip()
        items = tail.split()
        if head == "freestanding":
            for path in items:
                manifest.freestanding[path] = lineno
        elif head in manifest.layers:
            findings.append(Finding(
                doc_rel, lineno, "R010",
                f"duplicate manifest entry for layer '{head}'"))
        else:
            manifest.layers[head] = (set(items), lineno)
    return manifest


def layer_of(relpath):
    """'src/obs/x.hpp' -> 'obs'; files directly under src/ have no layer."""
    parts = relpath.split("/")
    return parts[1] if len(parts) > 2 else None


def build_graph(files):
    """File-level include graph over src/: {relpath: [(target, lineno)]}.

    Project includes are quoted and src-rooted (`-I src`); targets that
    resolve to no scanned src/ file (system or generated headers) are
    ignored. Include paths are read from the raw line because the
    stripped text blanks string literals.
    """
    src_files = {sf.relpath: sf for sf in files if in_dirs(sf.relpath, "src")}
    adj = {}
    for rel, sf in src_files.items():
        edges = []
        for lineno, line in enumerate(sf.lines, 1):
            if not INCLUDE_PROBE.match(line):
                continue
            m = INCLUDE_RE.match(sf.raw_lines[lineno - 1])
            if not m:
                continue
            target = "src/" + m.group(1)
            if target in src_files:
                edges.append((target, lineno))
        adj[rel] = edges
    return src_files, adj


def find_cycles(src_files, adj, findings):
    """DFS back-edge detection; one finding per back-edge, reported at
    the include line that closes the cycle."""
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {rel: WHITE for rel in adj}
    stack = []

    def visit(node):
        color[node] = GRAY
        stack.append(node)
        for target, lineno in adj[node]:
            if color[target] == GRAY:
                cycle = stack[stack.index(target):] + [target]
                if not src_files[node].waived(lineno, "R010"):
                    findings.append(Finding(
                        node, lineno, "R010",
                        "include cycle: " + " -> ".join(cycle)
                        + "; break the cycle (hoist the shared piece into "
                        "a lower layer or a freestanding header)"))
            elif color[target] == WHITE:
                visit(target)
        stack.pop()
        color[node] = BLACK

    for rel in sorted(adj):
        if color[rel] == WHITE:
            visit(rel)


@rule("R010", "src/ include graph is acyclic and obeys the layer manifest")
def rule_r010(files, findings, ctx):
    src_files, adj = build_graph(files)
    find_cycles(src_files, adj, findings)

    doc_path = ctx["arch_doc"]
    doc_rel = os.path.relpath(doc_path, ctx["root"]).replace(os.sep, "/")
    manifest = parse_manifest(doc_path, findings, doc_rel)
    if not manifest.found:
        return  # tree has no layer manifest; layering is unchecked

    # Freestanding headers must exist and must be leaves: including any
    # src/ header would smuggle a hidden layer edge through them.
    for path, lineno in sorted(manifest.freestanding.items()):
        rel = "src/" + path
        if rel not in src_files:
            if not manifest.waived(lineno, "R010"):
                findings.append(Finding(
                    doc_rel, lineno, "R010",
                    f"freestanding header '{path}' does not exist "
                    "under src/"))
            continue
        for target, inc_line in adj[rel]:
            if not src_files[rel].waived(inc_line, "R010"):
                findings.append(Finding(
                    rel, inc_line, "R010",
                    f"freestanding header includes '{target}'; "
                    "freestanding headers must be leaves (no src/ "
                    "includes)"))

    # Forward pass: every cross-layer edge in src/ must be allowed.
    present_layers = {}  # layer -> first file relpath (sorted order)
    for rel in sorted(src_files):
        layer = layer_of(rel)
        if layer is not None:
            present_layers.setdefault(layer, rel)
    used_edges = set()
    unlisted = set()
    for rel in sorted(adj):
        la = layer_of(rel)
        if la is None:
            continue  # files directly under src/ are unconstrained
        for target, lineno in adj[rel]:
            lb = layer_of(target)
            if lb is None or la == lb:
                continue
            if target[len("src/"):] in manifest.freestanding:
                continue
            used_edges.add((la, lb))
            if la not in manifest.layers:
                unlisted.add(la)
                continue
            if lb not in manifest.layers[la][0]:
                if not src_files[rel].waived(lineno, "R010"):
                    allowed = sorted(manifest.layers[la][0])
                    findings.append(Finding(
                        rel, lineno, "R010",
                        f"layering violation: src/{la}/ may not include "
                        f"'{target}' (allowed dependencies of '{la}': "
                        + (" ".join(allowed) if allowed else "none")
                        + "); move the code or update the manifest in "
                        f"{doc_rel}"))

    # Every populated layer directory must appear in the manifest, so the
    # manifest stays a complete map of the tree.
    for layer, first_file in sorted(present_layers.items()):
        if layer not in manifest.layers:
            unlisted.add(layer)
    for layer in sorted(unlisted):
        first_file = present_layers[layer]
        if not src_files[first_file].waived(1, "R010"):
            findings.append(Finding(
                first_file, 1, "R010",
                f"layer 'src/{layer}/' is not in the bayes-layers "
                f"manifest in {doc_rel}; add a '{layer}:' line"))

    # Reverse pass (drift): manifest content with no counterpart in src/.
    for layer, (deps, lineno) in sorted(manifest.layers.items()):
        if layer not in present_layers:
            if not manifest.waived(lineno, "R010"):
                findings.append(Finding(
                    doc_rel, lineno, "R010",
                    f"manifest layer '{layer}' matches no directory under "
                    "src/; remove the line or restore the layer"))
            continue
        for dep in sorted(deps):
            if (layer, dep) not in used_edges:
                if not manifest.waived(lineno, "R010"):
                    findings.append(Finding(
                        doc_rel, lineno, "R010",
                        f"stale manifest edge '{layer}: {dep}' — no "
                        f"src/{layer}/ file includes src/{dep}/; drop the "
                        "dependency or keep it honest"))
