/**
 * @file
 * Evaluator tests: unconstrained log density with Jacobian, gradient
 * consistency, constrained output, counters, data-shadow streaming, and
 * the infeasible-point (-inf) recovery path.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "math/distributions.hpp"
#include "ppl/evaluator.hpp"

namespace bayes::ppl {
namespace {

/** y_i ~ Normal(mu, sigma), sigma > 0, flat-ish priors. */
class ToyModel : public Model
{
  public:
    ToyModel()
        : layout_({{"mu", 1, TransformKind::Identity, 0, 0},
                   {"sigma", 1, TransformKind::LowerBound, 0.0, 0}})
    {
    }

    const std::string& name() const override { return name_; }
    const ParamLayout& layout() const override { return layout_; }
    std::size_t modeledDataBytes() const override
    {
        return data_.size() * sizeof(double);
    }

    double
    logProb(const ParamView<double>& p) const override
    {
        return body(p);
    }

    ad::Var
    logProb(const ParamView<ad::Var>& p) const override
    {
        return body(p);
    }

    std::vector<double> data_ = {0.4, -0.3, 1.2, 0.8, -1.0};

  private:
    template <typename T>
    T
    body(const ParamView<T>& p) const
    {
        using namespace bayes::math;
        const T& mu = p.scalar(0);
        const T& sigma = p.scalar(1);
        T lp = normal_lpdf(mu, 0.0, 10.0) + normal_lpdf(sigma, 0.0, 5.0);
        for (double y : data_)
            lp += normal_lpdf(y, mu, sigma);
        return lp;
    }

    std::string name_ = "toy";
    ParamLayout layout_;
};

/** Model that always reports an infeasible numeric state. */
class ThrowingModel : public Model
{
  public:
    ThrowingModel() : layout_({{"x", 1, TransformKind::Identity, 0, 0}}) {}
    const std::string& name() const override { return name_; }
    const ParamLayout& layout() const override { return layout_; }
    std::size_t modeledDataBytes() const override { return 0; }
    double logProb(const ParamView<double>&) const override
    {
        throw Error("not positive definite");
    }
    ad::Var logProb(const ParamView<ad::Var>&) const override
    {
        throw Error("not positive definite");
    }

  private:
    std::string name_ = "throwing";
    ParamLayout layout_;
};

TEST(Evaluator, ValueAndGradientPathsAgree)
{
    ToyModel model;
    Evaluator eval(model);
    const std::vector<double> q = {0.3, -0.2};
    std::vector<double> grad;
    const double lp1 = eval.logProb(q);
    const double lp2 = eval.logProbGrad(q, grad);
    EXPECT_NEAR(lp1, lp2, 1e-12);
    EXPECT_EQ(grad.size(), 2u);
}

TEST(Evaluator, GradientMatchesFiniteDifference)
{
    ToyModel model;
    Evaluator eval(model);
    const std::vector<double> q = {0.5, 0.1};
    std::vector<double> grad;
    eval.logProbGrad(q, grad);
    const double h = 1e-6;
    for (std::size_t i = 0; i < q.size(); ++i) {
        auto qp = q, qm = q;
        qp[i] += h;
        qm[i] -= h;
        const double numeric =
            (eval.logProb(qp) - eval.logProb(qm)) / (2 * h);
        EXPECT_NEAR(grad[i], numeric, 1e-5) << "coordinate " << i;
    }
}

TEST(Evaluator, JacobianIncluded)
{
    // For the toy model, logProb(q) should differ from the constrained
    // density by exactly the LowerBound Jacobian (= q[1]).
    ToyModel model;
    Evaluator eval(model);
    const std::vector<double> q = {0.0, 0.7};
    const auto x = eval.constrain(q);
    const ParamView<double> view(model.layout(), x);
    EXPECT_NEAR(eval.logProb(q), model.logProb(view) + 0.7, 1e-12);
}

TEST(Evaluator, ConstrainAppliesTransforms)
{
    ToyModel model;
    Evaluator eval(model);
    const auto x = eval.constrain({1.5, -0.3});
    EXPECT_DOUBLE_EQ(x[0], 1.5);
    EXPECT_NEAR(x[1], std::exp(-0.3), 1e-12);
}

TEST(Evaluator, CountsEvaluations)
{
    ToyModel model;
    Evaluator eval(model);
    std::vector<double> grad;
    eval.logProb({0.0, 0.0});
    eval.logProbGrad({0.0, 0.0}, grad);
    eval.logProbGrad({0.1, 0.1}, grad);
    EXPECT_EQ(eval.numEvals(), 1u);
    EXPECT_EQ(eval.numGradEvals(), 2u);
    EXPECT_GT(eval.lastTapeNodes(), 0u);
}

TEST(Evaluator, RejectsWrongDimension)
{
    ToyModel model;
    Evaluator eval(model);
    std::vector<double> grad;
    EXPECT_THROW(eval.logProb({0.0}), Error);
    EXPECT_THROW(eval.logProbGrad({0.0, 0.0, 0.0}, grad), Error);
}

TEST(Evaluator, InfeasibleModelBecomesMinusInfinity)
{
    ThrowingModel model;
    Evaluator eval(model);
    std::vector<double> grad;
    EXPECT_EQ(eval.logProb({0.0}), -INFINITY);
    const double lp = eval.logProbGrad({0.0}, grad);
    EXPECT_EQ(lp, -INFINITY);
    EXPECT_EQ(grad.size(), 1u);
    EXPECT_DOUBLE_EQ(grad[0], 0.0);
}

/** Probe that records total bytes of read traffic. */
class ByteProbe : public ad::MemProbe
{
  public:
    void
    access(const void*, std::size_t bytes, bool write) override
    {
        if (!write)
            readBytes += bytes;
    }
    std::size_t readBytes = 0;
};

TEST(Evaluator, StreamsDataShadowWhenProbed)
{
    ToyModel model;
    Evaluator eval(model);
    ByteProbe probe;
    eval.tape().setProbe(&probe);
    std::vector<double> grad;
    eval.logProbGrad({0.0, 0.0}, grad);
    eval.tape().setProbe(nullptr);
    // At least one full pass over the modeled data (streamed in 64B
    // lines, so rounded up) must appear as read traffic.
    EXPECT_GE(probe.readBytes, model.modeledDataBytes());
}

} // namespace
} // namespace bayes::ppl
