/**
 * @file
 * Micro-bench — hot distribution kernels in both evaluation modes:
 * value-only (double) and taped (Var). The value/taped ratio is the
 * interpreter overhead the architecture model's per-node instruction
 * costs represent.
 */
#include <benchmark/benchmark.h>

#include "ad/tape.hpp"
#include "math/distributions.hpp"
#include "math/vec_kernels.hpp"
#include "support/rng.hpp"

using namespace bayes;
using namespace bayes::math;

namespace {

std::vector<double>
observations(std::size_t n)
{
    Rng rng(42);
    std::vector<double> ys(n);
    for (auto& y : ys)
        y = rng.normal(0.5, 1.2);
    return ys;
}

void
BM_NormalLpdfDouble(benchmark::State& state)
{
    const auto ys = observations(1024);
    for (auto _ : state) {
        double lp = 0.0;
        for (double y : ys)
            lp += normal_lpdf(y, 0.3, 1.1);
        benchmark::DoNotOptimize(lp);
    }
    state.SetItemsProcessed(state.iterations() * 1024);
}

void
BM_NormalLpdfTaped(benchmark::State& state)
{
    const auto ys = observations(1024);
    ad::Tape tape;
    for (auto _ : state) {
        tape.clear();
        ad::Var mu = ad::leaf(tape, 0.3);
        ad::Var sigma = ad::leaf(tape, 1.1);
        ad::Var lp = 0.0;
        for (double y : ys)
            lp += normal_lpdf(y, mu, sigma);
        std::vector<double> adj;
        tape.gradient(lp.id(), adj);
        benchmark::DoNotOptimize(adj.data());
    }
    state.SetItemsProcessed(state.iterations() * 1024);
}

void
BM_BernoulliLogitTaped(benchmark::State& state)
{
    ad::Tape tape;
    for (auto _ : state) {
        tape.clear();
        ad::Var eta = ad::leaf(tape, 0.4);
        ad::Var lp = 0.0;
        for (int i = 0; i < 1024; ++i)
            lp += bernoulli_logit_lpmf(i & 1, eta);
        std::vector<double> adj;
        tape.gradient(lp.id(), adj);
        benchmark::DoNotOptimize(adj.data());
    }
    state.SetItemsProcessed(state.iterations() * 1024);
}

void
BM_PoissonLogTaped(benchmark::State& state)
{
    ad::Tape tape;
    for (auto _ : state) {
        tape.clear();
        ad::Var eta = ad::leaf(tape, 1.2);
        ad::Var lp = 0.0;
        for (long i = 0; i < 1024; ++i)
            lp += poisson_log_lpmf(i % 7, eta);
        std::vector<double> adj;
        tape.gradient(lp.id(), adj);
        benchmark::DoNotOptimize(adj.data());
    }
    state.SetItemsProcessed(state.iterations() * 1024);
}

// ---------------------------------------------------------------------
// Fused kernels: same likelihoods as the taped loops above, one wide
// node each. The time ratio against the *Taped twins is the per-node
// interpreter overhead the fusion removes; tape_nodes shows the
// working-set collapse (3 nodes vs ~10k).
// ---------------------------------------------------------------------

void
BM_NormalLpdfFused(benchmark::State& state)
{
    const auto ys = observations(1024);
    ad::Tape tape;
    for (auto _ : state) {
        tape.clear();
        ad::Var mu = ad::leaf(tape, 0.3);
        ad::Var sigma = ad::leaf(tape, 1.1);
        ad::Var lp = normal_lpdf_vec(std::span<const double>(ys), mu, sigma);
        std::vector<double> adj;
        tape.gradient(lp.id(), adj);
        benchmark::DoNotOptimize(adj.data());
    }
    state.counters["tape_nodes"] = static_cast<double>(tape.size());
    state.SetItemsProcessed(state.iterations() * 1024);
}

void
BM_BernoulliLogitGlmFused(benchmark::State& state)
{
    const std::size_t n = 1024, numK = 4;
    Rng rng(43);
    std::vector<double> x(n * numK);
    for (auto& v : x)
        v = rng.normal(0.0, 1.0);
    std::vector<int> ys(n);
    for (std::size_t i = 0; i < n; ++i)
        ys[i] = static_cast<int>(i & 1);
    ad::Tape tape;
    for (auto _ : state) {
        tape.clear();
        std::vector<ad::Var> betas;
        for (std::size_t k = 0; k < numK; ++k)
            betas.push_back(ad::leaf(tape, 0.1 * static_cast<double>(k)));
        ad::Var alpha = ad::leaf(tape, 0.4);
        ad::Var lp = bernoulli_logit_glm_lpmf(
            std::span<const int>(ys), std::span<const double>(x), alpha,
            std::span<const ad::Var>(betas));
        std::vector<double> adj;
        tape.gradient(lp.id(), adj);
        benchmark::DoNotOptimize(adj.data());
    }
    state.counters["tape_nodes"] = static_cast<double>(tape.size());
    state.SetItemsProcessed(state.iterations() * 1024);
}

void
BM_PoissonLogGlmFused(benchmark::State& state)
{
    const std::size_t n = 1024, numK = 4;
    Rng rng(44);
    std::vector<double> x(n * numK);
    for (auto& v : x)
        v = rng.normal(0.0, 0.5);
    std::vector<long> ys(n);
    for (std::size_t i = 0; i < n; ++i)
        ys[i] = static_cast<long>(i % 7);
    ad::Tape tape;
    for (auto _ : state) {
        tape.clear();
        std::vector<ad::Var> betas;
        for (std::size_t k = 0; k < numK; ++k)
            betas.push_back(ad::leaf(tape, 0.05 * static_cast<double>(k)));
        std::vector<ad::Var> alphas{ad::leaf(tape, 1.2)};
        ad::Var lp = poisson_log_glm_lpmf(
            std::span<const long>(ys), std::span<const double>(x), {}, {},
            std::span<const ad::Var>(alphas),
            std::span<const ad::Var>(betas));
        std::vector<double> adj;
        tape.gradient(lp.id(), adj);
        benchmark::DoNotOptimize(adj.data());
    }
    state.counters["tape_nodes"] = static_cast<double>(tape.size());
    state.SetItemsProcessed(state.iterations() * 1024);
}

// ---------------------------------------------------------------------
// Batched SoA kernels: the fused likelihoods above, evaluated for K
// parameter points in one pass over the shared observations. Wall time
// vs K shows the amortization; `data_bytes_per_eval` is the observed
// data streamed per lane (total bytes / K) — the quantity the EvalBatch
// surface exists to shrink.
// ---------------------------------------------------------------------

void
BM_NormalLpdfFusedBatch(benchmark::State& state)
{
    const std::size_t lanes = static_cast<std::size_t>(state.range(0));
    const auto ys = observations(1024);
    ad::Tape tape;
    for (auto _ : state) {
        tape.clear();
        std::vector<ad::Var> mus, sigmas;
        for (std::size_t k = 0; k < lanes; ++k) {
            mus.push_back(ad::leaf(tape, 0.3 + 0.01 * static_cast<double>(k)));
            sigmas.push_back(ad::leaf(tape, 1.1));
        }
        std::vector<ad::Var> lp(lanes);
        normal_lpdf_vec_batch(std::span<const double>(ys),
                              std::span<const ad::Var>(mus),
                              std::span<const ad::Var>(sigmas),
                              std::span<ad::Var>(lp));
        std::vector<ad::NodeId> outs(lanes);
        for (std::size_t k = 0; k < lanes; ++k)
            outs[k] = lp[k].id();
        std::vector<double> adj;
        tape.gradient(outs, adj);
        benchmark::DoNotOptimize(adj.data());
    }
    state.counters["tape_nodes"] = static_cast<double>(tape.size());
    state.counters["data_bytes_per_eval"] = static_cast<double>(
        ys.size() * sizeof(double) / lanes);
    state.SetItemsProcessed(state.iterations()
                            * static_cast<std::int64_t>(1024 * lanes));
}

void
BM_BernoulliLogitGlmFusedBatch(benchmark::State& state)
{
    const std::size_t lanes = static_cast<std::size_t>(state.range(0));
    const std::size_t n = 1024, numK = 4;
    Rng rng(43);
    std::vector<double> x(n * numK);
    for (auto& v : x)
        v = rng.normal(0.0, 1.0);
    std::vector<int> ys(n);
    for (std::size_t i = 0; i < n; ++i)
        ys[i] = static_cast<int>(i & 1);
    ad::Tape tape;
    for (auto _ : state) {
        tape.clear();
        std::vector<ad::Var> alphas, betas;
        for (std::size_t k = 0; k < lanes; ++k) {
            alphas.push_back(ad::leaf(tape, 0.4));
            for (std::size_t j = 0; j < numK; ++j)
                betas.push_back(
                    ad::leaf(tape, 0.1 * static_cast<double>(j)));
        }
        std::vector<ad::Var> lp(lanes);
        bernoulli_logit_glm_lpmf_batch(std::span<const int>(ys),
                                       std::span<const double>(x),
                                       std::span<const ad::Var>(alphas),
                                       std::span<const ad::Var>(betas),
                                       numK, std::span<ad::Var>(lp));
        std::vector<ad::NodeId> outs(lanes);
        for (std::size_t k = 0; k < lanes; ++k)
            outs[k] = lp[k].id();
        std::vector<double> adj;
        tape.gradient(outs, adj);
        benchmark::DoNotOptimize(adj.data());
    }
    state.counters["tape_nodes"] = static_cast<double>(tape.size());
    state.counters["data_bytes_per_eval"] = static_cast<double>(
        (x.size() * sizeof(double) + ys.size() * sizeof(int)) / lanes);
    state.SetItemsProcessed(state.iterations()
                            * static_cast<std::int64_t>(1024 * lanes));
}

} // namespace

BENCHMARK(BM_NormalLpdfDouble);
BENCHMARK(BM_NormalLpdfTaped);
BENCHMARK(BM_BernoulliLogitTaped);
BENCHMARK(BM_PoissonLogTaped);
BENCHMARK(BM_NormalLpdfFused);
BENCHMARK(BM_BernoulliLogitGlmFused);
BENCHMARK(BM_PoissonLogGlmFused);
BENCHMARK(BM_NormalLpdfFusedBatch)->Arg(1)->Arg(2)->Arg(4)->Arg(8);
BENCHMARK(BM_BernoulliLogitGlmFusedBatch)->Arg(1)->Arg(2)->Arg(4)->Arg(8);
