#include "support/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "support/error.hpp"

namespace bayes {

void
RunningStats::add(double x)
{
    if (n_ == 0) {
        min_ = x;
        max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

void
RunningStats::merge(const RunningStats& other)
{
    if (other.n_ == 0)
        return;
    if (n_ == 0) {
        *this = other;
        return;
    }
    const double na = static_cast<double>(n_);
    const double nb = static_cast<double>(other.n_);
    const double delta = other.mean_ - mean_;
    const double total = na + nb;
    mean_ += delta * nb / total;
    m2_ += other.m2_ + delta * delta * na * nb / total;
    n_ += other.n_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

double
RunningStats::variance() const
{
    if (n_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(n_ - 1);
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

void
RunningStats::reset()
{
    *this = RunningStats{};
}

double
mean(const std::vector<double>& xs)
{
    BAYES_CHECK(!xs.empty(), "mean of empty sample");
    double s = 0.0;
    for (double x : xs)
        s += x;
    return s / static_cast<double>(xs.size());
}

double
variance(const std::vector<double>& xs)
{
    BAYES_CHECK(xs.size() >= 2, "variance needs at least two observations");
    const double m = mean(xs);
    double s = 0.0;
    for (double x : xs)
        s += (x - m) * (x - m);
    return s / static_cast<double>(xs.size() - 1);
}

double
stddev(const std::vector<double>& xs)
{
    return std::sqrt(variance(xs));
}

double
quantile(std::vector<double> xs, double q)
{
    BAYES_CHECK(!xs.empty(), "quantile of empty sample");
    BAYES_CHECK(q >= 0.0 && q <= 1.0, "quantile level must be in [0,1]");
    std::sort(xs.begin(), xs.end());
    if (xs.size() == 1)
        return xs[0];
    const double h = q * static_cast<double>(xs.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(std::floor(h));
    const std::size_t hi = std::min(lo + 1, xs.size() - 1);
    const double frac = h - static_cast<double>(lo);
    return xs[lo] + frac * (xs[hi] - xs[lo]);
}

double
geometricMean(const std::vector<double>& xs)
{
    BAYES_CHECK(!xs.empty(), "geometricMean of empty sample");
    double logSum = 0.0;
    for (double x : xs) {
        BAYES_CHECK(x > 0.0, "geometricMean requires positive values");
        logSum += std::log(x);
    }
    return std::exp(logSum / static_cast<double>(xs.size()));
}

double
pearson(const std::vector<double>& xs, const std::vector<double>& ys)
{
    BAYES_CHECK(xs.size() == ys.size() && xs.size() >= 2,
                "pearson requires equal-length samples of size >= 2");
    const double mx = mean(xs);
    const double my = mean(ys);
    double sxy = 0.0, sxx = 0.0, syy = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        const double dx = xs[i] - mx;
        const double dy = ys[i] - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    BAYES_CHECK(sxx > 0.0 && syy > 0.0,
                "pearson requires nonzero variance in both samples");
    return sxy / std::sqrt(sxx * syy);
}

LinearFit
fitLeastSquares(const std::vector<double>& xs, const std::vector<double>& ys)
{
    BAYES_CHECK(xs.size() == ys.size() && xs.size() >= 2,
                "fit requires equal-length samples of size >= 2");
    const double mx = mean(xs);
    const double my = mean(ys);
    double sxy = 0.0, sxx = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        sxy += (xs[i] - mx) * (ys[i] - my);
        sxx += (xs[i] - mx) * (xs[i] - mx);
    }
    BAYES_CHECK(sxx > 0.0, "fit requires nonzero variance in x");
    const double slope = sxy / sxx;
    return LinearFit{my - slope * mx, slope};
}

} // namespace bayes
