/**
 * @file
 * Static-trajectory Hamiltonian Monte Carlo: a fixed number of leapfrog
 * steps followed by a Metropolis accept/reject. The paper reports that
 * HMC's single-core profile closely tracks NUTS (§IV-A); this kernel
 * backs that comparison bench.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "samplers/hamiltonian.hpp"

namespace bayes::samplers {

/** Outcome of one static HMC transition. */
struct HmcTransition
{
    double acceptStat = 0.0;
    std::uint32_t gradEvals = 0;
    bool accepted = false;
    bool divergent = false;
};

/**
 * In-flight state of one HMC transition, between begin() and finish().
 * The phased executor keeps one per chain so it can interleave K
 * trajectories and feed each pending position from a batched gradient
 * evaluation.
 */
struct HmcPhase
{
    PhasePoint trial;
    double joint0 = 0.0;
    int stepsDone = 0;
    bool active = true;
    std::uint32_t gradEvals = 0;
};

/** One-chain static HMC kernel. */
class HmcSampler
{
  public:
    /**
     * @param ham            Hamiltonian over the model evaluator
     * @param leapfrogSteps  trajectory length in steps
     */
    HmcSampler(Hamiltonian& ham, int leapfrogSteps)
        : ham_(&ham), steps_(leapfrogSteps)
    {
    }

    void setStepSize(double eps) { stepSize_ = eps; }
    double stepSize() const { return stepSize_; }

    /** Run one transition from @p z (updated in place on accept). */
    HmcTransition transition(PhasePoint& z, Rng& rng);

    // -- Split transition for batched execution ----------------------
    // transition() == begin; while (prepareStep) applyEval(eval);
    //                 finish — byte-identical by construction, since
    // the split consumes the chain's RNG in the same order and applies
    // the same floating-point operations.

    /** Refresh momentum and open a transition from @p z. */
    void
    begin(PhasePoint& z, Rng& rng, HmcPhase& ph)
    {
        ham_->sampleMomentum(rng, z);
        ph.joint0 = ham_->joint(z);
        ph.trial = z;
        ph.stepsDone = 0;
        ph.active = true;
        ph.gradEvals = 0;
    }

    /**
     * Advance the trajectory to its next pending position (half kick +
     * drift). Returns false when the trajectory is complete (or broke
     * on a non-finite density) and needs no further evaluation.
     */
    bool
    prepareStep(HmcPhase& ph)
    {
        if (!ph.active || ph.stepsDone >= steps_)
            return false;
        ham_->leapfrogBegin(ph.trial, stepSize_);
        return true;
    }

    /** Deliver the (batched) evaluation at the pending position. */
    void
    applyEval(HmcPhase& ph, double logProb, std::span<const double> grad)
    {
        ham_->leapfrogEnd(ph.trial, logProb, grad, stepSize_);
        ++ph.gradEvals;
        ++ph.stepsDone;
        if (!std::isfinite(ph.trial.logProb))
            ph.active = false;
    }

    /** Accept/reject the finished trajectory (updates @p z on accept). */
    HmcTransition finish(PhasePoint& z, HmcPhase& ph, Rng& rng);

    /**
     * Fork-point API for predictive prefetching: predict the first
     * pending leapfrog position of the *next* transition under the
     * reject branch (state @p z unchanged). @p replica must be the
     * chain RNG's replicaFork() taken after begin() — the prediction
     * replays finish()'s accept uniform and the next momentum refresh
     * on it, then applies the same half-kick + drift the real reject
     * branch would, so the point byte-matches on a rejection. (The
     * accept branch is not predictable ahead of the batch: its start
     * state is the trajectory endpoint still being integrated.)
     */
    void speculateRejectBranch(const PhasePoint& z, Rng replica,
                               std::vector<double>& point) const;

  private:
    Hamiltonian* ham_;
    int steps_;
    double stepSize_ = 0.1;

    static constexpr double kDeltaMax = 1000.0;
};

} // namespace bayes::samplers
