/**
 * @file
 * Figure 6 — design-space exploration for the paper's four case-study
 * workloads (ad, survival: LLC-bound; ode, memory: compute-bound) on
 * Skylake: the full {cores x chains x iterations} grid, the
 * convergence-detection-achievable points, the original user setting,
 * and the energy oracle.
 */
#include "common.hpp"
#include "dse/explorer.hpp"
#include "support/table.hpp"

#include <cstdio>

using namespace bayes;

int
main()
{
    const auto platform = archsim::Platform::skylake();
    // Every grid point's sampling run is one task on the shared pool;
    // seeds are per-point, so the table matches the sequential driver.
    dse::DseConfig dseCfg;
    dseCfg.execution = samplers::ExecutionPolicy::pool();
    for (const std::string name : {"ad", "survival", "ode", "memory"}) {
        std::fprintf(stderr, "[bench] exploring %s...\n", name.c_str());
        const auto wl = workloads::makeWorkload(name);
        const auto result = dse::explore(*wl, platform, dseCfg);

        Table table({"point", "cores", "chains", "iters", "latency(s)",
                     "energy(J)", "KL", "quality"});
        auto emit = [&](const dse::DesignPoint& p, const char* tag) {
            table.row()
                .cell(std::string(tag) + p.label)
                .cell(static_cast<long>(p.cores))
                .cell(static_cast<long>(p.chains))
                .cell(static_cast<long>(p.iterations))
                .cell(p.seconds, 3)
                .cell(p.energyJ, 1)
                .cell(p.kl, 4)
                .cell(p.qualityOk ? "ok" : "poor");
        };
        emit(result.user, "* ");
        for (const auto& p : result.grid)
            emit(p, "  ");
        for (const auto& p : result.elision)
            emit(p, "> ");
        emit(result.oracle, "O ");
        printSection("Figure 6 — DSE for " + name
                         + " (*, user setting; >, detection-achievable; "
                           "O, energy oracle)",
                     table);

        Table agg({"metric", "value"});
        agg.row().cell("elision energy saving vs user (%)").cell(
            100.0 * result.elisionEnergySaving(), 1);
        agg.row().cell("oracle energy saving vs user (%)").cell(
            100.0 * result.oracleEnergySaving(), 1);
        agg.row().cell("oracle chains").cell(
            static_cast<long>(result.oracle.chains));
        printSection("Figure 6 — " + name + " aggregates", agg);
    }
    return 0;
}
