/**
 * @file
 * Workload profiler tests: per-chain traces exist, chains occupy
 * disjoint arenas, op counts and tape sizes are consistent.
 */
#include <gtest/gtest.h>

#include <algorithm>

#include "archsim/profiler.hpp"
#include "workloads/suite.hpp"

namespace bayes::archsim {
namespace {

TEST(Profiler, ProducesOneProfilePerChain)
{
    const auto wl = workloads::makeWorkload("12cities", 0.5);
    const auto profile = profileWorkload(*wl, 3, 10);
    ASSERT_EQ(profile.chains.size(), 3u);
    for (const auto& chain : profile.chains) {
        EXPECT_FALSE(chain.trace.empty());
        // Fused kernels keep the tape small but never trivial: priors,
        // link transforms and the wide likelihood nodes remain.
        EXPECT_GT(chain.tapeNodes, 30u);
        EXPECT_EQ(chain.dim, wl->layout().dim());
        EXPECT_EQ(chain.dataBytes, wl->modeledDataBytes());
    }
}

TEST(Profiler, ScalarPathProfilesLargerThanFused)
{
    const auto wl = workloads::makeWorkload("12cities", 0.5);
    const auto fused = profileWorkload(*wl, 1, 10);
    const auto scalar = profileWorkload(*wl, 1, 10, 20190331,
                                        /*scalarLikelihood=*/true);
    // The scalar reference path builds per-observation nodes; the fused
    // path must be at least 4x smaller (the PR's acceptance bar).
    EXPECT_GT(scalar.chains[0].tapeNodes, 4 * fused.chains[0].tapeNodes);
    EXPECT_GT(scalar.chains[0].trace.size(), fused.chains[0].trace.size());
}

TEST(Profiler, OpCountsSumToTapeNodes)
{
    const auto wl = workloads::makeWorkload("ad", 0.25);
    const auto profile = profileWorkload(*wl, 1, 10);
    const auto& chain = profile.chains[0];
    std::uint64_t total = 0;
    for (auto c : chain.opCounts)
        total += c;
    EXPECT_EQ(total, chain.tapeNodes);
}

TEST(Profiler, ChainsOccupyDisjointAddressRanges)
{
    const auto wl = workloads::makeWorkload("ode", 0.5);
    const auto profile = profileWorkload(*wl, 2, 10);
    auto range = [](const EvalProfile& p) {
        std::uint64_t lo = ~0ull, hi = 0;
        for (const auto& a : p.trace) {
            lo = std::min(lo, a.addr);
            hi = std::max(hi, a.addr);
        }
        return std::pair{lo, hi};
    };
    const auto [lo0, hi0] = range(profile.chains[0]);
    const auto [lo1, hi1] = range(profile.chains[1]);
    // The tape arenas are separate allocations: their address midpoints
    // must differ (overlap of incidental stack/data lines is fine, but
    // the bulk of the traces must not coincide).
    std::size_t shared = 0;
    std::vector<std::uint64_t> lines0;
    for (const auto& a : profile.chains[0].trace)
        lines0.push_back(a.addr >> 6);
    std::sort(lines0.begin(), lines0.end());
    lines0.erase(std::unique(lines0.begin(), lines0.end()), lines0.end());
    std::vector<std::uint64_t> lines1;
    for (const auto& a : profile.chains[1].trace)
        lines1.push_back(a.addr >> 6);
    std::sort(lines1.begin(), lines1.end());
    lines1.erase(std::unique(lines1.begin(), lines1.end()), lines1.end());
    for (auto l : lines1)
        shared += std::binary_search(lines0.begin(), lines0.end(), l);
    EXPECT_LT(static_cast<double>(shared),
              0.2 * static_cast<double>(lines1.size()));
    (void)lo0;
    (void)hi0;
    (void)lo1;
    (void)hi1;
}

TEST(Profiler, TraceContainsReadsAndWrites)
{
    const auto wl = workloads::makeWorkload("votes", 0.5);
    const auto profile = profileWorkload(*wl, 1, 10);
    std::size_t reads = 0, writes = 0;
    for (const auto& a : profile.chains[0].trace)
        (a.write ? writes : reads) += 1;
    EXPECT_GT(reads, 0u);
    EXPECT_GT(writes, 0u);
}

TEST(Profiler, TraceSizeTracksTapeSize)
{
    // On the scalar reference path, the larger modeled dataset builds
    // the larger tape and therefore the larger trace.
    const auto big = workloads::makeWorkload("tickets", 0.5);
    const auto small = workloads::makeWorkload("butterfly", 0.5);
    const auto bp = profileWorkload(*big, 1, 8, 20190331,
                                    /*scalarLikelihood=*/true);
    const auto sp = profileWorkload(*small, 1, 8, 20190331,
                                    /*scalarLikelihood=*/true);
    EXPECT_GT(bp.chains[0].trace.size(), sp.chains[0].trace.size());
}

TEST(Profiler, DeterministicAcrossCalls)
{
    const auto wl = workloads::makeWorkload("racial", 0.5);
    const auto a = profileWorkload(*wl, 1, 10, 99);
    const auto b = profileWorkload(*wl, 1, 10, 99);
    EXPECT_EQ(a.chains[0].tapeNodes, b.chains[0].tapeNodes);
    EXPECT_EQ(a.chains[0].trace.size(), b.chains[0].trace.size());
}

TEST(Profiler, BatchedEvalSharesOneDataPassAcrossLanes)
{
    const auto wl = workloads::makeWorkload("ad", 0.25);
    const std::size_t lanes = 4;
    const auto single = profileWorkload(*wl, 1, 10);
    const auto batched = profileBatchedEval(*wl, static_cast<int>(lanes), 10);

    EXPECT_FALSE(batched.trace.empty());
    EXPECT_EQ(batched.dim, wl->layout().dim());
    EXPECT_EQ(batched.dataBytes, wl->modeledDataBytes());
    // Lane-specific nodes grow the tape beyond a single chain's...
    EXPECT_GT(batched.tapeNodes, single.chains[0].tapeNodes);
    // ...but the shared observations are streamed once, not per lane, so
    // the K-lane trace stays strictly below K independent evaluations.
    EXPECT_LT(batched.trace.size(), lanes * single.chains[0].trace.size());
}

TEST(Profiler, BatchedEvalDeterministicAcrossCalls)
{
    const auto wl = workloads::makeWorkload("tickets", 0.25);
    const auto a = profileBatchedEval(*wl, 3, 10, 99);
    const auto b = profileBatchedEval(*wl, 3, 10, 99);
    EXPECT_EQ(a.tapeNodes, b.tapeNodes);
    EXPECT_EQ(a.trace.size(), b.trace.size());
}

TEST(Profiler, RejectsZeroChains)
{
    const auto wl = workloads::makeWorkload("ad", 0.25);
    EXPECT_THROW(profileWorkload(*wl, 0), Error);
}

TEST(TraceCapture, RespectsCap)
{
    TraceCapture capture(3);
    int x = 0;
    for (int i = 0; i < 5; ++i)
        capture.access(&x, 8, false);
    EXPECT_EQ(capture.trace().size(), 3u);
    EXPECT_TRUE(capture.truncated());
    capture.clear();
    EXPECT_TRUE(capture.trace().empty());
    EXPECT_FALSE(capture.truncated());
}

} // namespace
} // namespace bayes::archsim
