/**
 * @file
 * Parameterized property tests of the cache model across geometries:
 * invariants that must hold for any (size, ways) combination.
 */
#include <gtest/gtest.h>

#include "archsim/cache.hpp"
#include "support/rng.hpp"

namespace bayes::archsim {
namespace {

class CacheGeometryTest
    : public ::testing::TestWithParam<std::tuple<std::uint64_t,
                                                 std::uint32_t>>
{
  protected:
    CacheConfig
    config() const
    {
        const auto [size, ways] = GetParam();
        return CacheConfig{size, 64, ways};
    }
};

TEST_P(CacheGeometryTest, GeometryIsConsistent)
{
    CacheModel cache(config());
    const auto cfg = config();
    EXPECT_EQ(static_cast<std::uint64_t>(cache.numSets()) * cfg.ways * 64,
              cfg.sizeBytes);
}

TEST_P(CacheGeometryTest, WorkingSetAtCapacityFullyHitsAfterWarmup)
{
    CacheModel cache(config());
    const auto cfg = config();
    // Touch exactly capacity worth of distinct lines, twice.
    for (int round = 0; round < 2; ++round)
        for (std::uint64_t a = 0; a < cfg.sizeBytes; a += 64)
            cache.access(a, false);
    // Second round must be all hits: misses == cold misses only.
    EXPECT_EQ(cache.stats().misses, cfg.sizeBytes / 64);
}

TEST_P(CacheGeometryTest, MissesNeverExceedAccesses)
{
    CacheModel cache(config());
    Rng rng(11);
    for (int i = 0; i < 20000; ++i)
        cache.access(rng.nextU64() & 0x3fffc0ull, rng.bernoulli(0.3));
    EXPECT_LE(cache.stats().misses, cache.stats().accesses);
    EXPECT_LE(cache.stats().writebacks, cache.stats().misses);
}

TEST_P(CacheGeometryTest, SingleLineAlwaysHitsAfterFill)
{
    CacheModel cache(config());
    cache.access(0x1000, false);
    for (int i = 0; i < 100; ++i)
        EXPECT_TRUE(cache.access(0x1000, i % 2 == 0));
}

TEST_P(CacheGeometryTest, DisjointSetsDoNotInterfere)
{
    CacheModel cache(config());
    const auto cfg = config();
    if (cache.numSets() < 2)
        GTEST_SKIP() << "needs at least two sets";
    // Fill set 0 to capacity + 1 (conflict), while touching set 1 once.
    const std::uint64_t setStride = cache.numSets() * 64ull;
    cache.access(64, false); // set 1 resident
    for (std::uint32_t w = 0; w <= cfg.ways; ++w)
        cache.access(w * setStride, false);
    // Set 1's line must be untouched by set 0's conflicts.
    EXPECT_TRUE(cache.access(64, false));
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheGeometryTest,
    ::testing::Values(std::make_tuple(1024ull, 1u),
                      std::make_tuple(4096ull, 4u),
                      std::make_tuple(32768ull, 8u),
                      std::make_tuple(1048576ull, 16u),
                      std::make_tuple(5242880ull, 20u)), // Broadwell LLC
    [](const auto& paramInfo) {
        return "s" + std::to_string(std::get<0>(paramInfo.param)) + "w"
            + std::to_string(std::get<1>(paramInfo.param));
    });

} // namespace
} // namespace bayes::archsim
