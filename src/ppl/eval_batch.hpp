/**
 * @file
 * SoA block of K unconstrained parameter points — the unit of work of
 * the batched evaluation surface (Evaluator::logProbBatch /
 * logProbGradBatch).
 *
 * Storage is coordinate-major: all K lanes' values of coordinate d are
 * contiguous at [d*K, (d+1)*K). That makes the per-coordinate lane
 * spans unit-stride, which is what the batched math kernels and the
 * constraining transforms want to auto-vectorize across lanes, and it
 * is the natural layout for a K×D gradient block written one
 * coordinate at a time.
 */
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "support/error.hpp"

namespace bayes::ppl {

/** K unconstrained points of dimension D, stored coordinate-major. */
class EvalBatch
{
  public:
    EvalBatch() = default;

    /** Allocate a D-dim, K-lane block (zero-initialized). */
    EvalBatch(std::size_t dim, std::size_t lanes) { resize(dim, lanes); }

    /** Reshape to D×K, zeroing the contents. */
    void
    resize(std::size_t dim, std::size_t lanes)
    {
        dim_ = dim;
        lanes_ = lanes;
        data_.assign(dim * lanes, 0.0);
    }

    /** Number of coordinates D per point. */
    std::size_t dim() const { return dim_; }

    /** Number of points K in the batch. */
    std::size_t lanes() const { return lanes_; }

    /** Value of coordinate @p d in lane @p k. */
    double&
    at(std::size_t d, std::size_t k)
    {
        BAYES_ASSERT(d < dim_ && k < lanes_);
        return data_[d * lanes_ + k];
    }

    /** Value of coordinate @p d in lane @p k. */
    double
    at(std::size_t d, std::size_t k) const
    {
        BAYES_ASSERT(d < dim_ && k < lanes_);
        return data_[d * lanes_ + k];
    }

    /** All K lanes' values of coordinate @p d (unit stride). */
    std::span<double>
    coord(std::size_t d)
    {
        BAYES_ASSERT(d < dim_);
        return {data_.data() + d * lanes_, lanes_};
    }

    /** All K lanes' values of coordinate @p d (unit stride). */
    std::span<const double>
    coord(std::size_t d) const
    {
        BAYES_ASSERT(d < dim_);
        return {data_.data() + d * lanes_, lanes_};
    }

    /** Scatter a flat D-dim point into lane @p k. */
    void
    setPoint(std::size_t k, std::span<const double> q)
    {
        BAYES_CHECK(q.size() == dim_,
                    "EvalBatch::setPoint: point has wrong dimension");
        BAYES_ASSERT(k < lanes_);
        for (std::size_t d = 0; d < dim_; ++d)
            data_[d * lanes_ + k] = q[d];
    }

    /**
     * Pack a round: reshape to D×points.size() and scatter each
     * pointed-to vector into its lane, in order. The batched phased
     * executor uses this to assemble heterogeneous rounds — the
     * chains' mandatory pending points followed by speculative
     * prefetch lanes — into one shared-data pass; lane results are
     * bit-equal to single evaluations regardless of which lanes ride
     * along (the speculation soundness premise, see test_eval_batch).
     */
    void
    assignPoints(std::size_t dim,
                 std::span<const std::vector<double>* const> points)
    {
        resize(dim, points.size());
        for (std::size_t k = 0; k < points.size(); ++k)
            setPoint(k, *points[k]);
    }

    /** Gather lane @p k into a flat D-dim vector. */
    void
    getPoint(std::size_t k, std::vector<double>& q) const
    {
        BAYES_ASSERT(k < lanes_);
        q.resize(dim_);
        for (std::size_t d = 0; d < dim_; ++d)
            q[d] = data_[d * lanes_ + k];
    }

    /** Raw coordinate-major storage, size dim()*lanes(). */
    std::span<const double> data() const { return data_; }

  private:
    std::size_t dim_ = 0;
    std::size_t lanes_ = 0;
    std::vector<double> data_;
};

} // namespace bayes::ppl
