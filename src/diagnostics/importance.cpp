#include "diagnostics/importance.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "support/error.hpp"

namespace bayes::diagnostics {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/**
 * Zhang & Stephens (2009) profile-likelihood GPD shape fit over sorted
 * exceedances y (ascending, y.back() > 0), with loo's weakly
 * informative prior pulling k̂ toward 0.5. The GPD is parameterized
 * F(y) = 1 − (1 − b·y)^{1/k}; the usual tail index ξ equals the k
 * returned here (heavy tail ⇒ b̂ < 0 ⇒ k̂ > 0).
 */
double
gpdShapeFit(const std::vector<double>& y)
{
    const std::size_t m = y.size();
    const double md = static_cast<double>(m);
    const double ymax = y.back();

    // First-quartile exceedance scales the grid of candidate b values.
    std::size_t q1Idx = static_cast<std::size_t>(md / 4.0 + 0.5);
    q1Idx = q1Idx > 0 ? q1Idx - 1 : 0;
    double q1 = y[q1Idx];
    if (q1 <= 0.0)
        q1 = ymax * 1e-12;

    const std::size_t gridPts =
        30 + static_cast<std::size_t>(std::sqrt(md));
    const double gd = static_cast<double>(gridPts);

    auto shapeAt = [&](double b) {
        double k = 0.0;
        for (double yi : y)
            k += std::log1p(-b * yi);
        return k / md;
    };

    // Profile log-likelihood l(b) = m·(log(−b/k(b)) − k(b) − 1), then a
    // posterior-mean b̂ under the implicit flat grid prior.
    std::vector<double> bs(gridPts);
    std::vector<double> ls(gridPts);
    double lmax = -kInf;
    for (std::size_t j = 0; j < gridPts; ++j) {
        const double jd = static_cast<double>(j) + 1.0;
        const double b =
            1.0 / ymax + (1.0 - std::sqrt(gd / (jd - 0.5))) / (3.0 * q1);
        const double k = shapeAt(b);
        double l = -kInf;
        if (k != 0.0 && std::isfinite(k) && -b / k > 0.0)
            l = md * (std::log(-b / k) - k - 1.0);
        bs[j] = b;
        ls[j] = l;
        lmax = std::max(lmax, l);
    }
    if (!std::isfinite(lmax))
        return -kInf;

    double wSum = 0.0;
    double bHat = 0.0;
    for (std::size_t j = 0; j < gridPts; ++j) {
        const double w = std::exp(ls[j] - lmax);
        wSum += w;
        bHat += w * bs[j];
    }
    bHat /= wSum;

    const double kHat = shapeAt(bHat);
    // Weakly informative prior (loo: prior strength 10, location 0.5)
    // regularizes small tails toward the usable region's edge.
    return (md * kHat + 5.0) / (md + 10.0);
}

} // namespace

double
paretoKhat(const std::vector<double>& logRatios)
{
    BAYES_CHECK(!logRatios.empty(), "paretoKhat requires log ratios");

    std::vector<double> finite;
    finite.reserve(logRatios.size());
    for (double l : logRatios) {
        if (std::isnan(l) || l == kInf)
            return kInf; // meaningless ratios: maximally unreliable
        if (l == -kInf)
            continue; // zero weight: no tail contribution
        finite.push_back(l);
    }
    const std::size_t n = finite.size();
    if (n < 5)
        return std::numeric_limits<double>::quiet_NaN();

    std::sort(finite.begin(), finite.end());
    const double mx = finite.back();
    const double nd = static_cast<double>(n);

    // Tail size per PSIS: the larger of 5 and min(0.2n, 3√n).
    std::size_t tail = static_cast<std::size_t>(
        std::min(0.2 * nd, 3.0 * std::sqrt(nd)));
    tail = std::min(std::max<std::size_t>(tail, 5), n);

    // Exceedances over the (n−M)th order statistic on the stabilized
    // weight scale w = exp(l − max l).
    const double cutoff =
        tail < n ? std::exp(finite[n - tail - 1] - mx) : 0.0;
    std::vector<double> y;
    y.reserve(tail);
    for (std::size_t i = n - tail; i < n; ++i)
        y.push_back(std::exp(finite[i] - mx) - cutoff);
    if (y.back() <= 0.0)
        return -kInf; // degenerate tail: all weights identical

    return gpdShapeFit(y);
}

ImportanceDiagnostics
importanceDiagnostics(const std::vector<double>& logRatios)
{
    BAYES_CHECK(!logRatios.empty(),
                "importanceDiagnostics requires log ratios");
    ImportanceDiagnostics d;
    d.khat = paretoKhat(logRatios);

    double mx = -kInf;
    for (double l : logRatios)
        if (!std::isnan(l))
            mx = std::max(mx, l);
    if (!std::isfinite(mx)) {
        d.essRatio = 0.0;
        d.maxWeightFraction = 1.0;
        return d;
    }
    double sum = 0.0;
    double sumSq = 0.0;
    double wMax = 0.0;
    for (double l : logRatios) {
        const double w = std::isnan(l) ? 0.0 : std::exp(l - mx);
        sum += w;
        sumSq += w * w;
        wMax = std::max(wMax, w);
    }
    const double nd = static_cast<double>(logRatios.size());
    d.essRatio = sumSq > 0.0 ? (sum * sum) / (sumSq * nd) : 0.0;
    d.maxWeightFraction = sum > 0.0 ? wMax / sum : 1.0;
    return d;
}

} // namespace bayes::diagnostics
