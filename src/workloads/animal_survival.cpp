#include "workloads/animal_survival.hpp"

#include <cmath>

#include "math/distributions.hpp"

namespace bayes::workloads {

AnimalSurvival::AnimalSurvival(double dataScale)
    : Workload(
          WorkloadInfo{
              "survival", "Cormack-Jolly-Seber",
              "Estimating animal survival probabilities",
              "Kery & Schaub, BPA 2011 [27]",
              "capture-recapture histories of tagged animals",
              /*defaultIterations=*/1200},
          dataScale)
{
    Rng rng = dataRng();
    numOccasions_ = 14;
    numGroups_ = 20;
    const std::size_t individuals = scaled(1700);

    const double muPhiTrue = 1.1;   // survival ~0.75
    const double sigmaPhiTrue = 0.3;
    const double muPTrue = -0.4;    // recapture ~0.40
    const double sigmaEpsTrue = 0.5;

    std::vector<double> phiTrue(numOccasions_ - 1);
    for (auto& f : phiTrue)
        f = math::invLogit(rng.normal(muPhiTrue, sigmaPhiTrue));
    std::vector<double> epsTrue(numGroups_);
    for (auto& e : epsTrue)
        e = rng.normal(0.0, sigmaEpsTrue);

    history_.assign(individuals * numOccasions_, 0);
    for (std::size_t i = 0; i < individuals; ++i) {
        const int g = static_cast<int>(rng.uniformInt(numGroups_));
        const int f =
            static_cast<int>(rng.uniformInt(numOccasions_ - 2));
        group_.push_back(g);
        firstCapture_.push_back(f);
        history_[i * numOccasions_ + static_cast<std::size_t>(f)] = 1;
        int last = f;
        bool alive = true;
        for (std::size_t t = static_cast<std::size_t>(f) + 1;
             t < numOccasions_ && alive; ++t) {
            alive = rng.bernoulli(phiTrue[t - 1]) != 0;
            if (!alive)
                break;
            const double pCap =
                math::invLogit(muPTrue + epsTrue[static_cast<std::size_t>(g)]);
            if (rng.bernoulli(pCap)) {
                history_[i * numOccasions_ + t] = 1;
                last = static_cast<int>(t);
            }
        }
        lastSighting_.push_back(last);
    }

    setModeledDataBytes(history_.size() * sizeof(std::uint8_t)
                        + (firstCapture_.size() + lastSighting_.size()
                           + group_.size())
                            * sizeof(int));

    setLayout({
        {"mu_phi", 1, ppl::TransformKind::Identity, 0, 0},
        {"sigma_phi", 1, ppl::TransformKind::LowerBound, 0.0, 0},
        {"phi_raw", numOccasions_ - 1, ppl::TransformKind::Identity, 0, 0},
        {"mu_p", 1, ppl::TransformKind::Identity, 0, 0},
        {"p_raw", numOccasions_ - 1, ppl::TransformKind::Identity, 0, 0},
        {"sigma_eps", 1, ppl::TransformKind::LowerBound, 0.0, 0},
        {"eps", numGroups_, ppl::TransformKind::Identity, 0, 0},
    });
}

template <typename T>
T
AnimalSurvival::logDensity(const ppl::ParamView<T>& p) const
{
    using namespace bayes::math;
    const T& muPhi = p.scalar(kMuPhi);
    const T& sigmaPhi = p.scalar(kSigmaPhi);
    const T& muP = p.scalar(kMuP);
    const T& sigmaEps = p.scalar(kSigmaEps);
    const std::size_t numT = numOccasions_;

    T lp = normal_lpdf(muPhi, 0.0, 1.5) + normal_lpdf(sigmaPhi, 0.0, 1.0)
        + normal_lpdf(muP, 0.0, 1.5) + normal_lpdf(sigmaEps, 0.0, 1.0);

    // Hierarchical logit-scale survival and recapture parameters.
    for (std::size_t t = 0; t + 1 < numT; ++t) {
        lp += normal_lpdf(p.at(kPhiRaw, t), muPhi, sigmaPhi);
        lp += normal_lpdf(p.at(kPRaw, t), 0.0, 1.5);
    }
    for (std::size_t g = 0; g < numGroups_; ++g)
        lp += normal_lpdf(p.at(kEps, g), 0.0, sigmaEps);

    // Interval survival probabilities (shared by all individuals).
    std::vector<T> logPhi(numT - 1), log1mPhi(numT - 1);
    for (std::size_t t = 0; t + 1 < numT; ++t) {
        const T& raw = p.at(kPhiRaw, t);
        logPhi[t] = -log1pExp(-raw);
        log1mPhi[t] = -log1pExp(raw);
    }

    // Per-group recapture and the chi ("never seen again") recursion:
    // chi[g][t] = P(not resighted after t | alive at t, group g).
    std::vector<std::vector<T>> logP(numGroups_, std::vector<T>(numT - 1));
    std::vector<std::vector<T>> log1mP(numGroups_,
                                       std::vector<T>(numT - 1));
    std::vector<std::vector<T>> chi(numGroups_, std::vector<T>(numT));
    using std::exp;
    using std::log;
    using ad::exp;
    using ad::log;
    for (std::size_t g = 0; g < numGroups_; ++g) {
        for (std::size_t t = 0; t + 1 < numT; ++t) {
            // Recapture probability at occasion t+1 for group g.
            const T eta = muP + p.at(kPRaw, t) + p.at(kEps, g);
            logP[g][t] = -log1pExp(-eta);
            log1mP[g][t] = -log1pExp(eta);
        }
        chi[g][numT - 1] = T(1.0);
        for (std::size_t t = numT - 1; t-- > 0;) {
            // chi_t = (1 - phi_t) + phi_t (1 - p_{t+1}) chi_{t+1}
            const T survivedMissed =
                exp(logPhi[t] + log1mP[g][t]) * chi[g][t + 1];
            chi[g][t] = exp(log1mPhi[t]) + survivedMissed;
        }
    }

    for (std::size_t i = 0; i < firstCapture_.size(); ++i) {
        const auto f = static_cast<std::size_t>(firstCapture_[i]);
        const auto l = static_cast<std::size_t>(lastSighting_[i]);
        const auto g = static_cast<std::size_t>(group_[i]);
        for (std::size_t t = f + 1; t <= l; ++t) {
            lp += logPhi[t - 1];
            lp += history_[i * numT + t] ? logP[g][t - 1]
                                         : log1mP[g][t - 1];
        }
        lp += log(chi[g][l]);
    }
    return lp;
}

double
AnimalSurvival::logProb(const ppl::ParamView<double>& p) const
{
    return logDensity(p);
}

ad::Var
AnimalSurvival::logProb(const ppl::ParamView<ad::Var>& p) const
{
    return logDensity(p);
}

} // namespace bayes::workloads
