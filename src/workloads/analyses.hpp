/**
 * @file
 * Derived ("generated") quantities for the BayesSuite workloads — the
 * domain answers each application actually asks for, computed from
 * posterior draws. These are the quantities whose stability under
 * computation elision matters to end users (§VI's quality argument).
 */
#pragma once

#include <vector>

#include "samplers/types.hpp"
#include "workloads/animal_survival.hpp"
#include "workloads/butterfly_richness.hpp"
#include "workloads/twelve_cities.hpp"
#include "workloads/votes_forecast.hpp"

namespace bayes::workloads {

/**
 * 12cities: percentage reduction in expected pedestrian deaths from
 * lowering the speed limit, per posterior draw pooled across chains:
 * 100 * (1 - exp(beta_limit)).
 */
std::vector<double> livesSavedPercent(const TwelveCities& workload,
                                      const samplers::RunResult& run);

/**
 * votes: posterior mean forecast of the latent vote-share path at
 * every cycle (historical + future), reconstructed from the
 * non-centered GP draws.
 * @return one value per cycle
 */
std::vector<double> forecastPath(const VotesForecast& workload,
                                 const samplers::RunResult& run);

/**
 * butterfly: posterior expected species richness — the sum of
 * occupancy probabilities across the species pool, per draw.
 */
std::vector<double> expectedRichness(const ButterflyRichness& workload,
                                     const samplers::RunResult& run);

/**
 * survival: posterior mean survival probability per interval
 * (inv_logit of the hierarchical logit-survival parameters).
 * @return one value per inter-occasion interval
 */
std::vector<double> survivalRates(const AnimalSurvival& workload,
                                  const samplers::RunResult& run);

} // namespace bayes::workloads
