#include "workloads/analyses.hpp"

#include <cmath>

#include "math/linalg.hpp"
#include "support/error.hpp"

namespace bayes::workloads {
namespace {

/** Visit every pooled post-warmup draw of a run. */
template <typename Fn>
void
forEachDraw(const samplers::RunResult& run, Fn&& fn)
{
    BAYES_CHECK(!run.chains.empty() && !run.chains[0].draws.empty(),
                "run has no draws");
    for (const auto& chain : run.chains)
        for (const auto& draw : chain.draws)
            fn(draw);
}

} // namespace

std::vector<double>
livesSavedPercent(const TwelveCities& workload,
                  const samplers::RunResult& run)
{
    const auto& layout = workload.layout();
    const std::size_t idx =
        layout.offset(layout.blockIndex("beta_limit"));
    std::vector<double> out;
    forEachDraw(run, [&](const std::vector<double>& draw) {
        out.push_back(100.0 * (1.0 - std::exp(draw[idx])));
    });
    return out;
}

std::vector<double>
forecastPath(const VotesForecast& workload, const samplers::RunResult& run)
{
    const auto& layout = workload.layout();
    const std::size_t meanIdx = layout.offset(layout.blockIndex("mean"));
    const std::size_t alphaIdx = layout.offset(layout.blockIndex("alpha"));
    const std::size_t rhoIdx = layout.offset(layout.blockIndex("rho"));
    const std::size_t zIdx = layout.offset(layout.blockIndex("z"));
    const std::size_t n = workload.numCycles();

    std::vector<double> path(n, 0.0);
    std::size_t draws = 0;
    forEachDraw(run, [&](const std::vector<double>& draw) {
        const auto k = math::gpCovSquaredExp(
            workload.cycleYears(), draw[alphaIdx], draw[rhoIdx], 1e-6);
        const auto l = math::cholesky(k);
        std::vector<double> z(draw.begin() + zIdx,
                              draw.begin() + zIdx + n);
        const auto f = math::matVec(l, z);
        for (std::size_t i = 0; i < n; ++i)
            path[i] += draw[meanIdx] + f[i];
        ++draws;
    });
    for (double& x : path)
        x /= static_cast<double>(draws);
    return path;
}

std::vector<double>
expectedRichness(const ButterflyRichness& workload,
                 const samplers::RunResult& run)
{
    const auto& layout = workload.layout();
    const std::size_t occIdx = layout.offset(layout.blockIndex("occ"));
    const std::size_t species = workload.numSpecies();
    std::vector<double> out;
    forEachDraw(run, [&](const std::vector<double>& draw) {
        double richness = 0.0;
        for (std::size_t s = 0; s < species; ++s)
            richness += math::invLogit(draw[occIdx + s]);
        out.push_back(richness);
    });
    return out;
}

std::vector<double>
survivalRates(const AnimalSurvival& workload,
              const samplers::RunResult& run)
{
    const auto& layout = workload.layout();
    const std::size_t phiIdx = layout.offset(layout.blockIndex("phi_raw"));
    const std::size_t intervals = workload.numOccasions() - 1;
    std::vector<double> rates(intervals, 0.0);
    std::size_t draws = 0;
    forEachDraw(run, [&](const std::vector<double>& draw) {
        for (std::size_t t = 0; t < intervals; ++t)
            rates[t] += math::invLogit(draw[phiIdx + t]);
        ++draws;
    });
    for (double& r : rates)
        r /= static_cast<double>(draws);
    return rates;
}

} // namespace bayes::workloads
