#include "samplers/amortize.hpp"

#include <cmath>
#include <cstdio>
#include <limits>

#include "diagnostics/convergence.hpp"
#include "diagnostics/importance.hpp"
#include "diagnostics/summary.hpp"
#include "obs/obs.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace bayes::samplers::amortize {
namespace {

/** Amortized-tier telemetry (catalogued in docs/observability.md). */
struct AmortMetrics
{
    obs::Counter& requests =
        obs::Registry::global().counter("amort.requests");
    obs::Counter& served = obs::Registry::global().counter("amort.served");
    obs::Counter& escalated =
        obs::Registry::global().counter("amort.escalated");
    obs::Counter& cold = obs::Registry::global().counter("amort.cold");

    static AmortMetrics& get()
    {
        static AmortMetrics* m = new AmortMetrics; // leaked, like Registry
        return *m;
    }
};

/** Per-coordinate mean and (population) sd over [draw][coord] rows. */
void
momentsOfDraws(const std::vector<std::vector<double>>& draws,
               std::vector<double>& mean, std::vector<double>& sd)
{
    BAYES_CHECK(!draws.empty(), "amortize: moments need draws");
    const std::size_t dim = draws.front().size();
    const double n = static_cast<double>(draws.size());
    mean.assign(dim, 0.0);
    sd.assign(dim, 0.0);
    for (const auto& draw : draws)
        for (std::size_t i = 0; i < dim; ++i)
            mean[i] += draw[i];
    for (double& m : mean)
        m /= n;
    for (const auto& draw : draws)
        for (std::size_t i = 0; i < dim; ++i) {
            const double d = draw[i] - mean[i];
            sd[i] += d * d;
        }
    for (double& s : sd)
        s = std::sqrt(s / n);
}

constexpr double kHalfLog2Pi = 0.9189385332046727; // 0.5*log(2*pi)

} // namespace

AmortizedCache::AmortizedCache(AmortizeConfig config)
    : config_(std::move(config))
{
    BAYES_CHECK(config_.importanceDraws >= 8,
                "amortize: importanceDraws must be >= 8, got "
                    << config_.importanceDraws);
}

std::string
AmortizedCache::statsDigest(const ppl::Model& model)
{
    const std::vector<double> stats = model.dataSufficientStats();
    if (stats.empty())
        return {};
    std::string digest;
    digest.reserve(stats.size() * 20);
    char buf[32];
    for (double s : stats) {
        std::snprintf(buf, sizeof(buf), "%.12g", s);
        digest += buf;
        digest += ',';
    }
    return digest;
}

Entry*
AmortizedCache::find(const CacheKey& key)
{
    const auto it = entries_.find(key);
    return it == entries_.end() ? nullptr : &it->second;
}

Entry&
AmortizedCache::fit(const CacheKey& key, const ppl::Model& model,
                    ppl::Evaluator& eval)
{
    Entry entry;
    entry.fit = fitAdvi(model, config_.advi);
    momentsOfDraws(entry.fit.draws, entry.mean, entry.sd);

    // Importance-ratio tail diagnostic: draws θ ~ q on the unconstrained
    // scale, ratios log p(θ) − log q(θ) with both densities on that
    // scale (eval.logProb includes the transform Jacobian, matching the
    // space q lives in). Deterministic per seed.
    const std::size_t dim = entry.fit.mu.size();
    Rng rng(config_.advi.seed);
    std::vector<double> theta(dim);
    std::vector<double> logRatios;
    logRatios.reserve(static_cast<std::size_t>(config_.importanceDraws));
    for (int s = 0; s < config_.importanceDraws; ++s) {
        double logQ = 0.0;
        for (std::size_t d = 0; d < dim; ++d) {
            const double z = rng.normal();
            theta[d] =
                entry.fit.mu[d] + std::exp(entry.fit.omega[d]) * z;
            logQ += -0.5 * z * z - entry.fit.omega[d] - kHalfLog2Pi;
        }
        logRatios.push_back(eval.logProb(theta) - logQ);
    }
    entry.khat = diagnostics::paretoKhat(logRatios);

    return entries_.insert_or_assign(key, std::move(entry)).first->second;
}

void
AmortizedCache::installReference(Entry& entry, const RunResult& run)
{
    std::vector<std::vector<double>> pooled;
    for (const auto& chain : run.chains)
        for (const auto& draw : chain.draws)
            pooled.push_back(draw);
    BAYES_CHECK(!pooled.empty(),
                "amortize: reference run delivered no draws");
    momentsOfDraws(pooled, entry.refMean, entry.refSd);
    entry.refMaxRhat = diagnostics::runMaxRhat(run);

    double kl = 0.0;
    for (std::size_t i = 0; i < entry.mean.size(); ++i) {
        kl += diagnostics::gaussianKl1d(
            entry.mean[i], std::max(entry.sd[i], 1e-12), entry.refMean[i],
            std::max(entry.refSd[i], 1e-12));
    }
    entry.klVsReference = kl / static_cast<double>(entry.mean.size());
    entry.hasReference = true;
}

GateDecision
AmortizedCache::gate(const Entry& entry) const
{
    GateDecision d;
    d.khat = entry.khat;
    d.kl = entry.klVsReference;
    d.refRhat = entry.refMaxRhat;
    // Negated comparisons so NaN diagnostics reject rather than pass.
    if (!entry.hasReference)
        d.rejectedBy = "no-reference";
    else if (!(entry.khat <= config_.gate.khatMax))
        d.rejectedBy = "khat";
    else if (!(entry.klVsReference <= config_.gate.klMax))
        d.rejectedBy = "kl";
    else if (!(entry.refMaxRhat <= config_.gate.refRhatMax))
        d.rejectedBy = "rhat";
    else
        d.pass = true;
    return d;
}

void
AmortizedCache::noteRequest()
{
    ++stats_.requests;
    AmortMetrics::get().requests.add();
}

void
AmortizedCache::noteServed(Entry& entry)
{
    ++entry.hits;
    ++stats_.served;
    AmortMetrics::get().served.add();
}

void
AmortizedCache::noteEscalated()
{
    ++stats_.escalated;
    AmortMetrics::get().escalated.add();
}

void
AmortizedCache::noteCold()
{
    ++stats_.cold;
    AmortMetrics::get().cold.add();
}

} // namespace bayes::samplers::amortize
