/**
 * @file
 * `votes` — forecasting presidential vote share with a Gaussian
 * process.
 *
 * After the StanCon 2017 election-forecast model: a latent GP over
 * election cycles (squared-exponential kernel, non-centered via the
 * Cholesky factor) is observed through Gaussian noise at the historical
 * elections (1976-2016) and extrapolated to the future cycles
 * (2020-2028). Dense Cholesky work makes this the suite's highest-IPC,
 * most compute-regular workload.
 */
#pragma once

#include "workloads/workload.hpp"

namespace bayes::workloads {

/** Gaussian-process election-forecast workload. */
class VotesForecast : public Workload
{
  public:
    explicit VotesForecast(double dataScale = 1.0);

    double logProb(const ppl::ParamView<double>& p) const override;
    ad::Var logProb(const ppl::ParamView<ad::Var>& p) const override;
    double logProbScalar(const ppl::ParamView<double>& p) const override;
    ad::Var logProbScalar(const ppl::ParamView<ad::Var>& p) const override;

    /** Number of GP grid points (election cycles). */
    std::size_t numCycles() const { return cycleYears_.size(); }

    /** Standardized cycle coordinates (GP inputs). */
    const std::vector<double>& cycleYears() const { return cycleYears_; }

    /** Number of observed (historical) cycles. */
    std::size_t numObserved() const { return observed_.size(); }

    std::vector<double> dataSufficientStats() const override;

    /** Parameter block indices. */
    enum Block : std::size_t
    {
        kMean,   ///< long-run mean vote share (logit scale)
        kAlpha,  ///< GP amplitude, > 0
        kRho,    ///< GP length scale, > 0
        kSigma,  ///< observation noise, > 0
        kZ,      ///< non-centered latent GP innovations
    };

  private:
    template <typename T>
    T logDensity(const ppl::ParamView<T>& p) const;
    template <typename T>
    T logDensityScalar(const ppl::ParamView<T>& p) const;

    std::vector<double> cycleYears_; ///< standardized cycle coordinates
    std::vector<double> observed_;   ///< observed vote share (logit)
    std::size_t numObserved_;
};

} // namespace bayes::workloads
