/**
 * @file
 * Multi-chain driver — the phased barrier executor. Chains advance in
 * rounds (one iteration per chain per round); after every post-warmup
 * round the monitor observes all chains at the same draw count and
 * decides continue/stop — the hook the convergence-elision mechanism
 * (§VI) plugs into. The schedule across threads never changes any
 * chain's own trajectory: each chain has an independent RNG stream and
 * evaluator, so every ExecutionPolicy yields identical draws and —
 * because the monitor always sees the same synchronized view — the
 * identical stop decision.
 *
 * Execution is selected by Config::execution:
 *  - Sequential: rounds run on the calling thread (lockstep).
 *  - ThreadPerChain: a private worker per chain, torn down with the run.
 *  - Pool: the process-shared support::ThreadPool, reused across runs.
 * Without a monitor the parallel modes free-run (no barriers); with a
 * monitor they synchronize on a barrier each round and the monitor
 * executes on the calling thread while every chain is parked, so it may
 * touch caller state without locking.
 *
 * Warmup adaptation mirrors Stan's windowed scheme in simplified form:
 * an initial step-size-only phase, a long variance-accumulation phase
 * that ends by installing the diagonal metric, and a final step-size
 * re-adaptation phase. No monitor runs during warmup, so warmup always
 * free-runs in the parallel modes.
 */
#pragma once

#include <cstdint>
#include <functional>

#include "ppl/evaluator.hpp"
#include "ppl/model.hpp"
#include "samplers/types.hpp"
#include "support/rng.hpp"

namespace bayes::samplers {

/** Monitor verdict after a sampling round. */
enum class MonitorAction
{
    Continue, ///< keep sampling
    Stop,     ///< terminate the run now (computation elision)
};

/**
 * Synchronized cross-chain view handed to the monitor after every
 * completed post-warmup round. References stay valid only for the
 * duration of the callback.
 */
struct MonitorContext
{
    /** Completed post-warmup rounds == draws available per chain. */
    int round;
    /** All chains, draws valid up to `round`. */
    const std::vector<ChainResult>& chains;
    /** Wall-clock seconds since run() started (warmup included). */
    double elapsedSeconds;
    /** Gradient evaluations consumed so far, per chain (all phases). */
    const std::vector<std::uint64_t>& gradEvalsPerChain;
};

/** Observer invoked after every completed post-warmup round. */
using IterationMonitor = std::function<MonitorAction(const MonitorContext&)>;

/**
 * Run a multi-chain inference job under Config::execution.
 * @param model    the Bayesian model to sample
 * @param config   chains / iterations / algorithm / execution policy
 * @param monitor  optional early-termination observer (any policy)
 */
RunResult run(const ppl::Model& model, const Config& config,
              const IterationMonitor& monitor = nullptr);

/** Outcome of a deadline-bounded run (see runWithDeadline). */
struct DeadlineRunResult
{
    RunResult run;
    /** True when the deadline cut the run short of its iteration budget. */
    bool expired = false;
    /** Wall-clock seconds the run consumed (warmup included). */
    double elapsedSeconds = 0.0;
};

/**
 * Run a multi-chain job under a wall-clock budget. The deadline is
 * enforced at round granularity through the phased executor's monitor:
 * after every post-warmup round the elapsed time is compared against
 * @p deadlineSeconds and the run stops — keeping every draw taken so
 * far — the first time it is exceeded. Consequences of that design:
 *
 *  - warmup always completes (no monitor fires during warmup), so a
 *    deadline shorter than warmup still pays for warmup plus exactly
 *    one sampling round;
 *  - a non-finite deadline (or infinity) disables the check and the
 *    run degenerates to plain run();
 *  - the deadline changes only *when the run stops*, never any chain's
 *    trajectory, so delivered draws are a prefix of the undeadlined
 *    run's draws under every ExecutionPolicy.
 *
 * This is the entry the bayes::serve runtime uses to keep one tenant's
 * over-budget request from blowing through everyone else's SLO.
 * @param deadlineSeconds  wall budget; <= 0 stops after the first round
 * @param monitor          optional inner monitor (elision etc.); its
 *                         Stop verdict is honored alongside the deadline
 */
DeadlineRunResult runWithDeadline(const ppl::Model& model,
                                  const Config& config,
                                  double deadlineSeconds,
                                  const IterationMonitor& monitor = nullptr);

/**
 * Draw a finite-density initial point on the unconstrained scale
 * (uniform(-2, 2) per coordinate, up to 100 attempts — Stan's rule).
 * @param seed  base RNG seed, echoed in the failure diagnostic
 */
std::vector<double> findInitialPoint(ppl::Evaluator& eval, Rng& rng,
                                     std::uint64_t seed = 0);

} // namespace bayes::samplers
