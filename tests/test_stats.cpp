/**
 * @file
 * Tests for the running-statistics accumulator and the small sample
 * statistics helpers.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "support/error.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"

namespace bayes {
namespace {

TEST(RunningStats, MatchesDirectComputation)
{
    const std::vector<double> xs = {1.0, 4.0, -2.0, 7.5, 0.25, 3.0};
    RunningStats s;
    for (double x : xs)
        s.add(x);
    EXPECT_EQ(s.count(), xs.size());
    EXPECT_DOUBLE_EQ(s.mean(), mean(xs));
    EXPECT_NEAR(s.variance(), variance(xs), 1e-12);
    EXPECT_DOUBLE_EQ(s.min(), -2.0);
    EXPECT_DOUBLE_EQ(s.max(), 7.5);
}

TEST(RunningStats, EmptyAndSingle)
{
    RunningStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    s.add(5.0);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, MergeEqualsSinglePass)
{
    Rng rng(5);
    RunningStats whole, left, right;
    for (int i = 0; i < 1000; ++i) {
        const double x = rng.normal(2.0, 3.0);
        whole.add(x);
        (i < 400 ? left : right).add(x);
    }
    left.merge(right);
    EXPECT_EQ(left.count(), whole.count());
    EXPECT_NEAR(left.mean(), whole.mean(), 1e-10);
    EXPECT_NEAR(left.variance(), whole.variance(), 1e-10);
    EXPECT_DOUBLE_EQ(left.min(), whole.min());
    EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(RunningStats, MergeWithEmptySides)
{
    RunningStats a, b;
    a.add(1.0);
    a.add(3.0);
    a.merge(b); // empty right
    EXPECT_EQ(a.count(), 2u);
    b.merge(a); // empty left
    EXPECT_EQ(b.count(), 2u);
    EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(RunningStats, ResetClearsState)
{
    RunningStats s;
    s.add(1.0);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
}

TEST(Stats, QuantileInterpolates)
{
    std::vector<double> xs = {4.0, 1.0, 3.0, 2.0};
    EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 4.0);
    EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 2.5);
    EXPECT_DOUBLE_EQ(quantile({7.0}, 0.3), 7.0);
}

TEST(Stats, QuantileValidatesInput)
{
    EXPECT_THROW(quantile({}, 0.5), Error);
    EXPECT_THROW(quantile({1.0}, 1.5), Error);
}

TEST(Stats, GeometricMean)
{
    EXPECT_NEAR(geometricMean({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_NEAR(geometricMean({2.0, 2.0, 2.0}), 2.0, 1e-12);
    EXPECT_THROW(geometricMean({1.0, -1.0}), Error);
}

TEST(Stats, PearsonPerfectCorrelation)
{
    const std::vector<double> xs = {1, 2, 3, 4, 5};
    const std::vector<double> up = {2, 4, 6, 8, 10};
    const std::vector<double> down = {5, 4, 3, 2, 1};
    EXPECT_NEAR(pearson(xs, up), 1.0, 1e-12);
    EXPECT_NEAR(pearson(xs, down), -1.0, 1e-12);
}

TEST(Stats, PearsonNearZeroForIndependent)
{
    Rng rng(9);
    std::vector<double> xs, ys;
    for (int i = 0; i < 20000; ++i) {
        xs.push_back(rng.normal());
        ys.push_back(rng.normal());
    }
    EXPECT_NEAR(pearson(xs, ys), 0.0, 0.03);
}

TEST(Stats, LeastSquaresRecoversExactLine)
{
    std::vector<double> xs, ys;
    for (int i = 0; i < 10; ++i) {
        xs.push_back(i);
        ys.push_back(3.0 - 0.5 * i);
    }
    const LinearFit fit = fitLeastSquares(xs, ys);
    EXPECT_NEAR(fit.intercept, 3.0, 1e-12);
    EXPECT_NEAR(fit.slope, -0.5, 1e-12);
    EXPECT_NEAR(fit.predict(20.0), -7.0, 1e-12);
}

TEST(Stats, LeastSquaresRejectsDegenerateInput)
{
    EXPECT_THROW(fitLeastSquares({1.0}, {2.0}), Error);
    EXPECT_THROW(fitLeastSquares({1.0, 1.0}, {2.0, 3.0}), Error);
}

TEST(Stats, VarianceRequiresTwoPoints)
{
    EXPECT_THROW(variance({1.0}), Error);
    EXPECT_THROW(mean({}), Error);
}

} // namespace
} // namespace bayes
