// Fixture: R010 layering — math sits below workloads and may not
// reach up into it. The freestanding include right before it creates
// no layer edge (math has no support dependency in the manifest), so
// only the workloads include fires.
#pragma once
#include "support/free.hpp"
#include "workloads/api.hpp"  // EXPECT: R010
