/**
 * @file
 * `memory` — modeling memory retrieval in sentence comprehension.
 *
 * Hierarchical Bayesian model after Nicenboim & Vasishth (2016): a
 * direct-access (content-addressable) retrieval account in which each
 * participant has random effects on both retrieval accuracy (logistic)
 * and retrieval latency (lognormal), with memory load as the
 * experimental manipulation.
 */
#pragma once

#include "workloads/workload.hpp"

namespace bayes::workloads {

/** Hierarchical retrieval accuracy + latency workload. */
class MemoryRetrieval : public Workload
{
  public:
    explicit MemoryRetrieval(double dataScale = 1.0);

    double logProb(const ppl::ParamView<double>& p) const override;
    ad::Var logProb(const ppl::ParamView<ad::Var>& p) const override;

    /** Number of participants. */
    std::size_t numSubjects() const { return numSubjects_; }

    /** Number of trials. */
    std::size_t numTrials() const { return accuracy_.size(); }

    /** Parameter block indices. */
    enum Block : std::size_t
    {
        kAlpha,     ///< grand accuracy intercept (logit)
        kBetaLoad,  ///< accuracy cost per unit memory load
        kSigmaU,    ///< accuracy random-effect scale, > 0
        kU,         ///< per-subject accuracy effects
        kMuRt,      ///< grand log-latency intercept
        kGammaLoad, ///< latency cost per unit memory load
        kDeltaAcc,  ///< latency shift on correct retrievals
        kSigmaV,    ///< latency random-effect scale, > 0
        kV,         ///< per-subject latency effects
        kSigmaRt,   ///< lognormal observation noise, > 0
    };

  private:
    template <typename T>
    T logDensity(const ppl::ParamView<T>& p) const;

    std::size_t numSubjects_;
    std::vector<int> subject_;
    std::vector<double> load_;
    std::vector<int> accuracy_;
    std::vector<double> rt_;
};

} // namespace bayes::workloads
