/**
 * @file
 * NUTS kernel unit tests: tree growth bounds, divergence flagging,
 * step-size effects, and detailed-balance sanity (distribution
 * preservation on a known target).
 */
#include <gtest/gtest.h>

#include <cmath>

#include "math/distributions.hpp"
#include "samplers/nuts.hpp"
#include "support/stats.hpp"

namespace bayes::samplers {
namespace {

class Std1d : public ppl::Model
{
  public:
    Std1d() : layout_({{"x", 1, ppl::TransformKind::Identity, 0, 0}}) {}
    const std::string& name() const override { return name_; }
    const ppl::ParamLayout& layout() const override { return layout_; }
    std::size_t modeledDataBytes() const override { return 0; }
    double logProb(const ppl::ParamView<double>& p) const override
    {
        return math::std_normal_lpdf(p.scalar(0));
    }
    ad::Var logProb(const ppl::ParamView<ad::Var>& p) const override
    {
        return math::std_normal_lpdf(p.scalar(0));
    }

  private:
    std::string name_ = "std1d";
    ppl::ParamLayout layout_;
};

class NutsTest : public ::testing::Test
{
  protected:
    NutsTest() : eval_(model_), ham_(eval_) {}

    PhasePoint
    origin()
    {
        PhasePoint z;
        z.q = {0.0};
        ham_.refresh(z);
        return z;
    }

    Std1d model_;
    ppl::Evaluator eval_;
    Hamiltonian ham_;
};

TEST_F(NutsTest, GradEvalsBoundedByTreeDepth)
{
    NutsSampler nuts(ham_, /*maxTreeDepth=*/10);
    nuts.setStepSize(0.5);
    Rng rng(1);
    PhasePoint z = origin();
    for (int i = 0; i < 200; ++i) {
        const auto t = nuts.transition(z, rng);
        // A depth-d trajectory contains at most 2^d - 1 leapfrogs.
        EXPECT_LE(t.gradEvals, (1u << t.depth));
        EXPECT_LE(t.depth, 10);
    }
}

TEST_F(NutsTest, MaxDepthCapsTheTrajectory)
{
    NutsSampler nuts(ham_, /*maxTreeDepth=*/3);
    nuts.setStepSize(0.01); // tiny step: wants deep trees
    Rng rng(2);
    PhasePoint z = origin();
    const auto t = nuts.transition(z, rng);
    EXPECT_LE(t.depth, 3);
    EXPECT_LE(t.gradEvals, 8u);
}

TEST_F(NutsTest, ReasonableStepGivesHighAcceptStat)
{
    NutsSampler nuts(ham_, 10);
    nuts.setStepSize(0.4);
    Rng rng(3);
    PhasePoint z = origin();
    RunningStats accept;
    for (int i = 0; i < 300; ++i)
        accept.add(nuts.transition(z, rng).acceptStat);
    EXPECT_GT(accept.mean(), 0.85);
}

TEST_F(NutsTest, HugeStepSizeFlagsLowAccept)
{
    NutsSampler nuts(ham_, 10);
    nuts.setStepSize(25.0);
    Rng rng(4);
    PhasePoint z = origin();
    RunningStats accept;
    for (int i = 0; i < 100; ++i)
        accept.add(nuts.transition(z, rng).acceptStat);
    EXPECT_LT(accept.mean(), 0.5);
}

TEST_F(NutsTest, PreservesTheTargetDistribution)
{
    // Start exactly in the typical set; long-run moments must match
    // N(0,1) — the core invariance property.
    NutsSampler nuts(ham_, 10);
    nuts.setStepSize(0.6);
    Rng rng(5);
    PhasePoint z = origin();
    RunningStats stats;
    for (int i = 0; i < 8000; ++i) {
        nuts.transition(z, rng);
        stats.add(z.q[0]);
    }
    EXPECT_NEAR(stats.mean(), 0.0, 0.06);
    EXPECT_NEAR(stats.stddev(), 1.0, 0.06);
}

TEST_F(NutsTest, TransitionsAreDeterministicGivenRngState)
{
    NutsSampler nuts(ham_, 10);
    nuts.setStepSize(0.5);
    Rng a(9), b(9);
    PhasePoint za = origin(), zb = origin();
    for (int i = 0; i < 50; ++i) {
        nuts.transition(za, a);
        nuts.transition(zb, b);
        EXPECT_EQ(za.q[0], zb.q[0]);
    }
}

/** Quartic well with enormous curvature — a divergence factory. */
class Cliff : public ppl::Model
{
  public:
    Cliff() : layout_({{"x", 1, ppl::TransformKind::Identity, 0, 0}}) {}
    const std::string& name() const override { return name_; }
    const ppl::ParamLayout& layout() const override { return layout_; }
    std::size_t modeledDataBytes() const override { return 0; }
    double logProb(const ppl::ParamView<double>& p) const override
    {
        return body(p.scalar(0));
    }
    ad::Var logProb(const ppl::ParamView<ad::Var>& p) const override
    {
        return body(p.scalar(0));
    }

  private:
    template <typename T>
    T
    body(const T& x) const
    {
        using ad::square;
        using math::square;
        return -1e6 * square(x) * square(x);
    }
    std::string name_ = "cliff";
    ppl::ParamLayout layout_;
};

TEST_F(NutsTest, DivergenceDetectedOnCliff)
{
    // Large steps on the cliff produce huge energy errors that must be
    // flagged divergent.
    Cliff cliff;
    ppl::Evaluator eval(cliff);
    Hamiltonian ham(eval);
    NutsSampler nuts(ham, 10);
    nuts.setStepSize(5.0);
    Rng rng(6);
    PhasePoint z;
    z.q = {0.5};
    ham.refresh(z);
    int divergences = 0;
    for (int i = 0; i < 50; ++i)
        divergences += nuts.transition(z, rng).divergent;
    EXPECT_GT(divergences, 10);
}

} // namespace
} // namespace bayes::samplers
