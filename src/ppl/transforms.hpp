/**
 * @file
 * Constraining transforms between the sampler's unconstrained space and
 * the model's constrained parameter space, with log-Jacobian
 * corrections. Mirrors Stan's approach: HMC/NUTS always runs on R^n and
 * the transform absorbs the support constraints.
 */
#pragma once

#include "math/functions.hpp"

namespace bayes::ppl {

/** Transform families supported for parameter blocks. */
enum class TransformKind
{
    Identity,   ///< unconstrained scalar
    LowerBound, ///< x = lb + exp(u)
    UpperBound, ///< x = ub - exp(u)
    Bounded,    ///< x = lb + (ub - lb) * inv_logit(u)
    Ordered,    ///< strictly increasing vector (block-level)
};

/**
 * Apply the scalar constraining transform for one coordinate.
 * @param kind  transform family (not Ordered — that is block-level)
 * @param u     unconstrained value
 * @param lb    lower bound (LowerBound/Bounded)
 * @param ub    upper bound (UpperBound/Bounded)
 */
template <typename T>
T
constrainScalar(TransformKind kind, const T& u, double lb, double ub)
{
    using std::exp;
    using ad::exp;
    switch (kind) {
      case TransformKind::Identity:
        return u;
      case TransformKind::LowerBound:
        return lb + exp(u);
      case TransformKind::UpperBound:
        return ub - exp(u);
      case TransformKind::Bounded:
        return lb + (ub - lb) * math::invLogit(u);
      case TransformKind::Ordered:
        break;
    }
    BAYES_ASSERT(false && "Ordered handled at block level");
    return u;
}

/**
 * Log absolute Jacobian determinant contribution of one coordinate of
 * the scalar transforms.
 */
template <typename T>
T
logJacobianScalar(TransformKind kind, const T& u, double lb, double ub)
{
    switch (kind) {
      case TransformKind::Identity:
        return T(0.0);
      case TransformKind::LowerBound:
      case TransformKind::UpperBound:
        return u;
      case TransformKind::Bounded:
        return std::log(ub - lb) - math::log1pExp(u) - math::log1pExp(-u);
      case TransformKind::Ordered:
        break;
    }
    BAYES_ASSERT(false && "Ordered handled at block level");
    return T(0.0);
}

/**
 * Constrain an ordered block in place: x[0] = u[0],
 * x[i] = x[i-1] + exp(u[i]). Returns the log-Jacobian (sum of u[1:]).
 */
template <typename T>
T
constrainOrdered(const T* u, T* x, std::size_t n)
{
    using std::exp;
    using ad::exp;
    BAYES_ASSERT(n > 0);
    x[0] = u[0];
    T logJ = 0.0;
    for (std::size_t i = 1; i < n; ++i) {
        x[i] = x[i - 1] + exp(u[i]);
        logJ += u[i];
    }
    return logJ;
}

/** Inverse of the scalar transforms (used for initialization helpers). */
double unconstrainScalar(TransformKind kind, double x, double lb, double ub);

} // namespace bayes::ppl
