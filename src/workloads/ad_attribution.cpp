#include "workloads/ad_attribution.hpp"

#include <cmath>
#include <span>

#include "math/distributions.hpp"
#include "math/vec_kernels.hpp"

namespace bayes::workloads {

AdAttribution::AdAttribution(double dataScale)
    : Workload(
          WorkloadInfo{
              "ad", "Logistic Regression",
              "Advertising attribution in the movie industry",
              "Lei, Sanders & Dawson, StanCon 2017 [15]",
              "survey: demographics + advertising channels seen",
              /*defaultIterations=*/1400},
          dataScale)
{
    Rng rng = dataRng();
    numFeatures_ = 12; // 8 channels + 4 demographic covariates
    const std::size_t n = scaled(420);

    std::vector<double> betaTrue(numFeatures_);
    for (auto& b : betaTrue)
        b = rng.normal(0.0, 0.7);
    const double interceptTrue = -0.8;

    features_.resize(n * numFeatures_);
    outcomes_.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        double eta = interceptTrue;
        for (std::size_t k = 0; k < numFeatures_; ++k) {
            // Channels (first 8) are binary exposures; demographics
            // are standardized continuous covariates.
            const double x =
                k < 8 ? static_cast<double>(rng.bernoulli(0.35))
                      : rng.normal(0.0, 1.0);
            features_[i * numFeatures_ + k] = x;
            eta += betaTrue[k] * x;
        }
        outcomes_[i] = rng.bernoulli(math::invLogit(eta));
    }

    setModeledDataBytes(features_.size() * sizeof(double)
                        + outcomes_.size() * sizeof(int));

    setLayout({
        {"intercept", 1, ppl::TransformKind::Identity, 0, 0},
        {"beta", numFeatures_, ppl::TransformKind::Identity, 0, 0},
    });
}

/** Prior terms shared verbatim by the single and batched fused paths. */
template <typename T>
T
AdAttribution::priorLp(const ppl::ParamView<T>& p) const
{
    using namespace bayes::math;
    T lp = normal_lpdf(p.scalar(kIntercept), 0.0, 2.0);
    lp += normal_lpdf_vec(p.block(kBeta), 0.0, 1.0);
    return lp;
}

template <typename T>
T
AdAttribution::logDensity(const ppl::ParamView<T>& p) const
{
    using namespace bayes::math;
    const T& intercept = p.scalar(kIntercept);

    T lp = priorLp(p);
    lp += bernoulli_logit_glm_lpmf(std::span<const int>(outcomes_),
                                   std::span<const double>(features_),
                                   intercept, p.block(kBeta));
    return lp;
}

template <typename T>
T
AdAttribution::logDensityScalar(const ppl::ParamView<T>& p) const
{
    using namespace bayes::math;
    const T& intercept = p.scalar(kIntercept);

    T lp = normal_lpdf(intercept, 0.0, 2.0);
    for (std::size_t k = 0; k < numFeatures_; ++k)
        // bayes-lint: allow(R007): reference scalar path; fused twin above
        lp += normal_lpdf(p.at(kBeta, k), 0.0, 1.0);

    for (std::size_t i = 0; i < outcomes_.size(); ++i) {
        T eta = intercept;
        const double* row = &features_[i * numFeatures_];
        for (std::size_t k = 0; k < numFeatures_; ++k)
            eta += p.at(kBeta, k) * row[k];
        // bayes-lint: allow(R007): reference scalar path; fused twin above
        lp += bernoulli_logit_lpmf(outcomes_[i], eta);
    }
    return lp;
}

template <typename T>
void
AdAttribution::logDensityBatch(const ppl::BatchParamView<T>& p,
                               std::span<T> lp) const
{
    using namespace bayes::math;
    const std::size_t lanes = p.lanes();
    // Per lane, the same prior terms in the same order as logDensity —
    // lane k's value and tape are bitwise those of a single-point call.
    for (std::size_t k = 0; k < lanes; ++k)
        lp[k] = priorLp(p.lane(k));
    // One pass over the feature matrix for all K lanes.
    const std::vector<T> alphas = p.scalarLanes(kIntercept);
    const std::vector<T> betas = p.blockLanes(kBeta);
    std::vector<T> like(lanes);
    bernoulli_logit_glm_lpmf_batch(std::span<const int>(outcomes_),
                                   std::span<const double>(features_),
                                   std::span<const T>(alphas),
                                   std::span<const T>(betas), numFeatures_,
                                   std::span<T>(like));
    for (std::size_t k = 0; k < lanes; ++k)
        lp[k] += like[k];
}

void
AdAttribution::logProbBatch(const ppl::BatchParamView<double>& p,
                            std::span<double> lp) const
{
    logDensityBatch(p, lp);
}

void
AdAttribution::logProbBatch(const ppl::BatchParamView<ad::Var>& p,
                            std::span<ad::Var> lp) const
{
    logDensityBatch(p, lp);
}

double
AdAttribution::logProb(const ppl::ParamView<double>& p) const
{
    return logDensity(p);
}

ad::Var
AdAttribution::logProb(const ppl::ParamView<ad::Var>& p) const
{
    return logDensity(p);
}

double
AdAttribution::logProbScalar(const ppl::ParamView<double>& p) const
{
    return logDensityScalar(p);
}

ad::Var
AdAttribution::logProbScalar(const ppl::ParamView<ad::Var>& p) const
{
    return logDensityScalar(p);
}

std::vector<double>
AdAttribution::dataSufficientStats() const
{
    // Bernoulli GLM: dataset is identified by shape, the outcome count,
    // and feature moments plus the outcome/feature cross moment.
    double sumY = 0.0;
    for (int y : outcomes_)
        sumY += y;
    double sumX = 0.0;
    double sumXX = 0.0;
    for (double x : features_) {
        sumX += x;
        sumXX += x * x;
    }
    double cross = 0.0;
    for (std::size_t i = 0; i < outcomes_.size(); ++i) {
        if (outcomes_[i] == 0)
            continue;
        for (std::size_t j = 0; j < numFeatures_; ++j)
            cross += features_[i * numFeatures_ + j];
    }
    return {static_cast<double>(outcomes_.size()),
            static_cast<double>(numFeatures_),
            sumY,
            sumX,
            sumXX,
            cross};
}

} // namespace bayes::workloads
