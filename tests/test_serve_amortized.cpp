/**
 * @file
 * The amortized two-tier serving policy (`amortized` ctest label):
 * cache/gate unit contracts, the cold -> install -> serve lifecycle,
 * tier accounting exactness, the mixed repeat-heavy trace acceptance
 * criteria (>=50% of requests answered from the cheap tier and repeat
 * p50 service time >=5x better than the all-NUTS baseline), LRU
 * warm-cache eviction, and byte-identity of cold/escalated full runs
 * against direct sampler invocations (shared determinism harness).
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "determinism_harness.hpp"
#include "ppl/evaluator.hpp"
#include "samplers/amortize.hpp"
#include "samplers/runner.hpp"
#include "serve/server.hpp"
#include "workloads/workload.hpp"

namespace {

using namespace bayes;
using namespace bayes::serve;
namespace am = samplers::amortize;

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kScale = 0.25;

/** Small-but-convergent NUTS job (the full path under test). */
samplers::Config
nutsConfig()
{
    samplers::Config config;
    config.algorithm = samplers::Algorithm::Nuts;
    config.chains = 2;
    config.iterations = 200;
    return config;
}

/** Fast ADVI/importance settings for the cheap tier. */
am::AmortizeConfig
tierConfig()
{
    am::AmortizeConfig config;
    config.advi.maxIterations = 400;
    config.advi.outputDraws = 256;
    config.importanceDraws = 128;
    return config;
}

ServerConfig
tieredServer()
{
    ServerConfig config;
    config.amortizedTier = true;
    config.amortize = tierConfig();
    return config;
}

Request
amortRequest(const std::string& workload)
{
    Request request;
    request.tenant = "test";
    request.workload = workload;
    request.dataScale = kScale;
    request.config = nutsConfig();
    request.deadlineSeconds = kInf;
    return request;
}

TEST(AmortizedCache, DigestIsDeterministicAndGatesAmortizability)
{
    const auto ad = workloads::makeWorkload("ad", kScale);
    const std::string digest = am::AmortizedCache::statsDigest(*ad);
    EXPECT_FALSE(digest.empty());
    // Same workload + scale regenerates the same dataset: same digest.
    const auto adAgain = workloads::makeWorkload("ad", kScale);
    EXPECT_EQ(digest, am::AmortizedCache::statsDigest(*adAgain));
    // A different scale is a different dataset.
    const auto adFull = workloads::makeWorkload("ad", 1.0);
    EXPECT_NE(digest, am::AmortizedCache::statsDigest(*adFull));
    // A model exposing no sufficient statistics is not amortizable.
    const auto ode = workloads::makeWorkload("ode", kScale);
    EXPECT_TRUE(am::AmortizedCache::statsDigest(*ode).empty());
}

TEST(AmortizedCache, ColdFitNeverPassesUntilAReferenceIsInstalled)
{
    const auto model = workloads::makeWorkload("ad", kScale);
    ppl::Evaluator eval(*model);
    am::AmortizedCache cache(tierConfig());
    const am::CacheKey key{"ad", am::AmortizedCache::statsDigest(*model),
                           kScale};
    EXPECT_EQ(cache.find(key), nullptr);

    am::Entry& entry = cache.fit(key, *model, eval);
    EXPECT_EQ(cache.find(key), &entry);
    EXPECT_EQ(cache.size(), 1u);
    EXPECT_TRUE(std::isfinite(entry.khat));
    EXPECT_EQ(entry.mean.size(), model->layout().dim());
    EXPECT_EQ(entry.sd.size(), model->layout().dim());

    // No reference yet: the gate must refuse, whatever the thresholds.
    const am::GateDecision before = cache.gate(entry);
    EXPECT_FALSE(before.pass);
    EXPECT_STREQ(before.rejectedBy, "no-reference");

    const samplers::RunResult run = samplers::run(*model, nutsConfig());
    cache.installReference(entry, run);
    EXPECT_TRUE(entry.hasReference);
    EXPECT_TRUE(std::isfinite(entry.klVsReference));
    EXPECT_TRUE(std::isfinite(entry.refMaxRhat));

    // "ad" is an easy mean-field target: the default gate accepts it.
    const am::GateDecision after = cache.gate(entry);
    EXPECT_TRUE(after.pass) << after.rejectedBy;
    EXPECT_STREQ(after.rejectedBy, "");
}

TEST(AmortizedCache, GateComparisonsRejectEachDiagnosticIndependently)
{
    const auto model = workloads::makeWorkload("ad", kScale);
    ppl::Evaluator eval(*model);

    am::AmortizeConfig config = tierConfig();
    config.gate.khatMax = -kInf; // nothing passes this
    am::AmortizedCache strict(config);
    const am::CacheKey key{"ad", am::AmortizedCache::statsDigest(*model),
                           kScale};
    am::Entry& entry = strict.fit(key, *model, eval);
    strict.installReference(entry, samplers::run(*model, nutsConfig()));
    EXPECT_STREQ(strict.gate(entry).rejectedBy, "khat");

    // NaN diagnostics must reject, never pass (negated comparisons).
    entry.khat = std::numeric_limits<double>::quiet_NaN();
    EXPECT_FALSE(strict.gate(entry).pass);
}

TEST(AmortizedCache, AccountingIsExact)
{
    am::AmortizedCache cache(tierConfig());
    am::Entry entry;
    cache.noteRequest();
    cache.noteCold();
    cache.noteRequest();
    cache.noteServed(entry);
    cache.noteRequest();
    cache.noteEscalated();
    const am::Stats& s = cache.stats();
    EXPECT_EQ(s.requests, 3u);
    EXPECT_EQ(s.served + s.escalated + s.cold, s.requests);
    EXPECT_EQ(entry.hits, 1u);
}

TEST(ServeAmortized, ColdThenServedLifecycle)
{
    Server server(tieredServer());
    const auto cold = server.submit(amortRequest("ad"));
    const auto repeat = server.submit(amortRequest("ad"));
    server.drain();

    // First touch of the key takes the full path and installs the fit.
    const Response& first = server.response(cold);
    EXPECT_EQ(first.status, RequestStatus::Ok);
    EXPECT_FALSE(first.servedAmortized);
    EXPECT_FALSE(first.escalated);
    EXPECT_EQ(first.draws, nutsConfig().postWarmup());

    // The repeat is answered from the cache: no MCMC at all.
    const Response& second = server.response(repeat);
    EXPECT_EQ(second.status, RequestStatus::Ok);
    EXPECT_TRUE(second.servedAmortized);
    EXPECT_FALSE(second.escalated);
    EXPECT_GT(second.draws, 0);
    EXPECT_EQ(second.posteriorMean.size(), first.posteriorMean.size());
    EXPECT_GT(second.serviceSeconds, 0.0);
    EXPECT_LT(second.serviceSeconds, first.serviceSeconds);

    const am::Stats stats = server.amortStats();
    EXPECT_EQ(stats.requests, 2u);
    EXPECT_EQ(stats.cold, 1u);
    EXPECT_EQ(stats.served, 1u);
    EXPECT_EQ(stats.escalated, 0u);
}

TEST(ServeAmortized, OptOutAndNonAmortizableTakeTheFullPath)
{
    Server server(tieredServer());
    Request optOut = amortRequest("ad");
    optOut.allowAmortized = false;
    const auto a = server.submit(optOut);
    const auto b = server.submit(optOut);
    // "ode" exposes no sufficient statistics: never enters the tier.
    const auto c = server.submit(amortRequest("ode"));
    server.drain();

    for (auto id : {a, b, c}) {
        const Response& r = server.response(id);
        EXPECT_EQ(r.status, RequestStatus::Ok);
        EXPECT_FALSE(r.servedAmortized);
        EXPECT_EQ(r.draws, nutsConfig().postWarmup());
    }
    EXPECT_EQ(server.amortStats().requests, 0u);
}

/**
 * The acceptance-criteria trace: >=70% repeat requests over three
 * workload families. "ad" and "votes" pass the default gate; mean-field
 * ADVI on the hierarchical "12cities" posterior earns a Pareto-k̂ above
 * the 0.7 cutoff, so its repeats escalate — the trace exercises served,
 * escalated and cold outcomes in one run.
 */
std::vector<Request>
mixedTrace()
{
    std::vector<Request> trace;
    for (int round = 0; round < 10; ++round) {
        trace.push_back(amortRequest("ad"));
        trace.push_back(amortRequest("votes"));
        if (round < 4)
            trace.push_back(amortRequest("12cities"));
    }
    return trace;
}

TEST(ServeAmortized, MixedTraceMeetsTheAmortizationTargets)
{
    const std::vector<Request> trace = mixedTrace();
    const std::size_t unique = 3;
    ASSERT_GE(10 * (trace.size() - unique), 7 * trace.size())
        << "trace must be >=70% repeats";

    Server tiered(tieredServer());
    std::vector<std::uint64_t> ids;
    for (const Request& r : trace)
        ids.push_back(tiered.submit(r));
    tiered.drain();

    // Tier accounting: every request that entered the tier terminated
    // in exactly one of {served, escalated, cold}.
    const am::Stats stats = tiered.amortStats();
    EXPECT_EQ(stats.requests, trace.size());
    EXPECT_EQ(stats.served + stats.escalated + stats.cold, stats.requests);
    EXPECT_EQ(stats.cold, unique);
    EXPECT_GT(stats.escalated, 0u) << "12cities repeats must escalate";

    // >=50% of the trace answered from the cheap tier.
    std::size_t served = 0;
    for (auto id : ids) {
        const Response& r = tiered.response(id);
        EXPECT_EQ(r.status, RequestStatus::Ok)
            << requestStatusName(r.status);
        if (r.servedAmortized)
            ++served;
    }
    EXPECT_EQ(served, stats.served);
    EXPECT_GE(served * 2, trace.size());

    // Repeat-request p50 service time >=5x better than the identical
    // trace on an all-NUTS server (amortized tier off).
    Server baseline;
    std::vector<std::uint64_t> baseIds;
    for (const Request& r : trace)
        baseIds.push_back(baseline.submit(r));
    baseline.drain();

    auto repeatP50 = [&](const Server& server,
                         const std::vector<std::uint64_t>& requestIds) {
        std::vector<double> service;
        std::vector<std::string> seen;
        for (auto id : requestIds) {
            const Response& r = server.response(id);
            if (std::find(seen.begin(), seen.end(), r.workload)
                == seen.end()) {
                seen.push_back(r.workload); // first touch: not a repeat
                continue;
            }
            service.push_back(r.serviceSeconds);
        }
        std::sort(service.begin(), service.end());
        return service[service.size() / 2];
    };
    const double tieredP50 = repeatP50(tiered, ids);
    const double baselineP50 = repeatP50(baseline, baseIds);
    EXPECT_GE(baselineP50, 5.0 * tieredP50)
        << "baseline p50 " << baselineP50 << "s vs amortized p50 "
        << tieredP50 << "s";
}

TEST(ServeAmortized, ColdRunDrawsAreByteIdenticalToADirectRun)
{
    Server server(tieredServer());
    Request request = amortRequest("ad");
    request.keepDraws = true;
    const auto id = server.submit(request);
    server.drain();

    const Response& r = server.response(id);
    ASSERT_EQ(r.status, RequestStatus::Ok);
    ASSERT_NE(r.run, nullptr);

    // Replicate the server's full path directly: same model identity
    // (workload, dataScale), same config, same pooled execution.
    const auto model = workloads::makeWorkload("ad", kScale);
    samplers::Config config = nutsConfig();
    config.execution = samplers::ExecutionPolicy::pool(0);
    const samplers::DeadlineRunResult direct =
        samplers::runWithDeadline(*model, config, kInf);
    EXPECT_TRUE(harness::identicalRuns(*r.run, direct.run));
}

TEST(ServeAmortized, EscalatedRunDrawsAreByteIdenticalToADirectRun)
{
    // A gate that rejects everything forces every repeat to escalate.
    ServerConfig config = tieredServer();
    config.amortize.gate.khatMax = -kInf;
    Server server(config);

    const auto cold = server.submit(amortRequest("votes"));
    Request repeat = amortRequest("votes");
    repeat.keepDraws = true;
    const auto escalated = server.submit(repeat);
    server.drain();

    EXPECT_EQ(server.response(cold).status, RequestStatus::Ok);
    const Response& r = server.response(escalated);
    ASSERT_EQ(r.status, RequestStatus::Ok);
    EXPECT_TRUE(r.escalated);
    EXPECT_FALSE(r.servedAmortized);
    ASSERT_NE(r.run, nullptr);

    const am::Stats stats = server.amortStats();
    EXPECT_EQ(stats.requests, 2u);
    EXPECT_EQ(stats.cold, 1u);
    EXPECT_EQ(stats.escalated, 1u);
    EXPECT_EQ(stats.served, 0u);

    const auto model = workloads::makeWorkload("votes", kScale);
    samplers::Config direct = nutsConfig();
    direct.execution = samplers::ExecutionPolicy::pool(0);
    const samplers::DeadlineRunResult reference =
        samplers::runWithDeadline(*model, direct, kInf);
    EXPECT_TRUE(harness::identicalRuns(*r.run, reference.run));
}

TEST(ServeAmortized, WarmCacheEvictsLeastRecentlyUsedAtCapacity)
{
    ServerConfig config; // amortized tier off: pure LRU behavior
    config.warmCacheCapacity = 1;
    Server server(config);

    Request a = amortRequest("ad");
    a.config = samplers::Config{};
    a.config.algorithm = samplers::Algorithm::Mh;
    a.config.chains = 2;
    a.config.iterations = 40;
    Request b = a;
    b.workload = "votes";

    server.submit(a);
    server.submit(b);
    server.submit(a);
    server.drain();

    // Capacity one: each alternation evicts the other key. submit() and
    // serveNext() each touch warm(), so the exact count is an
    // implementation detail — but evictions must have happened, and
    // every request must still be served correctly.
    EXPECT_GT(server.warmEvictions(), 0u);
    EXPECT_GE(server.warmMisses(), 3u);
    for (const Response& r : server.responses())
        EXPECT_EQ(r.status, RequestStatus::Ok)
            << requestStatusName(r.status);
}

} // namespace
