/**
 * @file
 * Metrics registry — named counters, gauges and histograms shared by
 * the whole runtime (paper §IV: the headline results are measurements;
 * this layer is how the runtime exposes its own).
 *
 * Design constraints, in order:
 *  1. Writers never block writers. Counters are sharded across
 *     cache-line-padded atomics indexed by a per-thread slot, so pool
 *     workers bumping the same counter touch different lines;
 *     histograms use relaxed atomic bucket counts.
 *  2. Reads aggregate. `Registry::snapshot()` sums the shards while
 *     writers keep writing — each metric is individually coherent
 *     (relaxed atomics), the snapshot as a whole is a point-in-time
 *     approximation. After the workload quiesces (e.g. `waitAll`),
 *     a snapshot is exact.
 *  3. Zero cost when compiled out. Building with `-DBAYES_OBS=OFF`
 *     defines `BAYES_OBS_ENABLED=0`; every write path collapses to an
 *     empty inline body. The registry itself stays linkable so
 *     exporters compile either way (they just report zeros).
 *
 * Handles returned by `Registry::{counter,gauge,histogram}` are stable
 * for the process lifetime — cache them in a function-local static at
 * the instrumentation site and the steady-state cost is one relaxed
 * atomic add.
 */
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <vector>

// Freestanding support headers (no layer edge — see the manifest in
// docs/architecture.md): obs sits below support but may use the
// annotated lock primitives.
#include "support/thread_safety.hpp"

#ifndef BAYES_OBS_ENABLED
#define BAYES_OBS_ENABLED 1
#endif

namespace bayes::obs {

/** True when the observability layer is compiled in (BAYES_OBS=ON). */
inline constexpr bool kCompiledIn = BAYES_OBS_ENABLED != 0;

/** Small dense per-thread slot id, assigned on first use. */
std::size_t threadSlot() noexcept;

/** Monotonic event counter, sharded per thread to avoid contention. */
class Counter
{
  public:
    Counter() = default;
    Counter(const Counter&) = delete;
    Counter& operator=(const Counter&) = delete;

    /** Add @p n; wait-free, relaxed, safe from any thread. */
    void
    add(std::uint64_t n = 1) noexcept
    {
        if constexpr (kCompiledIn)
            shards_[threadSlot() % kShards].value.fetch_add(
                n, std::memory_order_relaxed);
    }

    /** Aggregate over all shards (approximate while writers run). */
    std::uint64_t value() const noexcept;

    /** Zero every shard (handles stay valid). */
    void reset() noexcept;

  private:
    static constexpr std::size_t kShards = 16;
    struct alignas(64) Shard
    {
        std::atomic<std::uint64_t> value{0};
    };
    std::array<Shard, kShards> shards_{};
};

/** Last-written double value (e.g. the most recent R-hat). */
class Gauge
{
  public:
    Gauge() = default;
    Gauge(const Gauge&) = delete;
    Gauge& operator=(const Gauge&) = delete;

    void
    set(double v) noexcept
    {
        if constexpr (kCompiledIn)
            value_.store(v, std::memory_order_relaxed);
    }

    double value() const noexcept
    {
        return value_.load(std::memory_order_relaxed);
    }

    void reset() noexcept { value_.store(0.0, std::memory_order_relaxed); }

  private:
    std::atomic<double> value_{0.0};
};

/** Aggregated view of one histogram (see Histogram::stats). */
struct HistogramStats
{
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0; ///< 0 when count == 0
    double max = 0.0;
    double p50 = 0.0; ///< quantiles carry log-bucket resolution (~19%)
    double p90 = 0.0;
    double p99 = 0.0;

    double mean() const { return count ? sum / static_cast<double>(count) : 0.0; }
};

/**
 * Log-bucketed distribution of positive doubles (latencies, depths,
 * R-hat values). Buckets are quarter-octaves (4 per power of two)
 * spanning [2^-30, 2^34) ≈ [1 ns, 1.7e10] with under/overflow bins, so
 * quantile estimates are within ~19% relative error — plenty for
 * latency telemetry. All writes are relaxed atomics.
 */
class Histogram
{
  public:
    Histogram() = default;
    Histogram(const Histogram&) = delete;
    Histogram& operator=(const Histogram&) = delete;

    /** Record @p v; non-positive values land in the underflow bin. */
    void
    observe(double v) noexcept
    {
        if constexpr (kCompiledIn)
            observeImpl(v);
    }

    /** Aggregate count/sum/min/max and interpolated quantiles. */
    HistogramStats stats() const noexcept;

    /** Value at quantile @p q in [0,1] (bucket upper-bound estimate). */
    double quantile(double q) const noexcept;

    void reset() noexcept;

  private:
    void observeImpl(double v) noexcept;
    static int bucketFor(double v) noexcept;
    static double bucketUpper(int bucket) noexcept;

    static constexpr int kPerOctave = 4;
    static constexpr int kMinExp = -30;
    static constexpr int kMaxExp = 34;
    /** [0] underflow, [1..N] log buckets, [N+1] overflow. */
    static constexpr int kBuckets = (kMaxExp - kMinExp) * kPerOctave + 2;

    std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
    std::atomic<std::uint64_t> count_{0};
    std::atomic<double> sum_{0.0};
    /** ±infinity sentinels until the first observation lands. */
    std::atomic<double> min_{std::numeric_limits<double>::infinity()};
    std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
};

/** Point-in-time aggregate of every registered metric. */
struct Snapshot
{
    struct CounterSample
    {
        std::string name;
        std::uint64_t value;
    };
    struct GaugeSample
    {
        std::string name;
        double value;
    };
    struct HistogramSample
    {
        std::string name;
        HistogramStats stats;
    };

    std::vector<CounterSample> counters;
    std::vector<GaugeSample> gauges;
    std::vector<HistogramSample> histograms;

    /** Counter value by name; 0 when absent. */
    std::uint64_t counter(const std::string& name) const noexcept;
    /** Gauge value by name; 0.0 when absent. */
    double gauge(const std::string& name) const noexcept;
    /** Histogram stats by name; nullptr when absent. */
    const HistogramStats* histogram(const std::string& name) const noexcept;

    /** Serialize as a stable JSON object (metrics exporter format). */
    void writeJson(std::ostream& os) const;
    std::string json() const;
};

/**
 * Name → metric map. Metrics are created on first use and live for the
 * process lifetime; the three kinds occupy independent namespaces.
 */
class Registry
{
  public:
    /** The process-wide registry (leaked singleton — safe at exit). */
    static Registry& global() noexcept;

    Counter& counter(const std::string& name);
    Gauge& gauge(const std::string& name);
    Histogram& histogram(const std::string& name);

    /** Aggregate every metric (sorted by name within each kind). */
    Snapshot snapshot() const;

    /** Zero every metric in place; existing handles stay valid. */
    void reset() noexcept;

    Registry() = default;
    Registry(const Registry&) = delete;
    Registry& operator=(const Registry&) = delete;

  private:
    mutable support::Mutex mutex_;
    std::map<std::string, std::unique_ptr<Counter>> counters_
        BAYES_GUARDED_BY(mutex_);
    std::map<std::string, std::unique_ptr<Gauge>> gauges_
        BAYES_GUARDED_BY(mutex_);
    std::map<std::string, std::unique_ptr<Histogram>> histograms_
        BAYES_GUARDED_BY(mutex_);
};

} // namespace bayes::obs
