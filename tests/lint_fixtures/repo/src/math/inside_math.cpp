// Fixture: inside src/math/ the unqualified names bind to the safe
// wrappers, so only explicitly qualified raw calls are findings.
#include "math/special.hpp"

namespace fixture {
double ok(double x) { return lgamma(x); }          // binds to math wrapper
double bad(double x) { return std::tgamma(x); }    // EXPECT: R002
double worse(double x) { return ::lgamma(x); }     // EXPECT: R002
}  // namespace fixture
