/**
 * @file
 * Design-space exploration over {cores x chains x iterations} with an
 * inference-quality gate (paper §VI-B).
 *
 * Every candidate's result quality is scored as the KL divergence of
 * its posterior against a ground truth obtained by running the
 * user-configured job with twice the iterations (the paper's own
 * procedure). Latency and energy come from the architecture model. The
 * energy oracle is the cheapest quality-passing point; the
 * elision-achievable points are those reachable without knowing the
 * ground truth (4 chains + runtime convergence detection, any core
 * count).
 */
#pragma once

#include <string>
#include <vector>

#include "archsim/system.hpp"
#include "elide/elision.hpp"
#include "workloads/workload.hpp"

namespace bayes::dse {

/** One evaluated design point. */
struct DesignPoint
{
    std::string label;   ///< e.g. "user", "cd-2c", "2ch-50%"
    int cores = 0;
    int chains = 0;
    int iterations = 0;  ///< total iterations actually executed
    bool elided = false; ///< reached via runtime convergence detection
    double seconds = 0;
    double energyJ = 0;
    double kl = 0;       ///< quality vs ground truth (lower = better)
    bool qualityOk = false;
};

/** Exploration policy. */
struct DseConfig
{
    std::vector<int> coreCounts = {1, 2, 4};
    std::vector<int> chainCounts = {1, 2, 4};
    /** Iteration budgets explored, as fractions of the user setting. */
    std::vector<double> iterFractions = {0.3, 0.6, 1.0};
    /**
     * Quality gate: kl <= max(klFloor, klFactor * user-setting KL).
     * The user setting itself always passes.
     */
    double klFloor = 0.10;
    double klFactor = 3.0;
    /** Seed for all exploration runs. */
    std::uint64_t seed = 20190331;
    /**
     * How the exploration's sampling runs execute. Sequential runs
     * them inline in grid order; any parallel mode dispatches each run
     * (ground truth, user setting, every grid candidate, the elided
     * run) as one task on the shared pool — run-level parallelism, so
     * the inner runs stay sequential and can never deadlock the pool.
     * Results are identical either way (each run owns its seed).
     */
    samplers::ExecutionPolicy execution = samplers::ExecutionPolicy::pool();
};

/** Full exploration output for one workload on one platform. */
struct DseResult
{
    std::string workload;
    std::string platform;
    DesignPoint user;                   ///< original user setting, 4 cores
    std::vector<DesignPoint> grid;      ///< all grid points
    std::vector<DesignPoint> elision;   ///< detection-achievable points
    DesignPoint oracle;                 ///< min-energy quality-passing

    /** Energy saving of the best elision point over the user setting. */
    double elisionEnergySaving() const;

    /** Energy saving of the oracle over the user setting. */
    double oracleEnergySaving() const;

    /** The lowest-energy elision point. */
    const DesignPoint& bestElision() const;
};

/**
 * Explore the design space of @p workload on @p platform.
 * Runs real sampling per (chains, iterations) candidate and scores
 * every core count against the architecture model.
 */
DseResult explore(const workloads::Workload& workload,
                  const archsim::Platform& platform,
                  const DseConfig& config = DseConfig{});

} // namespace bayes::dse
