"""R014: amortized acceptance-gate threshold literals live in exactly
one header.

The two-tier serving policy accepts or escalates a request by comparing
precomputed diagnostics against the thresholds in
src/samplers/amortize_gate.hpp (GateThresholds). Those numbers are
policy, and policy drift is the classic failure mode: a second 0.7
hard-coded at a call site silently disagrees with the header the
operators tune. Any assignment or brace-initialization of a
GateThresholds member (khatMax / klMax / refRhatMax) with a numeric
literal anywhere else under src/ is a finding; call sites must read the
configured thresholds instead of restating them.
"""

from __future__ import annotations

import re

from ..engine import rule
from ..source import grep_rule, in_dirs

R014_PAT = re.compile(
    r"\b(?:khatMax|klMax|refRhatMax)\s*(?:=|\{)\s*[+-]?(?:\d|\.\d)")
R014_ALLOWED = {"src/samplers/amortize_gate.hpp"}


@rule("R014", "acceptance-gate threshold literals confined to "
              "src/samplers/amortize_gate.hpp")
def rule_r014(files, findings, _ctx):
    for sf in files:
        if not in_dirs(sf.relpath, "src") or sf.relpath in R014_ALLOWED:
            continue
        grep_rule(sf, R014_PAT, "R014",
                  "acceptance-gate threshold literal outside "
                  "src/samplers/amortize_gate.hpp; tune GateThresholds "
                  "there (or thread a configured value), never a "
                  "restated number", findings)
