/**
 * @file
 * §VII implications — first-order accelerator estimates per workload:
 * the paper's recommended programmable SIMD + special-function-unit
 * design against a SIMD-only variant (shows why SFUs matter for the
 * erf/atan/exp-heavy workloads) and a GPU-like design (wide but
 * serial-overhead-bound on short NUTS evaluations).
 */
#include "common.hpp"
#include "archsim/accelerator.hpp"
#include "support/table.hpp"

#include <cstdio>

using namespace bayes;
using archsim::AcceleratorSpec;

int
main()
{
    const auto cpu = archsim::Platform::skylake();
    const auto specs = {AcceleratorSpec::simdSfu(),
                        AcceleratorSpec::simdOnly(),
                        AcceleratorSpec::gpuLike()};

    Table table({"workload", "special op %", "CPU us/eval",
                 "SIMD+SFU x", "SIMD-only x", "GPU-like x", "bound"});
    for (const auto& name : workloads::suiteNames()) {
        const auto wl = workloads::makeWorkload(name);
        const auto profile = archsim::profileWorkload(*wl, 1);
        const auto& chain = profile.chains[0];

        // Reference CPU per-eval time from the core model (no misses:
        // single chain, warm caches).
        const auto cost =
            archsim::evalCost(chain, archsim::EvalMemStats{}, cpu);
        const double cpuSeconds = cost.cycles / (cpu.turboGhz * 1e9);
        const double specialFrac = 100.0
            * static_cast<double>(
                  chain.opCounts[static_cast<int>(ad::OpClass::Special)])
            / static_cast<double>(chain.tapeNodes);

        double speedups[3];
        bool bwBound = false;
        int i = 0;
        for (const auto& spec : specs) {
            const auto est =
                archsim::estimateAccelerator(chain, spec, cpuSeconds);
            speedups[i++] = est.speedupVsCpu;
            if (spec.name == "SIMD+SFU")
                bwBound = est.bandwidthBound;
        }
        table.row()
            .cell(name)
            .cell(specialFrac, 1)
            .cell(cpuSeconds * 1e6, 1)
            .cell(speedups[0], 1)
            .cell(speedups[1], 1)
            .cell(speedups[2], 1)
            .cell(bwBound ? "DRAM" : "compute");
        std::fprintf(stderr, "[bench] %s estimated\n", name.c_str());
    }
    printSection("Implications (§VII) — accelerator speedup estimates "
                 "per gradient evaluation",
                 table);
    return 0;
}
