#include "archsim/profiler.hpp"

#include <memory>

#include "samplers/dual_averaging.hpp"
#include "samplers/nuts.hpp"
#include "samplers/runner.hpp"

namespace bayes::archsim {

WorkloadProfile
profileWorkload(const ppl::Model& model, int chains, int warmupIters,
                std::uint64_t seed, bool scalarLikelihood)
{
    BAYES_CHECK(chains >= 1, "need at least one chain to profile");
    WorkloadProfile profile;

    // All evaluators must be alive simultaneously so their arenas and
    // data shadows occupy distinct address ranges, as real concurrent
    // chains would.
    std::vector<std::unique_ptr<ppl::Evaluator>> evals;
    evals.reserve(chains);
    for (int c = 0; c < chains; ++c) {
        evals.push_back(std::make_unique<ppl::Evaluator>(model));
        evals.back()->setScalarLikelihood(scalarLikelihood);
    }

    Rng master(seed);
    for (int c = 0; c < chains; ++c) {
        ppl::Evaluator& eval = *evals[c];
        Rng rng = master.fork();

        samplers::Hamiltonian ham(eval);
        samplers::NutsSampler nuts(ham, /*maxTreeDepth=*/8);
        samplers::PhasePoint z;
        z.q = samplers::findInitialPoint(eval, rng);
        ham.refresh(z);

        samplers::DualAveraging da(ham.findReasonableStepSize(z, rng), 0.8);
        nuts.setStepSize(da.stepSize());
        for (int t = 0; t < warmupIters; ++t) {
            const auto tr = nuts.transition(z, rng);
            da.update(tr.acceptStat);
            nuts.setStepSize(da.stepSize());
        }

        // Capture exactly one instrumented gradient evaluation.
        TraceCapture capture;
        eval.tape().setProbe(&capture);
        std::vector<double> grad;
        eval.logProbGrad(z.q, grad);
        eval.tape().setProbe(nullptr);

        EvalProfile ep;
        ep.trace = capture.trace();
        ep.tapeNodes = eval.lastTapeNodes();
        ep.opCounts = eval.tape().opCounts();
        ep.dim = eval.dim();
        ep.dataBytes = model.modeledDataBytes();
        profile.chains.push_back(std::move(ep));
    }
    return profile;
}

} // namespace bayes::archsim
