#include "obs/trace.hpp"

#include <cmath>
#include <ostream>
#include <sstream>

namespace bayes::obs {
namespace {

void
jsonEscape(std::ostream& os, const std::string& s)
{
    for (char c : s) {
        switch (c) {
          case '"': os << "\\\""; break;
          case '\\': os << "\\\\"; break;
          case '\n': os << "\\n"; break;
          case '\t': os << "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                os << "\\u00" << "0123456789abcdef"[(c >> 4) & 0xf]
                   << "0123456789abcdef"[c & 0xf];
            else
                os << c;
        }
    }
}

} // namespace

int
traceTid() noexcept
{
    static std::atomic<int> next{1};
    thread_local const int id = next.fetch_add(1, std::memory_order_relaxed);
    return id;
}

Tracer&
Tracer::global() noexcept
{
    // Leaked on purpose, like Registry::global(): spans may finish on
    // pool workers that outlive ordinary static destruction.
    static Tracer* instance = new Tracer;
    return *instance;
}

void
Tracer::start()
{
    support::MutexLock lock(mutex_);
    events_.clear();
    epochSeconds_.store(support::Clock::now(), std::memory_order_relaxed);
    active_.store(true, std::memory_order_relaxed);
}

void
Tracer::stop()
{
    active_.store(false, std::memory_order_relaxed);
}

double
Tracer::nowUs() const noexcept
{
    return (support::Clock::now()
            - epochSeconds_.load(std::memory_order_relaxed))
        * 1e6;
}

void
Tracer::counter(const std::string& name, double value)
{
    if (!active())
        return;
    record(TraceEvent{name, 'C', nowUs(), 0.0, traceTid(), value});
}

void
Tracer::instant(const std::string& name)
{
    if (!active())
        return;
    record(TraceEvent{name, 'i', nowUs(), 0.0, traceTid(), 0.0});
}

void
Tracer::record(TraceEvent event)
{
    support::MutexLock lock(mutex_);
    events_.push_back(std::move(event));
}

std::size_t
Tracer::eventCount() const
{
    support::MutexLock lock(mutex_);
    return events_.size();
}

void
Tracer::writeJson(std::ostream& os) const
{
    support::MutexLock lock(mutex_);
    os << "{\"traceEvents\": [\n";
    // Process-name metadata so Perfetto shows a labelled track group.
    os << "  {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, "
          "\"tid\": 0, \"ts\": 0, \"args\": {\"name\": \"bayes\"}}";
    for (const auto& e : events_) {
        os << ",\n  {\"name\": \"";
        jsonEscape(os, e.name);
        os << "\", \"cat\": \"bayes\", \"ph\": \"" << e.phase
           << "\", \"pid\": 1, \"tid\": " << e.tid << ", \"ts\": ";
        os << (std::isfinite(e.tsUs) ? e.tsUs : 0.0);
        if (e.phase == 'X')
            os << ", \"dur\": " << (std::isfinite(e.durUs) ? e.durUs : 0.0);
        if (e.phase == 'C') {
            os << ", \"args\": {\"value\": "
               << (std::isfinite(e.value) ? e.value : 0.0) << "}";
        } else {
            os << ", \"args\": {}";
        }
        os << "}";
    }
    os << "\n], \"displayTimeUnit\": \"ms\"}\n";
}

std::string
Tracer::json() const
{
    std::ostringstream os;
    writeJson(os);
    return os.str();
}

void
Span::finish() noexcept
{
    Tracer& tracer = Tracer::global();
    const double endUs = tracer.nowUs();
    try {
        tracer.record(TraceEvent{owned_.empty() ? std::string(name_)
                                                : std::move(owned_),
                                 'X', startUs_,
                                 endUs > startUs_ ? endUs - startUs_ : 0.0,
                                 traceTid(), 0.0});
    } catch (...) {
        // Allocation failure while tracing must not take the run down.
    }
}

} // namespace bayes::obs
