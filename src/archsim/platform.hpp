/**
 * @file
 * Simulated server platforms matching the paper's Table II.
 *
 * Capacity scaling: the samplers in this reproduction run on reduced
 * synthetic datasets, so working sets are roughly 1/8 of the Stan
 * originals. To preserve the working-set-to-LLC ratios that drive every
 * result in the paper, all cache capacities are scaled by the same 1/8
 * (Skylake 8 MB -> 1 MB, Broadwell 40 MB -> 5 MB, L1/L2 likewise).
 * Frequencies, latencies, TDP and core counts are unscaled.
 */
#pragma once

#include <string>

#include "archsim/cache.hpp"

namespace bayes::archsim {

/** Working-set / cache capacity scale factor (see file comment). */
inline constexpr double kCapacityScale = 1.0 / 8.0;

/** One experiment platform (Table II row). */
struct Platform
{
    std::string name;          ///< "Skylake" or "Broadwell"
    std::string processor;     ///< retail processor number
    std::string microarch;
    int techNm = 14;
    double turboGhz = 4.0;     ///< peak frequency
    int cores = 4;             ///< physical cores
    double llcMb = 8.0;        ///< unscaled LLC capacity (Table II)
    double memBandwidthGBps = 34.1;
    double tdpW = 91.0;

    CacheConfig l1i;           ///< scaled per-core instruction cache
    CacheConfig l1d;           ///< scaled per-core data cache
    CacheConfig l2;            ///< scaled per-core unified L2
    CacheConfig llc;           ///< scaled shared last-level cache

    double memLatencyNs = 70.0;   ///< DRAM access latency
    double idlePowerW = 0.0;      ///< package power at idle
    double corePowerW = 0.0;      ///< incremental power per active core

    /** DRAM latency in core cycles at turbo. */
    double memLatencyCycles() const { return memLatencyNs * turboGhz; }

    /** Paper's Skylake desktop part (i7-6700K). */
    static Platform skylake();

    /** Paper's Broadwell server part (E5-2697A v4). */
    static Platform broadwell();
};

} // namespace bayes::archsim
