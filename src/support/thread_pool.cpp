#include "support/thread_pool.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <utility>

#include "obs/obs.hpp"
#include "support/error.hpp"
#include "support/timer.hpp"

namespace bayes::support {
namespace {

/** Pool telemetry (catalogued in docs/observability.md). */
struct PoolMetrics
{
    obs::Counter& tasksSubmitted =
        obs::Registry::global().counter("pool.tasks_submitted");
    obs::Gauge& workers = obs::Registry::global().gauge("pool.workers");
    obs::Histogram& queueDepth =
        obs::Registry::global().histogram("pool.queue_depth");
    obs::Histogram& taskSeconds =
        obs::Registry::global().histogram("pool.task_seconds");
    obs::Histogram& idleSeconds =
        obs::Registry::global().histogram("pool.worker_idle_seconds");

    static PoolMetrics& get()
    {
        static PoolMetrics* m = new PoolMetrics; // leaked like the registry
        return *m;
    }
};

} // namespace

ThreadPool::ThreadPool(int workers)
{
    BAYES_CHECK(workers >= 1, "thread pool needs at least one worker, got "
                                  << workers);
    PoolMetrics::get().workers.set(workers);
    workers_.reserve(static_cast<std::size_t>(workers));
    for (int i = 0; i < workers; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        MutexLock lock(mutex_);
        stopping_ = true;
    }
    cv_.notify_all();
    for (auto& worker : workers_)
        worker.join();
}

std::future<void>
ThreadPool::submit(std::function<void()> task)
{
    // Hand-rolled promise instead of std::packaged_task so the
    // completion counter is bumped *before* the future resolves: a
    // caller returning from waitAll() must observe every finished task
    // in tasksCompleted().
    auto promise = std::make_shared<std::promise<void>>();
    std::future<void> future = promise->get_future();
    auto wrapped = [this, task = std::move(task), promise] {
        try {
            task();
            completed_.fetch_add(1, std::memory_order_relaxed);
            promise->set_value();
        } catch (...) {
            completed_.fetch_add(1, std::memory_order_relaxed);
            promise->set_exception(std::current_exception());
        }
    };
    std::size_t depth;
    {
        MutexLock lock(mutex_);
        BAYES_CHECK(!stopping_, "submit on a stopping thread pool");
        queue_.push_back(std::move(wrapped));
        depth = queue_.size();
    }
    cv_.notify_one();
    PoolMetrics::get().tasksSubmitted.add();
    PoolMetrics::get().queueDepth.observe(static_cast<double>(depth));
    return future;
}

std::size_t
ThreadPool::queueDepth() const
{
    MutexLock lock(mutex_);
    return queue_.size();
}

void
ThreadPool::workerLoop()
{
    PoolMetrics& metrics = PoolMetrics::get();
    for (;;) {
        std::function<void()> task;
        {
            const double idleFrom = Clock::now();
            MutexLock lock(mutex_);
            // Plain predicate loop instead of the wait(lock, pred)
            // overload: the analysis sees the guarded reads under the
            // held capability, not inside an unannotated lambda.
            while (!stopping_ && queue_.empty())
                cv_.wait(mutex_);
            if (queue_.empty()) {
                return; // stopping and drained; final wait is not idle
            }
            metrics.idleSeconds.observe(Clock::now() - idleFrom);
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        {
            obs::Span span("pool.task");
            const double taskFrom = Clock::now();
            task(); // exceptions land in the task's future
            metrics.taskSeconds.observe(Clock::now() - taskFrom);
        }
    }
}

ThreadPool&
sharedPool(int workers)
{
    BAYES_CHECK(workers >= 0, "pool worker count must be >= 0, got "
                                  << workers);
    int resolved = workers;
    if (resolved == 0)
        resolved =
            std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
    // bayes-lint: allow(R011): function-local static — attributes cannot annotate local declarations; locked on the next line for the full map access
    static Mutex mutex;
    static std::map<int, std::unique_ptr<ThreadPool>> pools;
    MutexLock lock(mutex);
    auto& slot = pools[resolved];
    if (!slot)
        slot = std::make_unique<ThreadPool>(resolved);
    return *slot;
}

void
waitAll(std::vector<std::future<void>>& futures)
{
    std::exception_ptr first;
    for (auto& future : futures) {
        try {
            future.get();
        } catch (...) {
            if (!first)
                first = std::current_exception();
        }
    }
    futures.clear();
    if (first)
        std::rethrow_exception(first);
}

} // namespace bayes::support
