/**
 * @file
 * `butterfly` — estimating butterfly species richness and
 * accumulation.
 *
 * Hierarchical occupancy/detection model after Dorazio et al. (2006):
 * each species has a latent occupancy probability and a detection
 * probability (both hierarchically pooled); observed detection counts
 * per species/site mix the occupied and unoccupied regimes, so the
 * likelihood marginalizes occupancy with log-sum-exp — a
 * transcendental-heavy mix that gives this workload the suite's lowest
 * IPC (paper Fig. 1a).
 */
#pragma once

#include "workloads/workload.hpp"

namespace bayes::workloads {

/** Species richness occupancy/detection workload. */
class ButterflyRichness : public Workload
{
  public:
    explicit ButterflyRichness(double dataScale = 1.0);

    double logProb(const ppl::ParamView<double>& p) const override;
    ad::Var logProb(const ppl::ParamView<ad::Var>& p) const override;

    /** Number of species in the augmented pool. */
    std::size_t numSpecies() const { return numSpecies_; }

    /** Number of survey sites. */
    std::size_t numSites() const { return numSites_; }

    /** Replicated visits per site. */
    long visitsPerSite() const { return visits_; }

    /** Parameter block indices. */
    enum Block : std::size_t
    {
        kMuOcc,     ///< community mean occupancy (logit)
        kSigmaOcc,  ///< occupancy heterogeneity, > 0
        kMuDet,     ///< community mean detection (logit)
        kSigmaDet,  ///< detection heterogeneity, > 0
        kOcc,       ///< per-species occupancy effects
        kDet,       ///< per-species detection effects
    };

  private:
    template <typename T>
    T logDensity(const ppl::ParamView<T>& p) const;

    std::size_t numSpecies_;
    std::size_t numSites_;
    long visits_;
    std::vector<long> detections_; ///< [species * sites + site]
};

} // namespace bayes::workloads
