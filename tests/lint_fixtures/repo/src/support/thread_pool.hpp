// Fixture: the one place R001 permits std::thread.
#pragma once
#include <thread>
#include <vector>

namespace fixture {
struct ThreadPool {
    std::vector<std::thread> workers;  // allowed: this IS the pool
};
}  // namespace fixture
