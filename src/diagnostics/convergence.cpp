#include "diagnostics/convergence.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "support/error.hpp"
#include "math/special.hpp"
#include "support/stats.hpp"

namespace bayes::diagnostics {
namespace {

/** R-hat over already-split chain segments. */
double
rhatOfSegments(const std::vector<std::vector<double>>& segs)
{
    const std::size_t m = segs.size();
    const std::size_t n = segs[0].size();

    std::vector<double> segMeans(m);
    std::vector<double> segVars(m);
    for (std::size_t j = 0; j < m; ++j) {
        BAYES_ASSERT(segs[j].size() == n);
        segMeans[j] = mean(segs[j]);
        segVars[j] = variance(segs[j]);
    }

    const double grand = mean(segMeans);
    double b = 0.0;
    for (double sm : segMeans)
        b += (sm - grand) * (sm - grand);
    b *= static_cast<double>(n) / static_cast<double>(m - 1);

    const double w = mean(segVars);
    if (w <= 0.0) {
        // All segments internally constant: converged if the means
        // agree too, otherwise maximally unconverged.
        return b <= 0.0 ? 1.0 : std::numeric_limits<double>::infinity();
    }
    const double nd = static_cast<double>(n);
    const double varPlus = (nd - 1.0) / nd * w + b / nd;
    return std::sqrt(varPlus / w);
}

} // namespace

double
splitRhat(const std::vector<std::vector<double>>& chains)
{
    BAYES_CHECK(!chains.empty(), "splitRhat requires at least one chain");
    const std::size_t len = chains[0].size();
    BAYES_CHECK(len >= 4, "splitRhat requires at least 4 draws per chain");

    const std::size_t half = len / 2;
    std::vector<std::vector<double>> segs;
    segs.reserve(chains.size() * 2);
    for (const auto& chain : chains) {
        BAYES_CHECK(chain.size() == len, "chains must have equal length");
        segs.emplace_back(chain.begin(), chain.begin() + half);
        segs.emplace_back(chain.end() - half, chain.end());
    }
    return rhatOfSegments(segs);
}

double
maxSplitRhat(const std::vector<std::vector<std::vector<double>>>& coordDraws)
{
    BAYES_CHECK(!coordDraws.empty(), "no coordinates");
    double worst = 1.0;
    for (const auto& chains : coordDraws)
        worst = std::max(worst, splitRhat(chains));
    return worst;
}

double
rankNormalizedRhat(const std::vector<std::vector<double>>& chains)
{
    BAYES_CHECK(!chains.empty(), "rankNormalizedRhat needs chains");
    const std::size_t m = chains.size();
    const std::size_t n = chains[0].size();
    BAYES_CHECK(n >= 4, "need at least 4 draws per chain");

    // Pool, rank (average ties implicitly via stable ordering), and map
    // fractional ranks through the standard normal quantile.
    std::vector<std::pair<double, std::size_t>> pooled;
    pooled.reserve(m * n);
    for (std::size_t c = 0; c < m; ++c) {
        BAYES_CHECK(chains[c].size() == n, "chains must match in length");
        for (std::size_t t = 0; t < n; ++t)
            pooled.emplace_back(chains[c][t], c * n + t);
    }
    std::sort(pooled.begin(), pooled.end());
    std::vector<double> z(m * n);
    const double total = static_cast<double>(m * n);
    for (std::size_t r = 0; r < pooled.size(); ++r) {
        // Blom-style offset keeps the quantile away from 0 and 1.
        const double frac =
            (static_cast<double>(r) + 1.0 - 0.375) / (total + 0.25);
        z[pooled[r].second] = math::stdNormalQuantile(frac);
    }

    std::vector<std::vector<double>> transformed(m,
                                                 std::vector<double>(n));
    for (std::size_t c = 0; c < m; ++c)
        for (std::size_t t = 0; t < n; ++t)
            transformed[c][t] = z[c * n + t];
    return splitRhat(transformed);
}

double
effectiveSampleSize(const std::vector<std::vector<double>>& chains)
{
    BAYES_CHECK(!chains.empty(), "ess requires at least one chain");
    const std::size_t m = chains.size();
    const std::size_t n = chains[0].size();
    BAYES_CHECK(n >= 4, "ess requires at least 4 draws per chain");

    // Per-chain autocovariances (biased, divisor n, as in Stan).
    std::vector<double> chainMeans(m);
    std::vector<double> chainVars(m);
    for (std::size_t j = 0; j < m; ++j) {
        BAYES_CHECK(chains[j].size() == n, "chains must have equal length");
        chainMeans[j] = mean(chains[j]);
        chainVars[j] = variance(chains[j]);
    }
    const double w = mean(chainVars);
    if (w <= 0.0)
        return static_cast<double>(m * n);

    double b = 0.0;
    if (m > 1) {
        const double grand = mean(chainMeans);
        for (double cm : chainMeans)
            b += (cm - grand) * (cm - grand);
        b /= static_cast<double>(m - 1);
    }
    const double nd = static_cast<double>(n);
    const double varPlus = (nd - 1.0) / nd * w + b;

    auto autocov = [&](std::size_t chain, std::size_t lag) {
        double s = 0.0;
        for (std::size_t t = lag; t < n; ++t) {
            s += (chains[chain][t] - chainMeans[chain])
                * (chains[chain][t - lag] - chainMeans[chain]);
        }
        return s / nd;
    };

    // Combined-chain autocorrelation, Geyer initial monotone sequence.
    double tauSum = 0.0;
    double prevPair = std::numeric_limits<double>::infinity();
    for (std::size_t lag = 1; lag + 1 < n; lag += 2) {
        double rhoEven = 0.0;
        double rhoOdd = 0.0;
        for (std::size_t j = 0; j < m; ++j) {
            rhoEven += autocov(j, lag);
            rhoOdd += autocov(j, lag + 1);
        }
        rhoEven = 1.0 - (w - rhoEven / static_cast<double>(m)) / varPlus;
        rhoOdd = 1.0 - (w - rhoOdd / static_cast<double>(m)) / varPlus;
        double pair = rhoEven + rhoOdd;
        if (pair < 0.0)
            break;
        pair = std::min(pair, prevPair); // enforce monotone decrease
        prevPair = pair;
        tauSum += pair;
        if (lag > 3 * static_cast<std::size_t>(std::sqrt(nd) + 1) * 8)
            break; // safety cutoff for pathological samples
    }
    const double tau = 1.0 + 2.0 * tauSum;
    const double ess = static_cast<double>(m) * nd / std::max(tau, 1e-12);
    return std::min(ess, static_cast<double>(m * n));
}

double
gaussianKl1d(double mean1, double sd1, double mean2, double sd2)
{
    BAYES_CHECK(sd1 > 0.0 && sd2 > 0.0, "KL requires positive scales");
    const double r = sd1 / sd2;
    const double d = (mean1 - mean2) / sd2;
    return std::log(sd2 / sd1) + 0.5 * (r * r + d * d) - 0.5;
}

double
gaussianKl(const std::vector<std::vector<double>>& p,
           const std::vector<std::vector<double>>& q)
{
    BAYES_CHECK(!p.empty() && p.size() == q.size(),
                "KL requires matching coordinate counts");
    double total = 0.0;
    for (std::size_t i = 0; i < p.size(); ++i) {
        BAYES_CHECK(!p[i].empty() && !q[i].empty(),
                    "KL requires non-empty samples per coordinate");
        const double m1 = mean(p[i]);
        const double m2 = mean(q[i]);
        // Floor the scales so point-mass coordinates stay finite.
        const double s1 = std::max(stddev(p[i]), 1e-12);
        const double s2 = std::max(stddev(q[i]), 1e-12);
        total += gaussianKl1d(m1, s1, m2, s2);
    }
    return total / static_cast<double>(p.size());
}

} // namespace bayes::diagnostics
