#include "serve/server.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "diagnostics/summary.hpp"
#include "obs/obs.hpp"
#include "support/error.hpp"
#include "support/thread_pool.hpp"
#include "support/timer.hpp"

namespace bayes::serve {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/** Serving telemetry (catalogued in docs/observability.md). */
struct ServeMetrics
{
    obs::Counter& admitted =
        obs::Registry::global().counter("serve.admitted");
    obs::Counter& shed = obs::Registry::global().counter("serve.shed");
    obs::Counter& deadlineMiss =
        obs::Registry::global().counter("serve.deadline_miss");
    obs::Counter& warmHits =
        obs::Registry::global().counter("serve.warm_hits");
    obs::Counter& warmMisses =
        obs::Registry::global().counter("serve.warm_misses");
    obs::Counter& warmEvictions =
        obs::Registry::global().counter("serve.warm_evictions");
    obs::Histogram& queueDepth =
        obs::Registry::global().histogram("serve.queue_depth");
    obs::Histogram& requestLatency =
        obs::Registry::global().histogram("serve.request_latency");
    obs::Histogram& serviceSeconds =
        obs::Registry::global().histogram("serve.service_seconds");

    static ServeMetrics& get()
    {
        static ServeMetrics* m = new ServeMetrics; // leaked, like Registry
        return *m;
    }
};

/**
 * Coarse per-chain evaluation-count model for the admission projection.
 * Deliberately deterministic (no measurement feedback): admit-vs-shed
 * must be reproducible under a fixed seed.
 */
double
estimatedEvalsPerChain(const samplers::Config& config, std::size_t dim)
{
    const double iterations = static_cast<double>(config.iterations);
    switch (config.algorithm) {
      case samplers::Algorithm::Mh:
        return iterations;
      case samplers::Algorithm::Hmc:
        return iterations * static_cast<double>(config.hmcLeapfrogSteps);
      case samplers::Algorithm::Nuts:
        // Typical adapted tree depth is ~4 (2^4 gradient evals).
        return iterations * 16.0;
      case samplers::Algorithm::Slice:
        // Stepping out + shrinkage averages a handful of density
        // evaluations per coordinate per sweep.
        return iterations * static_cast<double>(dim) * 5.0;
    }
    return iterations;
}

} // namespace

const char*
sloClassName(SloClass slo)
{
    switch (slo) {
      case SloClass::Interactive:
        return "interactive";
      case SloClass::Standard:
        return "standard";
      case SloClass::Batch:
        return "batch";
    }
    return "?";
}

double
defaultDeadlineSeconds(SloClass slo)
{
    switch (slo) {
      case SloClass::Interactive:
        return 5.0;
      case SloClass::Standard:
        return 30.0;
      case SloClass::Batch:
        return kInf;
    }
    return kInf;
}

const char*
requestStatusName(RequestStatus status)
{
    switch (status) {
      case RequestStatus::Queued:
        return "queued";
      case RequestStatus::Ok:
        return "ok";
      case RequestStatus::Shed:
        return "shed";
      case RequestStatus::DeadlineMiss:
        return "deadline-miss";
      case RequestStatus::Failed:
        return "failed";
    }
    return "?";
}

Server::Server(ServerConfig config)
    : config_(std::move(config)), amortCache_(config_.amortize)
{
    BAYES_CHECK(config_.queueCapacity >= 1,
                "serve: queue capacity must be >= 1");
    BAYES_CHECK(config_.workers >= 0,
                "serve: pool worker count must be >= 0, got "
                    << config_.workers);
    BAYES_CHECK(config_.warmCacheCapacity >= 1,
                "serve: warm cache capacity must be >= 1");
}

Server::~Server() = default;

std::shared_ptr<Server::WarmModel>
Server::warm(const std::string& name, double dataScale)
{
    const auto key = std::make_pair(name, dataScale);
    auto it = warmCache_.find(key);
    if (it != warmCache_.end()) {
        ++warmHits_;
        ServeMetrics::get().warmHits.add();
        it->second->lastUse = ++warmUseTick_;
        return it->second;
    }
    ++warmMisses_;
    ServeMetrics::get().warmMisses.add();
    auto entry = std::make_shared<WarmModel>();
    entry->model = workloads::makeWorkload(name, dataScale);
    entry->eval = std::make_unique<ppl::Evaluator>(*entry->model);
    // Profile once at the origin: sizes the tape arena (reused for the
    // key's lifetime) and yields the work-intensity term of the
    // admission cost model.
    std::vector<double> q(entry->eval->dim(), 0.0);
    std::vector<double> grad;
    entry->eval->logProbGrad(q, grad);
    entry->nodesPerEval = static_cast<double>(entry->eval->lastTapeNodes());
    entry->amortDigest =
        samplers::amortize::AmortizedCache::statsDigest(*entry->model);
    entry->lastUse = ++warmUseTick_;
    warmCache_.emplace(key, entry);
    // LRU bound: evict the stalest key. The entry just inserted carries
    // the freshest tick, so it is never the victim; in-flight serving
    // paths hold their own shared_ptr and are unaffected.
    while (warmCache_.size() > config_.warmCacheCapacity) {
        auto victim = warmCache_.begin();
        for (auto cand = warmCache_.begin(); cand != warmCache_.end();
             ++cand)
            if (cand->second->lastUse < victim->second->lastUse)
                victim = cand;
        warmCache_.erase(victim);
        ++warmEvictions_;
        ServeMetrics::get().warmEvictions.add();
    }
    return entry;
}

double
Server::estimate(const Request& request, const WarmModel& warmModel,
                 bool forceFull)
{
    // Tier projection: when the cached posterior's gate currently
    // passes, the request will be answered by the cheap tier at a flat
    // (tiny) cost — project that instead of the full-run cost so
    // admission does not shed repeat traffic the tier can absorb.
    if (!forceFull && config_.amortizedTier && request.allowAmortized
        && !warmModel.amortDigest.empty()) {
        const samplers::amortize::CacheKey key{
            request.workload, warmModel.amortDigest, request.dataScale};
        const samplers::amortize::Entry* cached = amortCache_.find(key);
        if (cached != nullptr && amortCache_.gate(*cached).pass)
            return config_.amortizedServiceSeconds;
    }
    const double perChain =
        estimatedEvalsPerChain(request.config, warmModel.eval->dim());
    const double evals =
        perChain * static_cast<double>(std::max(1, request.config.chains));
    return evals
        * (config_.costPerEvalSeconds
           + warmModel.nodesPerEval * config_.costPerNodeSeconds);
}

double
Server::estimatedServiceSeconds(const Request& request)
{
    support::MutexLock lock(mutex_);
    return estimate(request, *warm(request.workload, request.dataScale),
                    false);
}

ppl::Evaluator*
Server::warmEvaluator(const std::string& workload, double dataScale)
{
    support::MutexLock lock(mutex_);
    const auto it = warmCache_.find(std::make_pair(workload, dataScale));
    return it == warmCache_.end() ? nullptr : it->second->eval.get();
}

samplers::amortize::Stats
Server::amortStats() const
{
    support::MutexLock lock(mutex_);
    return amortCache_.stats();
}

std::size_t
Server::queueDepth() const
{
    support::MutexLock lock(mutex_);
    return queueDepthLocked();
}

std::size_t
Server::queueDepthLocked() const
{
    std::size_t depth = 0;
    for (const auto& queue : queues_)
        depth += queue.size();
    return depth;
}

double
Server::projectedWaitSeconds(SloClass slo) const
{
    // Everything that will be served before a new arrival of class
    // `slo`: all queued requests of strictly higher priority plus the
    // ones already waiting in its own class.
    double wait = 0.0;
    for (std::size_t c = 0; c <= static_cast<std::size_t>(slo); ++c)
        for (const QueueEntry& entry : queues_[c])
            wait += entry.estimatedSeconds;
    return wait;
}

void
Server::shed(Response& response)
{
    response.status = RequestStatus::Shed;
    response.startSeconds = response.arrivalSeconds;
    response.completionSeconds = response.arrivalSeconds;
    ++shed_;
    ServeMetrics::get().shed.add();
}

void
Server::fail(Response& response, const std::string& why)
{
    response.status = RequestStatus::Failed;
    response.error = why;
    response.startSeconds = response.arrivalSeconds;
    response.completionSeconds = response.arrivalSeconds;
}

std::uint64_t
Server::submit(Request request)
{
    const std::uint64_t id = responses_.size();
    responses_.emplace_back();
    Response& response = responses_.back();
    response.id = id;
    response.tenant = request.tenant;
    response.workload = request.workload;
    response.slo = request.slo;
    response.arrivalSeconds = request.arrivalSeconds < 0.0
        ? virtualNow_
        : request.arrivalSeconds;
    const double deadline = request.deadlineSeconds < 0.0
        ? defaultDeadlineSeconds(request.slo)
        : request.deadlineSeconds;
    response.deadlineSeconds = deadline;

    // One lock over the whole admission decision: the criteria must see
    // a consistent queue state, and enqueue must be atomic with the
    // checks that justified it.
    std::size_t depth = 0;
    {
        support::MutexLock lock(mutex_);
        double estimated = 0.0;
        bool admit = true;
        try {
            // Warms the cache and prices the run (same math as the
            // public estimatedServiceSeconds, called with the lock
            // already held).
            estimated = estimate(
                request, *warm(request.workload, request.dataScale), false);
        } catch (const Error& e) {
            fail(response, e.what());
            admit = false;
        }
        if (admit && deadline <= 0.0) {
            // Unsatisfiable by definition; reject before it wastes queue
            // space (admission criterion 2).
            shed(response);
            admit = false;
        }
        if (admit && queueDepthLocked() >= config_.queueCapacity) {
            shed(response); // criterion 3: bounded queue
            admit = false;
        }
        if (admit && config_.admitByProjectedWait
            && projectedWaitSeconds(request.slo) + estimated > deadline) {
            shed(response); // criterion 4: projected completion past deadline
            admit = false;
        }
        if (admit && request.slo == SloClass::Batch
            && support::sharedPool(config_.workers).queueDepth()
                > config_.maxPoolBacklog) {
            shed(response); // criterion 5: pool backpressure sheds batch work
            admit = false;
        }
        if (admit) {
            QueueEntry entry;
            entry.id = id;
            entry.arrivalSeconds = response.arrivalSeconds;
            entry.deadlineSeconds = deadline;
            entry.estimatedSeconds = estimated;
            entry.request = std::move(request);
            queues_[static_cast<std::size_t>(entry.request.slo)]
                .push_back(std::move(entry));
            ++admitted_;
            ServeMetrics::get().admitted.add();
        }
        depth = queueDepthLocked();
    }
    ServeMetrics::get().queueDepth.observe(static_cast<double>(depth));
    return id;
}

void
Server::serveNext()
{
    // Pop under the lock, serve unlocked: the sampling run is the long
    // part and must not hold the admission mutex.
    QueueEntry entry;
    bool found = false;
    {
        support::MutexLock lock(mutex_);
        for (auto& queue : queues_) {
            if (queue.empty())
                continue;
            entry = std::move(queue.front());
            queue.pop_front();
            found = true;
            break;
        }
    }
    if (!found)
        return;

    Response& response = responses_[entry.id];

    const double start = std::max(virtualNow_, entry.arrivalSeconds);
    const double wait = start - entry.arrivalSeconds;

    // Amortized tier: try to answer from the posterior cache before
    // committing the coordinator to a full sampling run. A cold key or
    // a gate rejection re-enters the queue with the full path forced.
    if (!entry.forceFull && config_.amortizedTier
        && entry.request.allowAmortized && wait <= entry.deadlineSeconds) {
        const AmortTry outcome = tryAmortized(response, entry, start, wait);
        if (outcome != AmortTry::NotAmortizable)
            return; // served or requeued; bookkeeping done inside
    }

    servedOrder_.push_back(entry.id);
    response.startSeconds = start;
    response.queueWaitSeconds = wait;

    if (wait > entry.deadlineSeconds) {
        // Expired while waiting: answering with a late full run would
        // only push every later request past its deadline too, so the
        // miss is recorded without running.
        response.status = RequestStatus::DeadlineMiss;
        response.completionSeconds = start;
        response.latencySeconds = wait;
        ++deadlineMisses_;
        ServeMetrics::get().deadlineMiss.add();
        ServeMetrics::get().requestLatency.observe(wait);
        return;
    }

    finishServed(response, entry);
}

Server::AmortTry
Server::tryAmortized(Response& response, QueueEntry& entry, double start,
                     double wait)
{
    const Timer clock;
    // The decision and the answer are both extracted under one short
    // lock (amortCache_ is admission-time state); the serve below works
    // on copies only.
    bool cold = false;
    bool pass = false;
    int cachedDraws = 0;
    std::vector<double> cachedMean;
    double cachedRefRhat = 0.0;
    std::shared_ptr<WarmModel> warmModel;
    {
        support::MutexLock lock(mutex_);
        warmModel = warm(entry.request.workload, entry.request.dataScale);
        if (warmModel->amortDigest.empty())
            return AmortTry::NotAmortizable;
        amortCache_.noteRequest();
        const samplers::amortize::CacheKey key{entry.request.workload,
                                               warmModel->amortDigest,
                                               entry.request.dataScale};
        samplers::amortize::Entry* cached = amortCache_.find(key);
        if (cached == nullptr) {
            cold = true;
            amortCache_.noteCold();
        } else if (amortCache_.gate(*cached).pass) {
            pass = true;
            amortCache_.noteServed(*cached);
            cachedDraws = static_cast<int>(cached->fit.draws.size());
            cachedMean = cached->mean;
            cachedRefRhat = cached->refMaxRhat;
        } else {
            amortCache_.noteEscalated();
        }
        if (!pass) {
            // Cold key or gate rejection: the full path must answer.
            // Re-enter at the front of the class queue with the full
            // cost re-projected; the re-served NUTS run stays
            // byte-identical to a direct run with the same seed.
            response.escalated = !cold;
            entry.forceFull = true;
            entry.estimatedSeconds =
                estimate(entry.request, *warmModel, true);
            queues_[static_cast<std::size_t>(entry.request.slo)].push_front(
                std::move(entry));
        }
    }
    if (!pass)
        return AmortTry::Requeued;

    // Serve from the cache: the measured service time is the gate check
    // plus these copies — the whole point of the tier.
    servedOrder_.push_back(entry.id);
    response.servedAmortized = true;
    response.startSeconds = start;
    response.queueWaitSeconds = wait;
    response.draws = cachedDraws;
    response.posteriorMean = std::move(cachedMean);
    response.maxRhat = entry.request.query == QueryKind::Summary
        ? cachedRefRhat
        : std::numeric_limits<double>::quiet_NaN();

    const double service = clock.seconds();
    response.serviceSeconds = service;
    response.completionSeconds = start + service;
    response.latencySeconds =
        response.completionSeconds - response.arrivalSeconds;
    const bool missed = response.latencySeconds > entry.deadlineSeconds;
    response.status =
        missed ? RequestStatus::DeadlineMiss : RequestStatus::Ok;
    if (missed) {
        ++deadlineMisses_;
        ServeMetrics::get().deadlineMiss.add();
    }
    virtualNow_ = response.completionSeconds;
    ServeMetrics::get().requestLatency.observe(response.latencySeconds);
    ServeMetrics::get().serviceSeconds.observe(response.serviceSeconds);
    return AmortTry::Served;
}

void
Server::finishServed(Response& response, QueueEntry& entry)
{
    obs::Span span("serve.request");
    std::shared_ptr<WarmModel> warmModelPtr;
    {
        // Short lock to resolve the cache entry; the shared_ptr keeps
        // the model/evaluator alive unlocked (even across an LRU
        // eviction) so the sampler runs without the mutex held.
        support::MutexLock lock(mutex_);
        warmModelPtr = warm(entry.request.workload, entry.request.dataScale);
    }
    WarmModel& warmModel = *warmModelPtr;

    samplers::Config config = entry.request.config;
    config.execution = samplers::ExecutionPolicy::pool(config_.workers);
    const double remaining = entry.deadlineSeconds - response.queueWaitSeconds;

    const Timer clock;
    try {
        const samplers::DeadlineRunResult outcome =
            samplers::runWithDeadline(*warmModel.model, config, remaining);
        const double service = clock.seconds();
        response.serviceSeconds = service;
        response.completionSeconds = response.startSeconds + service;
        response.latencySeconds =
            response.completionSeconds - response.arrivalSeconds;
        response.truncatedByDeadline = outcome.expired;
        response.draws =
            static_cast<int>(outcome.run.chains.front().draws.size());

        const ppl::ParamLayout& layout = warmModel.model->layout();
        if (entry.request.query == QueryKind::Summary) {
            const diagnostics::PosteriorSummary summary =
                diagnostics::summarize(outcome.run, layout);
            response.posteriorMean.reserve(summary.coords.size());
            for (const auto& coord : summary.coords)
                response.posteriorMean.push_back(coord.mean);
            response.maxRhat = summary.maxRhat();
        } else {
            response.posteriorMean.assign(layout.dim(), 0.0);
            double count = 0.0;
            for (const auto& chain : outcome.run.chains) {
                for (const auto& draw : chain.draws) {
                    for (std::size_t i = 0; i < draw.size(); ++i)
                        response.posteriorMean[i] += draw[i];
                    count += 1.0;
                }
            }
            if (count > 0.0)
                for (double& m : response.posteriorMean)
                    m /= count;
            response.maxRhat = std::numeric_limits<double>::quiet_NaN();
        }

        const bool missed = outcome.expired
            || response.latencySeconds > entry.deadlineSeconds;
        response.status =
            missed ? RequestStatus::DeadlineMiss : RequestStatus::Ok;
        if (missed) {
            ++deadlineMisses_;
            ServeMetrics::get().deadlineMiss.add();
        }

        if (entry.request.keepDraws)
            response.run =
                std::make_shared<const samplers::RunResult>(outcome.run);

        // Cold/escalated amortized requests refresh the cheap tier: an
        // untruncated full run fits ADVI on first touch of the key and
        // installs/refreshes the reference summary the gate compares
        // against. (Not billed to this request's service time — the
        // fit amortizes over all future repeats of the key.)
        if (config_.amortizedTier && entry.forceFull
            && !warmModel.amortDigest.empty() && !outcome.expired) {
            support::MutexLock lock(mutex_);
            const samplers::amortize::CacheKey key{
                entry.request.workload, warmModel.amortDigest,
                entry.request.dataScale};
            samplers::amortize::Entry* cached = amortCache_.find(key);
            if (cached == nullptr)
                cached = &amortCache_.fit(key, *warmModel.model,
                                          *warmModel.eval);
            amortCache_.installReference(*cached, outcome.run);
        }
    } catch (const Error& e) {
        const double service = clock.seconds();
        response.serviceSeconds = service;
        response.completionSeconds = response.startSeconds + service;
        response.latencySeconds =
            response.completionSeconds - response.arrivalSeconds;
        response.status = RequestStatus::Failed;
        response.error = e.what();
    }
    virtualNow_ = response.completionSeconds;
    ServeMetrics::get().requestLatency.observe(response.latencySeconds);
    ServeMetrics::get().serviceSeconds.observe(response.serviceSeconds);
}

void
Server::drain()
{
    while (queueDepth() > 0)
        serveNext();
}

void
Server::runSchedule(std::vector<Request> arrivals)
{
    std::stable_sort(arrivals.begin(), arrivals.end(),
                     [](const Request& a, const Request& b) {
                         return std::max(0.0, a.arrivalSeconds)
                             < std::max(0.0, b.arrivalSeconds);
                     });
    std::size_t next = 0;
    while (next < arrivals.size() || queueDepth() > 0) {
        // Idle server: jump the virtual clock to the next arrival.
        if (queueDepth() == 0 && next < arrivals.size()
            && arrivals[next].arrivalSeconds > virtualNow_)
            virtualNow_ = arrivals[next].arrivalSeconds;
        // Admit everything that has arrived by now, in arrival order.
        while (next < arrivals.size()
               && arrivals[next].arrivalSeconds <= virtualNow_)
            submit(std::move(arrivals[next++]));
        if (queueDepth() > 0)
            serveNext();
    }
}

const Response&
Server::response(std::uint64_t id) const
{
    BAYES_CHECK(id < responses_.size(),
                "serve: unknown request id " << id);
    return responses_[id];
}

} // namespace bayes::serve
