#include "samplers/hmc.hpp"

#include <algorithm>
#include <cmath>

namespace bayes::samplers {

HmcTransition
HmcSampler::transition(PhasePoint& z, Rng& rng)
{
    HmcPhase ph;
    begin(z, rng, ph);
    std::vector<double> grad;
    while (prepareStep(ph)) {
        const double lp =
            ham_->evaluator().logProbGrad(ph.trial.q, grad);
        applyEval(ph, lp, grad);
    }
    return finish(z, ph, rng);
}

void
HmcSampler::speculateRejectBranch(const PhasePoint& z, Rng replica,
                                  std::vector<double>& point) const
{
    // Replay the chain's future stream: finish() consumes one accept
    // uniform (unconditionally), then the next begin() refreshes the
    // momentum. On the reject branch q, grad, and logProb are exactly
    // z's, so the first half-kick + drift is fully determined.
    replica.uniform();
    PhasePoint trial = z;
    ham_->sampleMomentum(replica, trial);
    ham_->leapfrogBegin(trial, stepSize_);
    point = std::move(trial.q);
}

HmcTransition
HmcSampler::finish(PhasePoint& z, HmcPhase& ph, Rng& rng)
{
    HmcTransition result;
    result.gradEvals = ph.gradEvals;

    double joint = ham_->joint(ph.trial);
    if (!std::isfinite(joint))
        joint = -INFINITY;
    result.divergent = ph.joint0 - joint > kDeltaMax;
    result.acceptStat = std::min(1.0, std::exp(joint - ph.joint0));
    if (rng.uniform() < result.acceptStat) {
        z = ph.trial;
        result.accepted = true;
    }
    return result;
}

} // namespace bayes::samplers
