/**
 * @file
 * System-model tests on synthetic profiles: LLC contention appears
 * when concurrent working sets exceed capacity, the slowest chain
 * bounds latency, bandwidth saturates, and energy accounting holds.
 */
#include <gtest/gtest.h>

#include "archsim/system.hpp"

namespace bayes::archsim {
namespace {

/**
 * Build a synthetic chain profile that streams a working set of
 * @p bytes at @p base, forward then backward (tape-like).
 */
EvalProfile
syntheticChain(std::uint64_t base, std::size_t bytes)
{
    EvalProfile p;
    p.tapeNodes = bytes / 32;
    p.opCounts[static_cast<int>(ad::OpClass::AddSub)] = p.tapeNodes / 2;
    p.opCounts[static_cast<int>(ad::OpClass::Mul)] = p.tapeNodes / 2;
    p.dim = 8;
    p.dataBytes = 0;
    for (std::uint64_t off = 0; off < bytes; off += 64)
        p.trace.push_back(Access{base + off, 64, true});
    for (std::uint64_t off = bytes; off >= 64; off -= 64)
        p.trace.push_back(Access{base + off - 64, 64, false});
    return p;
}

WorkloadProfile
syntheticWorkload(int chains, std::size_t bytesPerChain)
{
    WorkloadProfile wp;
    for (int c = 0; c < chains; ++c)
        wp.chains.push_back(syntheticChain(
            0x10000000ull + static_cast<std::uint64_t>(c) * 0x4000000ull,
            bytesPerChain));
    return wp;
}

RunWork
uniformWork(int chains, std::uint64_t evals)
{
    RunWork work;
    work.chainGradEvals.assign(chains, evals);
    work.chainIterations.assign(chains, evals / 16);
    return work;
}

TEST(System, SmallWorkingSetsScaleAcrossCores)
{
    const auto platform = Platform::skylake();
    const auto profile = syntheticWorkload(4, 64 * 1024);
    const auto work = uniformWork(4, 1000);
    const auto s1 = simulateSystem(profile, work, platform, 1);
    const auto s4 = simulateSystem(profile, work, platform, 4);
    EXPECT_NEAR(s1.seconds / s4.seconds, 4.0, 0.4);
    EXPECT_LT(s4.llcMpki, 1.0);
}

TEST(System, OversizedConcurrentWorkingSetsCauseContention)
{
    const auto platform = Platform::skylake(); // 1 MB scaled LLC
    const auto profile = syntheticWorkload(4, 640 * 1024);
    const auto work = uniformWork(4, 300);
    const auto s1 = simulateSystem(profile, work, platform, 1);
    const auto s4 = simulateSystem(profile, work, platform, 4);
    EXPECT_GT(s4.llcMpki, s1.llcMpki);
    EXPECT_LT(s1.seconds / s4.seconds, 3.0); // scaling capped
}

TEST(System, BiggerLlcReducesMisses)
{
    const auto sky = Platform::skylake();
    const auto bdw = Platform::broadwell();
    const auto profile = syntheticWorkload(4, 640 * 1024);
    const auto work = uniformWork(4, 300);
    const auto onSky = simulateSystem(profile, work, sky, 4);
    const auto onBdw = simulateSystem(profile, work, bdw, 4);
    EXPECT_LT(onBdw.llcMpki, onSky.llcMpki);
}

TEST(System, SlowestChainBoundsLatency)
{
    const auto platform = Platform::skylake();
    const auto profile = syntheticWorkload(4, 64 * 1024);
    RunWork work;
    work.chainGradEvals = {1000, 1000, 1000, 3000}; // one straggler
    work.chainIterations = {100, 100, 100, 100};
    const auto s4 = simulateSystem(profile, work, platform, 4);
    // The slowest chain does 3x the work: job time tracks it.
    EXPECT_NEAR(s4.seconds, s4.chainSeconds[3], 1e-9);
    EXPECT_GT(s4.chainSeconds[3] / s4.chainSeconds[0], 2.5);
}

TEST(System, TwoCoresSumChainsPerCore)
{
    const auto platform = Platform::skylake();
    const auto profile = syntheticWorkload(4, 64 * 1024);
    const auto work = uniformWork(4, 1000);
    const auto s2 = simulateSystem(profile, work, platform, 2);
    // Each core runs two chains back to back.
    EXPECT_NEAR(s2.seconds,
                s2.chainSeconds[0] + s2.chainSeconds[2], 0.25 * s2.seconds);
}

TEST(System, EnergyIsPowerTimesTime)
{
    const auto platform = Platform::skylake();
    const auto profile = syntheticWorkload(2, 64 * 1024);
    const auto work = uniformWork(2, 500);
    const auto s = simulateSystem(profile, work, platform, 2);
    EXPECT_NEAR(s.energyJ, s.powerW * s.seconds, 1e-9);
    EXPECT_NEAR(s.powerW, platform.idlePowerW + 2 * platform.corePowerW,
                1e-9);
}

TEST(System, HigherFrequencyWinsWhenComputeBound)
{
    const auto sky = Platform::skylake();   // 4.2 GHz
    const auto bdw = Platform::broadwell(); // 3.6 GHz
    const auto profile = syntheticWorkload(4, 32 * 1024);
    const auto work = uniformWork(4, 1000);
    const auto onSky = simulateSystem(profile, work, sky, 4);
    const auto onBdw = simulateSystem(profile, work, bdw, 4);
    EXPECT_LT(onSky.seconds, onBdw.seconds);
    EXPECT_NEAR(onBdw.seconds / onSky.seconds, 4.2 / 3.6, 0.12);
}

TEST(System, BandwidthNeverExceedsPlatformCeiling)
{
    const auto platform = Platform::skylake();
    const auto profile = syntheticWorkload(4, 4 * 1024 * 1024);
    const auto work = uniformWork(4, 100);
    const auto s = simulateSystem(profile, work, platform, 4);
    EXPECT_LE(s.bandwidthMBps, platform.memBandwidthGBps * 1000.0 + 1e-6);
}

TEST(System, ExtractRunWorkCountsAllPhases)
{
    samplers::RunResult run;
    run.chains.resize(2);
    for (auto& chain : run.chains) {
        chain.iterStats = {{10, 3, false}, {20, 4, false}, {5, 2, true}};
        chain.draws = {{0.0}};
    }
    const auto work = extractRunWork(run);
    ASSERT_EQ(work.chainGradEvals.size(), 2u);
    EXPECT_EQ(work.chainGradEvals[0], 35u);
    EXPECT_EQ(work.chainIterations[0], 3u);
}

TEST(System, ValidatesArguments)
{
    const auto platform = Platform::skylake();
    const auto profile = syntheticWorkload(2, 1024);
    const auto work = uniformWork(2, 10);
    EXPECT_THROW(simulateSystem(profile, work, platform, 0), Error);
    EXPECT_THROW(simulateSystem(profile, work, platform, 99), Error);
    EXPECT_THROW(
        simulateSystem(profile, uniformWork(3, 10), platform, 2), Error);
}

} // namespace
} // namespace bayes::archsim
