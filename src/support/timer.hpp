/**
 * @file
 * The repo's single wall-clock seam. Lint rule R012 confines direct
 * `std::chrono::*_clock::now()` calls to this header: every consumer —
 * the phased executor's deadline monitor, the pool's idle/latency
 * histograms, the tracer's span timestamps, the serving runtime's
 * measured service times — reads time through `support::Clock` (usually
 * via `bayes::Timer`), so there is exactly one auditable time source.
 *
 * That seam is swappable: `Clock::exchangeSource` installs an alternate
 * source (a virtual clock for deterministic admission replay, a
 * fault-injection clock that jumps or stalls), and every layer above
 * follows it without code changes. Simulated latencies still come from
 * archsim, never from this clock.
 *
 * This header is *freestanding* (see the layer manifest in
 * docs/architecture.md): it includes nothing from src/, so any layer —
 * including obs, which sits below support — may include it.
 */
#pragma once

#include <atomic>
#include <chrono>

namespace bayes::support {

/**
 * Process-wide monotonic time source, in seconds. The default source
 * reads `std::chrono::steady_clock`; tests and replay harnesses may
 * install their own with `exchangeSource` (see `ScopedClockSource`).
 */
class Clock
{
  public:
    /** A time source: monotonic seconds since an arbitrary epoch. */
    using Source = double (*)() noexcept;

    /** Seconds on the currently installed source. */
    static double now() noexcept
    {
        return source_.load(std::memory_order_relaxed)();
    }

    /** The default source: `std::chrono::steady_clock`. */
    static double steadySeconds() noexcept
    {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now().time_since_epoch())
            .count();
    }

    /**
     * Install @p source (nullptr restores the default) and return the
     * previously installed one. Swaps are atomic, but in-flight
     * intervals (a running Timer, an active trace collection) straddle
     * the switch — quiesce first, or expect mixed-epoch readings.
     */
    static Source exchangeSource(Source source) noexcept
    {
        return source_.exchange(source ? source : &steadySeconds,
                                std::memory_order_relaxed);
    }

  private:
    inline static std::atomic<Source> source_{&steadySeconds};
};

/**
 * RAII source installation for tests and replay drivers: installs in
 * the constructor, restores the previous source in the destructor.
 */
class ScopedClockSource
{
  public:
    explicit ScopedClockSource(Clock::Source source) noexcept
        : previous_(Clock::exchangeSource(source))
    {
    }
    ~ScopedClockSource() { Clock::exchangeSource(previous_); }

    ScopedClockSource(const ScopedClockSource&) = delete;
    ScopedClockSource& operator=(const ScopedClockSource&) = delete;

  private:
    Clock::Source previous_;
};

} // namespace bayes::support

namespace bayes {

/** Monotonic stopwatch over `support::Clock` (the swappable seam). */
class Timer
{
  public:
    Timer() : start_(support::Clock::now()) {}

    /** Restart the stopwatch. */
    void reset() { start_ = support::Clock::now(); }

    /** Seconds elapsed since construction or the last reset(). */
    double seconds() const { return support::Clock::now() - start_; }

  private:
    double start_;
};

} // namespace bayes
