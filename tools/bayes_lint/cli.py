"""Command-line front end.

Output format is `path:line: RNNN message` so findings are clickable.
Exit status: 0 clean, 1 findings, 2 usage/internal error.

Waivers: a line (or the line directly below a full-line comment) is
waived with

    // bayes-lint: allow(R001): justification text

The justification is mandatory; `allow(R001,R003)` waives several rules
at once. A waiver with no justification is itself reported (R000) and
suppresses nothing.

Self-test: `--self-test DIR` lints DIR as if it were a repo root and
compares the findings against `// EXPECT: RNNN` (or
`<!-- EXPECT: RNNN -->`) markers inside the fixture files; any mismatch
is reported and the exit status is non-zero.
"""

from __future__ import annotations

import argparse
import os
import sys

from .engine import default_rules, registry, run_rules, self_test


def parse_rule_args(args):
    """Resolve --rules/--rule into an ordered, validated id list."""
    rules = []
    if args.rules:
        rules.extend(r.strip() for r in args.rules.split(",") if r.strip())
    for r in args.rule or []:
        if r not in rules:
            rules.append(r)
    unknown = [r for r in rules if r not in registry()]
    if unknown:
        print(f"bayes-lint: unknown rule(s): {', '.join(unknown)}",
              file=sys.stderr)
        return None
    return rules


def main(argv=None):
    ap = argparse.ArgumentParser(
        prog="bayes-lint",
        description="rule-based static invariant checker for the "
                    "BayesSuite tree (see docs/static-analysis.md)")
    ap.add_argument("--root", default=".",
                    help="repo root to lint (default: cwd)")
    ap.add_argument("--rules",
                    help="comma-separated rule ids (default: all text rules, "
                         "plus R006 when --compiler is given)")
    ap.add_argument("--rule", action="append", metavar="RNNN",
                    help="run one rule; repeatable, unions with --rules")
    ap.add_argument("--compiler",
                    help="C++ compiler for the R006 standalone-header check")
    ap.add_argument("--std", default="c++20",
                    help="language standard for R006 (default: c++20)")
    ap.add_argument("--obs-doc",
                    help="override path of the observability catalogue "
                         "(R004); used by drift tests")
    ap.add_argument("--arch-doc",
                    help="override path of the architecture doc holding the "
                         "bayes-layers manifest (R010); used by drift tests")
    ap.add_argument("--self-test", metavar="DIR",
                    help="lint DIR and compare against EXPECT markers")
    ap.add_argument("--list-rules", action="store_true",
                    help="print every rule id with its one-line summary")
    args = ap.parse_args(argv)

    if args.list_rules:
        for rule_id, rule in sorted(registry().items()):
            print(f"{rule_id}  {rule.summary}")
        return 0

    if args.rules or args.rule:
        rules = parse_rule_args(args)
        if rules is None:
            return 2
    else:
        rules = default_rules(with_compiler=bool(args.compiler))

    if args.self_test:
        return self_test(os.path.abspath(args.self_test),
                         [r for r in rules if r != "R006"])

    root = os.path.abspath(args.root)
    _, findings = run_rules(root, rules, compiler=args.compiler,
                            std=args.std, obs_doc=args.obs_doc,
                            arch_doc=args.arch_doc)
    for f in findings:
        print(f)
    print(f"bayes-lint: {len(findings)} finding(s) in {root}",
          file=sys.stderr)
    return 1 if findings else 0
