/**
 * @file
 * Design-space exploration tests on a reduced workload: point
 * well-formedness, oracle optimality among passing points, and the
 * chains/iterations structure the paper reports (oracle prefers fewer
 * chains and iterations).
 */
#include <gtest/gtest.h>

#include "dse/explorer.hpp"

namespace bayes::dse {
namespace {

/** Shrunken exploration shared by the tests (sampling is expensive). */
const DseResult&
cachedResult()
{
    static const DseResult result = [] {
        const auto wl = workloads::makeWorkload("12cities", 0.5);
        DseConfig cfg;
        cfg.coreCounts = {1, 2, 4};
        cfg.chainCounts = {1, 2, 4};
        cfg.iterFractions = {0.3, 1.0};
        return explore(*wl, archsim::Platform::skylake(), cfg);
    }();
    return result;
}

TEST(Dse, UserPointIsWellFormed)
{
    const auto& r = cachedResult();
    EXPECT_EQ(r.workload, "12cities");
    EXPECT_EQ(r.platform, "Skylake");
    EXPECT_EQ(r.user.chains, 4);
    EXPECT_GT(r.user.seconds, 0.0);
    EXPECT_GT(r.user.energyJ, 0.0);
    EXPECT_TRUE(r.user.qualityOk);
    EXPECT_LT(r.user.kl, 0.2); // user setting reproduces ground truth
}

TEST(Dse, GridCoversTheConfiguredSpace)
{
    const auto& r = cachedResult();
    // 3 chains x 2 fractions x 3 cores = 18 points.
    EXPECT_EQ(r.grid.size(), 18u);
    for (const auto& p : r.grid) {
        EXPECT_GT(p.seconds, 0.0);
        EXPECT_GT(p.energyJ, 0.0);
        EXPECT_GE(p.kl, 0.0);
        EXPECT_FALSE(p.elided);
    }
}

TEST(Dse, ElisionPointsExistPerCoreCount)
{
    const auto& r = cachedResult();
    EXPECT_EQ(r.elision.size(), 3u);
    for (const auto& p : r.elision) {
        EXPECT_TRUE(p.elided);
        EXPECT_EQ(p.chains, 4);
        // Detection stops at or before the budget.
        EXPECT_LE(p.iterations,
                  r.user.iterations);
    }
}

TEST(Dse, OracleIsCheapestPassingPoint)
{
    const auto& r = cachedResult();
    EXPECT_TRUE(r.oracle.qualityOk);
    for (const auto& p : r.grid) {
        if (p.qualityOk) {
            EXPECT_GE(p.energyJ, r.oracle.energyJ);
        }
    }
    EXPECT_LE(r.oracle.energyJ, r.user.energyJ);
}

TEST(Dse, OraclePrefersFewerChainsOrIterations)
{
    // Paper §VI-B: the oracle always uses 1-2 chains and a small
    // iteration count, never the full user setting.
    const auto& r = cachedResult();
    EXPECT_TRUE(r.oracle.chains < 4
                || r.oracle.iterations < r.user.iterations);
}

TEST(Dse, ElisionSavesEnergyOverUserSetting)
{
    const auto& r = cachedResult();
    EXPECT_GT(r.elisionEnergySaving(), 0.0);
    EXPECT_GE(r.oracleEnergySaving(), r.elisionEnergySaving() - 1e-9);
}

TEST(Dse, RejectsEmptyGrid)
{
    const auto wl = workloads::makeWorkload("12cities", 0.25);
    DseConfig cfg;
    cfg.coreCounts = {};
    EXPECT_THROW(explore(*wl, archsim::Platform::skylake(), cfg), Error);
}

} // namespace
} // namespace bayes::dse
