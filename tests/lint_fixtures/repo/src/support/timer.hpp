// Fixture: the one blessed direct clock read — R012 allowlists
// src/support/timer.hpp, so this file must produce no finding.
#pragma once
#include <chrono>

namespace fixture {
inline double clockSeconds()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}
}  // namespace fixture
