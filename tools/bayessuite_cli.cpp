/**
 * @file
 * Command-line driver for the library: run any BayesSuite workload (or
 * list them), choose the algorithm, enable convergence detection, dump
 * draws to CSV, and optionally simulate the run on one of the Table II
 * platforms.
 *
 * Usage:
 *   bayessuite_cli --list
 *   bayessuite_cli <workload> [--algorithm nuts|hmc|mh|slice|advi]
 *       [--chains N] [--iterations N] [--seed S] [--scale F]
 *       [--execution seq|threads|pool[:N]] [--elide]
 *       [--simulate skylake|broadwell] [--cores N] [--dump draws.csv]
 *       [--metrics-out FILE.json] [--trace-out FILE.json]
 */
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "archsim/system.hpp"
#include "diagnostics/summary.hpp"
#include "elide/elision.hpp"
#include "io/csv.hpp"
#include "obs/obs.hpp"
#include "samplers/advi.hpp"
#include "samplers/runner.hpp"
#include "support/timer.hpp"
#include "workloads/workload.hpp"

using namespace bayes;

namespace {

struct CliOptions
{
    std::string workload;
    samplers::Config config;
    double dataScale = 1.0;
    bool useAdvi = false;
    bool elide = false;
    std::string simulate; // "", "skylake", "broadwell"
    int cores = 4;
    std::string dumpPath;
    std::string metricsOutPath;
    std::string traceOutPath;
    bool iterationsSet = false;
    bool chainsSet = false;
};

void
usage()
{
    std::printf(
        "usage: bayessuite_cli <workload>|--list [options]\n"
        "  --algorithm nuts|hmc|mh|slice|advi  inference algorithm\n"
        "  --chains N                     Markov chains (default: 4)\n"
        "  --iterations N                 total iterations (default: "
        "workload's)\n"
        "  --seed S                       RNG seed\n"
        "  --scale F                      dataset scale in (0,1]\n"
        "  --execution seq|threads|pool[:N]  chain execution policy\n"
        "                                 (pool:N = shared pool, N workers)\n"
        "  --elide                        runtime convergence detection\n"
        "  --simulate skylake|broadwell   architecture simulation\n"
        "  --cores N                      simulated cores (default: 4)\n"
        "  --dump FILE                    write draws as CSV\n"
        "  --metrics-out FILE             write the obs metrics snapshot "
        "as JSON\n"
        "  --trace-out FILE               record a Chrome trace_event "
        "JSON trace\n"
        "                                 (open in chrome://tracing or "
        "Perfetto)\n");
}

bool
parse(int argc, char** argv, CliOptions& opt)
{
    if (argc < 2)
        return false;
    if (std::strcmp(argv[1], "--list") == 0) {
        for (const auto& wl : workloads::makeSuite()) {
            std::printf("%-10s %-36s dim=%zu iters=%d\n",
                        wl->name().c_str(),
                        wl->info().modelFamily.c_str(),
                        wl->layout().dim(),
                        wl->info().defaultIterations);
        }
        std::exit(0);
    }
    opt.workload = argv[1];
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char* {
            BAYES_CHECK(i + 1 < argc, arg << " needs a value");
            return argv[++i];
        };
        if (arg == "--algorithm") {
            const std::string a = next();
            if (a == "nuts")
                opt.config.algorithm = samplers::Algorithm::Nuts;
            else if (a == "hmc")
                opt.config.algorithm = samplers::Algorithm::Hmc;
            else if (a == "mh")
                opt.config.algorithm = samplers::Algorithm::Mh;
            else if (a == "slice")
                opt.config.algorithm = samplers::Algorithm::Slice;
            else if (a == "advi")
                opt.useAdvi = true;
            else
                throw Error("unknown algorithm '" + a + "'");
        } else if (arg == "--chains") {
            opt.config.chains = std::stoi(next());
            opt.chainsSet = true;
        } else if (arg == "--iterations") {
            opt.config.iterations = std::stoi(next());
            opt.iterationsSet = true;
        } else if (arg == "--seed") {
            opt.config.seed = std::stoull(next());
        } else if (arg == "--execution") {
            const std::string e = next();
            if (e == "seq" || e == "sequential")
                opt.config.execution =
                    samplers::ExecutionPolicy::sequential();
            else if (e == "threads" || e == "thread-per-chain")
                opt.config.execution =
                    samplers::ExecutionPolicy::threadPerChain();
            else if (e == "pool")
                opt.config.execution = samplers::ExecutionPolicy::pool();
            else if (e.rfind("pool:", 0) == 0 && e.size() > 5
                     && e.find_first_not_of("0123456789", 5)
                            == std::string::npos)
                opt.config.execution =
                    samplers::ExecutionPolicy::pool(std::stoi(e.substr(5)));
            else
                throw Error("unknown execution policy '" + e + "'");
        } else if (arg == "--scale") {
            opt.dataScale = std::stod(next());
        } else if (arg == "--elide") {
            opt.elide = true;
        } else if (arg == "--simulate") {
            opt.simulate = next();
        } else if (arg == "--cores") {
            opt.cores = std::stoi(next());
        } else if (arg == "--dump") {
            opt.dumpPath = next();
        } else if (arg == "--metrics-out") {
            opt.metricsOutPath = next();
        } else if (arg == "--trace-out") {
            opt.traceOutPath = next();
        } else {
            std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
            return false;
        }
    }
    return true;
}

void
simulate(const workloads::Workload& wl, const samplers::RunResult& run,
         const std::string& platformName, int chains, int cores)
{
    const auto platform = platformName == "skylake"
        ? archsim::Platform::skylake()
        : archsim::Platform::broadwell();
    BAYES_CHECK(platformName == "skylake" || platformName == "broadwell",
                "unknown platform '" << platformName << "'");
    const auto profile = archsim::profileWorkload(wl, chains);
    const auto sim = archsim::simulateSystem(
        profile, archsim::extractRunWork(run), platform, cores);
    std::printf("\nsimulated on %s, %d cores:\n", platform.name.c_str(),
                cores);
    std::printf("  time %.2fs  IPC %.2f  LLC MPKI %.2f  BW %.0f MB/s  "
                "power %.0fW  energy %.0fJ\n",
                sim.seconds, sim.ipc, sim.llcMpki, sim.bandwidthMBps,
                sim.powerW, sim.energyJ);
}

/**
 * The --metrics-out / --trace-out exporters. Construction starts the
 * trace collection (when requested) so every phase of the invocation —
 * sampling, elision, profiling for --simulate — lands on the timeline;
 * write() flushes both files exactly once.
 */
class ObsExports
{
  public:
    explicit ObsExports(const CliOptions& opt) : opt_(opt)
    {
        if ((!opt.traceOutPath.empty() || !opt.metricsOutPath.empty())
            && !obs::kCompiledIn)
            std::fprintf(stderr,
                         "warning: built with BAYES_OBS=OFF — metrics and "
                         "traces will be empty\n");
        if (!opt.traceOutPath.empty())
            obs::Tracer::global().start();
    }

    void
    write()
    {
        if (written_)
            return;
        written_ = true;
        if (!opt_.traceOutPath.empty()) {
            obs::Tracer::global().stop();
            std::ofstream os(opt_.traceOutPath);
            BAYES_CHECK(os, "cannot write trace file '" << opt_.traceOutPath
                                                        << "'");
            obs::Tracer::global().writeJson(os);
            std::printf("trace written to %s (%zu events; open in "
                        "chrome://tracing or ui.perfetto.dev)\n",
                        opt_.traceOutPath.c_str(),
                        obs::Tracer::global().eventCount());
        }
        if (!opt_.metricsOutPath.empty()) {
            std::ofstream os(opt_.metricsOutPath);
            BAYES_CHECK(os, "cannot write metrics file '"
                                << opt_.metricsOutPath << "'");
            obs::Registry::global().snapshot().writeJson(os);
            std::printf("metrics snapshot written to %s\n",
                        opt_.metricsOutPath.c_str());
        }
    }

  private:
    const CliOptions& opt_;
    bool written_ = false;
};

} // namespace

int
main(int argc, char** argv)
{
    CliOptions opt;
    try {
        if (!parse(argc, argv, opt)) {
            usage();
            return 2;
        }
        ObsExports exports(opt);
        const auto wl = workloads::makeWorkload(opt.workload,
                                                opt.dataScale);
        if (!opt.iterationsSet)
            opt.config.iterations = wl->info().defaultIterations;
        if (!opt.chainsSet)
            opt.config.chains = wl->info().defaultChains;

        Timer timer;
        if (opt.useAdvi) {
            samplers::AdviConfig advi;
            advi.seed = opt.config.seed;
            const auto fit = samplers::fitAdvi(*wl, advi);
            std::printf("ADVI: %s in %.1fs, %llu gradient evals, "
                        "final ELBO %.2f\n",
                        fit.converged ? "converged" : "budget exhausted",
                        timer.seconds(),
                        static_cast<unsigned long long>(fit.gradEvals),
                        fit.elboTrace.empty() ? 0.0
                                              : fit.elboTrace.back());
            for (std::size_t i = 0; i < wl->layout().dim(); ++i) {
                // Report the variational posterior via its draws.
                double mean = 0;
                for (const auto& d : fit.draws)
                    mean += d[i];
                mean /= static_cast<double>(fit.draws.size());
                std::printf("  %-16s mean %.4f\n",
                            wl->layout().coordName(i).c_str(), mean);
            }
            exports.write();
            return 0;
        }

        samplers::RunResult run;
        if (opt.elide) {
            const auto result = elide::runWithElision(*wl, opt.config);
            std::printf("elision: %s at draw %d (%d of %d iterations, "
                        "%.0f%% elided)\n",
                        result.converged ? "converged" : "not converged",
                        result.stoppedAtDraw, result.executedIterations,
                        result.budgetIterations,
                        100.0 * result.elidedFraction());
            run = result.run;
        } else {
            run = samplers::run(*wl, opt.config);
        }
        std::printf("sampled %s in %.1fs wall (%s execution)\n",
                    wl->name().c_str(), timer.seconds(),
                    samplers::executionModeName(
                        opt.config.execution.mode));

        const auto summary = diagnostics::summarize(run, wl->layout());
        std::printf("%s", summary.table().str().c_str());
        std::printf("max R-hat %.3f, min ESS %.0f\n", summary.maxRhat(),
                    summary.minEss());

        if (!opt.dumpPath.empty()) {
            writeDrawsCsv(opt.dumpPath, run, wl->layout());
            std::printf("draws written to %s\n", opt.dumpPath.c_str());
        }
        if (!opt.simulate.empty())
            simulate(*wl, run, opt.simulate, opt.config.chains, opt.cores);
        exports.write();
        return 0;
    } catch (const Error& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
