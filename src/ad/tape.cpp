#include "ad/tape.hpp"

#include <algorithm>

namespace bayes::ad {

NodeId
Tape::pushWide(std::span<const NodeId> parents,
               std::span<const double> weights, OpClass cls)
{
    BAYES_CHECK(parents.size() == weights.size(),
                "pushWide: parents/weights size mismatch");
    BAYES_ASSERT(nodes_.size() < kWideNode);
    BAYES_ASSERT(edges_.size() + parents.size()
                 <= static_cast<std::size_t>(kWideNode));
    const auto begin = static_cast<std::uint32_t>(edges_.size());
    for (std::size_t k = 0; k < parents.size(); ++k) {
        BAYES_ASSERT(parents[k] < nodes_.size());
        edges_.push_back(Edge{parents[k], weights[k]});
        if (probe_)
            probe_->access(&edges_.back(), sizeof(Edge), true);
    }
    const auto span = static_cast<NodeId>(wideSpans_.size());
    wideSpans_.push_back(
        WideSpan{begin, static_cast<std::uint32_t>(parents.size())});
    const NodeId id = static_cast<NodeId>(nodes_.size());
    nodes_.push_back(Node{{0.0, 0.0}, {kWideNode, span}});
    ++totalOps_;
    ++opCounts_[static_cast<std::size_t>(cls)];
    if (probe_)
        probe_->access(&nodes_[id], sizeof(Node), true);
    return id;
}

NodeId
Tape::pushWideBatch(std::span<const NodeId> parents,
                    std::span<const double> weights, std::uint32_t lanes,
                    OpClass cls)
{
    BAYES_CHECK(parents.size() == weights.size(),
                "pushWideBatch: parents/weights size mismatch");
    BAYES_CHECK(lanes > 0 && parents.size() % lanes == 0,
                "pushWideBatch: edge count not a multiple of lanes");
    BAYES_ASSERT(nodes_.size() + lanes < static_cast<std::size_t>(kWideNode));
    BAYES_ASSERT(edges_.size() + parents.size()
                 <= static_cast<std::size_t>(kWideNode));
    const auto perLane = static_cast<std::uint32_t>(parents.size() / lanes);
    const auto begin = static_cast<std::uint32_t>(edges_.size());
    for (std::size_t k = 0; k < parents.size(); ++k) {
        BAYES_ASSERT(parents[k] < nodes_.size());
        edges_.push_back(Edge{parents[k], weights[k]});
        if (probe_)
            probe_->access(&edges_.back(), sizeof(Edge), true);
    }
    const NodeId firstId = static_cast<NodeId>(nodes_.size());
    for (std::uint32_t l = 0; l < lanes; ++l) {
        const auto span = static_cast<NodeId>(wideSpans_.size());
        wideSpans_.push_back(
            WideSpan{begin + l * perLane, perLane, l, lanes});
        const NodeId id = static_cast<NodeId>(nodes_.size());
        nodes_.push_back(Node{{0.0, 0.0}, {kWideNode, span}});
        ++totalOps_;
        ++opCounts_[static_cast<std::size_t>(cls)];
        if (probe_)
            probe_->access(&nodes_[id], sizeof(Node), true);
    }
    return firstId;
}

void
Tape::gradient(NodeId output, std::vector<double>& out)
{
    gradient(std::span<const NodeId>(&output, 1), out);
}

void
Tape::gradient(std::span<const NodeId> outputs, std::vector<double>& out)
{
    BAYES_CHECK(!outputs.empty(), "gradient needs at least one output");
    NodeId top = 0;
    for (const NodeId o : outputs) {
        BAYES_CHECK(o < nodes_.size(), "gradient of unknown node");
        top = std::max(top, o);
    }
    out.assign(nodes_.size(), 0.0);
    for (const NodeId o : outputs)
        out[o] = 1.0;
    lastAdjointCount_ = out.capacity();
    for (NodeId i = top + 1; i-- > 0;) {
        const double adj = out[i];
        if (probe_)
            probe_->access(&out[i], sizeof(double), false);
        if (adj == 0.0)
            continue;
        const Node& node = nodes_[i];
        if (probe_)
            probe_->access(&node, sizeof(Node), false);
        if (node.parent[0] == kWideNode) {
            const WideSpan span = wideSpans_[node.parent[1]];
            if (probe_)
                probe_->access(&wideSpans_[node.parent[1]],
                               sizeof(WideSpan), false);
            const Edge* edges = edges_.data() + span.begin;
            for (std::uint32_t k = 0; k < span.count; ++k) {
                out[edges[k].parent] += edges[k].weight * adj;
                if (probe_) {
                    probe_->access(&edges[k], sizeof(Edge), false);
                    probe_->access(&out[edges[k].parent], sizeof(double),
                                   true);
                }
            }
            continue;
        }
        for (int k = 0; k < 2; ++k) {
            const NodeId p = node.parent[k];
            if (p == kNoParent)
                continue;
            out[p] += node.weight[k] * adj;
            if (probe_)
                probe_->access(&out[p], sizeof(double), true);
        }
    }
}

} // namespace bayes::ad
