/**
 * @file
 * Whole-system simulation: replays per-chain memory traces through a
 * platform's cache hierarchy (private L1/L2 per core, shared LLC),
 * combines the measured miss behavior with the core timing model, and
 * reconstructs end-to-end job latency from the chains' real measured
 * work (gradient evaluations per chain). Multicore latency is the
 * slowest chain's — the paper's §VI observation — because chains carry
 * genuinely different NUTS trajectory lengths.
 */
#pragma once

#include <vector>

#include "archsim/core.hpp"
#include "archsim/platform.hpp"
#include "archsim/profiler.hpp"
#include "samplers/types.hpp"

namespace bayes::archsim {

/** Work actually performed by a run (extracted from sampler results). */
struct RunWork
{
    /** Total gradient evaluations per chain, warmup included. */
    std::vector<std::uint64_t> chainGradEvals;
    /** Iterations executed per chain (for per-iteration overheads). */
    std::vector<std::uint64_t> chainIterations;
};

/** Pull the per-chain work counters out of a sampler run. */
RunWork extractRunWork(const samplers::RunResult& run);

/** End-to-end simulation result for one (workload, platform, cores). */
struct SystemResult
{
    double seconds = 0;        ///< job latency (slowest core)
    double ipc = 0;            ///< work-weighted mean chain IPC
    double llcMpki = 0;        ///< demand LLC misses per kilo-instruction
    double icacheMpki = 0;
    double branchMpki = 0;
    double bandwidthMBps = 0;  ///< mean off-chip traffic while running
    double powerW = 0;         ///< package power while running
    double energyJ = 0;        ///< powerW * seconds
    std::vector<double> chainSeconds; ///< per-chain compute time
};

/**
 * Simulate a run on a platform using @p cores cores.
 * @param profile  per-chain steady-state profiles (profileWorkload)
 * @param work     measured per-chain work (extractRunWork)
 * @param platform target platform
 * @param cores    cores used (1 .. platform.cores)
 */
SystemResult simulateSystem(const WorkloadProfile& profile,
                            const RunWork& work, const Platform& platform,
                            int cores,
                            const CoreParams& params = CoreParams{});

} // namespace bayes::archsim
