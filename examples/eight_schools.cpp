/**
 * @file
 * Eight Schools — the canonical hierarchical Bayesian example (Rubin
 * 1981; Gelman et al., BDA). Eight coaching programs report treatment
 * effects with known standard errors; a hierarchical model partially
 * pools them. Demonstrates the non-centered parameterization and the
 * classic funnel geometry the BayesSuite hierarchical workloads share,
 * and compares NUTS against the Metropolis-Hastings baseline on it.
 */
#include <cstdio>

#include "diagnostics/summary.hpp"
#include "math/distributions.hpp"
#include "samplers/runner.hpp"
#include "support/table.hpp"

using namespace bayes;

namespace {

class EightSchools : public ppl::Model
{
  public:
    EightSchools()
        : layout_({
              {"mu", 1, ppl::TransformKind::Identity, 0, 0},
              {"tau", 1, ppl::TransformKind::LowerBound, 0.0, 0},
              {"theta_raw", 8, ppl::TransformKind::Identity, 0, 0},
          })
    {
    }

    const std::string& name() const override { return name_; }
    const ppl::ParamLayout& layout() const override { return layout_; }
    std::size_t modeledDataBytes() const override
    {
        return sizeof(kEffect) + sizeof(kStderr);
    }

    double logProb(const ppl::ParamView<double>& p) const override
    {
        return density(p);
    }
    ad::Var logProb(const ppl::ParamView<ad::Var>& p) const override
    {
        return density(p);
    }

    static constexpr double kEffect[8] = {28, 8, -3, 7, -1, 1, 18, 12};
    static constexpr double kStderr[8] = {15, 10, 16, 11, 9, 11, 10, 18};

  private:
    template <typename T>
    T
    density(const ppl::ParamView<T>& p) const
    {
        using namespace bayes::math;
        const T& mu = p.scalar(0);
        const T& tau = p.scalar(1);
        T lp = normal_lpdf(mu, 0.0, 10.0) + cauchy_lpdf(tau, 0.0, 5.0);
        for (std::size_t j = 0; j < 8; ++j) {
            const T& raw = p.at(2, j);
            lp += std_normal_lpdf(raw);
            const T theta = mu + tau * raw; // non-centered
            lp += normal_lpdf(kEffect[j], theta, kStderr[j]);
        }
        return lp;
    }

    std::string name_ = "eight-schools";
    ppl::ParamLayout layout_;
};

void
report(const char* label, const samplers::RunResult& result,
       const ppl::ParamLayout& layout)
{
    const auto summary = diagnostics::summarize(result, layout);
    std::printf("\n== %s ==\n", label);
    std::printf("%s", summary.table().str().c_str());
    std::printf("max R-hat = %.3f, min ESS = %.0f\n", summary.maxRhat(),
                summary.minEss());
}

} // namespace

int
main()
{
    EightSchools model;

    samplers::Config nuts;
    nuts.chains = 4;
    nuts.iterations = 2000;
    // One dedicated thread per chain for this run (MH below inherits it).
    nuts.execution = samplers::ExecutionPolicy::threadPerChain();
    std::printf("Sampling eight schools with NUTS...\n");
    report("NUTS (4 x 2000)", samplers::run(model, nuts), model.layout());

    samplers::Config mh = nuts;
    mh.algorithm = samplers::Algorithm::Mh;
    mh.iterations = 20000;
    std::printf("\nSampling eight schools with random-walk MH "
                "(Algorithm 1 baseline; note the ESS gap)...\n");
    report("MH (4 x 20000)", samplers::run(model, mh), model.layout());
    return 0;
}
