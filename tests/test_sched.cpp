/**
 * @file
 * Scheduler tests: log-log predictor fit, threshold inversion, and
 * platform placement.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "sched/scheduler.hpp"
#include "workloads/suite.hpp"

namespace bayes::sched {
namespace {

std::vector<MissObservation>
powerLawObservations(double intercept, double slope)
{
    // mpki = exp(intercept) * bytes^slope, with some below-floor noise
    // points that the fit must ignore.
    std::vector<MissObservation> obs;
    for (double bytes : {2e4, 5e4, 1e5, 3e5}) {
        obs.push_back(
            {"wl", bytes, std::exp(intercept + slope * std::log(bytes))});
    }
    obs.push_back({"noise1", 500.0, 0.05});
    obs.push_back({"noise2", 900.0, 0.3});
    return obs;
}

TEST(Predictor, RecoversPowerLaw)
{
    LlcMissPredictor pred;
    pred.fit(powerLawObservations(-10.0, 1.1));
    EXPECT_NEAR(pred.slope(), 1.1, 1e-9);
    EXPECT_NEAR(pred.intercept(), -10.0, 1e-6);
    EXPECT_NEAR(pred.predictMpki(1e5),
                std::exp(-10.0 + 1.1 * std::log(1e5)), 1e-6);
}

TEST(Predictor, BelowFloorPointsExcludedFromFit)
{
    // If the noise points were included, the slope would deviate; the
    // exact recovery above already implies exclusion, but check the
    // floor knob explicitly by raising it.
    LlcMissPredictor strict;
    auto obs = powerLawObservations(-10.0, 1.1);
    strict.fit(obs, /*fitFloor=*/1.0);
    LlcMissPredictor loose;
    loose.fit(obs, /*fitFloor=*/0.01);
    EXPECT_NE(strict.slope(), loose.slope());
}

TEST(Predictor, ThresholdInversionIsConsistent)
{
    LlcMissPredictor pred;
    pred.fit(powerLawObservations(-10.0, 1.1));
    const double bytes = pred.dataSizeThreshold(1.0);
    EXPECT_NEAR(pred.predictMpki(bytes), 1.0, 1e-6);
}

TEST(Predictor, UnfittedAndDegenerateUseThrow)
{
    LlcMissPredictor pred;
    EXPECT_THROW(pred.predictMpki(100.0), Error);
    EXPECT_THROW(pred.fit({}, 1.0), Error);
    EXPECT_THROW(pred.fit({{"a", 100.0, 5.0}}, 1.0), Error);
}

TEST(Scheduler, PlacesByThreshold)
{
    const auto sky = archsim::Platform::skylake();
    const auto bdw = archsim::Platform::broadwell();
    PlatformScheduler scheduler(sky, bdw, 20000.0);

    const auto tickets = workloads::makeWorkload("tickets");
    const auto butterfly = workloads::makeWorkload("butterfly");
    EXPECT_TRUE(scheduler.isLlcBound(*tickets));
    EXPECT_FALSE(scheduler.isLlcBound(*butterfly));

    const auto pTickets = scheduler.place(*tickets);
    EXPECT_EQ(pTickets.platform->name, "Broadwell");
    EXPECT_TRUE(pTickets.llcBound);
    const auto pButterfly = scheduler.place(*butterfly);
    EXPECT_EQ(pButterfly.platform->name, "Skylake");
}

TEST(Scheduler, PaperPlacementForTheFullSuite)
{
    // With a threshold between the compute-bound and LLC-bound modeled
    // data sizes, exactly {ad, survival, tickets} go to Broadwell.
    const auto sky = archsim::Platform::skylake();
    const auto bdw = archsim::Platform::broadwell();
    PlatformScheduler scheduler(sky, bdw, 16000.0);
    for (const auto& wl : workloads::makeSuite()) {
        const bool expectBig = wl->name() == "ad"
            || wl->name() == "survival" || wl->name() == "tickets";
        EXPECT_EQ(scheduler.isLlcBound(*wl), expectBig) << wl->name();
    }
}

TEST(Scheduler, RejectsNonPositiveThreshold)
{
    const auto sky = archsim::Platform::skylake();
    const auto bdw = archsim::Platform::broadwell();
    EXPECT_THROW(PlatformScheduler(sky, bdw, 0.0), Error);
}

} // namespace
} // namespace bayes::sched
