// Fixture: R004 — metric literals must match the doc catalogue both ways.
#include "obs/registry.hpp"

namespace fixture {
void emit(Registry& registry)
{
    registry.counter("fixture.known").add(1);
    registry.gauge("fixture.gauge").set(2.0);
    registry.counter("fixture.rogue").add(1);  // EXPECT: R004
    registry.histogram("fixture.waived").record(1.0);  // bayes-lint: allow(R004): fixture: internal-only metric
}
}  // namespace fixture
