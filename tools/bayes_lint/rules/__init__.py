"""Rule modules. Importing this package registers every rule with the
engine registry (each module calls `@rule(...)` at import time)."""

from . import clock          # noqa: F401  R012
from . import conventions    # noqa: F401  R000-R005
from . import fusion         # noqa: F401  R007, R008
from . import gate           # noqa: F401  R014
from . import headers        # noqa: F401  R006
from . import layering       # noqa: F401  R010
from . import rng_forks      # noqa: F401  R013
from . import serve          # noqa: F401  R009
from . import thread_safety  # noqa: F401  R011
