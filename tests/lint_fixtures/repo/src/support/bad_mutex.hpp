// Fixture: R011 — a mutex member no annotation references gets zero
// checking from clang's thread-safety analysis.
#pragma once
#include <mutex>

namespace fixture {

struct Unguarded {
    std::mutex orphan_;  // EXPECT: R011
    int value = 0;
};

// Referenced by a BAYES_GUARDED_BY argument: covered, no finding.
struct Annotated {
    std::mutex guarded_;
    int value BAYES_GUARDED_BY(guarded_);
};

struct Waived {
    std::mutex cold_;  // bayes-lint: allow(R011): fixture: written once at construction, read-only afterwards
};

}  // namespace fixture
