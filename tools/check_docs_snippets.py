#!/usr/bin/env python3
"""Compile every fenced C++ block in docs/*.md.

Registered as the `docs` ctest label: extracts ```cpp fences, wraps
statement-scope blocks in a function body, prepends a prelude that
provides the repo headers plus a few ambient objects (`model`, `cfg`)
that reference-style snippets lean on, and runs the project compiler
with -fsyntax-only on each block as its own translation unit. A block
that fails reports its file and line so the doc can be fixed like any
other compile error.

Usage:
  check_docs_snippets.py --compiler g++ --include src [--std c++20] DOCS_DIR
"""

import argparse
import re
import subprocess
import sys
import tempfile
from pathlib import Path

PRELUDE = """\
// Auto-generated prelude for docs snippet compilation.
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "archsim/system.hpp"
#include "diagnostics/convergence.hpp"
#include "diagnostics/summary.hpp"
#include "elide/elision.hpp"
#include "io/csv.hpp"
#include "math/distributions.hpp"
#include "obs/obs.hpp"
#include "samplers/advi.hpp"
#include "samplers/runner.hpp"
#include "serve/load_generator.hpp"
#include "serve/server.hpp"
#include "support/table.hpp"
#include "support/thread_pool.hpp"
#include "support/timer.hpp"
#include "workloads/workload.hpp"

using namespace bayes;
using namespace bayes::math;

// Ambient objects snippets may reference without declaring.
extern ppl::Model& model;
extern workloads::Workload& workload;
"""

# A block containing any of these at a line start is file-scope C++ and
# compiles as-is; everything else is a statement sequence and gets
# wrapped in a function body.
FILE_SCOPE = re.compile(
    r"^\s*(#include\b|template\b|class\s|struct\s|namespace\s|int main\b)")

FENCE_OPEN = re.compile(r"^```(cpp|c\+\+)\s*$")
FENCE_CLOSE = re.compile(r"^```\s*$")


def extract_blocks(md_path):
    """Yield (start_line, code) for each ```cpp fence in the file."""
    blocks = []
    lines = md_path.read_text(encoding="utf-8").splitlines()
    in_block, start, buf = False, 0, []
    for i, line in enumerate(lines, 1):
        if not in_block and FENCE_OPEN.match(line):
            in_block, start, buf = True, i + 1, []
        elif in_block and FENCE_CLOSE.match(line):
            in_block = False
            blocks.append((start, "\n".join(buf)))
        elif in_block:
            buf.append(line)
    if in_block:
        raise SystemExit(f"{md_path}: unterminated ```cpp fence at "
                         f"line {start - 1}")
    return blocks


def wrap(code, index):
    if any(FILE_SCOPE.match(line) for line in code.splitlines()):
        return code + "\n"
    return (f"void docs_snippet_{index}()\n{{\n" + code + "\n}\n")


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--compiler", required=True)
    ap.add_argument("--include", required=True,
                    help="the repo's src/ directory")
    ap.add_argument("--std", default="c++20")
    ap.add_argument("docs_dir", type=Path)
    args = ap.parse_args()

    md_files = sorted(args.docs_dir.glob("*.md"))
    if not md_files:
        raise SystemExit(f"no .md files under {args.docs_dir}")

    checked = failures = 0
    with tempfile.TemporaryDirectory() as tmp:
        for md in md_files:
            for index, (line, code) in enumerate(extract_blocks(md)):
                checked += 1
                src = Path(tmp) / f"{md.stem}_{index}.cpp"
                src.write_text(PRELUDE + wrap(code, index),
                               encoding="utf-8")
                cmd = [args.compiler, f"-std={args.std}",
                       "-fsyntax-only", "-I", args.include, str(src)]
                proc = subprocess.run(cmd, capture_output=True, text=True)
                if proc.returncode != 0:
                    failures += 1
                    print(f"FAIL {md}:{line} (snippet {index})")
                    print(proc.stderr)
                else:
                    print(f"ok   {md}:{line} (snippet {index})")

    print(f"{checked} snippet(s) checked, {failures} failure(s)")
    if checked == 0:
        print("error: no ```cpp blocks found — extraction is broken")
        return 1
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
