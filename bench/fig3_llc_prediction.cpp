/**
 * @file
 * Figure 3 — LLC miss-rate prediction from the static modeled-data-size
 * feature. Each workload runs at full, half (-h) and quarter (-q) data
 * scale; the 4-core Skylake LLC MPKI is plotted against modeled data
 * size, and a log-log line is fitted over the points above 1 MPKI (the
 * paper's fit region). The derived data-size threshold drives the
 * platform scheduler of Figures 4 and 8.
 */
#include "common.hpp"
#include "sched/scheduler.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

#include <cmath>
#include <cstdio>

using namespace bayes;

int
main()
{
    const auto platform = archsim::Platform::skylake();
    const double scales[3] = {1.0, 0.5, 0.25};
    const char* suffix[3] = {"", "-h", "-q"};

    std::vector<sched::MissObservation> observations;
    Table table({"point", "modeled KB", "LLC MPKI@4"});
    for (int s = 0; s < 3; ++s) {
        for (const auto& entry :
             bench::prepareSuite(scales[s], bench::kShortIterations)) {
            const auto sim = archsim::simulateSystem(
                entry.profile, entry.work, platform, 4);
            const double bytes =
                static_cast<double>(entry.workload->modeledDataBytes());
            observations.push_back(
                {entry.workload->name() + suffix[s], bytes, sim.llcMpki});
            table.row()
                .cell(entry.workload->name() + suffix[s])
                .cell(bytes / 1024.0, 1)
                .cell(sim.llcMpki, 2);
        }
    }
    printSection("Figure 3 — modeled data size vs 4-core LLC MPKI "
                 "(Skylake; -h/-q = half/quarter data)",
                 table);

    sched::LlcMissPredictor predictor;
    predictor.fit(observations, /*fitFloor=*/1.0);

    // Fit quality over the above-floor region.
    std::vector<double> logBytes, logMpki;
    for (const auto& o : observations) {
        if (o.llcMpki4Core >= 1.0) {
            logBytes.push_back(std::log(o.modeledDataBytes));
            logMpki.push_back(std::log(o.llcMpki4Core));
        }
    }
    Table fit({"metric", "value"});
    fit.row().cell("points >= 1 MPKI").cell(
        static_cast<long>(logBytes.size()));
    fit.row().cell("log-log slope").cell(predictor.slope(), 3);
    fit.row().cell("log-log intercept").cell(predictor.intercept(), 3);
    fit.row().cell("log-log Pearson r").cell(pearson(logBytes, logMpki), 3);
    fit.row().cell("threshold @ 1 MPKI (KB)").cell(
        predictor.dataSizeThreshold(1.0) / 1024.0, 1);
    printSection("Figure 3 — fitted predictor (above-floor region)", fit);
    return 0;
}
