/**
 * @file
 * Differentiable (Var) overloads of the special functions plus the
 * scalar-type promotion machinery used by the templated distribution
 * library. Model code written against these functions runs unchanged on
 * plain doubles (value-only evaluation) and on ad::Var (gradient
 * evaluation), the same trick Stan's math library uses.
 */
#pragma once

#include <type_traits>

#include "ad/var.hpp"
#include "math/special.hpp"

namespace bayes::math {

using ad::Var;

/** promote_t<Ts...> is Var if any T is Var, else double. */
template <typename... Ts>
struct Promote
{
    using type =
        std::conditional_t<(std::is_same_v<std::decay_t<Ts>, Var> || ...),
                           Var, double>;
};

template <typename... Ts>
using promote_t = typename Promote<Ts...>::type;

/** Extract the numeric value from a double or a Var (templated code). */
inline double
valueOf(double x)
{
    return x;
}

inline double
valueOf(const Var& x)
{
    return x.value();
}

// ---------------------------------------------------------------------
// double passthroughs, so templated code can call unqualified names.
// ---------------------------------------------------------------------

inline double square(double x) { return x * x; }

// ---------------------------------------------------------------------
// Var overloads with analytic derivatives.
// ---------------------------------------------------------------------

/** log Gamma with d/dx = digamma(x). */
inline Var
lgamma(const Var& x)
{
    return ad::detail::unaryResult(x, lgammaSafe(x.value()),
                                   digamma(x.value()),
                                   ad::OpClass::Special);
}

inline double
lgamma(double x)
{
    return lgammaSafe(x);
}

/** Error function with d/dx = 2/sqrt(pi) exp(-x^2). */
inline Var
erf(const Var& x)
{
    const double d = 2.0 * M_2_SQRTPI * 0.5 * std::exp(-x.value() * x.value());
    return ad::detail::unaryResult(x, std::erf(x.value()), d,
                                   ad::OpClass::Special);
}

inline double
erf(double x)
{
    return std::erf(x);
}

/** Complementary error function. */
inline Var
erfc(const Var& x)
{
    const double d =
        -2.0 * M_2_SQRTPI * 0.5 * std::exp(-x.value() * x.value());
    return ad::detail::unaryResult(x, std::erfc(x.value()), d,
                                   ad::OpClass::Special);
}

inline double
erfc(double x)
{
    return std::erfc(x);
}

/** Standard normal CDF with d/dx = phi(x). */
inline Var
stdNormalCdf(const Var& x)
{
    const double d = std::exp(stdNormalLpdf(x.value()));
    return ad::detail::unaryResult(x, math::stdNormalCdf(x.value()), d,
                                   ad::OpClass::Special);
}

/** Softplus log(1 + exp(x)); derivative is the logistic sigmoid. */
inline Var
log1pExp(const Var& x)
{
    return ad::detail::unaryResult(x, math::log1pExp(x.value()),
                                   math::invLogit(x.value()),
                                   ad::OpClass::Special);
}

/** Logistic sigmoid; derivative s(x)(1 - s(x)). */
inline Var
invLogit(const Var& x)
{
    const double s = math::invLogit(x.value());
    return ad::detail::unaryResult(x, s, s * (1.0 - s),
                                   ad::OpClass::Special);
}

/** expm1 with derivative exp(x). */
inline Var
expm1(const Var& x)
{
    return ad::detail::unaryResult(x, std::expm1(x.value()),
                                   std::exp(x.value()),
                                   ad::OpClass::Special);
}

inline double
expm1(double x)
{
    return std::expm1(x);
}

/** Numerically stable log(exp(a) + exp(b)) for differentiable operands. */
template <typename TA, typename TB>
promote_t<TA, TB>
logSumExp(const TA& a, const TB& b)
{
    using T = promote_t<TA, TB>;
    using std::exp;
    using std::log;
    using ad::exp;
    using ad::log;
    const T ta = a;
    const T tb = b;
    if (valueOf(a) > valueOf(b))
        return ta + log1pExp(tb - ta);
    return tb + log1pExp(ta - tb);
}

} // namespace bayes::math
