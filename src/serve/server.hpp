/**
 * @file
 * Multi-tenant inference-as-a-service runtime. A Server is a long-lived
 * front door over the existing sampling stack: tenants submit (model,
 * data-shape, posterior-query) requests, an admission controller
 * decides admit-vs-shed against a bounded priority queue, and admitted
 * requests are served one at a time on the coordinating thread with
 * their chains fanned out over the process-shared support::ThreadPool
 * through the pooled batched executor. The serving layer never creates
 * threads of its own (lint rule R009): one coordinator + one shared
 * pool is the whole concurrency story, which keeps the pool's
 * no-nested-wait usage rule satisfied by construction.
 *
 * Time model: the server keeps a *virtual clock*. Arrivals carry
 * timestamps (from the load generator's open-loop schedule, or "now"
 * for direct submits), service is the measured wall time of the real
 * sampling run, and the clock advances as completions happen — a
 * trace-driven queueing simulation with genuine service times. Latency
 * percentiles reported from the obs histograms are therefore honest
 * queueing numbers even though the control loop is single-threaded.
 *
 * Admission control (in decision order):
 *   1. malformed request (unknown workload)            -> Failed
 *   2. resolved deadline == 0                          -> Shed
 *   3. bounded queue at capacity                       -> Shed
 *   4. projected wait (queued-ahead estimated service)
 *      already exceeds the request's deadline          -> Shed
 *   5. Batch-class request while the shared pool's
 *      backlog exceeds maxPoolBacklog                  -> Shed
 * Projections use a deterministic cost model (profiled tape nodes x
 * estimated gradient evaluations), so admit-vs-shed decisions are
 * reproducible under a fixed seed — tests/test_serve.cpp proves it.
 *
 * Warm-model cache: requests are keyed by (workload, dataScale). A miss
 * instantiates the workload (regenerating its synthetic dataset) and a
 * profiling ppl::Evaluator whose first gradient evaluation sizes the
 * tape; a hit reuses both, so a repeat request costs zero dataset
 * regeneration and zero tape re-allocation (the arena and the
 * evaluator's reserve hints survive — asserted via Tape::nodeCapacity
 * in the tests). The cache is LRU-bounded at
 * ServerConfig::warmCacheCapacity (serve.warm_evictions counts the
 * evictions). Chain evaluators inside a run stay per-request by
 * design: that is what keeps draws deterministic per request.
 *
 * Amortized two-tier policy (ServerConfig::amortizedTier, see
 * samplers/amortize.hpp and docs/serving.md): before committing to a
 * full sampling run, the coordinator consults the amortized posterior
 * cache. A cached fit whose acceptance gate (Pareto-k̂, KL vs the NUTS
 * reference, reference split-R̂) passes answers the request in
 * microseconds; a cold key or gate rejection re-enters the queue with
 * the full path forced, and that request's NUTS run — byte-identical
 * to a direct run with the same seed — installs/refreshes the cache
 * entry. Admission's cost model projects the cheap-tier service time
 * whenever the gate is expected to pass.
 */
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "ppl/evaluator.hpp"
#include "samplers/amortize.hpp"
#include "samplers/runner.hpp"
#include "support/thread_safety.hpp"
#include "workloads/workload.hpp"

namespace bayes::serve {

/**
 * Service classes, in strict priority order. The queue always serves
 * the highest class with waiting requests; within a class, arrival
 * order (FIFO) — which is the fairness guarantee tenants of the same
 * class get.
 */
enum class SloClass
{
    Interactive, ///< tight deadline, always served first
    Standard,    ///< default class
    Batch,       ///< best-effort; first to be shed under backpressure
};

/** Number of SLO classes (queue array size). */
inline constexpr std::size_t kNumSloClasses = 3;

/** Human-readable class name ("interactive"/"standard"/"batch"). */
const char* sloClassName(SloClass slo);

/** Default deadline per class; Batch is unbounded (+infinity). */
double defaultDeadlineSeconds(SloClass slo);

/** What the tenant wants back from the posterior. */
enum class QueryKind
{
    Summary, ///< per-coordinate means + max split-R-hat
    Mean,    ///< means only (skips the R-hat pass)
};

/** One tenant job: which model/data shape to fit, how, and by when. */
struct Request
{
    /** Tenant identifier (reporting only; no per-tenant state). */
    std::string tenant;
    /** Suite workload name (see workloads::suiteNames()). */
    std::string workload;
    /** Dataset shrink factor in (0, 1] — part of the warm-cache key. */
    double dataScale = 1.0;
    /**
     * Sampler configuration (algorithm/chains/iterations/seed). The
     * server overrides `execution` with its own pooled policy; all
     * other fields are the tenant's.
     */
    samplers::Config config;
    SloClass slo = SloClass::Standard;
    /**
     * Wall-clock budget from arrival to completion. Negative means the
     * class default; 0 is unsatisfiable and is shed at admission; +inf
     * disables the deadline.
     */
    double deadlineSeconds = -1.0;
    /**
     * Arrival timestamp on the server's virtual clock (open-loop load
     * generation). Negative means "now" (the current virtual time).
     */
    double arrivalSeconds = -1.0;
    QueryKind query = QueryKind::Summary;
    /**
     * Allow the amortized tier to answer this request (only effective
     * when ServerConfig::amortizedTier is on). Off forces full MCMC.
     */
    bool allowAmortized = true;
    /** Keep the full run's draws in Response::run (tests/debugging). */
    bool keepDraws = false;
};

/** Terminal state of a request. */
enum class RequestStatus
{
    Queued,       ///< admitted, not yet served (non-terminal)
    Ok,           ///< served within its deadline
    Shed,         ///< rejected at admission (queue/deadline pressure)
    DeadlineMiss, ///< served late, truncated, or expired in queue
    Failed,       ///< malformed request or the run threw
};

/** Human-readable status name. */
const char* requestStatusName(RequestStatus status);

/** What a tenant gets back. */
struct Response
{
    std::uint64_t id = 0;
    std::string tenant;
    std::string workload;
    SloClass slo = SloClass::Standard;
    RequestStatus status = RequestStatus::Queued;
    /** Failure diagnostic (status == Failed). */
    std::string error;

    /** Virtual-clock timeline of the request. */
    double arrivalSeconds = 0.0;
    double startSeconds = 0.0;
    double completionSeconds = 0.0;
    /** startSeconds - arrivalSeconds. */
    double queueWaitSeconds = 0.0;
    /** Measured wall seconds of the sampling run (0 when never run). */
    double serviceSeconds = 0.0;
    /** completionSeconds - arrivalSeconds (0 for shed requests). */
    double latencySeconds = 0.0;

    /** The deadline the request was held to (+inf = none). */
    double deadlineSeconds = 0.0;
    /** True when runWithDeadline cut the run short of its budget. */
    bool truncatedByDeadline = false;

    /** Post-warmup draws delivered per chain (0 when never run). */
    int draws = 0;
    /** Posterior mean per constrained coordinate. */
    std::vector<double> posteriorMean;
    /** Max split-R-hat across coordinates (NaN for QueryKind::Mean). */
    double maxRhat = 0.0;

    /** True when the amortized tier answered (no MCMC run at all). */
    bool servedAmortized = false;
    /** True when the acceptance gate rejected the cached posterior and
     * the request escalated to the full path. */
    bool escalated = false;
    /** The full run's result when Request::keepDraws was set (null
     * otherwise, and always null for amortized answers). */
    std::shared_ptr<const samplers::RunResult> run;
};

/** Server tuning knobs. */
struct ServerConfig
{
    /** Bounded request queue: total across classes. */
    std::size_t queueCapacity = 64;
    /** Shared-pool width for chain execution (0 = hardware). */
    int workers = 0;
    /** Enable projected-wait admission (criterion 4). */
    bool admitByProjectedWait = true;
    /**
     * Deterministic service-cost model for projections:
     * seconds ~= evals x (costPerEvalSeconds + nodes x costPerNodeSeconds).
     */
    double costPerEvalSeconds = 25e-6;
    double costPerNodeSeconds = 2e-9;
    /** Shed Batch-class requests when the pool backlog exceeds this. */
    std::size_t maxPoolBacklog = 4096;

    /**
     * Enable the amortized two-tier serving policy: repeat requests
     * whose acceptance gate passes are answered from the cached ADVI
     * posterior; cold keys and gate rejections re-enter the queue and
     * take the full NUTS path (byte-identical draws), whose run then
     * installs/refreshes the cache entry's reference summary.
     */
    bool amortizedTier = false;
    /** Cheap-tier fit + gate settings. */
    samplers::amortize::AmortizeConfig amortize;
    /**
     * Projected service time of an amortized-tier answer, used by the
     * admission cost model when the gate is expected to pass.
     */
    double amortizedServiceSeconds = 500e-6;
    /** Warm-model cache bound: least-recently-used entries beyond this
     * are evicted (serve.warm_evictions counts them). */
    std::size_t warmCacheCapacity = 32;
};

/**
 * The serving runtime. Serving stays single-coordinator by design:
 * drain/runSchedule and the per-request bookkeeping (responses, served
 * order, the virtual clock) run on one coordinating thread, exactly
 * like the phased executor's monitor contract. The *admission-time*
 * state a future concurrent front door would contend on — the bounded
 * priority queues and the warm-model cache — is mutex-guarded and
 * annotated (`BAYES_GUARDED_BY`, lint rule R011), so clang's thread
 * safety analysis rejects any new code path that touches either
 * without the lock.
 */
class Server
{
  public:
    explicit Server(ServerConfig config = {});
    ~Server();

    Server(const Server&) = delete;
    Server& operator=(const Server&) = delete;

    /**
     * Admission-check @p request and enqueue it (or terminate it on the
     * spot with Shed/Failed). Always returns a request id valid for
     * response(); shed/failed requests have their terminal Response
     * immediately.
     */
    std::uint64_t submit(Request request);

    /** Serve every queued request in priority order (calling thread). */
    void drain();

    /**
     * Replay an open-loop arrival schedule: requests are admitted when
     * the virtual clock reaches their arrivalSeconds and served as the
     * server frees up, so admission sees the queue state a real open
     * loop would produce. Equivalent to interleaved submit()/serve
     * steps; drains completely before returning.
     */
    void runSchedule(std::vector<Request> arrivals);

    /** Response for a request id (terminal unless still Queued). */
    const Response& response(std::uint64_t id) const;

    /** All responses, indexed by request id. */
    const std::vector<Response>& responses() const { return responses_; }

    /** Ids in the order they were actually served (fairness probe). */
    const std::vector<std::uint64_t>& servedOrder() const
    {
        return servedOrder_;
    }

    /** Current virtual time (advances as requests complete). */
    double virtualNow() const { return virtualNow_; }

    /** Requests currently queued across all classes. */
    std::size_t queueDepth() const;

    std::uint64_t admitted() const { return admitted_; }
    std::uint64_t shedCount() const { return shed_; }
    std::uint64_t deadlineMisses() const { return deadlineMisses_; }
    std::uint64_t warmHits() const { return warmHits_; }
    std::uint64_t warmMisses() const { return warmMisses_; }
    std::uint64_t warmEvictions() const { return warmEvictions_; }

    /** Amortized-tier accounting snapshot
     * (served + escalated + cold == requests, exactly). */
    samplers::amortize::Stats amortStats() const;

    /**
     * Deterministic service-time estimate for @p request (the
     * projected-wait admission input). Warms the model cache on first
     * touch of a (workload, dataScale) key.
     * @throws bayes::Error for unknown workload names
     */
    double estimatedServiceSeconds(const Request& request);

    /**
     * Warm-cache probe: the cached profiling evaluator for a key, or
     * nullptr when the key was never requested. Test/diagnostic hook —
     * the serving path owns the evaluator.
     */
    ppl::Evaluator* warmEvaluator(const std::string& workload,
                                  double dataScale);

  private:
    struct WarmModel
    {
        std::unique_ptr<workloads::Workload> model;
        std::unique_ptr<ppl::Evaluator> eval;
        /** Tape nodes of one gradient evaluation (profiled once). */
        double nodesPerEval = 0.0;
        /** Amortized-cache dataset fingerprint (empty: not amortizable). */
        std::string amortDigest;
        /** LRU tick of the last warm() touch (eviction order). */
        std::uint64_t lastUse = 0;
    };

    struct QueueEntry
    {
        std::uint64_t id = 0;
        Request request;
        double arrivalSeconds = 0.0;
        double deadlineSeconds = 0.0;
        double estimatedSeconds = 0.0;
        /** Set when an amortized miss/escalation re-enqueued the
         * request: the second pass must take the full path. */
        bool forceFull = false;
    };

    /** Amortized-tier attempt outcome (serveNext control flow). */
    enum class AmortTry
    {
        Served,         ///< answered from the cache, bookkeeping done
        Requeued,       ///< cold/escalated: re-enqueued with forceFull
        NotAmortizable, ///< model exposes no statistics: full path now
    };

    std::shared_ptr<WarmModel> warm(const std::string& name,
                                    double dataScale)
        BAYES_REQUIRES(mutex_);
    double estimate(const Request& request, const WarmModel& warm,
                    bool forceFull) BAYES_REQUIRES(mutex_);
    double projectedWaitSeconds(SloClass slo) const BAYES_REQUIRES(mutex_);
    std::size_t queueDepthLocked() const BAYES_REQUIRES(mutex_);
    void shed(Response& response);
    void fail(Response& response, const std::string& why);
    void serveNext();
    AmortTry tryAmortized(Response& response, QueueEntry& entry,
                          double start, double wait);
    void finishServed(Response& response, QueueEntry& entry);

    ServerConfig config_;
    /** Guards the admission-time state: queues, warm-model cache, and
     * the amortized posterior cache. */
    mutable support::Mutex mutex_;
    std::array<std::deque<QueueEntry>, kNumSloClasses> queues_
        BAYES_GUARDED_BY(mutex_);
    /**
     * Keyed (workload, dataScale), LRU-bounded at
     * ServerConfig::warmCacheCapacity. Entries are shared_ptr so the
     * serving path can keep its model/evaluator alive unlocked while
     * the sampler runs even if the entry is evicted meanwhile.
     */
    std::map<std::pair<std::string, double>, std::shared_ptr<WarmModel>>
        warmCache_ BAYES_GUARDED_BY(mutex_);
    /** Amortized posterior cache (the cheap tier). */
    samplers::amortize::AmortizedCache amortCache_
        BAYES_GUARDED_BY(mutex_);
    std::vector<Response> responses_;
    std::vector<std::uint64_t> servedOrder_;
    double virtualNow_ = 0.0;
    std::uint64_t admitted_ = 0;
    std::uint64_t shed_ = 0;
    std::uint64_t deadlineMisses_ = 0;
    std::uint64_t warmHits_ = 0;
    std::uint64_t warmMisses_ = 0;
    std::uint64_t warmEvictions_ = 0;
    /** Monotone warm() touch counter feeding WarmModel::lastUse. */
    std::uint64_t warmUseTick_ = 0;
};

} // namespace bayes::serve
