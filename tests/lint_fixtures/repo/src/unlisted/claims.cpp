// EXPECT: R010
// Fixture: a populated src/ layer that is missing from the
// bayes-layers manifest is reported at the layer's first file, line 1.

namespace fixture {
int unlistedLayer() { return 1; }
}  // namespace fixture
