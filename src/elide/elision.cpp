#include "elide/elision.hpp"

#include <algorithm>

#include "diagnostics/convergence.hpp"
#include "obs/obs.hpp"
#include "samplers/runner.hpp"
#include "support/timer.hpp"

namespace bayes::elide {
namespace {

/** Detector telemetry (catalogued in docs/observability.md). */
struct ElideMetrics
{
    obs::Counter& checks = obs::Registry::global().counter("elide.checks");
    obs::Counter& convergedRuns =
        obs::Registry::global().counter("elide.converged_runs");
    obs::Counter& elidedIterations =
        obs::Registry::global().counter("elide.elided_iterations");
    obs::Gauge& lastRhat = obs::Registry::global().gauge("elide.last_rhat");
    obs::Gauge& stopDraw = obs::Registry::global().gauge("elide.stop_draw");
    obs::Histogram& rhat = obs::Registry::global().histogram("elide.rhat");
    obs::Histogram& checkSeconds =
        obs::Registry::global().histogram("elide.check_seconds");

    static ElideMetrics& get()
    {
        static ElideMetrics* m = new ElideMetrics; // leaked, like Registry
        return *m;
    }
};

} // namespace

double
ElisionResult::elidedFraction() const
{
    if (!converged || budgetIterations == 0)
        return 0.0;
    return 1.0
        - static_cast<double>(executedIterations)
        / static_cast<double>(budgetIterations);
}

double
detectorRhat(const std::vector<samplers::ChainResult>& chains,
             int drawsSoFar, double windowFraction)
{
    BAYES_CHECK(!chains.empty(), "no chains");
    BAYES_CHECK(drawsSoFar >= 4, "too few draws for R-hat");
    const std::size_t keep = std::max<std::size_t>(
        4, static_cast<std::size_t>(windowFraction * drawsSoFar));
    const std::size_t start =
        static_cast<std::size_t>(drawsSoFar) > keep
        ? static_cast<std::size_t>(drawsSoFar) - keep
        : 0;

    const std::size_t dim = chains[0].draws[0].size();
    double worst = 1.0;
    std::vector<std::vector<double>> window(chains.size());
    for (std::size_t i = 0; i < dim; ++i) {
        for (std::size_t c = 0; c < chains.size(); ++c) {
            auto& xs = window[c];
            xs.clear();
            for (std::size_t t = start;
                 t < static_cast<std::size_t>(drawsSoFar); ++t)
                xs.push_back(chains[c].draws[t][i]);
        }
        worst = std::max(worst, diagnostics::splitRhat(window));
        if (!(worst < INFINITY))
            break;
    }
    return worst;
}

bool
detectorChecksAt(const ElisionConfig& config, int draw)
{
    return draw >= config.minDraws && draw % config.checkInterval == 0;
}

std::vector<RhatSample>
convergenceTrace(const std::vector<samplers::ChainResult>& chains,
                 const ElisionConfig& config)
{
    BAYES_CHECK(!chains.empty() && !chains[0].draws.empty(),
                "convergenceTrace needs a completed run");
    const int draws = static_cast<int>(chains[0].draws.size());
    std::vector<RhatSample> trace;
    for (int draw = 1; draw <= draws; ++draw)
        if (detectorChecksAt(config, draw))
            trace.push_back(RhatSample{
                draw, detectorRhat(chains, draw, config.windowFraction)});
    return trace;
}

ElisionResult
runWithElision(const ppl::Model& model, const samplers::Config& config,
               const ElisionConfig& elision)
{
    BAYES_CHECK(config.chains >= 2,
                "convergence detection needs at least two chains");
    // Elided schedule: short fixed adaptation, detection thereafter.
    samplers::Config elidedCfg = config;
    elidedCfg.warmup =
        std::min(config.resolvedWarmup(), elision.adaptationIters);

    ElisionResult result;
    result.budgetDraws = elidedCfg.postWarmup();
    result.budgetIterations = config.iterations;

    ElideMetrics& metrics = ElideMetrics::get();

    // Runs on the coordinating thread with every chain parked at the
    // barrier (any ExecutionPolicy), so plain writes to `result` are
    // safe and the stop decision is schedule-independent.
    samplers::IterationMonitor monitor =
        [&](const samplers::MonitorContext& ctx) -> samplers::MonitorAction {
        if (!detectorChecksAt(elision, ctx.round))
            return samplers::MonitorAction::Continue;
        Timer timer;
        double rhat;
        {
            obs::Span span("elide.rhat_check");
            rhat = detectorRhat(ctx.chains, ctx.round,
                                elision.windowFraction);
        }
        const double checkSeconds = timer.seconds();
        result.detectorSeconds += checkSeconds;
        result.rhatTrace.push_back(RhatSample{ctx.round, rhat});
        metrics.checks.add();
        metrics.checkSeconds.observe(checkSeconds);
        metrics.rhat.observe(rhat);
        metrics.lastRhat.set(rhat);
        // The R-hat trajectory as a Perfetto counter track.
        obs::Tracer::global().counter("elide.rhat", rhat);
        if (rhat < elision.rhatThreshold) {
            result.converged = true;
            result.stoppedAtDraw = ctx.round;
            return samplers::MonitorAction::Stop;
        }
        return samplers::MonitorAction::Continue;
    };

    result.run = samplers::run(model, elidedCfg, monitor);
    if (!result.converged)
        result.stoppedAtDraw =
            static_cast<int>(result.run.chains[0].draws.size());
    result.executedIterations =
        static_cast<int>(result.run.chains[0].iterStats.size());
    metrics.stopDraw.set(result.stoppedAtDraw);
    if (result.converged) {
        metrics.convergedRuns.add();
        metrics.elidedIterations.add(static_cast<std::uint64_t>(
            std::max(0, result.budgetIterations
                            - result.executedIterations)));
    }
    return result;
}

} // namespace bayes::elide
