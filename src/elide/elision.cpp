#include "elide/elision.hpp"

#include <algorithm>

#include "diagnostics/convergence.hpp"
#include "samplers/runner.hpp"
#include "support/timer.hpp"

namespace bayes::elide {

double
ElisionResult::elidedFraction() const
{
    if (!converged || budgetIterations == 0)
        return 0.0;
    return 1.0
        - static_cast<double>(executedIterations)
        / static_cast<double>(budgetIterations);
}

double
detectorRhat(const std::vector<samplers::ChainResult>& chains,
             int drawsSoFar, double windowFraction)
{
    BAYES_CHECK(!chains.empty(), "no chains");
    BAYES_CHECK(drawsSoFar >= 4, "too few draws for R-hat");
    const std::size_t keep = std::max<std::size_t>(
        4, static_cast<std::size_t>(windowFraction * drawsSoFar));
    const std::size_t start =
        static_cast<std::size_t>(drawsSoFar) > keep
        ? static_cast<std::size_t>(drawsSoFar) - keep
        : 0;

    const std::size_t dim = chains[0].draws[0].size();
    double worst = 1.0;
    std::vector<std::vector<double>> window(chains.size());
    for (std::size_t i = 0; i < dim; ++i) {
        for (std::size_t c = 0; c < chains.size(); ++c) {
            auto& xs = window[c];
            xs.clear();
            for (std::size_t t = start;
                 t < static_cast<std::size_t>(drawsSoFar); ++t)
                xs.push_back(chains[c].draws[t][i]);
        }
        worst = std::max(worst, diagnostics::splitRhat(window));
        if (!(worst < INFINITY))
            break;
    }
    return worst;
}

ElisionResult
runWithElision(const ppl::Model& model, const samplers::Config& config,
               const ElisionConfig& elision)
{
    BAYES_CHECK(config.chains >= 2,
                "convergence detection needs at least two chains");
    // Elided schedule: short fixed adaptation, detection thereafter.
    samplers::Config elidedCfg = config;
    elidedCfg.warmup =
        std::min(config.resolvedWarmup(), elision.adaptationIters);

    ElisionResult result;
    result.budgetDraws = elidedCfg.postWarmup();
    result.budgetIterations = config.iterations;

    // Runs on the coordinating thread with every chain parked at the
    // barrier (any ExecutionPolicy), so plain writes to `result` are
    // safe and the stop decision is schedule-independent.
    samplers::IterationMonitor monitor =
        [&](const samplers::MonitorContext& ctx) -> samplers::MonitorAction {
        if (ctx.round < elision.minDraws
            || ctx.round % elision.checkInterval != 0)
            return samplers::MonitorAction::Continue;
        Timer timer;
        const double rhat =
            detectorRhat(ctx.chains, ctx.round, elision.windowFraction);
        result.detectorSeconds += timer.seconds();
        result.rhatTrace.push_back(RhatSample{ctx.round, rhat});
        if (rhat < elision.rhatThreshold) {
            result.converged = true;
            result.stoppedAtDraw = ctx.round;
            return samplers::MonitorAction::Stop;
        }
        return samplers::MonitorAction::Continue;
    };

    result.run = samplers::run(model, elidedCfg, monitor);
    if (!result.converged)
        result.stoppedAtDraw =
            static_cast<int>(result.run.chains[0].draws.size());
    result.executedIterations =
        static_cast<int>(result.run.chains[0].iterStats.size());
    return result;
}

} // namespace bayes::elide
