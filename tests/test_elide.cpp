/**
 * @file
 * Convergence-detection tests: the detector's window R-hat on
 * synthetic chains, early termination on real workloads, and the
 * non-converged budget-exhaustion path.
 */
#include <gtest/gtest.h>

#include "determinism_harness.hpp"
#include "elide/elision.hpp"
#include "support/rng.hpp"
#include "workloads/suite.hpp"

namespace bayes::elide {
namespace {

samplers::ChainResult
chainWithDraws(std::vector<double> xs)
{
    samplers::ChainResult chain;
    for (double x : xs)
        chain.draws.push_back({x});
    return chain;
}

TEST(Detector, LowRhatForWellMixedChains)
{
    Rng rng(1);
    std::vector<samplers::ChainResult> chains;
    for (int c = 0; c < 4; ++c) {
        std::vector<double> xs(400);
        for (auto& x : xs)
            x = rng.normal();
        chains.push_back(chainWithDraws(std::move(xs)));
    }
    EXPECT_LT(detectorRhat(chains, 400, 0.5), 1.05);
}

TEST(Detector, HighRhatForSeparatedChains)
{
    Rng rng(2);
    std::vector<samplers::ChainResult> chains;
    for (int c = 0; c < 4; ++c) {
        std::vector<double> xs(400);
        for (auto& x : xs)
            x = rng.normal(3.0 * c, 1.0);
        chains.push_back(chainWithDraws(std::move(xs)));
    }
    EXPECT_GT(detectorRhat(chains, 400, 0.5), 2.0);
}

TEST(Detector, WindowIgnoresEarlyTransient)
{
    // Chains that disagree early but agree in the second half should be
    // judged converged by the windowed detector.
    Rng rng(3);
    std::vector<samplers::ChainResult> chains;
    for (int c = 0; c < 4; ++c) {
        std::vector<double> xs;
        for (int t = 0; t < 200; ++t)
            xs.push_back(rng.normal(5.0 * c, 1.0)); // disagreeing burn-in
        for (int t = 0; t < 200; ++t)
            xs.push_back(rng.normal(0.0, 1.0)); // mixed regime
        chains.push_back(chainWithDraws(std::move(xs)));
    }
    EXPECT_LT(detectorRhat(chains, 400, 0.5), 1.1);
    // A full-history window would still see the transient.
    EXPECT_GT(detectorRhat(chains, 400, 1.0), 1.5);
}

TEST(Detector, ValidatesInput)
{
    EXPECT_THROW(detectorRhat({}, 100, 0.5), Error);
    std::vector<samplers::ChainResult> chains;
    chains.push_back(chainWithDraws({1.0, 2.0}));
    EXPECT_THROW(detectorRhat(chains, 2, 0.5), Error);
}

TEST(Elision, StopsEarlyOnConvergingWorkload)
{
    const auto wl = workloads::makeWorkload("12cities", 0.5);
    samplers::Config cfg;
    cfg.chains = 4;
    cfg.iterations = 1600;
    const auto result = runWithElision(*wl, cfg);
    EXPECT_TRUE(result.converged);
    EXPECT_LT(result.stoppedAtDraw, result.budgetDraws);
    EXPECT_LT(result.executedIterations, result.budgetIterations);
    EXPECT_GT(result.elidedFraction(), 0.2);
    // The run stores exactly the draws executed.
    for (const auto& chain : result.run.chains)
        EXPECT_EQ(static_cast<int>(chain.draws.size()),
                  result.stoppedAtDraw);
    // R-hat trace is monotone in draw index.
    for (std::size_t i = 1; i < result.rhatTrace.size(); ++i)
        EXPECT_GT(result.rhatTrace[i].draw, result.rhatTrace[i - 1].draw);
}

TEST(Elision, BudgetExhaustionWhenThresholdUnreachable)
{
    const auto wl = workloads::makeWorkload("butterfly", 0.25);
    samplers::Config cfg;
    cfg.chains = 4;
    cfg.iterations = 300;
    ElisionConfig ec;
    ec.rhatThreshold = 1.0000001; // unattainably strict
    ec.minDraws = 50;
    ec.checkInterval = 25;
    const auto result = runWithElision(*wl, cfg, ec);
    EXPECT_FALSE(result.converged);
    EXPECT_EQ(result.stoppedAtDraw, result.budgetDraws);
    EXPECT_EQ(result.executedIterations, result.budgetIterations);
    EXPECT_DOUBLE_EQ(result.elidedFraction(), 0.0);
    EXPECT_FALSE(result.rhatTrace.empty());
}

TEST(Elision, RespectsMinDrawsAndInterval)
{
    const auto wl = workloads::makeWorkload("12cities", 0.25);
    samplers::Config cfg;
    cfg.chains = 4;
    cfg.iterations = 800;
    ElisionConfig ec;
    ec.minDraws = 200;
    ec.checkInterval = 100;
    const auto result = runWithElision(*wl, cfg, ec);
    ASSERT_FALSE(result.rhatTrace.empty());
    EXPECT_GE(result.rhatTrace.front().draw, 200);
    EXPECT_EQ(result.rhatTrace.front().draw % 100, 0);
}

TEST(Elision, StopDecisionIsIdenticalUnderEveryExecutionPolicy)
{
    // The tentpole guarantee: elision composes with parallelism. The
    // phased barrier executor must reproduce the sequential schedule's
    // draws, R-hat trace and stop iteration exactly.
    const auto wl = workloads::makeWorkload("12cities", 0.25);
    samplers::Config cfg;
    cfg.chains = 4;
    cfg.iterations = 800;
    const auto sequential = runWithElision(*wl, cfg);

    for (const auto policy :
         {samplers::ExecutionPolicy::threadPerChain(),
          samplers::ExecutionPolicy::pool(2)}) {
        cfg.execution = policy;
        const auto parallel = runWithElision(*wl, cfg);
        EXPECT_EQ(parallel.converged, sequential.converged);
        EXPECT_EQ(parallel.stoppedAtDraw, sequential.stoppedAtDraw);
        EXPECT_EQ(parallel.executedIterations,
                  sequential.executedIterations);
        ASSERT_EQ(parallel.rhatTrace.size(), sequential.rhatTrace.size());
        for (std::size_t i = 0; i < parallel.rhatTrace.size(); ++i) {
            EXPECT_EQ(parallel.rhatTrace[i].draw,
                      sequential.rhatTrace[i].draw);
            EXPECT_EQ(parallel.rhatTrace[i].rhat,
                      sequential.rhatTrace[i].rhat);
        }
        EXPECT_TRUE(
            harness::identicalRuns(parallel.run, sequential.run));
    }
}

TEST(Elision, RequiresMultipleChains)
{
    const auto wl = workloads::makeWorkload("12cities", 0.25);
    samplers::Config cfg;
    cfg.chains = 1;
    EXPECT_THROW(runWithElision(*wl, cfg), Error);
}

TEST(Elision, DetectorOverheadIsTiny)
{
    // The paper's worst case (2000 iterations, 4 chains) costs 0.06 s;
    // our detector on a real elided run must stay well under that per
    // invocation.
    const auto wl = workloads::makeWorkload("racial", 0.5);
    samplers::Config cfg;
    cfg.chains = 4;
    cfg.iterations = 600;
    const auto result = runWithElision(*wl, cfg);
    if (!result.rhatTrace.empty()) {
        EXPECT_LT(result.detectorSeconds
                      / static_cast<double>(result.rhatTrace.size()),
                  0.06);
    }
}

} // namespace
} // namespace bayes::elide
