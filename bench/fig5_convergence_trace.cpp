/**
 * @file
 * Figure 5 — the convergence process of `12cities`: the Gelman-Rubin
 * R-hat trace, the KL divergence of the intermediate posterior against
 * a 2x-iteration ground truth, the detected convergence point, and the
 * latency saving the elision yields (paper: converges at 600 of 2000
 * iterations; latency reduced 53%; slowest/fastest chain ratio ~1.7).
 */
#include "common.hpp"
#include "diagnostics/convergence.hpp"
#include "diagnostics/summary.hpp"
#include "elide/elision.hpp"
#include "support/table.hpp"

#include <cstdio>

using namespace bayes;

namespace {

std::vector<std::vector<double>>
pooledUpTo(const samplers::RunResult& run, int draws)
{
    const std::size_t dim = run.chains[0].draws[0].size();
    std::vector<std::vector<double>> out(dim);
    for (std::size_t i = 0; i < dim; ++i)
        for (const auto& chain : run.chains)
            for (int t = 0; t < draws; ++t)
                out[i].push_back(chain.draws[t][i]);
    return out;
}

} // namespace

int
main()
{
    const auto wl = workloads::makeWorkload("12cities");
    auto cfg = bench::userConfig(*wl);

    // Ground truth: the user's configuration with twice the iterations.
    std::fprintf(stderr, "[bench] sampling 12cities ground truth...\n");
    auto gtCfg = cfg;
    gtCfg.iterations = cfg.iterations * 2;
    gtCfg.seed = cfg.seed ^ 0x5157u;
    const auto gtRun = samplers::run(*wl, gtCfg);
    std::vector<std::vector<double>> groundTruth;
    {
        const std::size_t dim = wl->layout().dim();
        for (std::size_t i = 0; i < dim; ++i)
            groundTruth.push_back(diagnostics::pooledCoordinate(gtRun, i));
    }

    // Full-budget run so the trace extends past the convergence point.
    std::fprintf(stderr, "[bench] sampling 12cities full budget...\n");
    const auto fullRun = samplers::run(*wl, cfg);

    // The R-hat trajectory replays the live detector's own check
    // schedule (elide::convergenceTrace) instead of re-implementing the
    // interval walk here; only the KL column is bench-specific.
    elide::ElisionConfig detector;
    detector.minDraws = 50; // trace from the first informative window
    const auto rhatTrace =
        elide::convergenceTrace(fullRun.chains, detector);

    Table trace({"draws/chain", "Rhat(window)", "KL vs ground truth"});
    int convergedAt = -1;
    for (const auto& sample : rhatTrace) {
        const double kl = diagnostics::gaussianKl(
            pooledUpTo(fullRun, sample.draw), groundTruth);
        trace.row()
            .cell(static_cast<long>(sample.draw))
            .cell(sample.rhat, 4)
            .cell(kl, 5);
        if (convergedAt < 0 && sample.rhat < detector.rhatThreshold)
            convergedAt = sample.draw;
    }
    printSection("Figure 5 — 12cities convergence trace "
                 "(R-hat over the recent-half window; KL vs 2x ground "
                 "truth)",
                 trace);

    // Latency effect: simulate the elided run against the full run.
    // Detection runs phased on the shared pool — the stop draw is
    // identical to the sequential schedule.
    const auto elided = elide::runWithElision(*wl, cfg);
    const auto profile = archsim::profileWorkload(*wl, cfg.chains);
    const auto platform = archsim::Platform::skylake();
    const auto tFull = archsim::simulateSystem(
        profile, archsim::extractRunWork(fullRun), platform, 4);
    const auto tElided = archsim::simulateSystem(
        profile, archsim::extractRunWork(elided.run), platform, 4);

    double slowest = 0.0, fastest = 1e30;
    for (double s : tFull.chainSeconds) {
        slowest = std::max(slowest, s);
        fastest = std::min(fastest, s);
    }

    Table summary({"metric", "value"});
    summary.row().cell("iteration budget (post-warmup draws)").cell(
        static_cast<long>(cfg.postWarmup()));
    summary.row().cell("converged at draw (trace)").cell(
        static_cast<long>(convergedAt));
    summary.row().cell("detector stop draw").cell(
        static_cast<long>(elided.stoppedAtDraw));
    summary.row().cell("iterations elided (%)").cell(
        100.0 * elided.elidedFraction(), 1);
    summary.row().cell("simulated latency, full budget (s)").cell(
        tFull.seconds, 2);
    summary.row().cell("simulated latency, elided (s)").cell(
        tElided.seconds, 2);
    summary.row().cell("latency saving (%) [paper: 53%]").cell(
        100.0 * (1.0 - tElided.seconds / tFull.seconds), 1);
    summary.row().cell("slowest/fastest chain ratio [paper: 1.7]").cell(
        slowest / fastest, 2);
    printSection("Figure 5 — convergence summary", summary);
    bench::writeRunReport("fig5_convergence_trace");
    return 0;
}
