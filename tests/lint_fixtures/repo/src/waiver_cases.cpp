// Fixture: waiver parser edge cases (see docs/static-analysis.md).

// A standalone comment-line waiver covers the line directly below it.
// bayes-lint: allow(R005): fixture: a full-line comment waiver covers the include below
#include <iostream>

#include <cmath>
#include <random>

namespace fixture {

// One waiver, several rules: allow(R002,R003) suppresses both on the
// same line.
// bayes-lint: allow(R002,R003): fixture: multi-rule waiver covers the reference path
double multi() { return lgamma(2.0) + double(std::mt19937{}()); }

// A bare waiver suppresses nothing and is itself a finding (R000).
double bare() { return std::lgamma(3.0); }  // bayes-lint: allow(R002) // EXPECT: R000 R002

}  // namespace fixture
