/**
 * @file
 * Table II — the experiment platforms, including the scaled cache
 * geometry this reproduction simulates (see DESIGN.md §2).
 */
#include "archsim/platform.hpp"
#include "support/table.hpp"

#include <cstdio>

using namespace bayes;
using archsim::Platform;

int
main()
{
    Table table({"Codename", "Processor", "Microarch", "Tech(nm)",
                 "TurboFreq(GHz)", "Cores", "LLC(MB)", "BW(GB/s)",
                 "TDP(W)", "simLLC(KB)", "simL2(KB)", "simL1(KB)"});
    for (const auto& p : {Platform::skylake(), Platform::broadwell()}) {
        table.row()
            .cell(p.name)
            .cell(p.processor)
            .cell(p.microarch)
            .cell(static_cast<long>(p.techNm))
            .cell(p.turboGhz, 1)
            .cell(static_cast<long>(p.cores))
            .cell(p.llcMb, 0)
            .cell(p.memBandwidthGBps, 1)
            .cell(p.tdpW, 0)
            .cell(static_cast<double>(p.llc.sizeBytes) / 1024.0, 0)
            .cell(static_cast<double>(p.l2.sizeBytes) / 1024.0, 0)
            .cell(static_cast<double>(p.l1d.sizeBytes) / 1024.0, 0);
    }
    printSection("Table II — experiment platforms "
                 "(sim* columns: capacities scaled by 1/8, DESIGN.md)",
                 table);
    return 0;
}
