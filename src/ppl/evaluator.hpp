/**
 * @file
 * Bridges the sampler's unconstrained space to a Model: applies the
 * constraining transforms, accumulates log-Jacobians, and evaluates the
 * log density with or without gradients. Owns the AD tape, which it
 * reuses across evaluations (arena-style) exactly like Stan's autodiff
 * stack.
 *
 * The evaluation surface is batch-first: logProbBatch /
 * logProbGradBatch take an EvalBatch of K unconstrained points and
 * produce K log densities (and a K×D gradient block), running the
 * model's fused kernels once over the shared observed data for all K
 * lanes. The single-point logProb / logProbGrad are thin K=1 wrappers
 * over the batch paths, so every caller sees one code path and one
 * set of semantics.
 *
 * For architecture tracing, the evaluator also owns a "data shadow"
 * buffer of modeledDataBytes() and, when a memory probe is attached to
 * the tape, streams sequential reads over it once per gradient batch —
 * modeling the likelihood's single pass over the observed data no
 * matter how many lanes ride on it.
 */
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ad/tape.hpp"
#include "ppl/eval_batch.hpp"
#include "ppl/model.hpp"

namespace bayes::ppl {

/** Unconstrained-space evaluator of a model's log density. */
class Evaluator
{
  public:
    /** Bind to a model; the model must outlive the evaluator. */
    explicit Evaluator(const Model& model);

    /** Number of unconstrained dimensions. */
    std::size_t dim() const { return layout_->dim(); }

    /** Model being evaluated. */
    const Model& model() const { return *model_; }

    /**
     * Log densities (including Jacobians) of the K points in @p batch,
     * value-only path (no tape traffic). An infeasible lane gets -inf;
     * the other lanes are unaffected.
     * @param lp  one log density per lane, lp.size() == batch.lanes()
     */
    void logProbBatch(const EvalBatch& batch, std::span<double> lp);

    /**
     * Log densities and gradients of the K points in @p batch. The
     * model's fused kernels stream the observed data once for all K
     * lanes, one multi-output reverse sweep propagates all K adjoint
     * seeds, and lane k's gradient lands in grad column k. A
     * non-finite lane gets a zero gradient (well-formed for the
     * sampler's rejection logic), like the single-point path always
     * did.
     * @param lp    one log density per lane
     * @param grad  resized to dim() × batch.lanes()
     */
    void logProbGradBatch(const EvalBatch& batch, std::span<double> lp,
                          EvalBatch& grad);

    /**
     * Log density (including Jacobian) at unconstrained point @p q,
     * value-only path. Thin K=1 wrapper over logProbBatch.
     */
    double logProb(const std::vector<double>& q);

    /**
     * Log density and its gradient at unconstrained @p q. Thin K=1
     * wrapper over logProbGradBatch.
     * @param grad  resized to dim()
     * @return the log density
     */
    double logProbGrad(const std::vector<double>& q,
                       std::vector<double>& grad);

    /** Map an unconstrained point to constrained parameter values. */
    std::vector<double> constrain(const std::vector<double>& q) const;

    /**
     * Route evaluations through the model's scalar-loop path
     * (Model::logProbScalar) instead of the fused-kernel path. Used by
     * tests and benchmarks to compare the two tapes; defaults to off.
     * Toggling resets the tape reserve hint so the next evaluation on
     * the other path does not pre-size to the wrong tape shape.
     */
    void
    setScalarLikelihood(bool on)
    {
        if (on != scalarLikelihood_) {
            reserveNodes_ = 0;
            reserveEdges_ = 0;
        }
        scalarLikelihood_ = on;
    }

    /** True when evaluations use the scalar-loop path. */
    bool scalarLikelihood() const { return scalarLikelihood_; }

    /** AD tape (attach probes or inspect size here). */
    ad::Tape& tape() { return tape_; }

    /** Number of value-only evaluations performed (lanes, not calls). */
    std::uint64_t numEvals() const { return numEvals_; }

    /** Number of gradient evaluations performed (lanes, not calls). */
    std::uint64_t numGradEvals() const { return numGradEvals_; }

    /**
     * Number of passes over the observed data: one per batch call,
     * however many lanes it carried. The amortization a K-lane batch
     * buys is exactly numGradEvals() / numDataPasses().
     */
    std::uint64_t numDataPasses() const { return numDataPasses_; }

    /** Tape nodes used by the most recent gradient evaluation. */
    std::size_t lastTapeNodes() const { return lastTapeNodes_; }

    /** Wide-node edges used by the most recent gradient evaluation. */
    std::size_t lastTapeEdges() const { return lastTapeEdges_; }

    /** Tape bytes (nodes + edges + adjoints) of the last gradient eval. */
    std::size_t lastTapeBytes() const { return lastTapeBytes_; }

  private:
    void streamDataShadow();

    const Model* model_;
    const ParamLayout* layout_;
    ad::Tape tape_;
    std::vector<double> adjoints_;
    std::vector<std::uint8_t> dataShadow_;
    EvalBatch scratchQ_;   ///< K=1 staging for the single-point wrappers
    EvalBatch scratchG_;   ///< K=1 gradient block for logProbGrad
    std::uint64_t numEvals_ = 0;
    std::uint64_t numGradEvals_ = 0;
    std::uint64_t numDataPasses_ = 0;
    std::size_t lastTapeNodes_ = 0;
    std::size_t lastTapeEdges_ = 0;
    std::size_t lastTapeBytes_ = 0;
    std::size_t reserveNodes_ = 0; ///< per-lane tape pre-size hint
    std::size_t reserveEdges_ = 0; ///< per-lane edge pre-size hint
    bool scalarLikelihood_ = false;
};

} // namespace bayes::ppl
