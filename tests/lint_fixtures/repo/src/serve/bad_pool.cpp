// Fixture: R009 — the serve layer must not own threads or pools.
namespace fixture::support {
class ThreadPool
{
  public:
    explicit ThreadPool(int) {}
};
ThreadPool& sharedPool(int);
}  // namespace fixture::support

namespace fixture::serve {

struct ExecutionPolicy
{
    static ExecutionPolicy threadPerChain(int ignored = 0);
    static ExecutionPolicy pool(int);
};
enum class ExecutionMode
{
    Sequential,
    ThreadPerChain,
    Pool
};

void badPrivatePool()
{
    support::ThreadPool pool(4);  // EXPECT: R009
    (void)pool;
}

void badHeapPool()
{
    auto* pool = new support::ThreadPool(4);  // EXPECT: R009
    delete pool;
}

void badThreadPerChain()
{
    (void)ExecutionPolicy::threadPerChain();  // EXPECT: R009
    (void)ExecutionMode::ThreadPerChain;      // EXPECT: R009
}

void goodSharedPool()
{
    (void)support::sharedPool(0);       // the sanctioned route: no finding
    (void)ExecutionPolicy::pool(0);     // pooled execution: no finding
    // bayes-lint: allow(R009): fixture shows a justified waiver
    support::ThreadPool waived(1);
    (void)waived;
}

}  // namespace fixture::serve
