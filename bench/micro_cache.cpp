/**
 * @file
 * Micro-bench — cache-model throughput: accesses/second for hit-heavy,
 * streaming, and random patterns. The figure benches replay millions of
 * trace events, so the simulator itself must sustain tens of millions
 * of accesses per second.
 */
#include <benchmark/benchmark.h>

#include "archsim/cache.hpp"
#include "archsim/stream.hpp"
#include "support/rng.hpp"

using namespace bayes::archsim;

namespace {

void
BM_CacheHits(benchmark::State& state)
{
    CacheModel cache({1024 * 1024, 64, 16});
    for (auto _ : state) {
        for (std::uint64_t addr = 0; addr < 16 * 1024; addr += 64)
            benchmark::DoNotOptimize(cache.access(addr, false));
    }
    state.SetItemsProcessed(state.iterations() * 256);
}

void
BM_CacheStreaming(benchmark::State& state)
{
    CacheModel cache({1024 * 1024, 64, 16});
    std::uint64_t addr = 0;
    for (auto _ : state) {
        for (int i = 0; i < 256; ++i) {
            benchmark::DoNotOptimize(cache.access(addr, i & 1));
            addr += 64;
        }
    }
    state.SetItemsProcessed(state.iterations() * 256);
}

void
BM_CacheRandom(benchmark::State& state)
{
    CacheModel cache({1024 * 1024, 64, 16});
    bayes::Rng rng(3);
    for (auto _ : state) {
        for (int i = 0; i < 256; ++i) {
            benchmark::DoNotOptimize(
                cache.access(rng.nextU64() & 0xffffffc0ull, false));
        }
    }
    state.SetItemsProcessed(state.iterations() * 256);
}

void
BM_StreamDetector(benchmark::State& state)
{
    StreamDetector det;
    std::uint64_t addr = 0;
    for (auto _ : state) {
        for (int i = 0; i < 256; ++i) {
            benchmark::DoNotOptimize(det.isStream(addr));
            addr += 64;
        }
    }
    state.SetItemsProcessed(state.iterations() * 256);
}

} // namespace

BENCHMARK(BM_CacheHits);
BENCHMARK(BM_CacheStreaming);
BENCHMARK(BM_CacheRandom);
BENCHMARK(BM_StreamDetector);
