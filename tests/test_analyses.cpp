/**
 * @file
 * Tests for the derived-quantity analyses: each should recover the
 * value implied by the workload's generative ground truth.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "math/special.hpp"
#include "samplers/runner.hpp"
#include "support/stats.hpp"
#include "workloads/analyses.hpp"

namespace bayes::workloads {
namespace {

samplers::RunResult
sample(const ppl::Model& wl, int iterations)
{
    samplers::Config cfg;
    cfg.chains = 2;
    cfg.iterations = iterations;
    cfg.seed = 777;
    return samplers::run(wl, cfg);
}

TEST(Analyses, LivesSavedMatchesGeneratedEffect)
{
    TwelveCities wl;
    const auto run = sample(wl, 600);
    const auto saved = livesSavedPercent(wl, run);
    ASSERT_EQ(saved.size(), 2u * 300u);
    // True effect: 1 - exp(-0.18) = 16.5% fewer deaths.
    EXPECT_NEAR(mean(saved),
                100.0 * (1.0 - std::exp(TwelveCities::kTrueLimitEffect)),
                8.0);
}

TEST(Analyses, ForecastPathTracksObservations)
{
    VotesForecast wl;
    const auto run = sample(wl, 600);
    const auto path = forecastPath(wl, run);
    ASSERT_EQ(path.size(), wl.numCycles());
    // Forecast must be finite everywhere and smooth-ish: no two
    // neighboring cycles differ by more than the GP amplitude scale.
    for (std::size_t i = 0; i < path.size(); ++i)
        EXPECT_TRUE(std::isfinite(path[i]));
    for (std::size_t i = 1; i < path.size(); ++i)
        EXPECT_LT(std::fabs(path[i] - path[i - 1]), 1.5);
}

TEST(Analyses, RichnessLiesWithinSpeciesPool)
{
    ButterflyRichness wl;
    const auto run = sample(wl, 500);
    const auto richness = expectedRichness(wl, run);
    for (double r : richness) {
        EXPECT_GT(r, 0.0);
        EXPECT_LT(r, static_cast<double>(wl.numSpecies()));
    }
    // Community mean occupancy was generated at logit ~0.2 -> ~55%.
    EXPECT_NEAR(mean(richness) / static_cast<double>(wl.numSpecies()),
                math::invLogit(0.2), 0.15);
}

TEST(Analyses, SurvivalRatesNearGeneratedValue)
{
    AnimalSurvival wl(0.5);
    const auto run = sample(wl, 500);
    const auto rates = survivalRates(wl, run);
    ASSERT_EQ(rates.size(), wl.numOccasions() - 1);
    // Generated mean survival: inv_logit(1.1) ~ 0.75.
    double avg = 0;
    for (double r : rates) {
        EXPECT_GT(r, 0.3);
        EXPECT_LT(r, 1.0);
        avg += r;
    }
    avg /= static_cast<double>(rates.size());
    EXPECT_NEAR(avg, math::invLogit(1.1), 0.12);
}

TEST(Analyses, EmptyRunIsRejected)
{
    TwelveCities wl;
    samplers::RunResult empty;
    EXPECT_THROW(livesSavedPercent(wl, empty), Error);
}

} // namespace
} // namespace bayes::workloads
