/**
 * @file
 * Probability densities and mass functions, templated so each argument
 * can independently be a plain double (data / fixed hyperparameter) or
 * an ad::Var (parameter). Naming follows Stan's `<dist>_lpdf/_lpmf`
 * convention deliberately, so models port across with minimal friction;
 * infrastructure code elsewhere uses the project's camelCase style.
 *
 * All densities include their normalizing constants — the KL-divergence
 * quality metric in the convergence study depends on comparable
 * absolute log densities.
 */
#pragma once

#include <vector>

#include "math/functions.hpp"

namespace bayes::math {

using std::exp;
using std::log;
using std::log1p;
using ad::exp;
using ad::log;
using ad::log1p;

/** Standard normal log density. */
template <typename TY>
promote_t<TY>
std_normal_lpdf(const TY& y)
{
    return -0.5 * square(y) - kLogSqrtTwoPi;
}

/** Normal(mu, sigma) log density. @pre sigma > 0 */
template <typename TY, typename TMu, typename TSigma>
promote_t<TY, TMu, TSigma>
normal_lpdf(const TY& y, const TMu& mu, const TSigma& sigma)
{
    using T = promote_t<TY, TMu, TSigma>;
    const T z = (y - mu) / sigma;
    return T(-0.5) * square(z) - log(sigma) - kLogSqrtTwoPi;
}

/** Sum of Normal log densities over a data vector. */
template <typename TMu, typename TSigma>
promote_t<TMu, TSigma>
normal_lpdf(const std::vector<double>& ys, const TMu& mu, const TSigma& sigma)
{
    promote_t<TMu, TSigma> lp = 0.0;
    for (double y : ys)
        lp += normal_lpdf(y, mu, sigma);
    return lp;
}

/** LogNormal(mu, sigma) log density. @pre y > 0, sigma > 0 */
template <typename TY, typename TMu, typename TSigma>
promote_t<TY, TMu, TSigma>
lognormal_lpdf(const TY& y, const TMu& mu, const TSigma& sigma)
{
    using T = promote_t<TY, TMu, TSigma>;
    const T ly = log(T(y));
    return normal_lpdf(ly, T(mu), T(sigma)) - ly;
}

/** Student-t(nu, mu, sigma) log density. @pre nu, sigma > 0 */
template <typename TY, typename TMu, typename TSigma>
promote_t<TY, TMu, TSigma>
student_t_lpdf(const TY& y, double nu, const TMu& mu, const TSigma& sigma)
{
    using T = promote_t<TY, TMu, TSigma>;
    const T z = (y - mu) / sigma;
    const double norm = lgammaSafe(0.5 * (nu + 1.0)) - lgammaSafe(0.5 * nu)
        - 0.5 * std::log(nu) - 0.5 * kLogPi;
    return norm - log(sigma)
        - 0.5 * (nu + 1.0) * log1p(square(z) / nu);
}

/** Cauchy(loc, scale) log density. @pre scale > 0 */
template <typename TY, typename TMu, typename TSigma>
promote_t<TY, TMu, TSigma>
cauchy_lpdf(const TY& y, const TMu& loc, const TSigma& scale)
{
    using T = promote_t<TY, TMu, TSigma>;
    const T z = (y - loc) / scale;
    return -kLogPi - log(scale) - log1p(square(z));
}

/** Exponential(rate) log density. @pre y >= 0, rate > 0 */
template <typename TY, typename TRate>
promote_t<TY, TRate>
exponential_lpdf(const TY& y, const TRate& rate)
{
    using T = promote_t<TY, TRate>;
    return log(T(rate)) - rate * y;
}

/** Gamma(shape, rate) log density. @pre y, shape, rate > 0 */
template <typename TY, typename TShape, typename TRate>
promote_t<TY, TShape, TRate>
gamma_lpdf(const TY& y, const TShape& shape, const TRate& rate)
{
    using T = promote_t<TY, TShape, TRate>;
    return shape * log(T(rate)) - lgamma(T(shape))
        + (shape - 1.0) * log(T(y)) - rate * y;
}

/** Beta(a, b) log density. @pre 0 < y < 1, a, b > 0 */
template <typename TY, typename TA, typename TB>
promote_t<TY, TA, TB>
beta_lpdf(const TY& y, const TA& a, const TB& b)
{
    using T = promote_t<TY, TA, TB>;
    return (a - 1.0) * log(T(y)) + (b - 1.0) * log1p(-T(y))
        + lgamma(T(a) + T(b)) - lgamma(T(a)) - lgamma(T(b));
}

/** Uniform(lo, hi) log density; -inf outside the support. */
template <typename TY>
promote_t<TY>
uniform_lpdf(const TY& y, double lo, double hi)
{
    if (valueOf(y) < lo || valueOf(y) > hi)
        return promote_t<TY>(-INFINITY);
    return promote_t<TY>(-std::log(hi - lo));
}

/** Poisson(lambda) log mass. @pre lambda > 0, y >= 0 */
template <typename TLambda>
promote_t<TLambda>
poisson_lpmf(long y, const TLambda& lambda)
{
    using T = promote_t<TLambda>;
    return static_cast<double>(y) * log(T(lambda)) - lambda
        - lgammaSafe(static_cast<double>(y) + 1.0);
}

/** Poisson with log-rate parameterization: lambda = exp(eta). */
template <typename TEta>
promote_t<TEta>
poisson_log_lpmf(long y, const TEta& eta)
{
    using T = promote_t<TEta>;
    return static_cast<double>(y) * eta - exp(T(eta))
        - lgammaSafe(static_cast<double>(y) + 1.0);
}

/** Bernoulli(p) log mass. @pre 0 < p < 1 */
template <typename TP>
promote_t<TP>
bernoulli_lpmf(int y, const TP& p)
{
    using T = promote_t<TP>;
    return y ? log(T(p)) : log1p(-T(p));
}

/**
 * Bernoulli with logit parameterization, the numerically stable form
 * used by the logistic-regression workloads.
 */
template <typename TEta>
promote_t<TEta>
bernoulli_logit_lpmf(int y, const TEta& eta)
{
    using T = promote_t<TEta>;
    // log sigma(eta) = -log1pExp(-eta); log(1-sigma(eta)) = -log1pExp(eta)
    return y ? -log1pExp(-T(eta)) : -log1pExp(T(eta));
}

/** Binomial(n, p) log mass. @pre 0 <= y <= n, 0 < p < 1 */
template <typename TP>
promote_t<TP>
binomial_lpmf(long y, long n, const TP& p)
{
    using T = promote_t<TP>;
    const double ny = static_cast<double>(n);
    const double ky = static_cast<double>(y);
    return lchoose(ny, ky) + ky * log(T(p))
        + (ny - ky) * log1p(-T(p));
}

/** Binomial with logit parameterization. */
template <typename TEta>
promote_t<TEta>
binomial_logit_lpmf(long y, long n, const TEta& eta)
{
    using T = promote_t<TEta>;
    const double ny = static_cast<double>(n);
    const double ky = static_cast<double>(y);
    return lchoose(ny, ky) - ky * log1pExp(-T(eta))
        - (ny - ky) * log1pExp(T(eta));
}

/**
 * Negative binomial, mean/overdispersion (mu, phi) parameterization
 * (Stan's neg_binomial_2). @pre mu, phi > 0, y >= 0
 */
template <typename TMu, typename TPhi>
promote_t<TMu, TPhi>
neg_binomial_2_lpmf(long y, const TMu& mu, const TPhi& phi)
{
    using T = promote_t<TMu, TPhi>;
    const double ky = static_cast<double>(y);
    return lgamma(ky + T(phi)) - lgammaSafe(ky + 1.0) - lgamma(T(phi))
        + phi * (log(T(phi)) - log(T(mu) + T(phi)))
        + ky * (log(T(mu)) - log(T(mu) + T(phi)));
}

} // namespace bayes::math
