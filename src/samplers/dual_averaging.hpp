/**
 * @file
 * Nesterov-style dual-averaging step-size adaptation, as specified in
 * Hoffman & Gelman (2014) §3.2 and used by Stan. Drives the step size
 * toward a target Metropolis acceptance statistic during warmup.
 */
#pragma once

#include <cmath>

namespace bayes::samplers {

/** Dual-averaging controller for the leapfrog step size. */
class DualAveraging
{
  public:
    /**
     * @param initialStepSize  starting epsilon (> 0)
     * @param target           desired acceptance statistic (e.g. 0.8)
     */
    DualAveraging(double initialStepSize, double target)
        : mu_(std::log(10.0 * initialStepSize)), target_(target),
          logStep_(std::log(initialStepSize))
    {
    }

    /** Fold in the acceptance statistic of one warmup iteration. */
    void
    update(double acceptStat)
    {
        ++count_;
        const double n = static_cast<double>(count_);
        const double eta = 1.0 / (n + kT0);
        hBar_ = (1.0 - eta) * hBar_ + eta * (target_ - acceptStat);
        logStep_ = mu_ - std::sqrt(n) / kGamma * hBar_;
        const double weight = std::pow(n, -kKappa);
        logStepBar_ = weight * logStep_ + (1.0 - weight) * logStepBar_;
    }

    /** Step size to use for the next warmup iteration. */
    double stepSize() const { return std::exp(logStep_); }

    /** Smoothed step size to freeze for the sampling phase. */
    double adaptedStepSize() const
    {
        return count_ ? std::exp(logStepBar_) : std::exp(logStep_);
    }

    /** Re-center the controller (used when the metric changes). */
    void
    restart(double stepSize)
    {
        mu_ = std::log(10.0 * stepSize);
        logStep_ = std::log(stepSize);
        logStepBar_ = 0.0;
        hBar_ = 0.0;
        count_ = 0;
    }

  private:
    static constexpr double kGamma = 0.05;
    static constexpr double kT0 = 10.0;
    static constexpr double kKappa = 0.75;

    double mu_;
    double target_;
    double logStep_;
    double logStepBar_ = 0.0;
    double hBar_ = 0.0;
    long count_ = 0;
};

} // namespace bayes::samplers
