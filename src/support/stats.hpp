/**
 * @file
 * Small statistics utilities: Welford running moments, sample summaries
 * (mean / sd / quantiles), and histogram binning. Used by diagnostics,
 * the architecture simulator, and tests.
 */
#pragma once

#include <cstddef>
#include <vector>

namespace bayes {

/**
 * Numerically stable single-pass accumulator of mean and variance
 * (Welford's algorithm). O(1) memory; used both for posterior summaries
 * and for the diagonal mass-matrix adaptation inside NUTS.
 */
class RunningStats
{
  public:
    /** Fold one observation into the accumulator. */
    void add(double x);

    /** Merge another accumulator (parallel-friendly Chan et al. form). */
    void merge(const RunningStats& other);

    /** Number of observations folded in so far. */
    std::size_t count() const { return n_; }

    /** Sample mean; 0 when empty. */
    double mean() const { return n_ ? mean_ : 0.0; }

    /** Unbiased sample variance; 0 with fewer than two observations. */
    double variance() const;

    /** Square root of variance(). */
    double stddev() const;

    /** Smallest observation seen; +inf when empty. */
    double min() const { return min_; }

    /** Largest observation seen; -inf when empty. */
    double max() const { return max_; }

    /** Reset to the empty state. */
    void reset();

  private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_;
    double max_;
};

/** Arithmetic mean of a sample. @pre xs nonempty */
double mean(const std::vector<double>& xs);

/** Unbiased sample variance. @pre xs.size() >= 2 */
double variance(const std::vector<double>& xs);

/** Square root of variance(). */
double stddev(const std::vector<double>& xs);

/**
 * Linear-interpolated quantile (type-7, the R default).
 * @param xs  sample (not required to be sorted; copied internally)
 * @param q   quantile in [0, 1]
 */
double quantile(std::vector<double> xs, double q);

/** Geometric mean. @pre all xs > 0, xs nonempty */
double geometricMean(const std::vector<double>& xs);

/**
 * Pearson correlation coefficient of two equal-length samples.
 * @pre xs.size() == ys.size() >= 2 and both have nonzero variance
 */
double pearson(const std::vector<double>& xs, const std::vector<double>& ys);

/**
 * Ordinary least squares fit y = a + b*x.
 * @return {intercept a, slope b}
 * @pre xs.size() == ys.size() >= 2 with nonzero x variance
 */
struct LinearFit
{
    double intercept;
    double slope;

    /** Predict y at the given x. */
    double predict(double x) const { return intercept + slope * x; }
};

LinearFit fitLeastSquares(const std::vector<double>& xs,
                          const std::vector<double>& ys);

} // namespace bayes
