// Fixture: DFS visits a.hpp first, so the edge back to it is the one
// that closes the cycle and carries the finding.
#pragma once
#include "cycle/a.hpp"  // EXPECT: R010
