/**
 * @file
 * Convergence diagnostics: the Gelman-Rubin potential scale reduction
 * factor (R-hat, split form), autocorrelation-based effective sample
 * size, and the moment-matched Gaussian KL divergence the paper uses as
 * its result-quality metric (§VI-A).
 */
#pragma once

#include <vector>

namespace bayes::diagnostics {

/**
 * Split Gelman-Rubin R-hat for one scalar quantity.
 *
 * Each chain is split in half (so intra-chain drift registers as
 * between-"chain" variance), then the classic
 * sqrt(((n-1)/n W + B/n) / W) statistic is computed.
 *
 * @param chains  per-chain draws of one coordinate; all chains must
 *                have equal length >= 4
 * @return R-hat (>= ~1; 1 means converged). Returns +inf when the
 *         within variance is zero but means differ, and 1 when all
 *         draws are identical.
 */
double splitRhat(const std::vector<std::vector<double>>& chains);

/**
 * Maximum split R-hat across all coordinates of a multi-chain run.
 * @param coordDraws  [coordinate][chain][draw]
 */
double
maxSplitRhat(const std::vector<std::vector<std::vector<double>>>& coordDraws);

/**
 * Rank-normalized split R-hat (Vehtari, Gelman, Simpson, Carpenter &
 * Buerkner 2021): draws are replaced by the normal quantiles of their
 * pooled fractional ranks before the split R-hat computation, making
 * the diagnostic robust to heavy tails and nonlinear scale. Always
 * >= ~1; agrees with splitRhat on well-behaved Gaussians.
 */
double rankNormalizedRhat(const std::vector<std::vector<double>>& chains);

/**
 * Effective sample size of one scalar quantity across chains, using
 * Geyer's initial-monotone-positive-sequence truncation of the
 * combined-chain autocorrelation (the estimator family Stan uses).
 */
double effectiveSampleSize(const std::vector<std::vector<double>>& chains);

/**
 * KL divergence KL(P || Q) between two diagonal moment-matched
 * Gaussians fitted to samples of a d-dimensional posterior, averaged
 * over dimensions. This is the paper's result-quality measure: small
 * values mean the intermediate posterior matches the ground truth.
 *
 * @param p  [coordinate][sample] for the candidate posterior
 * @param q  [coordinate][sample] for the reference (ground truth)
 */
double gaussianKl(const std::vector<std::vector<double>>& p,
                  const std::vector<std::vector<double>>& q);

/** KL divergence between two univariate Gaussians N(m1,s1^2)||N(m2,s2^2). */
double gaussianKl1d(double mean1, double sd1, double mean2, double sd2);

} // namespace bayes::diagnostics
