#include "ad/tape.hpp"

#include <algorithm>

namespace bayes::ad {

void
Tape::gradient(NodeId output, std::vector<double>& out)
{
    BAYES_CHECK(output < nodes_.size(), "gradient of unknown node");
    adjoints_.assign(nodes_.size(), 0.0);
    adjoints_[output] = 1.0;
    for (NodeId i = output + 1; i-- > 0;) {
        const double adj = adjoints_[i];
        if (probe_)
            probe_->access(&adjoints_[i], sizeof(double), false);
        if (adj == 0.0)
            continue;
        const Node& node = nodes_[i];
        if (probe_)
            probe_->access(&node, sizeof(Node), false);
        for (int k = 0; k < 2; ++k) {
            const NodeId p = node.parent[k];
            if (p == kNoParent)
                continue;
            adjoints_[p] += node.weight[k] * adj;
            if (probe_)
                probe_->access(&adjoints_[p], sizeof(double), true);
        }
    }
    out.assign(adjoints_.begin(), adjoints_.end());
}

} // namespace bayes::ad
