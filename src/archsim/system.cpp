#include "archsim/system.hpp"

#include <algorithm>

#include "archsim/cache.hpp"
#include "archsim/stream.hpp"
#include "support/error.hpp"

namespace bayes::archsim {
namespace {

/** Replay interleave grain (accesses per chain per turn). */
constexpr std::size_t kChunk = 128;
/** Trace replay rounds; the first kWarmRounds only warm the caches. */
constexpr int kRounds = 7;
constexpr int kWarmRounds = 2;

/** Private per-core cache state used during replay. */
struct CorePipes
{
    CacheModel l1d;
    CacheModel l2;
    StreamDetector streams;

    explicit CorePipes(const Platform& p) : l1d(p.l1d), l2(p.l2) {}
};

/** Raw per-chain counters accumulated over the measured rounds. */
struct ChainCounters
{
    std::uint64_t accesses = 0;
    std::uint64_t streamAccesses = 0;
    std::uint64_t demandL2Hits = 0;
    std::uint64_t demandLlcHits = 0;
    std::uint64_t demandLlcMisses = 0;
    std::uint64_t streamLlcMisses = 0;
    std::uint64_t writebacks = 0;
};

/**
 * Replay the first `degree` chains' traces concurrently (one core
 * each, shared LLC) and return mean per-evaluation memory stats.
 */
EvalMemStats
replayGroup(const WorkloadProfile& profile, const Platform& platform,
            int degree, bool prefetchEnabled)
{
    const int chains = static_cast<int>(profile.chains.size());
    degree = std::min(degree, chains);

    CacheModel llc(platform.llc);
    std::vector<CorePipes> cores;
    cores.reserve(degree);
    for (int c = 0; c < degree; ++c)
        cores.emplace_back(platform);

    std::vector<ChainCounters> counters(degree);
    std::vector<std::size_t> cursor(degree, 0);

    for (int round = 0; round < kRounds; ++round) {
        const bool measured = round >= kWarmRounds;
        // Round-robin chunks until every chain finishes this round.
        std::fill(cursor.begin(), cursor.end(), 0);
        bool anyLeft = true;
        while (anyLeft) {
            anyLeft = false;
            for (int c = 0; c < degree; ++c) {
                const auto& trace = profile.chains[c].trace;
                std::size_t& pos = cursor[c];
                if (pos >= trace.size())
                    continue;
                const std::size_t end = std::min(pos + kChunk, trace.size());
                CorePipes& pipe = cores[c];
                ChainCounters& cnt = counters[c];
                for (; pos < end; ++pos) {
                    const Access& a = trace[pos];
                    const std::uint64_t line = a.addr & ~63ull;
                    const bool stream =
                        pipe.streams.isStream(a.addr) && prefetchEnabled;
                    if (measured) {
                        ++cnt.accesses;
                        if (stream)
                            ++cnt.streamAccesses;
                    }
                    if (pipe.l1d.access(line, a.write)) {
                        continue;
                    }
                    if (pipe.l2.access(line, a.write)) {
                        if (measured && !stream)
                            ++cnt.demandL2Hits;
                        continue;
                    }
                    const std::uint64_t wbBefore = llc.stats().writebacks;
                    if (llc.access(line, a.write)) {
                        if (measured && !stream)
                            ++cnt.demandLlcHits;
                    } else if (measured) {
                        if (stream)
                            ++cnt.streamLlcMisses;
                        else
                            ++cnt.demandLlcMisses;
                    }
                    if (measured)
                        cnt.writebacks += llc.stats().writebacks - wbBefore;
                }
                anyLeft = anyLeft || pos < trace.size();
            }
        }
    }

    // Average over chains and measured rounds.
    EvalMemStats mem;
    const double denom =
        static_cast<double>(degree) * (kRounds - kWarmRounds);
    for (const auto& cnt : counters) {
        mem.accesses += static_cast<double>(cnt.accesses);
        mem.streamAccesses += static_cast<double>(cnt.streamAccesses);
        mem.demandL2Hits += static_cast<double>(cnt.demandL2Hits);
        mem.demandLlcHits += static_cast<double>(cnt.demandLlcHits);
        mem.demandLlcMisses += static_cast<double>(cnt.demandLlcMisses);
        mem.streamLlcMisses += static_cast<double>(cnt.streamLlcMisses);
        mem.writebacks += static_cast<double>(cnt.writebacks);
    }
    mem.accesses /= denom;
    mem.streamAccesses /= denom;
    mem.demandL2Hits /= denom;
    mem.demandLlcHits /= denom;
    mem.demandLlcMisses /= denom;
    mem.streamLlcMisses /= denom;
    mem.writebacks /= denom;
    return mem;
}

} // namespace

RunWork
extractRunWork(const samplers::RunResult& run)
{
    RunWork work;
    for (const auto& chain : run.chains) {
        std::uint64_t evals = 0;
        for (const auto& it : chain.iterStats)
            evals += it.gradEvals;
        // MH chains have no gradient evaluations; count density
        // evaluations (one per iteration) as the equivalent work unit.
        if (evals == 0)
            evals = chain.iterStats.size();
        work.chainGradEvals.push_back(evals);
        work.chainIterations.push_back(chain.iterStats.size());
    }
    return work;
}

SystemResult
simulateSystem(const WorkloadProfile& profile, const RunWork& work,
               const Platform& platform, int cores,
               const CoreParams& params)
{
    const int chains = static_cast<int>(profile.chains.size());
    BAYES_CHECK(chains >= 1, "profile has no chains");
    BAYES_CHECK(static_cast<int>(work.chainGradEvals.size()) == chains,
                "work/profile chain count mismatch");
    BAYES_CHECK(cores >= 1 && cores <= platform.cores,
                "core count outside platform range");

    // Memory behavior at this concurrency level.
    const int degree = std::min(cores, chains);
    const EvalMemStats mem =
        replayGroup(profile, platform, degree, params.prefetchEnabled);

    // Per-chain timing.
    SystemResult out;
    out.chainSeconds.resize(chains);
    double instrTotal = 0;
    double cycleTotal = 0;
    double trafficTotal = 0;
    double mpkiAccum = 0, icAccum = 0, brAccum = 0;
    for (int c = 0; c < chains; ++c) {
        const EvalCost cost =
            evalCost(profile.chains[c], mem, platform, params);
        const double evals =
            static_cast<double>(work.chainGradEvals[c]);
        const double iters = static_cast<double>(work.chainIterations[c]);
        const double iterOverheadCycles = iters
            * static_cast<double>(profile.chains[c].dim)
            * params.instrPerDimPerIter * params.baseCpi;
        const double cycles = cost.cycles * evals + iterOverheadCycles;
        out.chainSeconds[c] = cycles / (platform.turboGhz * 1e9);
        instrTotal += cost.instructions * evals;
        cycleTotal += cycles;
        trafficTotal += cost.llcTrafficBytes * evals;
        mpkiAccum += cost.llcMpki;
        icAccum += cost.icacheMpki;
        brAccum += cost.branchMpki;
    }

    // Chains round-robin across cores; a core's time is the sum of its
    // chains, the job finishes with the slowest core.
    std::vector<double> coreTime(std::min(cores, chains), 0.0);
    for (int c = 0; c < chains; ++c)
        coreTime[c % coreTime.size()] += out.chainSeconds[c];
    out.seconds = *std::max_element(coreTime.begin(), coreTime.end());

    // Bandwidth demand; saturate against the platform ceiling.
    double bandwidth = trafficTotal / out.seconds / 1e6; // MB/s
    const double maxMBps = platform.memBandwidthGBps * 1000.0;
    if (bandwidth > maxMBps) {
        out.seconds *= bandwidth / maxMBps;
        bandwidth = maxMBps;
    }
    out.bandwidthMBps = bandwidth;

    out.ipc = instrTotal / cycleTotal;
    out.llcMpki = mpkiAccum / chains;
    out.icacheMpki = icAccum / chains;
    out.branchMpki = brAccum / chains;

    const int activeCores = std::min(cores, chains);
    out.powerW = platform.idlePowerW + platform.corePowerW * activeCores;
    out.energyJ = out.powerW * out.seconds;
    return out;
}

} // namespace bayes::archsim
