#include "samplers/hmc.hpp"

#include <algorithm>
#include <cmath>

namespace bayes::samplers {

HmcTransition
HmcSampler::transition(PhasePoint& z, Rng& rng)
{
    HmcTransition result;

    ham_->sampleMomentum(rng, z);
    const double joint0 = ham_->joint(z);

    PhasePoint trial = z;
    for (int s = 0; s < steps_; ++s) {
        ham_->leapfrog(trial, stepSize_);
        ++result.gradEvals;
        if (!std::isfinite(trial.logProb))
            break;
    }

    double joint = ham_->joint(trial);
    if (!std::isfinite(joint))
        joint = -INFINITY;
    result.divergent = joint0 - joint > kDeltaMax;
    result.acceptStat = std::min(1.0, std::exp(joint - joint0));
    if (rng.uniform() < result.acceptStat) {
        z = trial;
        result.accepted = true;
    }
    return result;
}

} // namespace bayes::samplers
