#include "serve/load_generator.hpp"

#include <utility>

#include "support/error.hpp"

namespace bayes::serve {

LoadGenerator::LoadGenerator(LoadConfig config, std::vector<TenantSpec> mix)
    : config_(std::move(config)), mix_(std::move(mix))
{
    BAYES_CHECK(!mix_.empty(), "serve: load generator needs a tenant mix");
    BAYES_CHECK(config_.arrivalRatePerSecond > 0.0,
                "serve: arrival rate must be positive, got "
                    << config_.arrivalRatePerSecond);
    for (const TenantSpec& spec : mix_)
        BAYES_CHECK(spec.weight > 0.0,
                    "serve: tenant '" << spec.tenant
                                      << "' needs a positive weight, got "
                                      << spec.weight);
}

std::vector<Request>
LoadGenerator::schedule() const
{
    std::vector<double> weights;
    weights.reserve(mix_.size());
    for (const TenantSpec& spec : mix_)
        weights.push_back(spec.weight);

    Rng rng(config_.seed);
    std::vector<Request> arrivals;
    arrivals.reserve(config_.requests);
    double now = 0.0;
    for (std::size_t i = 0; i < config_.requests; ++i) {
        now += rng.exponential(config_.arrivalRatePerSecond);
        const TenantSpec& spec = mix_[rng.categorical(weights)];
        Request request;
        request.tenant = spec.tenant;
        request.workload = spec.workload;
        request.dataScale = spec.dataScale;
        request.config = spec.config;
        // Distinct seed per request so repeat requests are genuinely
        // different jobs (the warm cache, not draw reuse, is the
        // amortization story).
        request.config.seed = spec.config.seed + i;
        request.slo = spec.slo;
        request.deadlineSeconds = spec.deadlineSeconds;
        request.arrivalSeconds = now;
        request.query = spec.query;
        arrivals.push_back(std::move(request));
    }
    return arrivals;
}

std::vector<TenantSpec>
defaultTenantMix()
{
    // Small sampler configs on the six fused-kernel workloads: the
    // bench pushes thousands of these, so each one is a sub-second job.
    samplers::Config quickMh;
    quickMh.algorithm = samplers::Algorithm::Mh;
    quickMh.chains = 2;
    quickMh.iterations = 200;

    samplers::Config quickHmc;
    quickHmc.algorithm = samplers::Algorithm::Hmc;
    quickHmc.chains = 2;
    quickHmc.iterations = 120;
    quickHmc.hmcLeapfrogSteps = 8;

    std::vector<TenantSpec> mix;
    mix.reserve(6);

    TenantSpec& ads = mix.emplace_back();
    ads.tenant = "ads";
    ads.workload = "ad";
    ads.weight = 3.0;
    ads.slo = SloClass::Interactive;
    ads.config = quickMh;
    ads.query = QueryKind::Mean;

    TenantSpec& ops = mix.emplace_back();
    ops.tenant = "ops";
    ops.workload = "tickets";
    ops.weight = 2.0;
    ops.slo = SloClass::Interactive;
    ops.config = quickMh;
    ops.query = QueryKind::Mean;

    TenantSpec& geo = mix.emplace_back();
    geo.tenant = "geo";
    geo.workload = "12cities";
    geo.weight = 2.0;
    geo.slo = SloClass::Standard;
    geo.config = quickHmc;

    TenantSpec& epi = mix.emplace_back();
    epi.tenant = "epi";
    epi.workload = "disease";
    epi.dataScale = 0.5;
    epi.weight = 2.0;
    epi.slo = SloClass::Standard;
    epi.config = quickMh;

    TenantSpec& polls = mix.emplace_back();
    polls.tenant = "polls";
    polls.workload = "votes";
    polls.weight = 2.0;
    polls.slo = SloClass::Standard;
    polls.config = quickMh;

    TenantSpec& actuary = mix.emplace_back();
    actuary.tenant = "actuary";
    actuary.workload = "survival";
    actuary.dataScale = 0.5;
    actuary.weight = 1.0;
    actuary.slo = SloClass::Batch;
    actuary.config = quickHmc;

    return mix;
}

} // namespace bayes::serve
