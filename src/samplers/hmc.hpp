/**
 * @file
 * Static-trajectory Hamiltonian Monte Carlo: a fixed number of leapfrog
 * steps followed by a Metropolis accept/reject. The paper reports that
 * HMC's single-core profile closely tracks NUTS (§IV-A); this kernel
 * backs that comparison bench.
 */
#pragma once

#include <cstdint>

#include "samplers/hamiltonian.hpp"

namespace bayes::samplers {

/** Outcome of one static HMC transition. */
struct HmcTransition
{
    double acceptStat = 0.0;
    std::uint32_t gradEvals = 0;
    bool accepted = false;
    bool divergent = false;
};

/** One-chain static HMC kernel. */
class HmcSampler
{
  public:
    /**
     * @param ham            Hamiltonian over the model evaluator
     * @param leapfrogSteps  trajectory length in steps
     */
    HmcSampler(Hamiltonian& ham, int leapfrogSteps)
        : ham_(&ham), steps_(leapfrogSteps)
    {
    }

    void setStepSize(double eps) { stepSize_ = eps; }
    double stepSize() const { return stepSize_; }

    /** Run one transition from @p z (updated in place on accept). */
    HmcTransition transition(PhasePoint& z, Rng& rng);

  private:
    Hamiltonian* ham_;
    int steps_;
    double stepSize_ = 0.1;

    static constexpr double kDeltaMax = 1000.0;
};

} // namespace bayes::samplers
