#include "archsim/cache.hpp"

#include "support/error.hpp"

namespace bayes::archsim {
namespace {

bool
isPowerOfTwo(std::uint64_t x)
{
    return x && (x & (x - 1)) == 0;
}

} // namespace

CacheModel::CacheModel(const CacheConfig& config) : config_(config)
{
    BAYES_CHECK(isPowerOfTwo(config.lineBytes), "line size must be 2^k");
    BAYES_CHECK(config.ways >= 1, "cache needs at least one way");
    const std::uint64_t lineCount = config.sizeBytes / config.lineBytes;
    BAYES_CHECK(lineCount >= config.ways,
                "cache smaller than one set (" << config.sizeBytes << "B, "
                << config.ways << " ways)");
    BAYES_CHECK(lineCount % config.ways == 0,
                "size must be a multiple of ways * lineBytes");
    numSets_ = static_cast<std::uint32_t>(lineCount / config.ways);
    BAYES_CHECK(isPowerOfTwo(numSets_), "set count must be 2^k");
    lines_.assign(static_cast<std::size_t>(numSets_) * config.ways, Line{});
}

bool
CacheModel::access(std::uint64_t lineAddr, bool write)
{
    ++stats_.accesses;
    ++clock_;
    const std::uint64_t lineNum = lineAddr / config_.lineBytes;
    const std::uint32_t set =
        static_cast<std::uint32_t>(lineNum & (numSets_ - 1));
    const std::uint64_t tag = lineNum / numSets_;
    Line* base = &lines_[static_cast<std::size_t>(set) * config_.ways];

    for (std::uint32_t w = 0; w < config_.ways; ++w) {
        Line& line = base[w];
        if (line.valid && line.tag == tag) {
            if (config_.replacement == Replacement::Lru)
                line.lru = clock_; // FIFO keeps the fill stamp
            line.dirty = line.dirty || write;
            return true;
        }
    }

    ++stats_.misses;
    // Victim: an invalid way if any, else per the replacement policy.
    Line* victim = nullptr;
    for (std::uint32_t w = 0; w < config_.ways; ++w) {
        if (!base[w].valid) {
            victim = &base[w];
            break;
        }
    }
    if (!victim) {
        switch (config_.replacement) {
          case Replacement::Lru:
          case Replacement::Fifo:
            // For FIFO, lru holds the fill time (never refreshed on
            // hits), so the same minimum scan picks the oldest fill.
            victim = base;
            for (std::uint32_t w = 1; w < config_.ways; ++w)
                if (base[w].lru < victim->lru)
                    victim = &base[w];
            break;
          case Replacement::Random:
            // 16-bit Galois LFSR: deterministic pseudo-random victim.
            lfsr_ = (lfsr_ >> 1) ^ (-(lfsr_ & 1u) & 0xb400u);
            victim = &base[lfsr_ % config_.ways];
            break;
        }
    }
    if (victim->valid && victim->dirty)
        ++stats_.writebacks;
    victim->valid = true;
    victim->dirty = write;
    victim->tag = tag;
    victim->lru = clock_;
    return false;
}

void
CacheModel::flush()
{
    for (auto& line : lines_)
        line = Line{};
    stats_ = CacheStats{};
    clock_ = 0;
}

} // namespace bayes::archsim
