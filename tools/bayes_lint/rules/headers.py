"""R006: every src header compiles as a standalone translation unit.

Needs a compiler (`--compiler`), so it is excluded from the default rule
set, the self-test, and trees without a toolchain.
"""

from __future__ import annotations

import os
import subprocess
import tempfile

from ..engine import rule
from ..source import Finding, in_dirs


@rule("R006", "every src/**/*.hpp compiles standalone (needs --compiler)",
      needs_compiler=True)
def rule_r006(files, findings, ctx):
    compiler = ctx.get("compiler")
    if not compiler:
        return
    headers = [sf for sf in files
               if in_dirs(sf.relpath, "src") and sf.relpath.endswith(".hpp")]
    srcdir = os.path.join(ctx["root"], "src")
    with tempfile.TemporaryDirectory(prefix="bayes-lint-r006-") as tmp:
        tu = os.path.join(tmp, "header_tu.cpp")
        for sf in headers:
            rel_from_src = os.path.relpath(
                os.path.join(ctx["root"], sf.relpath), srcdir)
            with open(tu, "w", encoding="utf-8") as f:
                f.write(f'#include "{rel_from_src.replace(os.sep, "/")}"\n')
            cmd = [compiler, "-std=" + ctx["std"], "-fsyntax-only",
                   "-I", srcdir, "-Wall", "-Wextra", tu]
            proc = subprocess.run(cmd, capture_output=True, text=True)
            if proc.returncode != 0:
                first_error = next(
                    (ln for ln in proc.stderr.splitlines() if "error" in ln),
                    proc.stderr.strip().splitlines()[0]
                    if proc.stderr.strip() else "compiler failed")
                if not sf.waived(1, "R006"):
                    findings.append(Finding(
                        sf.relpath, 1, "R006",
                        "header does not compile standalone: "
                        f"{first_error.strip()}"))
