#include "ppl/evaluator.hpp"

#include <cmath>

#include "obs/registry.hpp"

namespace bayes::ppl {
namespace {

/** Per-eval tape/batch gauges (see docs/observability.md). */
struct TapeMetrics
{
    obs::Gauge& nodesPerEval =
        obs::Registry::global().gauge("tape.nodes_per_eval");
    obs::Gauge& bytesPerEval =
        obs::Registry::global().gauge("tape.bytes_per_eval");
    obs::Gauge& batchWidth =
        obs::Registry::global().gauge("eval.batch_width");

    static TapeMetrics&
    get()
    {
        static TapeMetrics* m = new TapeMetrics; // leaked, like Registry
        return *m;
    }
};

/**
 * Constrain a flat unconstrained vector, returning the constrained
 * values and adding the log-Jacobian into @p logJ. Shared by the
 * double and Var paths.
 */
template <typename T>
std::vector<T>
constrainAll(const ParamLayout& layout, const std::vector<T>& u, T& logJ)
{
    std::vector<T> x(layout.dim());
    for (std::size_t b = 0; b < layout.blockCount(); ++b) {
        const ParamBlock& blk = layout.block(b);
        const std::size_t off = layout.offset(b);
        if (blk.transform == TransformKind::Ordered) {
            logJ += constrainOrdered(u.data() + off, x.data() + off,
                                     blk.size);
            continue;
        }
        for (std::size_t i = 0; i < blk.size; ++i) {
            x[off + i] = constrainScalar(blk.transform, u[off + i],
                                         blk.lowerBound, blk.upperBound);
            logJ += logJacobianScalar(blk.transform, u[off + i],
                                      blk.lowerBound, blk.upperBound);
        }
    }
    return x;
}

} // namespace

Evaluator::Evaluator(const Model& model)
    : model_(&model), layout_(&model.layout()),
      dataShadow_(model.modeledDataBytes(), 0)
{
    scratchQ_.resize(layout_->dim(), 1);
}

void
Evaluator::logProbBatch(const EvalBatch& batch, std::span<double> lp)
{
    BAYES_CHECK(batch.dim() == dim(), "batch has wrong dimension");
    BAYES_CHECK(lp.size() == batch.lanes(),
                "logProbBatch: output size != lane count");
    const std::size_t lanes = batch.lanes();
    if (lanes == 0)
        return;
    numEvals_ += lanes;
    ++numDataPasses_;
    TapeMetrics::get().batchWidth.set(static_cast<double>(lanes));
    try {
        std::vector<std::vector<double>> xs(lanes);
        std::vector<double> logJ(lanes, 0.0);
        std::vector<double> q;
        for (std::size_t k = 0; k < lanes; ++k) {
            batch.getPoint(k, q);
            xs[k] = constrainAll(*layout_, q, logJ[k]);
        }
        if (scalarLikelihood_) {
            for (std::size_t k = 0; k < lanes; ++k) {
                const ParamView<double> view(*layout_, xs[k]);
                try {
                    lp[k] = model_->logProbScalar(view);
                } catch (const Error&) {
                    lp[k] = -INFINITY;
                }
            }
        } else {
            const BatchParamView<double> view(*layout_, xs);
            model_->logProbBatch(view, lp);
        }
        // -inf + finite Jacobian stays -inf: an infeasible lane keeps
        // zero density no matter its transform terms.
        for (std::size_t k = 0; k < lanes; ++k)
            lp[k] += logJ[k];
    } catch (const Error&) {
        // Constraining itself blew up — reject every lane.
        for (std::size_t k = 0; k < lanes; ++k)
            lp[k] = -INFINITY;
    }
}

void
Evaluator::logProbGradBatch(const EvalBatch& batch, std::span<double> lp,
                            EvalBatch& grad)
{
    BAYES_CHECK(batch.dim() == dim(), "batch has wrong dimension");
    BAYES_CHECK(lp.size() == batch.lanes(),
                "logProbGradBatch: output size != lane count");
    const std::size_t lanes = batch.lanes();
    grad.resize(dim(), lanes);
    if (lanes == 0)
        return;
    numGradEvals_ += lanes;
    ++numDataPasses_;
    TapeMetrics::get().batchWidth.set(static_cast<double>(lanes));
    tape_.clear();
    // Pre-size to the previous eval's per-lane footprint times the lane
    // count so the arenas do not re-grow (and memcpy) mid-record.
    tape_.reserve(reserveNodes_ * lanes, reserveEdges_ * lanes);

    std::vector<ad::Var> lpVars(lanes, ad::Var(-INFINITY));
    std::vector<std::vector<ad::Var>> leaves(lanes);
    try {
        std::vector<std::vector<ad::Var>> xs(lanes);
        std::vector<ad::Var> logJ(lanes);
        std::vector<double> q;
        for (std::size_t k = 0; k < lanes; ++k) {
            batch.getPoint(k, q);
            std::vector<ad::Var>& u = leaves[k];
            u.resize(dim());
            for (std::size_t i = 0; i < dim(); ++i)
                u[i] = ad::leaf(tape_, q[i]);
            logJ[k] = 0.0;
            xs[k] = constrainAll(*layout_, u, logJ[k]);
        }
        streamDataShadow();
        if (scalarLikelihood_) {
            for (std::size_t k = 0; k < lanes; ++k) {
                const ParamView<ad::Var> view(*layout_, xs[k]);
                try {
                    lpVars[k] = model_->logProbScalar(view);
                } catch (const Error&) {
                    lpVars[k] = ad::Var(-INFINITY);
                }
            }
        } else {
            const BatchParamView<ad::Var> view(*layout_, xs);
            model_->logProbBatch(view, lpVars);
        }
        for (std::size_t k = 0; k < lanes; ++k)
            lpVars[k] = lpVars[k] + logJ[k];
    } catch (const Error&) {
        for (std::size_t k = 0; k < lanes; ++k)
            lpVars[k] = ad::Var(-INFINITY);
    }
    lastTapeNodes_ = tape_.size();
    lastTapeEdges_ = tape_.edgeCount();
    reserveNodes_ = (lastTapeNodes_ + lanes - 1) / lanes;
    reserveEdges_ = (lastTapeEdges_ + lanes - 1) / lanes;

    // Seed every finite lane's output; one multi-output sweep then
    // propagates all of them (the lanes' subgraphs are disjoint, so
    // each adjoint is exactly what a per-lane sweep would produce).
    std::vector<ad::NodeId> outputs;
    outputs.reserve(lanes);
    for (std::size_t k = 0; k < lanes; ++k) {
        lp[k] = lpVars[k].value();
        if (std::isfinite(lp[k]) && lpVars[k].tracked())
            outputs.push_back(lpVars[k].id());
    }
    if (outputs.empty()) {
        // Every lane divergent/out-of-support: gradients stay zero but
        // must be well-formed for the sampler's rejection logic.
        lastTapeBytes_ = tape_.bytes();
        return;
    }
    tape_.gradient(outputs, adjoints_);
    lastTapeBytes_ = tape_.bytes();
    TapeMetrics& metrics = TapeMetrics::get();
    metrics.nodesPerEval.set(static_cast<double>(lastTapeNodes_));
    metrics.bytesPerEval.set(static_cast<double>(lastTapeBytes_));
    for (std::size_t k = 0; k < lanes; ++k) {
        if (!std::isfinite(lp[k]) || !lpVars[k].tracked())
            continue; // zero gradient for rejected lanes
        const std::vector<ad::Var>& u = leaves[k];
        for (std::size_t d = 0; d < dim(); ++d)
            grad.at(d, k) = adjoints_[u[d].id()];
    }
}

double
Evaluator::logProb(const std::vector<double>& q)
{
    BAYES_CHECK(q.size() == dim(), "point has wrong dimension");
    scratchQ_.setPoint(0, q);
    double lp = 0.0;
    logProbBatch(scratchQ_, {&lp, 1});
    return lp;
}

double
Evaluator::logProbGrad(const std::vector<double>& q,
                       std::vector<double>& grad)
{
    BAYES_CHECK(q.size() == dim(), "point has wrong dimension");
    scratchQ_.setPoint(0, q);
    double lp = 0.0;
    logProbGradBatch(scratchQ_, {&lp, 1}, scratchG_);
    scratchG_.getPoint(0, grad);
    return lp;
}

std::vector<double>
Evaluator::constrain(const std::vector<double>& q) const
{
    BAYES_CHECK(q.size() == dim(), "point has wrong dimension");
    double logJ = 0.0;
    return constrainAll(*layout_, q, logJ);
}

void
Evaluator::streamDataShadow()
{
    ad::MemProbe* probe = tape_.probe();
    if (!probe || dataShadow_.empty())
        return;
    // One sequential pass over the observed data per batch, touched at
    // cache-line granularity — K lanes share the stream.
    constexpr std::size_t kLine = 64;
    for (std::size_t off = 0; off < dataShadow_.size(); off += kLine)
        probe->access(dataShadow_.data() + off, kLine, false);
}

} // namespace bayes::ppl
