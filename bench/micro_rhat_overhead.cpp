/**
 * @file
 * Micro-bench (§VI-A overhead analysis) — cost of one runtime
 * convergence-detection pass. The paper's worst case (2000 iterations,
 * 4 chains, half the samples kept) costs 0.06 s on one Skylake core;
 * this measures our detector at several dimensionalities, including the
 * suite's largest.
 */
#include <benchmark/benchmark.h>

#include "elide/elision.hpp"
#include "support/rng.hpp"

using namespace bayes;

namespace {

std::vector<samplers::ChainResult>
syntheticChains(int chains, int draws, int dim)
{
    Rng rng(1234);
    std::vector<samplers::ChainResult> out(chains);
    for (auto& chain : out) {
        chain.draws.reserve(draws);
        for (int t = 0; t < draws; ++t) {
            std::vector<double> draw(dim);
            for (auto& x : draw)
                x = rng.normal();
            chain.draws.push_back(std::move(draw));
        }
    }
    return out;
}

void
BM_DetectorRhat(benchmark::State& state)
{
    const int draws = static_cast<int>(state.range(0));
    const int dim = static_cast<int>(state.range(1));
    const auto chains = syntheticChains(4, draws, dim);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            elide::detectorRhat(chains, draws, 0.5));
    }
    state.counters["draws"] = draws;
    state.counters["dim"] = dim;
}

} // namespace

// The paper's worst case is {2000 draws kept -> 1000 used, 4 chains};
// dim 67 is the suite's largest parameter vector (tickets).
BENCHMARK(BM_DetectorRhat)
    ->Args({500, 16})
    ->Args({1000, 16})
    ->Args({1000, 67})
    ->Args({2000, 67})
    ->Unit(benchmark::kMillisecond);
