/**
 * @file
 * Distribution library tests: closed-form reference values,
 * normalization checks (densities integrate / masses sum to one), and
 * tape-gradient checks against finite differences for every family.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "ad/tape.hpp"
#include "math/distributions.hpp"

namespace bayes::math {
namespace {

using ad::Tape;
using ad::Var;
using ad::leaf;

TEST(Distributions, NormalReferenceValue)
{
    // N(1.0 | 0, 1) = exp(-0.5)/sqrt(2pi)
    EXPECT_NEAR(normal_lpdf(1.0, 0.0, 1.0),
                -0.5 - 0.5 * std::log(2 * M_PI), 1e-12);
    // Location-scale identity.
    EXPECT_NEAR(normal_lpdf(3.0, 1.0, 2.0),
                normal_lpdf(1.0, 0.0, 1.0) - std::log(2.0), 1e-12);
}

TEST(Distributions, StdNormalMatchesNormal)
{
    for (double y : {-2.0, 0.0, 1.3})
        EXPECT_NEAR(std_normal_lpdf(y), normal_lpdf(y, 0.0, 1.0), 1e-12);
}

TEST(Distributions, VectorizedNormalEqualsSum)
{
    const std::vector<double> ys = {0.1, -0.7, 2.2};
    double sum = 0.0;
    for (double y : ys)
        sum += normal_lpdf(y, 0.5, 1.5);
    EXPECT_NEAR(normal_lpdf(ys, 0.5, 1.5), sum, 1e-12);
}

TEST(Distributions, LognormalConsistentWithNormal)
{
    // If X ~ LogNormal(m, s), log density relates via change of vars.
    const double y = 2.5, m = 0.3, s = 0.7;
    EXPECT_NEAR(lognormal_lpdf(y, m, s),
                normal_lpdf(std::log(y), m, s) - std::log(y), 1e-12);
}

TEST(Distributions, StudentTApproachesNormalForLargeNu)
{
    EXPECT_NEAR(student_t_lpdf(0.8, 1e7, 0.0, 1.0),
                normal_lpdf(0.8, 0.0, 1.0), 1e-5);
}

TEST(Distributions, CauchyReference)
{
    // Cauchy(0 | 0, 1) = 1/pi
    EXPECT_NEAR(cauchy_lpdf(0.0, 0.0, 1.0), -std::log(M_PI), 1e-12);
    EXPECT_NEAR(cauchy_lpdf(1.0, 0.0, 1.0), -std::log(2.0 * M_PI), 1e-12);
}

TEST(Distributions, ExponentialAndGammaAgree)
{
    // Exponential(rate) == Gamma(1, rate)
    for (double y : {0.2, 1.0, 4.0})
        EXPECT_NEAR(exponential_lpdf(y, 1.7), gamma_lpdf(y, 1.0, 1.7),
                    1e-12);
}

TEST(Distributions, BetaSymmetry)
{
    EXPECT_NEAR(beta_lpdf(0.3, 2.0, 5.0), beta_lpdf(0.7, 5.0, 2.0), 1e-12);
    // Beta(1,1) is uniform.
    EXPECT_NEAR(beta_lpdf(0.42, 1.0, 1.0), 0.0, 1e-12);
}

TEST(Distributions, UniformInsideAndOutside)
{
    EXPECT_NEAR(uniform_lpdf(0.5, 0.0, 2.0), -std::log(2.0), 1e-12);
    EXPECT_EQ(uniform_lpdf(3.0, 0.0, 2.0), -INFINITY);
}

TEST(Distributions, PoissonMassSumsToOne)
{
    const double lambda = 3.7;
    double total = 0.0;
    for (long k = 0; k < 60; ++k)
        total += std::exp(poisson_lpmf(k, lambda));
    EXPECT_NEAR(total, 1.0, 1e-10);
}

TEST(Distributions, PoissonLogParameterization)
{
    for (long k : {0L, 2L, 9L})
        EXPECT_NEAR(poisson_log_lpmf(k, std::log(4.2)),
                    poisson_lpmf(k, 4.2), 1e-10);
}

TEST(Distributions, BernoulliAndLogitAgree)
{
    for (double p : {0.1, 0.5, 0.9}) {
        const double eta = logit(p);
        for (int y : {0, 1}) {
            EXPECT_NEAR(bernoulli_lpmf(y, p),
                        bernoulli_logit_lpmf(y, eta), 1e-10);
        }
    }
}

TEST(Distributions, BinomialMassSumsToOne)
{
    const long n = 12;
    const double p = 0.37;
    double total = 0.0;
    for (long k = 0; k <= n; ++k)
        total += std::exp(binomial_lpmf(k, n, p));
    EXPECT_NEAR(total, 1.0, 1e-10);
}

TEST(Distributions, BinomialLogitAgrees)
{
    EXPECT_NEAR(binomial_logit_lpmf(4, 10, logit(0.3)),
                binomial_lpmf(4, 10, 0.3), 1e-10);
}

TEST(Distributions, BinomialOutsideSupportIsMinusInf)
{
    // k > n and k < 0 have probability 0; the lpmf must be exactly
    // -inf (via lchoose's support check), not NaN from pole arithmetic.
    EXPECT_EQ(binomial_lpmf(13, 12, 0.37), -INFINITY);
    EXPECT_EQ(binomial_lpmf(-1, 12, 0.37), -INFINITY);
    EXPECT_EQ(binomial_logit_lpmf(13, 12, 0.2), -INFINITY);
    EXPECT_TRUE(std::isfinite(binomial_lpmf(12, 12, 0.37)));
    EXPECT_TRUE(std::isfinite(binomial_lpmf(0, 12, 0.37)));
}

TEST(Distributions, NegBinomial2MassSumsToOne)
{
    const double mu = 4.0, phi = 2.5;
    double total = 0.0;
    for (long k = 0; k < 300; ++k)
        total += std::exp(neg_binomial_2_lpmf(k, mu, phi));
    EXPECT_NEAR(total, 1.0, 1e-8);
}

TEST(Distributions, NegBinomial2ApproachesPoisson)
{
    // phi -> inf recovers Poisson(mu).
    for (long k : {0L, 3L, 8L})
        EXPECT_NEAR(neg_binomial_2_lpmf(k, 3.0, 1e8),
                    poisson_lpmf(k, 3.0), 1e-6);
}

// ---------------------------------------------------------------------
// Gradient checks: d lpdf / d parameter vs finite differences.
// ---------------------------------------------------------------------

struct GradCase
{
    std::string name;
    std::function<Var(const Var&)> lpdf;
    double at;
};

class DistributionGradientTest : public ::testing::TestWithParam<GradCase>
{
};

TEST_P(DistributionGradientTest, MatchesFiniteDifference)
{
    const auto& c = GetParam();
    Tape tape;
    Var x = leaf(tape, c.at);
    Var lp = c.lpdf(x);
    std::vector<double> adj;
    tape.gradient(lp.id(), adj);
    const double h = 1e-6;
    const double numeric =
        (c.lpdf(Var(c.at + h)).value() - c.lpdf(Var(c.at - h)).value())
        / (2 * h);
    EXPECT_NEAR(adj[x.id()], numeric,
                2e-5 * std::max(1.0, std::fabs(numeric)))
        << c.name;
}

INSTANTIATE_TEST_SUITE_P(
    Families, DistributionGradientTest,
    ::testing::Values(
        GradCase{"normal_mu",
                 [](const Var& m) { return normal_lpdf(1.3, m, 0.8); }, 0.4},
        GradCase{"normal_sigma",
                 [](const Var& s) { return normal_lpdf(1.3, 0.4, s); }, 0.8},
        GradCase{"normal_y",
                 [](const Var& y) { return normal_lpdf(y, 0.4, 0.8); }, 1.3},
        GradCase{"lognormal_mu",
                 [](const Var& m) { return lognormal_lpdf(2.0, m, 0.5); },
                 0.3},
        GradCase{"student_t_mu",
                 [](const Var& m) {
                     return student_t_lpdf(1.0, 4.0, m, 1.2);
                 },
                 0.2},
        GradCase{"cauchy_scale",
                 [](const Var& s) { return cauchy_lpdf(0.7, 0.1, s); }, 1.4},
        GradCase{"exponential_rate",
                 [](const Var& r) { return exponential_lpdf(0.9, r); }, 2.2},
        GradCase{"gamma_shape",
                 [](const Var& a) { return gamma_lpdf(1.4, a, 2.0); }, 3.0},
        GradCase{"gamma_rate",
                 [](const Var& b) { return gamma_lpdf(1.4, 3.0, b); }, 2.0},
        GradCase{"beta_a",
                 [](const Var& a) { return beta_lpdf(0.4, a, 2.0); }, 1.6},
        GradCase{"poisson_lambda",
                 [](const Var& l) { return poisson_lpmf(4, l); }, 2.8},
        GradCase{"poisson_log_eta",
                 [](const Var& e) { return poisson_log_lpmf(4, e); }, 1.1},
        GradCase{"bernoulli_logit",
                 [](const Var& e) { return bernoulli_logit_lpmf(1, e); },
                 -0.4},
        GradCase{"binomial_logit",
                 [](const Var& e) {
                     return binomial_logit_lpmf(3, 9, e);
                 },
                 0.5},
        GradCase{"neg_binomial_mu",
                 [](const Var& m) {
                     return neg_binomial_2_lpmf(5, m, 3.0);
                 },
                 4.0},
        GradCase{"neg_binomial_phi",
                 [](const Var& f) {
                     return neg_binomial_2_lpmf(5, 4.0, f);
                 },
                 3.0}),
    [](const auto& paramInfo) { return paramInfo.param.name; });

TEST(Distributions, LogSumExpTemplateAgreesWithScalar)
{
    Tape tape;
    Var a = leaf(tape, 1.0);
    Var b = leaf(tape, 2.0);
    EXPECT_NEAR(logSumExp(a, b).value(), logSumExp(1.0, 2.0), 1e-12);
    EXPECT_NEAR(logSumExp(1.0, 2.0),
                std::log(std::exp(1.0) + std::exp(2.0)), 1e-12);
}

} // namespace
} // namespace bayes::math
