#include "workloads/racial_threshold.hpp"

#include <cmath>

#include "math/distributions.hpp"

namespace bayes::workloads {

RacialThreshold::RacialThreshold(double dataScale)
    : Workload(
          WorkloadInfo{
              "racial", "Hierarchical Bayesian",
              "Testing for racial bias in vehicle searches by police",
              "Simoiu et al. 2017 [23]",
              "4.5M North Carolina police stops (aggregated)",
              /*defaultIterations=*/1400},
          dataScale)
{
    Rng rng = dataRng();
    numDepartments_ = scaled(25);
    numRaces_ = 4;

    std::vector<double> muSearchTrue = {-2.2, -1.7, -1.8, -2.0};
    std::vector<double> muHitTrue = {0.2, -0.4, -0.3, 0.0};
    const double sigmaDeptTrue = 0.4;

    for (std::size_t d = 0; d < numDepartments_; ++d) {
        const double deptSearch = rng.normal(0.0, sigmaDeptTrue);
        const double deptHit = rng.normal(0.0, sigmaDeptTrue);
        for (std::size_t r = 0; r < numRaces_; ++r) {
            const long stops = 150 + static_cast<long>(rng.uniformInt(1200));
            const double pSearch =
                math::invLogit(muSearchTrue[r] + deptSearch);
            const long searched = rng.binomial(stops, pSearch);
            const double pHit = math::invLogit(muHitTrue[r] + deptHit);
            const long hit = rng.binomial(searched, pHit);
            stops_.push_back(stops);
            searches_.push_back(searched);
            hits_.push_back(hit);
        }
    }

    setModeledDataBytes((stops_.size() + searches_.size() + hits_.size())
                        * sizeof(long));

    setLayout({
        {"mu_search", numRaces_, ppl::TransformKind::Identity, 0, 0},
        {"mu_hit", numRaces_, ppl::TransformKind::Identity, 0, 0},
        {"sigma_dept", 1, ppl::TransformKind::LowerBound, 0.0, 0},
        {"dept_search", numDepartments_, ppl::TransformKind::Identity, 0, 0},
        {"dept_hit", numDepartments_, ppl::TransformKind::Identity, 0, 0},
    });
}

template <typename T>
T
RacialThreshold::logDensity(const ppl::ParamView<T>& p) const
{
    using namespace bayes::math;
    const T& sigmaDept = p.scalar(kSigmaDept);

    T lp = normal_lpdf(sigmaDept, 0.0, 1.0);
    for (std::size_t r = 0; r < numRaces_; ++r) {
        // bayes-lint: allow(R007): a handful of races; not a hot loop
        lp += normal_lpdf(p.at(kMuSearch, r), -2.0, 1.5);
        // bayes-lint: allow(R007): a handful of races; not a hot loop
        lp += normal_lpdf(p.at(kMuHit, r), 0.0, 1.5);
    }
    // Non-centered department effects (the Stan original's trick),
    // with a soft sum-to-zero constraint: the race-level means and the
    // department effects are otherwise only jointly identified, which
    // stalls mixing along the translation ridge.
    std::vector<T> deptSearch(numDepartments_), deptHit(numDepartments_);
    T searchSum = 0.0, hitSum = 0.0;
    for (std::size_t d = 0; d < numDepartments_; ++d) {
        // bayes-lint: allow(R007): loop also builds effects and sums
        lp += std_normal_lpdf(p.at(kDeptSearch, d));
        // bayes-lint: allow(R007): loop also builds effects and sums
        lp += std_normal_lpdf(p.at(kDeptHit, d));
        deptSearch[d] = sigmaDept * p.at(kDeptSearch, d);
        deptHit[d] = sigmaDept * p.at(kDeptHit, d);
        searchSum += p.at(kDeptSearch, d);
        hitSum += p.at(kDeptHit, d);
    }
    const double softScale =
        0.01 * std::sqrt(static_cast<double>(numDepartments_));
    lp += normal_lpdf(searchSum, 0.0, softScale);
    lp += normal_lpdf(hitSum, 0.0, softScale);

    for (std::size_t d = 0; d < numDepartments_; ++d) {
        for (std::size_t r = 0; r < numRaces_; ++r) {
            const std::size_t cell = d * numRaces_ + r;
            const T etaSearch = p.at(kMuSearch, r) + deptSearch[d];
            // bayes-lint: allow(R007): binomial GLM kernel is future work
            lp += binomial_logit_lpmf(searches_[cell], stops_[cell],
                                      etaSearch);
            if (searches_[cell] > 0) {
                const T etaHit = p.at(kMuHit, r) + deptHit[d];
                // bayes-lint: allow(R007): binomial GLM kernel is future work
                lp += binomial_logit_lpmf(hits_[cell], searches_[cell],
                                          etaHit);
            }
        }
    }
    return lp;
}

double
RacialThreshold::logProb(const ppl::ParamView<double>& p) const
{
    return logDensity(p);
}

ad::Var
RacialThreshold::logProb(const ppl::ParamView<ad::Var>& p) const
{
    return logDensity(p);
}

} // namespace bayes::workloads
