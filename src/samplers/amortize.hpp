/**
 * @file
 * Amortized posterior cache — the cheap tier of the two-tier serving
 * policy (*Amortized Bayesian Workflow*): production traffic is
 * dominated by repeat requests over the same model family and dataset,
 * so the posterior is fitted once (mean-field ADVI) and repeat requests
 * are answered from the cached fit, provided a deterministic acceptance
 * gate vouches for it. Requests the gate rejects escalate to full NUTS,
 * whose run then refreshes the cache entry's reference summary.
 *
 * Cache identity: entries are keyed by (workload name, canonicalized
 * sufficient statistics of the dataset, dataScale). The statistics come
 * from ppl::Model::dataSufficientStats(); a model returning none is not
 * amortizable and never enters the cache.
 *
 * The acceptance gate combines three deterministic diagnostics, all
 * precomputed so the per-request decision is three comparisons against
 * the thresholds in amortize_gate.hpp (lint rule R014 keeps every
 * threshold literal there):
 *  1. Pareto-k̂ of the importance ratios log p(θ) − log q(θ) over draws
 *     θ ~ q from the ADVI fit (diagnostics::paretoKhat), fixed at fit
 *     time;
 *  2. Gaussian KL between the ADVI posterior moments and the cached
 *     NUTS reference summary, refreshed whenever the reference is;
 *  3. the reference run's max split-R̂.
 * An entry with no reference yet never passes: the first request for a
 * key takes the full path (the "cold" outcome) and installs the
 * reference from its own NUTS run.
 *
 * Accounting: every request that reaches the tier terminates in exactly
 * one of {served, escalated, cold}, so
 *   amort.served + amort.escalated + amort.cold == amort.requests
 * holds exactly — exported as obs counters and mirrored in Stats for
 * in-process assertions.
 *
 * Thread safety: the cache itself is not synchronized; serve::Server
 * guards it with its admission mutex.
 */
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "ppl/evaluator.hpp"
#include "ppl/model.hpp"
#include "samplers/advi.hpp"
#include "samplers/amortize_gate.hpp"
#include "samplers/types.hpp"

namespace bayes::samplers::amortize {

/** Tuning for the cheap tier. */
struct AmortizeConfig
{
    /** ADVI settings for the one-time fit (seed included). */
    AdviConfig advi;
    /** Draws from q used for the importance-ratio k̂ estimate. */
    int importanceDraws = 256;
    /** Acceptance-gate thresholds (see amortize_gate.hpp). */
    GateThresholds gate;
};

/** Cache identity: workload family + dataset fingerprint + scale. */
struct CacheKey
{
    std::string workload;
    /** Canonicalized sufficient statistics (statsDigest). */
    std::string digest;
    double dataScale = 1.0;

    bool operator<(const CacheKey& o) const
    {
        return std::tie(workload, digest, dataScale)
            < std::tie(o.workload, o.digest, o.dataScale);
    }
};

/** One cached amortized posterior. */
struct Entry
{
    /** The ADVI fit (variational params + constrained-scale draws). */
    AdviResult fit;
    /** Pareto-k̂ of the ADVI-proposal importance ratios (fit time). */
    double khat = 0.0;
    /** Constrained-scale moments of the fit's draws. */
    std::vector<double> mean;
    std::vector<double> sd;

    /** True once a NUTS reference summary has been installed. */
    bool hasReference = false;
    /** Constrained-scale moments of the reference run's draws. */
    std::vector<double> refMean;
    std::vector<double> refSd;
    /** Max split-R̂ of the reference run. */
    double refMaxRhat = 0.0;
    /** Mean per-coordinate Gaussian KL of the fit vs the reference. */
    double klVsReference = 0.0;

    /** Requests this entry answered from the cheap tier. */
    std::uint64_t hits = 0;
};

/** Per-request gate verdict with the numbers behind it. */
struct GateDecision
{
    bool pass = false;
    double khat = 0.0;
    double kl = 0.0;
    double refRhat = 0.0;
    /** Which diagnostic rejected ("" when pass). */
    const char* rejectedBy = "";
};

/** Tier accounting (mirrors the amort.* obs counters). */
struct Stats
{
    std::uint64_t requests = 0;
    std::uint64_t served = 0;
    std::uint64_t escalated = 0;
    std::uint64_t cold = 0;
};

/** The amortized posterior cache. Not synchronized (see file docs). */
class AmortizedCache
{
  public:
    explicit AmortizedCache(AmortizeConfig config = {});

    /**
     * Canonical dataset fingerprint: the model's sufficient statistics
     * formatted with full precision and joined deterministically.
     * Empty when the model exposes none (not amortizable).
     */
    static std::string statsDigest(const ppl::Model& model);

    /** Cached entry for @p key, or nullptr. Pointer stays valid until
     * the cache is destroyed (entries are never erased). */
    Entry* find(const CacheKey& key);

    /**
     * Fit the cheap tier for @p key: runs ADVI on @p model, estimates
     * the importance k̂ through @p eval (value-only log densities), and
     * installs the entry. The entry has no reference yet, so the gate
     * will not pass it until installReference() is called.
     * @return the installed entry (replaces any previous fit)
     */
    Entry& fit(const CacheKey& key, const ppl::Model& model,
               ppl::Evaluator& eval);

    /**
     * Install/refresh the NUTS reference summary of an entry from a
     * full run's draws, recomputing the fit-vs-reference KL. Called
     * after every cold-path and escalated NUTS run.
     */
    void installReference(Entry& entry, const RunResult& run);

    /** Deterministic acceptance verdict for @p entry. */
    GateDecision gate(const Entry& entry) const;

    /** Tier accounting: a request entered the tier. */
    void noteRequest();
    /** Terminal: answered from the cache. */
    void noteServed(Entry& entry);
    /** Terminal: gate rejected, escalated to full NUTS. */
    void noteEscalated();
    /** Terminal: no entry for the key, full path + later install. */
    void noteCold();

    const Stats& stats() const { return stats_; }
    const AmortizeConfig& config() const { return config_; }
    std::size_t size() const { return entries_.size(); }

  private:
    AmortizeConfig config_;
    std::map<CacheKey, Entry> entries_;
    Stats stats_;
};

} // namespace bayes::samplers::amortize
