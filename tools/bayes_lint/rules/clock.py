"""R012: direct std::chrono clock reads are confined to the Clock seam.

Timing feeds the paper's measurements and the serving runtime's
deadline/virtual-clock machinery. A stray `steady_clock::now()` is
untestable (no virtual-clock replay) and unswappable; all wall-clock
reads go through `support::Clock::now()` / `bayes::Timer`
(src/support/timer.hpp), the one file allowed to touch std::chrono
clocks directly.
"""

from __future__ import annotations

import re

from ..engine import rule
from ..source import grep_rule, in_dirs

R012_PAT = re.compile(
    r"\b(?:steady_clock|system_clock|high_resolution_clock)"
    r"\s*::\s*now\s*\(")
R012_ALLOWED = {"src/support/timer.hpp"}


@rule("R012", "std::chrono clock reads confined to support::Clock "
              "(src/support/timer.hpp)")
def rule_r012(files, findings, _ctx):
    for sf in files:
        if not in_dirs(sf.relpath, "src") or sf.relpath in R012_ALLOWED:
            continue
        grep_rule(sf, R012_PAT, "R012",
                  "direct std::chrono clock read; route through "
                  "support::Clock::now() / bayes::Timer "
                  "(src/support/timer.hpp) so tests can install a "
                  "virtual clock", findings)
