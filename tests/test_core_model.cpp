/**
 * @file
 * Core timing model tests: monotonicity in op mix and misses, the FMA
 * fusion bonus, i-cache footprint behavior, and metric floors.
 */
#include <gtest/gtest.h>

#include "archsim/core.hpp"

namespace bayes::archsim {
namespace {

EvalProfile
profileWith(std::size_t nodes, std::uint64_t special, std::uint64_t div,
            std::uint64_t mul = 0, std::uint64_t add = 0)
{
    EvalProfile p;
    p.tapeNodes = nodes;
    p.opCounts[static_cast<int>(ad::OpClass::Special)] = special;
    p.opCounts[static_cast<int>(ad::OpClass::Div)] = div;
    p.opCounts[static_cast<int>(ad::OpClass::Mul)] = mul;
    p.opCounts[static_cast<int>(ad::OpClass::AddSub)] = add;
    p.dim = 10;
    p.dataBytes = 1000;
    return p;
}

TEST(CoreModel, InstructionsScaleWithNodes)
{
    const auto platform = Platform::skylake();
    const EvalMemStats mem;
    const auto small = evalCost(profileWith(1000, 0, 0), mem, platform);
    const auto large = evalCost(profileWith(2000, 0, 0), mem, platform);
    EXPECT_GT(large.instructions, small.instructions);
    EXPECT_NEAR(large.instructions - small.instructions, 1000.0 * 15.0,
                1.0);
}

TEST(CoreModel, SpecialOpsLowerIpc)
{
    const auto platform = Platform::skylake();
    const EvalMemStats mem;
    const auto plain = evalCost(profileWith(1000, 0, 0), mem, platform);
    const auto heavy = evalCost(profileWith(1000, 400, 0), mem, platform);
    EXPECT_LT(heavy.ipc(), plain.ipc());
    EXPECT_GT(heavy.branchMpki, plain.branchMpki);
}

TEST(CoreModel, DivOpsLowerIpc)
{
    const auto platform = Platform::skylake();
    const EvalMemStats mem;
    const auto plain = evalCost(profileWith(1000, 0, 0), mem, platform);
    const auto heavy = evalCost(profileWith(1000, 0, 400), mem, platform);
    EXPECT_LT(heavy.ipc(), plain.ipc());
}

TEST(CoreModel, FmaFusionRaisesIpcForMulAddMixes)
{
    const auto platform = Platform::skylake();
    const EvalMemStats mem;
    const auto fused =
        evalCost(profileWith(1000, 0, 0, 450, 450), mem, platform);
    const auto unfusable =
        evalCost(profileWith(1000, 0, 0, 0, 900), mem, platform);
    EXPECT_GT(fused.ipc(), unfusable.ipc());
}

TEST(CoreModel, DemandMissesAddLatency)
{
    const auto platform = Platform::skylake();
    EvalMemStats clean;
    EvalMemStats missy;
    missy.demandLlcMisses = 500;
    const auto base = evalCost(profileWith(1000, 0, 0), clean, platform);
    const auto slow = evalCost(profileWith(1000, 0, 0), missy, platform);
    EXPECT_GT(slow.cycles, base.cycles);
    EXPECT_LT(slow.ipc(), base.ipc());
    EXPECT_GT(slow.llcMpki, base.llcMpki);
}

TEST(CoreModel, StreamMissesCountTowardTrafficNotMpki)
{
    const auto platform = Platform::skylake();
    EvalMemStats streamy;
    streamy.streamLlcMisses = 1000;
    const auto cost = evalCost(profileWith(1000, 0, 0), streamy, platform);
    // Late-prefetch fraction only: far below the 1000-miss demand rate.
    EXPECT_LT(cost.llcMpki, 1000.0 / cost.instructions * 1000.0 * 0.5);
    EXPECT_GE(cost.llcTrafficBytes, 1000.0 * 64.0);
}

TEST(CoreModel, LlcMpkiHasFloor)
{
    const auto platform = Platform::skylake();
    const EvalMemStats mem;
    const auto cost = evalCost(profileWith(1000, 0, 0), mem, platform);
    EXPECT_GE(cost.llcMpki, CoreParams{}.llcMpkiFloor);
}

TEST(CoreModel, SmallModelsFitTheIcache)
{
    const auto platform = Platform::skylake();
    const EvalMemStats mem;
    const auto small = evalCost(profileWith(2000, 0, 0), mem, platform);
    EXPECT_NEAR(small.icacheMpki, 0.06, 1e-9);
}

TEST(CoreModel, LargeModelsMissTheIcache)
{
    const auto platform = Platform::skylake();
    const EvalMemStats mem;
    const auto big = evalCost(profileWith(40000, 0, 0), mem, platform);
    EXPECT_GT(big.icacheMpki, 1.0);
    EXPECT_LE(big.icacheMpki, CoreParams{}.icacheMissCeiling);
}

TEST(CoreModel, IpcBoundedByIssueWidth)
{
    const auto platform = Platform::skylake();
    const EvalMemStats mem;
    const auto cost = evalCost(profileWith(5000, 0, 0), mem, platform);
    EXPECT_GT(cost.ipc(), 0.2);
    EXPECT_LT(cost.ipc(), 1.0 / CoreParams{}.baseCpi + 0.01);
}

} // namespace
} // namespace bayes::archsim
