/**
 * @file
 * The No-U-Turn Sampler (Hoffman & Gelman 2014, Algorithm 6 slice
 * variant) with a diagonal Euclidean metric — the inference engine the
 * paper's BayesSuite workloads all run through (§II-B).
 */
#pragma once

#include <cstdint>

#include "samplers/hamiltonian.hpp"

namespace bayes::samplers {

/** Outcome of one NUTS transition. */
struct NutsTransition
{
    /** Mean Metropolis acceptance statistic over the trajectory. */
    double acceptStat = 0.0;
    /** Gradient evaluations (== leapfrog steps) consumed. */
    std::uint32_t gradEvals = 0;
    /** Final tree depth reached. */
    std::uint16_t depth = 0;
    /** True when the trajectory diverged (energy error > 1000). */
    bool divergent = false;
};

/** One-chain NUTS kernel; the multi-chain driver lives in runner.cpp. */
class NutsSampler
{
  public:
    /**
     * @param ham           Hamiltonian over the model evaluator
     * @param maxTreeDepth  doubling limit (Stan default 10)
     */
    NutsSampler(Hamiltonian& ham, int maxTreeDepth = 10)
        : ham_(&ham), maxDepth_(maxTreeDepth)
    {
    }

    /** Leapfrog step size used by transitions. */
    void setStepSize(double eps) { stepSize_ = eps; }
    double stepSize() const { return stepSize_; }

    /**
     * Run one NUTS transition from @p z (updated in place; must have
     * logProb/grad populated via Hamiltonian::refresh).
     */
    NutsTransition transition(PhasePoint& z, Rng& rng);

  private:
    struct Tree
    {
        PhasePoint zMinus;  ///< backward-most phase point
        PhasePoint zPlus;   ///< forward-most phase point
        PhasePoint zProp;   ///< proposal drawn from the valid set
        std::size_t nValid = 0;
        bool cont = true;
        bool divergent = false;
        double alphaSum = 0.0;
        std::size_t nAlpha = 0;
    };

    Tree buildTree(const PhasePoint& z, double logU, int direction,
                   int depth, double joint0, Rng& rng,
                   std::uint32_t& gradEvals);

    /** U-turn termination criterion across two endpoints. */
    bool noUTurn(const PhasePoint& zMinus, const PhasePoint& zPlus) const;

    Hamiltonian* ham_;
    int maxDepth_;
    double stepSize_ = 1.0;

    static constexpr double kDeltaMax = 1000.0;
};

} // namespace bayes::samplers
