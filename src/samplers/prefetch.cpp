#include "samplers/prefetch.hpp"

#include <cstring>
#include <utility>

#include "obs/obs.hpp"

namespace bayes::samplers::prefetch {
namespace {

/** Speculation telemetry (catalogued in docs/observability.md). */
struct SpecMetrics
{
    obs::Counter& issued = obs::Registry::global().counter("spec.issued");
    obs::Counter& hits = obs::Registry::global().counter("spec.hits");
    obs::Counter& wasted = obs::Registry::global().counter("spec.wasted");

    static SpecMetrics& get()
    {
        static SpecMetrics* m = new SpecMetrics; // leaked, like Registry
        return *m;
    }
};

} // namespace

bool
bitsEqual(std::span<const double> a, std::span<const double> b)
{
    if (a.size() != b.size())
        return false;
    return a.empty()
        || std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

std::size_t
Ledger::issue(std::vector<double> point)
{
    SpecMetrics::get().issued.add();
    entries_.push_back(CachedEval{std::move(point), 0.0, {}, false});
    return entries_.size() - 1;
}

const CachedEval*
Ledger::commit(std::span<const double> point)
{
    for (auto& e : entries_) {
        if (e.consumed || !bitsEqual(e.point, point))
            continue;
        e.consumed = true;
        SpecMetrics::get().hits.add();
        return &e;
    }
    return nullptr;
}

void
Ledger::abort()
{
    std::uint64_t wasted = 0;
    for (const auto& e : entries_)
        wasted += e.consumed ? 0 : 1;
    if (wasted > 0)
        SpecMetrics::get().wasted.add(wasted);
    entries_.clear();
}

void
planMhTree(const std::vector<double>& q, const std::vector<double>& pending,
           double scale, Rng replica, int depth, Ledger& ledger,
           std::vector<SpecLane>& lanes)
{
    const std::size_t dim = q.size();
    // States a depth-j path can sit at: the current state (every level
    // so far rejected), plus every proposal that could have been
    // accepted along the way. The set doubles per level.
    std::vector<std::vector<double>> states;
    states.reserve(std::size_t{2} << depth);
    states.push_back(q);
    states.push_back(pending);

    std::vector<double> noise(dim);
    for (int level = 0; level < depth; ++level) {
        // The real chain resolves the previous proposal before drawing
        // the next: one accept uniform (predicted feasible), then dim
        // increment normals — shared by every node of this level.
        replica.uniform();
        for (double& n : noise)
            n = replica.normal();

        const std::size_t parents = states.size();
        for (std::size_t s = 0; s < parents; ++s) {
            std::vector<double> child(dim);
            // Same expression as MhSampler::propose — q + scale*normal
            // — so a realized branch byte-matches the real proposal.
            for (std::size_t d = 0; d < dim; ++d)
                child[d] = states[s][d] + scale * noise[d];
            lanes.push_back(SpecLane{&ledger, ledger.issue(child)});
            states.push_back(std::move(child));
        }
    }
}

} // namespace bayes::samplers::prefetch
