/**
 * @file
 * The serving runtime's contracts: admission-control edge cases (full
 * queue, zero deadline, projected-wait shed), strict-priority/FIFO
 * fairness, shed-vs-admit determinism under a fixed seed, warm-model
 * cache reuse without tape re-allocation, deadline enforcement, and the
 * open-loop load generator's reproducibility.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "serve/load_generator.hpp"
#include "serve/server.hpp"
#include "workloads/workload.hpp"

namespace {

using namespace bayes;
using namespace bayes::serve;

constexpr double kInf = std::numeric_limits<double>::infinity();

/** A deliberately tiny MH job so tests stay fast under sanitizers. */
samplers::Config
tinyConfig()
{
    samplers::Config config;
    config.algorithm = samplers::Algorithm::Mh;
    config.chains = 2;
    config.iterations = 40;
    return config;
}

Request
tinyRequest(const std::string& workload, SloClass slo = SloClass::Standard,
            double deadline = kInf)
{
    Request request;
    request.tenant = "test";
    request.workload = workload;
    request.dataScale = 0.25;
    request.config = tinyConfig();
    request.slo = slo;
    request.deadlineSeconds = deadline;
    return request;
}

TEST(Serve, ServesARequestEndToEnd)
{
    Server server;
    const auto id = server.submit(tinyRequest("ad"));
    EXPECT_EQ(server.queueDepth(), 1u);
    server.drain();

    const Response& r = server.response(id);
    EXPECT_EQ(r.status, RequestStatus::Ok) << requestStatusName(r.status);
    EXPECT_EQ(r.draws, tinyConfig().postWarmup());
    EXPECT_FALSE(r.posteriorMean.empty());
    EXPECT_TRUE(std::isfinite(r.maxRhat));
    EXPECT_GT(r.serviceSeconds, 0.0);
    EXPECT_GE(r.latencySeconds, r.serviceSeconds);
    EXPECT_EQ(server.servedOrder(), std::vector<std::uint64_t>{id});
    EXPECT_EQ(server.admitted(), 1u);
    EXPECT_EQ(server.shedCount(), 0u);
}

TEST(Serve, MeanQuerySkipsRhat)
{
    Server server;
    Request request = tinyRequest("ad");
    request.query = QueryKind::Mean;
    const auto id = server.submit(request);
    server.drain();
    const Response& r = server.response(id);
    EXPECT_EQ(r.status, RequestStatus::Ok);
    EXPECT_FALSE(r.posteriorMean.empty());
    EXPECT_TRUE(std::isnan(r.maxRhat));
}

TEST(Serve, ZeroDeadlineIsShedAtAdmission)
{
    Server server;
    const auto id = server.submit(tinyRequest("ad", SloClass::Standard, 0.0));
    const Response& r = server.response(id);
    EXPECT_EQ(r.status, RequestStatus::Shed);
    EXPECT_EQ(server.queueDepth(), 0u);
    EXPECT_EQ(server.shedCount(), 1u);
    EXPECT_EQ(server.admitted(), 0u);
}

TEST(Serve, FullQueueSheds)
{
    ServerConfig config;
    config.queueCapacity = 2;
    config.admitByProjectedWait = false;
    Server server(config);

    const auto a = server.submit(tinyRequest("ad"));
    const auto b = server.submit(tinyRequest("ad"));
    const auto c = server.submit(tinyRequest("ad"));
    EXPECT_EQ(server.response(a).status, RequestStatus::Queued);
    EXPECT_EQ(server.response(b).status, RequestStatus::Queued);
    EXPECT_EQ(server.response(c).status, RequestStatus::Shed);
    EXPECT_EQ(server.admitted(), 2u);
    EXPECT_EQ(server.shedCount(), 1u);
    EXPECT_EQ(server.queueDepth(), 2u);
}

TEST(Serve, ProjectedWaitShedsRequestsThatCannotMeetTheirDeadline)
{
    ServerConfig config;
    config.costPerEvalSeconds = 1.0; // every job projects as enormous
    Server server(config);

    // Unbounded deadline: admitted no matter how slow the server looks.
    const auto a = server.submit(tinyRequest("ad", SloClass::Standard, kInf));
    EXPECT_EQ(server.response(a).status, RequestStatus::Queued);

    // A second job of the same class queues behind a's projected hours
    // of service; its one-second deadline is hopeless -> shed.
    const auto b = server.submit(tinyRequest("ad", SloClass::Standard, 1.0));
    EXPECT_EQ(server.response(b).status, RequestStatus::Shed);

    // Interactive jumps the standard queue, so the projection ignores
    // a's backlog — but its own estimated service still exceeds the
    // deadline, which also sheds (criterion 4 counts the job itself).
    const auto c =
        server.submit(tinyRequest("ad", SloClass::Interactive, 1.0));
    EXPECT_EQ(server.response(c).status, RequestStatus::Shed);
}

TEST(Serve, UnknownWorkloadFailsAtAdmission)
{
    Server server;
    const auto id = server.submit(tinyRequest("no-such-model"));
    const Response& r = server.response(id);
    EXPECT_EQ(r.status, RequestStatus::Failed);
    EXPECT_FALSE(r.error.empty());
    EXPECT_EQ(server.queueDepth(), 0u);
}

TEST(Serve, StrictPriorityThenFifoWithinClass)
{
    ServerConfig config;
    config.admitByProjectedWait = false;
    Server server(config);

    const auto batch0 = server.submit(tinyRequest("ad", SloClass::Batch));
    const auto std0 = server.submit(tinyRequest("ad", SloClass::Standard));
    const auto inter0 =
        server.submit(tinyRequest("ad", SloClass::Interactive));
    const auto inter1 =
        server.submit(tinyRequest("ad", SloClass::Interactive));
    const auto std1 = server.submit(tinyRequest("ad", SloClass::Standard));
    server.drain();

    const std::vector<std::uint64_t> expected{inter0, inter1, std0, std1,
                                              batch0};
    EXPECT_EQ(server.servedOrder(), expected);
}

TEST(Serve, ShedVsAdmitIsDeterministicUnderAFixedSeed)
{
    // Two servers, same config, same generated burst: every admission
    // decision must match, because admission never reads measured time
    // — only queue state and the deterministic cost model.
    LoadConfig load;
    load.requests = 200;
    load.arrivalRatePerSecond = 50.0;
    load.seed = 7;
    const LoadGenerator gen(load, defaultTenantMix());

    const auto runBurst = [](const std::vector<Request>& arrivals) {
        ServerConfig config;
        config.queueCapacity = 8;
        Server server(config);
        // Submit the whole burst without draining: decisions depend
        // only on admission state, never on service measurements.
        for (const Request& request : arrivals)
            server.submit(request);
        std::vector<RequestStatus> statuses;
        statuses.reserve(server.responses().size());
        for (const Response& response : server.responses())
            statuses.push_back(response.status);
        return statuses;
    };

    const auto first = runBurst(gen.schedule());
    const auto second = runBurst(gen.schedule());
    EXPECT_EQ(first, second);

    std::size_t queued = 0;
    std::size_t shed = 0;
    for (const RequestStatus status : first) {
        queued += status == RequestStatus::Queued ? 1u : 0u;
        shed += status == RequestStatus::Shed ? 1u : 0u;
    }
    EXPECT_GT(queued, 0u) << "burst admitted nothing";
    EXPECT_GT(shed, 0u) << "burst shed nothing; capacity check untested";
}

TEST(Serve, WarmCacheHitReservesRepeatShapeWithoutTapeReallocation)
{
    Server server;
    const auto first = server.submit(tinyRequest("ad"));
    server.drain();
    EXPECT_EQ(server.response(first).status, RequestStatus::Ok);
    EXPECT_EQ(server.warmMisses(), 1u);

    ppl::Evaluator* eval = server.warmEvaluator("ad", 0.25);
    ASSERT_NE(eval, nullptr);
    const std::size_t nodeCapacity = eval->tape().nodeCapacity();
    const std::size_t edgeCapacity = eval->tape().edgeCapacity();
    EXPECT_GT(nodeCapacity, 0u);

    // Repeat (workload, dataScale): same cache entry, same evaluator,
    // same arena — zero re-allocation on the warm path.
    const auto second = server.submit(tinyRequest("ad"));
    server.drain();
    EXPECT_EQ(server.response(second).status, RequestStatus::Ok);
    EXPECT_EQ(server.warmMisses(), 1u);
    EXPECT_GE(server.warmHits(), 2u);
    EXPECT_EQ(server.warmEvaluator("ad", 0.25), eval);
    EXPECT_EQ(eval->tape().nodeCapacity(), nodeCapacity);
    EXPECT_EQ(eval->tape().edgeCapacity(), edgeCapacity);

    // Driving the warm evaluator again re-serves the profiled shape
    // inside the reserved arena: still no growth.
    std::vector<double> q(eval->dim(), 0.1);
    std::vector<double> grad;
    eval->logProbGrad(q, grad);
    EXPECT_EQ(eval->tape().nodeCapacity(), nodeCapacity);
    EXPECT_EQ(eval->tape().edgeCapacity(), edgeCapacity);

    // A different data shape is a different key, hence a fresh entry.
    Request scaled = tinyRequest("ad");
    scaled.dataScale = 0.5;
    server.submit(scaled);
    server.drain();
    EXPECT_EQ(server.warmMisses(), 2u);
    EXPECT_NE(server.warmEvaluator("ad", 0.5), nullptr);
    EXPECT_NE(server.warmEvaluator("ad", 0.5), eval);
}

TEST(Serve, RequestExpiredInQueueIsADeadlineMissWithoutRunning)
{
    ServerConfig config;
    config.admitByProjectedWait = false; // let the hopeless job in
    Server server(config);

    const auto slow = server.submit(tinyRequest("ad", SloClass::Standard));
    // Admitted behind `slow`, with a deadline no real service time can
    // beat: by the time it reaches the head it has already expired.
    const auto late =
        server.submit(tinyRequest("ad", SloClass::Standard, 1e-12));
    server.drain();

    EXPECT_EQ(server.response(slow).status, RequestStatus::Ok);
    const Response& r = server.response(late);
    EXPECT_EQ(r.status, RequestStatus::DeadlineMiss);
    EXPECT_EQ(r.draws, 0) << "expired request must not run";
    EXPECT_EQ(r.serviceSeconds, 0.0);
    EXPECT_EQ(server.deadlineMisses(), 1u);
}

TEST(Serve, RunScheduleJumpsTheVirtualClockBetweenSparseArrivals)
{
    std::vector<Request> arrivals;
    for (int i = 0; i < 3; ++i) {
        Request request = tinyRequest("ad");
        request.arrivalSeconds = 1000.0 * i;
        arrivals.push_back(request);
    }
    Server server;
    server.runSchedule(arrivals);

    ASSERT_EQ(server.responses().size(), 3u);
    for (const Response& r : server.responses()) {
        EXPECT_EQ(r.status, RequestStatus::Ok);
        EXPECT_EQ(r.queueWaitSeconds, 0.0)
            << "sparse arrivals must never queue";
    }
    EXPECT_GE(server.response(2).startSeconds, 2000.0);
    EXPECT_GE(server.virtualNow(), 2000.0);
}

TEST(Serve, RunWithDeadlineTruncatesButKeepsPrefixDraws)
{
    const auto model = workloads::makeWorkload("ad", 0.25);
    samplers::Config config = tinyConfig();
    config.iterations = 4000; // long enough that 0 seconds always cuts it

    const samplers::DeadlineRunResult cut =
        samplers::runWithDeadline(*model, config, 0.0);
    EXPECT_TRUE(cut.expired);
    const int draws =
        static_cast<int>(cut.run.chains.front().draws.size());
    EXPECT_GE(draws, 1);
    EXPECT_LT(draws, config.postWarmup());

    config.iterations = 40;
    const samplers::DeadlineRunResult full =
        samplers::runWithDeadline(*model, config, kInf);
    EXPECT_FALSE(full.expired);
    EXPECT_EQ(static_cast<int>(full.run.chains.front().draws.size()),
              config.postWarmup());
}

TEST(Serve, LoadGeneratorIsDeterministicPerSeed)
{
    LoadConfig load;
    load.requests = 100;
    load.seed = 42;
    const LoadGenerator gen(load, defaultTenantMix());
    const auto a = gen.schedule();
    const auto b = gen.schedule();
    ASSERT_EQ(a.size(), 100u);
    ASSERT_EQ(b.size(), 100u);
    double previous = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].tenant, b[i].tenant);
        EXPECT_EQ(a[i].arrivalSeconds, b[i].arrivalSeconds);
        EXPECT_EQ(a[i].config.seed, b[i].config.seed);
        EXPECT_GE(a[i].arrivalSeconds, previous) << "arrivals not sorted";
        previous = a[i].arrivalSeconds;
    }

    LoadConfig other = load;
    other.seed = 43;
    const auto c = LoadGenerator(other, defaultTenantMix()).schedule();
    bool differs = false;
    for (std::size_t i = 0; i < c.size(); ++i)
        differs = differs || c[i].arrivalSeconds != a[i].arrivalSeconds;
    EXPECT_TRUE(differs) << "different seeds produced the same trace";
}

} // namespace
