/**
 * @file
 * `12cities` — does lowering speed limits save pedestrian lives?
 *
 * Hierarchical Poisson regression over a city/year panel in the spirit
 * of Auerbach et al. (2017): per-city intercepts with a shared
 * hyperprior, a speed-limit treatment effect, and a secular time trend,
 * with the city's pedestrian exposure as an offset. Data are synthetic
 * but match the FARS panel's shape (12 cities x 16 years).
 */
#pragma once

#include "workloads/workload.hpp"

namespace bayes::workloads {

/** Poisson-regression speed-limit policy workload. */
class TwelveCities : public Workload
{
  public:
    explicit TwelveCities(double dataScale = 1.0);

    double logProb(const ppl::ParamView<double>& p) const override;
    ad::Var logProb(const ppl::ParamView<ad::Var>& p) const override;
    double logProbScalar(const ppl::ParamView<double>& p) const override;
    ad::Var logProbScalar(const ppl::ParamView<ad::Var>& p) const override;
    void logProbBatch(const ppl::BatchParamView<double>& p,
                      std::span<double> lp) const override;
    void logProbBatch(const ppl::BatchParamView<ad::Var>& p,
                      std::span<ad::Var> lp) const override;

    /** Observed pedestrian death counts (one per city-year row). */
    const std::vector<long>& deaths() const { return deaths_; }

    /** Number of cities in the panel. */
    std::size_t numCities() const { return numCities_; }

    std::vector<double> dataSufficientStats() const override;

    /** Treatment effect used to generate the data (for recovery tests). */
    static constexpr double kTrueLimitEffect = -0.18;

    /** Parameter block indices. */
    enum Block : std::size_t
    {
        kMuAlpha,
        kSigmaAlpha,
        kAlpha,
        kBetaLimit,
        kBetaTrend,
    };

  private:
    template <typename T>
    T priorLp(const ppl::ParamView<T>& p) const;
    template <typename T>
    T logDensity(const ppl::ParamView<T>& p) const;
    template <typename T>
    T logDensityScalar(const ppl::ParamView<T>& p) const;
    template <typename T>
    void logDensityBatch(const ppl::BatchParamView<T>& p,
                         std::span<T> lp) const;

    std::size_t numCities_;
    std::vector<long> deaths_;
    std::vector<int> city_;
    std::vector<double> limitLowered_;
    std::vector<double> yearCentered_;
    std::vector<double> logExposure_;
    std::vector<double> design_; ///< row-major [row]{lowered, yearC}
};

} // namespace bayes::workloads
