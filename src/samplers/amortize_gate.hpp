/**
 * @file
 * Acceptance-gate thresholds for the amortized serving tier.
 *
 * This header is the single home for every acceptance-threshold
 * literal (lint rule R014): gate tuning must happen here, and only
 * here, so a grep of this file is the complete answer to "what does it
 * take for the cheap tier to serve a request".
 *
 * What each threshold rejects:
 *  - khatMax: the Pareto-k̂ tail-shape estimate of the ADVI-proposal
 *    importance ratios. k̂ above ~0.7 is the PSIS reliability cutoff —
 *    the variational fit misses enough posterior mass that importance
 *    correction (and hence the cheap answer) cannot be trusted.
 *  - klMax: moment-matched Gaussian KL divergence between the ADVI
 *    posterior and the cached NUTS reference summary, averaged over
 *    coordinates. Catches mean/scale drift of the cheap fit even when
 *    its tails look fine.
 *  - refRhatMax: max split-R̂ of the cached NUTS reference run. A
 *    reference that never converged cannot vouch for the cheap tier,
 *    whatever the KL says.
 */
#pragma once

namespace bayes::samplers::amortize {

/** Thresholds the per-request acceptance gate compares against. */
struct GateThresholds
{
    /** Reject when Pareto-k̂ of the importance ratios exceeds this. */
    double khatMax = 0.70;
    /** Reject when mean per-coordinate Gaussian KL vs the NUTS
     * reference exceeds this (nats). */
    double klMax = 1.0;
    /** Reject when the reference run's max split-R̂ exceeds this. */
    double refRhatMax = 1.10;
};

} // namespace bayes::samplers::amortize
