/**
 * @file
 * Domain end-to-end: fit the `votes` Gaussian-process workload and
 * print the posterior vote-share forecast for future election cycles —
 * the quantity the original StanCon model was built to produce —
 * together with the derived answers of three other workloads
 * (lives saved by speed limits, butterfly species richness, animal
 * survival rates). Demonstrates the workloads/analyses API.
 */
#include <cstdio>

#include "samplers/runner.hpp"
#include "support/stats.hpp"
#include "workloads/analyses.hpp"

using namespace bayes;

int
main()
{
    // votes: forecast the latent vote-share path.
    workloads::VotesForecast votes;
    samplers::Config cfg;
    cfg.chains = 4;
    cfg.iterations = 800;
    cfg.execution = samplers::ExecutionPolicy::pool();
    std::printf("Fitting the votes Gaussian process (%d x %d)...\n",
                cfg.chains, cfg.iterations);
    const auto votesRun = samplers::run(votes, cfg);
    const auto path = workloads::forecastPath(votes, votesRun);
    std::printf("\nPosterior mean vote-share path (logit scale):\n");
    for (std::size_t i = 0; i < path.size(); ++i) {
        const int year = 1976 + static_cast<int>(i) * 4;
        std::printf("  %d: %+0.3f %s\n", year, path[i],
                    i < votes.numObserved() ? "(observed)" : "(forecast)");
    }

    // 12cities: lives saved by lowering speed limits.
    workloads::TwelveCities cities;
    const auto citiesRun = samplers::run(cities, cfg);
    const auto saved = workloads::livesSavedPercent(cities, citiesRun);
    std::printf("\n12cities: lowering limits reduces pedestrian deaths "
                "by %.1f%% [90%% CI %.1f%%, %.1f%%]\n",
                mean(saved), quantile(saved, 0.05),
                quantile(saved, 0.95));

    // butterfly: expected species richness.
    workloads::ButterflyRichness butterfly;
    const auto butterflyRun = samplers::run(butterfly, cfg);
    const auto richness =
        workloads::expectedRichness(butterfly, butterflyRun);
    std::printf("butterfly: expected species richness %.1f of %zu "
                "candidates\n",
                mean(richness), butterfly.numSpecies());

    // survival: per-interval survival probability.
    workloads::AnimalSurvival survival(0.5);
    const auto survivalRun = samplers::run(survival, cfg);
    const auto rates = workloads::survivalRates(survival, survivalRun);
    std::printf("survival: mean inter-occasion survival %.2f "
                "(first interval %.2f, last %.2f)\n",
                mean(rates), rates.front(), rates.back());
    return 0;
}
