/**
 * @file
 * CSV export/import of posterior draws, so runs can be analyzed or
 * plotted with external tooling (R, pandas, ...). Format: a header of
 * `chain,draw,<coordName...>` followed by one row per (chain, draw).
 */
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "ppl/model.hpp"
#include "samplers/types.hpp"

namespace bayes {

/** Write a run's post-warmup draws as CSV to @p out. */
void writeDrawsCsv(std::ostream& out, const samplers::RunResult& run,
                   const ppl::ParamLayout& layout);

/** Write a run's draws to @p path. @throws Error on I/O failure */
void writeDrawsCsv(const std::string& path,
                   const samplers::RunResult& run,
                   const ppl::ParamLayout& layout);

/**
 * Read draws written by writeDrawsCsv back into per-chain storage.
 * @return [chain][draw][coordinate]
 * @throws Error on malformed input
 */
std::vector<std::vector<std::vector<double>>>
readDrawsCsv(std::istream& in);

} // namespace bayes
