#include "support/thread_pool.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <utility>

#include "support/error.hpp"

namespace bayes::support {

ThreadPool::ThreadPool(int workers)
{
    BAYES_CHECK(workers >= 1, "thread pool needs at least one worker, got "
                                  << workers);
    workers_.reserve(static_cast<std::size_t>(workers));
    for (int i = 0; i < workers; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    cv_.notify_all();
    for (auto& worker : workers_)
        worker.join();
}

std::future<void>
ThreadPool::submit(std::function<void()> task)
{
    // Hand-rolled promise instead of std::packaged_task so the
    // completion counter is bumped *before* the future resolves: a
    // caller returning from waitAll() must observe every finished task
    // in tasksCompleted().
    auto promise = std::make_shared<std::promise<void>>();
    std::future<void> future = promise->get_future();
    auto wrapped = [this, task = std::move(task), promise] {
        try {
            task();
            completed_.fetch_add(1, std::memory_order_relaxed);
            promise->set_value();
        } catch (...) {
            completed_.fetch_add(1, std::memory_order_relaxed);
            promise->set_exception(std::current_exception());
        }
    };
    {
        std::lock_guard<std::mutex> lock(mutex_);
        BAYES_CHECK(!stopping_, "submit on a stopping thread pool");
        queue_.push_back(std::move(wrapped));
    }
    cv_.notify_one();
    return future;
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stopping and drained
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        task(); // exceptions land in the task's future
    }
}

ThreadPool&
sharedPool(int workers)
{
    BAYES_CHECK(workers >= 0, "pool worker count must be >= 0, got "
                                  << workers);
    int resolved = workers;
    if (resolved == 0)
        resolved =
            std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
    static std::mutex mutex;
    static std::map<int, std::unique_ptr<ThreadPool>> pools;
    std::lock_guard<std::mutex> lock(mutex);
    auto& slot = pools[resolved];
    if (!slot)
        slot = std::make_unique<ThreadPool>(resolved);
    return *slot;
}

void
waitAll(std::vector<std::future<void>>& futures)
{
    std::exception_ptr first;
    for (auto& future : futures) {
        try {
            future.get();
        } catch (...) {
            if (!first)
                first = std::current_exception();
        }
    }
    futures.clear();
    if (first)
        std::rethrow_exception(first);
}

} // namespace bayes::support
