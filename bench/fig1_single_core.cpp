/**
 * @file
 * Figure 1 — single-core runtime statistics of BayesSuite on Skylake:
 * (a) IPC, (b) i-cache MPKI, (c) branch MPKI, (d) LLC MPKI,
 * (e) average memory bandwidth, (f) total execution time.
 *
 * Workloads run at their user (Table I) configurations; the 4 chains
 * execute sequentially on the single core, as in the paper.
 */
#include "common.hpp"
#include "support/table.hpp"

#include <cstdio>

using namespace bayes;

int
main()
{
    const auto platform = archsim::Platform::skylake();
    Table table({"workload", "IPC", "I$MPKI", "BrMPKI", "LLCMPKI",
                 "BW(MB/s)", "time(s)"});
    for (const auto& entry : bench::prepareSuite()) {
        const auto sim = archsim::simulateSystem(entry.profile, entry.work,
                                                 platform, /*cores=*/1);
        table.row()
            .cell(entry.workload->name())
            .cell(sim.ipc, 2)
            .cell(sim.icacheMpki, 2)
            .cell(sim.branchMpki, 2)
            .cell(sim.llcMpki, 2)
            .cell(sim.bandwidthMBps, 0)
            .cell(sim.seconds, 1);
    }
    printSection("Figure 1 — single-core characterization (Skylake, "
                 "1 core, 4 chains sequential)",
                 table);
    return 0;
}
