/**
 * @file
 * Serving-load bench — drives the bayes::serve runtime through a
 * thousand-plus-request open-loop mixed-tenant trace and reports what a
 * service owner would ask of it: per-SLO-class p50/p99 latency,
 * throughput, shed counts, and deadline misses. The arrival schedule is
 * seeded (identical trace every run); latencies are real measured
 * service times riding on the virtual clock, so the tails are honest
 * queueing behavior.
 *
 * Output: a human-readable table on stdout, one machine-readable JSON
 * line (prefixed `SERVE_LOAD_JSON:`) with the headline numbers, and the
 * usual obs snapshot via $BAYES_BENCH_METRICS_DIR.
 *
 * Usage: serve_load [requests] [rate-per-second] [seed]
 */
#include "common.hpp"
#include "obs/obs.hpp"
#include "serve/load_generator.hpp"
#include "serve/server.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"
#include "support/timer.hpp"

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

using namespace bayes;

namespace {

struct ClassStats
{
    std::vector<double> latencies;
    std::size_t ok = 0;
    std::size_t shed = 0;
    std::size_t missed = 0;
    std::size_t failed = 0;

    std::size_t total() const { return ok + shed + missed + failed; }
};

} // namespace

int
main(int argc, char** argv)
{
    const std::size_t requests =
        argc > 1 ? static_cast<std::size_t>(std::atol(argv[1])) : 1200;
    const double rate = argc > 2 ? std::atof(argv[2]) : 40.0;
    const std::uint64_t seed =
        argc > 3 ? static_cast<std::uint64_t>(std::atoll(argv[3])) : 20190331;

    serve::LoadConfig load;
    load.requests = requests;
    load.arrivalRatePerSecond = rate;
    load.seed = seed;
    const serve::LoadGenerator generator(load, serve::defaultTenantMix());

    std::fprintf(stderr,
                 "[bench] serve_load: %zu requests, %.1f req/s, seed %llu\n",
                 requests, rate,
                 static_cast<unsigned long long>(seed));

    serve::Server server;
    const Timer wall;
    server.runSchedule(generator.schedule());
    const double wallSeconds = wall.seconds();

    ClassStats perClass[serve::kNumSloClasses];
    for (const serve::Response& r : server.responses()) {
        ClassStats& c = perClass[static_cast<std::size_t>(r.slo)];
        switch (r.status) {
          case serve::RequestStatus::Ok:
            ++c.ok;
            c.latencies.push_back(r.latencySeconds);
            break;
          case serve::RequestStatus::Shed:
            ++c.shed;
            break;
          case serve::RequestStatus::DeadlineMiss:
            ++c.missed;
            c.latencies.push_back(r.latencySeconds);
            break;
          case serve::RequestStatus::Failed:
            ++c.failed;
            break;
          case serve::RequestStatus::Queued:
            std::fprintf(stderr, "ERROR: request %llu still queued\n",
                         static_cast<unsigned long long>(r.id));
            return 1;
        }
    }

    // Served trace time = the virtual makespan; throughput is completed
    // requests per virtual second (what a tenant observes), while
    // wallSeconds is what the bench host actually spent.
    const double makespan = server.virtualNow();
    const std::size_t completed =
        server.admitted() - server.queueDepth();
    const double throughput =
        makespan > 0.0 ? static_cast<double>(completed) / makespan : 0.0;

    Table table({"class", "total", "ok", "shed", "miss", "failed", "p50(s)",
                 "p99(s)"});
    double p50[serve::kNumSloClasses] = {0.0, 0.0, 0.0};
    double p99[serve::kNumSloClasses] = {0.0, 0.0, 0.0};
    for (std::size_t c = 0; c < serve::kNumSloClasses; ++c) {
        ClassStats& stats = perClass[c];
        if (!stats.latencies.empty()) {
            p50[c] = quantile(stats.latencies, 0.50);
            p99[c] = quantile(stats.latencies, 0.99);
        }
        table.row()
            .cell(serve::sloClassName(static_cast<serve::SloClass>(c)))
            .cell(static_cast<long>(stats.total()))
            .cell(static_cast<long>(stats.ok))
            .cell(static_cast<long>(stats.shed))
            .cell(static_cast<long>(stats.missed))
            .cell(static_cast<long>(stats.failed))
            .cell(p50[c], 4)
            .cell(p99[c], 4);
    }
    printSection("Serving load — per-SLO-class outcome and latency "
                 "(open-loop Poisson arrivals, virtual-clock latencies)",
                 table);

    Table totals({"requests", "admitted", "shed", "deadline misses",
                  "warm hits", "warm misses", "makespan(s)",
                  "throughput(req/s)", "bench wall(s)"});
    totals.row()
        .cell(static_cast<long>(requests))
        .cell(static_cast<long>(server.admitted()))
        .cell(static_cast<long>(server.shedCount()))
        .cell(static_cast<long>(server.deadlineMisses()))
        .cell(static_cast<long>(server.warmHits()))
        .cell(static_cast<long>(server.warmMisses()))
        .cell(makespan, 2)
        .cell(throughput, 1)
        .cell(wallSeconds, 2);
    printSection("Serving load — totals", totals);

    // Machine-readable summary: one line, grep-friendly.
    std::string json = "{\"requests\":" + std::to_string(requests)
        + ",\"admitted\":" + std::to_string(server.admitted())
        + ",\"shed\":" + std::to_string(server.shedCount())
        + ",\"deadline_misses\":" + std::to_string(server.deadlineMisses())
        + ",\"warm_hits\":" + std::to_string(server.warmHits())
        + ",\"warm_misses\":" + std::to_string(server.warmMisses())
        + ",\"makespan_s\":" + std::to_string(makespan)
        + ",\"throughput_rps\":" + std::to_string(throughput)
        + ",\"classes\":{";
    for (std::size_t c = 0; c < serve::kNumSloClasses; ++c) {
        const ClassStats& stats = perClass[c];
        json += std::string(c ? "," : "") + "\""
            + serve::sloClassName(static_cast<serve::SloClass>(c))
            + "\":{\"ok\":" + std::to_string(stats.ok)
            + ",\"shed\":" + std::to_string(stats.shed)
            + ",\"deadline_miss\":" + std::to_string(stats.missed)
            + ",\"failed\":" + std::to_string(stats.failed)
            + ",\"p50_s\":" + std::to_string(p50[c])
            + ",\"p99_s\":" + std::to_string(p99[c]) + "}";
    }
    json += "}}";
    std::printf("SERVE_LOAD_JSON: %s\n", json.c_str());

    // Sanity gates, so CI catches a serving regression, not a human:
    // every request reached a terminal state (checked above), and the
    // interactive class missed no deadlines while the server had
    // capacity (interactive work is served first by construction).
    const ClassStats& interactive =
        perClass[static_cast<std::size_t>(serve::SloClass::Interactive)];
    if (interactive.missed != 0) {
        std::fprintf(stderr,
                     "ERROR: %zu interactive deadline misses under an "
                     "admission-controlled load\n",
                     interactive.missed);
        return 1;
    }
    if (interactive.ok == 0) {
        std::fprintf(stderr, "ERROR: no interactive request served\n");
        return 1;
    }

    bench::writeRunReport("serve_load");
    return 0;
}
