/**
 * @file
 * Quickstart: define a custom Bayesian model against the public API and
 * sample it with NUTS.
 *
 * The model is a simple robust linear regression,
 *     y_i ~ student_t(4, alpha + beta * x_i, sigma),   sigma > 0,
 * fitted to synthetic data with known coefficients. Shows the three
 * steps every user of the library follows:
 *   1. implement ppl::Model (parameter layout + templated log density),
 *   2. configure and run the multi-chain NUTS driver,
 *   3. summarize the posterior (means, quantiles, R-hat, ESS).
 */
#include <cstdio>

#include "diagnostics/summary.hpp"
#include "math/distributions.hpp"
#include "samplers/runner.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

using namespace bayes;

namespace {

/** Robust regression y ~ student_t(4, alpha + beta x, sigma). */
class RobustRegression : public ppl::Model
{
  public:
    RobustRegression()
        : layout_({
              {"alpha", 1, ppl::TransformKind::Identity, 0, 0},
              {"beta", 1, ppl::TransformKind::Identity, 0, 0},
              {"sigma", 1, ppl::TransformKind::LowerBound, 0.0, 0},
          })
    {
        // Synthetic data: alpha = 1.5, beta = -0.7, sigma = 0.4, with a
        // few gross outliers the Student-t likelihood should shrug off.
        Rng rng(2026);
        for (int i = 0; i < 80; ++i) {
            const double x = rng.uniform(-2.0, 2.0);
            double y = 1.5 - 0.7 * x + rng.normal(0.0, 0.4);
            if (i % 17 == 0)
                y += rng.normal(0.0, 4.0); // outlier
            xs_.push_back(x);
            ys_.push_back(y);
        }
    }

    const std::string& name() const override { return name_; }
    const ppl::ParamLayout& layout() const override { return layout_; }
    std::size_t modeledDataBytes() const override
    {
        return (xs_.size() + ys_.size()) * sizeof(double);
    }

    double logProb(const ppl::ParamView<double>& p) const override
    {
        return density(p);
    }
    ad::Var logProb(const ppl::ParamView<ad::Var>& p) const override
    {
        return density(p);
    }

  private:
    template <typename T>
    T
    density(const ppl::ParamView<T>& p) const
    {
        using namespace bayes::math;
        const T& alpha = p.scalar(0);
        const T& beta = p.scalar(1);
        const T& sigma = p.scalar(2);
        T lp = normal_lpdf(alpha, 0.0, 5.0) + normal_lpdf(beta, 0.0, 5.0)
            + normal_lpdf(sigma, 0.0, 2.0);
        for (std::size_t i = 0; i < xs_.size(); ++i)
            lp += student_t_lpdf(ys_[i], 4.0, alpha + beta * xs_[i],
                                 sigma);
        return lp;
    }

    std::string name_ = "robust-regression";
    ppl::ParamLayout layout_;
    std::vector<double> xs_, ys_;
};

} // namespace

int
main()
{
    RobustRegression model;

    samplers::Config config;
    config.chains = 4;
    config.iterations = 1000; // half warmup, half sampling
    // Run all chains in parallel on the process-shared worker pool;
    // draws are identical to ExecutionPolicy::sequential().
    config.execution = samplers::ExecutionPolicy::pool();

    std::printf("Sampling %s with %s (%d chains x %d iterations)...\n",
                model.name().c_str(),
                samplers::algorithmName(config.algorithm), config.chains,
                config.iterations);
    const auto result = samplers::run(model, config);

    const auto summary = diagnostics::summarize(result, model.layout());
    std::printf("\n%s\n", summary.table().str().c_str());
    std::printf("max R-hat = %.3f, min ESS = %.0f\n", summary.maxRhat(),
                summary.minEss());
    std::printf("(data generated with alpha=1.5, beta=-0.7, sigma=0.4)\n");
    return summary.maxRhat() < 1.1 ? 0 : 1;
}
