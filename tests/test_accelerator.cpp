/**
 * @file
 * Accelerator-model tests: monotonicity in lanes/SFUs, Amdahl ceiling,
 * bandwidth bound, and the SFU advantage on transcendental-heavy mixes.
 */
#include <gtest/gtest.h>

#include "archsim/accelerator.hpp"

namespace bayes::archsim {
namespace {

EvalProfile
mixProfile(std::uint64_t addMul, std::uint64_t div, std::uint64_t special,
           std::size_t dataBytes = 0)
{
    EvalProfile p;
    p.tapeNodes = addMul + div + special;
    p.opCounts[static_cast<int>(ad::OpClass::AddSub)] = addMul / 2;
    p.opCounts[static_cast<int>(ad::OpClass::Mul)] = addMul - addMul / 2;
    p.opCounts[static_cast<int>(ad::OpClass::Div)] = div;
    p.opCounts[static_cast<int>(ad::OpClass::Special)] = special;
    p.dim = 16;
    p.dataBytes = dataBytes;
    return p;
}

TEST(Accelerator, MoreLanesGoFaster)
{
    // Small enough to stay scratchpad-resident (compute-bound regime).
    const auto profile = mixProfile(20000, 0, 0);
    auto narrow = AcceleratorSpec::simdSfu();
    narrow.lanes = 8;
    auto wide = AcceleratorSpec::simdSfu();
    wide.lanes = 128;
    const auto slow = estimateAccelerator(profile, narrow, 1e-4);
    const auto fast = estimateAccelerator(profile, wide, 1e-4);
    EXPECT_LT(fast.cyclesPerEval, slow.cyclesPerEval);
}

TEST(Accelerator, AmdahlBoundsTheSpeedup)
{
    const auto profile = mixProfile(100000, 0, 0);
    auto huge = AcceleratorSpec::simdSfu();
    huge.lanes = 1 << 20;
    huge.serialFraction = 0.05;
    const auto est = estimateAccelerator(profile, huge, 1.0);
    // Serial floor: cycles >= serialFraction * 2 * ops.
    EXPECT_GE(est.cyclesPerEval, 0.05 * 2.0 * 100000 - 1.0);
}

TEST(Accelerator, SfusHelpTranscendentalMixes)
{
    const auto heavy = mixProfile(8000, 0, 8000);
    const auto withSfu = estimateAccelerator(
        heavy, AcceleratorSpec::simdSfu(), 1e-4);
    const auto without = estimateAccelerator(
        heavy, AcceleratorSpec::simdOnly(), 1e-4);
    EXPECT_GT(withSfu.speedupVsCpu, without.speedupVsCpu);
}

TEST(Accelerator, SfusIrrelevantForPureArithmetic)
{
    const auto plain = mixProfile(40000, 0, 0);
    const auto withSfu = estimateAccelerator(
        plain, AcceleratorSpec::simdSfu(), 1e-4);
    const auto without = estimateAccelerator(
        plain, AcceleratorSpec::simdOnly(), 1e-4);
    EXPECT_NEAR(withSfu.cyclesPerEval, without.cyclesPerEval, 1e-9);
}

TEST(Accelerator, LargeWorkingSetsBecomeBandwidthBound)
{
    // 4M nodes * 32B = 128 MB working set >> any scratchpad.
    const auto big = mixProfile(4000000, 0, 0, 64 * 1024 * 1024);
    auto spec = AcceleratorSpec::simdSfu();
    spec.dramBWGBps = 10.0; // starve it
    const auto est = estimateAccelerator(big, spec, 1.0);
    EXPECT_TRUE(est.bandwidthBound);
}

TEST(Accelerator, SmallWorkingSetsAreComputeBound)
{
    const auto small = mixProfile(5000, 100, 500, 1024);
    const auto est = estimateAccelerator(
        small, AcceleratorSpec::simdSfu(), 1e-4);
    EXPECT_FALSE(est.bandwidthBound);
    EXPECT_GT(est.speedupVsCpu, 1.0);
}

TEST(Accelerator, PresetsAreDistinct)
{
    EXPECT_EQ(AcceleratorSpec::simdSfu().name, "SIMD+SFU");
    EXPECT_EQ(AcceleratorSpec::simdOnly().sfus, 0);
    EXPECT_GT(AcceleratorSpec::gpuLike().lanes,
              AcceleratorSpec::simdSfu().lanes);
}

TEST(Accelerator, ValidatesArguments)
{
    const auto profile = mixProfile(1000, 0, 0);
    auto bad = AcceleratorSpec::simdSfu();
    bad.lanes = 0;
    EXPECT_THROW(estimateAccelerator(profile, bad, 1.0), Error);
    EXPECT_THROW(estimateAccelerator(profile,
                                     AcceleratorSpec::simdSfu(), 0.0),
                 Error);
}

} // namespace
} // namespace bayes::archsim
