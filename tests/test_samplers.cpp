/**
 * @file
 * Sampler correctness: posterior moment recovery on analytically known
 * targets for MH, HMC and NUTS; dual-averaging behavior; runner
 * determinism; the phased-executor guarantees (identical draws and
 * stop decisions under every ExecutionPolicy); and the monitor
 * contract.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <limits>

#include "determinism_harness.hpp"
#include "math/distributions.hpp"
#include "samplers/dual_averaging.hpp"
#include "samplers/runner.hpp"
#include "support/stats.hpp"
#include "support/timer.hpp"

namespace bayes::samplers {
namespace {

/** Correlated 2-D Gaussian target with known moments. */
class GaussianTarget : public ppl::Model
{
  public:
    GaussianTarget()
        : layout_({{"x", 1, ppl::TransformKind::Identity, 0, 0},
                   {"y", 1, ppl::TransformKind::Identity, 0, 0}})
    {
    }

    const std::string& name() const override { return name_; }
    const ppl::ParamLayout& layout() const override { return layout_; }
    std::size_t modeledDataBytes() const override { return 0; }

    double logProb(const ppl::ParamView<double>& p) const override
    {
        return body(p);
    }
    ad::Var logProb(const ppl::ParamView<ad::Var>& p) const override
    {
        return body(p);
    }

    static constexpr double kMeanX = 1.0;
    static constexpr double kMeanY = -2.0;
    static constexpr double kSdX = 1.5;
    static constexpr double kSdY = 0.5;
    static constexpr double kRho = 0.6;

  private:
    template <typename T>
    T
    body(const ppl::ParamView<T>& p) const
    {
        // Bivariate normal with correlation rho.
        const T zx = (p.scalar(0) - kMeanX) / kSdX;
        const T zy = (p.scalar(1) - kMeanY) / kSdY;
        const double r2 = 1.0 - kRho * kRho;
        return T(-0.5 / r2)
            * (zx * zx - 2.0 * kRho * zx * zy + zy * zy);
    }

    std::string name_ = "gaussian2d";
    ppl::ParamLayout layout_;
};

Config
baseConfig(Algorithm algo, int iterations)
{
    Config cfg;
    cfg.algorithm = algo;
    cfg.chains = 2;
    cfg.iterations = iterations;
    cfg.seed = 777;
    return cfg;
}

void
expectGaussianMoments(const RunResult& run, double meanTol, double sdTol)
{
    std::vector<double> xs, ys;
    for (const auto& chain : run.chains) {
        for (const auto& d : chain.draws) {
            xs.push_back(d[0]);
            ys.push_back(d[1]);
        }
    }
    EXPECT_NEAR(mean(xs), GaussianTarget::kMeanX, meanTol);
    EXPECT_NEAR(mean(ys), GaussianTarget::kMeanY, meanTol);
    EXPECT_NEAR(stddev(xs), GaussianTarget::kSdX, sdTol);
    EXPECT_NEAR(stddev(ys), GaussianTarget::kSdY, sdTol);
    EXPECT_NEAR(pearson(xs, ys), GaussianTarget::kRho, 0.12);
}

TEST(Samplers, NutsRecoversGaussianMoments)
{
    GaussianTarget model;
    const auto result = run(model, baseConfig(Algorithm::Nuts, 2000));
    expectGaussianMoments(result, 0.12, 0.15);
    for (const auto& chain : result.chains) {
        EXPECT_GT(chain.acceptRate, 0.6);
        EXPECT_GT(chain.stepSize, 0.0);
    }
}

TEST(Samplers, HmcRecoversGaussianMoments)
{
    GaussianTarget model;
    auto cfg = baseConfig(Algorithm::Hmc, 3000);
    cfg.hmcLeapfrogSteps = 16;
    const auto result = run(model, cfg);
    expectGaussianMoments(result, 0.15, 0.18);
}

TEST(Samplers, MhRecoversGaussianMoments)
{
    GaussianTarget model;
    const auto result = run(model, baseConfig(Algorithm::Mh, 20000));
    expectGaussianMoments(result, 0.25, 0.25);
}

TEST(Samplers, RunIsDeterministicForFixedSeed)
{
    GaussianTarget model;
    const auto cfg = baseConfig(Algorithm::Nuts, 200);
    const auto a = run(model, cfg);
    const auto b = run(model, cfg);
    ASSERT_EQ(a.chains.size(), b.chains.size());
    for (std::size_t c = 0; c < a.chains.size(); ++c) {
        ASSERT_EQ(a.chains[c].draws.size(), b.chains[c].draws.size());
        for (std::size_t t = 0; t < a.chains[c].draws.size(); ++t)
            EXPECT_EQ(a.chains[c].draws[t], b.chains[c].draws[t]);
    }
}

TEST(Samplers, DifferentSeedsGiveDifferentDraws)
{
    GaussianTarget model;
    auto cfg = baseConfig(Algorithm::Nuts, 200);
    const auto a = run(model, cfg);
    cfg.seed = 778;
    const auto b = run(model, cfg);
    EXPECT_NE(a.chains[0].draws.back(), b.chains[0].draws.back());
}

TEST(Samplers, MonitorCanStopEarly)
{
    GaussianTarget model;
    const auto cfg = baseConfig(Algorithm::Nuts, 1000);
    int calls = 0;
    const auto result =
        run(model, cfg, [&](const MonitorContext& ctx) {
            ++calls;
            EXPECT_EQ(static_cast<int>(ctx.chains[0].draws.size()),
                      ctx.round);
            return ctx.round >= 50 ? MonitorAction::Stop
                                   : MonitorAction::Continue;
        });
    EXPECT_EQ(calls, 50);
    for (const auto& chain : result.chains)
        EXPECT_EQ(chain.draws.size(), 50u);
}

TEST(Samplers, MonitorContextExposesSynchronizedState)
{
    GaussianTarget model;
    auto cfg = baseConfig(Algorithm::Nuts, 200);
    cfg.chains = 3;
    int lastRound = 0;
    double lastElapsed = 0.0;
    std::vector<std::uint64_t> lastGradEvals;
    run(model, cfg, [&](const MonitorContext& ctx) {
        EXPECT_EQ(ctx.round, lastRound + 1);
        lastRound = ctx.round;
        EXPECT_EQ(ctx.chains.size(), 3u);
        for (const auto& chain : ctx.chains)
            EXPECT_EQ(static_cast<int>(chain.draws.size()), ctx.round);
        EXPECT_GE(ctx.elapsedSeconds, lastElapsed);
        lastElapsed = ctx.elapsedSeconds;
        EXPECT_EQ(ctx.gradEvalsPerChain.size(), 3u);
        if (lastGradEvals.empty())
            lastGradEvals.assign(3, 0);
        for (std::size_t c = 0; c < 3; ++c) {
            EXPECT_GT(ctx.gradEvalsPerChain[c], 0u);
            EXPECT_GE(ctx.gradEvalsPerChain[c], lastGradEvals[c]);
        }
        lastGradEvals.assign(ctx.gradEvalsPerChain.begin(),
                             ctx.gradEvalsPerChain.end());
        return MonitorAction::Continue;
    });
    EXPECT_EQ(lastRound, 100); // ran the full post-warmup budget
}

TEST(Samplers, WorkCountersArePopulated)
{
    GaussianTarget model;
    const auto result = run(model, baseConfig(Algorithm::Nuts, 300));
    for (const auto& chain : result.chains) {
        EXPECT_EQ(chain.iterStats.size(), 300u);
        EXPECT_EQ(chain.draws.size(), 150u); // default warmup = half
        EXPECT_GT(chain.totalGradEvals, 300u);
        EXPECT_GT(chain.tapeNodesPerEval, 0u);
        EXPECT_GT(chain.postWarmupGradEvals(), 0u);
        std::uint64_t evals = 0;
        for (const auto& s : chain.iterStats)
            evals += s.gradEvals;
        EXPECT_LE(evals, chain.totalGradEvals);
    }
}

TEST(Samplers, LogProbsTrackDraws)
{
    GaussianTarget model;
    const auto result = run(model, baseConfig(Algorithm::Nuts, 200));
    for (const auto& chain : result.chains)
        EXPECT_EQ(chain.logProbs.size(), chain.draws.size());
}

TEST(Samplers, ConfigValidation)
{
    GaussianTarget model;
    Config bad;
    bad.chains = 0;
    EXPECT_THROW(run(model, bad), Error);
    Config badIters;
    badIters.iterations = 100;
    badIters.warmup = 100;
    EXPECT_THROW(run(model, badIters), Error);
    Config badPool;
    badPool.execution = ExecutionPolicy::pool(-2);
    EXPECT_THROW(run(model, badPool), Error);
}

TEST(DualAveraging, ConvergesTowardTargetFromBothSides)
{
    // Feed a synthetic response: accept prob falls as step size grows.
    DualAveraging da(1.0, 0.8);
    for (int i = 0; i < 400; ++i) {
        const double accept =
            1.0 / (1.0 + 2.0 * da.stepSize()); // decreasing in step
        da.update(accept);
    }
    const double eps = da.adaptedStepSize();
    EXPECT_NEAR(1.0 / (1.0 + 2.0 * eps), 0.8, 0.05);
}

TEST(DualAveraging, RestartResets)
{
    DualAveraging da(0.5, 0.8);
    da.update(0.2);
    da.restart(2.0);
    EXPECT_NEAR(da.adaptedStepSize(), 2.0, 1e-12);
}

TEST(Samplers, AlgorithmNames)
{
    EXPECT_STREQ(algorithmName(Algorithm::Nuts), "NUTS");
    EXPECT_STREQ(algorithmName(Algorithm::Hmc), "HMC");
    EXPECT_STREQ(algorithmName(Algorithm::Mh), "MH");
}

TEST(Samplers, AllExecutionPoliciesMatchSequentialExactly)
{
    GaussianTarget model;
    const struct
    {
        Algorithm algo;
        int iterations;
    } cases[] = {{Algorithm::Nuts, 300},
                 {Algorithm::Hmc, 200},
                 {Algorithm::Mh, 400},
                 {Algorithm::Slice, 200}};
    for (const auto& c : cases) {
        SCOPED_TRACE(algorithmName(c.algo));
        auto cfg = baseConfig(c.algo, c.iterations);
        cfg.chains = 4;
        cfg.hmcLeapfrogSteps = 8;
        harness::expectPolicyInvariantDraws(model, cfg);
        // pool() (hardware-width) isn't in the shared grid; keep the
        // historical coverage of the unbounded pool here.
        const auto sequential = run(model, cfg);
        cfg.execution = ExecutionPolicy::pool();
        EXPECT_TRUE(harness::identicalRuns(run(model, cfg), sequential));
    }
}

TEST(Samplers, PhasedMonitorStopsAtSameRoundUnderEveryPolicy)
{
    GaussianTarget model;
    auto cfg = baseConfig(Algorithm::Nuts, 300);
    cfg.chains = 4;
    const IterationMonitor stopAt40 = [](const MonitorContext& ctx) {
        return ctx.round >= 40 ? MonitorAction::Stop
                               : MonitorAction::Continue;
    };
    const auto sequential = run(model, cfg, stopAt40);
    for (const auto& chain : sequential.chains)
        EXPECT_EQ(chain.draws.size(), 40u);
    harness::expectPolicyInvariantDraws(model, cfg, {0}, stopAt40);
}

TEST(Samplers, MonitorExceptionPropagatesFromPhasedExecutor)
{
    GaussianTarget model;
    auto cfg = baseConfig(Algorithm::Nuts, 100);
    cfg.execution = ExecutionPolicy::pool(2);
    EXPECT_THROW(run(model, cfg,
                     [](const MonitorContext&) -> MonitorAction {
                         throw Error("monitor bailed");
                     }),
                 Error);
}

// -- runWithDeadline property tests ----------------------------------
// Driven by a fake clock (support::ScopedClockSource): a tick monitor
// advances virtual time by a fixed dt per post-warmup round, so the
// deadline path is exercised deterministically with no wall-clock
// sleeps. At round r the executor observes elapsed == (r-1)*dt.

std::atomic<double> g_fakeNow{0.0};

double
fakeClock() noexcept
{
    return g_fakeNow.load(std::memory_order_relaxed);
}

TEST(Samplers, DeadlinePrefixProperty)
{
    GaussianTarget model;
    auto cfg = baseConfig(Algorithm::Mh, 80);
    cfg.warmup = 40; // postWarmup = 40 rounds
    const double dt = 0.25;
    const IterationMonitor tick = [&](const MonitorContext&) {
        g_fakeNow.store(g_fakeNow.load() + dt);
        return MonitorAction::Continue;
    };

    support::ScopedClockSource fake(&fakeClock);
    g_fakeNow.store(0.0);
    const auto full = runWithDeadline(
        model, cfg, std::numeric_limits<double>::infinity(), tick);
    EXPECT_FALSE(full.expired);
    ASSERT_EQ(full.run.chains[0].draws.size(), 40u);

    // Random deadlines across [0, past-the-budget): the delivered
    // draws must always be an exact bitwise prefix of the undeadlined
    // run, warmup must always complete, and expiry must be consistent
    // with both the clock and the draw count.
    Rng deadlineRng(20260808);
    for (int trial = 0; trial < 12; ++trial) {
        const double deadline = deadlineRng.uniform() * dt * 45.0;
        SCOPED_TRACE(::testing::Message() << "deadline " << deadline);
        g_fakeNow.store(0.0);
        const auto got = runWithDeadline(model, cfg, deadline, tick);
        EXPECT_TRUE(harness::identicalPrefix(got.run, full.run));
        for (const auto& chain : got.run.chains) {
            // Warmup always completes; at least one sampling round
            // runs before the deadline can fire.
            EXPECT_GE(chain.iterStats.size(), 40u);
            EXPECT_GE(chain.draws.size(), 1u);
        }
        if (got.expired) {
            EXPECT_GE(got.elapsedSeconds, deadline);
        }
        EXPECT_EQ(got.expired, got.run.chains[0].draws.size() < 40u);
    }
}

TEST(Samplers, DeadlineZeroStopsAfterOneRoundWithWarmupComplete)
{
    GaussianTarget model;
    auto cfg = baseConfig(Algorithm::Mh, 80);
    cfg.warmup = 40;
    support::ScopedClockSource fake(&fakeClock);
    g_fakeNow.store(0.0);
    const auto got = runWithDeadline(model, cfg, 0.0, nullptr);
    EXPECT_TRUE(got.expired);
    for (const auto& chain : got.run.chains) {
        EXPECT_EQ(chain.draws.size(), 1u); // first round's draw kept
        EXPECT_GE(chain.iterStats.size(), 41u); // warmup + that round
    }
}

TEST(Samplers, DeadlinePrefixHoldsUnderPooledBatchedExecution)
{
    GaussianTarget model;
    auto cfg = baseConfig(Algorithm::Mh, 80);
    cfg.warmup = 40;
    cfg.execution = ExecutionPolicy::pool(2);
    cfg.batchEval = true;
    cfg.speculationDepth = 2;
    const double dt = 0.25;
    const IterationMonitor tick = [&](const MonitorContext&) {
        g_fakeNow.store(g_fakeNow.load() + dt);
        return MonitorAction::Continue;
    };
    support::ScopedClockSource fake(&fakeClock);
    g_fakeNow.store(0.0);
    const auto full = runWithDeadline(
        model, cfg, std::numeric_limits<double>::infinity(), tick);
    g_fakeNow.store(0.0);
    const auto got = runWithDeadline(model, cfg, dt * 9.5, tick);
    EXPECT_TRUE(got.expired);
    EXPECT_EQ(got.run.chains[0].draws.size(), 11u); // ceil(9.5)+1 rounds
    EXPECT_TRUE(harness::identicalPrefix(got.run, full.run));
}

TEST(Samplers, ExecutionModeNames)
{
    EXPECT_STREQ(executionModeName(ExecutionMode::Sequential),
                 "sequential");
    EXPECT_STREQ(executionModeName(ExecutionMode::ThreadPerChain),
                 "thread-per-chain");
    EXPECT_STREQ(executionModeName(ExecutionMode::Pool), "pool");
}

/** Target whose density is -inf everywhere (no valid initial point). */
class ImproperTarget : public ppl::Model
{
  public:
    ImproperTarget()
        : layout_({{"x", 1, ppl::TransformKind::Identity, 0, 0}})
    {
    }

    const std::string& name() const override { return name_; }
    const ppl::ParamLayout& layout() const override { return layout_; }
    std::size_t modeledDataBytes() const override { return 0; }

    double logProb(const ppl::ParamView<double>& p) const override
    {
        return body(p);
    }
    ad::Var logProb(const ppl::ParamView<ad::Var>& p) const override
    {
        return body(p);
    }

  private:
    template <typename T>
    T
    body(const ppl::ParamView<T>& p) const
    {
        return T(-std::numeric_limits<double>::infinity()) * p.scalar(0);
    }

    std::string name_ = "improper";
    ppl::ParamLayout layout_;
};

TEST(Samplers, InitialPointFailureReportsSeedAndDensity)
{
    ImproperTarget model;
    Config cfg;
    cfg.chains = 1;
    cfg.iterations = 10;
    cfg.warmup = 5;
    cfg.seed = 4242;
    try {
        run(model, cfg);
        FAIL() << "expected initial-point failure";
    } catch (const Error& e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("seed 4242"), std::string::npos) << msg;
        EXPECT_NE(msg.find("log-density"), std::string::npos) << msg;
        EXPECT_NE(msg.find("inf"), std::string::npos) << msg;
    }
}

TEST(Samplers, CoordinateExtraction)
{
    GaussianTarget model;
    const auto result = run(model, baseConfig(Algorithm::Nuts, 100));
    const auto coord = result.coordinate(1);
    EXPECT_EQ(coord.size(), 2u);
    EXPECT_EQ(coord[0].size(), 50u);
    EXPECT_EQ(coord[0][0], result.chains[0].draws[0][1]);
}

} // namespace
} // namespace bayes::samplers
