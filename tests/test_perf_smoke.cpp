/**
 * @file
 * Performance smoke test gating the fused-kernel win: on the `ad`
 * attribution workload the fused tape must stay at or below 25% of the
 * scalar reference tape's node count, while producing the same log
 * density and gradient. Runs as a plain ctest under the `perf-smoke`
 * label so CI catches regressions that quietly re-inflate the tape
 * (e.g. a kernel falling back to the scalar loop).
 */
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "ppl/evaluator.hpp"
#include "support/rng.hpp"
#include "workloads/suite.hpp"

namespace bayes {
namespace {

TEST(PerfSmoke, FusedTapeIsAQuarterOfScalarOnAdAttribution)
{
    const auto wl = workloads::makeWorkload("ad", 1.0);
    ppl::Evaluator fused(*wl);
    ppl::Evaluator scalar(*wl);
    scalar.setScalarLikelihood(true);

    Rng rng(2019);
    std::vector<double> q(fused.dim());
    for (auto& qi : q)
        qi = rng.normal(0.0, 0.3);

    std::vector<double> gF, gS;
    const double lpF = fused.logProbGrad(q, gF);
    const double lpS = scalar.logProbGrad(q, gS);

    // Same posterior...
    EXPECT_NEAR(lpF, lpS, 1e-9 * std::fabs(lpS));
    ASSERT_EQ(gF.size(), gS.size());
    for (std::size_t i = 0; i < gF.size(); ++i)
        EXPECT_NEAR(gF[i], gS[i],
                    1e-8 * std::max(1.0, std::fabs(gS[i])))
            << "coord " << i;

    // ...from a tape at most a quarter of the size (the PR's bar).
    EXPECT_LE(4 * fused.lastTapeNodes(), scalar.lastTapeNodes())
        << "fused " << fused.lastTapeNodes() << " nodes vs scalar "
        << scalar.lastTapeNodes();
}

TEST(PerfSmoke, BatchedEvalStreamsDataOncePerEightLanes)
{
    // The batching win the EvalBatch surface exists for: a K=8
    // gradient batch makes one pass over the observed data where eight
    // singles make eight. Checked on both gate workloads.
    for (const char* name : {"ad", "tickets"}) {
        const auto wl = workloads::makeWorkload(name, 1.0);
        ppl::Evaluator batched(*wl);
        ppl::Evaluator single(*wl);

        Rng rng(2019);
        constexpr std::size_t kLanes = 8;
        ppl::EvalBatch batch(batched.dim(), kLanes);
        std::vector<double> q(batched.dim());
        std::vector<std::vector<double>> pts;
        for (std::size_t k = 0; k < kLanes; ++k) {
            for (auto& qi : q)
                qi = rng.normal(0.0, 0.3);
            batch.setPoint(k, q);
            pts.push_back(q);
        }

        std::vector<double> lp(kLanes);
        ppl::EvalBatch grads;
        batched.logProbGradBatch(batch, lp, grads);
        std::vector<double> g;
        for (const auto& p : pts)
            single.logProbGrad(p, g);

        EXPECT_EQ(batched.numGradEvals(), single.numGradEvals()) << name;
        EXPECT_EQ(batched.numDataPasses(), 1u) << name;
        EXPECT_EQ(single.numDataPasses(), kLanes) << name;
    }
}

} // namespace
} // namespace bayes
