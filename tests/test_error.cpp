/**
 * @file
 * Tests for the BAYES_CHECK error macro and the Error exception type.
 */
#include <gtest/gtest.h>

#include "support/error.hpp"

namespace bayes {
namespace {

TEST(Error, CheckPassesOnTrueCondition)
{
    EXPECT_NO_THROW(BAYES_CHECK(1 + 1 == 2, "arithmetic works"));
}

TEST(Error, CheckThrowsWithMessage)
{
    try {
        BAYES_CHECK(false, "value was " << 42);
        FAIL() << "expected Error";
    } catch (const Error& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("value was 42"), std::string::npos);
        EXPECT_NE(what.find("false"), std::string::npos);
    }
}

TEST(Error, CheckMessageStreamsArbitraryTypes)
{
    try {
        BAYES_CHECK(false, "pi=" << 3.5 << " name=" << std::string("x"));
        FAIL() << "expected Error";
    } catch (const Error& e) {
        EXPECT_NE(std::string(e.what()).find("pi=3.5 name=x"),
                  std::string::npos);
    }
}

TEST(Error, IsARuntimeError)
{
    EXPECT_THROW(throw Error("boom"), std::runtime_error);
}

} // namespace
} // namespace bayes
