// Fixture: tests/ is exempt from R001 and R003 — test code may spin raw
// threads to attack the pool and use ad-hoc seeds.
#include <random>
#include <thread>

namespace fixture {
void attack()
{
    std::thread t([] {});  // no finding: tests are exempt from R001
    t.join();
    std::mt19937 gen(1);   // no finding: tests are exempt from R003
    (void)gen();
}
}  // namespace fixture
