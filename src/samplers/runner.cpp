#include "samplers/runner.hpp"

#include <cmath>
#include <memory>
#include <thread>

#include "samplers/dual_averaging.hpp"
#include "samplers/hmc.hpp"
#include "samplers/mh.hpp"
#include "samplers/nuts.hpp"
#include "samplers/slice.hpp"
#include "support/stats.hpp"

namespace bayes::samplers {
namespace {

/** Everything one chain needs to advance independently. */
class ChainState
{
  public:
    ChainState(const ppl::Model& model, const Config& config, Rng rng)
        : config_(config), eval_(model), ham_(eval_), rng_(rng),
          nuts_(ham_, config.maxTreeDepth),
          hmc_(ham_, config.hmcLeapfrogSteps), mh_(eval_), slice_(eval_)
    {
        z_.q = findInitialPoint(eval_, rng_);
        ham_.refresh(z_);
        if (config_.algorithm == Algorithm::Nuts
            || config_.algorithm == Algorithm::Hmc) {
            const double eps = ham_.findReasonableStepSize(z_, rng_);
            da_ = std::make_unique<DualAveraging>(eps, config_.targetAccept);
            setStepSize(eps);
        }
        welford_.assign(eval_.dim(), RunningStats{});
    }

    /** Run one warmup iteration with adaptation. */
    void
    warmupIteration(int t)
    {
        const int warmup = config_.resolvedWarmup();
        const int phase1End = std::max(1, warmup * 15 / 100);
        const int phase2End = std::max(phase1End + 1, warmup * 90 / 100);

        const double acceptStat = advance();

        if (config_.algorithm == Algorithm::Mh) {
            mh_.adaptScale(acceptStat);
            return;
        }
        if (config_.algorithm == Algorithm::Slice) {
            // The stepping-out procedure self-scales to the slice, so
            // the default unit width needs no warmup adaptation; use
            // SliceSampler::tuneWidths directly for custom schedules.
            return;
        }

        da_->update(acceptStat);
        setStepSize(da_->stepSize());

        if (t >= phase1End && t < phase2End) {
            for (std::size_t i = 0; i < z_.q.size(); ++i)
                welford_[i].add(z_.q[i]);
        }
        if (config_.adaptMetric && t + 1 == phase2End
            && welford_[0].count() >= 10) {
            std::vector<double> invMetric(z_.q.size());
            // Regularized variance estimate (Stan's shrinkage prior).
            const double n = static_cast<double>(welford_[0].count());
            for (std::size_t i = 0; i < invMetric.size(); ++i) {
                invMetric[i] = (n / (n + 5.0)) * welford_[i].variance()
                    + 1e-3 * (5.0 / (n + 5.0));
            }
            ham_.setInvMetric(std::move(invMetric));
            ham_.refresh(z_);
            const double eps = ham_.findReasonableStepSize(z_, rng_);
            da_->restart(eps);
            setStepSize(eps);
        }
        if (t + 1 == warmup) {
            setStepSize(da_->adaptedStepSize());
            result.stepSize = da_->adaptedStepSize();
        }
    }

    /** Run one post-warmup iteration and record the draw. */
    void
    sampleIteration()
    {
        const double acceptStat = advance();
        acceptAccum_.add(acceptStat);
        result.draws.push_back(eval_.constrain(z_.q));
        result.logProbs.push_back(z_.logProb);
    }

    /** Finalize summary statistics. */
    void
    finish()
    {
        result.acceptRate = acceptAccum_.mean();
        result.totalGradEvals = eval_.numGradEvals();
        result.tapeNodesPerEval = eval_.lastTapeNodes();
    }

    ChainResult result;

  private:
    /** One transition of the configured kernel; returns accept stat. */
    double
    advance()
    {
        IterationStat stat{0, 0, false};
        double acceptStat = 0.0;
        switch (config_.algorithm) {
          case Algorithm::Nuts: {
              const NutsTransition t = nuts_.transition(z_, rng_);
              stat.gradEvals = t.gradEvals;
              stat.treeDepth = t.depth;
              stat.divergent = t.divergent;
              acceptStat = t.acceptStat;
              break;
          }
          case Algorithm::Hmc: {
              const HmcTransition t = hmc_.transition(z_, rng_);
              stat.gradEvals = t.gradEvals;
              stat.treeDepth =
                  static_cast<std::uint16_t>(config_.hmcLeapfrogSteps);
              stat.divergent = t.divergent;
              acceptStat = t.acceptStat;
              break;
          }
          case Algorithm::Mh: {
              const MhTransition t = mh_.transition(z_.q, z_.logProb, rng_);
              acceptStat = t.acceptProb;
              break;
          }
          case Algorithm::Slice: {
              const SliceTransition t = slice_.sweep(z_.q, z_.logProb, rng_);
              // Density evaluations are the slice sampler's work unit.
              stat.gradEvals = t.evals;
              // Report evals per coordinate (used for width tuning).
              acceptStat = static_cast<double>(t.evals)
                  / static_cast<double>(z_.q.size());
              break;
          }
        }
        if (stat.divergent && !result.draws.empty())
            ++result.divergences;
        result.iterStats.push_back(stat);
        return acceptStat;
    }

    void
    setStepSize(double eps)
    {
        nuts_.setStepSize(eps);
        hmc_.setStepSize(eps);
    }

    const Config& config_;
    ppl::Evaluator eval_;
    Hamiltonian ham_;
    Rng rng_;
    NutsSampler nuts_;
    HmcSampler hmc_;
    MhSampler mh_;
    SliceSampler slice_;
    PhasePoint z_;
    std::unique_ptr<DualAveraging> da_;
    std::vector<RunningStats> welford_;
    RunningStats acceptAccum_;
};

} // namespace

std::vector<double>
findInitialPoint(ppl::Evaluator& eval, Rng& rng)
{
    for (int attempt = 0; attempt < 100; ++attempt) {
        std::vector<double> q(eval.dim());
        for (double& qi : q)
            qi = rng.uniform(-2.0, 2.0);
        std::vector<double> grad;
        const double lp = eval.logProbGrad(q, grad);
        bool gradFinite = std::isfinite(lp);
        for (double g : grad)
            gradFinite = gradFinite && std::isfinite(g);
        if (gradFinite)
            return q;
    }
    throw Error("model '" + eval.model().name()
                + "': no finite-density initial point in 100 attempts");
}

RunResult
run(const ppl::Model& model, const Config& config,
    const IterationMonitor& monitor)
{
    BAYES_CHECK(config.chains >= 1, "need at least one chain");
    BAYES_CHECK(config.iterations > config.resolvedWarmup(),
                "iterations must exceed warmup");

    BAYES_CHECK(!(config.parallelChains && monitor),
                "parallel chains cannot run with an iteration monitor; "
                "use the lockstep (sequential) schedule for elision");

    Rng master(config.seed);
    std::vector<std::unique_ptr<ChainState>> states;
    states.reserve(config.chains);
    for (int c = 0; c < config.chains; ++c)
        states.push_back(
            std::make_unique<ChainState>(model, config, master.fork()));

    const int warmup = config.resolvedWarmup();
    const int sampling = config.iterations - warmup;

    if (config.parallelChains) {
        // One thread per chain; chains are fully independent, so the
        // result is draw-for-draw identical to the lockstep schedule.
        std::vector<std::thread> threads;
        threads.reserve(config.chains);
        for (auto& chain : states) {
            threads.emplace_back([&chain, warmup, sampling] {
                for (int t = 0; t < warmup; ++t)
                    chain->warmupIteration(t);
                for (int t = 0; t < sampling; ++t)
                    chain->sampleIteration();
            });
        }
        for (auto& thread : threads)
            thread.join();
        RunResult out;
        out.chains.resize(config.chains);
        for (int c = 0; c < config.chains; ++c) {
            states[c]->finish();
            out.chains[c] = std::move(states[c]->result);
        }
        return out;
    }

    for (int t = 0; t < warmup; ++t)
        for (auto& chain : states)
            chain->warmupIteration(t);

    RunResult out;
    out.chains.resize(config.chains);

    for (int t = 0; t < sampling; ++t) {
        for (auto& chain : states)
            chain->sampleIteration();
        if (monitor) {
            // Expose partial results without copying draw storage: move
            // views in, ask, and move back.
            for (int c = 0; c < config.chains; ++c)
                out.chains[c] = std::move(states[c]->result);
            const bool stop = monitor(t + 1, out.chains);
            for (int c = 0; c < config.chains; ++c)
                states[c]->result = std::move(out.chains[c]);
            if (stop)
                break;
        }
    }

    for (int c = 0; c < config.chains; ++c) {
        states[c]->finish();
        out.chains[c] = std::move(states[c]->result);
    }
    return out;
}

} // namespace bayes::samplers
