/**
 * @file
 * Workload profiling for the architecture model. profileWorkload runs a
 * short, real NUTS adaptation per chain (so the captured behavior is
 * post-warmup steady state), then records one instrumented gradient
 * evaluation per chain: its memory trace, tape size, and op-class mix.
 * Each chain owns a separate evaluator, so chains occupy disjoint
 * arenas — exactly the "every chain fetches data independently"
 * property behind the paper's multicore LLC contention.
 */
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "archsim/trace.hpp"
#include "ppl/model.hpp"

namespace bayes::archsim {

/** Steady-state profile of one chain's gradient evaluation. */
struct EvalProfile
{
    /** Memory accesses of one representative gradient evaluation. */
    std::vector<Access> trace;
    /** Tape nodes per evaluation. */
    std::size_t tapeNodes = 0;
    /** Node count per ad::OpClass. */
    std::array<std::uint64_t, ad::kNumOpClasses> opCounts{};
    /** Unconstrained dimensionality. */
    std::size_t dim = 0;
    /** Bytes of observed data streamed per evaluation. */
    std::size_t dataBytes = 0;
};

/** Per-chain steady-state profiles of a workload. */
struct WorkloadProfile
{
    std::vector<EvalProfile> chains;
};

/**
 * Profile @p model with @p chains instrumented chains.
 * @param warmupIters  adaptation iterations before capturing (enough to
 *                     reach a representative step size / position)
 * @param scalarLikelihood  profile the reference per-observation scalar
 *                     path (`Model::logProbScalar`) instead of the
 *                     fused-kernel path — the implementation the paper
 *                     characterizes as LLC-bound
 */
WorkloadProfile profileWorkload(const ppl::Model& model, int chains,
                                int warmupIters = 30,
                                std::uint64_t seed = 20190331,
                                bool scalarLikelihood = false);

/**
 * Profile one K-lane batched gradient evaluation
 * (Evaluator::logProbGradBatch): each lane is adapted to its own
 * representative point, then a single instrumented evaluation serves
 * all lanes through one shared evaluator — the trace shows one data
 * pass where profileWorkload's per-chain traces show K. The batched
 * counterpart of one chain's EvalProfile.
 */
EvalProfile profileBatchedEval(const ppl::Model& model, int lanes,
                               int warmupIters = 30,
                               std::uint64_t seed = 20190331,
                               bool scalarLikelihood = false);

} // namespace bayes::archsim
