#include "workloads/animal_survival.hpp"

#include <cmath>
#include <span>

#include "math/distributions.hpp"
#include "math/vec_kernels.hpp"

namespace bayes::workloads {

AnimalSurvival::AnimalSurvival(double dataScale)
    : Workload(
          WorkloadInfo{
              "survival", "Cormack-Jolly-Seber",
              "Estimating animal survival probabilities",
              "Kery & Schaub, BPA 2011 [27]",
              "capture-recapture histories of tagged animals",
              /*defaultIterations=*/1200},
          dataScale)
{
    Rng rng = dataRng();
    numOccasions_ = 14;
    numGroups_ = 20;
    const std::size_t individuals = scaled(1700);

    const double muPhiTrue = 1.1;   // survival ~0.75
    const double sigmaPhiTrue = 0.3;
    const double muPTrue = -0.4;    // recapture ~0.40
    const double sigmaEpsTrue = 0.5;

    std::vector<double> phiTrue(numOccasions_ - 1);
    for (auto& f : phiTrue)
        f = math::invLogit(rng.normal(muPhiTrue, sigmaPhiTrue));
    std::vector<double> epsTrue(numGroups_);
    for (auto& e : epsTrue)
        e = rng.normal(0.0, sigmaEpsTrue);

    history_.assign(individuals * numOccasions_, 0);
    for (std::size_t i = 0; i < individuals; ++i) {
        const int g = static_cast<int>(rng.uniformInt(numGroups_));
        const int f =
            static_cast<int>(rng.uniformInt(numOccasions_ - 2));
        group_.push_back(g);
        firstCapture_.push_back(f);
        history_[i * numOccasions_ + static_cast<std::size_t>(f)] = 1;
        int last = f;
        bool alive = true;
        for (std::size_t t = static_cast<std::size_t>(f) + 1;
             t < numOccasions_ && alive; ++t) {
            alive = rng.bernoulli(phiTrue[t - 1]) != 0;
            if (!alive)
                break;
            const double pCap =
                math::invLogit(muPTrue + epsTrue[static_cast<std::size_t>(g)]);
            if (rng.bernoulli(pCap)) {
                history_[i * numOccasions_ + t] = 1;
                last = static_cast<int>(t);
            }
        }
        lastSighting_.push_back(last);
    }

    // Count how often each log-probability term enters the likelihood;
    // the fused path replaces the per-individual loop with dot products
    // against these data-only weights.
    phiCount_.assign(numOccasions_ - 1, 0.0);
    pCount_.assign(numGroups_ * (numOccasions_ - 1), 0.0);
    p1mCount_.assign(numGroups_ * (numOccasions_ - 1), 0.0);
    chiCount_.assign(numGroups_ * numOccasions_, 0.0);
    for (std::size_t i = 0; i < firstCapture_.size(); ++i) {
        const auto f = static_cast<std::size_t>(firstCapture_[i]);
        const auto l = static_cast<std::size_t>(lastSighting_[i]);
        const auto g = static_cast<std::size_t>(group_[i]);
        for (std::size_t t = f + 1; t <= l; ++t) {
            phiCount_[t - 1] += 1.0;
            if (history_[i * numOccasions_ + t])
                pCount_[g * (numOccasions_ - 1) + (t - 1)] += 1.0;
            else
                p1mCount_[g * (numOccasions_ - 1) + (t - 1)] += 1.0;
        }
        chiCount_[g * numOccasions_ + l] += 1.0;
    }

    setModeledDataBytes(history_.size() * sizeof(std::uint8_t)
                        + (firstCapture_.size() + lastSighting_.size()
                           + group_.size())
                            * sizeof(int));

    setLayout({
        {"mu_phi", 1, ppl::TransformKind::Identity, 0, 0},
        {"sigma_phi", 1, ppl::TransformKind::LowerBound, 0.0, 0},
        {"phi_raw", numOccasions_ - 1, ppl::TransformKind::Identity, 0, 0},
        {"mu_p", 1, ppl::TransformKind::Identity, 0, 0},
        {"p_raw", numOccasions_ - 1, ppl::TransformKind::Identity, 0, 0},
        {"sigma_eps", 1, ppl::TransformKind::LowerBound, 0.0, 0},
        {"eps", numGroups_, ppl::TransformKind::Identity, 0, 0},
    });
}

template <typename T>
T
AnimalSurvival::logDensity(const ppl::ParamView<T>& p) const
{
    using namespace bayes::math;
    const T& muPhi = p.scalar(kMuPhi);
    const T& sigmaPhi = p.scalar(kSigmaPhi);
    const T& muP = p.scalar(kMuP);
    const T& sigmaEps = p.scalar(kSigmaEps);
    const std::size_t numT = numOccasions_;

    T lp = normal_lpdf(muPhi, 0.0, 1.5) + normal_lpdf(sigmaPhi, 0.0, 1.0)
        + normal_lpdf(muP, 0.0, 1.5) + normal_lpdf(sigmaEps, 0.0, 1.0);

    // Hierarchical logit-scale survival and recapture parameters.
    lp += normal_lpdf_vec(p.block(kPhiRaw), muPhi, sigmaPhi);
    lp += normal_lpdf_vec(p.block(kPRaw), 0.0, 1.5);
    lp += normal_lpdf_vec(p.block(kEps), 0.0, sigmaEps);

    // Interval survival probabilities (shared by all individuals).
    std::vector<T> logPhi(numT - 1), log1mPhi(numT - 1);
    for (std::size_t t = 0; t + 1 < numT; ++t) {
        const T& raw = p.at(kPhiRaw, t);
        logPhi[t] = -log1pExp(-raw);
        log1mPhi[t] = -log1pExp(raw);
    }

    // Per-group recapture and the chi ("never seen again") recursion,
    // flattened to [g * (T-1) + t] so the count weights can dot them.
    std::vector<T> logP(numGroups_ * (numT - 1));
    std::vector<T> log1mP(numGroups_ * (numT - 1));
    std::vector<T> logChi(numGroups_ * numT, T(0.0));
    std::vector<T> chi(numT);
    using std::exp;
    using std::log;
    using ad::exp;
    using ad::log;
    for (std::size_t g = 0; g < numGroups_; ++g) {
        const std::size_t row = g * (numT - 1);
        for (std::size_t t = 0; t + 1 < numT; ++t) {
            // Recapture probability at occasion t+1 for group g.
            const T eta = muP + p.at(kPRaw, t) + p.at(kEps, g);
            logP[row + t] = -log1pExp(-eta);
            log1mP[row + t] = -log1pExp(eta);
        }
        chi[numT - 1] = T(1.0);
        for (std::size_t t = numT - 1; t-- > 0;) {
            // chi_t = (1 - phi_t) + phi_t (1 - p_{t+1}) chi_{t+1}
            const T survivedMissed =
                exp(logPhi[t] + log1mP[row + t]) * chi[t + 1];
            chi[t] = exp(log1mPhi[t]) + survivedMissed;
        }
        // Only take logs where some individual was last seen at t;
        // unused entries stay constant zero and drop out of the dot.
        for (std::size_t t = 0; t < numT; ++t)
            if (chiCount_[g * numT + t] != 0.0)
                logChi[g * numT + t] = log(chi[t]);
    }

    // The whole per-individual loop collapses into four wide nodes.
    lp += dot_vec(std::span<const T>(logPhi),
                  std::span<const double>(phiCount_));
    lp += dot_vec(std::span<const T>(logP),
                  std::span<const double>(pCount_));
    lp += dot_vec(std::span<const T>(log1mP),
                  std::span<const double>(p1mCount_));
    lp += dot_vec(std::span<const T>(logChi),
                  std::span<const double>(chiCount_));
    return lp;
}

template <typename T>
T
AnimalSurvival::logDensityScalar(const ppl::ParamView<T>& p) const
{
    using namespace bayes::math;
    const T& muPhi = p.scalar(kMuPhi);
    const T& sigmaPhi = p.scalar(kSigmaPhi);
    const T& muP = p.scalar(kMuP);
    const T& sigmaEps = p.scalar(kSigmaEps);
    const std::size_t numT = numOccasions_;

    T lp = normal_lpdf(muPhi, 0.0, 1.5) + normal_lpdf(sigmaPhi, 0.0, 1.0)
        + normal_lpdf(muP, 0.0, 1.5) + normal_lpdf(sigmaEps, 0.0, 1.0);

    // Hierarchical logit-scale survival and recapture parameters.
    for (std::size_t t = 0; t + 1 < numT; ++t) {
        // bayes-lint: allow(R007): reference scalar path; fused twin above
        lp += normal_lpdf(p.at(kPhiRaw, t), muPhi, sigmaPhi);
        // bayes-lint: allow(R007): reference scalar path; fused twin above
        lp += normal_lpdf(p.at(kPRaw, t), 0.0, 1.5);
    }
    for (std::size_t g = 0; g < numGroups_; ++g)
        // bayes-lint: allow(R007): reference scalar path; fused twin above
        lp += normal_lpdf(p.at(kEps, g), 0.0, sigmaEps);

    // Interval survival probabilities (shared by all individuals).
    std::vector<T> logPhi(numT - 1), log1mPhi(numT - 1);
    for (std::size_t t = 0; t + 1 < numT; ++t) {
        const T& raw = p.at(kPhiRaw, t);
        logPhi[t] = -log1pExp(-raw);
        log1mPhi[t] = -log1pExp(raw);
    }

    // Per-group recapture and the chi ("never seen again") recursion:
    // chi[g][t] = P(not resighted after t | alive at t, group g).
    std::vector<std::vector<T>> logP(numGroups_, std::vector<T>(numT - 1));
    std::vector<std::vector<T>> log1mP(numGroups_,
                                       std::vector<T>(numT - 1));
    std::vector<std::vector<T>> chi(numGroups_, std::vector<T>(numT));
    using std::exp;
    using std::log;
    using ad::exp;
    using ad::log;
    for (std::size_t g = 0; g < numGroups_; ++g) {
        for (std::size_t t = 0; t + 1 < numT; ++t) {
            // Recapture probability at occasion t+1 for group g.
            const T eta = muP + p.at(kPRaw, t) + p.at(kEps, g);
            logP[g][t] = -log1pExp(-eta);
            log1mP[g][t] = -log1pExp(eta);
        }
        chi[g][numT - 1] = T(1.0);
        for (std::size_t t = numT - 1; t-- > 0;) {
            // chi_t = (1 - phi_t) + phi_t (1 - p_{t+1}) chi_{t+1}
            const T survivedMissed =
                exp(logPhi[t] + log1mP[g][t]) * chi[g][t + 1];
            chi[g][t] = exp(log1mPhi[t]) + survivedMissed;
        }
    }

    for (std::size_t i = 0; i < firstCapture_.size(); ++i) {
        const auto f = static_cast<std::size_t>(firstCapture_[i]);
        const auto l = static_cast<std::size_t>(lastSighting_[i]);
        const auto g = static_cast<std::size_t>(group_[i]);
        for (std::size_t t = f + 1; t <= l; ++t) {
            lp += logPhi[t - 1];
            lp += history_[i * numT + t] ? logP[g][t - 1]
                                         : log1mP[g][t - 1];
        }
        lp += log(chi[g][l]);
    }
    return lp;
}

double
AnimalSurvival::logProb(const ppl::ParamView<double>& p) const
{
    return logDensity(p);
}

ad::Var
AnimalSurvival::logProb(const ppl::ParamView<ad::Var>& p) const
{
    return logDensity(p);
}

double
AnimalSurvival::logProbScalar(const ppl::ParamView<double>& p) const
{
    return logDensityScalar(p);
}

ad::Var
AnimalSurvival::logProbScalar(const ppl::ParamView<ad::Var>& p) const
{
    return logDensityScalar(p);
}

std::vector<double>
AnimalSurvival::dataSufficientStats() const
{
    // The CJS likelihood depends on the histories only through the
    // precomputed per-(group, occasion) count tables, so their sums
    // (plus position-weighted checksums to distinguish permutations)
    // are exactly sufficient.
    auto tableStats = [](const std::vector<double>& table,
                         double& sum, double& checksum) {
        sum = 0.0;
        checksum = 0.0;
        for (std::size_t i = 0; i < table.size(); ++i) {
            sum += table[i];
            checksum += table[i] * static_cast<double>(i + 1);
        }
    };
    double phiSum = 0.0, phiChk = 0.0;
    double pSum = 0.0, pChk = 0.0;
    double p1mSum = 0.0, p1mChk = 0.0;
    double chiSum = 0.0, chiChk = 0.0;
    tableStats(phiCount_, phiSum, phiChk);
    tableStats(pCount_, pSum, pChk);
    tableStats(p1mCount_, p1mSum, p1mChk);
    tableStats(chiCount_, chiSum, chiChk);
    return {static_cast<double>(firstCapture_.size()),
            static_cast<double>(numOccasions_),
            static_cast<double>(numGroups_),
            phiSum, phiChk,
            pSum, pChk,
            p1mSum, p1mChk,
            chiSum, chiChk};
}

} // namespace bayes::workloads
