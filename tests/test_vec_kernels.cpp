/**
 * @file
 * Fused vectorized kernel tests: every kernel in math/vec_kernels.hpp
 * is pinned against the scalar-loop tape path (values to 1e-12
 * relative, gradients to 1e-10 relative), cross-checked against central
 * finite differences, and the wide-node reverse sweep is exercised
 * across edge counts K ∈ {0, 1, 2, 7, 1000}. The ported workloads are
 * then compared end-to-end: fused vs scalar `Evaluator` at randomized
 * unconstrained points.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <span>
#include <vector>

#include "ad/tape.hpp"
#include "ad/var.hpp"
#include "math/distributions.hpp"
#include "math/vec_kernels.hpp"
#include "ppl/evaluator.hpp"
#include "support/rng.hpp"
#include "workloads/suite.hpp"

namespace bayes {
namespace {

constexpr double kValueRelTol = 1e-12;
constexpr double kGradRelTol = 1e-10;

double
relErr(double a, double b)
{
    return std::fabs(a - b) / std::max({1.0, std::fabs(a), std::fabs(b)});
}

std::vector<ad::Var>
makeLeaves(ad::Tape& tape, const std::vector<double>& vals)
{
    std::vector<ad::Var> out;
    out.reserve(vals.size());
    for (double v : vals)
        out.push_back(ad::leaf(tape, v));
    return out;
}

/**
 * Compare a fused and a scalar tape program over the same leaf values:
 * equal log densities and equal adjoints for every leaf.
 */
void
expectSamePosterior(
    const std::vector<double>& leafVals,
    const std::function<ad::Var(std::span<const ad::Var>)>& fused,
    const std::function<ad::Var(std::span<const ad::Var>)>& scalar)
{
    ad::Tape tf;
    const auto lf = makeLeaves(tf, leafVals);
    const ad::Var yf = fused(lf);
    std::vector<double> gf;
    tf.gradient(yf.id(), gf);

    ad::Tape ts;
    const auto ls = makeLeaves(ts, leafVals);
    const ad::Var ys = scalar(ls);
    std::vector<double> gs;
    ts.gradient(ys.id(), gs);

    EXPECT_LT(relErr(yf.value(), ys.value()), kValueRelTol)
        << "fused " << yf.value() << " vs scalar " << ys.value();
    for (std::size_t i = 0; i < leafVals.size(); ++i)
        EXPECT_LT(relErr(gf[lf[i].id()], gs[ls[i].id()]), kGradRelTol)
            << "leaf " << i << ": fused " << gf[lf[i].id()] << " vs scalar "
            << gs[ls[i].id()];
}

/** Central finite difference of a fused value over leaf i. */
void
expectMatchesFiniteDifference(
    const std::vector<double>& leafVals,
    const std::function<ad::Var(std::span<const ad::Var>)>& fused,
    double h = 1e-6)
{
    ad::Tape tape;
    const auto leaves = makeLeaves(tape, leafVals);
    const ad::Var y = fused(leaves);
    std::vector<double> grad;
    tape.gradient(y.id(), grad);
    for (std::size_t i = 0; i < leafVals.size(); ++i) {
        auto at = [&](double delta) {
            ad::Tape t2;
            std::vector<double> shifted = leafVals;
            shifted[i] += delta;
            const auto l2 = makeLeaves(t2, shifted);
            return fused(l2).value();
        };
        const double numeric = (at(h) - at(-h)) / (2.0 * h);
        EXPECT_NEAR(grad[leaves[i].id()], numeric,
                    1e-4 * std::max(1.0, std::fabs(numeric)))
            << "leaf " << i;
    }
}

// ---------------------------------------------------------------------
// Kernel-by-kernel: fused vs scalar loop
// ---------------------------------------------------------------------

std::vector<double>
randomData(Rng& rng, std::size_t n, double lo, double hi)
{
    std::vector<double> out(n);
    for (auto& v : out)
        v = rng.uniform(lo, hi);
    return out;
}

TEST(VecKernels, NormalOverDataMatchesScalarLoop)
{
    Rng rng(71);
    for (int rep = 0; rep < 5; ++rep) {
        const auto ys = randomData(rng, 40 + 30 * rep, -3.0, 5.0);
        const std::vector<double> leafVals{rng.uniform(-2.0, 2.0),
                                           rng.uniform(0.3, 2.5)};
        auto fused = [&](std::span<const ad::Var> p) {
            return math::normal_lpdf_vec(std::span<const double>(ys), p[0],
                                         p[1]);
        };
        auto scalar = [&](std::span<const ad::Var> p) {
            ad::Var lp(0.0);
            for (double y : ys)
                lp += math::normal_lpdf(y, p[0], p[1]);
            return lp;
        };
        expectSamePosterior(leafVals, fused, scalar);
        expectMatchesFiniteDifference(leafVals, fused);
    }
}

TEST(VecKernels, NormalOverParamsMatchesScalarLoop)
{
    Rng rng(72);
    const std::size_t n = 25;
    std::vector<double> leafVals = randomData(rng, n, -2.0, 2.0);
    leafVals.push_back(0.4);  // mu
    leafVals.push_back(1.3);  // sigma
    auto fused = [&](std::span<const ad::Var> p) {
        return math::normal_lpdf_vec(p.subspan(0, n), p[n], p[n + 1]);
    };
    auto scalar = [&](std::span<const ad::Var> p) {
        ad::Var lp(0.0);
        for (std::size_t i = 0; i < n; ++i)
            lp += math::normal_lpdf(p[i], p[n], p[n + 1]);
        return lp;
    };
    expectSamePosterior(leafVals, fused, scalar);
    expectMatchesFiniteDifference(leafVals, fused);
}

TEST(VecKernels, NormalPerElementMuMatchesScalarLoop)
{
    Rng rng(73);
    const std::size_t n = 30;
    const auto ys = randomData(rng, n, -4.0, 4.0);
    std::vector<double> leafVals = randomData(rng, n, -2.0, 2.0);
    leafVals.push_back(0.8);  // sigma
    auto fused = [&](std::span<const ad::Var> p) {
        return math::normal_lpdf_vec(std::span<const double>(ys),
                                     p.subspan(0, n), p[n]);
    };
    auto scalar = [&](std::span<const ad::Var> p) {
        ad::Var lp(0.0);
        for (std::size_t i = 0; i < n; ++i)
            lp += math::normal_lpdf(ys[i], p[i], p[n]);
        return lp;
    };
    expectSamePosterior(leafVals, fused, scalar);
}

TEST(VecKernels, StdNormalMatchesScalarLoop)
{
    Rng rng(74);
    const auto leafVals = randomData(rng, 33, -2.5, 2.5);
    auto fused = [&](std::span<const ad::Var> p) {
        return math::std_normal_lpdf_vec(p);
    };
    auto scalar = [&](std::span<const ad::Var> p) {
        ad::Var lp(0.0);
        for (const ad::Var& z : p)
            lp += math::std_normal_lpdf(z);
        return lp;
    };
    expectSamePosterior(leafVals, fused, scalar);
}

TEST(VecKernels, ExponentialOverParamsMatchesScalarLoop)
{
    Rng rng(75);
    const std::size_t n = 12;
    std::vector<double> leafVals = randomData(rng, n, 0.05, 4.0);
    leafVals.push_back(0.25);  // rate
    auto fused = [&](std::span<const ad::Var> p) {
        return math::exponential_lpdf_vec(p.subspan(0, n), p[n]);
    };
    auto scalar = [&](std::span<const ad::Var> p) {
        ad::Var lp(0.0);
        for (std::size_t i = 0; i < n; ++i)
            lp += math::exponential_lpdf(p[i], p[n]);
        return lp;
    };
    expectSamePosterior(leafVals, fused, scalar);
    expectMatchesFiniteDifference(leafVals, fused);
}

TEST(VecKernels, GammaOverDataMatchesScalarLoop)
{
    Rng rng(76);
    const auto ys = randomData(rng, 50, 0.1, 6.0);
    const std::vector<double> leafVals{2.2, 1.7};  // shape, rate
    auto fused = [&](std::span<const ad::Var> p) {
        return math::gamma_lpdf_vec(std::span<const double>(ys), p[0], p[1]);
    };
    auto scalar = [&](std::span<const ad::Var> p) {
        ad::Var lp(0.0);
        for (double y : ys)
            lp += math::gamma_lpdf(y, p[0], p[1]);
        return lp;
    };
    expectSamePosterior(leafVals, fused, scalar);
    expectMatchesFiniteDifference(leafVals, fused);
}

TEST(VecKernels, NegBinomial2MatchesScalarLoop)
{
    Rng rng(77);
    std::vector<long> ys(60);
    for (auto& y : ys)
        y = rng.poisson(4.0);
    const std::vector<double> leafVals{3.6, 2.1};  // mu, phi
    auto fused = [&](std::span<const ad::Var> p) {
        return math::neg_binomial_2_lpmf_vec(std::span<const long>(ys),
                                             p[0], p[1]);
    };
    auto scalar = [&](std::span<const ad::Var> p) {
        ad::Var lp(0.0);
        for (long y : ys)
            lp += math::neg_binomial_2_lpmf(y, p[0], p[1]);
        return lp;
    };
    expectSamePosterior(leafVals, fused, scalar);
    expectMatchesFiniteDifference(leafVals, fused);
}

TEST(VecKernels, BernoulliLogitGlmMatchesScalarLoop)
{
    Rng rng(78);
    const std::size_t n = 80, numK = 4;
    const auto x = randomData(rng, n * numK, -1.5, 1.5);
    std::vector<int> ys(n);
    for (auto& y : ys)
        y = rng.bernoulli(0.4);
    std::vector<double> leafVals = randomData(rng, numK, -1.0, 1.0);
    leafVals.push_back(0.3);  // alpha
    auto fused = [&](std::span<const ad::Var> p) {
        return math::bernoulli_logit_glm_lpmf(
            std::span<const int>(ys), std::span<const double>(x), p[numK],
            p.subspan(0, numK));
    };
    auto scalar = [&](std::span<const ad::Var> p) {
        ad::Var lp(0.0);
        for (std::size_t i = 0; i < n; ++i) {
            ad::Var eta = p[numK];
            for (std::size_t k = 0; k < numK; ++k)
                eta += p[k] * x[i * numK + k];
            lp += math::bernoulli_logit_lpmf(ys[i], eta);
        }
        return lp;
    };
    expectSamePosterior(leafVals, fused, scalar);
    expectMatchesFiniteDifference(leafVals, fused);
}

TEST(VecKernels, PoissonLogGlmWithGroupsAndOffsetMatchesScalarLoop)
{
    Rng rng(79);
    const std::size_t n = 90, numK = 3, numG = 5;
    const auto x = randomData(rng, n * numK, -1.0, 1.0);
    const auto offset = randomData(rng, n, -0.5, 0.5);
    std::vector<int> group(n);
    std::vector<long> ys(n);
    for (std::size_t i = 0; i < n; ++i) {
        group[i] = static_cast<int>(rng.uniformInt(numG));
        ys[i] = rng.poisson(3.0);
    }
    std::vector<double> leafVals = randomData(rng, numG, 0.2, 1.4);
    for (std::size_t k = 0; k < numK; ++k)
        leafVals.push_back(rng.uniform(-0.5, 0.5));
    auto fused = [&](std::span<const ad::Var> p) {
        return math::poisson_log_glm_lpmf(
            std::span<const long>(ys), std::span<const double>(x),
            std::span<const int>(group), std::span<const double>(offset),
            p.subspan(0, numG), p.subspan(numG, numK));
    };
    auto scalar = [&](std::span<const ad::Var> p) {
        ad::Var lp(0.0);
        for (std::size_t i = 0; i < n; ++i) {
            ad::Var eta = p[static_cast<std::size_t>(group[i])];
            for (std::size_t k = 0; k < numK; ++k)
                eta += p[numG + k] * x[i * numK + k];
            eta += offset[i];
            lp += math::poisson_log_lpmf(ys[i], eta);
        }
        return lp;
    };
    expectSamePosterior(leafVals, fused, scalar);
    expectMatchesFiniteDifference(leafVals, fused);
}

TEST(VecKernels, NormalIdGlmMatchesScalarLoop)
{
    Rng rng(80);
    const std::size_t n = 70, numK = 3;
    const auto x = randomData(rng, n * numK, -2.0, 2.0);
    const auto ys = randomData(rng, n, -3.0, 3.0);
    std::vector<double> leafVals = randomData(rng, numK, -1.0, 1.0);
    leafVals.push_back(0.6);  // alpha
    leafVals.push_back(0.9);  // sigma
    auto fused = [&](std::span<const ad::Var> p) {
        return math::normal_id_glm_lpdf(
            std::span<const double>(ys), std::span<const double>(x),
            p[numK], p.subspan(0, numK), p[numK + 1]);
    };
    auto scalar = [&](std::span<const ad::Var> p) {
        ad::Var lp(0.0);
        for (std::size_t i = 0; i < n; ++i) {
            ad::Var mu = p[numK];
            for (std::size_t k = 0; k < numK; ++k)
                mu += p[k] * x[i * numK + k];
            lp += math::normal_lpdf(ys[i], mu, p[numK + 1]);
        }
        return lp;
    };
    expectSamePosterior(leafVals, fused, scalar);
    expectMatchesFiniteDifference(leafVals, fused);
}

TEST(VecKernels, BernoulliLogitScaledGlmMatchesScalarLoop)
{
    Rng rng(81);
    const std::size_t n = 60, numK = 5;
    const auto x = randomData(rng, n * numK, 0.0, 1.0);
    std::vector<int> ys(n);
    for (auto& y : ys)
        y = rng.bernoulli(0.5);
    std::vector<double> leafVals = randomData(rng, numK, 0.1, 2.0);
    leafVals.push_back(1.8);  // scale
    leafVals.push_back(2.2);  // shift
    auto fused = [&](std::span<const ad::Var> p) {
        return math::bernoulli_logit_scaled_glm_lpmf(
            std::span<const int>(ys), std::span<const double>(x),
            p.subspan(0, numK), p[numK], p[numK + 1]);
    };
    auto scalar = [&](std::span<const ad::Var> p) {
        ad::Var lp(0.0);
        for (std::size_t i = 0; i < n; ++i) {
            ad::Var score(0.0);
            for (std::size_t k = 0; k < numK; ++k)
                score += p[k] * x[i * numK + k];
            lp += math::bernoulli_logit_lpmf(ys[i],
                                             p[numK]
                                                 * (score - p[numK + 1]));
        }
        return lp;
    };
    expectSamePosterior(leafVals, fused, scalar);
    expectMatchesFiniteDifference(leafVals, fused);
}

TEST(VecKernels, DotVecMatchesScalarLoop)
{
    Rng rng(82);
    const std::size_t n = 20;
    const auto ws = randomData(rng, n, -3.0, 3.0);
    const auto leafVals = randomData(rng, n, -2.0, 2.0);
    auto fused = [&](std::span<const ad::Var> p) {
        return math::dot_vec(p, std::span<const double>(ws));
    };
    auto scalar = [&](std::span<const ad::Var> p) {
        ad::Var lp(0.0);
        for (std::size_t i = 0; i < n; ++i)
            lp += p[i] * ws[i];
        return lp;
    };
    expectSamePosterior(leafVals, fused, scalar);
}

TEST(VecKernels, AllDoubleInstantiationBuildsNoTape)
{
    const std::vector<double> ys{0.3, -1.2, 2.4};
    const double lpFused =
        math::normal_lpdf_vec(std::span<const double>(ys), 0.5, 1.2);
    double lpScalar = 0.0;
    for (double y : ys)
        lpScalar += math::normal_lpdf(y, 0.5, 1.2);
    EXPECT_LT(relErr(lpFused, lpScalar), kValueRelTol);
}

// ---------------------------------------------------------------------
// Wide-node sweep across edge counts
// ---------------------------------------------------------------------

class WideNodeSweep : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(WideNodeSweep, AdjointsScatterThroughTheEdgeArena)
{
    const std::size_t numEdges = GetParam();
    ad::Tape tape;
    std::vector<ad::NodeId> parents;
    std::vector<double> weights;
    std::vector<ad::Var> leaves;
    for (std::size_t k = 0; k < numEdges; ++k) {
        leaves.push_back(ad::leaf(tape, 0.1 * static_cast<double>(k)));
        parents.push_back(leaves.back().id());
        weights.push_back(1.0 + static_cast<double>(k));
    }
    const ad::NodeId wide =
        tape.pushWide(parents, weights, ad::OpClass::Special);
    // Feed the wide node through a downstream op so its adjoint is not
    // the seed itself.
    const ad::Var w(&tape, 0.0, wide);
    const ad::Var y = w * 2.0;
    std::vector<double> grad;
    tape.gradient(y.id(), grad);
    for (std::size_t k = 0; k < numEdges; ++k)
        EXPECT_DOUBLE_EQ(grad[leaves[k].id()], 2.0 * weights[k]) << k;
    EXPECT_EQ(tape.edgeCount(), numEdges);
    EXPECT_EQ(tape.wideCount(), 1u);
}

INSTANTIATE_TEST_SUITE_P(EdgeCounts, WideNodeSweep,
                         ::testing::Values(0u, 1u, 2u, 7u, 1000u));

TEST(WideNode, MixesWithFixedNodesInOneSweep)
{
    ad::Tape tape;
    const ad::Var a = ad::leaf(tape, 1.5);
    const ad::Var b = ad::leaf(tape, -0.5);
    const ad::Var fixedPath = a * b + ad::exp(a);
    const std::vector<ad::NodeId> parents{a.id(), b.id()};
    const std::vector<double> weights{3.0, -2.0};
    const ad::Var widePath(
        &tape, 3.0 * 1.5 + (-2.0) * (-0.5),
        tape.pushWide(parents, weights, ad::OpClass::Special));
    const ad::Var y = fixedPath + widePath;
    std::vector<double> grad;
    tape.gradient(y.id(), grad);
    EXPECT_DOUBLE_EQ(grad[a.id()], -0.5 + std::exp(1.5) + 3.0);
    EXPECT_DOUBLE_EQ(grad[b.id()], 1.5 - 2.0);
}

// ---------------------------------------------------------------------
// Workload-level: fused vs scalar evaluators at random points
// ---------------------------------------------------------------------

class FusedWorkload : public ::testing::TestWithParam<const char*>
{
};

TEST_P(FusedWorkload, MatchesScalarPathAtRandomPoints)
{
    const auto wl = workloads::makeWorkload(GetParam(), 0.5);
    ppl::Evaluator fused(*wl);
    ppl::Evaluator scalar(*wl);
    scalar.setScalarLikelihood(true);
    Rng rng(90);
    for (int rep = 0; rep < 3; ++rep) {
        std::vector<double> q(fused.dim());
        for (auto& qi : q)
            qi = rng.normal(0.0, 0.5);
        const double lpF = fused.logProb(q);
        const double lpS = scalar.logProb(q);
        EXPECT_LT(relErr(lpF, lpS), kValueRelTol) << lpF << " vs " << lpS;

        std::vector<double> gF, gS;
        const double lpgF = fused.logProbGrad(q, gF);
        const double lpgS = scalar.logProbGrad(q, gS);
        EXPECT_LT(relErr(lpgF, lpgS), kValueRelTol);
        ASSERT_EQ(gF.size(), gS.size());
        for (std::size_t i = 0; i < gF.size(); ++i)
            EXPECT_LT(relErr(gF[i], gS[i]), kGradRelTol)
                << GetParam() << " coord " << i << ": " << gF[i] << " vs "
                << gS[i];
        // The point of fusion: far fewer nodes on the same model.
        EXPECT_LT(fused.lastTapeNodes(), scalar.lastTapeNodes());
    }
}

INSTANTIATE_TEST_SUITE_P(PortedWorkloads, FusedWorkload,
                         ::testing::Values("ad", "12cities", "tickets",
                                           "disease", "votes", "survival"));

} // namespace
} // namespace bayes
