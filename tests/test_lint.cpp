/**
 * @file
 * Drives tools/bayes_lint.py from ctest (`-L static`):
 *
 *  1. the fixture self-test — every rule must fire exactly on the
 *     seeded violations under tests/lint_fixtures/ and nowhere else,
 *     and justified waivers must suppress;
 *  2. a clean run over the real repo;
 *  3. the R004 drift proof — removing a catalogue row from a copy of
 *     docs/observability.md must fail the lint (acceptance criterion:
 *     the metric catalogue cannot silently diverge from src/).
 *
 * Paths come in via compile definitions (BAYES_LINT_SCRIPT,
 * BAYES_REPO_ROOT, BAYES_PYTHON) so the test works from any build dir.
 */
#include <gtest/gtest.h>

#include <sys/wait.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

namespace {

struct CommandResult
{
    int status = -1;
    std::string output;
};

/** Run a shell command, capturing stdout+stderr and the exit status. */
CommandResult
run(const std::string& cmd)
{
    CommandResult r;
    FILE* pipe = ::popen((cmd + " 2>&1").c_str(), "r");
    if (!pipe)
        return r;
    char buf[4096];
    while (std::fgets(buf, sizeof buf, pipe))
        r.output += buf;
    const int rc = ::pclose(pipe);
    r.status = WIFEXITED(rc) ? WEXITSTATUS(rc) : -1;
    return r;
}

std::string
lintCmd(const std::string& args)
{
    return std::string(BAYES_PYTHON) + " " + BAYES_LINT_SCRIPT + " " + args;
}

const std::string kRoot = BAYES_REPO_ROOT;

} // namespace

TEST(Lint, FixtureSelfTestFiresEveryRuleExactlyWhereSeeded)
{
    const auto r = run(
        lintCmd("--self-test " + kRoot + "/tests/lint_fixtures/repo"));
    EXPECT_EQ(r.status, 0) << r.output;
    // The fixture set covers every text rule, including waiver hygiene
    // and the cross-cutting passes (layering, guarded-by, clocks).
    for (const char* rule :
         {"R000", "R001", "R002", "R003", "R004", "R005", "R007", "R008",
          "R009", "R010", "R011", "R012", "R013", "R014"}) {
        EXPECT_NE(r.output.find(rule), std::string::npos)
            << "fixture run never mentions " << rule << "\n"
            << r.output;
    }
}

TEST(Lint, ListRulesPrintsTheCatalogue)
{
    const auto r = run(lintCmd("--list-rules"));
    EXPECT_EQ(r.status, 0) << r.output;
    // Every rule id appears with a one-line summary (id, two spaces,
    // text) — the same catalogue docs/static-analysis.md tabulates.
    for (const char* rule : {"R000", "R006", "R010", "R011", "R012"})
        EXPECT_NE(r.output.find(rule), std::string::npos) << r.output;
    std::istringstream lines(r.output);
    std::string line;
    while (std::getline(lines, line)) {
        ASSERT_GE(line.size(), 7u) << line;
        EXPECT_EQ(line[0], 'R') << line;
        EXPECT_EQ(line.substr(4, 2), "  ") << line;
        EXPECT_NE(line[6], ' ') << line;
    }
}

TEST(Lint, RepeatableRuleFlagSelectsExactlyThoseRules)
{
    const auto r = run(
        lintCmd("--root " + kRoot + "/tests/lint_fixtures/repo"
                " --rule R005 --rule R012"));
    EXPECT_EQ(r.status, 1) << r.output;
    EXPECT_NE(r.output.find("R005"), std::string::npos) << r.output;
    EXPECT_NE(r.output.find("R012"), std::string::npos) << r.output;
    // Rules not selected stay silent even though their fixtures are
    // seeded with violations.
    EXPECT_EQ(r.output.find("R002"), std::string::npos) << r.output;
    EXPECT_EQ(r.output.find("R010"), std::string::npos) << r.output;
}

TEST(Lint, UnknownRuleIdIsAUsageError)
{
    const auto r = run(lintCmd("--root " + kRoot + " --rule R999"));
    EXPECT_EQ(r.status, 2) << r.output;
    EXPECT_NE(r.output.find("R999"), std::string::npos) << r.output;
}

TEST(Lint, RealRepoIsClean)
{
    const auto r = run(lintCmd("--root " + kRoot));
    EXPECT_EQ(r.status, 0) << r.output;
}

TEST(Lint, FindingsAreClickableFileLineRule)
{
    const auto r = run(
        lintCmd("--root " + kRoot + "/tests/lint_fixtures/repo"));
    EXPECT_EQ(r.status, 1) << "seeded fixture violations must fail the lint";
    // Every finding line is `path:line: RNNN message`.
    std::istringstream lines(r.output);
    std::string line;
    int findings = 0;
    while (std::getline(lines, line)) {
        if (line.rfind("bayes-lint:", 0) == 0)
            continue; // summary line
        ++findings;
        const auto colon = line.find(':');
        ASSERT_NE(colon, std::string::npos) << line;
        const auto colon2 = line.find(':', colon + 1);
        ASSERT_NE(colon2, std::string::npos) << line;
        EXPECT_GT(std::atoi(line.c_str() + colon + 1), 0) << line;
        EXPECT_EQ(line[colon2 + 2], 'R') << line;
    }
    EXPECT_GE(findings, 10) << r.output;
}

TEST(Lint, R004CatalogueDriftFailsBothWays)
{
    // Copy the real catalogue, drop the first metric row, and lint the
    // real repo against the doctored doc: the removed row's metric is
    // still emitted from src/, so the lint must fail with R004.
    std::ifstream in(kRoot + "/docs/observability.md");
    ASSERT_TRUE(in.good());
    std::ostringstream doctored;
    std::string line;
    std::string removed;
    bool dropped = false;
    while (std::getline(in, line)) {
        if (!dropped && line.rfind("| `", 0) == 0) {
            removed = line.substr(3, line.find('`', 3) - 3);
            dropped = true;
            continue;
        }
        doctored << line << '\n';
    }
    ASSERT_TRUE(dropped) << "catalogue has no metric rows?";

    const std::string tmp =
        ::testing::TempDir() + "/observability_doctored.md";
    {
        std::ofstream out(tmp);
        out << doctored.str();
    }
    const auto r = run(lintCmd("--root " + kRoot + " --rules R004 --obs-doc "
                               + tmp));
    EXPECT_EQ(r.status, 1)
        << "removing catalogue row for '" << removed
        << "' must fail the lint\n" << r.output;
    EXPECT_NE(r.output.find("R004"), std::string::npos) << r.output;
    EXPECT_NE(r.output.find(removed), std::string::npos) << r.output;
}

TEST(Lint, R010ManifestDriftFailsBothWays)
{
    // Copy the real architecture doc and doctor the layer manifest:
    // grant `obs` a dependency on `serve` that no code exercises. The
    // stale edge must fail the lint against the real repo — the
    // manifest cannot silently drift from the include graph.
    std::ifstream in(kRoot + "/docs/architecture.md");
    ASSERT_TRUE(in.good());
    std::ostringstream doctored;
    std::string line;
    bool doped = false;
    while (std::getline(in, line)) {
        if (!doped && line == "obs:") {
            doctored << "obs: serve\n";
            doped = true;
            continue;
        }
        doctored << line << '\n';
    }
    ASSERT_TRUE(doped) << "architecture.md has no `obs:` manifest line?";

    const std::string tmp =
        ::testing::TempDir() + "/architecture_doctored.md";
    {
        std::ofstream out(tmp);
        out << doctored.str();
    }
    const auto r = run(lintCmd("--root " + kRoot + " --rules R010 "
                               "--arch-doc " + tmp));
    EXPECT_EQ(r.status, 1)
        << "a stale manifest edge must fail the lint\n" << r.output;
    EXPECT_NE(r.output.find("R010"), std::string::npos) << r.output;
    EXPECT_NE(r.output.find("stale manifest edge"), std::string::npos)
        << r.output;
}

TEST(Lint, R004RenamedCounterInSrcFailsAgainstRealCatalogue)
{
    // The other drift direction, driven from a synthetic tree: a src
    // metric literal that is not in the catalogue fails the lint.
    const std::string root = ::testing::TempDir() + "/lint_rename";
    ASSERT_EQ(std::system(("rm -rf " + root + " && mkdir -p " + root
                           + "/src " + root + "/docs")
                              .c_str()),
              0);
    {
        std::ofstream src(root + "/src/emitter.cpp");
        src << "void emit(Registry& r) { "
               "r.counter(\"sampler.grad_evals_renamed\").add(1); }\n";
        std::ifstream doc(kRoot + "/docs/observability.md");
        std::ofstream out(root + "/docs/observability.md");
        out << doc.rdbuf();
    }
    const auto r = run(lintCmd("--root " + root + " --rules R004"));
    EXPECT_EQ(r.status, 1) << r.output;
    EXPECT_NE(r.output.find("sampler.grad_evals_renamed"), std::string::npos)
        << r.output;
}
