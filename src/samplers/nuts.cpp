#include "samplers/nuts.hpp"

#include <algorithm>
#include <cmath>

namespace bayes::samplers {

bool
NutsSampler::noUTurn(const PhasePoint& zMinus, const PhasePoint& zPlus) const
{
    // Criterion evaluated in velocity space (M^{-1} p), the natural
    // generalization of (q+ - q-) . p for a non-identity metric.
    const auto& invMetric = ham_->invMetric();
    double dotMinus = 0.0;
    double dotPlus = 0.0;
    for (std::size_t i = 0; i < zMinus.q.size(); ++i) {
        const double dq = zPlus.q[i] - zMinus.q[i];
        dotMinus += dq * invMetric[i] * zMinus.p[i];
        dotPlus += dq * invMetric[i] * zPlus.p[i];
    }
    return dotMinus > 0.0 && dotPlus > 0.0;
}

NutsSampler::Tree
NutsSampler::buildTree(const PhasePoint& z, double logU, int direction,
                       int depth, double joint0, Rng& rng,
                       std::uint32_t& gradEvals)
{
    if (depth == 0) {
        // Base case: a single leapfrog step.
        Tree tree;
        tree.zProp = z;
        ham_->leapfrog(tree.zProp, direction * stepSize_);
        ++gradEvals;
        double joint = ham_->joint(tree.zProp);
        if (!std::isfinite(joint))
            joint = -INFINITY;
        tree.nValid = logU <= joint ? 1 : 0;
        tree.divergent = logU - kDeltaMax > joint;
        tree.cont = !tree.divergent;
        tree.alphaSum = std::min(1.0, std::exp(joint - joint0));
        tree.nAlpha = 1;
        tree.zMinus = tree.zProp;
        tree.zPlus = tree.zProp;
        return tree;
    }

    // Build the left half, then (if still going) the right half.
    Tree tree =
        buildTree(z, logU, direction, depth - 1, joint0, rng, gradEvals);
    if (!tree.cont)
        return tree;

    const PhasePoint& edge = direction == 1 ? tree.zPlus : tree.zMinus;
    Tree other =
        buildTree(edge, logU, direction, depth - 1, joint0, rng, gradEvals);

    if (direction == 1)
        tree.zPlus = other.zPlus;
    else
        tree.zMinus = other.zMinus;

    const std::size_t total = tree.nValid + other.nValid;
    if (other.nValid > 0 &&
        rng.uniform() * static_cast<double>(total)
            < static_cast<double>(other.nValid)) {
        tree.zProp = other.zProp;
    }
    tree.nValid = total;
    tree.alphaSum += other.alphaSum;
    tree.nAlpha += other.nAlpha;
    tree.divergent = tree.divergent || other.divergent;
    tree.cont = other.cont && noUTurn(tree.zMinus, tree.zPlus);
    return tree;
}

NutsTransition
NutsSampler::transition(PhasePoint& z, Rng& rng)
{
    NutsTransition result;

    ham_->sampleMomentum(rng, z);
    const double joint0 = ham_->joint(z);
    // Slice variable in log space: log u = joint0 + log(uniform).
    const double logU = joint0 + std::log(std::max(rng.uniform(), 1e-300));

    PhasePoint zMinus = z;
    PhasePoint zPlus = z;
    PhasePoint zProp = z;
    std::size_t nValid = 1;
    bool cont = true;
    double alphaSum = 0.0;
    std::size_t nAlpha = 0;

    int depth = 0;
    while (cont && depth < maxDepth_) {
        const int direction = rng.uniform() < 0.5 ? -1 : 1;
        const PhasePoint& edge = direction == 1 ? zPlus : zMinus;
        Tree tree = buildTree(edge, logU, direction, depth, joint0, rng,
                              result.gradEvals);
        if (direction == 1)
            zPlus = tree.zPlus;
        else
            zMinus = tree.zMinus;

        if (tree.cont && tree.nValid > 0) {
            const double accept = static_cast<double>(tree.nValid)
                / static_cast<double>(nValid);
            if (rng.uniform() < std::min(1.0, accept))
                zProp = tree.zProp;
        }
        nValid += tree.nValid;
        alphaSum += tree.alphaSum;
        nAlpha += tree.nAlpha;
        result.divergent = result.divergent || tree.divergent;
        cont = tree.cont && noUTurn(zMinus, zPlus);
        ++depth;
    }

    z = zProp;
    result.depth = static_cast<std::uint16_t>(depth);
    result.acceptStat =
        nAlpha ? alphaSum / static_cast<double>(nAlpha) : 0.0;
    return result;
}

} // namespace bayes::samplers
