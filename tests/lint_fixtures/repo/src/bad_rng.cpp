// Fixture: R003 — unmanaged randomness outside src/support/rng.hpp.
#include <cstdlib>
#include <random>

namespace fixture {
unsigned seedFromHardware()
{
    std::random_device rd;  // EXPECT: R003
    return rd();
}
int libcRand()
{
    srand(7);               // EXPECT: R003
    return rand();          // EXPECT: R003
}
double twister()
{
    std::mt19937 gen(99);   // EXPECT: R003
    std::mt19937_64 waived(1);  // bayes-lint: allow(R003): fixture: seeded and isolated
    return (double)(gen() + waived());
}
int notRandom(int operand) { return operand; }  // 'rand' substring: no finding
}  // namespace fixture
