/**
 * @file
 * Ablation (§VII-B) — likelihood subsampling as the LLC mitigation the
 * paper proposes: "the inference algorithm should be tuned to
 * subsample the data such that the working set fits the LLC. Figure 3
 * can be used to estimate the proper sub-sampled data size."
 *
 * Runs `tickets` (the workload the paper singles out) with the full
 * likelihood and with inverse-probability-reweighted 50% and 25%
 * subsamples, reporting the working set, LLC behavior, multicore
 * speedup, and the posterior-quality cost (quota-effect estimate vs
 * the full run).
 */
#include "common.hpp"
#include "diagnostics/summary.hpp"
#include "support/table.hpp"
#include "workloads/tickets_quota.hpp"

#include <cstdio>

using namespace bayes;

int
main()
{
    const auto platform = archsim::Platform::skylake();
    Table table({"subsample", "rows/eval", "modeled KB", "tape nodes",
                 "MPKI@1", "MPKI@4", "spd@4", "delta mean", "delta sd"});
    const std::size_t deltaIdx = [] {
        workloads::TicketsQuota probe;
        return probe.layout().offset(probe.layout().blockIndex("delta"));
    }();

    for (const double fraction : {1.0, 0.5, 0.25, 0.125}) {
        workloads::TicketsQuota wl(1.0, fraction);
        samplers::Config cfg;
        cfg.chains = 4;
        cfg.iterations = bench::kShortIterations;
        std::fprintf(stderr, "[bench] tickets subsample=%.2f...\n",
                     fraction);
        const auto run = samplers::run(wl, cfg);
        const auto profile = archsim::profileWorkload(wl, 4);
        const auto work = archsim::extractRunWork(run);
        const auto s1 = archsim::simulateSystem(profile, work, platform, 1);
        const auto s4 = archsim::simulateSystem(profile, work, platform, 4);
        const auto summary = diagnostics::summarize(run, wl.layout());
        table.row()
            .cell(fraction, 2)
            .cell(static_cast<long>(wl.activeRows()))
            .cell(static_cast<double>(wl.modeledDataBytes()) / 1024.0, 1)
            .cell(static_cast<long>(profile.chains[0].tapeNodes))
            .cell(s1.llcMpki, 2)
            .cell(s4.llcMpki, 2)
            .cell(s1.seconds / s4.seconds, 2)
            .cell(summary.coords[deltaIdx].mean, 3)
            .cell(summary.coords[deltaIdx].sd, 3);
    }
    printSection("Ablation — likelihood subsampling on tickets "
                 "(paper §VII-B mitigation; delta generated at 0.35)",
                 table);
    return 0;
}
