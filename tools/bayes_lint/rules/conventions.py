"""Repo-wide reproducibility conventions: R000-R005.

R000 waiver hygiene, R001 thread ownership, R002 re-entrant lgamma,
R003 seeded randomness, R004 metric-catalogue drift, R005 iostream.
"""

from __future__ import annotations

import os
import re

from ..engine import rule
from ..source import Finding, grep_rule, in_dirs


@rule("R000", "every waiver carries a justification")
def rule_r000(files, findings, _ctx):
    for sf in files:
        for lineno, (rules, just) in sorted(sf.waivers.items()):
            if not just:
                findings.append(Finding(
                    sf.relpath, lineno, "R000",
                    "waiver without justification; write "
                    "`// bayes-lint: allow("
                    + ",".join(sorted(rules)) + "): <why>`"))


# hardware_concurrency() is a capability query, not thread creation.
R001_PAT = re.compile(
    r"\bstd\s*::\s*j?thread\b(?!\s*::\s*hardware_concurrency)"
    r"|\bpthread_create\b")
R001_ALLOWED = {"src/support/thread_pool.hpp", "src/support/thread_pool.cpp"}


@rule("R001", "no raw std::thread outside support::ThreadPool")
def rule_r001(files, findings, _ctx):
    for sf in files:
        if in_dirs(sf.relpath, "tests"):
            continue  # test code may spin raw threads to attack the pool
        if sf.relpath in R001_ALLOWED:
            continue
        grep_rule(sf, R001_PAT, "R001",
                  "raw std::thread; all threading must go through "
                  "support::ThreadPool (src/support/thread_pool.hpp)",
                  findings)


# Qualified std::/global-:: calls, the glibc re-entrant entry points, and
# the variants that have no safe wrapper. Unqualified `lgamma(` is allowed
# inside src/math/ only, where it binds to bayes::math::lgamma (which
# routes through lgammaSafe).
R002_QUALIFIED = re.compile(
    r"\bstd\s*::\s*(?:lgamma|lgammaf|lgammal|tgamma|tgammaf|tgammal)\s*\("
    r"|(?<![\w])::\s*(?:lgamma|lgammaf|lgammal|tgamma|tgammaf|tgammal)\s*\("
    r"|(?<![\w:.])(?:lgamma_r|lgammaf_r)\s*\(")
R002_UNQUALIFIED = re.compile(
    r"(?<![\w:.])(?:lgamma|lgammaf|lgammal|tgamma|tgammaf|tgammal)\s*\(")
R002_ALLOWED = {"src/math/special.hpp"}


@rule("R002", "no raw lgamma/tgamma family calls outside math::special")
def rule_r002(files, findings, _ctx):
    msg = ("raw lgamma/tgamma family call; use math::lgammaSafe / "
           "math::lgamma (src/math/special.hpp) — glibc lgamma races on "
           "the global signgam")
    for sf in files:
        if sf.relpath in R002_ALLOWED:
            continue
        grep_rule(sf, R002_QUALIFIED, "R002", msg, findings)
        if not in_dirs(sf.relpath, "src/math"):
            grep_rule(sf, R002_UNQUALIFIED, "R002", msg, findings)


R003_PAT = re.compile(
    r"\bstd\s*::\s*random_device\b"
    r"|(?<![\w:.])random_device\b"
    r"|(?<![\w:.])s?rand\s*\("
    r"|(?:\bstd\s*::\s*|(?<![\w:.]))"
    r"(?:mt19937(?:_64)?|minstd_rand0?|default_random_engine|ranlux\w+)\b")
R003_ALLOWED = {"src/support/rng.hpp", "src/support/rng.cpp"}


@rule("R003", "all randomness derives from a seeded bayes::Rng")
def rule_r003(files, findings, _ctx):
    for sf in files:
        if in_dirs(sf.relpath, "tests") or sf.relpath in R003_ALLOWED:
            continue
        grep_rule(sf, R003_PAT, "R003",
                  "nondeterministic/unmanaged randomness; all streams must "
                  "derive from a seeded bayes::Rng (src/support/rng.hpp)",
                  findings)


R004_METRIC_PAT = re.compile(
    r"\.\s*(?:counter|gauge|histogram)\s*\(\s*\"")
R004_CATALOG_ROW = re.compile(r"^\|\s*`([^`]+)`\s*\|")


def metric_literals(sf):
    """Yield (lineno, name) for every metric-name literal in the file.
    Names are read from the raw line (literals are blanked in stripped
    text); the stripped line is used to locate the call site."""
    for lineno, line in enumerate(sf.lines, 1):
        for m in R004_METRIC_PAT.finditer(line):
            raw = sf.raw_lines[lineno - 1]
            lit = re.match(r'"([^"]*)"', raw[m.end() - 1:])
            if lit:
                yield lineno, lit.group(1)


def parse_catalogue(doc_path):
    """Names from the `## Metric catalogue` section of observability.md,
    as {name: lineno}."""
    names = {}
    in_section = False
    try:
        with open(doc_path, encoding="utf-8") as f:
            for lineno, line in enumerate(f, 1):
                if line.startswith("## "):
                    in_section = line.strip().lower() == "## metric catalogue"
                    continue
                if in_section:
                    m = R004_CATALOG_ROW.match(line)
                    if m and m.group(1).lower() != "name":
                        names[m.group(1)] = lineno
    except OSError as e:
        raise SystemExit(f"bayes-lint: cannot read catalogue {doc_path}: {e}")
    return names


@rule("R004", "metric names and the observability.md catalogue stay in sync")
def rule_r004(files, findings, ctx):
    doc_path = ctx["obs_doc"]
    if not os.path.isfile(doc_path):
        return  # tree has no observability catalogue; nothing to check
    catalogue = parse_catalogue(doc_path)
    doc_rel = os.path.relpath(doc_path, ctx["root"]).replace(os.sep, "/")
    used = {}
    for sf in files:
        if not in_dirs(sf.relpath, "src") or in_dirs(sf.relpath, "src/obs"):
            continue
        for lineno, name in metric_literals(sf):
            used.setdefault(name, []).append((sf, lineno))
    for name, sites in sorted(used.items()):
        if name not in catalogue:
            sf, lineno = sites[0]
            if not sf.waived(lineno, "R004"):
                findings.append(Finding(
                    sf.relpath, lineno, "R004",
                    f"metric '{name}' is not in the {doc_rel} catalogue; "
                    "document it or rename"))
    for name, lineno in sorted(catalogue.items(), key=lambda kv: kv[1]):
        if name not in used:
            findings.append(Finding(
                doc_rel, lineno, "R004",
                f"catalogue row '{name}' matches no metric emitted from "
                "src/; remove the row or restore the metric"))


R005_PAT = re.compile(r"^\s*#\s*include\s*<iostream>")


@rule("R005", "no <iostream> in src/ library code")
def rule_r005(files, findings, _ctx):
    for sf in files:
        if not in_dirs(sf.relpath, "src"):
            continue
        grep_rule(sf, R005_PAT, "R005",
                  "<iostream> in library code; iostream globals are shared "
                  "mutable state — take a std::ostream& or use support "
                  "facilities instead", findings)
