/**
 * @file
 * Shared Hamiltonian-dynamics machinery for HMC and NUTS: phase-space
 * points, the diagonal Euclidean metric, momentum refresh, and the
 * leapfrog integrator. Conventions follow Stan: the inverse metric is
 * an estimate of the posterior variance, momenta are drawn from
 * N(0, M) with M = diag(1 / invMetric).
 */
#pragma once

#include <cmath>
#include <span>
#include <vector>

#include "ppl/evaluator.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace bayes::samplers {

/** Position, momentum, gradient, and cached log density. */
struct PhasePoint
{
    std::vector<double> q;
    std::vector<double> p;
    std::vector<double> grad;
    double logProb = 0.0;
};

/** Hamiltonian with a diagonal Euclidean metric over an Evaluator. */
class Hamiltonian
{
  public:
    explicit Hamiltonian(ppl::Evaluator& eval)
        : eval_(&eval), invMetric_(eval.dim(), 1.0)
    {
    }

    /** Unconstrained dimensionality. */
    std::size_t dim() const { return eval_->dim(); }

    /** Underlying evaluator. */
    ppl::Evaluator& evaluator() { return *eval_; }

    /** Replace the inverse metric (posterior variance estimate). */
    void
    setInvMetric(std::vector<double> invMetric)
    {
        BAYES_CHECK(invMetric.size() == dim(), "metric dimension mismatch");
        for (double& e : invMetric) {
            BAYES_CHECK(std::isfinite(e), "metric entries must be finite");
            e = std::max(e, 1e-10);
        }
        invMetric_ = std::move(invMetric);
    }

    /** Current inverse metric. */
    const std::vector<double>& invMetric() const { return invMetric_; }

    /** Initialize logProb and grad of @p z at its current position. */
    void
    refresh(PhasePoint& z)
    {
        z.logProb = eval_->logProbGrad(z.q, z.grad);
    }

    /** Draw a fresh momentum p ~ N(0, M). */
    void
    sampleMomentum(Rng& rng, PhasePoint& z)
    {
        z.p.resize(dim());
        for (std::size_t i = 0; i < dim(); ++i)
            z.p[i] = rng.normal() / std::sqrt(invMetric_[i]);
    }

    /** Kinetic energy 0.5 p^T M^{-1} p. */
    double
    kinetic(const PhasePoint& z) const
    {
        double k = 0.0;
        for (std::size_t i = 0; i < dim(); ++i)
            k += invMetric_[i] * z.p[i] * z.p[i];
        return 0.5 * k;
    }

    /** Log joint density of the phase point: logProb - kinetic. */
    double joint(const PhasePoint& z) const { return z.logProb - kinetic(z); }

    /**
     * One leapfrog step of size @p eps (may be negative for backward
     * integration). Updates q, p, grad, and logProb in place.
     */
    void
    leapfrog(PhasePoint& z, double eps)
    {
        leapfrogBegin(z, eps);
        z.logProb = eval_->logProbGrad(z.q, z.grad);
        const std::size_t n = dim();
        for (std::size_t i = 0; i < n; ++i)
            z.p[i] += 0.5 * eps * z.grad[i];
    }

    /**
     * First half of a leapfrog step: half momentum kick + position
     * drift. The step then needs the gradient at the new position —
     * either evaluated inline (leapfrog) or delivered from a batched
     * evaluation via leapfrogEnd. Splitting the step here is what lets
     * the phased executor gather K chains' pending positions into one
     * EvalBatch.
     */
    void
    leapfrogBegin(PhasePoint& z, double eps)
    {
        const std::size_t n = dim();
        for (std::size_t i = 0; i < n; ++i)
            z.p[i] += 0.5 * eps * z.grad[i];
        for (std::size_t i = 0; i < n; ++i)
            z.q[i] += eps * invMetric_[i] * z.p[i];
    }

    /**
     * Second half of a leapfrog step: install the log density and
     * gradient evaluated at z.q (by whoever batched it) and apply the
     * final half momentum kick.
     */
    void
    leapfrogEnd(PhasePoint& z, double logProb, std::span<const double> grad,
                double eps)
    {
        const std::size_t n = dim();
        BAYES_ASSERT(grad.size() == n);
        z.logProb = logProb;
        z.grad.assign(grad.begin(), grad.end());
        for (std::size_t i = 0; i < n; ++i)
            z.p[i] += 0.5 * eps * z.grad[i];
    }

    /**
     * Heuristic initial step size: start at 1 and halve/double until
     * one leapfrog step changes the joint density by about log(2)
     * (Hoffman & Gelman Algorithm 4).
     */
    double findReasonableStepSize(const PhasePoint& start, Rng& rng);

  private:
    ppl::Evaluator* eval_;
    std::vector<double> invMetric_;
};

inline double
Hamiltonian::findReasonableStepSize(const PhasePoint& start, Rng& rng)
{
    double eps = 1.0;
    PhasePoint z = start;
    sampleMomentum(rng, z);
    const double joint0 = joint(z);

    PhasePoint trial = z;
    leapfrog(trial, eps);
    double delta = joint(trial) - joint0;
    if (!std::isfinite(delta))
        delta = -1e10;
    const double dir = delta > std::log(0.5) ? 1.0 : -1.0;
    for (int step = 0; step < 50; ++step) {
        trial = z;
        leapfrog(trial, eps);
        delta = joint(trial) - joint0;
        if (!std::isfinite(delta))
            delta = -1e10;
        if (dir > 0 && delta <= std::log(0.5))
            break;
        if (dir < 0 && delta >= std::log(0.5))
            break;
        eps *= dir > 0 ? 2.0 : 0.5;
        if (eps > 1e7 || eps < 1e-10)
            break;
    }
    return eps;
}

} // namespace bayes::samplers
