/**
 * @file
 * RK4 integrator tests: analytic solutions (exponential decay, harmonic
 * oscillator), convergence order, and gradient flow through the
 * discretized solution.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "ad/tape.hpp"
#include "math/ode.hpp"

namespace bayes::math {
namespace {

using ad::Tape;
using ad::Var;
using ad::leaf;

TEST(Ode, ExponentialDecayMatchesAnalytic)
{
    const double k = 0.8;
    auto rhs = [&](double, const std::vector<double>& y,
                   std::vector<double>& dy) { dy[0] = -k * y[0]; };
    const std::vector<double> ts = {0.5, 1.0, 2.0, 4.0};
    const auto states = integrateRk4<double>(rhs, {3.0}, 0.0, ts, 40.0);
    for (std::size_t i = 0; i < ts.size(); ++i)
        EXPECT_NEAR(states[i][0], 3.0 * std::exp(-k * ts[i]), 1e-7);
}

TEST(Ode, HarmonicOscillatorConservesPhase)
{
    auto rhs = [](double, const std::vector<double>& y,
                  std::vector<double>& dy) {
        dy[0] = y[1];
        dy[1] = -y[0];
    };
    const std::vector<double> ts = {M_PI / 2, M_PI, 2 * M_PI};
    const auto states =
        integrateRk4<double>(rhs, {1.0, 0.0}, 0.0, ts, 60.0);
    EXPECT_NEAR(states[0][0], 0.0, 1e-6);  // cos(pi/2)
    EXPECT_NEAR(states[1][0], -1.0, 1e-6); // cos(pi)
    EXPECT_NEAR(states[2][0], 1.0, 1e-6);  // cos(2pi)
    EXPECT_NEAR(states[2][1], 0.0, 1e-6);  // -sin(2pi)
}

TEST(Ode, FourthOrderConvergence)
{
    auto rhs = [](double, const std::vector<double>& y,
                  std::vector<double>& dy) { dy[0] = -y[0]; };
    const std::vector<double> ts = {1.0};
    const double exact = std::exp(-1.0);
    const double errCoarse = std::fabs(
        integrateRk4<double>(rhs, {1.0}, 0.0, ts, 4.0)[0][0] - exact);
    const double errFine = std::fabs(
        integrateRk4<double>(rhs, {1.0}, 0.0, ts, 8.0)[0][0] - exact);
    // Halving h should cut the error by about 2^4 = 16.
    EXPECT_GT(errCoarse / errFine, 10.0);
}

TEST(Ode, TimeDependentForcing)
{
    // dy/dt = t  =>  y(t) = t^2/2
    auto rhs = [](double t, const std::vector<double>&,
                  std::vector<double>& dy) { dy[0] = t; };
    const auto states =
        integrateRk4<double>(rhs, {0.0}, 0.0, {2.0}, 20.0);
    EXPECT_NEAR(states[0][0], 2.0, 1e-9);
}

TEST(Ode, GradientThroughSolverMatchesFiniteDifference)
{
    // y' = -k y, y(1) = exp(-k); d y(1) / dk = -exp(-k).
    auto solveAt = [](double k) {
        auto rhs = [&](double, const std::vector<double>& y,
                       std::vector<double>& dy) { dy[0] = -k * y[0]; };
        return integrateRk4<double>(rhs, {1.0}, 0.0, {1.0}, 30.0)[0][0];
    };

    Tape tape;
    Var k = leaf(tape, 0.6);
    auto rhs = [&](double, const std::vector<Var>& y,
                   std::vector<Var>& dy) { dy[0] = -k * y[0]; };
    const auto states =
        integrateRk4<Var>(rhs, {Var(1.0)}, 0.0, {1.0}, 30.0);
    std::vector<double> adj;
    tape.gradient(states[0][0].id(), adj);
    const double h = 1e-6;
    EXPECT_NEAR(adj[k.id()], (solveAt(0.6 + h) - solveAt(0.6 - h)) / (2 * h),
                1e-6);
    EXPECT_NEAR(adj[k.id()], -std::exp(-0.6), 1e-5);
}

TEST(Ode, ValidatesArguments)
{
    auto rhs = [](double, const std::vector<double>& y,
                  std::vector<double>& dy) { dy[0] = y[0]; };
    EXPECT_THROW(integrateRk4<double>(rhs, {1.0}, 0.0, {}, 10.0), Error);
    EXPECT_THROW(integrateRk4<double>(rhs, {1.0}, 0.0, {1.0}, 0.0), Error);
    EXPECT_THROW(integrateRk4<double>(rhs, {1.0}, 0.0, {2.0, 1.0}, 10.0),
                 Error);
}

} // namespace
} // namespace bayes::math
