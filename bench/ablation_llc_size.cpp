/**
 * @file
 * Ablation (§VII-B) — LLC capacity sweep for the three LLC-bound
 * workloads. The paper concludes 2 MB/core suffices for everything but
 * ad/survival/tickets, 10 MB/core covers ad and survival, and tickets
 * wants more still; this sweep regenerates that sizing curve on the
 * scaled platform (multiply capacities by 8 for paper-equivalent MB).
 */
#include "common.hpp"
#include "support/table.hpp"

#include <cstdio>

using namespace bayes;

int
main()
{
    Table table({"workload", "LLC(KB,scaled)", "LLC(MB,paper-equiv)",
                 "LLCMPKI@4", "IPC@4"});
    const std::uint64_t capacitiesKb[] = {256, 512, 1024, 2048, 4096,
                                          8192};
    for (const std::string name : {"ad", "survival", "tickets"}) {
        const auto entry =
            bench::prepareWorkload(name, 1.0, bench::kShortIterations);
        for (const std::uint64_t kb : capacitiesKb) {
            auto platform = archsim::Platform::skylake();
            platform.llc.sizeBytes = kb * 1024;
            const auto sim = archsim::simulateSystem(
                entry.profile, entry.work, platform, 4);
            table.row()
                .cell(name)
                .cell(static_cast<long>(kb))
                .cell(static_cast<double>(kb) * 8.0 / 1024.0, 1)
                .cell(sim.llcMpki, 2)
                .cell(sim.ipc, 2);
        }
    }
    printSection("Ablation — LLC capacity sweep (Skylake core model, "
                 "4 cores)",
                 table);
    return 0;
}
