/**
 * @file
 * Memory-trace capture. TraceCapture implements the AD tape's MemProbe
 * interface: while attached, every tape node push, every reverse-sweep
 * adjoint access, and the evaluator's observed-data stream are recorded
 * as (address, size, is-write) events. One gradient evaluation's trace
 * is the repeating unit of a chain's memory behavior (each leapfrog
 * step replays the same pattern over the same arena), so replaying it
 * through the cache model reproduces a chain's steady-state traffic.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "ad/tape.hpp"

namespace bayes::archsim {

/** One recorded memory access. */
struct Access
{
    std::uint64_t addr;
    std::uint32_t bytes;
    bool write;
};

/** MemProbe that appends every access to a bounded in-memory trace. */
class TraceCapture : public ad::MemProbe
{
  public:
    /** @param maxAccesses  hard cap to bound memory use */
    explicit TraceCapture(std::size_t maxAccesses = 4'000'000)
        : max_(maxAccesses)
    {
        trace_.reserve(4096);
    }

    void
    access(const void* addr, std::size_t bytes, bool write) override
    {
        if (trace_.size() >= max_) {
            truncated_ = true;
            return;
        }
        trace_.push_back(
            Access{reinterpret_cast<std::uint64_t>(addr),
                   static_cast<std::uint32_t>(bytes), write});
    }

    /** Recorded accesses in program order. */
    const std::vector<Access>& trace() const { return trace_; }

    /** True when the cap was hit and events were dropped. */
    bool truncated() const { return truncated_; }

    /** Drop all recorded events. */
    void
    clear()
    {
        trace_.clear();
        truncated_ = false;
    }

  private:
    std::vector<Access> trace_;
    std::size_t max_;
    bool truncated_ = false;
};

} // namespace bayes::archsim
