/**
 * @file
 * Ablation — the hardware stream prefetcher. The tape's sweeps are
 * almost perfectly sequential, so disabling the prefetch model turns
 * every capacity miss into an exposed demand miss; this quantifies how
 * much of the suite's benign memory behavior the streamer provides
 * (DESIGN.md §2 discusses why the model includes it).
 */
#include "common.hpp"
#include "support/table.hpp"

#include <cstdio>

using namespace bayes;

int
main()
{
    const auto platform = archsim::Platform::skylake();
    Table table({"workload", "prefetch", "LLCMPKI@4", "IPC@4", "time(s)"});
    for (const std::string name : {"votes", "ad", "tickets"}) {
        const auto entry =
            bench::prepareWorkload(name, 1.0, bench::kShortIterations);
        for (const bool prefetch : {true, false}) {
            archsim::CoreParams params;
            params.prefetchEnabled = prefetch;
            const auto sim = archsim::simulateSystem(
                entry.profile, entry.work, platform, 4, params);
            table.row()
                .cell(name)
                .cell(prefetch ? "on" : "off")
                .cell(sim.llcMpki, 2)
                .cell(sim.ipc, 2)
                .cell(sim.seconds, 2);
        }
    }
    printSection("Ablation — stream prefetcher on/off (Skylake, 4 cores)",
                 table);
    return 0;
}
