/**
 * @file
 * Executor micro-bench — wall-clock time of `runWithElision` under the
 * three execution policies on `12cities` and `votes` (4 chains). The
 * phased barrier executor must produce the identical stop draw under
 * every policy; the interesting number is the wall-time ratio, which
 * approaches the chain count on a machine with that many idle cores.
 */
#include "common.hpp"
#include "elide/elision.hpp"
#include "obs/obs.hpp"
#include "ppl/evaluator.hpp"
#include "samplers/runner.hpp"
#include "support/table.hpp"
#include "support/thread_pool.hpp"
#include "support/timer.hpp"

#include <cstdio>
#include <thread>

using namespace bayes;

namespace {

struct Measurement
{
    double seconds;
    elide::ElisionResult result;
};

Measurement
timedElision(const workloads::Workload& wl, samplers::Config cfg,
             samplers::ExecutionPolicy policy)
{
    cfg.execution = policy;
    Timer timer;
    Measurement m{0.0, elide::runWithElision(wl, cfg)};
    m.seconds = timer.seconds();
    return m;
}

} // namespace

int
main()
{
    std::printf("hardware concurrency: %u\n",
                std::thread::hardware_concurrency());

    Table table({"workload", "policy", "wall(s)", "speedup", "stop draw",
                 "converged"});
    for (const std::string name : {"12cities", "votes"}) {
        const auto wl = workloads::makeWorkload(name);
        auto cfg = bench::userConfig(
            *wl, samplers::ExecutionPolicy::sequential());
        cfg.chains = 4;
        std::fprintf(stderr, "[bench] %s: elided runs x3 policies...\n",
                     name.c_str());

        const auto seq = timedElision(
            *wl, cfg, samplers::ExecutionPolicy::sequential());
        const auto tpc = timedElision(
            *wl, cfg, samplers::ExecutionPolicy::threadPerChain());
        const auto pool =
            timedElision(*wl, cfg, samplers::ExecutionPolicy::pool());

        auto emit = [&](const char* policy, const Measurement& m) {
            table.row()
                .cell(name)
                .cell(policy)
                .cell(m.seconds, 2)
                .cell(seq.seconds / m.seconds, 2)
                .cell(static_cast<long>(m.result.stoppedAtDraw))
                .cell(m.result.converged ? "yes" : "no");
        };
        emit("sequential", seq);
        emit("thread-per-chain", tpc);
        emit("pool", pool);

        // The whole point of the phased executor: identical decisions.
        if (tpc.result.stoppedAtDraw != seq.result.stoppedAtDraw
            || pool.result.stoppedAtDraw != seq.result.stoppedAtDraw) {
            std::fprintf(stderr,
                         "ERROR: stop draw differs across policies\n");
            return 1;
        }
    }
    printSection("Executor micro-bench — runWithElision wall time by "
                 "execution policy (4 chains)",
                 table);

    // Observability overhead at runtime: the same pooled elision run
    // with the tracer idle (metrics only — the default) and with full
    // trace collection. The acceptance bar for the obs layer is < 2%
    // on the idle path; the compile-time half of the story
    // (BAYES_OBS=OFF, which deletes the metric writes entirely) is a
    // cross-build comparison — see docs/observability.md.
    {
        const auto wl = workloads::makeWorkload("12cities");
        auto cfg = bench::userConfig(*wl);
        cfg.chains = 4;
        std::fprintf(stderr,
                     "[bench] obs overhead: tracer idle vs active...\n");
        // Best-of-3 per mode: scheduler noise on a busy host easily
        // exceeds the effect being measured, and the minimum is the
        // cleanest estimator of the undisturbed run.
        auto bestOf3 = [&](bool traceActive) {
            double best = 1e300;
            for (int rep = 0; rep < 3; ++rep) {
                if (traceActive)
                    obs::Tracer::global().start();
                const auto m = timedElision(
                    *wl, cfg, samplers::ExecutionPolicy::pool());
                if (traceActive)
                    obs::Tracer::global().stop();
                best = std::min(best, m.seconds);
            }
            return best;
        };
        const double idle = bestOf3(false);
        const double active = bestOf3(true);

        Table obsTable({"obs mode", "best-of-3 wall(s)", "overhead(%)"});
        obsTable.row().cell("tracer idle (null sink)").cell(idle, 3).cell(
            0.0, 1);
        obsTable.row().cell("tracer active").cell(active, 3).cell(
            100.0 * (active / idle - 1.0), 1);
        printSection(
            "Observability overhead — pooled elided 12cities run "
            "(compiled-in metrics always on; BAYES_OBS=OFF is a "
            "cross-build comparison)",
            obsTable);
        std::fprintf(stderr, "[bench] trace events collected: %zu\n",
                     obs::Tracer::global().eventCount());
    }

    // Batched pooled evaluation: the same pooled HMC run with the
    // round's gradient evaluations gathered into one EvalBatch
    // (Config::batchEval, the default) vs per-chain evaluation. Draws
    // are byte-identical; the win is one shared-data pass per round
    // instead of K, shown directly as data bytes streamed per gradient
    // evaluation at the Evaluator level.
    {
        const auto wl = workloads::makeWorkload("ad");
        Table batchTable({"chains K", "batched wall(s)", "unbatched wall(s)",
                          "data bytes/eval", "unbatched bytes/eval"});
        for (const int chains : {2, 4, 8}) {
            auto cfg = bench::userConfig(*wl);
            cfg.algorithm = samplers::Algorithm::Hmc;
            cfg.chains = chains;
            cfg.hmcLeapfrogSteps = 8;
            cfg.execution = samplers::ExecutionPolicy::pool();
            std::fprintf(stderr,
                         "[bench] batched eval: K=%d pooled HMC x2...\n",
                         chains);

            cfg.batchEval = true;
            Timer tb;
            const auto batched = samplers::run(*wl, cfg);
            const double batchedSeconds = tb.seconds();
            cfg.batchEval = false;
            Timer tu;
            const auto unbatched = samplers::run(*wl, cfg);
            const double unbatchedSeconds = tu.seconds();
            if (batched.chains[0].draws != unbatched.chains[0].draws) {
                std::fprintf(stderr,
                             "ERROR: batched draws differ from unbatched\n");
                return 1;
            }

            // Data streamed per gradient evaluation, measured on the
            // evaluator itself: a K-lane batch makes one pass where K
            // singles make K.
            ppl::Evaluator eval(*wl);
            ppl::EvalBatch batch(eval.dim(),
                                 static_cast<std::size_t>(chains));
            std::vector<double> lp(static_cast<std::size_t>(chains));
            ppl::EvalBatch grads;
            eval.logProbGradBatch(batch, lp, grads);
            const double bytesPerEval =
                static_cast<double>(wl->modeledDataBytes())
                * static_cast<double>(eval.numDataPasses())
                / static_cast<double>(eval.numGradEvals());

            batchTable.row()
                .cell(static_cast<long>(chains))
                .cell(batchedSeconds, 2)
                .cell(unbatchedSeconds, 2)
                .cell(bytesPerEval, 0)
                .cell(static_cast<double>(wl->modeledDataBytes()), 0);
        }
        printSection(
            "Batched pooled evaluation — wall time and shared-data bytes "
            "per gradient eval vs chain count (HMC on `ad`, pool policy)",
            batchTable);
    }

    // Speculative prefetching: the pooled batched MH run per
    // speculation depth. Draws must stay byte-identical to depth 0
    // (checked here, gated in `ctest -L determinism`); the reported
    // numbers are the speculation counters and wall time. At depth d
    // the MH tree issues 2^(d+1)-2 lanes per replanning round and the
    // realized branch is always among them, so the *number of rounds
    // served from cache* climbs with depth while the per-lane hit
    // rate (hits/issued) falls geometrically with the tree size — the
    // classic speculation coverage/waste trade. On a single-core host
    // the wall-time column is
    // informational: speculation spends the idle lanes a wide machine
    // would have wasted, which serializes here.
    {
        const auto wl = workloads::makeWorkload("ad");
        auto cfg = bench::userConfig(*wl);
        cfg.algorithm = samplers::Algorithm::Mh;
        cfg.chains = 4;
        cfg.execution = samplers::ExecutionPolicy::pool();
        cfg.batchEval = true;

        Table specTable({"depth", "wall(s)", "issued", "hits", "wasted",
                         "hit rate"});
        std::vector<std::vector<double>> depthZeroDraws;
        for (const int depth : {0, 1, 2, 3}) {
            cfg.speculationDepth = depth;
            std::fprintf(stderr,
                         "[bench] speculation: pooled batched MH depth "
                         "%d...\n",
                         depth);
            auto& reg = obs::Registry::global();
            const auto issued0 = reg.counter("spec.issued").value();
            const auto hits0 = reg.counter("spec.hits").value();
            const auto wasted0 = reg.counter("spec.wasted").value();
            Timer timer;
            const auto result = samplers::run(*wl, cfg);
            const double seconds = timer.seconds();
            const auto issued = reg.counter("spec.issued").value() - issued0;
            const auto hits = reg.counter("spec.hits").value() - hits0;
            const auto wasted = reg.counter("spec.wasted").value() - wasted0;

            if (depth == 0)
                depthZeroDraws = result.chains[0].draws;
            else if (result.chains[0].draws != depthZeroDraws) {
                std::fprintf(stderr,
                             "ERROR: depth %d draws differ from depth 0\n",
                             depth);
                return 1;
            }
            if (hits + wasted != issued) {
                std::fprintf(stderr,
                             "ERROR: speculation accounting broken: "
                             "%llu + %llu != %llu\n",
                             static_cast<unsigned long long>(hits),
                             static_cast<unsigned long long>(wasted),
                             static_cast<unsigned long long>(issued));
                return 1;
            }

            specTable.row()
                .cell(static_cast<long>(depth))
                .cell(seconds, 2)
                .cell(static_cast<long>(issued))
                .cell(static_cast<long>(hits))
                .cell(static_cast<long>(wasted))
                .cell(issued ? static_cast<double>(hits)
                                   / static_cast<double>(issued)
                             : 0.0,
                      3);
        }
        printSection(
            "Speculative prefetching — pooled batched MH (`ad`, 4 "
            "chains) per speculation depth; draws byte-identical to "
            "depth 0 at every row",
            specTable);
    }

    bench::writeRunReport("micro_executor");
    return 0;
}
