/**
 * @file
 * Slice-sampler tests: distribution preservation on known targets,
 * width tuning, runner integration, and degenerate-slice robustness.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "math/distributions.hpp"
#include "samplers/runner.hpp"
#include "samplers/slice.hpp"
#include "support/stats.hpp"

namespace bayes::samplers {
namespace {

/** Skewed 1-D target: Gamma(3, 2) through a LowerBound transform. */
class GammaTarget : public ppl::Model
{
  public:
    GammaTarget()
        : layout_({{"x", 1, ppl::TransformKind::LowerBound, 0.0, 0}})
    {
    }
    const std::string& name() const override { return name_; }
    const ppl::ParamLayout& layout() const override { return layout_; }
    std::size_t modeledDataBytes() const override { return 0; }
    double logProb(const ppl::ParamView<double>& p) const override
    {
        return math::gamma_lpdf(p.scalar(0), 3.0, 2.0);
    }
    ad::Var logProb(const ppl::ParamView<ad::Var>& p) const override
    {
        return math::gamma_lpdf(p.scalar(0), 3.0, 2.0);
    }

  private:
    std::string name_ = "gamma-target";
    ppl::ParamLayout layout_;
};

/** Independent 2-D Gaussian with distinct scales. */
class Gauss2 : public ppl::Model
{
  public:
    Gauss2() : layout_({{"x", 2, ppl::TransformKind::Identity, 0, 0}}) {}
    const std::string& name() const override { return name_; }
    const ppl::ParamLayout& layout() const override { return layout_; }
    std::size_t modeledDataBytes() const override { return 0; }
    double logProb(const ppl::ParamView<double>& p) const override
    {
        return body(p);
    }
    ad::Var logProb(const ppl::ParamView<ad::Var>& p) const override
    {
        return body(p);
    }

  private:
    template <typename T>
    T
    body(const ppl::ParamView<T>& p) const
    {
        using namespace bayes::math;
        return normal_lpdf(p.at(0, 0), 1.0, 0.5)
            + normal_lpdf(p.at(0, 1), -2.0, 3.0);
    }
    std::string name_ = "gauss2";
    ppl::ParamLayout layout_;
};

TEST(Slice, PreservesGaussianTarget)
{
    Gauss2 model;
    ppl::Evaluator eval(model);
    SliceSampler slice(eval);
    Rng rng(7);
    std::vector<double> q = {0.0, 0.0};
    double lp = eval.logProb(q);
    RunningStats s0, s1;
    for (int i = 0; i < 6000; ++i) {
        slice.sweep(q, lp, rng);
        s0.add(q[0]);
        s1.add(q[1]);
    }
    EXPECT_NEAR(s0.mean(), 1.0, 0.05);
    EXPECT_NEAR(s0.stddev(), 0.5, 0.05);
    EXPECT_NEAR(s1.mean(), -2.0, 0.25);
    EXPECT_NEAR(s1.stddev(), 3.0, 0.25);
}

TEST(Slice, CachedLogProbStaysConsistent)
{
    Gauss2 model;
    ppl::Evaluator eval(model);
    SliceSampler slice(eval);
    Rng rng(8);
    std::vector<double> q = {0.3, 0.7};
    double lp = eval.logProb(q);
    for (int i = 0; i < 50; ++i) {
        slice.sweep(q, lp, rng);
        EXPECT_NEAR(lp, eval.logProb(q), 1e-10);
    }
}

TEST(Slice, WorksThroughTransforms)
{
    // Gamma(3,2): mean 1.5, sd sqrt(3)/2 on the constrained scale.
    GammaTarget model;
    ppl::Evaluator eval(model);
    SliceSampler slice(eval);
    Rng rng(9);
    std::vector<double> q = {0.0};
    double lp = eval.logProb(q);
    RunningStats s;
    for (int i = 0; i < 12000; ++i) {
        slice.sweep(q, lp, rng);
        s.add(eval.constrain(q)[0]);
    }
    EXPECT_NEAR(s.mean(), 1.5, 0.07);
    EXPECT_NEAR(s.stddev(), std::sqrt(3.0) / 2.0, 0.07);
}

TEST(Slice, TuneWidthsScalesAndClamps)
{
    Gauss2 model;
    ppl::Evaluator eval(model);
    SliceSampler slice(eval, 1.0);
    slice.tuneWidths(2.0);
    EXPECT_DOUBLE_EQ(slice.widths()[0], 2.0);
    for (int i = 0; i < 200; ++i)
        slice.tuneWidths(10.0);
    EXPECT_LE(slice.widths()[0], 1e6);
    EXPECT_THROW(slice.tuneWidths(0.0), Error);
}

TEST(Slice, ValidatesConstruction)
{
    Gauss2 model;
    ppl::Evaluator eval(model);
    EXPECT_THROW(SliceSampler(eval, 0.0), Error);
    EXPECT_THROW(SliceSampler(eval, 1.0, 0), Error);
}

TEST(Slice, RunnerIntegration)
{
    Gauss2 model;
    Config cfg;
    cfg.algorithm = Algorithm::Slice;
    cfg.chains = 2;
    cfg.iterations = 3000;
    cfg.seed = 99;
    const auto result = run(model, cfg);
    std::vector<double> xs;
    for (const auto& chain : result.chains)
        for (const auto& d : chain.draws)
            xs.push_back(d[0]);
    EXPECT_NEAR(mean(xs), 1.0, 0.05);
    EXPECT_NEAR(stddev(xs), 0.5, 0.05);
    // Work accounting: density evals recorded per iteration.
    EXPECT_GT(result.chains[0].iterStats[10].gradEvals, 0u);
}

TEST(Slice, RunnerDeterminism)
{
    Gauss2 model;
    Config cfg;
    cfg.algorithm = Algorithm::Slice;
    cfg.chains = 2;
    cfg.iterations = 100;
    const auto a = run(model, cfg);
    const auto b = run(model, cfg);
    EXPECT_EQ(a.chains[0].draws, b.chains[0].draws);
}

TEST(Slice, AlgorithmName)
{
    EXPECT_STREQ(algorithmName(Algorithm::Slice), "slice");
}

} // namespace
} // namespace bayes::samplers
