/**
 * @file
 * Unit and statistical property tests for the xoshiro256++ RNG and its
 * distribution samplers.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "support/error.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"

namespace bayes {
namespace {

TEST(Rng, DeterministicForEqualSeeds)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.nextU64(), b.nextU64());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.nextU64() == b.nextU64();
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformStaysInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformRangeRespectsBounds)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform(-3.0, 5.0);
        EXPECT_GE(u, -3.0);
        EXPECT_LT(u, 5.0);
    }
}

TEST(Rng, UniformMeanAndVariance)
{
    Rng rng(11);
    RunningStats s;
    for (int i = 0; i < 200000; ++i)
        s.add(rng.uniform());
    EXPECT_NEAR(s.mean(), 0.5, 0.01);
    EXPECT_NEAR(s.variance(), 1.0 / 12.0, 0.01);
}

TEST(Rng, UniformIntCoversAllResidues)
{
    Rng rng(3);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(rng.uniformInt(7));
    EXPECT_EQ(seen.size(), 7u);
    EXPECT_EQ(*seen.rbegin(), 6u);
}

TEST(Rng, UniformIntRejectsZero)
{
    Rng rng(3);
    EXPECT_THROW(rng.uniformInt(0), Error);
}

TEST(Rng, NormalMoments)
{
    Rng rng(13);
    RunningStats s;
    for (int i = 0; i < 200000; ++i)
        s.add(rng.normal());
    EXPECT_NEAR(s.mean(), 0.0, 0.02);
    EXPECT_NEAR(s.stddev(), 1.0, 0.02);
}

TEST(Rng, NormalLocationScale)
{
    Rng rng(13);
    RunningStats s;
    for (int i = 0; i < 100000; ++i)
        s.add(rng.normal(3.0, 2.0));
    EXPECT_NEAR(s.mean(), 3.0, 0.05);
    EXPECT_NEAR(s.stddev(), 2.0, 0.05);
}

TEST(Rng, ExponentialMeanMatchesRate)
{
    Rng rng(17);
    RunningStats s;
    for (int i = 0; i < 100000; ++i)
        s.add(rng.exponential(4.0));
    EXPECT_NEAR(s.mean(), 0.25, 0.01);
}

TEST(Rng, ExponentialRejectsNonPositiveRate)
{
    Rng rng(17);
    EXPECT_THROW(rng.exponential(0.0), Error);
}

/** Gamma moments across a range of shapes, including shape < 1. */
class RngGammaTest : public ::testing::TestWithParam<double>
{
};

TEST_P(RngGammaTest, MomentsMatchShapeRate)
{
    const double shape = GetParam();
    const double rate = 2.0;
    Rng rng(19);
    RunningStats s;
    for (int i = 0; i < 150000; ++i)
        s.add(rng.gamma(shape, rate));
    EXPECT_NEAR(s.mean(), shape / rate, 0.05 * (shape / rate) + 0.01);
    EXPECT_NEAR(s.variance(), shape / (rate * rate),
                0.10 * (shape / (rate * rate)) + 0.01);
}

INSTANTIATE_TEST_SUITE_P(Shapes, RngGammaTest,
                         ::testing::Values(0.3, 0.9, 1.0, 2.5, 10.0));

TEST(Rng, BetaMoments)
{
    Rng rng(23);
    RunningStats s;
    const double a = 2.0, b = 5.0;
    for (int i = 0; i < 100000; ++i)
        s.add(rng.beta(a, b));
    EXPECT_NEAR(s.mean(), a / (a + b), 0.01);
}

/** Poisson mean/variance across small and large rates. */
class RngPoissonTest : public ::testing::TestWithParam<double>
{
};

TEST_P(RngPoissonTest, MeanVarianceMatchRate)
{
    const double lambda = GetParam();
    Rng rng(29);
    RunningStats s;
    for (int i = 0; i < 100000; ++i)
        s.add(static_cast<double>(rng.poisson(lambda)));
    EXPECT_NEAR(s.mean(), lambda, 0.03 * lambda + 0.02);
    EXPECT_NEAR(s.variance(), lambda, 0.08 * lambda + 0.05);
}

INSTANTIATE_TEST_SUITE_P(Rates, RngPoissonTest,
                         ::testing::Values(0.5, 3.0, 12.0, 80.0));

TEST(Rng, BinomialMoments)
{
    Rng rng(31);
    RunningStats small, large;
    for (int i = 0; i < 50000; ++i) {
        small.add(static_cast<double>(rng.binomial(20, 0.3)));
        large.add(static_cast<double>(rng.binomial(500, 0.3)));
    }
    EXPECT_NEAR(small.mean(), 6.0, 0.1);
    EXPECT_NEAR(large.mean(), 150.0, 1.0);
    EXPECT_NEAR(large.variance(), 105.0, 6.0);
}

TEST(Rng, BinomialEdgeCases)
{
    Rng rng(31);
    EXPECT_EQ(rng.binomial(0, 0.5), 0);
    EXPECT_EQ(rng.binomial(10, 0.0), 0);
    EXPECT_EQ(rng.binomial(10, 1.0), 10);
}

TEST(Rng, StudentTIsSymmetricWithHeavyTails)
{
    Rng rng(37);
    RunningStats s;
    int extreme = 0;
    for (int i = 0; i < 100000; ++i) {
        const double x = rng.studentT(3.0);
        s.add(x);
        extreme += std::fabs(x) > 4.0;
    }
    EXPECT_NEAR(s.mean(), 0.0, 0.06);
    // t(3) has noticeably more mass beyond 4 sigma than a Gaussian.
    EXPECT_GT(extreme, 200);
}

TEST(Rng, CauchyMedianIsLocation)
{
    Rng rng(41);
    std::vector<double> xs;
    for (int i = 0; i < 50000; ++i)
        xs.push_back(rng.cauchy(2.0, 1.5));
    EXPECT_NEAR(quantile(xs, 0.5), 2.0, 0.1);
}

TEST(Rng, CategoricalFollowsWeights)
{
    Rng rng(43);
    std::vector<double> weights = {1.0, 3.0, 0.0, 6.0};
    std::vector<int> counts(4, 0);
    for (int i = 0; i < 100000; ++i)
        ++counts[rng.categorical(weights)];
    EXPECT_EQ(counts[2], 0);
    EXPECT_NEAR(counts[1] / 100000.0, 0.3, 0.01);
    EXPECT_NEAR(counts[3] / 100000.0, 0.6, 0.01);
}

TEST(Rng, CategoricalRejectsBadWeights)
{
    Rng rng(43);
    EXPECT_THROW(rng.categorical({}), Error);
    EXPECT_THROW(rng.categorical({0.0, 0.0}), Error);
    EXPECT_THROW(rng.categorical({1.0, -1.0}), Error);
}

TEST(Rng, ForkProducesDecorrelatedStreams)
{
    Rng parent(99);
    Rng a = parent.fork();
    Rng b = parent.fork();
    // Streams must differ from each other.
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.nextU64() == b.nextU64();
    EXPECT_LT(same, 2);
}

TEST(Rng, ForkIsDeterministic)
{
    Rng p1(99), p2(99);
    Rng a = p1.fork();
    Rng b = p2.fork();
    for (int i = 0; i < 32; ++i)
        EXPECT_EQ(a.nextU64(), b.nextU64());
}

TEST(Rng, BernoulliFrequency)
{
    Rng rng(47);
    int ones = 0;
    for (int i = 0; i < 100000; ++i)
        ones += rng.bernoulli(0.7);
    EXPECT_NEAR(ones / 100000.0, 0.7, 0.01);
}

} // namespace
} // namespace bayes
