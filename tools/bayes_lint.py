#!/usr/bin/env python3
"""bayes-lint: rule-based static invariant checker for the BayesSuite tree.

The sampler's reproducibility guarantees rest on a handful of repo-wide
conventions (single thread pool, re-entrant lgamma, seeded RNG streams,
a documented metric catalogue). This tool turns those conventions into
machine-checked rules; it runs as the `static`-labeled ctest and in CI.

Rules
  R001  no std::thread / pthread_create outside src/support/thread_pool.*
  R002  no raw lgamma/lgammaf/tgamma family calls outside src/math/special.hpp
  R003  no std::random_device, rand()/srand(), or std <random> engines
        outside src/support/rng.{hpp,cpp} and tests/
  R004  every obs::Registry/Tracer metric name literal in src/ must appear
        in the docs/observability.md catalogue, and vice versa
  R005  no `#include <iostream>` in src/ library code
  R006  every src/**/*.hpp compiles as a standalone translation unit
        (only with --compiler; generated one-TU-per-header check)
  R007  no per-observation scalar *_lpdf/*_lpmf calls inside loops in
        src/workloads/; use the fused vectorized kernels
        (src/math/vec_kernels.hpp) or waive the reference scalar path
  R008  no per-chain Evaluator::logProbGrad loops in src/ outside
        src/samplers/; gather the points into a ppl::EvalBatch and call
        logProbGradBatch so the observed data is streamed once
  R009  serving code (src/serve/) must not construct a ThreadPool or use
        thread-per-chain execution; one coordinator thread + the
        process-shared support::sharedPool is the whole concurrency story

Waivers: a line (or the line directly below a full-line comment) is
waived with

    // bayes-lint: allow(R001): justification text

The justification is mandatory; `allow(R001,R003)` waives several rules
at once. A waiver with no justification is itself reported (R000).

Self-test: `--self-test DIR` lints DIR as if it were a repo root and
compares the findings against `// EXPECT: RNNN` (or `<!-- EXPECT: RNNN -->`)
markers inside the fixture files; any mismatch is reported and the exit
status is non-zero. This is how tests/lint_fixtures/ proves each rule
fires exactly where intended.

Output format is `path:line: RNNN message` so findings are clickable.
Exit status: 0 clean, 1 findings, 2 usage/internal error.

Stdlib only; no third-party imports.
"""

from __future__ import annotations

import argparse
import os
import re
import subprocess
import sys
import tempfile

# --------------------------------------------------------------------------
# Source model: file discovery, comment stripping, waivers
# --------------------------------------------------------------------------

CXX_EXTENSIONS = (".hpp", ".h", ".cpp", ".cc", ".cxx")
SCAN_DIRS = ("src", "bench", "examples", "tools", "tests")
SKIP_DIR_PARTS = {"lint_fixtures", "__pycache__"}

WAIVER_RE = re.compile(
    r"(?://|<!--)\s*bayes-lint:\s*allow\(\s*([A-Z0-9, ]+?)\s*\)\s*:?\s*(.*)")
EXPECT_RE = re.compile(r"(?://|<!--)\s*EXPECT:\s*([A-Z0-9 ]+?)\s*(?:-->)?\s*$")


class Finding:
    __slots__ = ("path", "line", "rule", "message")

    def __init__(self, path, line, rule, message):
        self.path = path          # repo-root-relative, forward slashes
        self.line = line          # 1-based
        self.rule = rule
        self.message = message

    def key(self):
        return (self.path, self.line, self.rule)

    def __str__(self):
        return f"{self.path}:{self.line}: {self.rule} {self.message}"


def strip_comments_and_strings(text):
    """Blank out comments and string/char literals, preserving newlines
    and column positions, so rule regexes never match inside either."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char | raw
    raw_delim = ""
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
            elif c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
            elif c == 'R' and nxt == '"' and (i == 0 or not (
                    text[i - 1].isalnum() or text[i - 1] == "_")):
                m = re.match(r'R"([^()\\ \n]*)\(', text[i:])
                if m:
                    raw_delim = ")" + m.group(1) + '"'
                    state = "raw"
                    out.append(" " * m.end())
                    i += m.end()
                else:
                    out.append(c)
                    i += 1
            elif c == '"':
                state = "string"
                out.append('"')
                i += 1
            elif c == "'":
                state = "char"
                out.append("'")
                i += 1
            else:
                out.append(c)
                i += 1
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
            i += 1
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
            else:
                out.append("\n" if c == "\n" else " ")
                i += 1
        elif state == "raw":
            if text.startswith(raw_delim, i):
                state = "code"
                out.append(" " * len(raw_delim))
                i += len(raw_delim)
            else:
                out.append("\n" if c == "\n" else " ")
                i += 1
        elif state in ("string", "char"):
            quote = '"' if state == "string" else "'"
            if c == "\\" and nxt:
                out.append("  ")
                i += 2
            elif c == quote:
                state = "code"
                out.append(quote)
                i += 1
            elif c == "\n":  # unterminated; bail to code
                state = "code"
                out.append("\n")
                i += 1
            else:
                out.append(" ")
                i += 1
    return "".join(out)


class SourceFile:
    """One scanned file: raw lines, stripped lines, waivers, EXPECTs."""

    def __init__(self, root, relpath):
        self.relpath = relpath.replace(os.sep, "/")
        with open(os.path.join(root, relpath), encoding="utf-8",
                  errors="replace") as f:
            text = f.read()
        self.raw_lines = text.splitlines()
        self.lines = strip_comments_and_strings(text).splitlines()
        # waivers[line] = (set of rule ids, justification, lineno)
        self.waivers = {}
        self.expects = {}  # line -> set of rule ids
        for lineno, raw in enumerate(self.raw_lines, 1):
            m = WAIVER_RE.search(raw)
            if m:
                rules = {r.strip() for r in m.group(1).split(",") if r.strip()}
                # A trailing comment (e.g. a fixture EXPECT marker) is not
                # a justification.
                just = re.split(r"//|<!--", m.group(2))[0]
                just = just.replace("-->", "").strip()
                self.waivers[lineno] = (rules, just)
            m = EXPECT_RE.search(raw)
            if m:
                self.expects[lineno] = set(m.group(1).split())

    def waived(self, lineno, rule):
        """A waiver covers its own line, and the following line when the
        waiver stands alone on a comment line."""
        for wline in (lineno, lineno - 1):
            w = self.waivers.get(wline)
            if w and rule in w[0] and w[1]:
                return True
        return False


def discover(root):
    files = []
    for top in SCAN_DIRS:
        topdir = os.path.join(root, top)
        if not os.path.isdir(topdir):
            continue
        for dirpath, dirnames, filenames in os.walk(topdir):
            dirnames[:] = [d for d in sorted(dirnames)
                           if d not in SKIP_DIR_PARTS]
            for name in sorted(filenames):
                if name.endswith(CXX_EXTENSIONS):
                    rel = os.path.relpath(os.path.join(dirpath, name), root)
                    files.append(SourceFile(root, rel))
    return files


# --------------------------------------------------------------------------
# Rules R001..R005 (regex rules over stripped text)
# --------------------------------------------------------------------------

def in_dirs(path, *tops):
    return any(path == t or path.startswith(t + "/") for t in tops)


def grep_rule(sf, pattern, rule, message, findings):
    for lineno, line in enumerate(sf.lines, 1):
        if pattern.search(line):
            if not sf.waived(lineno, rule):
                findings.append(Finding(sf.relpath, lineno, rule, message))


# hardware_concurrency() is a capability query, not thread creation.
R001_PAT = re.compile(
    r"\bstd\s*::\s*j?thread\b(?!\s*::\s*hardware_concurrency)"
    r"|\bpthread_create\b")
R001_ALLOWED = {"src/support/thread_pool.hpp", "src/support/thread_pool.cpp"}


def rule_r001(files, findings, _ctx):
    for sf in files:
        if in_dirs(sf.relpath, "tests"):
            continue  # test code may spin raw threads to attack the pool
        if sf.relpath in R001_ALLOWED:
            continue
        grep_rule(sf, R001_PAT, "R001",
                  "raw std::thread; all threading must go through "
                  "support::ThreadPool (src/support/thread_pool.hpp)",
                  findings)


# Qualified std::/global-:: calls, the glibc re-entrant entry points, and
# the variants that have no safe wrapper. Unqualified `lgamma(` is allowed
# inside src/math/ only, where it binds to bayes::math::lgamma (which
# routes through lgammaSafe).
R002_QUALIFIED = re.compile(
    r"\bstd\s*::\s*(?:lgamma|lgammaf|lgammal|tgamma|tgammaf|tgammal)\s*\("
    r"|(?<![\w])::\s*(?:lgamma|lgammaf|lgammal|tgamma|tgammaf|tgammal)\s*\("
    r"|(?<![\w:.])(?:lgamma_r|lgammaf_r)\s*\(")
R002_UNQUALIFIED = re.compile(
    r"(?<![\w:.])(?:lgamma|lgammaf|lgammal|tgamma|tgammaf|tgammal)\s*\(")
R002_ALLOWED = {"src/math/special.hpp"}


def rule_r002(files, findings, _ctx):
    msg = ("raw lgamma/tgamma family call; use math::lgammaSafe / "
           "math::lgamma (src/math/special.hpp) — glibc lgamma races on "
           "the global signgam")
    for sf in files:
        if sf.relpath in R002_ALLOWED:
            continue
        grep_rule(sf, R002_QUALIFIED, "R002", msg, findings)
        if not in_dirs(sf.relpath, "src/math"):
            grep_rule(sf, R002_UNQUALIFIED, "R002", msg, findings)


R003_PAT = re.compile(
    r"\bstd\s*::\s*random_device\b"
    r"|(?<![\w:.])random_device\b"
    r"|(?<![\w:.])s?rand\s*\("
    r"|(?:\bstd\s*::\s*|(?<![\w:.]))"
    r"(?:mt19937(?:_64)?|minstd_rand0?|default_random_engine|ranlux\w+)\b")
R003_ALLOWED = {"src/support/rng.hpp", "src/support/rng.cpp"}


def rule_r003(files, findings, _ctx):
    for sf in files:
        if in_dirs(sf.relpath, "tests") or sf.relpath in R003_ALLOWED:
            continue
        grep_rule(sf, R003_PAT, "R003",
                  "nondeterministic/unmanaged randomness; all streams must "
                  "derive from a seeded bayes::Rng (src/support/rng.hpp)",
                  findings)


R004_METRIC_PAT = re.compile(
    r"\.\s*(?:counter|gauge|histogram)\s*\(\s*\"")
R004_CATALOG_ROW = re.compile(r"^\|\s*`([^`]+)`\s*\|")


def metric_literals(sf):
    """Yield (lineno, name) for every metric-name literal in the file.
    Names are read from the raw line (literals are blanked in stripped
    text); the stripped line is used to locate the call site."""
    for lineno, line in enumerate(sf.lines, 1):
        for m in R004_METRIC_PAT.finditer(line):
            raw = sf.raw_lines[lineno - 1]
            lit = re.match(r'"([^"]*)"', raw[m.end() - 1:])
            if lit:
                yield lineno, lit.group(1)


def parse_catalogue(doc_path):
    """Names from the `## Metric catalogue` section of observability.md,
    as {name: lineno}."""
    names = {}
    in_section = False
    try:
        with open(doc_path, encoding="utf-8") as f:
            for lineno, line in enumerate(f, 1):
                if line.startswith("## "):
                    in_section = line.strip().lower() == "## metric catalogue"
                    continue
                if in_section:
                    m = R004_CATALOG_ROW.match(line)
                    if m and m.group(1).lower() != "name":
                        names[m.group(1)] = lineno
    except OSError as e:
        raise SystemExit(f"bayes-lint: cannot read catalogue {doc_path}: {e}")
    return names


def rule_r004(files, findings, ctx):
    doc_path = ctx["obs_doc"]
    if not os.path.isfile(doc_path):
        return  # tree has no observability catalogue; nothing to check
    catalogue = parse_catalogue(doc_path)
    doc_rel = os.path.relpath(doc_path, ctx["root"]).replace(os.sep, "/")
    used = {}
    for sf in files:
        if not in_dirs(sf.relpath, "src") or in_dirs(sf.relpath, "src/obs"):
            continue
        for lineno, name in metric_literals(sf):
            used.setdefault(name, []).append((sf, lineno))
    for name, sites in sorted(used.items()):
        if name not in catalogue:
            sf, lineno = sites[0]
            if not sf.waived(lineno, "R004"):
                findings.append(Finding(
                    sf.relpath, lineno, "R004",
                    f"metric '{name}' is not in the {doc_rel} catalogue; "
                    "document it or rename"))
    for name, lineno in sorted(catalogue.items(), key=lambda kv: kv[1]):
        if name not in used:
            findings.append(Finding(
                doc_rel, lineno, "R004",
                f"catalogue row '{name}' matches no metric emitted from "
                "src/; remove the row or restore the metric"))


# --------------------------------------------------------------------------
# R007: scalar density calls in workload loops
# --------------------------------------------------------------------------

R007_LOOP_HEAD = re.compile(r"\b(?:for|while)\s*\(")
R007_CALL = re.compile(r"\b([A-Za-z_]\w*)\s*\(")


def r007_loop_regions(text):
    """Char-offset (start, end) spans of loop bodies in stripped text.

    A braced body spans its `{...}`; a braceless body spans from the
    first token after the loop header to the terminating `;`. Nested
    loops yield overlapping spans, which is fine — membership in any
    span marks a position as inside a loop.
    """
    regions = []
    n = len(text)
    search_from = 0
    while True:
        m = R007_LOOP_HEAD.search(text, search_from)
        if not m:
            return regions
        search_from = m.end()
        # Skip past the loop-header parens.
        i, pdepth = m.end(), 1
        while i < n and pdepth:
            if text[i] == "(":
                pdepth += 1
            elif text[i] == ")":
                pdepth -= 1
            i += 1
        while i < n and text[i].isspace():
            i += 1
        if i < n and text[i] == "{":
            start, bdepth = i, 1
            i += 1
            while i < n and bdepth:
                if text[i] == "{":
                    bdepth += 1
                elif text[i] == "}":
                    bdepth -= 1
                i += 1
            regions.append((start, i))
        else:
            # Braceless body: one statement, up to the `;` outside any
            # nested parens/braces it opens itself.
            start, bdepth, pdepth = i, 0, 0
            while i < n:
                c = text[i]
                if c == "(":
                    pdepth += 1
                elif c == ")":
                    pdepth -= 1
                elif c == "{":
                    bdepth += 1
                elif c == "}":
                    bdepth -= 1
                elif c == ";" and bdepth == 0 and pdepth == 0:
                    i += 1
                    break
                i += 1
            regions.append((start, i))


def rule_r007(files, findings, _ctx):
    for sf in files:
        if not in_dirs(sf.relpath, "src/workloads"):
            continue
        text = "\n".join(sf.lines)
        regions = r007_loop_regions(text)
        if not regions:
            continue
        for m in R007_CALL.finditer(text):
            name = m.group(1)
            if not name.endswith(("_lpdf", "_lpmf")):
                continue
            if "_glm_" in name:
                continue  # fused GLM kernels are the fix, not a finding
            if not any(s <= m.start() < e for s, e in regions):
                continue
            lineno = text.count("\n", 0, m.start()) + 1
            if not sf.waived(lineno, "R007"):
                findings.append(Finding(
                    sf.relpath, lineno, "R007",
                    f"scalar {name} in a loop builds one tape node per "
                    "observation; use a fused kernel from "
                    "src/math/vec_kernels.hpp (or waive a reference "
                    "scalar path with justification)"))


# --------------------------------------------------------------------------
# R008: per-chain logProbGrad loops outside the sampler layer
# --------------------------------------------------------------------------

R008_CALL = re.compile(r"(?:\.|->)\s*logProbGrad\s*\(")


def rule_r008(files, findings, _ctx):
    """Calling the K=1 gradient wrapper in a loop re-streams the observed
    data once per iteration — exactly the pattern the batched surface
    (Evaluator::logProbGradBatch) replaces. The sampler layer is exempt:
    its per-iteration loops are the Markov chains themselves and the
    batching there happens in the pooled executor."""
    for sf in files:
        if not in_dirs(sf.relpath, "src"):
            continue
        if in_dirs(sf.relpath, "src/samplers"):
            continue
        text = "\n".join(sf.lines)
        regions = r007_loop_regions(text)
        if not regions:
            continue
        for m in R008_CALL.finditer(text):
            if not any(s <= m.start() < e for s, e in regions):
                continue
            lineno = text.count("\n", 0, m.start()) + 1
            if not sf.waived(lineno, "R008"):
                findings.append(Finding(
                    sf.relpath, lineno, "R008",
                    "logProbGrad in a loop streams the observed data once "
                    "per call; gather the points into a ppl::EvalBatch and "
                    "use Evaluator::logProbGradBatch (or waive with "
                    "justification)"))


# --------------------------------------------------------------------------
# R009: serve layer must not own threads or pools
# --------------------------------------------------------------------------

R009_PAT = re.compile(
    r"\bnew\s+(?:\w+\s*::\s*)*ThreadPool\b"
    r"|\bmake_unique\s*<\s*(?:\w+\s*::\s*)*ThreadPool\b"
    r"|\bThreadPool\s+\w+\s*[({]"
    r"|\bthreadPerChain\s*\(\s*\)"
    r"|\bExecutionMode\s*::\s*ThreadPerChain\b")


def rule_r009(files, findings, _ctx):
    """The serving runtime's concurrency contract: submit/drain run on
    the coordinating thread and chains fan out through the process-shared
    support::sharedPool. A private pool (or thread-per-chain execution)
    inside src/serve/ would nest pools, break the no-nested-wait rule,
    and tear worker threads up and down per request."""
    for sf in files:
        if not in_dirs(sf.relpath, "src/serve"):
            continue
        grep_rule(sf, R009_PAT, "R009",
                  "serve code must not own threads: use the shared pool "
                  "via samplers::ExecutionPolicy::pool / "
                  "support::sharedPool, never a private ThreadPool or "
                  "thread-per-chain execution", findings)


R005_PAT = re.compile(r"^\s*#\s*include\s*<iostream>")


def rule_r005(files, findings, _ctx):
    for sf in files:
        if not in_dirs(sf.relpath, "src"):
            continue
        grep_rule(sf, R005_PAT, "R005",
                  "<iostream> in library code; iostream globals are shared "
                  "mutable state — take a std::ostream& or use support "
                  "facilities instead", findings)


# --------------------------------------------------------------------------
# R006: every src header compiles standalone
# --------------------------------------------------------------------------

def rule_r006(files, findings, ctx):
    compiler = ctx.get("compiler")
    if not compiler:
        return
    headers = [sf for sf in files
               if in_dirs(sf.relpath, "src") and sf.relpath.endswith(".hpp")]
    srcdir = os.path.join(ctx["root"], "src")
    with tempfile.TemporaryDirectory(prefix="bayes-lint-r006-") as tmp:
        tu = os.path.join(tmp, "header_tu.cpp")
        for sf in headers:
            rel_from_src = os.path.relpath(
                os.path.join(ctx["root"], sf.relpath), srcdir)
            with open(tu, "w", encoding="utf-8") as f:
                f.write(f'#include "{rel_from_src.replace(os.sep, "/")}"\n')
            cmd = [compiler, "-std=" + ctx["std"], "-fsyntax-only",
                   "-I", srcdir, "-Wall", "-Wextra", tu]
            proc = subprocess.run(cmd, capture_output=True, text=True)
            if proc.returncode != 0:
                first_error = next(
                    (ln for ln in proc.stderr.splitlines() if "error" in ln),
                    proc.stderr.strip().splitlines()[0]
                    if proc.stderr.strip() else "compiler failed")
                if not sf.waived(1, "R006"):
                    findings.append(Finding(
                        sf.relpath, 1, "R006",
                        "header does not compile standalone: "
                        f"{first_error.strip()}"))


# --------------------------------------------------------------------------
# Waiver hygiene (R000)
# --------------------------------------------------------------------------

def rule_r000(files, findings, _ctx):
    for sf in files:
        for lineno, (rules, just) in sorted(sf.waivers.items()):
            if not just:
                findings.append(Finding(
                    sf.relpath, lineno, "R000",
                    "waiver without justification; write "
                    "`// bayes-lint: allow("
                    + ",".join(sorted(rules)) + "): <why>`"))


TEXT_RULES = {
    "R000": rule_r000,
    "R001": rule_r001,
    "R002": rule_r002,
    "R003": rule_r003,
    "R004": rule_r004,
    "R005": rule_r005,
    "R007": rule_r007,
    "R008": rule_r008,
    "R009": rule_r009,
}
ALL_RULES = dict(TEXT_RULES)
ALL_RULES["R006"] = rule_r006


# --------------------------------------------------------------------------
# Driver
# --------------------------------------------------------------------------

def run_rules(root, rules, compiler=None, std="c++20", obs_doc=None):
    files = discover(root)
    ctx = {
        "root": root,
        "compiler": compiler,
        "std": std,
        "obs_doc": obs_doc or os.path.join(root, "docs", "observability.md"),
    }
    findings = []
    for rule_id in rules:
        ALL_RULES[rule_id](files, findings, ctx)
    findings.sort(key=Finding.key)
    deduped = []
    for f in findings:
        if not deduped or f.key() != deduped[-1].key():
            deduped.append(f)
    return files, deduped


def self_test(root, rules):
    """Compare findings against EXPECT markers in the fixture tree."""
    files, findings = run_rules(root, rules)
    expected = set()
    for sf in files:
        for lineno, rule_ids in sf.expects.items():
            for rule_id in rule_ids:
                expected.add((sf.relpath, lineno, rule_id))
    # Markdown fixtures (the R004 catalogue) are not C++ files; scan them
    # for EXPECT markers directly.
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = sorted(dirnames)
        for name in sorted(filenames):
            if not name.endswith(".md"):
                continue
            rel = os.path.relpath(os.path.join(dirpath, name), root)
            with open(os.path.join(dirpath, name), encoding="utf-8") as f:
                for lineno, line in enumerate(f, 1):
                    m = EXPECT_RE.search(line)
                    if m:
                        for rule_id in m.group(1).split():
                            expected.add(
                                (rel.replace(os.sep, "/"), lineno, rule_id))
    actual = {f.key() for f in findings}
    ok = True
    for key in sorted(expected - actual):
        ok = False
        print("%s:%d: self-test: expected %s did not fire" % key)
    for f in sorted(findings, key=Finding.key):
        if f.key() not in expected:
            ok = False
            print(f"{f} (self-test: unexpected finding)")
    for path, line, rule in sorted(expected & actual):
        print(f"ok: {path}:{line}: {rule}")
    n = len(expected & actual)
    print(f"bayes-lint self-test: {n}/{len(expected)} expected findings "
          f"fired, {len(actual - expected)} unexpected", file=sys.stderr)
    return 0 if ok else 1


def main(argv=None):
    ap = argparse.ArgumentParser(
        prog="bayes-lint", description=__doc__.splitlines()[0])
    ap.add_argument("--root", default=".",
                    help="repo root to lint (default: cwd)")
    ap.add_argument("--rules",
                    help="comma-separated rule ids (default: all text rules, "
                         "plus R006 when --compiler is given)")
    ap.add_argument("--compiler",
                    help="C++ compiler for the R006 standalone-header check")
    ap.add_argument("--std", default="c++20",
                    help="language standard for R006 (default: c++20)")
    ap.add_argument("--obs-doc",
                    help="override path of the observability catalogue "
                         "(R004); used by drift tests")
    ap.add_argument("--self-test", metavar="DIR",
                    help="lint DIR and compare against EXPECT markers")
    ap.add_argument("--list-rules", action="store_true")
    args = ap.parse_args(argv)

    if args.list_rules:
        for rule_id in sorted(ALL_RULES):
            print(rule_id)
        return 0

    if args.rules:
        rules = [r.strip() for r in args.rules.split(",") if r.strip()]
        unknown = [r for r in rules if r not in ALL_RULES]
        if unknown:
            print(f"bayes-lint: unknown rule(s): {', '.join(unknown)}",
                  file=sys.stderr)
            return 2
    else:
        rules = sorted(TEXT_RULES)
        if args.compiler:
            rules.append("R006")

    if args.self_test:
        return self_test(os.path.abspath(args.self_test),
                         [r for r in rules if r != "R006"])

    root = os.path.abspath(args.root)
    _, findings = run_rules(root, rules, compiler=args.compiler,
                            std=args.std, obs_doc=args.obs_doc)
    for f in findings:
        print(f)
    print(f"bayes-lint: {len(findings)} finding(s) in {root}",
          file=sys.stderr)
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
