/**
 * @file
 * Linear algebra tests: Cholesky correctness, triangular solves,
 * multivariate normal density against closed forms, GP kernel
 * properties — on both double and Var scalar types.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "ad/tape.hpp"
#include "math/distributions.hpp"
#include "math/linalg.hpp"

namespace bayes::math {
namespace {

using ad::Tape;
using ad::Var;
using ad::leaf;

Matrix<double>
spd3()
{
    // A = L L^T with a known L.
    Matrix<double> a(3, 3);
    const double l[3][3] = {{2, 0, 0}, {1, 3, 0}, {0.5, -1, 1.5}};
    for (int i = 0; i < 3; ++i)
        for (int j = 0; j < 3; ++j) {
            double s = 0;
            for (int k = 0; k < 3; ++k)
                s += l[i][k] * l[j][k];
            a(i, j) = s;
        }
    return a;
}

TEST(Linalg, CholeskyRecoversFactor)
{
    const auto a = spd3();
    const auto l = cholesky(a);
    const double expect[3][3] = {{2, 0, 0}, {1, 3, 0}, {0.5, -1, 1.5}};
    for (int i = 0; i < 3; ++i)
        for (int j = 0; j <= i; ++j)
            EXPECT_NEAR(l(i, j), expect[i][j], 1e-12);
}

TEST(Linalg, CholeskyRejectsIndefinite)
{
    Matrix<double> a(2, 2);
    a(0, 0) = 1;
    a(0, 1) = 4;
    a(1, 0) = 4;
    a(1, 1) = 1; // eigenvalues 5, -3
    EXPECT_THROW(cholesky(a), Error);
}

TEST(Linalg, CholeskyRejectsNonSquare)
{
    Matrix<double> a(2, 3);
    EXPECT_THROW(cholesky(a), Error);
}

TEST(Linalg, TriangularSolveInvertsMultiply)
{
    const auto a = spd3();
    const auto l = cholesky(a);
    const std::vector<double> x = {1.0, -2.0, 0.5};
    // b = L x, then solve should recover x.
    std::vector<double> b(3, 0.0);
    for (int i = 0; i < 3; ++i)
        for (int j = 0; j <= i; ++j)
            b[i] += l(i, j) * x[j];
    const auto sol = solveLowerTriangular(l, b);
    for (int i = 0; i < 3; ++i)
        EXPECT_NEAR(sol[i], x[i], 1e-12);
}

TEST(Linalg, DotAndMatVec)
{
    EXPECT_NEAR((dot<double, double>({1, 2, 3}, {4, 5, 6})), 32.0, 1e-12);
    EXPECT_THROW((dot<double, double>({1}, {1, 2})), Error);

    Matrix<double> m(2, 3);
    m(0, 0) = 1;
    m(0, 1) = 2;
    m(0, 2) = 3;
    m(1, 0) = 4;
    m(1, 1) = 5;
    m(1, 2) = 6;
    const auto y = matVec(m, std::vector<double>{1.0, 0.0, -1.0});
    EXPECT_NEAR(y[0], -2.0, 1e-12);
    EXPECT_NEAR(y[1], -2.0, 1e-12);
}

TEST(Linalg, MvnCholeskyMatchesDiagonalClosedForm)
{
    // Diagonal covariance: MVN factorizes into independent normals.
    Matrix<double> cov(3, 3);
    const double sd[3] = {0.5, 1.0, 2.0};
    for (int i = 0; i < 3; ++i)
        cov(i, i) = sd[i] * sd[i];
    const auto l = cholesky(cov);
    const std::vector<double> y = {0.3, -1.0, 2.5};
    const std::vector<double> mu = {0.0, 0.5, 1.0};
    double expect = 0.0;
    for (int i = 0; i < 3; ++i)
        expect += normal_lpdf(y[i], mu[i], sd[i]);
    EXPECT_NEAR(multi_normal_cholesky_lpdf(y, mu, l), expect, 1e-12);
}

TEST(Linalg, MvnGradientMatchesFiniteDifference)
{
    const auto a = spd3();
    const std::vector<double> y = {1.0, 0.0, -1.0};
    auto lpAt = [&](double m0) {
        const auto l = cholesky(a);
        return multi_normal_cholesky_lpdf(
            y, std::vector<double>{m0, 0.2, 0.1}, l);
    };

    Tape tape;
    Var m0 = leaf(tape, 0.4);
    std::vector<Var> mu = {m0, Var(0.2), Var(0.1)};
    Matrix<Var> lv(3, 3);
    const auto ld = cholesky(a);
    for (int i = 0; i < 3; ++i)
        for (int j = 0; j < 3; ++j)
            lv(i, j) = Var(ld(i, j));
    std::vector<Var> yv = {Var(1.0), Var(0.0), Var(-1.0)};
    Var lp = multi_normal_cholesky_lpdf(yv, mu, lv);
    std::vector<double> adj;
    tape.gradient(lp.id(), adj);
    const double h = 1e-6;
    EXPECT_NEAR(adj[m0.id()], (lpAt(0.4 + h) - lpAt(0.4 - h)) / (2 * h),
                1e-5);
}

TEST(Linalg, GpKernelSymmetricPositiveDefinite)
{
    std::vector<double> xs;
    for (int i = 0; i < 12; ++i)
        xs.push_back(0.3 * i);
    const auto k = gpCovSquaredExp(xs, 0.8, 1.1, 1e-8);
    for (std::size_t i = 0; i < k.rows(); ++i) {
        EXPECT_NEAR(k(i, i), 0.64 + 1e-8, 1e-12);
        for (std::size_t j = 0; j < k.cols(); ++j)
            EXPECT_DOUBLE_EQ(k(i, j), k(j, i));
    }
    // PD check: Cholesky must succeed.
    EXPECT_NO_THROW(cholesky(k));
}

TEST(Linalg, GpKernelDecaysWithDistance)
{
    const auto k = gpCovSquaredExp({0.0, 0.5, 5.0}, 1.0, 1.0, 0.0);
    EXPECT_GT(k(0, 1), k(0, 2));
    EXPECT_NEAR(k(0, 2), std::exp(-12.5), 1e-12);
}

TEST(Linalg, MatrixBoundsAssertedAndShaped)
{
    Matrix<double> m(2, 2);
    EXPECT_EQ(m.rows(), 2u);
    EXPECT_EQ(m.cols(), 2u);
    EXPECT_EQ(m.data().size(), 4u);
    EXPECT_DOUBLE_EQ(m(1, 1), 0.0);
}

} // namespace
} // namespace bayes::math
