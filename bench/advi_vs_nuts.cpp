/**
 * @file
 * §II-B companion — variational inference vs sampling. The paper
 * chooses NUTS because variational methods "do not output posterior
 * distributions as sampling algorithms do, and do not have guarantees
 * to be asymptotically exact"; this bench quantifies the trade-off:
 * ADVI's gradient-evaluation budget vs NUTS', and the quality gap
 * (moment-matched KL of each against a long NUTS ground truth).
 *
 * Output: the human-readable table on stdout plus the obs snapshot —
 * per-workload `bench.advi_vs_nuts.*` gauges — written to
 * `$BAYES_BENCH_METRICS_DIR/advi_vs_nuts.json` via
 * bench::writeRunReport (bench-local gauges; the src/ catalogue rule
 * R004 does not apply to bench metrics).
 */
#include "common.hpp"
#include "diagnostics/convergence.hpp"
#include "diagnostics/summary.hpp"
#include "obs/obs.hpp"
#include "samplers/advi.hpp"
#include "support/table.hpp"
#include "support/timer.hpp"

#include <cstdio>

using namespace bayes;

namespace {

std::vector<std::vector<double>>
byCoordinate(const std::vector<std::vector<double>>& draws,
             std::size_t dim)
{
    std::vector<std::vector<double>> out(dim);
    for (const auto& d : draws)
        for (std::size_t i = 0; i < dim; ++i)
            out[i].push_back(d[i]);
    return out;
}

} // namespace

int
main()
{
    Table table({"workload", "method", "grad evals", "wall s",
                 "KL vs truth"});
    for (const std::string name : {"12cities", "ad", "racial"}) {
        const auto wl = workloads::makeWorkload(name);
        const std::size_t dim = wl->layout().dim();

        // Ground truth: long NUTS run.
        std::fprintf(stderr, "[bench] %s ground truth...\n", name.c_str());
        samplers::Config gt;
        gt.chains = 4;
        gt.iterations = 2 * wl->info().defaultIterations;
        const auto gtRun = samplers::run(*wl, gt);
        std::vector<std::vector<double>> truth(dim);
        for (std::size_t i = 0; i < dim; ++i)
            truth[i] = diagnostics::pooledCoordinate(gtRun, i);

        // NUTS at the user setting.
        Timer nutsTimer;
        samplers::Config cfg;
        cfg.chains = 4;
        cfg.iterations = wl->info().defaultIterations;
        const auto nutsRun = samplers::run(*wl, cfg);
        std::vector<std::vector<double>> nutsDraws(dim);
        for (std::size_t i = 0; i < dim; ++i)
            nutsDraws[i] = diagnostics::pooledCoordinate(nutsRun, i);
        const double nutsSeconds = nutsTimer.seconds();
        const double nutsKl = diagnostics::gaussianKl(nutsDraws, truth);
        table.row()
            .cell(name)
            .cell("NUTS")
            .cell(static_cast<long>(nutsRun.totalGradEvals()))
            .cell(nutsSeconds, 1)
            .cell(nutsKl, 4);

        // ADVI.
        Timer adviTimer;
        const auto fit = samplers::fitAdvi(*wl);
        const double adviSeconds = adviTimer.seconds();
        const double adviKl =
            diagnostics::gaussianKl(byCoordinate(fit.draws, dim), truth);
        table.row()
            .cell(name)
            .cell("ADVI")
            .cell(static_cast<long>(fit.gradEvals))
            .cell(adviSeconds, 1)
            .cell(adviKl, 4);

        auto& reg = obs::Registry::global();
        const std::string prefix = "bench.advi_vs_nuts." + name + ".";
        reg.gauge(prefix + "nuts_grad_evals")
            .set(static_cast<double>(nutsRun.totalGradEvals()));
        reg.gauge(prefix + "nuts_wall_seconds").set(nutsSeconds);
        reg.gauge(prefix + "nuts_kl_vs_truth").set(nutsKl);
        reg.gauge(prefix + "advi_grad_evals")
            .set(static_cast<double>(fit.gradEvals));
        reg.gauge(prefix + "advi_wall_seconds").set(adviSeconds);
        reg.gauge(prefix + "advi_kl_vs_truth").set(adviKl);
        std::fprintf(stderr, "[bench] %s done\n", name.c_str());
    }
    printSection("ADVI vs NUTS (§II-B): work and posterior quality "
                 "against a 2x NUTS ground truth",
                 table);
    bench::writeRunReport("advi_vs_nuts");
    return 0;
}
