// Fixture: a freestanding leaf header — any layer may include it
// without creating a layer edge (see the manifest in
// docs/architecture.md).
#pragma once

namespace fixture {
inline int freestandingValue() { return 42; }
}  // namespace fixture
