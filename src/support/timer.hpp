/**
 * @file
 * Wall-clock timer used for the (real) convergence-detection overhead
 * measurement and for bench bookkeeping. Simulated latencies come from
 * archsim, not from this timer.
 */
#pragma once

#include <chrono>

namespace bayes {

/** Monotonic wall-clock stopwatch. */
class Timer
{
  public:
    Timer() : start_(Clock::now()) {}

    /** Restart the stopwatch. */
    void reset() { start_ = Clock::now(); }

    /** Seconds elapsed since construction or the last reset(). */
    double seconds() const
    {
        return std::chrono::duration<double>(Clock::now() - start_).count();
    }

  private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start_;
};

} // namespace bayes
