/**
 * @file
 * `survival` — estimating animal survival probabilities from
 * capture-recapture data.
 *
 * Cormack-Jolly-Seber model after Kery & Schaub (BPA, 2011): animals
 * are captured, tagged and released; per-occasion survival and
 * recapture probabilities are inferred from resighting histories. This
 * implementation adds site-group heterogeneity in recapture (a
 * logit-normal random effect), and evaluates the standard CJS
 * likelihood with the chi ("never seen again") recursion.
 */
#pragma once

#include "workloads/workload.hpp"

namespace bayes::workloads {

/** Cormack-Jolly-Seber capture-recapture workload. */
class AnimalSurvival : public Workload
{
  public:
    explicit AnimalSurvival(double dataScale = 1.0);

    double logProb(const ppl::ParamView<double>& p) const override;
    ad::Var logProb(const ppl::ParamView<ad::Var>& p) const override;
    double logProbScalar(const ppl::ParamView<double>& p) const override;
    ad::Var logProbScalar(const ppl::ParamView<ad::Var>& p) const override;

    /** Number of tagged individuals. */
    std::size_t numIndividuals() const { return firstCapture_.size(); }

    /** Number of capture occasions. */
    std::size_t numOccasions() const { return numOccasions_; }

    /** Number of site groups (recapture heterogeneity). */
    std::size_t numGroups() const { return numGroups_; }

    std::vector<double> dataSufficientStats() const override;

    /** Parameter block indices. */
    enum Block : std::size_t
    {
        kMuPhi,     ///< mean survival (logit)
        kSigmaPhi,  ///< between-occasion survival spread, > 0
        kPhiRaw,    ///< per-interval survival effects (logit)
        kMuP,       ///< mean recapture (logit)
        kPRaw,      ///< per-occasion recapture effects (logit)
        kSigmaEps,  ///< group heterogeneity, > 0
        kEps,       ///< per-group recapture effects
    };

  private:
    template <typename T>
    T logDensity(const ppl::ParamView<T>& p) const;
    template <typename T>
    T logDensityScalar(const ppl::ParamView<T>& p) const;

    std::size_t numOccasions_;
    std::size_t numGroups_;
    std::vector<int> firstCapture_;  ///< release occasion per individual
    std::vector<int> lastSighting_;  ///< last occasion seen
    std::vector<int> group_;         ///< site group per individual
    std::vector<std::uint8_t> history_; ///< [individual * T + occasion]

    // The CJS likelihood is linear in {logPhi, logP, log1mP, log chi}
    // with data-determined integer weights; the fused path dots these
    // precomputed counts against the per-(group, occasion) log terms.
    std::vector<double> phiCount_;  ///< [t] uses of logPhi[t]
    std::vector<double> pCount_;    ///< [g * (T-1) + t] resight counts
    std::vector<double> p1mCount_;  ///< [g * (T-1) + t] missed counts
    std::vector<double> chiCount_;  ///< [g * T + t] final sightings
};

} // namespace bayes::workloads
