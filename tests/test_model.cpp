/**
 * @file
 * Parameter layout and ParamView tests.
 */
#include <gtest/gtest.h>

#include "ppl/model.hpp"

namespace bayes::ppl {
namespace {

ParamLayout
exampleLayout()
{
    return ParamLayout({
        {"mu", 1, TransformKind::Identity, 0, 0},
        {"sigma", 1, TransformKind::LowerBound, 0.0, 0},
        {"beta", 3, TransformKind::Identity, 0, 0},
    });
}

TEST(ParamLayout, OffsetsAndDim)
{
    const auto layout = exampleLayout();
    EXPECT_EQ(layout.dim(), 5u);
    EXPECT_EQ(layout.blockCount(), 3u);
    EXPECT_EQ(layout.offset(0), 0u);
    EXPECT_EQ(layout.offset(1), 1u);
    EXPECT_EQ(layout.offset(2), 2u);
}

TEST(ParamLayout, BlockIndexByName)
{
    const auto layout = exampleLayout();
    EXPECT_EQ(layout.blockIndex("sigma"), 1u);
    EXPECT_THROW(layout.blockIndex("nope"), Error);
}

TEST(ParamLayout, CoordNames)
{
    const auto layout = exampleLayout();
    EXPECT_EQ(layout.coordName(0), "mu");
    EXPECT_EQ(layout.coordName(2), "beta[0]");
    EXPECT_EQ(layout.coordName(4), "beta[2]");
    EXPECT_THROW(layout.coordName(5), Error);
}

TEST(ParamLayout, RejectsBadBlocks)
{
    EXPECT_THROW(
        ParamLayout({{"x", 0, TransformKind::Identity, 0, 0}}), Error);
    EXPECT_THROW(
        ParamLayout({{"x", 1, TransformKind::Bounded, 2.0, 1.0}}), Error);
}

TEST(ParamView, AccessorsResolveOffsets)
{
    const auto layout = exampleLayout();
    const std::vector<double> values = {1.0, 2.0, 3.0, 4.0, 5.0};
    const ParamView<double> view(layout, values);
    EXPECT_DOUBLE_EQ(view.scalar(0), 1.0);
    EXPECT_DOUBLE_EQ(view.scalar(1), 2.0);
    EXPECT_DOUBLE_EQ(view.at(2, 0), 3.0);
    EXPECT_DOUBLE_EQ(view.at(2, 2), 5.0);
    EXPECT_DOUBLE_EQ(view[3], 4.0);
    EXPECT_EQ(view.blockSize(2), 3u);
    const auto beta = view.vec(2);
    EXPECT_EQ(beta, (std::vector<double>{3.0, 4.0, 5.0}));
}

} // namespace
} // namespace bayes::ppl
