/**
 * @file
 * Shared sampler result and configuration types. Work counters
 * (gradient evaluations, leapfrog steps, tape sizes) are first-class
 * because the architecture model consumes them to reconstruct
 * per-chain latency — including the paper's slowest-chain effect.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace bayes::samplers {

/** Inference algorithm selector. */
enum class Algorithm
{
    Nuts,  ///< No-U-Turn sampler (paper's default, Stan's default)
    Hmc,   ///< static-trajectory Hamiltonian Monte Carlo
    Mh,    ///< random-walk Metropolis-Hastings (Algorithm 1 baseline)
    Slice, ///< coordinate-wise slice sampler (Neal 2003)
};

/** Human-readable algorithm name. */
const char* algorithmName(Algorithm algo);

/** How the chains of one run are mapped onto threads. */
enum class ExecutionMode
{
    Sequential,     ///< lockstep rounds on the calling thread
    ThreadPerChain, ///< one dedicated worker per chain, for this run only
    Pool,           ///< process-shared worker pool, reused across runs
};

/** Human-readable execution-mode name. */
const char* executionModeName(ExecutionMode mode);

/**
 * Chain execution policy. All three modes are draw-for-draw identical
 * (chains own independent RNG streams and evaluators) and all three
 * support an IterationMonitor: parallel modes run *phased* — every
 * chain advances one round, a barrier fires, and the monitor decides
 * continue/stop on the calling thread before the next round — so
 * computation elision composes with parallelism.
 */
struct ExecutionPolicy
{
    ExecutionMode mode = ExecutionMode::Sequential;
    /** Pool mode: worker count; 0 = hardware concurrency. Else unused. */
    int workers = 0;

    static ExecutionPolicy sequential() { return {}; }
    static ExecutionPolicy threadPerChain()
    {
        return {ExecutionMode::ThreadPerChain, 0};
    }
    static ExecutionPolicy pool(int workers = 0)
    {
        return {ExecutionMode::Pool, workers};
    }
};

/** Configuration of a multi-chain run. */
struct Config
{
    Algorithm algorithm = Algorithm::Nuts;
    /** Number of Markov chains (paper follows [36] and uses 4). */
    int chains = 4;
    /** Total iterations per chain, including warmup. */
    int iterations = 2000;
    /**
     * Warmup (adaptation) iterations; draws from warmup are discarded.
     * Negative means "half of iterations" (the Stan default).
     */
    int warmup = -1;
    /** Target Metropolis acceptance statistic for step-size adaptation. */
    double targetAccept = 0.8;
    /** NUTS doubling limit. */
    int maxTreeDepth = 10;
    /** Leapfrog steps for static HMC. */
    int hmcLeapfrogSteps = 32;
    /** Adapt the diagonal metric during warmup (ablation knob). */
    bool adaptMetric = true;
    /** How chains are executed (see ExecutionPolicy). */
    ExecutionPolicy execution;
    /**
     * Pool mode: gather the chains' pending points into one EvalBatch
     * per round (HMC/MH), streaming the observed data once for all
     * chains. Draw-for-draw identical to the unbatched schedules;
     * ablation knob for the batching experiments.
     */
    bool batchEval = true;
    /**
     * Speculative prefetching depth (0 = off). Active in Pool mode
     * with batchEval on: each batched round also evaluates the
     * accept/reject descendants of every chain's pending proposal
     * (MH: the full depth-d tree; HMC: the reject branch one
     * iteration ahead) from replica RNG streams, committing cached
     * results when the chain realizes a predicted point. Draws are
     * byte-identical at every depth — mispredictions only cost
     * wasted lanes (see samplers::prefetch and docs/architecture.md).
     */
    int speculationDepth = 0;
    /** Base RNG seed; chain c uses the c-th fork of this stream. */
    std::uint64_t seed = 20190331;

    /** Resolved warmup count. */
    int resolvedWarmup() const { return warmup < 0 ? iterations / 2 : warmup; }

    /** Post-warmup draws per chain. */
    int postWarmup() const { return iterations - resolvedWarmup(); }
};

/** Per-iteration record used for work/latency reconstruction. */
struct IterationStat
{
    /** Gradient (leapfrog) evaluations consumed by this iteration. */
    std::uint32_t gradEvals;
    /** Tree depth (NUTS) or fixed step count (HMC); 0 for MH. */
    std::uint16_t treeDepth;
    /** True when the trajectory diverged. */
    bool divergent;
};

/** Result of a single chain. */
struct ChainResult
{
    /** Post-warmup draws on the constrained scale, [draw][coordinate]. */
    std::vector<std::vector<double>> draws;
    /** Log density of every post-warmup draw. */
    std::vector<double> logProbs;
    /** One entry per iteration including warmup. */
    std::vector<IterationStat> iterStats;
    /** Mean acceptance statistic over post-warmup iterations. */
    double acceptRate = 0.0;
    /** Adapted step size at the end of warmup (NUTS/HMC). */
    double stepSize = 0.0;
    /** Total gradient evaluations (all phases). */
    std::uint64_t totalGradEvals = 0;
    /** Count of divergent transitions post warmup. */
    std::uint64_t divergences = 0;
    /** Tape nodes per gradient evaluation (work intensity metric). */
    std::size_t tapeNodesPerEval = 0;

    /** Post-warmup gradient-evaluation count (latency proxy). */
    std::uint64_t postWarmupGradEvals() const;
};

/** Result of a multi-chain run. */
struct RunResult
{
    std::vector<ChainResult> chains;

    /** Extract one coordinate's draws from every chain. */
    std::vector<std::vector<double>> coordinate(std::size_t i) const;

    /** Total gradient evaluations across chains. */
    std::uint64_t totalGradEvals() const;
};

} // namespace bayes::samplers
