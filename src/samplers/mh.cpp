#include "samplers/mh.hpp"

#include <algorithm>
#include <cmath>

namespace bayes::samplers {

MhSampler::MhSampler(ppl::Evaluator& eval)
    : eval_(&eval),
      scale_(2.38 / std::sqrt(static_cast<double>(eval.dim())))
{
}

void
MhSampler::adaptScale(double acceptProb)
{
    ++adaptCount_;
    const double rate = 1.0 / std::sqrt(static_cast<double>(adaptCount_));
    scale_ *= std::exp(rate * (acceptProb - kTargetAccept));
    scale_ = std::clamp(scale_, 1e-6, 1e3);
}

MhTransition
MhSampler::transition(std::vector<double>& q, double& logProb, Rng& rng)
{
    std::vector<double> proposal;
    propose(q, rng, proposal);
    const double proposalLogProb = eval_->logProb(proposal);
    return finish(q, logProb, proposal, proposalLogProb, rng);
}

void
MhSampler::speculate(const std::vector<double>& q,
                     const std::vector<double>& pending, Rng replica,
                     int depth, prefetch::Ledger& ledger,
                     std::vector<prefetch::SpecLane>& lanes) const
{
    prefetch::planMhTree(q, pending, scale_, std::move(replica), depth,
                         ledger, lanes);
}

MhTransition
MhSampler::finish(std::vector<double>& q, double& logProb,
                  std::vector<double>& proposal, double proposalLogProb,
                  Rng& rng)
{
    MhTransition result;
    const double logRatio = proposalLogProb - logProb;
    result.acceptProb = std::min(1.0, std::exp(std::min(logRatio, 0.0)));
    // The accept draw is skipped for an infeasible proposal — keep the
    // short-circuit so the RNG stream matches the unbatched kernel.
    if (std::isfinite(proposalLogProb)
        && std::log(std::max(rng.uniform(), 1e-300)) < logRatio) {
        q = std::move(proposal);
        logProb = proposalLogProb;
        result.accepted = true;
    }
    return result;
}

} // namespace bayes::samplers
