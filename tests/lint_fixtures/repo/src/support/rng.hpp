// Fixture: the one place R003 permits std <random> machinery.
// We ship xoshiro instead of std::mt19937 (comment mention: no finding).
#pragma once
#include <random>

namespace fixture {
struct Rng {
    std::mt19937_64 engine{42};  // allowed inside src/support/rng.hpp
};
}  // namespace fixture
