/**
 * @file
 * Multi-chain driver. Chains execute in lockstep (round-robin, one
 * iteration each) so that a monitor callback can observe all chains
 * after every sampling round — the hook the convergence-elision
 * mechanism (§VI) plugs into. Lockstep order does not change any
 * chain's own trajectory: each chain has an independent RNG stream and
 * evaluator.
 *
 * Warmup adaptation mirrors Stan's windowed scheme in simplified form:
 * an initial step-size-only phase, a long variance-accumulation phase
 * that ends by installing the diagonal metric, and a final step-size
 * re-adaptation phase.
 */
#pragma once

#include <functional>

#include "ppl/evaluator.hpp"
#include "ppl/model.hpp"
#include "samplers/types.hpp"
#include "support/rng.hpp"

namespace bayes::samplers {

/**
 * Observer invoked after every completed post-warmup round.
 * @param drawsSoFar  post-warmup draws completed per chain
 * @param partial     chains being filled (draws valid up to drawsSoFar)
 * @return true to stop sampling early (computation elision)
 */
using IterationMonitor =
    std::function<bool(int drawsSoFar, const std::vector<ChainResult>& partial)>;

/**
 * Run a multi-chain inference job.
 * @param model    the Bayesian model to sample
 * @param config   chains / iterations / algorithm configuration
 * @param monitor  optional early-termination observer
 */
RunResult run(const ppl::Model& model, const Config& config,
              const IterationMonitor& monitor = nullptr);

/**
 * Draw a finite-density initial point on the unconstrained scale
 * (uniform(-2, 2) per coordinate, up to 100 attempts — Stan's rule).
 */
std::vector<double> findInitialPoint(ppl::Evaluator& eval, Rng& rng);

} // namespace bayes::samplers
