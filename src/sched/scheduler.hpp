/**
 * @file
 * LLC-miss prediction and platform scheduling (paper §V).
 *
 * The predictor regresses the measured 4-core LLC MPKI against the
 * static modeled-data-size feature in log-log space; the scheduler uses
 * a modeled-data-size threshold to split jobs into LLC-bound (routed to
 * the large-LLC platform) and compute-bound (routed to the
 * high-frequency platform) — no execution needed before placement.
 */
#pragma once

#include <string>
#include <vector>

#include "archsim/platform.hpp"
#include "ppl/model.hpp"
#include "support/stats.hpp"

namespace bayes::sched {

/** One (modeled data size, measured MPKI) training observation. */
struct MissObservation
{
    std::string workload;
    double modeledDataBytes;
    double llcMpki4Core;
};

/** Log-log linear LLC-miss-rate predictor over the static feature. */
class LlcMissPredictor
{
  public:
    /**
     * Fit on observations; following the paper, only workloads whose
     * MPKI exceeds @p fitFloor participate in the line fit (below the
     * floor the relationship is dominated by prefetcher/replacement
     * noise, Fig. 3).
     */
    void fit(const std::vector<MissObservation>& observations,
             double fitFloor = 1.0);

    /** Predicted 4-core LLC MPKI for a modeled data size. */
    double predictMpki(double modeledDataBytes) const;

    /**
     * Smallest modeled data size whose predicted MPKI reaches
     * @p mpkiThreshold (the scheduling threshold, default 1).
     */
    double dataSizeThreshold(double mpkiThreshold = 1.0) const;

    /** True once fit() has run with at least two points. */
    bool fitted() const { return fitted_; }

    /** Fitted slope in log-log space (elasticity of MPKI in size). */
    double slope() const { return fit_.slope; }

    /** Fitted intercept in log-log space. */
    double intercept() const { return fit_.intercept; }

  private:
    LinearFit fit_{0.0, 0.0};
    bool fitted_ = false;
};

/** Placement decision for one job. */
struct Placement
{
    std::string workload;
    bool llcBound;
    const archsim::Platform* platform;
};

/**
 * Two-platform scheduler: jobs whose modeled data size exceeds the
 * threshold go to the large-LLC platform, the rest to the
 * high-frequency platform.
 */
class PlatformScheduler
{
  public:
    /**
     * @param highFreq  small-LLC, high-frequency platform (Skylake)
     * @param bigLlc    large-LLC platform (Broadwell)
     * @param dataSizeThresholdBytes  static-feature decision threshold
     */
    PlatformScheduler(const archsim::Platform& highFreq,
                      const archsim::Platform& bigLlc,
                      double dataSizeThresholdBytes);

    /** Classify one model by its static feature. */
    bool isLlcBound(const ppl::Model& model) const;

    /** Choose the platform for one model. */
    Placement place(const ppl::Model& model) const;

    /** Decision threshold in bytes. */
    double threshold() const { return thresholdBytes_; }

  private:
    const archsim::Platform* highFreq_;
    const archsim::Platform* bigLlc_;
    double thresholdBytes_;
};

} // namespace bayes::sched
