/**
 * @file
 * Micro-bench — gradient-evaluation throughput per workload: wall time
 * of one logProbGrad call and the implied tape-node rate. This is the
 * sampler's inner loop; the architecture model's instruction counts are
 * anchored to these node counts.
 */
#include <benchmark/benchmark.h>

#include "ppl/evaluator.hpp"
#include "samplers/runner.hpp"
#include "workloads/suite.hpp"

using namespace bayes;

namespace {

void
BM_LogProbGrad(benchmark::State& state, const std::string& name)
{
    const auto wl = workloads::makeWorkload(name);
    ppl::Evaluator eval(*wl);
    Rng rng(7);
    const auto q = samplers::findInitialPoint(eval, rng);
    std::vector<double> grad;
    for (auto _ : state) {
        benchmark::DoNotOptimize(eval.logProbGrad(q, grad));
    }
    state.counters["tape_nodes"] =
        static_cast<double>(eval.lastTapeNodes());
    state.counters["nodes/s"] = benchmark::Counter(
        static_cast<double>(eval.lastTapeNodes()),
        benchmark::Counter::kIsIterationInvariantRate);
}

} // namespace

BENCHMARK_CAPTURE(BM_LogProbGrad, twelvecities, std::string("12cities"));
BENCHMARK_CAPTURE(BM_LogProbGrad, ad, std::string("ad"));
BENCHMARK_CAPTURE(BM_LogProbGrad, ode, std::string("ode"));
BENCHMARK_CAPTURE(BM_LogProbGrad, memory, std::string("memory"));
BENCHMARK_CAPTURE(BM_LogProbGrad, votes, std::string("votes"));
BENCHMARK_CAPTURE(BM_LogProbGrad, tickets, std::string("tickets"));
BENCHMARK_CAPTURE(BM_LogProbGrad, disease, std::string("disease"));
BENCHMARK_CAPTURE(BM_LogProbGrad, racial, std::string("racial"));
BENCHMARK_CAPTURE(BM_LogProbGrad, butterfly, std::string("butterfly"));
BENCHMARK_CAPTURE(BM_LogProbGrad, survival, std::string("survival"));
