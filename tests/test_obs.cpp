/**
 * @file
 * Observability layer contract: sharded counters aggregate exactly
 * under concurrent pool-worker writes, histogram quantiles stay within
 * the documented log-bucket resolution, snapshots taken while writers
 * run are race-free (exercised under TSan via the `sanitize` label),
 * and the tracer emits structurally valid Chrome trace_event JSON.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <cmath>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "obs/obs.hpp"
#include "samplers/runner.hpp"
#include "support/thread_pool.hpp"
#include "workloads/suite.hpp"

namespace bayes::obs {
namespace {

// ---------------------------------------------------------------------
// Minimal JSON reader — just enough to validate exporter output. Parses
// the full value grammar (objects, arrays, strings with escapes,
// numbers, true/false/null) and throws on any syntax error, so a
// passing parse is itself the "valid JSON" assertion.
struct Json
{
    enum class Kind { Object, Array, String, Number, Bool, Null };
    Kind kind = Kind::Null;
    std::map<std::string, Json> object;
    std::vector<Json> array;
    std::string string;
    double number = 0.0;
    bool boolean = false;

    bool has(const std::string& key) const
    {
        return kind == Kind::Object && object.count(key) > 0;
    }
    const Json& at(const std::string& key) const { return object.at(key); }
};

class JsonParser
{
  public:
    explicit JsonParser(const std::string& text) : text_(text) {}

    Json parse()
    {
        Json value = parseValue();
        skipWs();
        if (pos_ != text_.size())
            throw std::runtime_error("trailing bytes after JSON value");
        return value;
    }

  private:
    char peek()
    {
        if (pos_ >= text_.size())
            throw std::runtime_error("unexpected end of JSON");
        return text_[pos_];
    }
    char get() { char c = peek(); ++pos_; return c; }
    void skipWs()
    {
        while (pos_ < text_.size()
               && std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }
    void expect(char c)
    {
        if (get() != c)
            throw std::runtime_error(std::string("expected '") + c + "'");
    }

    Json parseValue()
    {
        skipWs();
        switch (peek()) {
        case '{': return parseObject();
        case '[': return parseArray();
        case '"': return parseString();
        case 't': literal("true"); return makeBool(true);
        case 'f': literal("false"); return makeBool(false);
        case 'n': literal("null"); return Json{};
        default: return parseNumber();
        }
    }

    static Json makeBool(bool b)
    {
        Json j;
        j.kind = Json::Kind::Bool;
        j.boolean = b;
        return j;
    }

    void literal(const char* word)
    {
        for (const char* p = word; *p; ++p)
            if (get() != *p)
                throw std::runtime_error("bad literal");
    }

    Json parseObject()
    {
        Json j;
        j.kind = Json::Kind::Object;
        expect('{');
        skipWs();
        if (peek() == '}') {
            get();
            return j;
        }
        while (true) {
            skipWs();
            Json key = parseString();
            skipWs();
            expect(':');
            j.object[key.string] = parseValue();
            skipWs();
            char c = get();
            if (c == '}')
                return j;
            if (c != ',')
                throw std::runtime_error("expected ',' or '}'");
        }
    }

    Json parseArray()
    {
        Json j;
        j.kind = Json::Kind::Array;
        expect('[');
        skipWs();
        if (peek() == ']') {
            get();
            return j;
        }
        while (true) {
            j.array.push_back(parseValue());
            skipWs();
            char c = get();
            if (c == ']')
                return j;
            if (c != ',')
                throw std::runtime_error("expected ',' or ']'");
        }
    }

    Json parseString()
    {
        Json j;
        j.kind = Json::Kind::String;
        expect('"');
        while (true) {
            char c = get();
            if (c == '"')
                return j;
            if (c == '\\') {
                char e = get();
                switch (e) {
                case '"': j.string += '"'; break;
                case '\\': j.string += '\\'; break;
                case '/': j.string += '/'; break;
                case 'b': j.string += '\b'; break;
                case 'f': j.string += '\f'; break;
                case 'n': j.string += '\n'; break;
                case 'r': j.string += '\r'; break;
                case 't': j.string += '\t'; break;
                case 'u':
                    for (int i = 0; i < 4; ++i)
                        if (!std::isxdigit(
                                static_cast<unsigned char>(get())))
                            throw std::runtime_error("bad \\u escape");
                    j.string += '?'; // tests only check structure
                    break;
                default: throw std::runtime_error("bad escape");
                }
            } else {
                j.string += c;
            }
        }
    }

    Json parseNumber()
    {
        const std::size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        while (pos_ < text_.size()
               && (std::isdigit(static_cast<unsigned char>(text_[pos_]))
                   || text_[pos_] == '.' || text_[pos_] == 'e'
                   || text_[pos_] == 'E' || text_[pos_] == '+'
                   || text_[pos_] == '-'))
            ++pos_;
        if (pos_ == start)
            throw std::runtime_error("expected number");
        Json j;
        j.kind = Json::Kind::Number;
        j.number = std::stod(text_.substr(start, pos_ - start));
        return j;
    }

    const std::string& text_;
    std::size_t pos_ = 0;
};

Json
parseJson(const std::string& text)
{
    return JsonParser(text).parse();
}

// ---------------------------------------------------------------------
// Counters

TEST(Counter, AddAndReset)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.add();
    c.add(41);
    EXPECT_EQ(c.value(), 42u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Counter, ConcurrentPoolIncrementsAggregateExactly)
{
    // Many pool workers hammering one counter: after quiescing, the
    // shard sum must be exact — no lost updates across shards.
    Counter c;
    support::ThreadPool pool(4);
    constexpr int kTasks = 64;
    constexpr int kAddsPerTask = 10000;
    std::vector<std::future<void>> futures;
    for (int t = 0; t < kTasks; ++t)
        futures.push_back(pool.submit([&c] {
            for (int i = 0; i < kAddsPerTask; ++i)
                c.add();
        }));
    support::waitAll(futures);
    EXPECT_EQ(c.value(),
              static_cast<std::uint64_t>(kTasks) * kAddsPerTask);
}

TEST(Gauge, LastWriteWins)
{
    Gauge g;
    g.set(1.5);
    g.set(-3.25);
    EXPECT_DOUBLE_EQ(g.value(), -3.25);
    g.reset();
    EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

// ---------------------------------------------------------------------
// Histograms

TEST(Histogram, EmptyStatsAreZero)
{
    Histogram h;
    const auto s = h.stats();
    EXPECT_EQ(s.count, 0u);
    EXPECT_DOUBLE_EQ(s.sum, 0.0);
    EXPECT_DOUBLE_EQ(s.min, 0.0);
    EXPECT_DOUBLE_EQ(s.max, 0.0);
    EXPECT_DOUBLE_EQ(s.p50, 0.0);
}

TEST(Histogram, CountSumMinMaxAreExact)
{
    Histogram h;
    for (double v : {0.5, 2.0, 8.0, 1.0})
        h.observe(v);
    const auto s = h.stats();
    EXPECT_EQ(s.count, 4u);
    EXPECT_DOUBLE_EQ(s.sum, 11.5);
    EXPECT_DOUBLE_EQ(s.min, 0.5);
    EXPECT_DOUBLE_EQ(s.max, 8.0);
    EXPECT_DOUBLE_EQ(s.mean(), 11.5 / 4.0);
}

TEST(Histogram, QuantilesWithinLogBucketResolution)
{
    // Uniform 1..1000: quantile estimates must land within the
    // documented quarter-octave resolution (~19% relative error).
    Histogram h;
    for (int i = 1; i <= 1000; ++i)
        h.observe(static_cast<double>(i));
    for (double q : {0.5, 0.9, 0.99}) {
        const double expected = q * 1000.0;
        const double got = h.quantile(q);
        EXPECT_GT(got, expected * 0.80) << "q=" << q;
        EXPECT_LT(got, expected * 1.20) << "q=" << q;
    }
}

TEST(Histogram, SingleValueQuantilesAreExact)
{
    // With one distinct value the quantile clamps into [min, max] and
    // is therefore exact despite the log buckets.
    Histogram h;
    for (int i = 0; i < 10; ++i)
        h.observe(3.75);
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 3.75);
    EXPECT_DOUBLE_EQ(h.quantile(0.99), 3.75);
}

TEST(Histogram, NonPositiveValuesLandInUnderflow)
{
    Histogram h;
    h.observe(0.0);
    h.observe(-5.0);
    h.observe(4.0);
    const auto s = h.stats();
    EXPECT_EQ(s.count, 3u);
    EXPECT_DOUBLE_EQ(s.min, -5.0);
    EXPECT_DOUBLE_EQ(s.max, 4.0);
}

TEST(Histogram, ConcurrentObservationsKeepExactCount)
{
    Histogram h;
    support::ThreadPool pool(4);
    constexpr int kTasks = 32;
    constexpr int kObsPerTask = 5000;
    std::vector<std::future<void>> futures;
    for (int t = 0; t < kTasks; ++t)
        futures.push_back(pool.submit([&h, t] {
            for (int i = 0; i < kObsPerTask; ++i)
                h.observe(1.0 + (t * kObsPerTask + i) % 100);
        }));
    support::waitAll(futures);
    const auto s = h.stats();
    EXPECT_EQ(s.count,
              static_cast<std::uint64_t>(kTasks) * kObsPerTask);
    EXPECT_DOUBLE_EQ(s.min, 1.0);
    EXPECT_DOUBLE_EQ(s.max, 100.0);
}

// ---------------------------------------------------------------------
// Registry

TEST(Registry, HandlesAreStableAndNamespacesIndependent)
{
    Registry reg;
    Counter& a = reg.counter("x");
    Counter& b = reg.counter("x");
    EXPECT_EQ(&a, &b);
    // A gauge named "x" is a different metric.
    reg.gauge("x").set(7.0);
    a.add(3);
    EXPECT_EQ(reg.counter("x").value(), 3u);
    EXPECT_DOUBLE_EQ(reg.gauge("x").value(), 7.0);
}

TEST(Registry, SnapshotLookupAndMissingNames)
{
    Registry reg;
    reg.counter("hits").add(5);
    reg.gauge("level").set(2.5);
    reg.histogram("lat").observe(1.0);
    const auto snap = reg.snapshot();
    EXPECT_EQ(snap.counter("hits"), 5u);
    EXPECT_DOUBLE_EQ(snap.gauge("level"), 2.5);
    ASSERT_NE(snap.histogram("lat"), nullptr);
    EXPECT_EQ(snap.histogram("lat")->count, 1u);
    EXPECT_EQ(snap.counter("absent"), 0u);
    EXPECT_DOUBLE_EQ(snap.gauge("absent"), 0.0);
    EXPECT_EQ(snap.histogram("absent"), nullptr);
}

TEST(Registry, ResetZeroesEverythingHandlesSurvive)
{
    Registry reg;
    Counter& c = reg.counter("n");
    c.add(9);
    reg.gauge("g").set(1.0);
    reg.histogram("h").observe(2.0);
    reg.reset();
    EXPECT_EQ(c.value(), 0u);
    EXPECT_DOUBLE_EQ(reg.gauge("g").value(), 0.0);
    EXPECT_EQ(reg.histogram("h").stats().count, 0u);
    c.add(1); // the old handle still works
    EXPECT_EQ(reg.counter("n").value(), 1u);
}

TEST(Registry, SnapshotWhileWritingIsRaceFreeAndMonotonic)
{
    // Pool workers write continuously while the main thread snapshots.
    // Under -DBAYES_SANITIZE=thread this is the data-race check; in any
    // build the observed counter value must be monotone non-decreasing
    // and end exact after quiescing.
    Registry reg;
    Counter& c = reg.counter("w");
    Histogram& h = reg.histogram("lat");
    support::ThreadPool pool(4);
    constexpr int kTasks = 16;
    constexpr int kOps = 20000;
    std::vector<std::future<void>> futures;
    for (int t = 0; t < kTasks; ++t)
        futures.push_back(pool.submit([&c, &h] {
            for (int i = 0; i < kOps; ++i) {
                c.add();
                h.observe(1.0 + i % 7);
            }
        }));
    std::uint64_t last = 0;
    for (int i = 0; i < 200; ++i) {
        const auto snap = reg.snapshot();
        const std::uint64_t now = snap.counter("w");
        EXPECT_GE(now, last);
        last = now;
    }
    support::waitAll(futures);
    EXPECT_EQ(reg.snapshot().counter("w"),
              static_cast<std::uint64_t>(kTasks) * kOps);
    EXPECT_EQ(reg.snapshot().histogram("lat")->count,
              static_cast<std::uint64_t>(kTasks) * kOps);
}

TEST(Snapshot, JsonIsValidAndCarriesEveryMetric)
{
    Registry reg;
    reg.counter("a.count").add(2);
    reg.gauge("b.level").set(0.5);
    reg.histogram("c \"quoted\"\n").observe(1.0);
    std::ostringstream os;
    reg.snapshot().writeJson(os);
    const Json doc = parseJson(os.str());
    ASSERT_TRUE(doc.has("counters"));
    ASSERT_TRUE(doc.has("gauges"));
    ASSERT_TRUE(doc.has("histograms"));
    EXPECT_DOUBLE_EQ(doc.at("counters").at("a.count").number, 2.0);
    EXPECT_DOUBLE_EQ(doc.at("gauges").at("b.level").number, 0.5);
    // The escaped name round-trips; the histogram object has the
    // documented fields.
    ASSERT_EQ(doc.at("histograms").object.size(), 1u);
    const Json& hist = doc.at("histograms").object.begin()->second;
    for (const char* key : {"count", "sum", "min", "max", "p50", "p90",
                            "p99"})
        EXPECT_TRUE(hist.has(key)) << key;
}

// ---------------------------------------------------------------------
// Tracer

TEST(Tracer, IdleSpansRecordNothing)
{
    Tracer& tracer = Tracer::global();
    tracer.stop();
    const std::size_t before = tracer.eventCount();
    {
        Span s("idle.span");
        Span dynamic(std::string("idle.dynamic"));
    }
    tracer.counter("idle.counter", 1.0);
    tracer.instant("idle.instant");
    EXPECT_EQ(tracer.eventCount(), before);
}

TEST(Tracer, TraceJsonIsValidTraceEventFormat)
{
    Tracer& tracer = Tracer::global();
    tracer.start();
    {
        Span outer("test.outer");
        {
            Span inner("test.inner");
        }
        tracer.counter("test.rhat", 1.23);
        tracer.instant("test.mark");
    }
    // Spans recorded from pool workers land on their own tid tracks.
    {
        support::ThreadPool pool(2);
        std::vector<std::future<void>> futures;
        for (int i = 0; i < 4; ++i)
            futures.push_back(pool.submit([] { Span s("test.task"); }));
        support::waitAll(futures);
    }
    tracer.stop();

    std::ostringstream os;
    tracer.writeJson(os);
    const Json doc = parseJson(os.str());

    ASSERT_TRUE(doc.has("traceEvents"));
    const Json& events = doc.at("traceEvents");
    ASSERT_EQ(events.kind, Json::Kind::Array);
    ASSERT_GE(events.array.size(), 6u);

    std::size_t complete = 0, counters = 0, instants = 0, metadata = 0;
    std::vector<std::string> names;
    for (const Json& e : events.array) {
        ASSERT_EQ(e.kind, Json::Kind::Object);
        // Required trace_event fields on every record.
        for (const char* key : {"name", "ph", "ts", "pid", "tid"})
            ASSERT_TRUE(e.has(key)) << key;
        ASSERT_EQ(e.at("ph").kind, Json::Kind::String);
        ASSERT_EQ(e.at("ph").string.size(), 1u);
        ASSERT_EQ(e.at("ts").kind, Json::Kind::Number);
        EXPECT_GE(e.at("ts").number, 0.0);
        names.push_back(e.at("name").string);
        switch (e.at("ph").string[0]) {
        case 'X':
            ASSERT_TRUE(e.has("dur"));
            EXPECT_GE(e.at("dur").number, 0.0);
            ++complete;
            break;
        case 'C':
            ASSERT_TRUE(e.has("args"));
            ASSERT_TRUE(e.at("args").has("value"));
            EXPECT_DOUBLE_EQ(e.at("args").at("value").number, 1.23);
            ++counters;
            break;
        case 'i': ++instants; break;
        case 'M': ++metadata; break;
        default: FAIL() << "unexpected phase " << e.at("ph").string;
        }
    }
    EXPECT_GE(complete, 2u); // outer + inner at minimum
    EXPECT_EQ(counters, 1u);
    EXPECT_EQ(instants, 1u);
    EXPECT_GE(metadata, 1u); // process_name
    for (const char* expected :
         {"test.outer", "test.inner", "test.rhat", "test.mark"})
        EXPECT_NE(std::find(names.begin(), names.end(), expected),
                  names.end())
            << expected;
}

TEST(Metrics, SpeculationAccountingInvariant)
{
    // Every speculative lane the prefetch ledgers issue must be
    // resolved exactly once — committed (hit) or aborted unconsumed
    // (wasted) — by the end of the run, including lanes in flight when
    // the run stops. MH at depth 2 predicts the next proposal from a
    // replica RNG stream, so a seeded pooled run both hits (the
    // realized branch is always one of the cached children) and
    // wastes (the other branches).
    Registry::global().reset();
    const auto wl = workloads::makeWorkload("ad", 0.1);
    samplers::Config cfg;
    cfg.algorithm = samplers::Algorithm::Mh;
    cfg.chains = 3;
    cfg.iterations = 40;
    cfg.warmup = 20;
    cfg.seed = 777;
    cfg.execution = samplers::ExecutionPolicy::pool(2);
    cfg.batchEval = true;
    cfg.speculationDepth = 2;
    samplers::run(*wl, cfg);

    const auto issued = Registry::global().counter("spec.issued").value();
    const auto hits = Registry::global().counter("spec.hits").value();
    const auto wasted = Registry::global().counter("spec.wasted").value();
    EXPECT_GT(issued, 0u);
    EXPECT_GT(hits, 0u);
    EXPECT_GT(wasted, 0u);
    EXPECT_EQ(hits + wasted, issued);
}

TEST(Metrics, SpeculationDepthZeroEmitsNothing)
{
    Registry::global().reset();
    const auto wl = workloads::makeWorkload("ad", 0.1);
    samplers::Config cfg;
    cfg.algorithm = samplers::Algorithm::Mh;
    cfg.chains = 3;
    cfg.iterations = 40;
    cfg.warmup = 20;
    cfg.seed = 777;
    cfg.execution = samplers::ExecutionPolicy::pool(2);
    cfg.batchEval = true;
    cfg.speculationDepth = 0;
    samplers::run(*wl, cfg);

    EXPECT_EQ(Registry::global().counter("spec.issued").value(), 0u);
    EXPECT_EQ(Registry::global().counter("spec.hits").value(), 0u);
    EXPECT_EQ(Registry::global().counter("spec.wasted").value(), 0u);
}

TEST(Tracer, StartClearsPreviousCollection)
{
    Tracer& tracer = Tracer::global();
    tracer.start();
    { Span s("round.one"); }
    tracer.stop();
    EXPECT_GE(tracer.eventCount(), 1u);
    tracer.start();
    tracer.stop();
    EXPECT_EQ(tracer.eventCount(), 0u);
}

} // namespace
} // namespace bayes::obs
