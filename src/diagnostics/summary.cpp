#include "diagnostics/summary.hpp"

#include <algorithm>

#include "diagnostics/convergence.hpp"
#include "support/error.hpp"
#include "support/stats.hpp"

namespace bayes::diagnostics {

double
PosteriorSummary::maxRhat() const
{
    double worst = 1.0;
    for (const auto& c : coords)
        worst = std::max(worst, c.rhat);
    return worst;
}

double
PosteriorSummary::minEss() const
{
    BAYES_CHECK(!coords.empty(), "empty summary");
    double best = coords[0].ess;
    for (const auto& c : coords)
        best = std::min(best, c.ess);
    return best;
}

Table
PosteriorSummary::table() const
{
    Table t({"param", "mean", "sd", "5%", "50%", "95%", "Rhat", "ESS"});
    for (const auto& c : coords) {
        t.row()
            .cell(c.name)
            .cell(c.mean, 4)
            .cell(c.sd, 4)
            .cell(c.q05, 4)
            .cell(c.median, 4)
            .cell(c.q95, 4)
            .cell(c.rhat, 3)
            .cell(c.ess, 0);
    }
    return t;
}

PosteriorSummary
summarize(const samplers::RunResult& run, const ppl::ParamLayout& layout)
{
    BAYES_CHECK(!run.chains.empty() && !run.chains[0].draws.empty(),
                "cannot summarize an empty run");
    PosteriorSummary out;
    out.coords.reserve(layout.dim());
    for (std::size_t i = 0; i < layout.dim(); ++i) {
        const auto chains = run.coordinate(i);
        const auto pooled = pooledCoordinate(run, i);
        CoordinateSummary c;
        c.name = layout.coordName(i);
        c.mean = mean(pooled);
        c.sd = pooled.size() >= 2 ? stddev(pooled) : 0.0;
        c.q05 = quantile(pooled, 0.05);
        c.median = quantile(pooled, 0.50);
        c.q95 = quantile(pooled, 0.95);
        c.rhat = chains[0].size() >= 4 ? splitRhat(chains) : INFINITY;
        c.ess = chains[0].size() >= 4 ? effectiveSampleSize(chains) : 0.0;
        out.coords.push_back(std::move(c));
    }
    return out;
}

std::vector<double>
pooledCoordinate(const samplers::RunResult& run, std::size_t i)
{
    std::vector<double> out;
    for (const auto& chain : run.chains)
        for (const auto& draw : chain.draws)
            out.push_back(draw.at(i));
    return out;
}

std::vector<std::vector<double>>
recentWindow(const samplers::RunResult& run, std::size_t i,
             double keepFraction)
{
    BAYES_CHECK(keepFraction > 0.0 && keepFraction <= 1.0,
                "keepFraction must be in (0,1]");
    std::vector<std::vector<double>> out;
    out.reserve(run.chains.size());
    for (const auto& chain : run.chains) {
        const std::size_t n = chain.draws.size();
        const std::size_t keep = std::max<std::size_t>(
            4, static_cast<std::size_t>(keepFraction
                                        * static_cast<double>(n)));
        const std::size_t start = n > keep ? n - keep : 0;
        std::vector<double> xs;
        xs.reserve(n - start);
        for (std::size_t t = start; t < n; ++t)
            xs.push_back(chain.draws[t].at(i));
        out.push_back(std::move(xs));
    }
    return out;
}

double
runMaxRhat(const samplers::RunResult& run)
{
    BAYES_CHECK(!run.chains.empty() && !run.chains[0].draws.empty(),
                "empty run");
    const std::size_t dim = run.chains[0].draws[0].size();
    double worst = 1.0;
    for (std::size_t i = 0; i < dim; ++i)
        worst = std::max(worst, splitRhat(run.coordinate(i)));
    return worst;
}

} // namespace bayes::diagnostics
