/**
 * @file
 * Analytic core timing model. Converts a chain's per-evaluation op-mix
 * profile plus the cache simulator's per-evaluation miss counts into
 * instructions, cycles, IPC, and the ancillary front-end metrics
 * (branch and i-cache MPKI) reported in the paper's Fig. 1.
 *
 * The instruction model charges fixed costs per tape node for the
 * forward build and the reverse sweep; the cycle model starts from a
 * base CPI (the out-of-order core's throughput on the mul/add-heavy
 * interpreter loop) and adds issue-latency surcharges for divides and
 * transcendentals plus memory penalties per miss level. All constants
 * live in CoreParams so ablation benches can sweep them.
 */
#pragma once

#include <algorithm>
#include <cstdint>

#include "archsim/platform.hpp"
#include "archsim/profiler.hpp"

namespace bayes::archsim {

/** Tunable constants of the core model. */
struct CoreParams
{
    double instrPerNodeForward = 9.0;
    double instrPerNodeReverse = 6.0;
    double instrPerDataByte = 0.15;   ///< likelihood data streaming
    double instrPerDimPerIter = 160.0; ///< momentum refresh, u-turn checks

    double baseCpi = 0.30;
    double divExtraCycles = 9.0;
    double specialExtraCycles = 24.0;
    /** Cycles saved per fusable mul+add pair (FMA issue fusion). */
    double fmaFusionCycles = 0.55;

    /** Model the hardware stream prefetcher (ablation knob). */
    bool prefetchEnabled = true;

    double l2HitPenalty = 10.0;   ///< cycles per demand L1 miss hitting L2
    double llcHitPenalty = 26.0;  ///< cycles per demand L2 miss hitting LLC
    double memOverlap = 0.5;      ///< fraction of DRAM latency exposed
    double streamAccessCycles = 0.45; ///< cycles per prefetch-covered access

    double branchPerInstr = 0.13;
    double mispredictPenalty = 15.0;
    /** Late/inaccurate prefetch fraction counted as demand LLC misses. */
    double prefetchLateFraction = 0.08;
    /** Cold/conflict traffic floor as a fraction of accesses. */
    double coldTrafficFraction = 0.002;
    /** LLC MPKI floor from sporadic cold and conflict misses. */
    double llcMpkiFloor = 0.05;

    /** i-cache model: hot generated-model code footprint per tape node. */
    double icacheFootprintBase = 2500.0;
    double icacheBytesPerNode = 0.12;
    double icacheMissCeiling = 16.0;
    double icacheMissPenalty = 20.0;
};

/** Per-evaluation memory behavior measured by the cache replay. */
struct EvalMemStats
{
    double accesses = 0;       ///< total accesses per evaluation
    double streamAccesses = 0; ///< accesses covered by the prefetcher
    double demandL2Hits = 0;   ///< demand L1 misses that hit L2
    double demandLlcHits = 0;  ///< demand L2 misses that hit LLC
    double demandLlcMisses = 0;///< demand misses to DRAM
    double streamLlcMisses = 0;///< prefetch fetches from DRAM
    double writebacks = 0;     ///< dirty LLC evictions
};

/** Timing/metrics of one chain on one platform. */
struct EvalCost
{
    double instructions = 0;
    double cycles = 0;
    double llcMpki = 0;
    double icacheMpki = 0;
    double branchMpki = 0;
    double llcTrafficBytes = 0; ///< fetches + writebacks per evaluation

    double ipc() const { return cycles > 0 ? instructions / cycles : 0.0; }
};

/**
 * Combine an op-mix profile and measured memory behavior into a
 * per-evaluation cost.
 */
EvalCost evalCost(const EvalProfile& profile, const EvalMemStats& mem,
                  const Platform& platform,
                  const CoreParams& params = CoreParams{});

} // namespace bayes::archsim
