#include "workloads/tickets_quota.hpp"

#include <cmath>
#include <span>

#include "math/distributions.hpp"
#include "math/vec_kernels.hpp"

namespace bayes::workloads {

TicketsQuota::TicketsQuota(double dataScale, double subsampleFraction)
    : Workload(
          WorkloadInfo{
              "tickets", "Logistic Regression",
              "Do police officers alter the ticket writing to match "
              "departmental targets?",
              "Auerbach 2017 [19]",
              "NYC parking/moving violation tickets 2014-2015",
              /*defaultIterations=*/800},
          dataScale)
{
    Rng rng = dataRng();
    numOfficers_ = 50;
    numCovariates_ = 10;
    const std::size_t months = scaled(14);

    const double muThetaTrue = 1.6;
    const double sigmaThetaTrue = 0.5;
    std::vector<double> thetaTrue(numOfficers_);
    for (auto& t : thetaTrue)
        t = rng.normal(muThetaTrue, sigmaThetaTrue);
    std::vector<double> betaTrue(numCovariates_);
    for (auto& b : betaTrue)
        b = rng.normal(0.0, 0.25);

    for (std::size_t o = 0; o < numOfficers_; ++o) {
        for (std::size_t m = 0; m < months; ++m) {
            for (int half = 0; half < 2; ++half) {
                const double eom = half == 1 ? 1.0 : 0.0;
                double eta = thetaTrue[o] + kTrueQuotaEffect * eom;
                for (std::size_t k = 0; k < numCovariates_; ++k) {
                    const double x = rng.normal(0.0, 1.0);
                    covariates_.push_back(x);
                    eta += betaTrue[k] * x;
                }
                counts_.push_back(rng.poisson(std::exp(eta)));
                officer_.push_back(static_cast<int>(o));
                endOfMonth_.push_back(eom);
            }
        }
    }

    BAYES_CHECK(subsampleFraction > 0.0 && subsampleFraction <= 1.0,
                "subsampleFraction must be in (0, 1]");
    activeRows_ = std::max<std::size_t>(
        8, static_cast<std::size_t>(subsampleFraction
                                    * static_cast<double>(counts_.size())));
    likelihoodWeight_ =
        static_cast<double>(counts_.size()) / static_cast<double>(activeRows_);

    // Row-major design matrix for the fused GLM kernel: end-of-month
    // indicator first, then the covariates, matching the coefficient
    // order {delta, beta...} the fused path assembles.
    design_.reserve(counts_.size() * (1 + numCovariates_));
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        design_.push_back(endOfMonth_[i]);
        const double* row = &covariates_[i * numCovariates_];
        for (std::size_t k = 0; k < numCovariates_; ++k)
            design_.push_back(row[k]);
    }

    // The modeled data size is what one likelihood evaluation visits.
    const std::size_t rowBytes = sizeof(long) + sizeof(int)
        + (1 + numCovariates_) * sizeof(double);
    setModeledDataBytes(activeRows_ * rowBytes);

    setLayout({
        {"mu_theta", 1, ppl::TransformKind::Identity, 0, 0},
        {"sigma_theta", 1, ppl::TransformKind::LowerBound, 0.0, 0},
        {"theta", numOfficers_, ppl::TransformKind::Identity, 0, 0},
        {"delta", 1, ppl::TransformKind::Identity, 0, 0},
        {"beta", numCovariates_, ppl::TransformKind::Identity, 0, 0},
    });
}

/** Prior terms shared verbatim by the single and batched fused paths. */
template <typename T>
T
TicketsQuota::priorLp(const ppl::ParamView<T>& p) const
{
    using namespace bayes::math;
    const T& muTheta = p.scalar(kMuTheta);
    const T& sigmaTheta = p.scalar(kSigmaTheta);

    T lp = normal_lpdf(muTheta, 0.0, 3.0)
        + normal_lpdf(sigmaTheta, 0.0, 1.0)
        + normal_lpdf(p.scalar(kDelta), 0.0, 1.0);
    lp += normal_lpdf_vec(p.block(kBeta), 0.0, 0.5);
    lp += normal_lpdf_vec(p.block(kTheta), muTheta, sigmaTheta);
    return lp;
}

template <typename T>
T
TicketsQuota::logDensity(const ppl::ParamView<T>& p) const
{
    using namespace bayes::math;
    T lp = priorLp(p);

    // Coefficients in design-column order: {delta, beta...}.
    std::vector<T> coef;
    coef.reserve(1 + numCovariates_);
    coef.push_back(p.scalar(kDelta));
    for (std::size_t k = 0; k < numCovariates_; ++k)
        coef.push_back(p.at(kBeta, k));
    const std::size_t rowLen = 1 + numCovariates_;
    const T dataLp = poisson_log_glm_lpmf(
        std::span<const long>(counts_.data(), activeRows_),
        std::span<const double>(design_.data(), activeRows_ * rowLen),
        std::span<const int>(officer_.data(), activeRows_),
        std::span<const double>(), p.block(kTheta),
        std::span<const T>(coef));
    // Inverse-probability reweighting keeps the subsampled likelihood
    // an unbiased surrogate for the full one.
    lp += likelihoodWeight_ * dataLp;
    return lp;
}

template <typename T>
T
TicketsQuota::logDensityScalar(const ppl::ParamView<T>& p) const
{
    using namespace bayes::math;
    const T& muTheta = p.scalar(kMuTheta);
    const T& sigmaTheta = p.scalar(kSigmaTheta);
    const T& delta = p.scalar(kDelta);

    T lp = normal_lpdf(muTheta, 0.0, 3.0)
        + normal_lpdf(sigmaTheta, 0.0, 1.0)
        + normal_lpdf(delta, 0.0, 1.0);
    for (std::size_t k = 0; k < numCovariates_; ++k)
        // bayes-lint: allow(R007): reference scalar path; fused twin above
        lp += normal_lpdf(p.at(kBeta, k), 0.0, 0.5);
    for (std::size_t o = 0; o < numOfficers_; ++o)
        // bayes-lint: allow(R007): reference scalar path; fused twin above
        lp += normal_lpdf(p.at(kTheta, o), muTheta, sigmaTheta);

    T dataLp = 0.0;
    for (std::size_t i = 0; i < activeRows_; ++i) {
        T eta = p.at(kTheta, static_cast<std::size_t>(officer_[i]))
            + delta * endOfMonth_[i];
        const double* row = &covariates_[i * numCovariates_];
        for (std::size_t k = 0; k < numCovariates_; ++k)
            eta += p.at(kBeta, k) * row[k];
        // bayes-lint: allow(R007): reference scalar path; fused twin above
        dataLp += poisson_log_lpmf(counts_[i], eta);
    }
    // Inverse-probability reweighting keeps the subsampled likelihood
    // an unbiased surrogate for the full one.
    lp += likelihoodWeight_ * dataLp;
    return lp;
}

template <typename T>
void
TicketsQuota::logDensityBatch(const ppl::BatchParamView<T>& p,
                              std::span<T> lp) const
{
    using namespace bayes::math;
    const std::size_t lanes = p.lanes();
    const std::size_t rowLen = 1 + numCovariates_;
    // Per lane, the same prior terms in the same order as logDensity.
    for (std::size_t k = 0; k < lanes; ++k)
        lp[k] = priorLp(p.lane(k));
    // One pass over the design matrix for all K lanes. Coefficients in
    // design-column order {delta, beta...}, lane-major.
    const std::vector<T> alphas = p.blockLanes(kTheta);
    std::vector<T> coef(lanes * rowLen);
    for (std::size_t k = 0; k < lanes; ++k) {
        coef[k * rowLen] = p.scalar(kDelta, k);
        for (std::size_t j = 0; j < numCovariates_; ++j)
            coef[k * rowLen + 1 + j] = p.at(kBeta, j, k);
    }
    std::vector<T> dataLp(lanes);
    poisson_log_glm_lpmf_batch(
        std::span<const long>(counts_.data(), activeRows_),
        std::span<const double>(design_.data(), activeRows_ * rowLen),
        std::span<const int>(officer_.data(), activeRows_),
        std::span<const double>(), std::span<const T>(alphas), numOfficers_,
        std::span<const T>(coef), rowLen, std::span<T>(dataLp));
    // Inverse-probability reweighting keeps the subsampled likelihood
    // an unbiased surrogate for the full one.
    for (std::size_t k = 0; k < lanes; ++k)
        lp[k] += likelihoodWeight_ * dataLp[k];
}

void
TicketsQuota::logProbBatch(const ppl::BatchParamView<double>& p,
                           std::span<double> lp) const
{
    logDensityBatch(p, lp);
}

void
TicketsQuota::logProbBatch(const ppl::BatchParamView<ad::Var>& p,
                           std::span<ad::Var> lp) const
{
    logDensityBatch(p, lp);
}

double
TicketsQuota::logProb(const ppl::ParamView<double>& p) const
{
    return logDensity(p);
}

ad::Var
TicketsQuota::logProb(const ppl::ParamView<ad::Var>& p) const
{
    return logDensity(p);
}

double
TicketsQuota::logProbScalar(const ppl::ParamView<double>& p) const
{
    return logDensityScalar(p);
}

ad::Var
TicketsQuota::logProbScalar(const ppl::ParamView<ad::Var>& p) const
{
    return logDensityScalar(p);
}

std::vector<double>
TicketsQuota::dataSufficientStats() const
{
    // Poisson GLM with subsampling: the active-row window and weight
    // are part of the likelihood's identity, not just the raw data.
    double sumCounts = 0.0;
    double sumCountsSq = 0.0;
    double officerChecksum = 0.0;
    double sumEom = 0.0;
    for (std::size_t i = 0; i < activeRows_; ++i) {
        const double c = static_cast<double>(counts_[i]);
        sumCounts += c;
        sumCountsSq += c * c;
        officerChecksum += static_cast<double>(officer_[i]) *
                           static_cast<double>(i + 1);
        sumEom += endOfMonth_[i];
    }
    double sumCov = 0.0;
    double sumCovSq = 0.0;
    for (std::size_t i = 0; i < activeRows_ * numCovariates_; ++i) {
        sumCov += covariates_[i];
        sumCovSq += covariates_[i] * covariates_[i];
    }
    return {static_cast<double>(counts_.size()),
            static_cast<double>(activeRows_),
            static_cast<double>(numOfficers_),
            static_cast<double>(numCovariates_),
            likelihoodWeight_,
            sumCounts,
            sumCountsSq,
            officerChecksum,
            sumEom,
            sumCov,
            sumCovSq};
}

} // namespace bayes::workloads
