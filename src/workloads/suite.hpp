/**
 * @file
 * Umbrella header declaring all ten BayesSuite workloads (Table I).
 */
#pragma once

#include "workloads/ad_attribution.hpp"
#include "workloads/animal_survival.hpp"
#include "workloads/butterfly_richness.hpp"
#include "workloads/disease_progression.hpp"
#include "workloads/memory_retrieval.hpp"
#include "workloads/pkpd_ode.hpp"
#include "workloads/racial_threshold.hpp"
#include "workloads/tickets_quota.hpp"
#include "workloads/twelve_cities.hpp"
#include "workloads/votes_forecast.hpp"
