/**
 * @file
 * Set-associative cache model with LRU replacement and write-back,
 * write-allocate semantics. The unit is the building block of the
 * simulated memory hierarchies that stand in for the paper's Skylake
 * and Broadwell measurement platforms (DESIGN.md §2).
 */
#pragma once

#include <cstdint>
#include <vector>

namespace bayes::archsim {

/** Replacement policy of a cache level. */
enum class Replacement : std::uint8_t
{
    Lru,    ///< least recently used (default; Intel-like)
    Fifo,   ///< evict oldest fill
    Random, ///< pseudo-random victim (deterministic LFSR)
};

/** Geometry of one cache level. */
struct CacheConfig
{
    std::uint64_t sizeBytes = 32 * 1024;
    std::uint32_t lineBytes = 64;
    std::uint32_t ways = 8;
    Replacement replacement = Replacement::Lru;
};

/** Hit/miss counters of one cache level. */
struct CacheStats
{
    std::uint64_t accesses = 0;
    std::uint64_t misses = 0;
    std::uint64_t writebacks = 0;

    /** misses / accesses, 0 when idle. */
    double
    missRate() const
    {
        return accesses ? static_cast<double>(misses)
                / static_cast<double>(accesses)
                        : 0.0;
    }
};

/** One set-associative write-back cache. */
class CacheModel
{
  public:
    explicit CacheModel(const CacheConfig& config);

    /**
     * Access one already-line-aligned address.
     * @param lineAddr  byte address of the line (low bits ignored)
     * @param write     store (marks the line dirty)
     * @return true on hit
     */
    bool access(std::uint64_t lineAddr, bool write);

    /** Counters since construction or the last resetStats(). */
    const CacheStats& stats() const { return stats_; }

    /** Zero the counters, keeping cache contents warm. */
    void resetStats() { stats_ = CacheStats{}; }

    /** Invalidate all contents and zero the counters. */
    void flush();

    /** Configured geometry. */
    const CacheConfig& config() const { return config_; }

    /** Number of sets. */
    std::uint32_t numSets() const { return numSets_; }

  private:
    struct Line
    {
        std::uint64_t tag = 0;
        std::uint64_t lru = 0; ///< last-access stamp
        bool valid = false;
        bool dirty = false;
    };

    CacheConfig config_;
    std::uint32_t numSets_;
    std::uint64_t clock_ = 0;
    std::uint32_t lfsr_ = 0xace1u; ///< random-replacement state
    std::vector<Line> lines_; ///< [set * ways + way]
    CacheStats stats_;
};

} // namespace bayes::archsim
