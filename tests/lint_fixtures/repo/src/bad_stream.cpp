// Fixture: R005 — iostream in library code.
#include <iostream>  // EXPECT: R005
// #include <iostream> in a comment is not a finding.
#include <ostream>

namespace fixture {
void print(std::ostream& os) { os << "ok"; }  // taking a stream& is fine
}  // namespace fixture
